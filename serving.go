package dualcube

import (
	"net/http"

	"dualcube/internal/serve"
)

// This file is the library facade over the batched serving front-end
// (internal/serve, daemonized by cmd/dcserve): a Server owns warmed
// runtime shards per order and coalesces compatible concurrent prefix /
// allreduce / sort / broadcast requests into single lane-batched kernel
// passes, with bounded-queue admission control, graceful shard degradation
// onto fault-rewritten schedules, and /metrics observability.

// ServeConfig sizes a serving front-end; the zero value serves D_4..D_6
// with one shard per order, max batch 32 and a 200µs window.
type ServeConfig = serve.Config

// ServeRequest is one serving request (see the Op constants in
// internal/serve; the HTTP path form is /v1/{prefix,allreduce,sort,broadcast}).
type ServeRequest = serve.Request

// ServeResponse is a demultiplexed result, annotated with the pass's lane
// occupancy and the shard that ran it.
type ServeResponse = serve.Response

// ServeClient is the typed in-process client of a serving front-end.
type ServeClient = serve.Client

// NewServer builds a serving front-end: every configured order's topology
// and schedules are warmed and the coalescing dispatchers started. Close
// it when done.
func NewServer(cfg ServeConfig) (*serve.Server, error) { return serve.New(cfg) }

// NewServeClient returns the typed in-process client for s.
func NewServeClient(s *serve.Server) *ServeClient { return serve.NewClient(s) }

// ServeHandler returns the HTTP handler of the serving front-end — the
// same routes cmd/dcserve exposes.
func ServeHandler(s *serve.Server) http.Handler { return serve.Handler(s) }
