package dualcube_test

import (
	"fmt"

	"dualcube"
)

// The smallest interesting dual-cube, D_2: eight nodes of degree two.
func ExampleNew() {
	nw, _ := dualcube.New(2)
	fmt.Println("nodes:", nw.Nodes())
	fmt.Println("degree:", nw.Degree())
	fmt.Println("diameter:", nw.Diameter())
	fmt.Println("neighbors of 0:", nw.Neighbors(0))
	// Output:
	// nodes: 8
	// degree: 2
	// diameter: 4
	// neighbors of 0: [1 4]
}

// Prefix sums of one value per node in 2n communication steps.
func ExamplePrefix() {
	in := []int{1, 2, 3, 4, 5, 6, 7, 8} // D_2 has 8 nodes
	sums, stats, _ := dualcube.Prefix(2, in)
	fmt.Println(sums)
	fmt.Println("steps:", stats.Cycles)
	// Output:
	// [1 3 6 10 15 21 28 36]
	// steps: 4
}

// Non-commutative operators work because combines stay in element order.
func ExamplePrefixFunc() {
	in := []string{"d", "u", "a", "l", "c", "u", "b", "e"}
	out, _, _ := dualcube.PrefixFunc(2, in,
		func() string { return "" },
		func(a, b string) string { return a + b },
		true)
	fmt.Println(out[7])
	// Output:
	// dualcube
}

// Bitonic sort on the dual-cube (Algorithm 3 of the paper).
func ExampleSort() {
	keys := []int{42, 7, 99, 1, 65, 13, 8, 27}
	sorted, stats, _ := dualcube.Sort(2, keys, dualcube.Ascending)
	fmt.Println(sorted)
	fmt.Println("compare-exchange rounds:", stats.MaxOps)
	// Output:
	// [1 7 8 13 27 42 65 99]
	// compare-exchange rounds: 6
}

// Broadcast reaches all 2^(2n-1) nodes in 2n steps, the network diameter.
func ExampleBroadcast() {
	got, stats, _ := dualcube.Broadcast(2, 3, "hello")
	fmt.Println(got[0], got[7])
	fmt.Println("steps:", stats.Cycles)
	// Output:
	// hello hello
	// steps: 4
}

// Segmented scan restarts the running combination at each marked head.
func ExamplePrefixSegmented() {
	values := []int{1, 1, 1, 1, 1, 1, 1, 1}
	heads := []bool{false, false, true, false, false, true, false, false}
	out, _, _ := dualcube.PrefixSegmented(2, values, heads,
		func() int { return 0 },
		func(a, b int) int { return a + b })
	fmt.Println(out)
	// Output:
	// [1 2 1 2 3 1 2 3]
}

// Any permutation routes obliviously at the cost of one sort.
func ExamplePermute() {
	dests := []int{7, 6, 5, 4, 3, 2, 1, 0}
	values := []int{10, 11, 12, 13, 14, 15, 16, 17}
	out, _, _ := dualcube.Permute(2, dests, values)
	fmt.Println(out)
	// Output:
	// [17 16 15 14 13 12 11 10]
}

// AllReduce delivers the in-order combination of every element to all
// nodes.
func ExampleAllReduce() {
	parts := []string{"pre", "fix", " ", "com", "pu", "ta", "ti", "on"}
	totals, _, _ := dualcube.AllReduce(2, parts,
		func() string { return "" },
		func(a, b string) string { return a + b })
	fmt.Println(totals[0])
	fmt.Println(totals[7] == totals[0])
	// Output:
	// prefix computation
	// true
}

// SortLarge handles more keys than nodes with the same communication cost.
func ExampleSortLarge() {
	keys := []int{9, 2, 7, 4, 1, 8, 3, 6, 5, 0, 15, 12, 13, 10, 11, 14} // 2 per node on D_2
	sorted, stats, _ := dualcube.SortLarge(2, 2, keys, dualcube.Ascending)
	fmt.Println(sorted)
	fmt.Println("steps:", stats.Cycles)
	// Output:
	// [0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15]
	// steps: 12
}

// Gather collects the whole distributed sequence at one node in 2n steps.
func ExampleGather() {
	in := []int{0, 10, 20, 30, 40, 50, 60, 70}
	atRoot, stats, _ := dualcube.Gather(2, 5, in)
	fmt.Println(atRoot)
	fmt.Println("steps:", stats.Cycles)
	// Output:
	// [0 10 20 30 40 50 60 70]
	// steps: 4
}

// HamiltonianCycle returns a verified dilation-1 ring embedding.
func ExampleHamiltonianCycle() {
	nw, _ := dualcube.New(2)
	ring, _ := dualcube.HamiltonianCycle(2)
	fmt.Println("length:", len(ring))
	ok := true
	for i := range ring {
		ok = ok && nw.HasEdge(ring[i], ring[(i+1)%len(ring)])
	}
	fmt.Println("all hops are links:", ok)
	// Output:
	// length: 8
	// all hops are links: true
}

// SampleSort trades bitonic's Θ(n²) steps for 4n collective rounds.
func ExampleSampleSort() {
	keys := make([]int, 32) // 4 per node on D_2
	for i := range keys {
		keys[i] = (31 - i) * 3
	}
	sorted, stats, _ := dualcube.SampleSort(2, 4, keys)
	fmt.Println(sorted[0], sorted[15], sorted[31])
	fmt.Println("rounds:", stats.Cycles)
	// Output:
	// 0 45 93
	// rounds: 8
}
