package dualcube

import (
	"math/rand"
	"reflect"
	"testing"
)

// FuzzDirectVsInterpret is the differential fuzzer for the direct kernel
// executor: random monoid inputs — and, when the seed selects one, a seeded
// fault plan — run through both the direct executor and the worker-pool
// interpreter, which must produce identical outputs and identical Stats.
// Three probes per input: sum prefix (fault-free or degraded under the
// plan), a non-commutative mixing combine (order mistakes that a sum
// conceals change the result), and the all-reduce collective.
//
// The fault-free probes then sweep every topology family: per family the
// direct executor must reproduce the interpreter, and the hypercube and
// Z-cube runs must reproduce the dual-cube run bit-for-bit — outputs and
// Stats — since their schedules execute over the embedded D_n skeleton.
func FuzzDirectVsInterpret(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0))
	f.Add(int64(2), uint8(3), uint8(1))
	f.Add(int64(3), uint8(4), uint8(2))
	f.Add(int64(42), uint8(5), uint8(4))
	f.Add(int64(-7), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, order, faults uint8) {
		n := 2 + int(order)%4 // D_2 .. D_5
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(seed))
		in := make([]int, N)
		for i := range in {
			in[i] = rng.Intn(1<<20) - 1<<19
		}
		f := int(faults) % n // 0 .. n-1 permanent link faults
		var plan *FaultPlan
		if f > 0 {
			var err error
			plan, err = RandomFaultPlan(n, f, seed)
			if err != nil {
				t.Fatal(err)
			}
		}
		mix := func(a, b int) int { return a*1000003 + b }

		defer SetSimScheduler(SchedulerDefault)
		type probe struct {
			name string
			run  func() (any, Stats, error)
		}
		probes := []probe{
			{"prefix", func() (any, Stats, error) {
				if plan != nil {
					out, st, err := PrefixDegraded(n, in, plan)
					return out, st, err
				}
				out, st, err := Prefix(n, in)
				return out, st, err
			}},
			{"prefix-noncommutative", func() (any, Stats, error) {
				if plan != nil {
					out, st, err := PrefixDegradedFunc(n, in, func() int { return 0 }, mix, true, plan)
					return out, st, err
				}
				out, st, err := PrefixFunc(n, in, func() int { return 0 }, mix, true)
				return out, st, err
			}},
			{"allreduce", func() (any, Stats, error) {
				out, st, err := AllReduceSum(n, in)
				return out, st, err
			}},
		}
		for _, p := range probes {
			SetSimScheduler(SchedulerDirect)
			directOut, directStats, directErr := p.run()
			SetSimScheduler(SchedulerWorkerPool)
			poolOut, poolStats, poolErr := p.run()
			if (directErr == nil) != (poolErr == nil) {
				t.Fatalf("%s: error divergence: direct=%v pool=%v", p.name, directErr, poolErr)
			}
			if directErr != nil {
				continue // both rejected the input identically
			}
			if directStats != poolStats {
				t.Errorf("%s: stats diverge\n  direct: %+v\n  pool:   %+v", p.name, directStats, poolStats)
			}
			if !reflect.DeepEqual(directOut, poolOut) {
				t.Errorf("%s: outputs diverge between direct executor and interpreter", p.name)
			}
		}

		type result struct {
			out any
			st  Stats
		}
		oracle := make(map[string]result)
		for _, fam := range Families() {
			rt, err := NewRuntimeOn(fam, n)
			if err != nil {
				t.Fatal(err)
			}
			famProbes := []probe{
				{"prefix", func() (any, Stats, error) {
					out, st, err := PrefixOn(rt, in)
					return out, st, err
				}},
				{"prefix-noncommutative", func() (any, Stats, error) {
					out, st, err := PrefixFuncOn(rt, in, func() int { return 0 }, mix, true)
					return out, st, err
				}},
				{"allreduce", func() (any, Stats, error) {
					out, st, err := AllReduceSumOn(rt, in)
					return out, st, err
				}},
			}
			for _, p := range famProbes {
				SetSimScheduler(SchedulerDirect)
				directOut, directStats, directErr := p.run()
				if directErr != nil {
					t.Fatalf("%s/%s: direct: %v", fam, p.name, directErr)
				}
				SetSimScheduler(SchedulerWorkerPool)
				poolOut, poolStats, poolErr := p.run()
				if poolErr != nil {
					t.Fatalf("%s/%s: pool: %v", fam, p.name, poolErr)
				}
				if directStats != poolStats {
					t.Errorf("%s/%s: stats diverge\n  direct: %+v\n  pool:   %+v", fam, p.name, directStats, poolStats)
				}
				if !reflect.DeepEqual(directOut, poolOut) {
					t.Errorf("%s/%s: outputs diverge between direct executor and interpreter", fam, p.name)
				}
				if fam == "dualcube" {
					oracle[p.name] = result{directOut, directStats}
					continue
				}
				ref := oracle[p.name]
				if directStats != ref.st {
					t.Errorf("%s/%s: stats diverge from the dual-cube oracle\n  dualcube: %+v\n  %s: %+v", fam, p.name, ref.st, fam, directStats)
				}
				if !reflect.DeepEqual(directOut, ref.out) {
					t.Errorf("%s/%s: outputs diverge from the dual-cube oracle", fam, p.name)
				}
			}
		}
	})
}

// FuzzDirectVsInterpretVCollectives is the differential fuzzer for the
// arena-plane v-collectives: gather, scatter, all-gather and both total
// exchanges on D_2..D_5 with random roots and random payload shapes —
// including empty and heavily skewed all-to-all-v count vectors — run
// through the direct kernel executor, the worker-pool interpreter, and the
// goroutine-per-node engine. All three drive the same plane kernels, so
// outputs and Stats must be byte-identical across backends.
func FuzzDirectVsInterpretVCollectives(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(0))
	f.Add(int64(2), uint8(1), uint8(3), uint8(1))
	f.Add(int64(3), uint8(2), uint8(7), uint8(2))
	f.Add(int64(-9), uint8(3), uint8(255), uint8(3))
	f.Add(int64(1<<40), uint8(2), uint8(128), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, order, rootSeed, shape uint8) {
		n := 2 + int(order)%4 // D_2 .. D_5
		N := 1 << (2*n - 1)
		root := int(rootSeed) % N
		rng := rand.New(rand.NewSource(seed))
		in := make([]int, N)
		for i := range in {
			in[i] = rng.Intn(1<<20) - 1<<19
		}
		a2a := make([][]int, N)
		for i := range a2a {
			a2a[i] = make([]int, N)
			for j := range a2a[i] {
				a2a[i][j] = rng.Intn(1 << 16)
			}
		}
		// Bundle shapes for the variable exchange: uniform small, mostly
		// empty, one hot source row, or one hot destination column — the
		// skew stresses the CSR fill and the per-node drain, and empty
		// bundles must round-trip as nil.
		a2av := make([][][]int, N)
		for i := range a2av {
			a2av[i] = make([][]int, N)
			for j := range a2av[i] {
				var l int
				switch shape % 4 {
				case 0:
					l = rng.Intn(3)
				case 1:
					if rng.Intn(8) == 0 {
						l = rng.Intn(4)
					}
				case 2:
					if i == root {
						l = rng.Intn(5)
					}
				case 3:
					if j == root {
						l = rng.Intn(5)
					}
				}
				if l > 0 {
					b := make([]int, l)
					for k := range b {
						b[k] = rng.Intn(1 << 16)
					}
					a2av[i][j] = b
				}
			}
		}

		type probe struct {
			name string
			run  func() (any, Stats, error)
		}
		probes := []probe{
			{"gather", func() (any, Stats, error) {
				out, st, err := Gather(n, root, in)
				return out, st, err
			}},
			{"scatter", func() (any, Stats, error) {
				out, st, err := Scatter(n, root, in)
				return out, st, err
			}},
			{"allgather", func() (any, Stats, error) {
				out, st, err := AllGather(n, in)
				return out, st, err
			}},
			{"alltoall", func() (any, Stats, error) {
				out, st, err := AllToAll(n, a2a)
				return out, st, err
			}},
			{"alltoallv", func() (any, Stats, error) {
				out, st, err := AllToAllV(n, a2av)
				return out, st, err
			}},
		}
		defer SetSimScheduler(SchedulerDefault)
		for _, p := range probes {
			SetSimScheduler(SchedulerDirect)
			directOut, directStats, err := p.run()
			if err != nil {
				t.Fatalf("%s: direct: %v", p.name, err)
			}
			for _, alt := range []struct {
				name  string
				sched Scheduler
			}{
				{"worker-pool", SchedulerWorkerPool},
				{"goroutine-per-node", SchedulerGoroutinePerNode},
			} {
				SetSimScheduler(alt.sched)
				out, st, err := p.run()
				if err != nil {
					t.Fatalf("%s/%s: %v", p.name, alt.name, err)
				}
				if st != directStats {
					t.Errorf("%s/%s: stats diverge\n  direct: %+v\n  engine: %+v", p.name, alt.name, directStats, st)
				}
				if !reflect.DeepEqual(out, directOut) {
					t.Errorf("%s/%s: outputs diverge from the direct executor", p.name, alt.name)
				}
			}
		}
	})
}

// FuzzDirectVsInterpretSort is the sort family's differential fuzzer: random
// keys with heavy duplicates (a small value range forces equal-key ties,
// where the keep-local-on-tie rule must agree across backends), both sort
// Orders, on D_2..D_4 — run through the direct kernel executor, the
// worker-pool interpreter, and the legacy goroutine-per-node engine. All
// three must produce identical outputs and identical Stats.
func FuzzDirectVsInterpretSort(f *testing.F) {
	f.Add(int64(1), uint8(0), false)
	f.Add(int64(2), uint8(1), true)
	f.Add(int64(3), uint8(2), false)
	f.Add(int64(-42), uint8(1), true)
	f.Add(int64(7), uint8(0), true)
	f.Fuzz(func(t *testing.T, seed int64, order uint8, descending bool) {
		n := 2 + int(order)%3 // D_2 .. D_4
		N := 1 << (2*n - 1)
		ord := Ascending
		if descending {
			ord = Descending
		}
		rng := rand.New(rand.NewSource(seed))
		in := make([]int, N)
		for i := range in {
			in[i] = rng.Intn(N/2 + 1) // duplicates guaranteed by pigeonhole
		}

		defer SetSimScheduler(SchedulerDefault)
		SetSimScheduler(SchedulerDirect)
		directOut, directStats, err := Sort(n, in, ord)
		if err != nil {
			t.Fatalf("direct: %v", err)
		}
		for _, alt := range []struct {
			name  string
			sched Scheduler
		}{
			{"worker-pool", SchedulerWorkerPool},
			{"goroutine-per-node", SchedulerGoroutinePerNode},
		} {
			SetSimScheduler(alt.sched)
			out, st, err := Sort(n, in, ord)
			if err != nil {
				t.Fatalf("%s: %v", alt.name, err)
			}
			if st != directStats {
				t.Errorf("%s: stats diverge\n  direct: %+v\n  engine: %+v", alt.name, directStats, st)
			}
			if !reflect.DeepEqual(out, directOut) {
				t.Errorf("%s: outputs diverge from the direct executor\n  in: %v\n  direct: %v\n  engine: %v", alt.name, in, directOut, out)
			}
		}
	})
}
