// PageRank on a dual-cube cluster — an iterative distributed application
// built from the library's collectives. Each node owns one vertex of a
// synthetic web graph (its outgoing links and rank). One power iteration
// is: AllGather the current ranks (2n rounds), locally accumulate the
// incoming contributions, and AllReduce the dangling-mass and convergence
// residual (2n rounds). The whole computation is 4n communication rounds
// per iteration regardless of the edge count.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dualcube"
)

const (
	order   = 4    // D_4: 128 vertices, one per node
	damping = 0.85 //
	epsilon = 1e-10
	maxIter = 200
)

func main() {
	nodes := 1 << (2*order - 1)
	rng := rand.New(rand.NewSource(5))

	// Synthetic web: a few hubs plus random links; some dangling pages.
	links := make([][]int, nodes) // links[v] = pages v points to
	for v := 0; v < nodes; v++ {
		if v%17 == 0 {
			continue // dangling page
		}
		deg := 1 + rng.Intn(6)
		for d := 0; d < deg; d++ {
			if rng.Intn(3) == 0 {
				links[v] = append(links[v], rng.Intn(8)) // hub bias
			} else {
				links[v] = append(links[v], rng.Intn(nodes))
			}
		}
	}

	rank := make([]float64, nodes)
	for v := range rank {
		rank[v] = 1.0 / float64(nodes)
	}

	var iters int
	var commRounds int
	for iters = 1; iters <= maxIter; iters++ {
		// Every node needs all current ranks to weigh its in-links; the
		// AllGather is the communication phase of the iteration.
		copies, st, err := dualcube.AllGather(order, rank)
		if err != nil {
			log.Fatal(err)
		}
		commRounds += st.Cycles

		// Local phase (conceptually per node; identical results everywhere).
		global := copies[0]
		next := make([]float64, nodes)
		dangling := 0.0
		for v := 0; v < nodes; v++ {
			if len(links[v]) == 0 {
				dangling += global[v]
				continue
			}
			share := global[v] / float64(len(links[v]))
			for _, w := range links[v] {
				next[w] += share
			}
		}
		base := (1-damping)/float64(nodes) + damping*dangling/float64(nodes)
		delta := 0.0
		for v := range next {
			next[v] = base + damping*next[v]
			delta += math.Abs(next[v] - rank[v])
		}

		// The convergence test is an AllReduce of the residual (here each
		// node holds one per-vertex residual share).
		resid := make([]float64, nodes)
		for v := range resid {
			resid[v] = math.Abs(next[v] - rank[v])
		}
		total, st2, err := dualcube.AllReduceSum(order, resid)
		if err != nil {
			log.Fatal(err)
		}
		commRounds += st2.Cycles
		rank = next
		if total[0] < epsilon {
			break
		}
		_ = delta
	}

	sum := 0.0
	best, bestV := -1.0, -1
	for v, r := range rank {
		sum += r
		if r > best {
			best, bestV = r, v
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		log.Fatalf("ranks do not sum to 1: %v", sum)
	}
	fmt.Printf("PageRank over %d pages on D_%d converged in %d iterations\n", nodes, order, iters)
	fmt.Printf("communication: %d collective rounds total (%d per iteration)\n", commRounds, 4*order)
	fmt.Printf("top page: %d (rank %.4f); uniform would be %.4f\n", bestV, best, 1.0/float64(nodes))
	if best <= 1.0/float64(nodes) {
		log.Fatal("hub pages should rank above uniform")
	}
}
