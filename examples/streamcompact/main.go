// Stream compaction with a diminished (exclusive) prefix sum — the other
// canonical scan application: every node holds one event and a keep/drop
// flag; the exclusive prefix of the flags is exactly each kept event's
// output position, so the compacted stream is produced with one parallel
// prefix (2n steps) and no sequential pass.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dualcube"
)

type event struct {
	ID       int
	Severity int // 0..4; keep >= 3
}

func main() {
	const order = 4 // D_4: 128 nodes, one event per node
	nodes := 1 << (2*order - 1)

	rng := rand.New(rand.NewSource(3))
	events := make([]event, nodes)
	flags := make([]int, nodes)
	for i := range events {
		events[i] = event{ID: i, Severity: rng.Intn(5)}
		if events[i].Severity >= 3 {
			flags[i] = 1
		}
	}

	// Exclusive prefix of the flags = output index of each kept event.
	pos, st, err := dualcube.PrefixFunc(order, flags,
		func() int { return 0 },
		func(a, b int) int { return a + b },
		false /* diminished */)
	if err != nil {
		log.Fatal(err)
	}

	kept := 0
	for _, f := range flags {
		kept += f
	}
	compact := make([]event, kept)
	for i, ev := range events {
		if flags[i] == 1 {
			compact[pos[i]] = ev
		}
	}

	// Validate: compacted stream preserves order and drops the rest.
	j := 0
	for _, ev := range events {
		if ev.Severity >= 3 {
			if compact[j] != ev {
				log.Fatalf("compaction scrambled event %d", ev.ID)
			}
			j++
		}
	}
	fmt.Printf("compacted %d events to %d high-severity events on D_%d\n", nodes, kept, order)
	fmt.Printf("prefix ran in %d communication steps (%d messages)\n", st.Cycles, st.Messages)
	fmt.Printf("first kept: ID %d (severity %d); last kept: ID %d (severity %d)\n",
		compact[0].ID, compact[0].Severity, compact[kept-1].ID, compact[kept-1].Severity)
}
