// Quickstart: build a dual-cube, inspect it, run a parallel prefix sum and
// a distributed sort, and read back the costs the paper's theorems bound.
package main

import (
	"fmt"
	"log"

	"dualcube"
)

func main() {
	const n = 3 // D_3: 32 nodes, degree 3, diameter 6

	nw, err := dualcube.New(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("D_%d: %d nodes, degree %d, diameter %d, clusters of %d nodes\n",
		nw.Order(), nw.Nodes(), nw.Degree(), nw.Diameter(), nw.ClusterSize())
	fmt.Printf("node 5: class %d, cluster %d, local %d, neighbors %v\n",
		nw.Class(5), nw.ClusterID(5), nw.LocalID(5), nw.Neighbors(5))
	fmt.Printf("shortest path 3 -> 28: %v (distance %d)\n\n", nw.Route(3, 28), nw.Distance(3, 28))

	// Parallel prefix sums (Algorithm 2): one value per node.
	in := make([]int, nw.Nodes())
	for i := range in {
		in[i] = i + 1
	}
	sums, st, err := dualcube.Prefix(n, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prefix sums of 1..%d: last = %d\n", nw.Nodes(), sums[len(sums)-1])
	fmt.Printf("  communication steps: %d (Theorem 1: at most %d)\n", st.Cycles, 2*n+1)
	fmt.Printf("  computation rounds:  %d (Theorem 1: at most %d)\n\n", st.MaxOps, 2*n)

	// Distributed bitonic sort (Algorithm 3).
	keys := make([]int, nw.Nodes())
	for i := range keys {
		keys[i] = (i*13 + 5) % nw.Nodes()
	}
	sorted, st2, err := dualcube.Sort(n, keys, dualcube.Ascending)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sorted %d keys: first=%d last=%d\n", len(sorted), sorted[0], sorted[len(sorted)-1])
	fmt.Printf("  communication steps: %d (Theorem 2: at most %d)\n", st2.Cycles, 6*n*n)
	fmt.Printf("  comparison rounds:   %d (Theorem 2: at most %d)\n", st2.MaxOps, 2*n*n)
}
