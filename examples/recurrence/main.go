// Linear recurrences by parallel prefix over matrix products — the
// textbook demonstration that prefix computation needs only associativity,
// not commutativity. The Fibonacci recurrence
//
//	F(i+1) = F(i) + F(i-1)
//
// is the repeated application of the companion matrix A = [[1,1],[1,0]]:
// (F(i+1), F(i)) = A^i (F(1), F(0)). The prefix products A, A², ..., A^N
// therefore yield ALL of F(1)..F(N+1) simultaneously; the dual-cube
// computes every one of them in 2n communication steps. Matrix
// multiplication is non-commutative, so this also exercises the library's
// strict left-to-right combine order.
package main

import (
	"fmt"
	"log"

	"dualcube"
)

// mat2 is a 2x2 matrix in row-major order (modular arithmetic keeps the
// values in range for large N).
type mat2 [4]uint64

const mod = 1_000_000_007

func mul(a, b mat2) mat2 {
	return mat2{
		(a[0]*b[0] + a[1]*b[2]) % mod, (a[0]*b[1] + a[1]*b[3]) % mod,
		(a[2]*b[0] + a[3]*b[2]) % mod, (a[2]*b[1] + a[3]*b[3]) % mod,
	}
}

func identity() mat2 { return mat2{1, 0, 0, 1} }

func main() {
	const order = 4 // D_4: 128 nodes -> F(1)..F(129) in one prefix
	nodes := 1 << (2*order - 1)

	// Every node holds one copy of the companion matrix.
	in := make([]mat2, nodes)
	for i := range in {
		in[i] = mat2{1, 1, 1, 0}
	}
	prods, st, err := dualcube.PrefixFunc(order, in, identity, mul, true)
	if err != nil {
		log.Fatal(err)
	}

	// prods[i] = A^(i+1), whose entries are [[F(i+2),F(i+1)],[F(i+1),F(i)]].
	fib := make([]uint64, nodes+1)
	for i, p := range prods {
		fib[i] = p[1] // F(i+1)
	}
	fib[nodes] = prods[nodes-1][0]

	// Verify against the sequential recurrence.
	a, b := uint64(0), uint64(1)
	for i := 0; i < nodes; i++ {
		a, b = b, (a+b)%mod
		if fib[i] != a {
			log.Fatalf("F(%d) = %d, want %d", i+1, fib[i], a)
		}
	}
	fmt.Printf("computed F(1)..F(%d) mod %d with one parallel prefix on D_%d\n", nodes+1, mod, order)
	fmt.Printf("communication steps: %d (vs %d sequential multiplications)\n", st.Cycles, nodes-1)
	fmt.Printf("F(10)=%d  F(50)=%d  F(128)=%d\n", fib[9], fib[49], fib[127])
}
