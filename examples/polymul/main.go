// Polynomial multiplication by distributed NTT — the paper's recursive
// technique as a general emulation framework. The radix-2 butterfly of the
// fast Fourier transform is the canonical "normal" hypercube algorithm
// (one dimension per stage), so it runs unchanged on the dual-cube at the
// predicted <=3x communication overhead: 6n-5 steps versus the hypercube's
// 2n-1. Three transforms multiply two degree-~N/2 polynomials exactly over
// the prime field mod 998244353.
package main

import (
	"fmt"
	"log"

	"dualcube"
)

func main() {
	const order = 4 // D_4: 128-point transforms
	N := 1 << (2*order - 1)

	// a(x) = (x+1)^5, b(x) = 1 + x + x^2 + ... (truncated geometric).
	a := []uint64{1, 5, 10, 10, 5, 1}
	b := make([]uint64, N/2)
	for i := range b {
		b[i] = 1
	}

	prod, st, err := dualcube.PolyMulMod(order, a, b)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the naive convolution.
	want := make([]uint64, len(a)+len(b)-1)
	for i := range a {
		for j := range b {
			want[i+j] = (want[i+j] + a[i]*b[j]) % 998244353
		}
	}
	for i := range want {
		if prod[i] != want[i] {
			log.Fatalf("coefficient %d: %d, want %d", i, prod[i], want[i])
		}
	}
	fmt.Printf("multiplied deg-%d x deg-%d polynomials on D_%d via 3 NTTs\n",
		len(a)-1, len(b)-1, order)
	fmt.Printf("total communication: %d steps (3 x (6n-5) = %d)\n", st.Cycles, 3*(6*order-5))
	fmt.Printf("product: deg %d, leading coeffs %v...\n", len(prod)-1, prod[:8])
}
