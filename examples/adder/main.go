// A carry-lookahead adder by parallel prefix — the application that made
// prefix computation famous in hardware. Adding two N-bit numbers is a
// scan over per-bit carry descriptors from the three-element semigroup
// {kill, propagate, generate}:
//
//	bit i produces: generate if a_i & b_i, kill if !a_i & !b_i,
//	                propagate otherwise
//	x ⊕ y = y           if y != propagate
//	      = x           otherwise
//
// The inclusive prefix of the descriptors gives the carry INTO bit i+1 at
// every position at once; here each of the 128 dual-cube nodes owns one
// bit position, so a 128-bit addition completes in 2n = 8 communication
// steps instead of a 128-long ripple chain.
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"

	"dualcube"
)

type carry uint8

const (
	kill carry = iota
	propagate
	generate
)

func combine(x, y carry) carry {
	if y != propagate {
		return y
	}
	return x
}

func main() {
	const order = 4 // D_4: 128 nodes = 128-bit adder
	bits := 1 << (2*order - 1)

	rng := rand.New(rand.NewSource(17))
	a, b := new(big.Int), new(big.Int)
	for i := 0; i < bits; i++ {
		a.SetBit(a, i, uint(rng.Intn(2)))
		b.SetBit(b, i, uint(rng.Intn(2)))
	}

	// Per-bit carry descriptors: one per dual-cube node.
	desc := make([]carry, bits)
	for i := 0; i < bits; i++ {
		ai, bi := a.Bit(i), b.Bit(i)
		switch {
		case ai == 1 && bi == 1:
			desc[i] = generate
		case ai == 0 && bi == 0:
			desc[i] = kill
		default:
			desc[i] = propagate
		}
	}

	// The diminished prefix yields the carry INTO each bit (carry into bit
	// 0 is the identity; "propagate" with no generator behind it means 0).
	carries, st, err := dualcube.PrefixFunc(order, desc,
		func() carry { return propagate },
		combine,
		false /* diminished */)
	if err != nil {
		log.Fatal(err)
	}

	sum := new(big.Int)
	carryOut := uint(0)
	for i := 0; i < bits; i++ {
		cin := uint(0)
		if carries[i] == generate {
			cin = 1
		}
		s := a.Bit(i) ^ b.Bit(i) ^ cin
		sum.SetBit(sum, i, s)
		// Track the final carry for the (bits)th position.
		d := combine(carries[i], desc[i])
		if i == bits-1 && d == generate {
			carryOut = 1
		}
	}
	sum.SetBit(sum, bits, carryOut)

	want := new(big.Int).Add(a, b)
	if sum.Cmp(want) != 0 {
		log.Fatalf("adder wrong:\n got %x\nwant %x", sum, want)
	}
	fmt.Printf("%d-bit carry-lookahead addition on D_%d\n", bits, order)
	fmt.Printf("  a   = %x\n  b   = %x\n  a+b = %x\n", a, b, sum)
	fmt.Printf("carry chain resolved in %d communication steps (ripple would take %d)\n", st.Cycles, bits)
}
