// Ranksort: distributed sorting of structured records with multiple
// records per node — the paper's future-work generalization to inputs
// larger than the network. A synthetic job queue (priority, submission
// time, name) is distributed 8 records per node over D_3 and sorted by
// (priority, submission time) with merge-split bitonic sort.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dualcube"
)

type job struct {
	Priority  int
	Submitted int // seconds since epoch start
	Name      string
}

func main() {
	const (
		order   = 3 // D_3: 32 nodes
		perNode = 8 // records per node
	)
	nodes := 1 << (2*order - 1)
	total := nodes * perNode

	rng := rand.New(rand.NewSource(11))
	jobs := make([]job, total)
	for i := range jobs {
		jobs[i] = job{
			Priority:  rng.Intn(5),
			Submitted: rng.Intn(100000),
			Name:      fmt.Sprintf("job-%04d", i),
		}
	}

	byPrio := func(a, b job) bool {
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
		return a.Submitted < b.Submitted
	}
	sorted, st, err := dualcube.SortLargeFunc(order, perNode, jobs, byPrio, dualcube.Ascending)
	if err != nil {
		log.Fatal(err)
	}

	for i := 1; i < len(sorted); i++ {
		if byPrio(sorted[i], sorted[i-1]) {
			log.Fatalf("output not sorted at %d", i)
		}
	}
	fmt.Printf("sorted %d jobs (%d per node) on D_%d\n", total, perNode, order)
	fmt.Printf("communication steps: %d — identical to the 1-key-per-node sort (6n²-7n+2 = %d)\n",
		st.Cycles, 6*order*order-7*order+2)
	fmt.Printf("first jobs out:\n")
	for _, j := range sorted[:5] {
		fmt.Printf("  prio %d  t=%6d  %s\n", j.Priority, j.Submitted, j.Name)
	}
	fmt.Printf("last job out: prio %d  t=%6d  %s\n",
		sorted[total-1].Priority, sorted[total-1].Submitted, sorted[total-1].Name)
}
