// Histogram equalization via parallel prefix — the classic data-parallel
// scan application (Hillis & Steele, the paper's reference for prefix
// computation). A synthetic low-contrast image is quantized to 128 gray
// levels; each dual-cube node owns one histogram bin; the cumulative
// distribution is a single parallel prefix sum on D_4; the equalization
// remap follows from the CDF.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dualcube"
)

const (
	order  = 4   // D_4: 128 nodes = 128 gray levels
	levels = 128 // one histogram bin per node
	width  = 256
	height = 192
)

func main() {
	// Synthesize a low-contrast image: mid-gray ramp plus noise, using only
	// the middle third of the dynamic range.
	rng := rand.New(rand.NewSource(7))
	img := make([]int, width*height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			base := float64(levels)/3 + float64(levels)/3*float64(x)/float64(width)
			v := int(base + 6*math.Sin(float64(y)/9) + float64(rng.Intn(7)-3))
			if v < 0 {
				v = 0
			}
			if v >= levels {
				v = levels - 1
			}
			img[y*width+x] = v
		}
	}

	// Per-level histogram: bin i lives on dual-cube node i.
	hist := make([]int, levels)
	for _, v := range img {
		hist[v]++
	}

	// The cumulative distribution is one parallel prefix sum (2n = 8
	// communication steps regardless of image size).
	cdf, st, err := dualcube.Prefix(order, hist)
	if err != nil {
		log.Fatal(err)
	}

	// Equalization remap: level v -> round((cdf[v]-cdf_min)/(P-cdf_min)*(L-1)).
	total := width * height
	cdfMin := 0
	for _, c := range cdf {
		if c > 0 {
			cdfMin = c
			break
		}
	}
	remap := make([]int, levels)
	for v := range remap {
		remap[v] = int(math.Round(float64(cdf[v]-cdfMin) / float64(total-cdfMin) * float64(levels-1)))
	}

	lo, hi := usedRange(hist)
	fmt.Printf("input image: %dx%d, gray levels used: [%d, %d] of [0, %d]\n", width, height, lo, hi, levels-1)
	out := make([]int, levels) // histogram after equalization
	for _, v := range img {
		out[remap[v]]++
	}
	lo2, hi2 := usedRange(out)
	fmt.Printf("equalized:   gray levels used: [%d, %d]\n", lo2, hi2)
	fmt.Printf("CDF computed on D_%d in %d communication steps (%d messages)\n", order, st.Cycles, st.Messages)

	// A coarse before/after contrast report: occupied dynamic range.
	fmt.Printf("dynamic range: %.0f%% -> %.0f%%\n",
		100*float64(hi-lo+1)/float64(levels), 100*float64(hi2-lo2+1)/float64(levels))
	if hi2-lo2 <= hi-lo {
		log.Fatal("equalization failed to widen the dynamic range")
	}
}

func usedRange(hist []int) (lo, hi int) {
	lo, hi = -1, -1
	for v, c := range hist {
		if c > 0 {
			if lo < 0 {
				lo = v
			}
			hi = v
		}
	}
	return lo, hi
}
