package dualcube

import (
	"testing"

	"dualcube/internal/monoid"
	"dualcube/internal/prefix"
)

// TestNoPlanPrefixAllocGuard pins the allocation cost of a full D_prefix run
// on D_6 with no fault plan armed. The fault-injection hooks on the send
// path must stay free when disarmed: the steady-state budget has been 17
// allocs/op since the worker-pool engine landed, and the guard allows only
// small headroom over that so an accidental per-message or per-cycle
// allocation (2048 nodes x 12 cycles would add thousands) fails loudly.
func TestNoPlanPrefixAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard skipped in -short mode")
	}
	const n = 6
	const budget = 24 // PR-1 level is 17; leave room for runtime noise only
	in := make([]int, 1<<(2*n-1))
	for i := range in {
		in[i] = i*2654435761 + 1
	}
	// One worker keeps the schedule deterministic and avoids counting
	// goroutine stack growth of a cold pool against the run. The scheduler is
	// pinned to the worker pool: this guard protects the ENGINE's disarmed
	// send path (the direct executor has its own, tighter guard below).
	SetSimWorkers(1)
	SetSimScheduler(SchedulerWorkerPool)
	defer SetSimWorkers(0)
	defer SetSimScheduler(SchedulerDefault)
	m := monoid.Sum[int]()
	// Warm up once so lazily-initialized state is excluded.
	if _, _, err := prefix.DPrefix(n, in, m, true, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := prefix.DPrefix(n, in, m, true, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Fatalf("D_prefix on D_%d with no fault plan: %.0f allocs/op, budget %d (PR-1 level 17)", n, allocs, budget)
	}
}

// TestDirectPrefixAllocGuard pins the steady-state allocation cost of the
// direct kernel executor: D_prefix on a warm D_6 Runtime, explicitly routed
// through SchedulerDirect, must stay within 16 allocs/op. The direct path
// allocates only the run's flat payload/role arrays, the kernel's state,
// and the result slice — no coroutines, no per-node contexts, no channels —
// so even one stray per-node or per-step allocation (2048 nodes x 12 steps)
// blows the budget by two orders of magnitude.
func TestDirectPrefixAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard skipped in -short mode")
	}
	const n = 6
	const budget = 16 // measured steady state is 8 allocs/op
	rt, err := NewRuntime(n)
	if err != nil {
		t.Fatal(err)
	}
	rt.Warm()
	in := make([]int, rt.Nodes())
	for i := range in {
		in[i] = i*2654435761 + 1
	}
	SetSimScheduler(SchedulerDirect)
	defer SetSimScheduler(SchedulerDefault)
	if _, _, err := PrefixOn(rt, in); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := PrefixOn(rt, in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Fatalf("direct D_prefix on warm D_%d runtime: %.0f allocs/op, budget %d", n, allocs, budget)
	}
	t.Logf("direct D_prefix on warm D_%d runtime: %.0f allocs/op (budget %d)", n, allocs, budget)
}

// TestZCubeDirectPrefixAllocGuard is TestDirectPrefixAllocGuard on the
// Z-cube family: topology generality must be free in the steady state. The
// Z_6 schedule delegates to the embedded D_6 skeleton and comes out of the
// topology-keyed cache, so a warm direct prefix run must stay within the
// same 16 allocs/op budget as the dual-cube — any per-node or per-step
// regression in the generic routing (2048 nodes x 12 steps) fails loudly.
func TestZCubeDirectPrefixAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard skipped in -short mode")
	}
	const n = 6
	const budget = 16
	rt, err := NewRuntimeOn("zcube", n)
	if err != nil {
		t.Fatal(err)
	}
	rt.Warm()
	in := make([]int, rt.Nodes())
	for i := range in {
		in[i] = i*2654435761 + 1
	}
	SetSimScheduler(SchedulerDirect)
	defer SetSimScheduler(SchedulerDefault)
	if _, _, err := PrefixOn(rt, in); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := PrefixOn(rt, in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Fatalf("direct D_prefix on warm Z_%d runtime: %.0f allocs/op, budget %d", n, allocs, budget)
	}
	t.Logf("direct D_prefix on warm Z_%d runtime: %.0f allocs/op (budget %d)", n, allocs, budget)
}

// TestZCubeDirectAllReduceAllocGuard pins the direct executor's all-reduce
// on a warm Z_6 Runtime to the same 16 allocs/op ceiling: the collective
// layer's generic (topology.Comm) route must add no steady-state allocation
// over the dual-cube path.
func TestZCubeDirectAllReduceAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard skipped in -short mode")
	}
	const n = 6
	const budget = 16
	rt, err := NewRuntimeOn("zcube", n)
	if err != nil {
		t.Fatal(err)
	}
	rt.Warm()
	in := make([]int, rt.Nodes())
	for i := range in {
		in[i] = i*2654435761 + 1
	}
	SetSimScheduler(SchedulerDirect)
	defer SetSimScheduler(SchedulerDefault)
	if _, _, err := AllReduceSumOn(rt, in); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := AllReduceSumOn(rt, in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Fatalf("direct all-reduce on warm Z_%d runtime: %.0f allocs/op, budget %d", n, allocs, budget)
	}
	t.Logf("direct all-reduce on warm Z_%d runtime: %.0f allocs/op (budget %d)", n, allocs, budget)
}

// TestDirectSortAllocGuard is TestDirectPrefixAllocGuard for the sort
// family: D_sort on a warm D_6 Runtime through SchedulerDirect. The warm
// direct path allocates the run's flat payload/role arrays, the kernel and
// its key array, the comparison closure, and the result slice; the schedule
// and direction plan come from their caches. One stray allocation per node
// or per step (2048 nodes x 66 steps) would blow the budget a hundredfold.
func TestDirectSortAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard skipped in -short mode")
	}
	const n = 6
	const budget = 16
	rt, err := NewRuntime(n)
	if err != nil {
		t.Fatal(err)
	}
	rt.Warm()
	in := make([]int, rt.Nodes())
	for i := range in {
		in[i] = i * 2654435761 % rt.Nodes()
	}
	SetSimScheduler(SchedulerDirect)
	defer SetSimScheduler(SchedulerDefault)
	if _, _, err := SortOn(rt, in, Ascending); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := SortOn(rt, in, Ascending); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Fatalf("direct D_sort on warm D_%d runtime: %.0f allocs/op, budget %d", n, allocs, budget)
	}
	t.Logf("direct D_sort on warm D_%d runtime: %.0f allocs/op (budget %d)", n, allocs, budget)
}

// TestWarmRuntimeAllocGuard pins the steady-state allocation cost of Runtime
// operations once the engine pool and schedule cache are warm. Building the
// D_6 machine from scratch costs thousands of allocations (2048 node
// contexts, channels, coroutine stacks); a warm run must check everything
// out of the caches, so the budgets below — result slices plus fixed run
// bookkeeping — would be blown by even one stray per-node allocation. This
// is the contract the Runtime layer exists for: steady-state operations
// construct no topology, no engine, and no schedule.
func TestWarmRuntimeAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard skipped in -short mode")
	}
	const n = 6
	rt, err := NewRuntime(n)
	if err != nil {
		t.Fatal(err)
	}
	rt.Warm()
	in := make([]int, rt.Nodes())
	rev := make([]int, rt.Nodes())
	for i := range in {
		in[i] = i*2654435761 + 1
		rev[i] = rt.Nodes() - 1 - i
	}
	// Total-exchange inputs: an N x N matrix for the fixed form and a
	// skewed bundle matrix (lengths 0..2, including empties) for the
	// variable form. Built once outside the measured closures.
	N := rt.Nodes()
	a2aBacking := make([]int, N*N)
	a2a := make([][]int, N)
	a2av := make([][][]int, N)
	for i := range a2a {
		a2a[i] = a2aBacking[i*N : (i+1)*N]
		a2av[i] = make([][]int, N)
		for j := range a2av[i] {
			if l := (i + j) % 3; l > 0 {
				b := make([]int, l)
				for k := range b {
					b[k] = i*N + j + k
				}
				a2av[i][j] = b
			}
		}
	}
	for i := range a2aBacking {
		a2aBacking[i] = i * 31
	}
	SetSimWorkers(1)
	defer SetSimWorkers(0)

	cases := []struct {
		name   string
		budget float64
		run    func() error
	}{
		{"PrefixOn", 24, func() error {
			_, _, err := PrefixOn(rt, in)
			return err
		}},
		{"AllReduceSumOn", 24, func() error {
			_, _, err := AllReduceSumOn(rt, in)
			return err
		}},
		// Broadcast moves one value, so its warm floor is flat like prefix
		// (measured 7 allocs/op). Since the payload-plane rewrite the
		// bundle collectives are flat too: values sit in a pooled arena and
		// only extents (or int32 ids) move, so a warm run allocates the
		// result storage plus fixed bookkeeping — measured 6 (gather),
		// 6 (scatter), 8 (all-gather) allocs/op on D_6, down from 4102,
		// 8176 and 26636 on the slice-of-bundles path. The ceilings leave
		// noise headroom only: one stray per-node allocation (2048 nodes)
		// blows any of them loudly.
		{"BroadcastOn", 16, func() error {
			_, _, err := BroadcastOn(rt, 3, 42)
			return err
		}},
		{"GatherOn", 16, func() error {
			_, _, err := GatherOn(rt, 1, in)
			return err
		}},
		{"ScatterOn", 16, func() error {
			_, _, err := ScatterOn(rt, 1, in)
			return err
		}},
		{"AllGatherOn", 16, func() error {
			_, _, err := AllGatherOn(rt, in)
			return err
		}},
		// The total exchanges route N² ids through the pooled route plane;
		// a warm run allocates the result slab (one backing plus row
		// headers, three slabs for the variable form) and fixed
		// bookkeeping. Permute routes one value per node through pooled
		// kernel state and stays flat like prefix (measured 11 allocs/op).
		{"AllToAllOn", 24, func() error {
			_, _, err := AllToAllOn(rt, a2a)
			return err
		}},
		{"AllToAllVOn", 24, func() error {
			_, _, err := AllToAllVOn(rt, a2av)
			return err
		}},
		{"PermuteOn", 16, func() error {
			_, _, err := PermuteOn(rt, rev, in)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Warm up once so the typed engine for this operation is pooled.
			if err := tc.run(); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := tc.run(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > tc.budget {
				t.Fatalf("warm %s on D_%d: %.0f allocs/op, budget %.0f — steady-state runs must not rebuild topology or engines", tc.name, n, allocs, tc.budget)
			}
			t.Logf("warm %s on D_%d: %.0f allocs/op (budget %.0f)", tc.name, n, allocs, tc.budget)
		})
	}
}
