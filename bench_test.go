// Benchmarks, one per experiment in DESIGN.md's index. Each measures the
// wall-clock cost of one full simulated run under the configured scheduler
// (the worker-pool engine by default; BenchmarkSchedulers compares it with
// the goroutine-per-node engine); the step counts the paper's theorems
// bound are asserted in the unit tests and reported by cmd/dcbench — here
// we measure the simulator.
//
// Run: go test -bench=. -benchmem
package dualcube

import (
	"fmt"
	"math/rand"
	"testing"

	"dualcube/internal/collective"
	"dualcube/internal/embedding"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/ntt"
	"dualcube/internal/prefix"
	"dualcube/internal/samplesort"
	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
)

func benchInput(n int) []int {
	N := 1 << (2*n - 1)
	rng := rand.New(rand.NewSource(int64(n)))
	in := make([]int, N)
	for i := range in {
		in[i] = rng.Intn(1 << 20)
	}
	return in
}

// BenchmarkE2Diameter measures the all-pairs BFS diameter check of the
// structural experiment.
func BenchmarkE2Diameter(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		d := topology.MustDualCube(n)
		b.Run(fmt.Sprintf("D_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if topology.DiameterBFS(d) != d.Diameter() {
					b.Fatal("diameter mismatch")
				}
			}
		})
	}
}

// BenchmarkE4DPrefix: Algorithm 2 (cluster-technique prefix) on D_n.
func BenchmarkE4DPrefix(b *testing.B) {
	for _, n := range []int{2, 3, 4, 5, 6, 7} {
		in := benchInput(n)
		b.Run(fmt.Sprintf("D_%d/nodes=%d", n, len(in)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := prefix.DPrefix(n, in, monoid.Sum[int](), true, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4EmulatedPrefix: the ablation — naive hypercube emulation.
func BenchmarkE4EmulatedPrefix(b *testing.B) {
	for _, n := range []int{2, 3, 4, 5} {
		in := benchInput(n)
		b.Run(fmt.Sprintf("D_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := prefix.EmulatedCubePrefix(n, in, monoid.Sum[int](), true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5CubePrefix: Algorithm 1 on the equal-sized hypercube.
func BenchmarkE5CubePrefix(b *testing.B) {
	for _, q := range []int{3, 5, 7, 9, 11} {
		rng := rand.New(rand.NewSource(int64(q)))
		in := make([]int, 1<<q)
		for i := range in {
			in[i] = rng.Intn(1 << 20)
		}
		b.Run(fmt.Sprintf("Q_%d/nodes=%d", q, len(in)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := prefix.CubePrefix(q, in, monoid.Sum[int](), true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8DSort: Algorithm 3 on D_n.
func BenchmarkE8DSort(b *testing.B) {
	for _, n := range []int{2, 3, 4, 5} {
		in := benchInput(n)
		b.Run(fmt.Sprintf("D_%d/nodes=%d", n, len(in)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sortnet.DSort(n, in, func(a, b int) bool { return a < b }, sortnet.Ascending, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9CubeSort: bitonic sort baseline on Q_{2n-1}.
func BenchmarkE9CubeSort(b *testing.B) {
	for _, q := range []int{3, 5, 7, 9} {
		rng := rand.New(rand.NewSource(int64(q)))
		in := make([]int, 1<<q)
		for i := range in {
			in[i] = rng.Intn(1 << 20)
		}
		b.Run(fmt.Sprintf("Q_%d/nodes=%d", q, len(in)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sortnet.CubeSort(q, in, func(a, b int) bool { return a < b }, sortnet.Ascending); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12PrefixLarge: k elements per node; communication constant in k.
func BenchmarkE12PrefixLarge(b *testing.B) {
	const n = 3
	for _, k := range []int{1, 16, 256} {
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(int64(k)))
		in := make([]int, k*N)
		for i := range in {
			in[i] = rng.Intn(1 << 20)
		}
		b.Run(fmt.Sprintf("D_%d/k=%d", n, k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := prefix.DPrefixLarge(n, k, in, monoid.Sum[int](), true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12SortLarge: merge-split sort with k keys per node.
func BenchmarkE12SortLarge(b *testing.B) {
	const n = 3
	for _, k := range []int{1, 16, 64} {
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(int64(k)))
		in := make([]int, k*N)
		for i := range in {
			in[i] = rng.Intn(1 << 20)
		}
		b.Run(fmt.Sprintf("D_%d/k=%d", n, k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sortnet.DSortLarge(n, k, in, func(a, b int) bool { return a < b }, sortnet.Ascending); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE13Collectives: broadcast, all-reduce and gather at 2n steps.
func BenchmarkE13Collectives(b *testing.B) {
	for _, n := range []int{4, 7} {
		in := benchInput(n)
		b.Run(fmt.Sprintf("Broadcast/D_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := collective.Broadcast(n, 5, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("AllReduce/D_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := collective.AllReduce(n, in, monoid.Sum[int]()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Gather/D_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := collective.Gather(n, 5, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulers runs the same D_prefix workload under all three
// execution backends — the two simulator engines and the direct kernel
// executor — the head-to-head behind the backend numbers in EXPERIMENTS.md
// (E21 pins direct at >= 2x over the worker pool on D_6).
func BenchmarkSchedulers(b *testing.B) {
	for _, n := range []int{5, 6} {
		in := benchInput(n)
		for _, s := range []Scheduler{SchedulerWorkerPool, SchedulerGoroutinePerNode, SchedulerDirect} {
			b.Run(fmt.Sprintf("%v/D_%d", s, n), func(b *testing.B) {
				b.ReportAllocs()
				SetSimScheduler(s)
				defer SetSimScheduler(SchedulerDefault)
				for i := 0; i < b.N; i++ {
					if _, _, err := prefix.DPrefix(n, in, monoid.Sum[int](), true, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE22SortSchedulers runs the same D_sort workload under all three
// execution backends — the head-to-head behind the sort kernelization
// numbers in EXPERIMENTS.md (E22 pins direct at >= 5x over the worker pool
// on D_4, mirroring what E21 measured for prefix).
func BenchmarkE22SortSchedulers(b *testing.B) {
	for _, n := range []int{4, 5, 6} {
		in := benchInput(n)
		for _, s := range []Scheduler{SchedulerWorkerPool, SchedulerGoroutinePerNode, SchedulerDirect} {
			b.Run(fmt.Sprintf("%v/D_%d", s, n), func(b *testing.B) {
				b.ReportAllocs()
				SetSimScheduler(s)
				defer SetSimScheduler(SchedulerDefault)
				for i := 0; i < b.N; i++ {
					if _, _, err := sortnet.DSort(n, in, func(a, x int) bool { return a < x }, sortnet.Ascending, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStepKinds isolates the simulator's per-cycle cost for the two
// kinds of dimension step D_sort uses: the 1-cycle cross-edge exchange and
// the 3-cycle routed exchange (the ablation behind Theorem 2's constant).
func BenchmarkStepKinds(b *testing.B) {
	d := topology.MustDualCube(4)
	b.Run("cross-exchange-1cycle", func(b *testing.B) {
		b.ReportAllocs()
		eng := machine.MustNew[int](d, machine.Config{})
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(func(c *machine.Ctx[int]) {
				c.Exchange(d.CrossNeighbor(c.ID()), c.ID())
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("routed-exchange-3cycles", func(b *testing.B) {
		b.ReportAllocs()
		eng := machine.MustNew[int](d, machine.Config{})
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(func(c *machine.Ctx[int]) {
				// dimension 1 is routed for half the nodes.
				r := d.ToRecursive(c.ID())
				if d.RecDirect(r, 1) {
					jp := d.FromRecursive(r ^ 2)
					cr := d.CrossNeighbor(c.ID())
					_, f := c.SendRecv2(jp, c.ID(), jp, cr)
					rel := c.SendRecv(jp, f, jp)
					c.Send(cr, rel)
				} else {
					cr := d.CrossNeighbor(c.ID())
					c.Send(cr, c.ID())
					c.Idle()
					c.Recv(cr)
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMachineBarrier measures the raw lockstep cost: 100 idle cycles.
func BenchmarkMachineBarrier(b *testing.B) {
	for _, n := range []int{2, 3, 4, 5} {
		d := topology.MustDualCube(n)
		eng := machine.MustNew[int](d, machine.Config{})
		b.Run(fmt.Sprintf("D_%d/nodes=%d", n, d.Nodes()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(func(c *machine.Ctx[int]) {
					for k := 0; k < 100; k++ {
						c.Exchange(d.CrossNeighbor(c.ID()), k)
					}
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPermute: oblivious permutation routing (one sort's cost).
func BenchmarkPermute(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(int64(n)))
		dests := rng.Perm(N)
		values := make([]int, N)
		for i := range values {
			values[i] = rng.Int()
		}
		b.Run(fmt.Sprintf("D_%d/nodes=%d", n, N), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sortnet.Permute(n, dests, values); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllToAll: the total exchange (2n rounds, O(N) payload per node).
func BenchmarkAllToAll(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		N := 1 << (2*n - 1)
		in := make([][]int, N)
		for i := range in {
			in[i] = make([]int, N)
			for j := range in[i] {
				in[i][j] = i*N + j
			}
		}
		b.Run(fmt.Sprintf("D_%d/nodes=%d", n, N), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := collective.AllToAll(n, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSegmentedPrefix: segmentation is free (same 2n steps).
func BenchmarkSegmentedPrefix(b *testing.B) {
	const n = 4
	N := 1 << (2*n - 1)
	values := make([]int, N)
	heads := make([]bool, N)
	for i := range values {
		values[i] = i
		heads[i] = i%7 == 0
	}
	b.Run(fmt.Sprintf("D_%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := prefix.DPrefixSegmented(n, values, heads, monoid.Sum[int]()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHamiltonianCycle: constructing + verifying the ring embedding.
func BenchmarkHamiltonianCycle(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		d := topology.MustDualCube(n)
		b.Run(fmt.Sprintf("D_%d/nodes=%d", n, d.Nodes()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cycle, err := embedding.DualCubeHamiltonianCycle(n)
				if err != nil {
					b.Fatal(err)
				}
				if err := embedding.VerifyCycle(d, cycle); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNTT: the emulated butterfly (E16) on dual-cube vs hypercube.
func BenchmarkNTT(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		N := 1 << (2*n - 1)
		in := make([]uint64, N)
		for i := range in {
			in[i] = uint64(i*2654435761) % ntt.Mod
		}
		b.Run(fmt.Sprintf("dualcube/D_%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := ntt.Transform(n, in, false); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("hypercube/Q_%d", 2*n-1), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := ntt.CubeTransform(n, in, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE20PrefixColdVsWarm isolates what the Runtime layer caches. The
// cold case drops every pooled engine before each run, so each call rebuilds
// the full D_6 machine (2048 node contexts, mailboxes, coroutine stacks); the
// warm case reuses the pooled engine and the compiled schedule, which is the
// steady state of a long-lived Runtime.
func BenchmarkE20PrefixColdVsWarm(b *testing.B) {
	const n = 6
	in := benchInput(n)
	rt, err := NewRuntime(n)
	if err != nil {
		b.Fatal(err)
	}
	b.Run(fmt.Sprintf("cold/D_%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			machine.ResetEnginePool()
			if _, _, err := PrefixOn(rt, in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("warm/D_%d", n), func(b *testing.B) {
		b.ReportAllocs()
		rt.Warm()
		if _, _, err := PrefixOn(rt, in); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := PrefixOn(rt, in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE17SampleSort: the collective-based sorting family vs bitonic.
func BenchmarkE17SampleSort(b *testing.B) {
	const k = 16
	for _, n := range []int{2, 3, 4} {
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(int64(n)))
		in := make([]int, k*N)
		for i := range in {
			in[i] = rng.Intn(1 << 20)
		}
		b.Run(fmt.Sprintf("samplesort/D_%d/k=%d", n, k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := samplesort.Sort(n, k, in, func(a, b int) bool { return a < b }); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("bitonic/D_%d/k=%d", n, k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sortnet.DSortLarge(n, k, in, func(a, b int) bool { return a < b }, sortnet.Ascending); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
