package dualcube

import (
	"fmt"
	"sync"
	"testing"
)

// TestRuntimeConcurrent drives one shared Runtime from many goroutines with
// a mix of operations and requires every result — outputs and the full
// Stats — to be byte-identical to the serial run. Checked-out engines are
// exclusive to one run, the topology and compiled schedules are immutable,
// so concurrent use must be race-free (the CI race step runs this under
// -race) and deterministic.
func TestRuntimeConcurrent(t *testing.T) {
	const n = 3
	rt, err := NewRuntime(n)
	if err != nil {
		t.Fatal(err)
	}
	rt.Warm()
	N := rt.Nodes()
	in := make([]int, N)
	keys := make([]int, N)
	for i := range in {
		in[i] = i*37 + 5
		keys[i] = N - i
	}

	// Serial references.
	wantPrefix, stPrefix, err := PrefixOn(rt, in)
	if err != nil {
		t.Fatal(err)
	}
	wantSort, stSort, err := SortOn(rt, keys, Ascending)
	if err != nil {
		t.Fatal(err)
	}
	wantReduce, stReduce, err := AllReduceSumOn(rt, in)
	if err != nil {
		t.Fatal(err)
	}
	wantBcast, stBcast, err := BroadcastOn(rt, 5, 42)
	if err != nil {
		t.Fatal(err)
	}

	check := func(op string, got []int, want []int, st, wantSt Stats) error {
		if st != wantSt {
			return fmt.Errorf("%s: stats diverge from serial run:\n  serial:     %+v\n  concurrent: %+v", op, wantSt, st)
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("%s: out[%d] = %d, want %d", op, i, got[i], want[i])
			}
		}
		return nil
	}

	const workers = 8
	const iters = 4
	errs := make(chan error, workers*iters)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				var err error
				switch (w + it) % 4 {
				case 0:
					out, st, e := PrefixOn(rt, in)
					if e != nil {
						err = e
						break
					}
					err = check("prefix", out, wantPrefix, st, stPrefix)
				case 1:
					out, st, e := SortOn(rt, keys, Ascending)
					if e != nil {
						err = e
						break
					}
					err = check("sort", out, wantSort, st, stSort)
				case 2:
					out, st, e := AllReduceSumOn(rt, in)
					if e != nil {
						err = e
						break
					}
					err = check("allreduce", out, wantReduce, st, stReduce)
				case 3:
					out, st, e := BroadcastOn(rt, 5, 42)
					if e != nil {
						err = e
						break
					}
					err = check("broadcast", out, wantBcast, st, stBcast)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRuntimeSharesCaches checks that independently constructed Runtimes of
// the same order and the package-default Runtime all share the one cached
// topology instance.
func TestRuntimeSharesCaches(t *testing.T) {
	a, err := NewRuntime(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRuntime(4)
	if err != nil {
		t.Fatal(err)
	}
	if a.d != b.d {
		t.Error("two Runtimes of order 4 hold distinct topology instances")
	}
	def, err := defaultRuntime(4)
	if err != nil {
		t.Fatal(err)
	}
	if def.d != a.d {
		t.Error("package-default Runtime holds a distinct topology instance")
	}
}

// TestRuntimeRejectsBadOrder checks the shared range error surfaces through
// NewRuntime and the one-shot wrappers alike.
func TestRuntimeRejectsBadOrder(t *testing.T) {
	for _, n := range []int{0, -1, 15} {
		if _, err := NewRuntime(n); err == nil {
			t.Errorf("NewRuntime(%d): accepted, want error", n)
		}
		if _, _, err := Prefix(n, []int{}); err == nil {
			t.Errorf("Prefix(%d): accepted, want error", n)
		}
	}
}
