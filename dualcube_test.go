package dualcube

import (
	"math/rand"
	"testing"

	"dualcube/internal/monoid"
	"dualcube/internal/seq"
)

func intLess(a, b int) bool { return a < b }

func seqSum() monoid.Monoid[int] { return monoid.Sum[int]() }

func TestNewNetwork(t *testing.T) {
	nw, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Order() != 3 || nw.Nodes() != 32 || nw.Degree() != 3 || nw.Diameter() != 6 || nw.ClusterSize() != 4 {
		t.Errorf("D_3 facade: order=%d nodes=%d degree=%d diam=%d cs=%d",
			nw.Order(), nw.Nodes(), nw.Degree(), nw.Diameter(), nw.ClusterSize())
	}
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
}

func TestNetworkStructureQueries(t *testing.T) {
	nw, _ := New(2)
	if nw.Class(0) != 0 || nw.Class(4) != 1 {
		t.Error("Class broken")
	}
	if nw.CrossNeighbor(0) != 4 || nw.CrossNeighbor(4) != 0 {
		t.Error("CrossNeighbor broken")
	}
	if !nw.HasEdge(0, 1) || nw.HasEdge(0, 2) {
		t.Error("HasEdge broken")
	}
	ns := nw.Neighbors(0)
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 4 {
		t.Errorf("Neighbors(0) = %v", ns)
	}
	if nw.ClusterID(1) != 0 || nw.LocalID(1) != 1 {
		t.Error("cluster addressing broken")
	}
	// Nodes 0 and 2 lie in distinct class-0 clusters: Hamming distance 1
	// plus 2 for the cross-edge detour.
	if d := nw.Distance(0, 2); d != 3 {
		t.Errorf("Distance(0,2) = %d, want 3 (same class, different cluster)", d)
	}
	path := nw.Route(0, 2)
	if path[0] != 0 || path[len(path)-1] != 2 || len(path)-1 != 3 {
		t.Errorf("Route(0,2) = %v", path)
	}
	if nw.FromRecursive(nw.ToRecursive(5)) != 5 {
		t.Error("recursive round-trip broken")
	}
}

func TestPrefixFacade(t *testing.T) {
	n := 3
	N := 1 << (2*n - 1)
	in := make([]int, N)
	for i := range in {
		in[i] = i + 1
	}
	got, st, err := Prefix(n, in)
	if err != nil {
		t.Fatal(err)
	}
	acc := 0
	for i := range in {
		acc += in[i]
		if got[i] != acc {
			t.Fatalf("prefix[%d] = %d, want %d", i, got[i], acc)
		}
	}
	if st.Cycles != 2*n {
		t.Errorf("prefix comm = %d, want %d", st.Cycles, 2*n)
	}
}

func TestPrefixFuncNonCommutative(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	in := make([]string, N)
	for i := range in {
		in[i] = string(rune('a' + i))
	}
	got, _, err := PrefixFunc(n, in,
		func() string { return "" },
		func(a, b string) string { return a + b },
		false)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "" || got[N-1] != "abcdefg" {
		t.Errorf("diminished concat prefix: %v", got)
	}
}

func TestPrefixLargeFacade(t *testing.T) {
	n, k := 2, 4
	N := 1 << (2*n - 1)
	in := make([]float64, k*N)
	for i := range in {
		in[i] = 0.5
	}
	got, st, err := PrefixLarge(n, k, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 0.5*float64(i+1) {
			t.Fatalf("large prefix[%d] = %v", i, got[i])
		}
	}
	if st.Cycles != 2*n {
		t.Errorf("comm = %d", st.Cycles)
	}
	// Func variant, diminished.
	got2, _, err := PrefixLargeFunc(n, k, in,
		func() float64 { return 0 },
		func(a, b float64) float64 { return a + b },
		false)
	if err != nil {
		t.Fatal(err)
	}
	if got2[0] != 0 || got2[len(got2)-1] != 0.5*float64(k*N-1) {
		t.Errorf("diminished large prefix ends: %v %v", got2[0], got2[len(got2)-1])
	}
}

func TestSortFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 3
	N := 1 << (2*n - 1)
	in := make([]int, N)
	for i := range in {
		in[i] = rng.Intn(1000)
	}
	got, st, err := Sort(n, in, Ascending)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.IsSorted(got, intLess) || !seq.SameMultiset(in, got, intLess) {
		t.Errorf("Sort failed: %v", got)
	}
	if st.Cycles != 6*n*n-7*n+2 {
		t.Errorf("sort comm = %d, want %d", st.Cycles, 6*n*n-7*n+2)
	}
	down, _, err := Sort(n, in, Descending)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.IsSortedDesc(down, intLess) {
		t.Error("descending sort failed")
	}
}

func TestSortFuncRecords(t *testing.T) {
	type rec struct {
		key  float64
		name string
	}
	n := 2
	N := 1 << (2*n - 1)
	in := make([]rec, N)
	for i := range in {
		in[i] = rec{key: float64((i * 3) % N), name: string(rune('A' + i))}
	}
	got, _, err := SortFunc(n, in, func(a, b rec) bool { return a.key < b.key }, Ascending)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < N; i++ {
		if got[i].key < got[i-1].key {
			t.Fatalf("records unsorted: %v", got)
		}
	}
}

func TestSortLargeFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, k := 2, 5
	N := 1 << (2*n - 1)
	in := make([]int, k*N)
	for i := range in {
		in[i] = rng.Intn(100)
	}
	got, _, err := SortLarge(n, k, in, Ascending)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.IsSorted(got, intLess) || !seq.SameMultiset(in, got, intLess) {
		t.Error("SortLarge failed")
	}
	got2, _, err := SortLargeFunc(n, k, in, intLess, Descending)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.IsSortedDesc(got2, intLess) {
		t.Error("SortLargeFunc descending failed")
	}
}

func TestCollectiveFacades(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	bc, st, err := Broadcast(n, 3, "hello")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bc {
		if v != "hello" {
			t.Fatal("broadcast failed")
		}
	}
	if st.Cycles != 2*n {
		t.Errorf("broadcast comm = %d", st.Cycles)
	}

	in := make([]int, N)
	for i := range in {
		in[i] = i
	}
	ar, _, err := AllReduceSum(n, in)
	if err != nil {
		t.Fatal(err)
	}
	want := N * (N - 1) / 2
	for _, v := range ar {
		if v != want {
			t.Fatalf("allreduce = %d, want %d", v, want)
		}
	}

	cat, _, err := AllReduce(n, []string{"a", "b", "c", "d", "e", "f", "g", "h"},
		func() string { return "" },
		func(a, b string) string { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if cat[0] != "abcdefgh" {
		t.Errorf("ordered allreduce = %q", cat[0])
	}

	g, _, err := Gather(n, 5, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if g[i] != in[i] {
			t.Fatal("gather failed")
		}
	}
}

func TestPrefixSegmentedFacade(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	values := []int{1, 2, 3, 4, 5, 6, 7, 8}
	heads := make([]bool, N)
	heads[4] = true
	got, st, err := PrefixSegmented(n, values, heads,
		func() int { return 0 },
		func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 6, 10, 5, 11, 18, 26}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segmented prefix = %v", got)
		}
	}
	if st.Cycles != 2*n {
		t.Errorf("segmented prefix comm = %d", st.Cycles)
	}
}

func TestScatterAllGatherFacade(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	nw, _ := New(n)
	in := []int{10, 20, 30, 40, 50, 60, 70, 80}
	sc, _, err := Scatter(n, 0, in)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < N; u++ {
		// Node u holds element DataIndex(u); for class-0 nodes that is u.
		if nw.Class(u) == 0 && sc[u] != in[u] {
			t.Fatalf("scatter node %d = %d", u, sc[u])
		}
	}
	ag, _, err := AllGather(n, in)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < N; u++ {
		for i := range in {
			if ag[u][i] != in[i] {
				t.Fatalf("allgather node %d element %d", u, i)
			}
		}
	}
}

func TestPermuteFacade(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	dests := make([]int, N)
	values := make([]int, N)
	for i := range dests {
		dests[i] = (i + 3) % N
		values[i] = i * 11
	}
	got, _, err := Permute(n, dests, values)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if got[dests[i]] != values[i] {
			t.Fatalf("permute wrong at %d", i)
		}
	}
}

func TestHamiltonianCycleFacade(t *testing.T) {
	nw, _ := New(3)
	cycle, err := HamiltonianCycle(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycle) != nw.Nodes() {
		t.Fatalf("cycle length %d", len(cycle))
	}
	seen := map[int]bool{}
	for i, u := range cycle {
		if seen[u] {
			t.Fatalf("node %d repeated", u)
		}
		seen[u] = true
		if !nw.HasEdge(u, cycle[(i+1)%len(cycle)]) {
			t.Fatalf("non-edge in cycle at %d", i)
		}
	}
	if _, err := HamiltonianCycle(1); err == nil {
		t.Error("D_1 cycle should fail")
	}
}

func TestAllToAllFacade(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	in := make([][]int, N)
	for i := range in {
		in[i] = make([]int, N)
		for j := range in[i] {
			in[i][j] = 100*i + j
		}
	}
	out, st, err := AllToAll(n, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			if out[j][i] != in[i][j] {
				t.Fatalf("alltoall wrong at %d,%d", i, j)
			}
		}
	}
	if st.Cycles != 2*n {
		t.Errorf("alltoall comm = %d", st.Cycles)
	}
}

func TestSampleSortFacade(t *testing.T) {
	n, k := 2, 8
	N := 1 << (2*n - 1)
	rng := rand.New(rand.NewSource(9))
	in := make([]int, k*N)
	for i := range in {
		in[i] = rng.Intn(1000)
	}
	got, st, err := SampleSort(n, k, in)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.IsSorted(got, intLess) || !seq.SameMultiset(in, got, intLess) {
		t.Error("SampleSort failed")
	}
	if st.Cycles != 4*n {
		t.Errorf("sample sort rounds = %d, want %d", st.Cycles, 4*n)
	}
	type rec struct{ k, v int }
	rin := make([]rec, k*N)
	for i := range rin {
		rin[i] = rec{k: rng.Intn(100), v: i}
	}
	rgot, _, err := SampleSortFunc(n, k, rin, func(a, b rec) bool { return a.k < b.k })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rgot); i++ {
		if rgot[i].k < rgot[i-1].k {
			t.Fatal("SampleSortFunc unsorted")
		}
	}
}

func TestAllToAllVFacade(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	in := make([][][]int, N)
	for i := range in {
		in[i] = make([][]int, N)
		in[i][(i+1)%N] = []int{i}
	}
	out, _, err := AllToAllV(n, in)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < N; j++ {
		src := (j + N - 1) % N
		if len(out[j][src]) != 1 || out[j][src][0] != src {
			t.Fatalf("alltoallv wrong at %d", j)
		}
	}
}

func TestNTTFacade(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	in := make([]uint64, N)
	for i := range in {
		in[i] = uint64(i + 1)
	}
	fwd, _, err := NTT(n, in, false)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := NTT(n, fwd, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if back[i] != in[i] {
			t.Fatalf("NTT round trip broke %d", i)
		}
	}
	prod, _, err := PolyMulMod(n, []uint64{1, 1}, []uint64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 3, 3, 1} // (1+x)(1+x)^2 = (1+x)^3
	for i := range want {
		if prod[i] != want[i] {
			t.Fatalf("PolyMulMod = %v", prod)
		}
	}
}

func TestPrefixDegradedFacade(t *testing.T) {
	const n = 4
	N := 1 << (2*n - 1)
	rng := rand.New(rand.NewSource(21))
	in := make([]int, N)
	for i := range in {
		in[i] = rng.Intn(100)
	}
	want := seq.ScanInclusive(in, seqSum())
	for f := 0; f < n; f++ {
		plan, err := RandomFaultPlan(n, f, int64(40+f))
		if err != nil {
			t.Fatal(err)
		}
		out, st, err := PrefixDegraded(n, in, plan)
		if err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("f=%d: out[%d]=%d, want %d", f, i, out[i], want[i])
			}
		}
		if st.Faults.DownLinks != 2*f {
			t.Errorf("f=%d: DownLinks=%d, want %d", f, st.Faults.DownLinks, 2*f)
		}
	}
	// Diminished prefix through the Func variant, under the max fault load.
	plan, _ := RandomFaultPlan(n, n-1, 8)
	out, _, err := PrefixDegradedFunc(n, in, func() int { return 0 }, func(a, b int) int { return a + b }, false, plan)
	if err != nil {
		t.Fatal(err)
	}
	ex := seq.ScanExclusive(in, seqSum())
	for i := range ex {
		if out[i] != ex[i] {
			t.Fatalf("diminished f=%d: out[%d]=%d, want %d", n-1, i, out[i], ex[i])
		}
	}
}

// TestSetSimFaultPlanArms checks the process-wide hook: with a plan armed, a
// non-fault-tolerant algorithm touching a failed link aborts with a protocol
// error, and disarming restores normal operation.
func TestSetSimFaultPlanArms(t *testing.T) {
	const n = 2
	plan := &FaultPlan{Links: []FaultLink{{U: 0, V: 1}}}
	SetSimFaultPlan(plan)
	defer SetSimFaultPlan(nil)
	in := make([]int, 1<<(2*n-1))
	if _, _, err := Prefix(n, in); err == nil {
		t.Fatal("Prefix over a failed link succeeded with a plan armed")
	}
	SetSimFaultPlan(nil)
	if _, _, err := Prefix(n, in); err != nil {
		t.Fatalf("disarmed Prefix failed: %v", err)
	}
}
