package dualcube

import (
	"fmt"
	"time"

	"dualcube/internal/fault"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// Scheduler selects the simulator execution engine used by all algorithm
// entry points of this package. See the internal/machine package comment
// for the semantics; both schedulers produce identical results and Stats.
type Scheduler = machine.Sched

const (
	// SchedulerWorkerPool is the default: a stepped scheduler with
	// W ≈ GOMAXPROCS workers advancing node coroutines cycle-by-cycle and
	// synchronizing through a W-party sense-reversing barrier.
	SchedulerWorkerPool Scheduler = machine.SchedWorkerPool
	// SchedulerGoroutinePerNode is the original engine: one goroutine per
	// node, an N-party barrier per clock cycle. Slower, but it tolerates
	// node programs that block on synchronization of their own between
	// clock boundaries.
	SchedulerGoroutinePerNode Scheduler = machine.SchedGoroutinePerNode
)

// SetSimScheduler selects the execution engine for all subsequent
// simulated runs. The zero value machine.SchedDefault restores the default
// (the worker pool). Affects process-wide state; intended for program
// start-up or test setup, not for concurrent reconfiguration.
func SetSimScheduler(s Scheduler) { machine.SetDefaultSched(s) }

// SetSimTimeout overrides the simulator watchdog for all subsequent runs.
// The watchdog aborts runs that stop making progress (for example, a node
// program blocked outside the machine's primitives). d <= 0 restores the
// default, which scales with machine size: 60s plus 30ms per node.
func SetSimTimeout(d time.Duration) { machine.SetDefaultTimeout(d) }

// SetSimWorkers overrides the worker-pool size for all subsequent runs.
// k <= 0 restores the default (GOMAXPROCS). The pool clamps the count to
// the machine's node count.
func SetSimWorkers(k int) { machine.SetDefaultWorkers(k) }

// FaultPlan is a seeded, reproducible fault scenario for the simulator:
// permanent link and node failures plus transient per-message drop/delay
// noise. The same plan (or two plans with equal fields) always produces the
// same faults and the same Stats.Faults, under either scheduler.
type FaultPlan = fault.Plan

// FaultLink names one undirected dual-cube link inside a FaultPlan.
type FaultLink = fault.Link

// FaultStats is the per-run fault breakdown reported in Stats.Faults.
type FaultStats = machine.FaultStats

// SetSimFaultPlan arms plan for every subsequent simulated run of this
// package's algorithms; nil disarms (the default — with no plan armed the
// simulator's send path is unchanged from the fault-free engine). Algorithms
// that are not fault-tolerant abort with a protocol error when their schedule
// touches failed hardware; PrefixDegraded arms its own plan explicitly and
// survives it. Process-wide, like SetSimScheduler.
func SetSimFaultPlan(plan *FaultPlan) { machine.SetDefaultFaults(plan.Spec()) }

// RandomFaultPlan builds a seeded plan of f random permanent link faults on
// D_n. Keep f <= n-1 (the link connectivity of D_n) for the guarantee that
// every fault-tolerant schedule survives; larger f is allowed but may
// disconnect the network.
func RandomFaultPlan(n, f int, seed int64) (*FaultPlan, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, err
	}
	if f < 0 || f > d.Nodes()*d.Order()/2 {
		return nil, fmt.Errorf("dualcube: fault count %d outside 0..%d", f, d.Nodes()*d.Order()/2)
	}
	return fault.Random(d, f, seed), nil
}
