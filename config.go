package dualcube

import (
	"fmt"
	"time"

	"dualcube/internal/fault"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// Scheduler selects the execution backend used by all algorithm entry
// points of this package. See the internal/machine package comment for the
// semantics; every backend produces identical results and Stats. With no
// selection, schedule-driven operations use the direct kernel executor and
// everything else uses the worker-pool engine.
type Scheduler = machine.Sched

const (
	// SchedulerDefault restores the default backend selection: the direct
	// kernel executor for schedule-driven operations, the worker pool for
	// engine runs.
	SchedulerDefault Scheduler = machine.SchedDefault
	// SchedulerWorkerPool is the engine default: a stepped scheduler with
	// W ≈ GOMAXPROCS workers advancing node coroutines cycle-by-cycle and
	// synchronizing through a W-party sense-reversing barrier.
	SchedulerWorkerPool Scheduler = machine.SchedWorkerPool
	// SchedulerGoroutinePerNode is the original engine: one goroutine per
	// node, an N-party barrier per clock cycle. Slower, but it tolerates
	// node programs that block on synchronization of their own between
	// clock boundaries.
	SchedulerGoroutinePerNode Scheduler = machine.SchedGoroutinePerNode
	// SchedulerDirect is the direct kernel executor: schedule-driven
	// operations (prefix, the collectives) run as array kernels over flat
	// state — no coroutines, no lockstep barrier — reproducing the
	// interpreter's outputs and Stats exactly. This is the default for
	// schedule-driven operations when no scheduler is selected; selecting it
	// explicitly keeps direct execution while engine-only runs (RunRecorded,
	// custom node programs) fall back to the worker pool.
	SchedulerDirect Scheduler = machine.SchedDirect
)

// SetSimScheduler selects the execution backend for all subsequent runs.
// The zero value machine.SchedDefault restores the defaults (direct kernel
// execution for schedule-driven operations, the worker pool for engine
// runs). Selecting an engine scheduler forces every operation — including
// schedule-driven ones — through that engine. Affects process-wide state; intended for program
// start-up or test setup, not for concurrent reconfiguration.
func SetSimScheduler(s Scheduler) { machine.SetDefaultSched(s) }

// SetSimTimeout overrides the simulator watchdog for all subsequent runs.
// The watchdog aborts runs that stop making progress (for example, a node
// program blocked outside the machine's primitives). d <= 0 restores the
// default, which scales with machine size: 60s plus 30ms per node.
func SetSimTimeout(d time.Duration) { machine.SetDefaultTimeout(d) }

// SetSimWorkers overrides the worker-pool size for all subsequent runs.
// k <= 0 restores the default (GOMAXPROCS). The pool clamps the count to
// the machine's node count.
func SetSimWorkers(k int) { machine.SetDefaultWorkers(k) }

// FaultPlan is a seeded, reproducible fault scenario for the simulator:
// permanent link and node failures plus transient per-message drop/delay
// noise. The same plan (or two plans with equal fields) always produces the
// same faults and the same Stats.Faults, under either scheduler.
type FaultPlan = fault.Plan

// FaultLink names one undirected dual-cube link inside a FaultPlan.
type FaultLink = fault.Link

// FaultStats is the per-run fault breakdown reported in Stats.Faults.
type FaultStats = machine.FaultStats

// SetSimFaultPlan arms plan for every subsequent simulated run of this
// package's algorithms; nil disarms (the default — with no plan armed the
// simulator's send path is unchanged from the fault-free engine). Algorithms
// that are not fault-tolerant abort with a protocol error when their schedule
// touches failed hardware; PrefixDegraded arms its own plan explicitly and
// survives it. Process-wide, like SetSimScheduler.
func SetSimFaultPlan(plan *FaultPlan) { machine.SetDefaultFaults(plan.Spec()) }

// RandomFaultPlan builds a seeded plan of f random permanent link faults on
// D_n. Keep f <= n-1 (the link connectivity of D_n) for the guarantee that
// every fault-tolerant schedule survives; larger f is allowed but may
// disconnect the network.
func RandomFaultPlan(n, f int, seed int64) (*FaultPlan, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, err
	}
	if f < 0 || f > d.Nodes()*d.Order()/2 {
		return nil, fmt.Errorf("dualcube: fault count %d outside 0..%d", f, d.Nodes()*d.Order()/2)
	}
	return fault.Random(d, f, seed), nil
}
