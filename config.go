package dualcube

import (
	"time"

	"dualcube/internal/machine"
)

// Scheduler selects the simulator execution engine used by all algorithm
// entry points of this package. See the internal/machine package comment
// for the semantics; both schedulers produce identical results and Stats.
type Scheduler = machine.Sched

const (
	// SchedulerWorkerPool is the default: a stepped scheduler with
	// W ≈ GOMAXPROCS workers advancing node coroutines cycle-by-cycle and
	// synchronizing through a W-party sense-reversing barrier.
	SchedulerWorkerPool Scheduler = machine.SchedWorkerPool
	// SchedulerGoroutinePerNode is the original engine: one goroutine per
	// node, an N-party barrier per clock cycle. Slower, but it tolerates
	// node programs that block on synchronization of their own between
	// clock boundaries.
	SchedulerGoroutinePerNode Scheduler = machine.SchedGoroutinePerNode
)

// SetSimScheduler selects the execution engine for all subsequent
// simulated runs. The zero value machine.SchedDefault restores the default
// (the worker pool). Affects process-wide state; intended for program
// start-up or test setup, not for concurrent reconfiguration.
func SetSimScheduler(s Scheduler) { machine.SetDefaultSched(s) }

// SetSimTimeout overrides the simulator watchdog for all subsequent runs.
// The watchdog aborts runs that stop making progress (for example, a node
// program blocked outside the machine's primitives). d <= 0 restores the
// default, which scales with machine size: 60s plus 30ms per node.
func SetSimTimeout(d time.Duration) { machine.SetDefaultTimeout(d) }

// SetSimWorkers overrides the worker-pool size for all subsequent runs.
// k <= 0 restores the default (GOMAXPROCS). The pool clamps the count to
// the machine's node count.
func SetSimWorkers(k int) { machine.SetDefaultWorkers(k) }
