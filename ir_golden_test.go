package dualcube

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// goldenStats is the serializable projection of Stats pinned by the golden
// file (Faults is omitted: the fault-free workloads report a zero value and
// the degraded workloads pin their fault counters separately).
type goldenStats struct {
	Nodes      int   `json:"nodes"`
	Cycles     int   `json:"cycles"`
	CommCycles int   `json:"comm_cycles"`
	Messages   int64 `json:"messages"`
	MaxOps     int   `json:"max_ops"`
	TotalOps   int64 `json:"total_ops"`
}

func toGolden(st Stats) goldenStats {
	return goldenStats{
		Nodes:      st.Nodes,
		Cycles:     st.Cycles,
		CommCycles: st.CommCycles,
		Messages:   st.Messages,
		MaxOps:     st.MaxOps,
		TotalOps:   st.TotalOps,
	}
}

// degradedWorkloads extends the differential table with degraded-mode prefix
// runs under seeded fault plans, pinning the fault-tolerant schedule (detour
// order and repair cycle counts) alongside the fault-free operations.
var degradedWorkloads = []struct {
	name string
	run  func(n int) (any, Stats, error)
}{
	{"PrefixDegraded/f=1", func(n int) (any, Stats, error) {
		plan, err := RandomFaultPlan(n, 1, 2008)
		if err != nil {
			return nil, Stats{}, err
		}
		return runDegraded(n, plan)
	}},
	{"PrefixDegraded/f=max", func(n int) (any, Stats, error) {
		plan, err := RandomFaultPlan(n, n-1, 42)
		if err != nil {
			return nil, Stats{}, err
		}
		return runDegraded(n, plan)
	}},
}

func runDegraded(n int, plan *FaultPlan) (any, Stats, error) {
	out, st, err := PrefixDegraded(n, diffInput(n), plan)
	return out, st, err
}

// TestIRGoldenStats pins the cost statistics of every operation against the
// golden file captured from the inline (pre-IR) implementations, under BOTH
// schedule-capable backends: the worker-pool interpreter (the reference
// semantics) and the direct kernel executor. The compiled schedules must be
// byte-identical to those implementations — same cycles, same messages,
// same computation rounds, for every operation at every order — and the
// direct executor must reproduce the interpreter exactly, against the same
// unchanged golden entries. Regenerate with IR_GOLDEN_UPDATE=1 only when a
// schedule change is intentional and explained.
func TestIRGoldenStats(t *testing.T) {
	path := filepath.Join("testdata", "ir_golden_stats.json")
	type entry struct {
		Workload string      `json:"workload"`
		N        int         `json:"n"`
		Stats    goldenStats `json:"stats"`
	}

	collect := func(t *testing.T) []entry {
		var got []entry
		for _, w := range differentialWorkloads {
			for n := 2; n <= 4; n++ {
				_, st, err := w.run(n)
				if err != nil {
					t.Fatalf("%s/D_%d: %v", w.name, n, err)
				}
				got = append(got, entry{Workload: w.name, N: n, Stats: toGolden(st)})
			}
		}
		for _, w := range degradedWorkloads {
			for n := 2; n <= 4; n++ {
				_, st, err := w.run(n)
				if err != nil {
					t.Fatalf("%s/D_%d: %v", w.name, n, err)
				}
				got = append(got, entry{Workload: w.name, N: n, Stats: toGolden(st)})
			}
		}
		return got
	}

	defer SetSimScheduler(SchedulerDefault)

	if os.Getenv("IR_GOLDEN_UPDATE") == "1" {
		SetSimScheduler(SchedulerWorkerPool)
		got := collect(t)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with IR_GOLDEN_UPDATE=1 to create): %v", err)
	}
	var want []entry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	wantByKey := make(map[string]goldenStats, len(want))
	for _, e := range want {
		wantByKey[fmt.Sprintf("%s/D_%d", e.Workload, e.N)] = e.Stats
	}

	for _, backend := range []struct {
		name  string
		sched Scheduler
	}{
		{"interpreter", SchedulerWorkerPool},
		{"direct", SchedulerDirect},
	} {
		t.Run(backend.name, func(t *testing.T) {
			SetSimScheduler(backend.sched)
			got := collect(t)
			for _, e := range got {
				key := fmt.Sprintf("%s/D_%d", e.Workload, e.N)
				ref, ok := wantByKey[key]
				if !ok {
					t.Errorf("%s: no golden entry", key)
					continue
				}
				if e.Stats != ref {
					t.Errorf("%s: stats diverge from the inline implementation\n  got:    %+v\n  golden: %+v", key, e.Stats, ref)
				}
			}
			if len(got) != len(want) {
				t.Errorf("workload count changed: %d runs vs %d golden entries", len(got), len(want))
			}
		})
	}
}
