package dualcube

import (
	"sort"
	"strings"
	"testing"
)

// TestNewRuntimeOnFamilies builds a Runtime for every supported family and
// checks the identity surface plus one end-to-end operation per handle: the
// prefix sums must match the sequential scan regardless of topology.
func TestNewRuntimeOnFamilies(t *testing.T) {
	wantNames := map[string]string{"dualcube": "D_3", "hypercube": "Q_5", "zcube": "Z_3"}
	for _, fam := range Families() {
		rt, err := NewRuntimeOn(fam, 3)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if rt.Family() != fam || rt.Order() != 3 || rt.Nodes() != 32 {
			t.Fatalf("%s: Family=%q Order=%d Nodes=%d", fam, rt.Family(), rt.Order(), rt.Nodes())
		}
		if got := rt.Comm().Name(); got != wantNames[fam] {
			t.Errorf("%s: topology name %q, want %q", fam, got, wantNames[fam])
		}
		if err := rt.Warm(); err != nil {
			t.Fatalf("%s: Warm: %v", fam, err)
		}
		in := make([]int, rt.Nodes())
		for i := range in {
			in[i] = 3*i + 1
		}
		out, st, err := PrefixOn(rt, in)
		if err != nil {
			t.Fatalf("%s: PrefixOn: %v", fam, err)
		}
		acc := 0
		for i, v := range in {
			acc += v
			if out[i] != acc {
				t.Fatalf("%s: prefix[%d] = %d, want %d", fam, i, out[i], acc)
			}
		}
		if st.Cycles == 0 || st.Nodes != 32 {
			t.Errorf("%s: implausible stats %+v", fam, st)
		}
	}
}

// TestNewRuntimeOnUnknownFamily checks the error path names the offender and
// the accepted identifiers' source.
func TestNewRuntimeOnUnknownFamily(t *testing.T) {
	if _, err := NewRuntimeOn("torus", 3); err == nil || !strings.Contains(err.Error(), "torus") {
		t.Fatalf("NewRuntimeOn(torus) err = %v, want error naming the family", err)
	}
	if _, err := NewRuntimeOn("zcube", 0); err == nil {
		t.Fatal("NewRuntimeOn(zcube, 0) succeeded, want order range error")
	}
}

// TestRuntimeDualcubeOnlyOpsRejectOtherFamilies checks every operation that
// has not been generalized fails fast on a non-dualcube Runtime with an
// error naming both the operation's restriction and the bound topology —
// not a panic, and not a silently wrong answer.
func TestRuntimeDualcubeOnlyOpsRejectOtherFamilies(t *testing.T) {
	rt, err := NewRuntimeOn("zcube", 3)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Network() != nil {
		t.Error("Network() on a zcube Runtime = non-nil, want nil")
	}
	in := make([]int, rt.Nodes())
	perm := make([]int, rt.Nodes())
	for i := range perm {
		perm[i] = i
	}
	guarded := []struct {
		name string
		run  func() error
	}{
		{"GatherOn", func() error { _, _, err := GatherOn(rt, 1, in); return err }},
		{"ScatterOn", func() error { _, _, err := ScatterOn(rt, 1, in); return err }},
		{"AllGatherOn", func() error { _, _, err := AllGatherOn(rt, in); return err }},
		{"PermuteOn", func() error { _, _, err := PermuteOn(rt, perm, in); return err }},
		{"PrefixLargeOn", func() error { _, _, err := PrefixLargeOn(rt, 2, in); return err }},
		{"SampleSortOn", func() error { _, _, err := SampleSortOn(rt, 2, in); return err }},
	}
	for _, g := range guarded {
		err := g.run()
		if err == nil {
			t.Errorf("%s on zcube Runtime succeeded, want dualcube-only error", g.name)
			continue
		}
		if !strings.Contains(err.Error(), "dualcube") || !strings.Contains(err.Error(), "Z_3") {
			t.Errorf("%s error %q does not name the restriction and the topology", g.name, err)
		}
	}
}

// TestRuntimeSortOnAllFamilies runs the sort end to end on every family and
// checks the result is the sorted permutation — the recursive presentation
// all three families share.
func TestRuntimeSortOnAllFamilies(t *testing.T) {
	for _, fam := range Families() {
		rt, err := NewRuntimeOn(fam, 3)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]int, rt.Nodes())
		for i := range in {
			in[i] = (i * 2654435761) % 97
		}
		out, _, err := SortOn(rt, in, Ascending)
		if err != nil {
			t.Fatalf("%s: SortOn: %v", fam, err)
		}
		want := append([]int(nil), in...)
		sort.Ints(want)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("%s: sorted[%d] = %d, want %d", fam, i, out[i], want[i])
			}
		}
	}
}
