// Package ntt implements a distributed number-theoretic transform (the FFT
// over a prime field) on the dual-cube, as an instance of the paper's
// recursive technique: the radix-2 Cooley-Tukey butterfly is the canonical
// "normal" ascend algorithm — stage s pairs nodes along dimension s-1 — so
// it runs unchanged on D_n through internal/emulate, at the 3x worst-case
// communication overhead the paper's Section 7 predicts.
//
// The modulus is the NTT-friendly prime p = 119·2^23 + 1 = 998244353 with
// primitive root 3, supporting transforms up to 2^23 points — far beyond
// any simulable dual-cube.
package ntt

import (
	"fmt"

	"dualcube/internal/emulate"
	"dualcube/internal/machine"
)

// Mod is the NTT prime modulus.
const Mod = 998244353

// Root is a primitive root modulo Mod.
const Root = 3

// mulmod returns a*b mod Mod (operands already reduced; the product fits
// int64 since Mod < 2^30).
func mulmod(a, b uint64) uint64 { return a * b % Mod }

// PowMod returns base^exp mod Mod.
func PowMod(base, exp uint64) uint64 {
	base %= Mod
	result := uint64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result = mulmod(result, base)
		}
		base = mulmod(base, base)
		exp >>= 1
	}
	return result
}

// inv returns the modular inverse via Fermat's little theorem.
func inv(a uint64) uint64 { return PowMod(a, Mod-2) }

// bitrev reverses the low q bits of x.
func bitrev(x, q int) int {
	r := 0
	for i := 0; i < q; i++ {
		r |= (x >> i & 1) << (q - 1 - i)
	}
	return r
}

// butterflyStep returns the StepFunc of the decimation-in-time butterfly:
// at stage s = dim+1 the block size is 2^s; the node whose bit dim is 0
// holds the even-half value a and computes a + w·b, its partner computes
// a - w·b, with twiddle w = wstage^(id mod 2^dim) for wstage a 2^s-th root
// of unity.
func butterflyStep(invert bool) emulate.StepFunc[uint64] {
	return func(dim, id int, mine, theirs uint64) uint64 {
		order := uint64(1) << (dim + 1)
		wstage := PowMod(Root, (Mod-1)/order)
		if invert {
			wstage = inv(wstage)
		}
		j := uint64(id & (1<<dim - 1))
		w := PowMod(wstage, j)
		if id>>dim&1 == 0 {
			return (mine + mulmod(w, theirs)) % Mod
		}
		// mine = b (odd half), theirs = a: a - w·b mod p.
		return (theirs + Mod - mulmod(w, mine)) % Mod
	}
}

// validate checks the transform size for D_n and reduces the input.
func validate(n int, in []uint64) (q int, data []uint64, err error) {
	if n < 1 {
		return 0, nil, fmt.Errorf("ntt: dual-cube order %d < 1", n)
	}
	q = 2*n - 1
	N := 1 << q
	if len(in) != N {
		return 0, nil, fmt.Errorf("ntt: %d coefficients for %d nodes of D_%d", len(in), N, n)
	}
	if uint64(N) > 1<<23 {
		return 0, nil, fmt.Errorf("ntt: size %d exceeds the 2^23-point capability of the modulus", N)
	}
	data = make([]uint64, N)
	for i, v := range in {
		data[i] = v % Mod
	}
	return q, data, nil
}

// Transform computes the length-2^(2n-1) NTT of in (natural order in,
// natural order out) on the dual-cube D_n, or the inverse transform when
// invert is set (including the 1/N scaling). Communication time is
// 6n-5 cycles — the emulated cost of the 2n-1 butterfly stages.
func Transform(n int, in []uint64, invert bool) ([]uint64, machine.Stats, error) {
	q, data, err := validate(n, in)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	N := 1 << q
	// Decimation in time: node r starts with coefficient bitrev(r).
	init := make([]uint64, N)
	for r := 0; r < N; r++ {
		init[r] = data[bitrev(r, q)]
	}
	out, st, err := emulate.Ascend(n, init, butterflyStep(invert))
	if err != nil {
		return nil, st, err
	}
	if invert {
		nInv := inv(uint64(N))
		for i := range out {
			out[i] = mulmod(out[i], nInv)
		}
	}
	return out, st, nil
}

// CubeTransform is the baseline: the same butterfly on the hypercube
// Q_{2n-1} (one cycle per stage, 2n-1 cycles total).
func CubeTransform(n int, in []uint64, invert bool) ([]uint64, machine.Stats, error) {
	q, data, err := validate(n, in)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	N := 1 << q
	init := make([]uint64, N)
	for r := 0; r < N; r++ {
		init[r] = data[bitrev(r, q)]
	}
	return emulate.CubeAscend(q, init, butterflyStep(invert))
}

// Sequential computes the NTT (or inverse) by the O(N^2) definition — the
// golden model for tests. N need not be a dual-cube size.
func Sequential(in []uint64, invert bool) []uint64 {
	N := len(in)
	out := make([]uint64, N)
	w := PowMod(Root, (Mod-1)/uint64(N))
	if invert {
		w = inv(w)
	}
	for k := 0; k < N; k++ {
		acc := uint64(0)
		wk := PowMod(w, uint64(k))
		x := uint64(1)
		for t := 0; t < N; t++ {
			acc = (acc + mulmod(in[t]%Mod, x)) % Mod
			x = mulmod(x, wk)
		}
		out[k] = acc
	}
	if invert {
		nInv := inv(uint64(N))
		for i := range out {
			out[i] = mulmod(out[i], nInv)
		}
	}
	return out
}

// PolyMul multiplies two polynomials with coefficients mod p on the
// dual-cube D_n: three distributed transforms plus a local pointwise
// product. len(a)+len(b)-1 must not exceed 2^(2n-1).
func PolyMul(n int, a, b []uint64) ([]uint64, machine.Stats, error) {
	N := 1 << (2*n - 1)
	if len(a) == 0 || len(b) == 0 {
		return nil, machine.Stats{}, fmt.Errorf("ntt: empty polynomial")
	}
	outLen := len(a) + len(b) - 1
	if outLen > N {
		return nil, machine.Stats{}, fmt.Errorf("ntt: product degree %d exceeds transform size %d", outLen-1, N-1)
	}
	pa := make([]uint64, N)
	pb := make([]uint64, N)
	copy(pa, a)
	copy(pb, b)

	fa, st1, err := Transform(n, pa, false)
	if err != nil {
		return nil, st1, err
	}
	fb, st2, err := Transform(n, pb, false)
	if err != nil {
		return nil, st2, err
	}
	// Pointwise product: a purely local computation round at every node.
	for i := range fa {
		fa[i] = mulmod(fa[i], fb[i])
	}
	res, st3, err := Transform(n, fa, true)
	if err != nil {
		return nil, st3, err
	}
	// The three transforms plus the one pointwise-multiplication round,
	// which costs a single parallel step on every node.
	total := st1.Add(st2).Add(st3).Add(machine.Stats{
		Nodes:    st1.Nodes,
		MaxOps:   1,
		TotalOps: int64(st1.Nodes),
	})
	return res[:outLen], total, nil
}
