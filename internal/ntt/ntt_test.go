package ntt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dualcube/internal/emulate"
)

func TestPowMod(t *testing.T) {
	if PowMod(2, 10) != 1024 {
		t.Error("2^10")
	}
	if PowMod(Root, Mod-1) != 1 {
		t.Error("Fermat: g^(p-1) != 1")
	}
	if mulmod(inv(12345), 12345) != 1 {
		t.Error("modular inverse broken")
	}
	// Root really has 2-adic order >= 2^23.
	if PowMod(Root, (Mod-1)/2) == 1 {
		t.Error("Root is not a primitive root")
	}
}

func TestBitrev(t *testing.T) {
	if bitrev(0b001, 3) != 0b100 || bitrev(0b110, 3) != 0b011 || bitrev(5, 5) != 0b10100 {
		t.Error("bitrev broken")
	}
	for q := 1; q <= 8; q++ {
		for x := 0; x < 1<<q; x++ {
			if bitrev(bitrev(x, q), q) != x {
				t.Fatalf("bitrev not involutive at q=%d x=%d", q, x)
			}
		}
	}
}

func TestTransformMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 4; n++ {
		N := 1 << (2*n - 1)
		in := make([]uint64, N)
		for i := range in {
			in[i] = rng.Uint64() % Mod
		}
		got, st, err := Transform(n, in, false)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := Sequential(in, false)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: NTT wrong at %d: %d vs %d", n, i, got[i], want[i])
			}
		}
		if st.Cycles != emulate.CommSteps(n) {
			t.Errorf("n=%d: comm %d, want %d", n, st.Cycles, emulate.CommSteps(n))
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 4; n++ {
		N := 1 << (2*n - 1)
		in := make([]uint64, N)
		for i := range in {
			in[i] = rng.Uint64() % Mod
		}
		fwd, _, err := Transform(n, in, false)
		if err != nil {
			t.Fatal(err)
		}
		back, _, err := Transform(n, fwd, true)
		if err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if back[i] != in[i] {
				t.Fatalf("n=%d: round trip broke coefficient %d", n, i)
			}
		}
	}
}

func TestCubeTransformMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 3
	N := 1 << (2*n - 1)
	in := make([]uint64, N)
	for i := range in {
		in[i] = rng.Uint64() % Mod
	}
	dual, stD, err := Transform(n, in, false)
	if err != nil {
		t.Fatal(err)
	}
	cube, stQ, err := CubeTransform(n, in, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dual {
		if dual[i] != cube[i] {
			t.Fatalf("dual/cube transforms disagree at %d", i)
		}
	}
	if stQ.Cycles != 2*n-1 {
		t.Errorf("cube comm %d, want %d", stQ.Cycles, 2*n-1)
	}
	if stD.Cycles <= stQ.Cycles || stD.Cycles > 3*stQ.Cycles {
		t.Errorf("emulation overhead out of range: %d vs %d", stD.Cycles, stQ.Cycles)
	}
}

func TestPolyMul(t *testing.T) {
	// (1 + 2x + 3x^2) * (4 + 5x) = 4 + 13x + 22x^2 + 15x^3
	got, _, err := PolyMul(2, []uint64{1, 2, 3}, []uint64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{4, 13, 22, 15}
	if len(got) != len(want) {
		t.Fatalf("product length %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PolyMul = %v, want %v", got, want)
		}
	}
}

func TestPolyMulRandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(2) // D_2 or D_3
		N := 1 << (2*n - 1)
		la := 1 + rng.Intn(N/2)
		lb := 1 + rng.Intn(N-la) // ensures la+lb-1 <= N-? keep within
		if la+lb-1 > N {
			lb = N - la + 1
		}
		a := make([]uint64, la)
		b := make([]uint64, lb)
		for i := range a {
			a[i] = rng.Uint64() % Mod
		}
		for i := range b {
			b[i] = rng.Uint64() % Mod
		}
		got, _, err := PolyMul(n, a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]uint64, la+lb-1)
		for i := range a {
			for j := range b {
				want[i+j] = (want[i+j] + mulmod(a[i], b[j])) % Mod
			}
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: coefficient %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestPolyMulBadInputs(t *testing.T) {
	if _, _, err := PolyMul(2, nil, []uint64{1}); err == nil {
		t.Error("empty polynomial should fail")
	}
	if _, _, err := PolyMul(2, make([]uint64, 8), make([]uint64, 8)); err == nil {
		t.Error("overflowing degree should fail")
	}
}

func TestTransformBadInputs(t *testing.T) {
	if _, _, err := Transform(0, nil, false); err == nil {
		t.Error("order 0 should fail")
	}
	if _, _, err := Transform(2, make([]uint64, 5), false); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestSequentialParsevalQuick(t *testing.T) {
	// Linearity of the sequential golden model (sanity of the oracle
	// itself): NTT(a+b) = NTT(a) + NTT(b) pointwise.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		N := 8
		a := make([]uint64, N)
		b := make([]uint64, N)
		ab := make([]uint64, N)
		for i := 0; i < N; i++ {
			a[i] = rng.Uint64() % Mod
			b[i] = rng.Uint64() % Mod
			ab[i] = (a[i] + b[i]) % Mod
		}
		fa := Sequential(a, false)
		fb := Sequential(b, false)
		fab := Sequential(ab, false)
		for i := 0; i < N; i++ {
			if fab[i] != (fa[i]+fb[i])%Mod {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
