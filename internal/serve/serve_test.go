package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"dualcube/internal/monoid"
	"dualcube/internal/prefix"
	"dualcube/internal/sortnet"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func randPayload(rng *rand.Rand, nodes int) []int64 {
	in := make([]int64, nodes)
	for i := range in {
		in[i] = int64(rng.Intn(1<<16)) - 1<<15
	}
	return in
}

// checkAgainstUnbatched compares one serving response against the
// single-request library path the batcher must be indistinguishable from.
func checkAgainstUnbatched(req *Request, resp *Response) error {
	switch req.Op {
	case OpPrefix:
		want, _, err := prefix.DPrefix(req.N, req.Data, monoid.Sum[int64](), true, nil)
		if err != nil {
			return err
		}
		for i := range want {
			if resp.Data[i] != want[i] {
				return fmt.Errorf("prefix[%d] = %d, want %d", i, resp.Data[i], want[i])
			}
		}
	case OpAllReduce:
		var want int64
		for _, v := range req.Data {
			want += v
		}
		if len(resp.Data) != 1 || resp.Data[0] != want {
			return fmt.Errorf("allreduce = %v, want [%d]", resp.Data, want)
		}
	case OpSort:
		ord := sortnet.Ascending
		if req.Desc {
			ord = sortnet.Descending
		}
		want, _, err := sortnet.DSort(req.N, req.Data, func(a, b int64) bool { return a < b }, ord, nil)
		if err != nil {
			return err
		}
		for i := range want {
			if resp.Data[i] != want[i] {
				return fmt.Errorf("sort[%d] = %d, want %d (desc=%v)", i, resp.Data[i], want[i], req.Desc)
			}
		}
	case OpBroadcast:
		if len(resp.Data) != 1 || resp.Data[0] != req.Value {
			return fmt.Errorf("broadcast = %v, want [%d]", resp.Data, req.Value)
		}
	}
	return nil
}

// TestServeDifferential is the core differential requirement: concurrent
// mixed traffic — all four ops, two orders, mixed sort directions, several
// broadcast roots — through the coalescing batcher must be element-identical
// to the unbatched library calls, and batching must actually happen.
func TestServeDifferential(t *testing.T) {
	s := newTestServer(t, Config{
		Orders:   []int{2, 3},
		MaxBatch: 8,
		Window:   2 * time.Millisecond,
		QueueCap: 128,
	})

	const clients = 24
	const perClient = 12
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	var batched sync.Map
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 100))
			for i := 0; i < perClient; i++ {
				n := 2 + (id+i)%2
				nodes := s.pools[n].d.Nodes()
				var req *Request
				switch Op((id + i) % int(opCount)) {
				case OpPrefix:
					req = &Request{Op: OpPrefix, N: n, Data: randPayload(rng, nodes)}
				case OpAllReduce:
					req = &Request{Op: OpAllReduce, N: n, Data: randPayload(rng, nodes)}
				case OpSort:
					req = &Request{Op: OpSort, N: n, Data: randPayload(rng, nodes), Desc: id%2 == 1}
				case OpBroadcast:
					req = &Request{Op: OpBroadcast, N: n, Root: rng.Intn(3), Value: int64(id*1000 + i)}
				}
				resp, err := s.Submit(req)
				if err != nil {
					errCh <- fmt.Errorf("client %d: %v", id, err)
					return
				}
				if resp.Batch > 1 {
					batched.Store(req.Op, true)
				}
				if err := checkAgainstUnbatched(req, resp); err != nil {
					errCh <- fmt.Errorf("client %d %s/D_%d: %v", id, req.Op, req.N, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if _, ok := batched.Load(OpPrefix); !ok {
		t.Error("no prefix request was ever coalesced; batcher exercised nothing")
	}
}

// TestServeBackpressure pins admission control: with the dispatchers
// stalled, the QueueCap+1'th concurrent request is rejected with
// ErrSaturated, and the queued ones are served once dispatch resumes.
func TestServeBackpressure(t *testing.T) {
	cfg := Config{Orders: []int{2}, MaxBatch: 4, Window: time.Millisecond, QueueCap: 4}.withDefaults()
	// Build the server by hand without starting dispatchers, so the queue
	// deterministically fills.
	s := &Server{
		cfg:   cfg,
		pools: make(map[int]*pool),
		lines: make(map[lineKey]*line),
		met:   newMetrics(cfg.MaxBatch),
	}
	p, err := newPool(2, cfg.Shards, cfg.MaxBatch)
	if err != nil {
		t.Fatal(err)
	}
	s.pools[2] = p
	for op := OpPrefix; op < opCount; op++ {
		l := &line{s: s, key: lineKey{op, 2}, pool: p, ch: make(chan *pending, cfg.QueueCap)}
		s.lines[l.key] = l
	}

	nodes := p.d.Nodes()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.QueueCap)
	for i := 0; i < cfg.QueueCap; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			req := &Request{Op: OpPrefix, N: 2, Data: randPayload(rng, nodes)}
			if _, err := s.Submit(req); err != nil {
				errs <- err
			}
		}(int64(i))
	}
	// Wait until all four sit in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.lines[lineKey{OpPrefix, 2}].ch) < cfg.QueueCap {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d/%d", len(s.lines[lineKey{OpPrefix, 2}].ch), cfg.QueueCap)
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Submit(&Request{Op: OpPrefix, N: 2, Data: randPayload(rand.New(rand.NewSource(99)), nodes)}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow submit: err = %v, want ErrSaturated", err)
	}
	if got := s.met.op(OpPrefix).rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// Resume dispatch: the queued requests must all complete.
	for _, l := range s.lines {
		s.wg.Add(1)
		go l.run()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("queued request failed: %v", err)
	}
	s.Close()
}

// TestServeDegraded drives traffic while the only shard is degraded: prefix
// and allreduce keep answering correctly over the fault-rewritten schedules
// (marked Degraded), sort becomes unavailable (no fault rewrite exists for
// the recursive-technique schedule), and restore brings it back.
func TestServeDegraded(t *testing.T) {
	s := newTestServer(t, Config{Orders: []int{3}, MaxBatch: 4, Window: time.Millisecond})
	rng := rand.New(rand.NewSource(9))
	nodes := s.pools[3].d.Nodes()

	if err := s.DegradeShard(3, 0, 2, 42); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		req := &Request{Op: OpPrefix, N: 3, Data: randPayload(rng, nodes)}
		resp, err := s.Submit(req)
		if err != nil {
			t.Fatalf("degraded prefix: %v", err)
		}
		if !resp.Degraded {
			t.Error("response not marked degraded")
		}
		if err := checkAgainstUnbatched(req, resp); err != nil {
			t.Fatalf("degraded prefix wrong: %v", err)
		}
	}
	if _, err := s.Submit(&Request{Op: OpSort, N: 3, Data: randPayload(rng, nodes)}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("sort on degraded-only pool: err = %v, want ErrUnavailable", err)
	}
	if states, _ := s.ShardStates(3); states[0] != "degraded" {
		t.Errorf("shard state = %q, want degraded", states[0])
	}

	if err := s.RestoreShard(3, 0); err != nil {
		t.Fatal(err)
	}
	req := &Request{Op: OpSort, N: 3, Data: randPayload(rng, nodes)}
	resp, err := s.Submit(req)
	if err != nil {
		t.Fatalf("sort after restore: %v", err)
	}
	if resp.Degraded {
		t.Error("restored shard still marked degraded")
	}
	if err := checkAgainstUnbatched(req, resp); err != nil {
		t.Fatal(err)
	}

	if err := s.DownShard(3, 0); err != nil {
		t.Fatal(err)
	}
	if s.Healthy() {
		t.Error("server healthy with every shard down")
	}
	if _, err := s.Submit(&Request{Op: OpPrefix, N: 3, Data: randPayload(rng, nodes)}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("prefix on downed pool: err = %v, want ErrUnavailable", err)
	}
}

// TestServePoolStress exercises the shard pool under -race: concurrent
// mixed traffic on two shards while another goroutine flips shard 1
// through degrade/restore/down cycles. Every accepted answer must still be
// correct; ErrUnavailable is legal only for sort (a degrade window can
// leave no sort-capable shard).
func TestServePoolStress(t *testing.T) {
	s := newTestServer(t, Config{
		Orders:   []int{2},
		Shards:   2,
		MaxBatch: 4,
		Window:   500 * time.Microsecond,
		QueueCap: 256,
	})
	nodes := s.pools[2].d.Nodes()

	stop := make(chan struct{})
	var adminWG sync.WaitGroup
	adminWG.Add(1)
	go func() {
		defer adminWG.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				s.DegradeShard(2, 1, 1, int64(i))
			case 1:
				s.DownShard(2, 1)
			case 2:
				s.RestoreShard(2, 1)
			}
			i++
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 25; i++ {
				var req *Request
				if i%3 == 0 {
					req = &Request{Op: OpSort, N: 2, Data: randPayload(rng, nodes), Desc: i%2 == 0}
				} else {
					req = &Request{Op: OpPrefix, N: 2, Data: randPayload(rng, nodes)}
				}
				resp, err := s.Submit(req)
				if errors.Is(err, ErrUnavailable) && req.Op == OpSort {
					continue // every sort-capable shard momentarily out
				}
				if err != nil {
					errCh <- fmt.Errorf("client %d: %s: %v", id, req.Op, err)
					return
				}
				if err := checkAgainstUnbatched(req, resp); err != nil {
					errCh <- fmt.Errorf("client %d: %v", id, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	adminWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Leave the pool in rotation for Cleanup's Close.
	s.RestoreShard(2, 1)
}

// TestClientHelpers smoke-tests the typed in-process client.
func TestClientHelpers(t *testing.T) {
	s := newTestServer(t, Config{Orders: []int{2}, Window: time.Millisecond})
	c := NewClient(s)
	rng := rand.New(rand.NewSource(3))
	nodes := s.pools[2].d.Nodes()

	in := randPayload(rng, nodes)
	resp, err := c.Prefix(2, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkAgainstUnbatched(&Request{Op: OpPrefix, N: 2, Data: in}, resp); err != nil {
		t.Fatal(err)
	}
	if resp, err = c.AllReduce(2, in); err != nil {
		t.Fatal(err)
	} else if err := checkAgainstUnbatched(&Request{Op: OpAllReduce, N: 2, Data: in}, resp); err != nil {
		t.Fatal(err)
	}
	keys := randPayload(rng, nodes)
	if resp, err = c.Sort(2, keys, true); err != nil {
		t.Fatal(err)
	} else if !sort.SliceIsSorted(resp.Data, func(i, j int) bool { return resp.Data[i] > resp.Data[j] }) {
		t.Fatalf("descending sort returned %v", resp.Data)
	}
	if resp, err = c.Broadcast(2, 5, 77); err != nil {
		t.Fatal(err)
	} else if resp.Data[0] != 77 {
		t.Fatalf("broadcast returned %v", resp.Data)
	}
}

// TestServeValidation pins the pre-queue request validation.
func TestServeValidation(t *testing.T) {
	s := newTestServer(t, Config{Orders: []int{2}})
	cases := []*Request{
		{Op: OpPrefix, N: 5, Data: make([]int64, 512)}, // unserved order
		{Op: OpPrefix, N: 2, Data: make([]int64, 3)},   // wrong length
		{Op: OpBroadcast, N: 2, Root: -1},              // bad root
		{Op: OpBroadcast, N: 2, Root: 8},               // bad root (nodes=8)
		{Op: Op(200), N: 2, Data: make([]int64, 8)},    // unknown op
		{Op: OpSort, N: 2, Data: nil},                  // missing payload
	}
	for i, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	s.Close()
	if _, err := s.Submit(&Request{Op: OpPrefix, N: 2, Data: make([]int64, 8)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}
