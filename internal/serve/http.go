package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// HTTP front door, stdlib only. Routes:
//
//	POST /v1/{prefix|allreduce|sort|broadcast}  body: Request JSON (op from path)
//	GET  /metrics                               Prometheus text exposition
//	GET  /healthz                               200 while any shard serves each order
//	POST /admin/shard                           degrade/down/restore a shard
//
// Error mapping: malformed requests 400, admission-control rejection 429
// with Retry-After, no eligible shard 503, server closed 503.

// Handler returns the HTTP handler serving s.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		serveOp(s, w, r)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, s.Metrics())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Healthy() {
			fmt.Fprintln(w, "ok")
			return
		}
		http.Error(w, "no shard in rotation for at least one order", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("/admin/shard", func(w http.ResponseWriter, r *http.Request) {
		adminShard(s, w, r)
	})
	return mux
}

func serveOp(s *Server, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	op, err := ParseOp(strings.TrimPrefix(r.URL.Path, "/v1/"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.Op = op // the path is authoritative
	resp, err := s.Submit(&req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// writeSubmitError maps the serve error taxonomy onto HTTP status codes.
func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated):
		// Backpressure: tell well-behaved clients when to come back.
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrUnavailable), errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// adminShard handles POST /admin/shard?n=5&shard=0&action=degrade&faults=2&seed=1.
func adminShard(s *Server, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	n, err1 := strconv.Atoi(q.Get("n"))
	idx, err2 := strconv.Atoi(q.Get("shard"))
	if err1 != nil || err2 != nil {
		http.Error(w, "n and shard must be integers", http.StatusBadRequest)
		return
	}
	var err error
	switch action := q.Get("action"); action {
	case "degrade":
		f := 1
		if v := q.Get("faults"); v != "" {
			if f, err = strconv.Atoi(v); err != nil {
				http.Error(w, "faults must be an integer", http.StatusBadRequest)
				return
			}
		}
		var seed int64 = 1
		if v := q.Get("seed"); v != "" {
			if seed, err = strconv.ParseInt(v, 10, 64); err != nil {
				http.Error(w, "seed must be an integer", http.StatusBadRequest)
				return
			}
		}
		err = s.DegradeShard(n, idx, f, seed)
	case "down":
		err = s.DownShard(n, idx)
	case "restore":
		err = s.RestoreShard(n, idx)
	default:
		http.Error(w, "action must be degrade, down or restore", http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	states, _ := s.ShardStates(n)
	fmt.Fprintf(w, "shards[%d]: %s\n", n, strings.Join(states, " "))
}
