package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Load generator for experiment E23: closed-loop clients hammer one
// (op, order) line of an in-process Server and we record sustained
// requests/sec with p50/p99 latency per max-batch setting. Sweeping
// MaxBatch (k=1 disables coalescing) isolates the batching win: the same
// request stream, the same kernels, only the lane width changes.

// LoadConfig describes one load-generation run.
type LoadConfig struct {
	Op       Op
	N        int           // dual-cube order
	Clients  int           // concurrent closed-loop clients
	Duration time.Duration // measurement window
	MaxBatch int           // server's coalescing ceiling for this run
	Window   time.Duration // server's batch window (0: default)
	Seed     int64         // payload generation seed
	Verify   bool          // check every response against the expected result
}

// LoadPoint is one measured load-generation run, the JSON row E23 records.
type LoadPoint struct {
	Exp       string  `json:"exp"`
	Op        string  `json:"op"`
	N         int     `json:"n"`
	Clients   int     `json:"clients"`
	MaxBatch  int     `json:"max_batch"`
	Requests  int     `json:"requests"`
	Rejected  int     `json:"rejected"`
	Seconds   float64 `json:"seconds"`
	RPS       float64 `json:"rps"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	MeanBatch float64 `json:"mean_batch"`
}

// RunLoad builds a Server sized by cfg, drives it with cfg.Clients
// closed-loop clients for cfg.Duration, and reports the measured point.
// Each client verifies its own responses when cfg.Verify is set, so a
// throughput number can never come from wrong answers.
func RunLoad(cfg LoadConfig) (*LoadPoint, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 2 * cfg.MaxBatch
		if cfg.Clients < 4 {
			cfg.Clients = 4
		}
	}
	s, err := New(Config{
		Orders:   []int{cfg.N},
		MaxBatch: cfg.MaxBatch,
		Window:   cfg.Window,
		// Closed-loop clients bound the queue occupancy by themselves;
		// size admission so backpressure does not distort the measurement.
		QueueCap: 2*cfg.Clients + 16,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	nodes := s.pools[cfg.N].d.Nodes()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		requests  int
		rejected  int
		batchSum  int
		verifyErr error
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			in := make([]int64, nodes)
			var localLat []time.Duration
			var localReq, localRej, localBatch int
			for {
				select {
				case <-stop:
					mu.Lock()
					latencies = append(latencies, localLat...)
					requests += localReq
					rejected += localRej
					batchSum += localBatch
					mu.Unlock()
					return
				default:
				}
				for i := range in {
					in[i] = int64(rng.Intn(1 << 16))
				}
				req := makeLoadRequest(cfg, id, in)
				t0 := time.Now()
				resp, err := s.Submit(req)
				if err == ErrSaturated {
					localRej++
					continue
				}
				if err != nil {
					mu.Lock()
					if verifyErr == nil {
						verifyErr = err
					}
					mu.Unlock()
					return
				}
				localLat = append(localLat, time.Since(t0))
				localReq++
				localBatch += resp.Batch
				if cfg.Verify {
					if err := verifyLoadResponse(cfg, req, resp); err != nil {
						mu.Lock()
						if verifyErr == nil {
							verifyErr = err
						}
						mu.Unlock()
						return
					}
				}
			}
		}(c)
	}
	start := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if verifyErr != nil {
		return nil, verifyErr
	}
	if requests == 0 {
		return nil, fmt.Errorf("serve: load run completed zero requests")
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) float64 {
		i := int(q * float64(len(latencies)-1))
		return float64(latencies[i].Microseconds())
	}
	return &LoadPoint{
		Exp:       "E23",
		Op:        cfg.Op.String(),
		N:         cfg.N,
		Clients:   cfg.Clients,
		MaxBatch:  cfg.MaxBatch,
		Requests:  requests,
		Rejected:  rejected,
		Seconds:   elapsed,
		RPS:       float64(requests) / elapsed,
		P50Micros: pct(0.50),
		P99Micros: pct(0.99),
		MeanBatch: float64(batchSum) / float64(requests),
	}, nil
}

func makeLoadRequest(cfg LoadConfig, id int, in []int64) *Request {
	req := &Request{Op: cfg.Op, N: cfg.N}
	switch cfg.Op {
	case OpBroadcast:
		// One shared root so the whole stream coalesces.
		req.Root = 0
		req.Value = in[0]
	case OpSort:
		req.Data = append([]int64(nil), in...)
		req.Desc = id%2 == 1 // mixed directions batch together
	default:
		req.Data = append([]int64(nil), in...)
	}
	return req
}

// verifyLoadResponse recomputes the expected answer sequentially and
// compares; the payloads are small enough that this stays off the
// measurement's critical path only when Verify is off, which is why the
// sweep verifies at low duty and measures with Verify off.
func verifyLoadResponse(cfg LoadConfig, req *Request, resp *Response) error {
	switch cfg.Op {
	case OpPrefix:
		var sum int64
		for i, v := range req.Data {
			sum += v
			if resp.Data[i] != sum {
				return fmt.Errorf("serve: prefix mismatch at %d: got %d want %d", i, resp.Data[i], sum)
			}
		}
	case OpAllReduce:
		var sum int64
		for _, v := range req.Data {
			sum += v
		}
		if resp.Data[0] != sum {
			return fmt.Errorf("serve: allreduce mismatch: got %d want %d", resp.Data[0], sum)
		}
	case OpSort:
		want := append([]int64(nil), req.Data...)
		sort.Slice(want, func(i, j int) bool {
			if req.Desc {
				return want[i] > want[j]
			}
			return want[i] < want[j]
		})
		for i := range want {
			if resp.Data[i] != want[i] {
				return fmt.Errorf("serve: sort mismatch at %d: got %d want %d", i, resp.Data[i], want[i])
			}
		}
	case OpBroadcast:
		if resp.Data[0] != req.Value {
			return fmt.Errorf("serve: broadcast mismatch: got %d want %d", resp.Data[0], req.Value)
		}
	}
	return nil
}

// SweepBatch runs RunLoad at each max-batch width and returns the points
// in order — the E23 experiment body. The k=1 point is the unbatched
// baseline every other point's speedup is measured against.
func SweepBatch(base LoadConfig, widths []int) ([]*LoadPoint, error) {
	points := make([]*LoadPoint, 0, len(widths))
	for _, k := range widths {
		cfg := base
		cfg.MaxBatch = k
		pt, err := RunLoad(cfg)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}
