package serve

import (
	"time"

	"dualcube/internal/collective"
	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/prefix"
	"dualcube/internal/sortnet"
)

// This file is the coalescing heart of the front-end. One dispatcher
// goroutine per (op, order) line drains its bounded queue into batches: the
// first pending request opens a batch, the dispatcher keeps collecting
// until MaxBatch requests are in hand or Window has elapsed since the
// opener arrived, then the whole group runs as a single lane-widened
// kernel pass over one leased shard and every caller gets its lane's
// result. Broadcast is the one op with a compatibility constraint — the
// flood's roles depend on the root, so a collected batch is partitioned
// into one pass per distinct root.

// pending is one queued request and its completion channel.
type pending struct {
	req  *Request
	done chan outcome
}

type outcome struct {
	resp *Response
	err  error
}

// line is one (op, order) dispatcher: a bounded queue and the goroutine
// draining it.
type line struct {
	s    *Server
	key  lineKey
	pool *pool
	ch   chan *pending
}

// run is the dispatcher loop. It exits when the server closes the queue,
// after serving whatever was already admitted.
func (l *line) run() {
	defer l.s.wg.Done()
	for p := range l.ch {
		batch := l.collect(p)
		l.dispatch(batch)
	}
}

// collect gathers a batch: opener first, then up to MaxBatch-1 more
// requests arriving within Window of the opener. A full batch returns
// immediately — under sustained load the window timer never fires and the
// dispatcher runs back-to-back full passes.
func (l *line) collect(opener *pending) []*pending {
	batch := []*pending{opener}
	max := l.s.cfg.MaxBatch
	if max <= 1 {
		return batch
	}
	timer := time.NewTimer(l.s.cfg.Window)
	defer timer.Stop()
	for len(batch) < max {
		select {
		case p, ok := <-l.ch:
			if !ok {
				// Server closing: run what we have; run() drains the rest.
				return batch
			}
			batch = append(batch, p)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// dispatch runs a collected batch, splitting broadcast groups by root.
func (l *line) dispatch(batch []*pending) {
	if l.key.op != OpBroadcast {
		resps, err := l.runBatch(batch)
		l.finish(batch, resps, err)
		return
	}
	// Broadcast roles depend on the root: coalesce per distinct root,
	// preserving arrival order within each group.
	groups := make(map[int][]*pending)
	var roots []int
	for _, p := range batch {
		if _, ok := groups[p.req.Root]; !ok {
			roots = append(roots, p.req.Root)
		}
		groups[p.req.Root] = append(groups[p.req.Root], p)
	}
	for _, root := range roots {
		g := groups[root]
		resps, err := l.runBatch(g)
		l.finish(g, resps, err)
	}
}

// finish demultiplexes a pass outcome to every caller in the group.
func (l *line) finish(group []*pending, resps []*Response, err error) {
	if err != nil {
		for _, p := range group {
			p.done <- outcome{err: err}
		}
		return
	}
	for i, p := range group {
		p.done <- outcome{resp: resps[i]}
	}
}

// runBatch leases a shard and runs the group as one lane-widened kernel
// pass over the shard's schedule (fault-rewritten with the plan armed when
// the shard is degraded).
func (l *line) runBatch(group []*pending) ([]*Response, error) {
	lease, err := l.pool.acquire(serveOps[l.key.op])
	if err != nil {
		return nil, err
	}
	defer l.pool.release(lease)

	k := len(group)
	l.s.met.op(l.key.op).occupancy.observe(k)
	cfg := machine.Config{Faults: lease.spec}
	d := l.pool.d

	var out [][]int64
	var st machine.Stats
	switch l.key.op {
	case OpPrefix:
		in := make([][]int64, k)
		out = make([][]int64, k)
		for i, p := range group {
			in[i] = p.req.Data
			out[i] = make([]int64, d.Nodes())
		}
		kern := prefix.NewLaneKernel(d, monoid.Sum[int64](), true, lease.sh.lanes, in, out)
		st, err = dcomm.Execute(lease.sched, cfg, kern)
	case OpAllReduce:
		in := make([][]int64, k)
		out = make([][]int64, k)
		for i, p := range group {
			in[i] = p.req.Data
			out[i] = make([]int64, d.Nodes())
		}
		kern := collective.NewLaneAllReduceKernel(d, monoid.Sum[int64](), lease.sh.lanes, in, out)
		st, err = dcomm.Execute(lease.sched, cfg, kern)
		if err == nil {
			// Every node holds the same total; the response is that one value.
			for i := range out {
				out[i] = out[i][:1]
			}
		}
	case OpSort:
		keys := make([][]int64, k)
		ords := make([]sortnet.Order, k)
		for i, p := range group {
			keys[i] = p.req.Data
			if p.req.Desc {
				ords[i] = sortnet.Descending
			} else {
				ords[i] = sortnet.Ascending
			}
		}
		var kern *sortnet.LaneSortKernel[int64]
		kern, err = sortnet.NewLaneSortKernel(d, lease.sh.lanes, keys,
			func(a, b int64) bool { return a < b }, ords)
		if err != nil {
			return nil, err
		}
		st, err = dcomm.Execute(lease.sched, cfg, kern)
		if err == nil {
			out = make([][]int64, k)
			for i := range out {
				out[i] = kern.Unload(i, make([]int64, d.Nodes()))
			}
		}
	case OpBroadcast:
		values := make([]int64, k)
		for i, p := range group {
			values[i] = p.req.Value
		}
		kern := collective.NewLaneBroadcastKernel(d, group[0].req.Root, lease.sh.lanes, values)
		st, err = dcomm.Execute(lease.sched, cfg, kern)
		if err == nil {
			err = kern.Verify()
		}
		if err == nil {
			out = make([][]int64, k)
			delivered := kern.Value(0) // all nodes agree; node 0's view
			for i := range out {
				out[i] = []int64{delivered[i]}
			}
		}
	}
	if err != nil {
		return nil, err
	}

	resps := make([]*Response, k)
	for i := range resps {
		resps[i] = &Response{
			Data:     out[i],
			Cycles:   st.Cycles,
			Batch:    k,
			Shard:    lease.sh.idx,
			Degraded: lease.degraded,
		}
	}
	return resps, nil
}
