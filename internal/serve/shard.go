package serve

import (
	"fmt"
	"sync"

	"dualcube/internal/dcomm"
	"dualcube/internal/fault"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// shardState is a shard's place in the rotation.
type shardState int

const (
	shardUp shardState = iota
	// shardDegraded serves through fault-rewritten schedules with the fault
	// plan armed; it cannot serve ops whose schedule has no rewrite (sort).
	shardDegraded
	shardDown
)

// shard is one warmed execution unit: the shared topology, the compiled
// schedule per op (fault-rewritten when degraded), and a reusable k-wide
// payload plane. The pool hands a shard to at most one dispatcher at a
// time, so the plane needs no locking.
//
// All shard fields below d/idx/lanes are guarded by the owning pool's
// mutex: state transitions and schedule swaps happen under it, and a
// running pass copies sched/spec out at checkout time, so a degrade or
// restore never mutates what an in-flight pass reads.
type shard struct {
	idx   int
	d     *topology.DualCube
	lanes *machine.Lanes[int64]

	state shardState
	busy  bool
	sched map[dcomm.Op]*machine.Schedule // per-op schedule, possibly FT-rewritten
	spec  *machine.FaultSpec             // armed plan of a degraded shard, else nil
}

// serveOps maps serving ops onto the compiled schedules they run over; it
// is also the schedule set every shard warms at pool construction.
var serveOps = map[Op]dcomm.Op{
	OpPrefix:    dcomm.OpPrefix,
	OpAllReduce: dcomm.OpAllReduce,
	OpSort:      dcomm.OpDSort,
	OpBroadcast: dcomm.OpBroadcast,
}

// cleanSchedules assembles (from the process-wide compile cache) the
// fault-free schedule set a healthy shard serves with.
func cleanSchedules(d *topology.DualCube) (map[dcomm.Op]*machine.Schedule, error) {
	m := make(map[dcomm.Op]*machine.Schedule, len(serveOps))
	for _, op := range serveOps {
		sch, err := dcomm.Compiled(d, op)
		if err != nil {
			return nil, err
		}
		m[op] = sch
	}
	return m, nil
}

// lease is a checked-out shard plus the schedule view its pass runs with,
// frozen at checkout so pool state changes cannot race the pass.
type lease struct {
	sh       *shard
	sched    *machine.Schedule
	spec     *machine.FaultSpec
	degraded bool
}

// pool is the per-order shard set. Dispatchers acquire an idle shard able
// to run their op (blocking while every eligible shard is busy), run one
// batched pass, and release it; degrade/down/restore swap shard state
// under the same mutex, so a state change never races a checkout.
type pool struct {
	n      int
	d      *topology.DualCube
	mu     sync.Mutex
	cond   *sync.Cond
	shards []*shard
}

func newPool(n, shards, maxBatch int) (*pool, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, err
	}
	p := &pool{n: n, d: d}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < shards; i++ {
		sched, err := cleanSchedules(d)
		if err != nil {
			return nil, err
		}
		p.shards = append(p.shards, &shard{
			idx:   i,
			d:     d,
			lanes: machine.NewLanes[int64](d.Nodes(), maxBatch),
			sched: sched,
		})
	}
	return p, nil
}

// acquire checks out an idle shard able to serve op. It blocks while every
// eligible shard is busy and fails with ErrUnavailable once no shard in
// rotation can serve op at all (all down, or all survivors degraded for an
// op without a fault-rewritten schedule).
func (p *pool) acquire(op dcomm.Op) (*lease, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		eligible := false
		for _, sh := range p.shards {
			if sh.state == shardDown {
				continue
			}
			sch, ok := sh.sched[op]
			if !ok {
				continue
			}
			eligible = true
			if sh.busy {
				continue
			}
			sh.busy = true
			return &lease{sh: sh, sched: sch, spec: sh.spec, degraded: sh.state == shardDegraded}, nil
		}
		if !eligible {
			return nil, ErrUnavailable
		}
		p.cond.Wait()
	}
}

// release returns a leased shard to the rotation.
func (p *pool) release(l *lease) {
	p.mu.Lock()
	l.sh.busy = false
	p.mu.Unlock()
	p.cond.Broadcast()
}

// upCount returns the number of shards in rotation (healthy or degraded).
func (p *pool) upCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, sh := range p.shards {
		if sh.state != shardDown {
			n++
		}
	}
	return n
}

func (p *pool) stateNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, len(p.shards))
	for i, sh := range p.shards {
		switch sh.state {
		case shardUp:
			names[i] = "up"
		case shardDegraded:
			names[i] = "degraded"
		default:
			names[i] = "down"
		}
	}
	return names
}

// degrade marks shard idx degraded under f random permanent link faults
// seeded with seed: every op whose schedule dcomm.RewriteFT can rework
// gets the rewritten schedule, the rest (sort — the recursive-technique
// schedule has no fault rewrite) drop out of the shard's capability set,
// and the plan's FaultSpec arms every subsequent pass.
func (p *pool) degrade(idx, f int, seed int64) error {
	if err := p.checkIdx(idx); err != nil {
		return err
	}
	plan := fault.Random(p.d, f, seed)
	view := fault.NewView(p.d, plan)
	sched := make(map[dcomm.Op]*machine.Schedule, len(serveOps))
	for _, op := range serveOps {
		clean, err := dcomm.Compiled(p.d, op)
		if err != nil {
			return err
		}
		ft, err := dcomm.RewriteFT(clean, view)
		if err != nil {
			continue // no fault rewrite for this schedule shape (sort)
		}
		sched[op] = ft
	}
	if len(sched) == 0 {
		return fmt.Errorf("serve: no operation survives the fault plan on shard %d", idx)
	}
	p.mu.Lock()
	sh := p.shards[idx]
	sh.state = shardDegraded
	sh.sched = sched
	sh.spec = plan.Spec()
	p.mu.Unlock()
	p.cond.Broadcast()
	return nil
}

// down removes shard idx from rotation; an in-flight pass on it finishes,
// later checkouts skip it.
func (p *pool) down(idx int) error {
	if err := p.checkIdx(idx); err != nil {
		return err
	}
	p.mu.Lock()
	p.shards[idx].state = shardDown
	p.mu.Unlock()
	p.cond.Broadcast()
	return nil
}

// restore returns shard idx to healthy rotation on fault-free schedules.
func (p *pool) restore(idx int) error {
	if err := p.checkIdx(idx); err != nil {
		return err
	}
	sched, err := cleanSchedules(p.d)
	if err != nil {
		return err
	}
	p.mu.Lock()
	sh := p.shards[idx]
	sh.state = shardUp
	sh.sched = sched
	sh.spec = nil
	p.mu.Unlock()
	p.cond.Broadcast()
	return nil
}

func (p *pool) checkIdx(idx int) error {
	if idx < 0 || idx >= len(p.shards) {
		return fmt.Errorf("serve: D_%d has shards 0..%d, not %d", p.n, len(p.shards)-1, idx)
	}
	return nil
}
