// Package serve is the batched request-coalescing serving front-end over
// the runtime layer: the subsystem that turns the library's single-shot
// calls into sustained concurrent throughput.
//
// A Server owns a pool of warmed runtime shards per dual-cube order — each
// shard fronts the process-wide cached topology and compiled schedules,
// plus its own reusable k-wide payload plane — and accepts concurrent
// prefix / allreduce / sort / broadcast requests (over HTTP+JSON through
// Handler, or in-process through Client). Compatible pending requests are
// coalesced into one batched kernel pass: a dispatcher per (op, order)
// collects up to MaxBatch requests within a Window of the first arrival
// and runs them as a single lane-widened DirectKernel over the compiled
// schedule (prefix.NewLaneKernel and friends), then demultiplexes the lane
// results back to the waiting callers. Because the direct executor runs
// finalized schedules as flat array kernels, batching is purely a layout
// change — the per-pass schedule walk, partner lookups and protocol checks
// are paid once for all lanes, which is the throughput win experiment E23
// measures.
//
// Admission control is a bounded queue per dispatcher: when it is full,
// Submit fails fast with ErrSaturated, which the HTTP layer maps to
// 429 + Retry-After. Shards degrade gracefully: a shard marked degraded
// serves through dcomm.RewriteFT fault-rewritten schedules with its fault
// plan armed (sort excepted — the recursive-technique schedule has no
// fault rewrite, so degraded shards refuse sort and the pool routes around
// them); a shard marked down leaves the rotation entirely. Per-op latency
// histograms (p50/p99), batch-occupancy and queue-depth gauges are exposed
// on /metrics next to /healthz.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dualcube/internal/topology"
)

// Op names one operation the serving front-end accepts.
type Op uint8

const (
	// OpPrefix computes all prefix sums of the request payload.
	OpPrefix Op = iota
	// OpAllReduce combines the payload in element order and returns the
	// total.
	OpAllReduce
	// OpSort sorts the payload with D_sort.
	OpSort
	// OpBroadcast floods one value from a root node; requests batch only
	// with requests sharing the root.
	OpBroadcast
	opCount
)

// String returns the operation name used in URLs and metric labels.
func (op Op) String() string {
	switch op {
	case OpPrefix:
		return "prefix"
	case OpAllReduce:
		return "allreduce"
	case OpSort:
		return "sort"
	case OpBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// ParseOp resolves an operation name from a URL or config string.
func ParseOp(s string) (Op, error) {
	for op := OpPrefix; op < opCount; op++ {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown operation %q", s)
}

// Request is one serving request. Data is the payload in element order
// (one element per node of D_n) for prefix, allreduce and sort; broadcast
// uses Root and Value instead.
type Request struct {
	Op    Op      `json:"op"`
	N     int     `json:"n"`
	Data  []int64 `json:"data,omitempty"`
	Desc  bool    `json:"desc,omitempty"`  // sort: descending order
	Root  int     `json:"root,omitempty"`  // broadcast: source node
	Value int64   `json:"value,omitempty"` // broadcast: flooded value
}

// Response is the result of one request, demultiplexed from its batch.
type Response struct {
	// Data is the result in element order: the prefix vector, the sorted
	// keys, the single all-reduce total, or the delivered broadcast value.
	Data []int64 `json:"data"`
	// Cycles is the simulated communication time of the pass that served
	// the request (shared by every request coalesced into it).
	Cycles int `json:"cycles"`
	// Batch is the pass's lane occupancy: how many requests were coalesced.
	Batch int `json:"batch"`
	// Shard identifies the shard that ran the pass.
	Shard int `json:"shard"`
	// Degraded reports that the pass ran over a fault-rewritten schedule.
	Degraded bool `json:"degraded,omitempty"`
}

// Config sizes a Server.
type Config struct {
	// Orders lists the dual-cube orders to serve; every shard and schedule
	// is warmed before New returns. Default: 4, 5, 6.
	Orders []int
	// Shards is the number of runtime shards per order; each shard runs at
	// most one batched pass at a time, so this bounds per-order
	// concurrency. Default 1.
	Shards int
	// MaxBatch is the lane-width ceiling of one batched pass; 1 disables
	// coalescing. Default 32.
	MaxBatch int
	// Window is how long a dispatcher holds the first pending request of a
	// batch open for more arrivals. Default 200µs.
	Window time.Duration
	// QueueCap is the bounded pending-queue capacity per (op, order)
	// dispatcher; a full queue rejects with ErrSaturated. Default 256.
	QueueCap int
}

func (c Config) withDefaults() Config {
	if len(c.Orders) == 0 {
		c.Orders = []int{4, 5, 6}
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Window <= 0 {
		c.Window = 200 * time.Microsecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	return c
}

// ErrSaturated is the admission-control rejection: the pending queue of the
// request's (op, order) dispatcher is full. The HTTP layer maps it to
// 429 + Retry-After; in-process callers should back off and retry.
var ErrSaturated = errors.New("serve: pending queue full, retry later")

// ErrUnavailable means no shard of the requested order can currently run
// the operation (all down, or all survivors degraded for an op with no
// degraded schedule). The HTTP layer maps it to 503.
var ErrUnavailable = errors.New("serve: no shard available for the operation")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: server is closed")

// Server is the serving front-end. Create with New, serve HTTP with
// Handler, submit in-process with Client (or Submit directly), stop with
// Close.
type Server struct {
	cfg   Config
	pools map[int]*pool
	lines map[lineKey]*line
	met   *metrics

	// mu serializes Submit's enqueue against Close's channel close: Submit
	// holds the read side across its non-blocking send, so Close can never
	// close a queue mid-send.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

type lineKey struct {
	op Op
	n  int
}

// New builds a Server: every configured order's topology and schedules are
// warmed, shards and their payload planes allocated, and one dispatcher
// goroutine started per (op, order).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	seen := make(map[int]bool, len(cfg.Orders))
	orders := make([]int, 0, len(cfg.Orders))
	for _, n := range cfg.Orders {
		if !seen[n] {
			seen[n] = true
			orders = append(orders, n)
		}
	}
	sort.Ints(orders)
	cfg.Orders = orders

	s := &Server{
		cfg:   cfg,
		pools: make(map[int]*pool, len(orders)),
		lines: make(map[lineKey]*line, len(orders)*int(opCount)),
		met:   newMetrics(cfg.MaxBatch),
	}
	for _, n := range orders {
		p, err := newPool(n, cfg.Shards, cfg.MaxBatch)
		if err != nil {
			return nil, err
		}
		s.pools[n] = p
		for op := OpPrefix; op < opCount; op++ {
			l := &line{s: s, key: lineKey{op, n}, pool: p, ch: make(chan *pending, cfg.QueueCap)}
			s.lines[l.key] = l
			s.wg.Add(1)
			go l.run()
		}
	}
	return s, nil
}

// Orders returns the orders this server was configured to serve.
func (s *Server) Orders() []int { return append([]int(nil), s.cfg.Orders...) }

// Close stops admitting requests, lets every dispatcher drain and serve
// what is already queued, and waits for them to exit. Submit after Close
// returns ErrClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, l := range s.lines {
		close(l.ch)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// validate rejects malformed requests before they reach a queue.
func (s *Server) validate(req *Request) (*topology.DualCube, error) {
	if req.Op >= opCount {
		return nil, fmt.Errorf("serve: unknown operation %s", req.Op)
	}
	p, ok := s.pools[req.N]
	if !ok {
		return nil, fmt.Errorf("serve: order %d is not served (configured orders: %v)", req.N, s.cfg.Orders)
	}
	d := p.d
	switch req.Op {
	case OpBroadcast:
		if req.Root < 0 || req.Root >= d.Nodes() {
			return nil, fmt.Errorf("serve: broadcast root %d outside 0..%d", req.Root, d.Nodes()-1)
		}
	default:
		if len(req.Data) != d.Nodes() {
			return nil, fmt.Errorf("serve: %s on D_%d wants %d elements, got %d", req.Op, req.N, d.Nodes(), len(req.Data))
		}
	}
	return d, nil
}

// Submit runs one request through the batching pipeline and blocks until
// its pass completes. It is safe for arbitrary concurrent use; requests
// sharing an (op, order) line coalesce into batched passes.
func (s *Server) Submit(req *Request) (*Response, error) {
	if _, err := s.validate(req); err != nil {
		return nil, err
	}
	start := time.Now()
	p := &pending{req: req, done: make(chan outcome, 1)}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	l := s.lines[lineKey{req.Op, req.N}]
	select {
	case l.ch <- p:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.met.op(req.Op).rejected.Add(1)
		return nil, ErrSaturated
	}
	out := <-p.done
	if out.err == nil {
		s.met.op(req.Op).observe(time.Since(start))
	} else {
		s.met.op(req.Op).errors.Add(1)
	}
	return out.resp, out.err
}

// Metrics renders the Prometheus-style metrics page (see Handler's
// /metrics endpoint).
func (s *Server) Metrics() string { return s.met.render(s) }

// ShardStates reports, for order n, the state of every shard ("up",
// "degraded", "down"); it backs /healthz.
func (s *Server) ShardStates(n int) ([]string, error) {
	p, ok := s.pools[n]
	if !ok {
		return nil, fmt.Errorf("serve: order %d is not served", n)
	}
	return p.stateNames(), nil
}

// Healthy reports whether every configured order has at least one shard in
// rotation.
func (s *Server) Healthy() bool {
	for _, p := range s.pools {
		if p.upCount() == 0 {
			return false
		}
	}
	return true
}

// DegradeShard marks shard idx of order n degraded under f seeded random
// permanent link faults: its passes reroute onto dcomm.RewriteFT schedules
// with the plan armed. Sort has no fault rewrite, so a degraded shard
// refuses sort and the pool routes sort traffic to healthy shards.
func (s *Server) DegradeShard(n, idx, f int, seed int64) error {
	p, ok := s.pools[n]
	if !ok {
		return fmt.Errorf("serve: order %d is not served", n)
	}
	return p.degrade(idx, f, seed)
}

// DownShard removes shard idx of order n from rotation entirely.
func (s *Server) DownShard(n, idx int) error {
	p, ok := s.pools[n]
	if !ok {
		return fmt.Errorf("serve: order %d is not served", n)
	}
	return p.down(idx)
}

// RestoreShard returns shard idx of order n to healthy rotation on the
// fault-free schedules.
func (s *Server) RestoreShard(n, idx int) error {
	p, ok := s.pools[n]
	if !ok {
		return fmt.Errorf("serve: order %d is not served", n)
	}
	return p.restore(idx)
}
