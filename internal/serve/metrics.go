package serve

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Serving observability, stdlib-only: per-op latency histograms with
// interpolated p50/p99, batch-occupancy histograms, queue-depth gauges and
// admission counters, rendered in the Prometheus text exposition format so
// any scraper (or curl) can read /metrics.

// latencyHist is a log2-bucketed microsecond histogram: bucket i counts
// observations in [2^i, 2^(i+1)) µs. 32 buckets span sub-µs to ~1.2 hours.
type latencyHist struct {
	mu      sync.Mutex
	buckets [32]uint64
	count   uint64
	sumUS   uint64
}

func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	b := 0
	if us > 0 {
		b = bits.Len64(us) - 1
		if b >= len(h.buckets) {
			b = len(h.buckets) - 1
		}
	}
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.sumUS += us
	h.mu.Unlock()
}

// quantile interpolates the q-quantile (0..1) in microseconds from the
// bucket counts; 0 when the histogram is empty.
func (h *latencyHist) quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var seen float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if seen+fc >= rank {
			lo := math.Exp2(float64(i))
			if i == 0 {
				lo = 0
			}
			hi := math.Exp2(float64(i + 1))
			frac := (rank - seen) / fc
			return lo + frac*(hi-lo)
		}
		seen += fc
	}
	return math.Exp2(float64(len(h.buckets)))
}

func (h *latencyHist) snapshot() (count, sumUS uint64, buckets [32]uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sumUS, h.buckets
}

// occupancyHist counts batch sizes 1..max linearly — the lane occupancy of
// every pass, the direct measure of how well coalescing is working.
type occupancyHist struct {
	mu      sync.Mutex
	buckets []uint64 // buckets[i] counts passes of occupancy i+1
	count   uint64
	sum     uint64
}

func newOccupancyHist(max int) *occupancyHist {
	return &occupancyHist{buckets: make([]uint64, max)}
}

func (h *occupancyHist) observe(k int) {
	h.mu.Lock()
	if k >= 1 && k <= len(h.buckets) {
		h.buckets[k-1]++
	}
	h.count++
	h.sum += uint64(k)
	h.mu.Unlock()
}

func (h *occupancyHist) snapshot() (count, sum uint64, buckets []uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum, append([]uint64(nil), h.buckets...)
}

// opMetrics aggregates one operation's serving counters.
type opMetrics struct {
	latency   latencyHist
	occupancy *occupancyHist
	rejected  atomic.Uint64
	errors    atomic.Uint64
}

func (m *opMetrics) observe(d time.Duration) { m.latency.observe(d) }

type metrics struct {
	ops [opCount]*opMetrics
}

func newMetrics(maxBatch int) *metrics {
	m := &metrics{}
	for op := range m.ops {
		m.ops[op] = &opMetrics{occupancy: newOccupancyHist(maxBatch)}
	}
	return m
}

func (m *metrics) op(op Op) *opMetrics { return m.ops[op] }

// render writes the whole metrics page. The server is passed in for the
// queue-depth and shard-state gauges, which live outside the counters.
func (m *metrics) render(s *Server) string {
	var b strings.Builder

	b.WriteString("# HELP dcserve_requests_total Requests served, by operation.\n")
	b.WriteString("# TYPE dcserve_requests_total counter\n")
	for op := OpPrefix; op < opCount; op++ {
		count, _, _ := m.op(op).latency.snapshot()
		fmt.Fprintf(&b, "dcserve_requests_total{op=%q} %d\n", op, count)
	}

	b.WriteString("# HELP dcserve_rejected_total Requests rejected by admission control (queue full).\n")
	b.WriteString("# TYPE dcserve_rejected_total counter\n")
	for op := OpPrefix; op < opCount; op++ {
		fmt.Fprintf(&b, "dcserve_rejected_total{op=%q} %d\n", op, m.op(op).rejected.Load())
	}

	b.WriteString("# HELP dcserve_errors_total Requests failed after admission.\n")
	b.WriteString("# TYPE dcserve_errors_total counter\n")
	for op := OpPrefix; op < opCount; op++ {
		fmt.Fprintf(&b, "dcserve_errors_total{op=%q} %d\n", op, m.op(op).errors.Load())
	}

	b.WriteString("# HELP dcserve_latency_us Request latency histogram, log2 buckets in microseconds.\n")
	b.WriteString("# TYPE dcserve_latency_us histogram\n")
	for op := OpPrefix; op < opCount; op++ {
		count, sumUS, buckets := m.op(op).latency.snapshot()
		var cum uint64
		for i, c := range buckets {
			if c == 0 {
				continue
			}
			cum += c
			fmt.Fprintf(&b, "dcserve_latency_us_bucket{op=%q,le=\"%.0f\"} %d\n", op, math.Exp2(float64(i+1)), cum)
		}
		fmt.Fprintf(&b, "dcserve_latency_us_bucket{op=%q,le=\"+Inf\"} %d\n", op, count)
		fmt.Fprintf(&b, "dcserve_latency_us_sum{op=%q} %d\n", op, sumUS)
		fmt.Fprintf(&b, "dcserve_latency_us_count{op=%q} %d\n", op, count)
	}

	b.WriteString("# HELP dcserve_latency_us_quantile Interpolated latency quantiles in microseconds.\n")
	b.WriteString("# TYPE dcserve_latency_us_quantile gauge\n")
	for op := OpPrefix; op < opCount; op++ {
		h := &m.op(op).latency
		fmt.Fprintf(&b, "dcserve_latency_us_quantile{op=%q,q=\"0.5\"} %.1f\n", op, h.quantile(0.5))
		fmt.Fprintf(&b, "dcserve_latency_us_quantile{op=%q,q=\"0.99\"} %.1f\n", op, h.quantile(0.99))
	}

	b.WriteString("# HELP dcserve_batch_occupancy Lanes coalesced per kernel pass.\n")
	b.WriteString("# TYPE dcserve_batch_occupancy histogram\n")
	for op := OpPrefix; op < opCount; op++ {
		count, sum, buckets := m.op(op).occupancy.snapshot()
		var cum uint64
		for i, c := range buckets {
			if c == 0 {
				continue
			}
			cum += c
			fmt.Fprintf(&b, "dcserve_batch_occupancy_bucket{op=%q,le=\"%d\"} %d\n", op, i+1, cum)
		}
		fmt.Fprintf(&b, "dcserve_batch_occupancy_bucket{op=%q,le=\"+Inf\"} %d\n", op, count)
		fmt.Fprintf(&b, "dcserve_batch_occupancy_sum{op=%q} %d\n", op, sum)
		fmt.Fprintf(&b, "dcserve_batch_occupancy_count{op=%q} %d\n", op, count)
	}

	b.WriteString("# HELP dcserve_queue_depth Pending requests queued per (op, order) line.\n")
	b.WriteString("# TYPE dcserve_queue_depth gauge\n")
	keys := make([]lineKey, 0, len(s.lines))
	for k := range s.lines {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].n != keys[j].n {
			return keys[i].n < keys[j].n
		}
		return keys[i].op < keys[j].op
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "dcserve_queue_depth{op=%q,n=\"%d\"} %d\n", k.op, k.n, len(s.lines[k].ch))
	}

	b.WriteString("# HELP dcserve_shard_state Shard rotation state (0 up, 1 degraded, 2 down).\n")
	b.WriteString("# TYPE dcserve_shard_state gauge\n")
	for _, n := range s.cfg.Orders {
		states, _ := s.ShardStates(n)
		for i, st := range states {
			v := map[string]int{"up": 0, "degraded": 1, "down": 2}[st]
			fmt.Fprintf(&b, "dcserve_shard_state{n=\"%d\",shard=\"%d\"} %d\n", n, i, v)
		}
	}
	return b.String()
}
