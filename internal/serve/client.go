package serve

// Client is the in-process face of a Server: typed helpers over Submit
// with the same coalescing, admission control and error taxonomy as the
// HTTP path (ErrSaturated under backpressure, ErrUnavailable with no
// eligible shard). Any number of goroutines may share one Client; that is
// exactly the traffic the batcher coalesces.
type Client struct {
	s *Server
}

// NewClient returns an in-process client for s.
func NewClient(s *Server) *Client { return &Client{s: s} }

// Prefix computes all prefix sums of in on D_n.
func (c *Client) Prefix(n int, in []int64) (*Response, error) {
	return c.s.Submit(&Request{Op: OpPrefix, N: n, Data: in})
}

// AllReduce combines in element order on D_n; Response.Data holds the one
// total.
func (c *Client) AllReduce(n int, in []int64) (*Response, error) {
	return c.s.Submit(&Request{Op: OpAllReduce, N: n, Data: in})
}

// Sort sorts keys on D_n, descending when desc.
func (c *Client) Sort(n int, keys []int64, desc bool) (*Response, error) {
	return c.s.Submit(&Request{Op: OpSort, N: n, Data: keys, Desc: desc})
}

// Broadcast floods value from root on D_n; Response.Data holds the one
// delivered value.
func (c *Client) Broadcast(n, root int, value int64) (*Response, error) {
	return c.s.Submit(&Request{Op: OpBroadcast, N: n, Root: root, Value: value})
}
