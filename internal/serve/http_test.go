package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPEndToEnd drives the whole HTTP surface: a prefix request, the
// degrade admin knob making sort 503, /healthz, and a /metrics scrape that
// must expose the latency quantiles and batch-occupancy series.
func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Orders: []int{2}, MaxBatch: 4, Window: time.Millisecond})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	in := make([]int64, 8)
	var want int64
	for i := range in {
		in[i] = int64(i + 1)
	}
	resp := postJSON(t, ts.URL+"/v1/prefix", &Request{N: 2, Data: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prefix status %d", resp.StatusCode)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i, v := range in {
		want += v
		if out.Data[i] != want {
			t.Fatalf("prefix[%d] = %d, want %d", i, out.Data[i], want)
		}
	}

	// Malformed payload → 400.
	resp = postJSON(t, ts.URL+"/v1/prefix", &Request{N: 2, Data: in[:3]})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short payload status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown op in the path → 404.
	resp = postJSON(t, ts.URL+"/v1/scan", &Request{N: 2, Data: in})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown op status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Degrade the only shard: sort must 503, /healthz stays ok (the shard
	// is degraded, not down).
	resp = postJSON(t, ts.URL+"/admin/shard?n=2&shard=0&action=degrade&faults=1&seed=7", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degrade status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/sort", &Request{N: 2, Data: in})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sort on degraded pool status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d with a degraded (not down) shard", hz.StatusCode)
	}
	hz.Body.Close()

	// Down the shard: /healthz must flip.
	resp = postJSON(t, ts.URL+"/admin/shard?n=2&shard=0&action=down", nil)
	resp.Body.Close()
	hz, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d with every shard down, want 503", hz.StatusCode)
	}
	hz.Body.Close()
	resp = postJSON(t, ts.URL+"/admin/shard?n=2&shard=0&action=restore", nil)
	resp.Body.Close()

	// Metrics scrape: the serving histograms must be present.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mr.Body)
	mr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, series := range []string{
		`dcserve_requests_total{op="prefix"}`,
		`dcserve_latency_us_quantile{op="prefix",q="0.5"}`,
		`dcserve_latency_us_quantile{op="prefix",q="0.99"}`,
		`dcserve_batch_occupancy_bucket{op="prefix",le="+Inf"}`,
		`dcserve_queue_depth{op="prefix",n="2"}`,
		`dcserve_shard_state{n="2",shard="0"}`,
	} {
		if !strings.Contains(page, series) {
			t.Errorf("metrics page missing %s", series)
		}
	}
}

// TestLoadGenSmoke runs the E23 load generator briefly with verification
// on, at two batch widths, and sanity-checks the points.
func TestLoadGenSmoke(t *testing.T) {
	pts, err := SweepBatch(LoadConfig{
		Op:       OpPrefix,
		N:        3,
		Clients:  8,
		Duration: 60 * time.Millisecond,
		Seed:     1,
		Verify:   true,
	}, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Requests <= 0 || pt.RPS <= 0 {
			t.Fatalf("degenerate load point: %+v", pt)
		}
		if pt.MeanBatch < 1 || pt.MeanBatch > float64(pt.MaxBatch) {
			t.Fatalf("mean batch %v outside [1, %d]", pt.MeanBatch, pt.MaxBatch)
		}
	}
	if pts[0].MaxBatch != 1 || pts[1].MaxBatch != 8 {
		t.Fatalf("sweep order wrong: %+v", pts)
	}
}
