// Package prefix implements the paper's parallel prefix computations:
// Algorithm 1 (Cube_prefix, the ascend prefix on a hypercube) and
// Algorithm 2 (D_prefix, the cluster-technique prefix on a dual-cube), plus
// the extensions the paper lists as future work (inputs larger than the
// network) and the hypercube-emulation ablation.
//
// All algorithms are generic over a monoid and combine elements strictly in
// index order, so non-commutative operators are supported. Each returns the
// machine statistics so the experiment harness can check the theorems:
// D_prefix on D_n runs in 2n communication steps (Theorem 1 bound: at most
// 2n+1) and 2n computation rounds.
//
// D_prefix executes through the compiled cluster-technique schedule
// (dcomm.Compiled(d, dcomm.OpPrefix)): the algorithm is a machine.DirectKernel
// (kernel.go) and dcomm.Execute routes it — by default through the direct
// array executor, or through a simulator engine driving the same kernel when
// an engine scheduler is requested — so the fault-free and degraded variants
// are the same kernel over different schedules and both execution paths are
// one algorithm.
package prefix

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/emulate"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// ascendStep performs one dimension step of Algorithm 1 at a single node:
// exchange the running subcube total t with the dimension-i partner and
// fold the received half into t and, when this node is in the upper half
// (local bit i set), into the prefix s. Combine order is kept strictly
// lower-half-first so non-commutative monoids work.
func ascendStep[T any](c *machine.Ctx[T], m monoid.Monoid[T], partner int, upper bool, t, s T) (T, T) {
	temp := c.Exchange(partner, t)
	if upper {
		s = m.Combine(temp, s)
		t = m.Combine(temp, t)
	} else {
		t = m.Combine(t, temp)
	}
	c.Ops(1)
	return t, s
}

// CubePrefix runs Algorithm 1 on the hypercube Q_q: node u starts with
// in[u] and finishes with the prefix in[0] ⊕ ... ⊕ in[u] (inclusive) or
// in[0] ⊕ ... ⊕ in[u-1] (diminished, the paper's tag = 0). It takes q
// communication steps and q computation rounds.
func CubePrefix[T any](q int, in []T, m monoid.Monoid[T], inclusive bool) ([]T, machine.Stats, error) {
	h, err := topology.NewHypercube(q)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if len(in) != h.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("prefix: input length %d != %d nodes of %s", len(in), h.Nodes(), h.Name())
	}
	out := make([]T, len(in))
	eng, err := machine.New[T](h, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[T]) {
		u := c.ID()
		t := in[u]
		s := in[u]
		if !inclusive {
			s = m.Identity()
		}
		for i := 0; i < q; i++ {
			t, s = ascendStep(c, m, u^1<<i, u&(1<<i) != 0, t, s)
		}
		out[u] = s
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// Trace captures the per-phase snapshots of one D_prefix run, indexed by
// element (data) position — the six panels of the paper's Figure 3.
type Trace[T any] struct {
	Phases []Phase[T]
}

// Phase is one snapshot: the prefix variable s and the total variable t of
// every node, in element order.
type Phase[T any] struct {
	Label string
	S     []T
	T     []T
}

// addPhase allocates a snapshot to be filled in by the node programs.
func (tr *Trace[T]) addPhase(label string, n int) *Phase[T] {
	tr.Phases = append(tr.Phases, Phase[T]{Label: label, S: make([]T, n), T: make([]T, n)})
	return &tr.Phases[len(tr.Phases)-1]
}

// DPrefix runs Algorithm 2 on the dual-cube D_n. The input is in element
// order under the paper's block layout: element idx lives on node
// NodeAtDataIndex(idx), so each cluster holds a consecutive block. The
// result is the prefix of in (inclusive, or diminished when inclusive is
// false), again in element order.
//
// The five steps of Algorithm 2, executed by every node u with local
// cluster index x and element block b:
//
//  1. inclusive prefix inside the cluster (n-1 exchanges): t = block total,
//     s = prefix within the block;
//  2. exchange t over the cross-edge (1 cycle): afterwards the nodes of
//     every cluster of one class hold the block totals of the other class,
//     in local-index order (the cross-edge permutation transposes the two
//     address fields, which is exactly why the layout swaps them);
//  3. diminished prefix of the received totals inside the cluster (n-1
//     exchanges): s' = combined totals of the other class's blocks before
//     the cross partner's block, t' = the other class's grand total;
//  4. exchange s' back over the cross-edge (1 cycle) and fold it into s;
//  5. class-1 nodes additionally fold in the class-0 grand total t',
//     which step 3 left on the class-1 nodes themselves — a purely local
//     computation round in this layout (the paper schedules a third
//     cross-edge step here; either way Theorem 1's bound of 2n+1
//     communication steps holds, ours measures exactly 2n).
//
// tr may be nil; when non-nil it receives the Figure 3 phase snapshots.
func DPrefix[T any](n int, in []T, m monoid.Monoid[T], inclusive bool, tr *Trace[T]) ([]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	return DPrefixOn(d, in, m, inclusive, tr)
}

// DPrefixOn is DPrefix over an explicit communication topology: Algorithm 2
// runs unchanged on any Comm — dual-cube, odd hypercube or Z-cube — because
// every exchange uses only the cluster decomposition the interface
// guarantees. The input is in element order under the topology's block
// layout (DataIndex), exactly as for DPrefix.
func DPrefixOn[T any](d topology.Comm, in []T, m monoid.Monoid[T], inclusive bool, tr *Trace[T]) ([]T, machine.Stats, error) {
	if err := topology.ValidLen(d, len(in)); err != nil {
		return nil, machine.Stats{}, err
	}

	// snap stays nil without tracing so steady-state runs skip the closure.
	var snap func(i int, idx int, s, t T)
	if tr != nil {
		var snaps []*Phase[T]
		for _, label := range []string{
			"(a) original data distribution",
			"(b) prefix inside cluster (t, s)",
			"(c) exchange t via cross-edge",
			"(d) prefix of totals inside cluster (t', s')",
			"(e) get s' and prefix one more time",
			"(f) final result (class 1 + t')",
		} {
			snaps = append(snaps, tr.addPhase(label, d.Nodes()))
		}
		snap = func(i int, idx int, s, t T) {
			snaps[i].S[idx] = s
			snaps[i].T[idx] = t
		}
	}

	sch, err := dcomm.Compiled(d, dcomm.OpPrefix)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	out := make([]T, len(in))
	st, err := dcomm.Execute(sch, machine.Config{}, newPrefixKernel(d, m, inclusive, in, out, snap))
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// DPrefixRecorded is DPrefix with full message recording (per-link loads
// and the space-time event log) for the traffic analysis of experiment
// E14. Tracing snapshots are not supported in this variant.
func DPrefixRecorded[T any](n int, in []T, m monoid.Monoid[T], inclusive bool) ([]T, machine.Stats, *machine.Recording, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, nil, err
	}
	sch, err := dcomm.Compiled(d, dcomm.OpPrefix)
	if err != nil {
		return nil, machine.Stats{}, nil, err
	}
	out := make([]T, len(in))
	eng, err := machine.New[T](d, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, nil, err
	}
	defer eng.Release()
	st, rec, err := eng.RunRecorded(machine.KernelProgram(sch, newPrefixKernel(d, m, inclusive, in, out, nil)))
	if err != nil {
		return nil, st, nil, err
	}
	return out, st, rec, nil
}

// EmulatedCubePrefix is the ablation of experiment E4: run Algorithm 1 for
// the (2n-1)-cube directly on D_n via the recursive presentation — a
// "normal" ascend algorithm executed through internal/emulate — paying the
// 3-cycle relay for every dimension above 0 instead of using the cluster
// technique. Input and output are in recursive-ID order. It costs 6n-5
// communication steps versus D_prefix's 2n, demonstrating why the cluster
// technique matters.
func EmulatedCubePrefix[T any](n int, in []T, m monoid.Monoid[T], inclusive bool) ([]T, machine.Stats, error) {
	init := make([]totalPrefix[T], len(in))
	for i, v := range in {
		init[i] = totalPrefix[T]{t: v, s: v}
		if !inclusive {
			init[i].s = m.Identity()
		}
	}
	pairs, st, err := emulate.Ascend(n, init, func(dim, id int, mine, theirs totalPrefix[T]) totalPrefix[T] {
		if id>>dim&1 == 1 {
			return totalPrefix[T]{t: m.Combine(theirs.t, mine.t), s: m.Combine(theirs.t, mine.s)}
		}
		return totalPrefix[T]{t: m.Combine(mine.t, theirs.t), s: mine.s}
	})
	if err != nil {
		return nil, st, err
	}
	out := make([]T, len(pairs))
	for i, p := range pairs {
		out[i] = p.s
	}
	return out, st, nil
}

// totalPrefix is the (subcube total, subcube prefix) value pair carried by
// the ascend prefix when expressed as a normal algorithm.
type totalPrefix[T any] struct {
	t, s T
}

// MeasuredCommSteps returns the communication steps our D_prefix schedule
// takes on D_n: 2(n-1) intra-cluster exchanges plus 2 cross-edge exchanges.
func MeasuredCommSteps(n int) int { return 2 * n }

// PaperCommBound returns Theorem 1's communication bound for D_n: 2n+1.
func PaperCommBound(n int) int { return 2*n + 1 }

// PaperCompBound returns Theorem 1's computation bound for D_n: 2n.
func PaperCompBound(n int) int { return 2 * n }

// CubeCommSteps returns the communication steps of Algorithm 1 on Q_q: q.
func CubeCommSteps(q int) int { return q }

// EmulatedCommSteps returns the communication steps of the hypercube
// emulation ablation on D_n: 1 + 3(2n-2) = 6n-5.
func EmulatedCommSteps(n int) int { return 6*n - 5 }
