package prefix

import (
	"fmt"

	"dualcube/internal/machine"
	"dualcube/internal/monoid"
)

// seg is the element of the segmented-scan monoid: a value plus a flag
// marking whether the element's prefix has crossed a segment boundary.
type seg[T any] struct {
	head bool
	val  T
}

// segMonoid lifts m to the classic segmented-scan operator:
//
//	(f1,v1) ⊕ (f2,v2) = (f1∨f2, v2)        if f2 (right side starts a segment)
//	                  = (f1∨f2, v1⊕v2)     otherwise
//
// This operator is associative whenever m is, so segmented scan is just a
// plain parallel prefix over the lifted elements — which is exactly how it
// runs on the dual-cube, at the unchanged 2n communication steps.
func segMonoid[T any](m monoid.Monoid[T]) monoid.Monoid[seg[T]] {
	return monoid.Monoid[seg[T]]{
		Name:     "segmented(" + m.Name + ")",
		Identity: func() seg[T] { return seg[T]{head: false, val: m.Identity()} },
		Combine: func(a, b seg[T]) seg[T] {
			if b.head {
				return seg[T]{head: true, val: b.val}
			}
			return seg[T]{head: a.head, val: m.Combine(a.val, b.val)}
		},
	}
}

// DPrefixSegmented computes the inclusive segmented prefix of values on
// D_n: heads[i] = true starts a new segment at i, and out[i] combines the
// values from its segment's start through i. Element 0 implicitly starts
// the first segment. Costs exactly the same 2n communication steps as
// DPrefix — segmentation is free.
func DPrefixSegmented[T any](n int, values []T, heads []bool, m monoid.Monoid[T]) ([]T, machine.Stats, error) {
	if len(values) != len(heads) {
		return nil, machine.Stats{}, fmt.Errorf("prefix: %d values but %d segment flags", len(values), len(heads))
	}
	in := make([]seg[T], len(values))
	for i := range values {
		in[i] = seg[T]{head: heads[i], val: values[i]}
	}
	lifted, st, err := DPrefix(n, in, segMonoid(m), true, nil)
	if err != nil {
		return nil, st, err
	}
	out := make([]T, len(values))
	for i, s := range lifted {
		out[i] = s.val
	}
	return out, st, nil
}
