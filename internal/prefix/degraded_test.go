package prefix

import (
	"math/rand"
	"testing"

	"dualcube/internal/dcomm"
	"dualcube/internal/fault"
	"dualcube/internal/monoid"
	"dualcube/internal/seq"
	"dualcube/internal/topology"
)

// TestDPrefixDegradedSweep is the acceptance sweep: on D_4..D_6 and every
// f = 0..n-1, a seeded random plan of f link faults must leave the degraded
// prefix exactly correct (checked against the sequential scan, inclusive and
// diminished), and the communication overhead must match the detour plans.
func TestDPrefixDegradedSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 4; n <= 6; n++ {
		d := topology.MustDualCube(n)
		in := randInts(rng, d.Nodes())
		for f := 0; f < n; f++ {
			plan := fault.Random(d, f, int64(1000*n+f))
			for _, inclusive := range []bool{true, false} {
				got, st, err := DPrefixDegraded(n, in, monoid.Sum[int](), inclusive, plan)
				if err != nil {
					t.Fatalf("n=%d f=%d: %v", n, f, err)
				}
				want := seq.ScanInclusive(in, monoid.Sum[int]())
				if !inclusive {
					want = seq.ScanExclusive(in, monoid.Sum[int]())
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d f=%d inclusive=%v: out[%d]=%d, want %d", n, f, inclusive, i, got[i], want[i])
					}
				}
				if st.Faults.DownLinks != 2*f {
					t.Errorf("n=%d f=%d: Stats.Faults.DownLinks = %d, want %d", n, f, st.Faults.DownLinks, 2*f)
				}
				sch, err := dcomm.RewriteFT(dcomm.MustCompiled(d, dcomm.OpPrefix), fault.NewView(d, plan))
				if err != nil {
					t.Fatalf("n=%d f=%d: rewrite: %v", n, f, err)
				}
				if want := MeasuredCommSteps(n) + DegradedCommOverhead(sch); st.Cycles != want {
					t.Errorf("n=%d f=%d: comm steps %d, want %d", n, f, st.Cycles, want)
				}
			}
		}
	}
}

// TestDPrefixDegradedReproducible re-runs one seeded faulted prefix and
// requires the full Stats — including the fault breakdown — to repeat
// exactly, the reproducibility half of the acceptance criteria.
func TestDPrefixDegradedReproducible(t *testing.T) {
	const n = 5
	d := topology.MustDualCube(n)
	in := randInts(rand.New(rand.NewSource(3)), d.Nodes())
	plan := fault.Random(d, n-1, 77)
	_, first, err := DPrefixDegraded(n, in, monoid.Sum[int](), true, plan)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		_, again, err := DPrefixDegraded(n, in, monoid.Sum[int](), true, plan)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d diverges:\n  first: %+v\n  again: %+v", run, first, again)
		}
	}
	// A fresh but identically seeded plan must reproduce the same stats too.
	_, fresh, err := DPrefixDegraded(n, in, monoid.Sum[int](), true, fault.Random(d, n-1, 77))
	if err != nil {
		t.Fatal(err)
	}
	if fresh != first {
		t.Fatalf("same seed, fresh plan diverges:\n  first: %+v\n  fresh: %+v", first, fresh)
	}
}

// TestDPrefixDegradedFaultFree checks the zero-plan fast path is the plain
// algorithm: same outputs, same Stats (cycles, messages, ops — everything).
func TestDPrefixDegradedFaultFree(t *testing.T) {
	const n = 4
	d := topology.MustDualCube(n)
	in := randInts(rand.New(rand.NewSource(9)), d.Nodes())
	plainOut, plainStats, err := DPrefix(n, in, monoid.Sum[int](), true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []*fault.Plan{nil, {Seed: 4}} {
		out, st, err := DPrefixDegraded(n, in, monoid.Sum[int](), true, plan)
		if err != nil {
			t.Fatal(err)
		}
		if st != plainStats {
			t.Errorf("plan %+v: stats diverge from DPrefix:\n  plain:    %+v\n  degraded: %+v", plan, plainStats, st)
		}
		for i := range plainOut {
			if out[i] != plainOut[i] {
				t.Fatalf("plan %+v: out[%d] = %d, want %d", plan, i, out[i], plainOut[i])
			}
		}
	}
}

// TestDPrefixDegradedNonCommutative runs a faulted prefix over the free
// monoid: detour relays must not perturb the strict index-order combines.
func TestDPrefixDegradedNonCommutative(t *testing.T) {
	const n = 4
	d := topology.MustDualCube(n)
	in := make([]string, d.Nodes())
	for i := range in {
		in[i] = string(rune('a' + i%26))
	}
	plan := fault.Random(d, n-1, 13)
	got, _, err := DPrefixDegraded(n, in, monoid.Concat(), true, plan)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.ScanInclusive(in, monoid.Concat())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestDPrefixDegradedRejects checks the documented scope limits: node faults
// and transient noise are refused up front, as are plans that name bogus
// links or disconnect the network.
func TestDPrefixDegradedRejects(t *testing.T) {
	const n = 4
	d := topology.MustDualCube(n)
	in := randInts(rand.New(rand.NewSource(2)), d.Nodes())
	for name, plan := range map[string]*fault.Plan{
		"node fault":    {Nodes: []int{0}},
		"drop noise":    {DropProb: 0.1},
		"delay noise":   {DelayProb: 0.1},
		"bogus link":    {Links: []fault.Link{{U: 0, V: 3}}},
		"disconnection": {Links: disconnectNode0(d)},
	} {
		if _, _, err := DPrefixDegraded(n, in, monoid.Sum[int](), true, plan); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}

// disconnectNode0 fails every link incident to node 0 (f = n, one past the
// connectivity bound, chosen adversarially).
func disconnectNode0(d *topology.DualCube) []fault.Link {
	var links []fault.Link
	for _, w := range d.Neighbors(0) {
		links = append(links, fault.Link{U: 0, V: w})
	}
	return links
}
