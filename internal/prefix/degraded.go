package prefix

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/fault"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// DPrefixDegraded runs Algorithm 2 on a D_n with permanent link faults. It is
// the same kernel as DPrefix — prefixKernel — executed over the
// fault-rewritten schedule: dcomm.RewriteFT annotates every exchange pattern
// severed by the fault view with its broken-pair mask and the canonical
// detour relays, and both execution paths stretch the affected steps
// accordingly (the direct executor masks the severed pairs in the kernel and
// replays the detours as a per-step epilogue; the simulator interpreter
// relays them message by message). The fault plan is armed in the executor,
// so the run aborts if the schedule ever touches failed hardware —
// correctness of the detours is machine-checked, not assumed.
//
// The result is correct for any f <= n-1 permanent link faults (the link
// connectivity of D_n is n, so every broken pair keeps an alive repair path);
// larger f is accepted as long as the network stays connected, and rejected
// with an error when it does not. Plans with node faults or transient
// drop/delay noise are rejected: a fail-stop node cannot hold its share of
// the input, and the deterministic detour schedule has no retransmission
// protocol for message loss — both are out of the paper's degraded-mode
// scope.
//
// With a nil (or empty) plan the rewrite returns the fault-free schedule
// itself and the run is byte-identical to DPrefix: 2n communication steps.
// Each repaired pair adds 2·(detour length − 1) cycles per affected exchange;
// the measured totals versus Theorem 1's fault-free 2n+1 bound are tabulated
// in EXPERIMENTS.md.
func DPrefixDegraded[T any](n int, in []T, m monoid.Monoid[T], inclusive bool, plan *fault.Plan) ([]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if err := plan.Validate(d); err != nil {
		return nil, machine.Stats{}, err
	}
	if plan != nil {
		if len(plan.Nodes) > 0 {
			return nil, machine.Stats{}, fmt.Errorf("prefix: degraded D_prefix survives link faults only; plan fails %d node(s)", len(plan.Nodes))
		}
		if plan.DropProb > 0 || plan.DelayProb > 0 {
			return nil, machine.Stats{}, fmt.Errorf("prefix: degraded D_prefix has no retransmission protocol; plan injects transient drop/delay noise")
		}
	}

	base, err := dcomm.Compiled(d, dcomm.OpPrefix)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	sch, err := dcomm.RewriteFT(base, fault.NewView(d, plan))
	if err != nil {
		return nil, machine.Stats{}, err
	}

	out := make([]T, len(in))
	st, err := dcomm.Execute(sch, machine.Config{Faults: plan.Spec()}, newPrefixKernel(d, m, inclusive, in, out, nil))
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// DegradedCommOverhead returns the extra communication cycles a
// fault-rewritten prefix schedule appends to the fault-free 2n schedule.
// Steps reuse their pattern's repairs, so cluster-dimension repairs are paid
// twice (steps 1 and 3) and cross repairs twice (steps 2 and 4); the
// schedule's RepairCycles field carries exactly that per-step sum.
func DegradedCommOverhead(sch *machine.Schedule) int { return sch.RepairCycles }
