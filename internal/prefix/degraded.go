package prefix

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/fault"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// DPrefixDegraded runs Algorithm 2 on a D_n with permanent link faults: the
// same five steps as DPrefix, but every intra-cluster and cross-edge exchange
// goes through the fault-tolerant dcomm variants, so pairs severed by the
// plan relay their values over precomputed alive detours. The fault plan is
// armed in the engine, so the run aborts if the schedule ever touches failed
// hardware — correctness of the detours is machine-checked, not assumed.
//
// The result is correct for any f <= n-1 permanent link faults (the link
// connectivity of D_n is n, so every broken pair keeps an alive repair path);
// larger f is accepted as long as the network stays connected, and rejected
// with an error when it does not. Plans with node faults or transient
// drop/delay noise are rejected: a fail-stop node cannot hold its share of
// the input, and the deterministic detour schedule has no retransmission
// protocol for message loss — both are out of the paper's degraded-mode
// scope.
//
// With a nil (or empty) plan every detour plan is nil and the schedule is
// byte-identical to DPrefix: 2n communication steps. Each repaired pair adds
// 2·(detour length − 1) cycles per affected exchange; the measured totals
// versus Theorem 1's fault-free 2n+1 bound are tabulated in EXPERIMENTS.md.
func DPrefixDegraded[T any](n int, in []T, m monoid.Monoid[T], inclusive bool, plan *fault.Plan) ([]T, machine.Stats, error) {
	d, err := topology.NewDualCube(n)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if len(in) != d.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("prefix: input length %d != %d nodes of %s", len(in), d.Nodes(), d.Name())
	}
	if err := plan.Validate(d); err != nil {
		return nil, machine.Stats{}, err
	}
	if plan != nil {
		if len(plan.Nodes) > 0 {
			return nil, machine.Stats{}, fmt.Errorf("prefix: degraded D_prefix survives link faults only; plan fails %d node(s)", len(plan.Nodes))
		}
		if plan.DropProb > 0 || plan.DelayProb > 0 {
			return nil, machine.Stats{}, fmt.Errorf("prefix: degraded D_prefix has no retransmission protocol; plan injects transient drop/delay noise")
		}
	}

	view := fault.NewView(d, plan)
	clus := make([]*dcomm.FTPlan, d.ClusterDim())
	for i := range clus {
		if clus[i], err = dcomm.PlanClusterExchangeFT(d, view, i); err != nil {
			return nil, machine.Stats{}, err
		}
	}
	cross, err := dcomm.PlanCrossExchangeFT(d, view)
	if err != nil {
		return nil, machine.Stats{}, err
	}

	out := make([]T, len(in))
	eng, err := machine.New[T](d, machine.Config{Faults: plan.Spec()})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(degradedProgram(d, in, m, inclusive, out, clus, cross))
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// ascendStepFT is ascendStep routed through the fault-tolerant cluster
// exchange; with a nil detour plan it is the identical schedule.
func ascendStepFT[T any](c *machine.Ctx[T], m monoid.Monoid[T], d *topology.DualCube, dim int, upper bool, t, s T, p *dcomm.FTPlan) (T, T) {
	temp := dcomm.ClusterExchangeFT(c, d, dim, t, p)
	if upper {
		s = m.Combine(temp, s)
		t = m.Combine(temp, t)
	} else {
		t = m.Combine(t, temp)
	}
	c.Ops(1)
	return t, s
}

// degradedProgram is dprefixProgram with every exchange replaced by its
// fault-tolerant counterpart. The combine order and computation rounds are
// unchanged, so the algebraic behavior (and the Ops accounting) matches
// DPrefix exactly; only the communication schedule stretches under faults.
func degradedProgram[T any](d *topology.DualCube, in []T, m monoid.Monoid[T], inclusive bool, out []T, clus []*dcomm.FTPlan, cross *dcomm.FTPlan) func(c *machine.Ctx[T]) {
	mdim := d.ClusterDim()
	return func(c *machine.Ctx[T]) {
		u := c.ID()
		idx := d.DataIndex(u)
		local := d.LocalID(u)

		t := in[idx]
		s := in[idx]
		if !inclusive {
			s = m.Identity()
		}

		// Step 1: inclusive prefix of the block inside the cluster.
		for i := 0; i < mdim; i++ {
			t, s = ascendStepFT(c, m, d, i, local&(1<<i) != 0, t, s, clus[i])
		}

		// Step 2: cross-edge exchange of block totals.
		temp := dcomm.CrossExchangeFT(c, d, t, cross)

		// Step 3: diminished prefix of the received block totals.
		t2 := temp
		s2 := m.Identity()
		for i := 0; i < mdim; i++ {
			t2, s2 = ascendStepFT(c, m, d, i, local&(1<<i) != 0, t2, s2, clus[i])
		}

		// Step 4: cross-edge exchange of the prefixed totals; fold in the
		// combined earlier-block totals of this node's own class half.
		recv := dcomm.CrossExchangeFT(c, d, s2, cross)
		s = m.Combine(recv, s)
		c.Ops(1)

		// Step 5: class-1 blocks come after all class-0 blocks, so class-1
		// nodes prepend the class-0 grand total (their t').
		if d.Class(u) == 1 {
			s = m.Combine(t2, s)
			c.Ops(1)
		}

		out[idx] = s
	}
}

// DegradedCommOverhead returns the extra communication cycles the detour
// plans append to the fault-free 2n schedule: each of the five steps reuses
// its pattern's repairs, so cluster-dimension repairs are paid twice (steps 1
// and 3) and cross repairs twice (steps 2 and 4).
func DegradedCommOverhead(clus []*dcomm.FTPlan, cross *dcomm.FTPlan) int {
	extra := 0
	for _, p := range clus {
		extra += 2 * p.RepairCycles()
	}
	return extra + 2*cross.RepairCycles()
}
