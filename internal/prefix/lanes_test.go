package prefix

import (
	"fmt"
	"math/rand"
	"testing"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// runLanePrefix executes a batched prefix pass over the compiled schedule
// and returns the k result vectors.
func runLanePrefix[E any](t *testing.T, n int, m monoid.Monoid[E], inclusive bool, in [][]E) [][]E {
	t.Helper()
	d := topology.MustDualCube(n)
	sch, err := dcomm.Compiled(d, dcomm.OpPrefix)
	if err != nil {
		t.Fatal(err)
	}
	k := len(in)
	lanes := machine.NewLanes[E](d.Nodes(), k)
	out := make([][]E, k)
	for i := range out {
		out[i] = make([]E, d.Nodes())
	}
	kern := NewLaneKernel(d, m, inclusive, lanes, in, out)
	if _, err := dcomm.Execute(sch, machine.Config{}, kern); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLanePrefixMatchesUnbatched is the differential requirement: a k-lane
// batched pass must be element-identical to k separate DPrefix calls.
func TestLanePrefixMatchesUnbatched(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 4} {
		d := topology.MustDualCube(n)
		for _, k := range []int{1, 2, 5, 8} {
			for _, inclusive := range []bool{true, false} {
				in := make([][]int64, k)
				for l := range in {
					in[l] = make([]int64, d.Nodes())
					for i := range in[l] {
						in[l][i] = int64(rng.Intn(2001) - 1000)
					}
				}
				got := runLanePrefix(t, n, monoid.Sum[int64](), inclusive, in)
				for l := 0; l < k; l++ {
					want, _, err := DPrefix(n, in[l], monoid.Sum[int64](), inclusive, nil)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if got[l][i] != want[i] {
							t.Fatalf("n=%d k=%d inclusive=%v lane %d: out[%d]=%d, want %d",
								n, k, inclusive, l, i, got[l][i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestLanePrefixNonCommutative pins the per-lane combine order: under
// string concatenation any reordering or re-association with a wrong
// operand side changes the output.
func TestLanePrefixNonCommutative(t *testing.T) {
	n := 3
	d := topology.MustDualCube(n)
	k := 3
	in := make([][]string, k)
	for l := range in {
		in[l] = make([]string, d.Nodes())
		for i := range in[l] {
			in[l][i] = fmt.Sprintf("%c%d.", 'a'+l, i)
		}
	}
	got := runLanePrefix(t, n, monoid.Concat(), true, in)
	for l := 0; l < k; l++ {
		want, _, err := DPrefix(n, in[l], monoid.Concat(), true, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[l][i] != want[i] {
				t.Fatalf("lane %d: out[%d]=%q, want %q", l, i, got[l][i], want[i])
			}
		}
	}
}
