package prefix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dualcube/internal/monoid"
	"dualcube/internal/seq"
)

func TestSegMonoidAssociative(t *testing.T) {
	m := segMonoid(monoid.Concat())
	samples := []seg[string]{
		{false, "a"}, {true, "b"}, {false, "c"}, {true, ""}, {false, ""},
	}
	for _, a := range samples {
		for _, b := range samples {
			for _, c := range samples {
				l := m.Combine(m.Combine(a, b), c)
				r := m.Combine(a, m.Combine(b, c))
				if l != r {
					t.Fatalf("segmented monoid not associative on (%v,%v,%v): %v vs %v", a, b, c, l, r)
				}
			}
		}
	}
	id := m.Identity()
	for _, x := range samples {
		if m.Combine(id, x) != x || m.Combine(x, id) != x {
			t.Fatalf("segmented identity broken for %v", x)
		}
	}
}

func TestDPrefixSegmentedSum(t *testing.T) {
	n := 3
	N := 1 << (2*n - 1)
	values := make([]int, N)
	heads := make([]bool, N)
	for i := range values {
		values[i] = i + 1
		heads[i] = i%5 == 0
	}
	got, st, err := DPrefixSegmented(n, values, heads, monoid.Sum[int]())
	if err != nil {
		t.Fatal(err)
	}
	want := seq.SegmentedScanInclusive(values, heads, monoid.Sum[int]())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segmented scan wrong at %d: %d vs %d", i, got[i], want[i])
		}
	}
	// Segmentation must not change the communication cost.
	if st.Cycles != MeasuredCommSteps(n) {
		t.Errorf("segmented scan comm = %d, want %d", st.Cycles, MeasuredCommSteps(n))
	}
}

func TestDPrefixSegmentedEdgeCases(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	values := []int{3, 1, 4, 1, 5, 9, 2, 6}

	// No heads at all: equals the plain inclusive scan.
	got, _, err := DPrefixSegmented(n, values, make([]bool, N), monoid.Sum[int]())
	if err != nil {
		t.Fatal(err)
	}
	plain := seq.ScanInclusive(values, monoid.Sum[int]())
	for i := range plain {
		if got[i] != plain[i] {
			t.Fatalf("head-free segmented scan differs at %d", i)
		}
	}

	// Every position a head: output equals input.
	allHeads := make([]bool, N)
	for i := range allHeads {
		allHeads[i] = true
	}
	got, _, err = DPrefixSegmented(n, values, allHeads, monoid.Sum[int]())
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if got[i] != values[i] {
			t.Fatalf("all-heads segmented scan differs at %d", i)
		}
	}
}

func TestDPrefixSegmentedNonCommutative(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	values := make([]string, N)
	heads := make([]bool, N)
	for i := range values {
		values[i] = string(rune('a' + i))
		heads[i] = i == 3 || i == 6
	}
	got, _, err := DPrefixSegmented(n, values, heads, monoid.Concat())
	if err != nil {
		t.Fatal(err)
	}
	want := seq.SegmentedScanInclusive(values, heads, monoid.Concat())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segmented concat wrong at %d: %q vs %q", i, got[i], want[i])
		}
	}
}

func TestDPrefixSegmentedQuick(t *testing.T) {
	f := func(nSeed uint8, seed int64) bool {
		n := int(nSeed)%3 + 1
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(seed))
		values := make([]int, N)
		heads := make([]bool, N)
		for i := range values {
			values[i] = rng.Intn(100)
			heads[i] = rng.Intn(3) == 0
		}
		got, _, err := DPrefixSegmented(n, values, heads, monoid.Sum[int]())
		if err != nil {
			return false
		}
		want := seq.SegmentedScanInclusive(values, heads, monoid.Sum[int]())
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDPrefixSegmentedBadInput(t *testing.T) {
	if _, _, err := DPrefixSegmented(2, make([]int, 8), make([]bool, 7), monoid.Sum[int]()); err == nil {
		t.Error("flag/value length mismatch should fail")
	}
	if _, _, err := DPrefixSegmented(0, nil, nil, monoid.Sum[int]()); err == nil {
		t.Error("order 0 should fail")
	}
}
