package prefix

import (
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// This file expresses Algorithm 2 as a machine.DirectKernel, the form both
// execution paths share: the direct executor runs it as array kernels over
// the flat per-node state below, and the simulator engines run the very
// same kernel value through machine.KernelProgram — so DPrefix, the
// degraded variant and the recorded variant are one algorithm with three
// run modes, and the Stats/output parity between them is structural rather
// than re-implemented.
//
// Step indices map onto the compiled prefix schedule (m = ClusterDim):
// steps 0..m-1 are the in-cluster ascend of step 1, step m the cross-edge
// total exchange of step 2, steps m+1..2m the ascend of the received totals
// (step 3), step 2m+1 the cross-edge prefix exchange of step 4, and the
// final StepLocalCombine is the class-1 fold of step 5.

// prefixKernel is Algorithm 2 over one element per node. The prefix
// variable s lives directly in out[idx] (written progressively, final on
// completion); t carries the block total and, after the first cross hop,
// the received totals t'; s2 is the diminished prefix of those totals s'.
// snap is the Figure 3 phase-snapshot hook of DPrefix's tracing mode.
type prefixKernel[T any] struct {
	d         topology.Comm
	m         monoid.Monoid[T]
	mdim      int
	inclusive bool
	in        []T
	out       []T // indexed by element; doubles as the prefix variable s
	t         []T // indexed by node: block total, then received totals t'
	s2        []T // indexed by node: diminished prefix of received totals s'
	snap      func(i, idx int, s, t T)
}

func newPrefixKernel[T any](d topology.Comm, m monoid.Monoid[T], inclusive bool, in, out []T, snap func(i, idx int, s, t T)) *prefixKernel[T] {
	if snap == nil {
		snap = func(int, int, T, T) {}
	}
	n := d.Nodes()
	state := make([]T, 2*n)
	return &prefixKernel[T]{
		d: d, m: m, mdim: d.ClusterDim(), inclusive: inclusive,
		in: in, out: out,
		t:    state[:n:n],
		s2:   state[n:],
		snap: snap,
	}
}

func (pk *prefixKernel[T]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, T) {
	idx := pk.d.DataIndex(u)
	if k == 0 {
		v := pk.in[idx]
		pk.t[u] = v
		if pk.inclusive {
			pk.out[idx] = v
		} else {
			pk.out[idx] = pk.m.Identity()
		}
		pk.snap(0, idx, v, v)
	}
	switch {
	case k == pk.mdim: // step 2: exchange the block total t
		pk.snap(1, idx, pk.out[idx], pk.t[u])
		return machine.DirectExchange, pk.t[u]
	case k == 2*pk.mdim+1: // step 4: exchange the prefixed totals s'
		pk.snap(3, idx, pk.s2[u], pk.t[u])
		return machine.DirectExchange, pk.s2[u]
	default: // ascend rounds exchange the running total
		return machine.DirectExchange, pk.t[u]
	}
}

func (pk *prefixKernel[T]) Absorb(dc *machine.DirectCtx, k, u int, v T) {
	m := pk.m
	idx := pk.d.DataIndex(u)
	local := pk.d.LocalID(u)
	switch {
	case k < pk.mdim:
		// Step 1 ascend: fold the received half into t and, in the upper
		// half, into s — strictly lower-half-first for non-commutativity.
		if local&(1<<k) != 0 {
			pk.out[idx] = m.Combine(v, pk.out[idx])
			pk.t[u] = m.Combine(v, pk.t[u])
		} else {
			pk.t[u] = m.Combine(pk.t[u], v)
		}
		dc.Ops(1)
	case k == pk.mdim:
		// Step 2: the received block total becomes t', s' starts empty.
		pk.snap(2, idx, pk.out[idx], v)
		pk.t[u] = v
		pk.s2[u] = m.Identity()
	case k <= 2*pk.mdim:
		// Step 3 ascend of the received totals, diminished.
		if i := k - pk.mdim - 1; local&(1<<i) != 0 {
			pk.s2[u] = m.Combine(v, pk.s2[u])
			pk.t[u] = m.Combine(v, pk.t[u])
		} else {
			pk.t[u] = m.Combine(pk.t[u], v)
		}
		dc.Ops(1)
	default:
		// Step 4: fold the partner's s' — the combined earlier-block totals
		// of this node's own class half — into the prefix.
		pk.out[idx] = m.Combine(v, pk.out[idx])
		dc.Ops(1)
		pk.snap(4, idx, pk.out[idx], pk.t[u])
	}
}

func (pk *prefixKernel[T]) Local(dc *machine.DirectCtx, k, u int) {
	idx := pk.d.DataIndex(u)
	if pk.d.Class(u) == 1 {
		// Step 5: class-1 blocks come after all class-0 blocks, so prepend
		// the class-0 grand total (this node's t').
		pk.out[idx] = pk.m.Combine(pk.t[u], pk.out[idx])
		dc.Ops(1)
	}
	pk.snap(5, idx, pk.out[idx], pk.t[u])
}

// largeKernel is DPrefixLarge's variant: chunks of `chunk` elements per
// node. The local chunk scans live directly in the out rows (written by the
// first Produce, offset-folded in Local), the schedule walk is the same
// diminished Algorithm 2 over the chunk totals with s kept per node.
type largeKernel[T any] struct {
	d         topology.Comm
	m         monoid.Monoid[T]
	mdim      int
	chunk     int
	inclusive bool
	in        []T
	out       []T // chunk scans, then final results, row idx*chunk..(idx+1)*chunk
	t         []T // chunk total, then received totals t'
	s         []T // diminished prefix of the chunk totals
	s2        []T // diminished prefix of received totals s'
}

func newLargeKernel[T any](d topology.Comm, m monoid.Monoid[T], chunk int, inclusive bool, in, out []T) *largeKernel[T] {
	n := d.Nodes()
	return &largeKernel[T]{
		d: d, m: m, mdim: d.ClusterDim(), chunk: chunk, inclusive: inclusive,
		in: in, out: out,
		t: make([]T, n), s: make([]T, n), s2: make([]T, n),
	}
}

func (lk *largeKernel[T]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, T) {
	if k == 0 {
		idx := lk.d.DataIndex(u)
		cin := lk.in[idx*lk.chunk : (idx+1)*lk.chunk]
		scan := lk.out[idx*lk.chunk:][:len(cin)]
		acc := lk.m.Identity()
		for i, v := range cin {
			if lk.inclusive {
				acc = lk.m.Combine(acc, v)
				scan[i] = acc
			} else {
				scan[i] = acc
				acc = lk.m.Combine(acc, v)
			}
		}
		lk.t[u] = acc
		lk.s[u] = lk.m.Identity()
		dc.Ops(lk.chunk - 1)
	}
	if k == 2*lk.mdim+1 {
		return machine.DirectExchange, lk.s2[u]
	}
	return machine.DirectExchange, lk.t[u]
}

func (lk *largeKernel[T]) Absorb(dc *machine.DirectCtx, k, u int, v T) {
	m := lk.m
	local := lk.d.LocalID(u)
	switch {
	case k < lk.mdim:
		if local&(1<<k) != 0 {
			lk.s[u] = m.Combine(v, lk.s[u])
			lk.t[u] = m.Combine(v, lk.t[u])
		} else {
			lk.t[u] = m.Combine(lk.t[u], v)
		}
		dc.Ops(1)
	case k == lk.mdim:
		lk.t[u] = v
		lk.s2[u] = m.Identity()
	case k <= 2*lk.mdim:
		if i := k - lk.mdim - 1; local&(1<<i) != 0 {
			lk.s2[u] = m.Combine(v, lk.s2[u])
			lk.t[u] = m.Combine(v, lk.t[u])
		} else {
			lk.t[u] = m.Combine(lk.t[u], v)
		}
		dc.Ops(1)
	default:
		lk.s[u] = m.Combine(v, lk.s[u])
		dc.Ops(1)
	}
}

func (lk *largeKernel[T]) Local(dc *machine.DirectCtx, k, u int) {
	if lk.d.Class(u) == 1 {
		lk.s[u] = lk.m.Combine(lk.t[u], lk.s[u])
		dc.Ops(1)
	}
	// Fold the global offset into the local scan. The offset load is
	// hoisted so the loop body carries no bounds check.
	idx := lk.d.DataIndex(u)
	off := lk.s[u]
	res := lk.out[idx*lk.chunk : (idx+1)*lk.chunk]
	for i := range res {
		res[i] = lk.m.Combine(off, res[i])
	}
	dc.Ops(lk.chunk)
}
