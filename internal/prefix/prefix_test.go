package prefix

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"dualcube/internal/monoid"
	"dualcube/internal/seq"
)

func randInts(rng *rand.Rand, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(2001) - 1000
	}
	return out
}

func TestCubePrefixSumAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for q := 0; q <= 9; q++ {
		in := randInts(rng, 1<<q)
		for _, inclusive := range []bool{true, false} {
			got, st, err := CubePrefix(q, in, monoid.Sum[int](), inclusive)
			if err != nil {
				t.Fatalf("q=%d: %v", q, err)
			}
			want := seq.ScanInclusive(in, monoid.Sum[int]())
			if !inclusive {
				want = seq.ScanExclusive(in, monoid.Sum[int]())
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("q=%d inclusive=%v: out[%d]=%d, want %d", q, inclusive, i, got[i], want[i])
				}
			}
			if st.Cycles != CubeCommSteps(q) {
				t.Errorf("q=%d: comm steps %d, want %d", q, st.Cycles, q)
			}
			if st.MaxOps != q {
				t.Errorf("q=%d: comp rounds %d, want %d", q, st.MaxOps, q)
			}
		}
	}
}

func TestCubePrefixNonCommutative(t *testing.T) {
	q := 4
	in := make([]string, 1<<q)
	for i := range in {
		in[i] = string(rune('a' + i%26))
	}
	got, _, err := CubePrefix(q, in, monoid.Concat(), true)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.ScanInclusive(in, monoid.Concat())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("concat prefix wrong at %d: %q vs %q", i, got[i], want[i])
		}
	}
}

func TestCubePrefixBadInput(t *testing.T) {
	if _, _, err := CubePrefix(3, make([]int, 7), monoid.Sum[int](), true); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := CubePrefix(-1, nil, monoid.Sum[int](), true); err == nil {
		t.Error("negative dimension should fail")
	}
}

func TestDPrefixSumAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 6; n++ {
		in := randInts(rng, 1<<(2*n-1))
		for _, inclusive := range []bool{true, false} {
			got, st, err := DPrefix(n, in, monoid.Sum[int](), inclusive, nil)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			want := seq.ScanInclusive(in, monoid.Sum[int]())
			if !inclusive {
				want = seq.ScanExclusive(in, monoid.Sum[int]())
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d inclusive=%v: out[%d]=%d, want %d", n, inclusive, i, got[i], want[i])
				}
			}
			// Theorem 1: measured 2n comm steps (bound 2n+1), 2n comp rounds.
			if st.Cycles != MeasuredCommSteps(n) {
				t.Errorf("n=%d: comm steps %d, want %d", n, st.Cycles, MeasuredCommSteps(n))
			}
			if st.Cycles > PaperCommBound(n) {
				t.Errorf("n=%d: comm steps %d exceed Theorem 1 bound %d", n, st.Cycles, PaperCommBound(n))
			}
			if st.MaxOps > PaperCompBound(n) {
				t.Errorf("n=%d: comp rounds %d exceed Theorem 1 bound %d", n, st.MaxOps, PaperCompBound(n))
			}
			if st.CommCycles != st.Cycles {
				t.Errorf("n=%d: idle cycles in D_prefix: %d of %d", n, st.Cycles-st.CommCycles, st.Cycles)
			}
		}
	}
}

func TestDPrefixNonCommutativeOrder(t *testing.T) {
	// String concatenation over every node: any combine-order error
	// produces a permuted string, so this pins the exact element order.
	for n := 1; n <= 4; n++ {
		N := 1 << (2*n - 1)
		in := make([]string, N)
		for i := range in {
			in[i] = string(rune('A'+i%26)) + string(rune('a'+(i/26)%26))
		}
		got, _, err := DPrefix(n, in, monoid.Concat(), true, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := seq.ScanInclusive(in, monoid.Concat())
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: order violated at %d:\n got %q\nwant %q", n, i, got[i], want[i])
			}
		}
	}
}

func TestDPrefixMatrixMonoid(t *testing.T) {
	// Prefix products of [[1,a],[0,1]] matrices: non-commutative and
	// numerically checkable (the top-right entry accumulates the sum).
	n := 3
	N := 1 << (2*n - 1)
	in := make([]monoid.Mat2, N)
	sum := int64(0)
	for i := range in {
		in[i] = monoid.Mat2{1, int64(i + 1), 0, 1}
	}
	got, _, err := DPrefix(n, in, monoid.Mat2Mul(), true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		sum += int64(i + 1)
		want := monoid.Mat2{1, sum, 0, 1}
		if got[i] != want {
			t.Fatalf("mat2 prefix wrong at %d: %v, want %v", i, got[i], want)
		}
	}
}

func TestDPrefixMaxMinXor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 3
	N := 1 << (2*n - 1)
	ints := randInts(rng, N)
	for _, m := range []monoid.Monoid[int]{monoid.MaxInt(), monoid.MinInt()} {
		got, _, err := DPrefix(n, ints, m, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := seq.ScanInclusive(ints, m)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s prefix wrong at %d", m.Name, i)
			}
		}
	}
	words := make([]uint64, N)
	for i := range words {
		words[i] = rng.Uint64()
	}
	got, _, err := DPrefix(n, words, monoid.Xor(), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.ScanExclusive(words, monoid.Xor())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("xor diminished prefix wrong at %d", i)
		}
	}
}

func TestDPrefixQuickProperty(t *testing.T) {
	// Random sizes and random data against the golden scan.
	f := func(nSeed uint8, seed int64) bool {
		n := int(nSeed)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		in := randInts(rng, 1<<(2*n-1))
		got, _, err := DPrefix(n, in, monoid.Sum[int](), true, nil)
		if err != nil {
			return false
		}
		want := seq.ScanInclusive(in, monoid.Sum[int]())
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDPrefixBadInput(t *testing.T) {
	if _, _, err := DPrefix(2, make([]int, 5), monoid.Sum[int](), true, nil); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := DPrefix(0, nil, monoid.Sum[int](), true, nil); err == nil {
		t.Error("order 0 should fail")
	}
}

func TestDPrefixCombineCount(t *testing.T) {
	// Raw ⊕ applications per run: step 1 and step 3 apply at most 2 per
	// round per node, steps 4 and 5 one each. Validate the global count is
	// within the structural budget (and that ops accounting is plausible).
	n := 3
	N := 1 << (2*n - 1)
	var raw atomic.Int64
	m := monoid.CountedCombine(monoid.Sum[int](), &raw)
	in := make([]int, N)
	for i := range in {
		in[i] = i
	}
	_, st, err := DPrefix(n, in, m, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxRaw := int64(N * (2*2*(n-1) + 2)) // 2 per ascend round + final folds
	if raw.Load() > maxRaw {
		t.Errorf("raw combines %d exceed budget %d", raw.Load(), maxRaw)
	}
	if st.TotalOps <= 0 || st.MaxOps != 2*n {
		t.Errorf("ops accounting: %+v", st)
	}
}

func TestDPrefixTrace(t *testing.T) {
	// The Figure 3 snapshots: on an all-ones input of D_3, panel (a) is
	// ones, panel (b)'s s is the within-block ramp, panel (f) is 1..32.
	n := 3
	N := 1 << (2*n - 1)
	in := make([]int, N)
	for i := range in {
		in[i] = 1
	}
	var tr Trace[int]
	got, _, err := DPrefix(n, in, monoid.Sum[int](), true, &tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Phases) != 6 {
		t.Fatalf("trace has %d phases, want 6", len(tr.Phases))
	}
	blk := 1 << (n - 1)
	for i := 0; i < N; i++ {
		if tr.Phases[0].S[i] != 1 {
			t.Errorf("phase a at %d: %d", i, tr.Phases[0].S[i])
		}
		if want := i%blk + 1; tr.Phases[1].S[i] != want {
			t.Errorf("phase b s at %d: %d, want %d", i, tr.Phases[1].S[i], want)
		}
		if tr.Phases[1].T[i] != blk {
			t.Errorf("phase b t at %d: %d, want %d", i, tr.Phases[1].T[i], blk)
		}
		if tr.Phases[5].S[i] != i+1 {
			t.Errorf("phase f at %d: %d, want %d", i, tr.Phases[5].S[i], i+1)
		}
		if got[i] != i+1 {
			t.Errorf("result at %d: %d", i, got[i])
		}
	}
}

func TestEmulatedCubePrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 1; n <= 4; n++ {
		in := randInts(rng, 1<<(2*n-1))
		got, st, err := EmulatedCubePrefix(n, in, monoid.Sum[int](), true)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := seq.ScanInclusive(in, monoid.Sum[int]())
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: emulated prefix wrong at %d", n, i)
			}
		}
		if st.Cycles != EmulatedCommSteps(n) {
			t.Errorf("n=%d: emulated comm %d, want %d", n, st.Cycles, EmulatedCommSteps(n))
		}
		// The ablation: the cluster technique must beat naive emulation for
		// every n >= 2.
		if n >= 2 && st.Cycles <= MeasuredCommSteps(n) {
			t.Errorf("n=%d: emulation (%d) unexpectedly as cheap as D_prefix (%d)", n, st.Cycles, MeasuredCommSteps(n))
		}
	}
	if _, _, err := EmulatedCubePrefix(2, make([]int, 3), monoid.Sum[int](), true); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := EmulatedCubePrefix(0, nil, monoid.Sum[int](), true); err == nil {
		t.Error("order 0 should fail")
	}
}

func TestDPrefixLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ n, k int }{{1, 1}, {1, 4}, {2, 3}, {3, 4}, {3, 16}, {4, 5}} {
		N := 1 << (2*tc.n - 1)
		in := randInts(rng, tc.k*N)
		for _, inclusive := range []bool{true, false} {
			got, st, err := DPrefixLarge(tc.n, tc.k, in, monoid.Sum[int](), inclusive)
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
			}
			want := seq.ScanInclusive(in, monoid.Sum[int]())
			if !inclusive {
				want = seq.ScanExclusive(in, monoid.Sum[int]())
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d inclusive=%v: wrong at %d: %d vs %d", tc.n, tc.k, inclusive, i, got[i], want[i])
				}
			}
			// Communication independent of k: the future-work claim.
			if st.Cycles != MeasuredCommSteps(tc.n) {
				t.Errorf("n=%d k=%d: comm %d, want %d", tc.n, tc.k, st.Cycles, MeasuredCommSteps(tc.n))
			}
		}
	}
}

func TestDPrefixLargeNonCommutative(t *testing.T) {
	n, k := 2, 3
	N := 1 << (2*n - 1)
	in := make([]string, k*N)
	for i := range in {
		in[i] = string(rune('a' + i%26))
	}
	got, _, err := DPrefixLarge(n, k, in, monoid.Concat(), true)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.ScanInclusive(in, monoid.Concat())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("large concat wrong at %d: %q vs %q", i, got[i], want[i])
		}
	}
}

func TestDPrefixLargeBadInput(t *testing.T) {
	if _, _, err := DPrefixLarge(2, 0, nil, monoid.Sum[int](), true); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := DPrefixLarge(2, 2, make([]int, 15), monoid.Sum[int](), true); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := DPrefixLarge(0, 1, nil, monoid.Sum[int](), true); err == nil {
		t.Error("order 0 should fail")
	}
}

func TestDPrefixRecordedMatchesDPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for n := 1; n <= 4; n++ {
		in := randInts(rng, 1<<(2*n-1))
		plain, stP, err := DPrefix(n, in, monoid.Sum[int](), true, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec, stR, recording, err := DPrefixRecorded(n, in, monoid.Sum[int](), true)
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if plain[i] != rec[i] {
				t.Fatalf("n=%d: recorded output differs at %d", n, i)
			}
		}
		if stP != stR {
			t.Errorf("n=%d: stats differ: %+v vs %+v", n, stP, stR)
		}
		if int64(len(recording.Events)) != stR.Messages {
			t.Errorf("n=%d: %d events for %d messages", n, len(recording.Events), stR.Messages)
		}
		// D_prefix traffic is perfectly balanced: every node sends exactly
		// one message per comm cycle, so each directed link carries at most
		// 2 messages (the two cross rounds / the two cluster rounds per dim).
		load, _ := recording.MaxLinkLoad()
		if load != 2 {
			t.Errorf("n=%d: max link load %d, want 2", n, load)
		}
	}
	if _, _, _, err := DPrefixRecorded(0, nil, monoid.Sum[int](), true); err == nil {
		t.Error("order 0 should fail")
	}
	if _, _, _, err := DPrefixRecorded(2, make([]int, 3), monoid.Sum[int](), true); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestDPrefixD7Smoke(t *testing.T) {
	// 8192 goroutine-nodes end to end.
	if testing.Short() {
		t.Skip("large machine smoke skipped in -short mode")
	}
	n := 7
	N := 1 << (2*n - 1)
	in := make([]int, N)
	for i := range in {
		in[i] = 1
	}
	got, st, err := DPrefix(n, in, monoid.Sum[int](), true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i+1 {
			t.Fatalf("wrong at %d", i)
		}
	}
	if st.Cycles != 2*n || int(st.Messages) != 2*n*N {
		t.Errorf("stats: %+v", st)
	}
}
