package prefix

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// DPrefixLarge generalizes D_prefix to input sequences larger than the
// network — the first item of the paper's future-work list. The input of
// length k * 2^(2n-1) is split into contiguous chunks of k elements, chunk
// idx on node NodeAtDataIndex(idx). Each node scans its chunk locally
// (k-1 combines), the chunk totals flow through Algorithm 2 as a diminished
// prefix (2n communication steps), and the received offset is folded into
// each local result (k more combines). Communication cost is independent
// of k; only the payload work grows.
func DPrefixLarge[T any](n, k int, in []T, m monoid.Monoid[T], inclusive bool) ([]T, machine.Stats, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if k < 1 {
		return nil, machine.Stats{}, fmt.Errorf("prefix: chunk size %d < 1", k)
	}
	if len(in) != k*d.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("prefix: input length %d != k*N = %d", len(in), k*d.Nodes())
	}
	mdim := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpPrefix)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	out := make([]T, len(in))

	eng, err := machine.New[T](d, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[T]) {
		u := c.ID()
		idx := d.DataIndex(u)
		local := d.LocalID(u)
		chunk := in[idx*k : (idx+1)*k]

		// Local scan of the chunk. localScan[i] is inclusive or diminished
		// according to the requested flavor; t is always the chunk total.
		localScan := make([]T, k)
		acc := m.Identity()
		for i, v := range chunk {
			if inclusive {
				acc = m.Combine(acc, v)
				localScan[i] = acc
			} else {
				localScan[i] = acc
				acc = m.Combine(acc, v)
			}
		}
		t := acc
		c.Ops(k - 1)

		// Algorithm 2 over the chunk totals, diminished: s becomes the
		// combination of all chunks strictly before this node's chunk,
		// walked over the same compiled schedule as DPrefix.
		x := machine.Interpret(c, sch)
		s := m.Identity()
		for i := 0; i < mdim; i++ {
			t, s = ascendExec(&x, m, local&(1<<i) != 0, t, s)
		}
		temp := x.Exchange(t)
		t2 := temp
		s2 := m.Identity()
		for i := 0; i < mdim; i++ {
			t2, s2 = ascendExec(&x, m, local&(1<<i) != 0, t2, s2)
		}
		recv := x.Exchange(s2)
		s = m.Combine(recv, s)
		c.Ops(1)
		if d.Class(u) == 1 {
			s = m.Combine(t2, s)
			x.LocalOps(1)
		} else {
			x.LocalOps(0)
		}

		// Fold the global offset into the local scan.
		res := out[idx*k : (idx+1)*k]
		for i := range localScan {
			res[i] = m.Combine(s, localScan[i])
		}
		c.Ops(k)
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}
