package prefix

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// DPrefixLarge generalizes D_prefix to input sequences larger than the
// network — the first item of the paper's future-work list. The input of
// length k * 2^(2n-1) is split into contiguous chunks of k elements, chunk
// idx on node NodeAtDataIndex(idx). Each node scans its chunk locally
// (k-1 combines), the chunk totals flow through Algorithm 2 as a diminished
// prefix (2n communication steps), and the received offset is folded into
// each local result (k more combines). Communication cost is independent
// of k; only the payload work grows.
func DPrefixLarge[T any](n, k int, in []T, m monoid.Monoid[T], inclusive bool) ([]T, machine.Stats, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if k < 1 {
		return nil, machine.Stats{}, fmt.Errorf("prefix: chunk size %d < 1", k)
	}
	if len(in) != k*d.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("prefix: input length %d != k*N = %d", len(in), k*d.Nodes())
	}
	sch, err := dcomm.Compiled(d, dcomm.OpPrefix)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	out := make([]T, len(in))
	st, err := dcomm.Execute(sch, machine.Config{}, newLargeKernel(d, m, k, inclusive, in, out))
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}
