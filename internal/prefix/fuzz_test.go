package prefix

import (
	"testing"

	"dualcube/internal/monoid"
	"dualcube/internal/seq"
)

// FuzzDPrefixD3 fuzzes Algorithm 2 on D_3 against the sequential scan,
// with both signed values (sum) and the non-commutative concat monoid
// driven from the same bytes.
func FuzzDPrefixD3(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef"), true)
	f.Add(make([]byte, 32), false)
	f.Fuzz(func(t *testing.T, data []byte, inclusive bool) {
		const n = 3
		N := 1 << (2*n - 1)
		ints := make([]int, N)
		strs := make([]string, N)
		for i := range ints {
			if i < len(data) {
				ints[i] = int(int8(data[i])) // signed: exercises negatives
				strs[i] = string(rune('a' + int(data[i])%26))
			}
		}
		got, st, err := DPrefix(n, ints, monoid.Sum[int](), inclusive, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := seq.ScanInclusive(ints, monoid.Sum[int]())
		if !inclusive {
			want = seq.ScanExclusive(ints, monoid.Sum[int]())
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sum prefix wrong at %d", i)
			}
		}
		if st.Cycles != MeasuredCommSteps(n) {
			t.Fatalf("comm %d", st.Cycles)
		}
		gs, _, err := DPrefix(n, strs, monoid.Concat(), inclusive, nil)
		if err != nil {
			t.Fatal(err)
		}
		ws := seq.ScanInclusive(strs, monoid.Concat())
		if !inclusive {
			ws = seq.ScanExclusive(strs, monoid.Concat())
		}
		for i := range ws {
			if gs[i] != ws[i] {
				t.Fatalf("concat prefix wrong at %d: %q vs %q", i, gs[i], ws[i])
			}
		}
	})
}
