package prefix

import (
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// This file is the batched counterpart of kernel.go: Algorithm 2 widened to
// k independent lanes per node, the kernel shape the serving front-end's
// request coalescing runs. Lane l computes exactly the prefix DPrefix would
// compute for in[l] — the combine order per lane is identical statement for
// statement with prefixKernel, so a batched pass is byte-identical to k
// unbatched passes (the lanes differential tests enforce it) — but the
// schedule walk, the partner-table lookups and the per-step protocol
// bookkeeping are paid once for all k lanes, which is where the batching
// throughput win comes from.

// lanePrefixKernel is prefixKernel over k-wide rows. The per-node state
// arrays s, t and s2 hold k lanes contiguously (node u's lanes at u*k..);
// outgoing payloads are staged in the machine.Lanes plane per the parity
// discipline documented there. Unlike the single-lane kernel, whose prefix
// variable lives directly in out, the lane kernel accumulates the prefix in
// the flat node-major s and scatters it to the per-lane out vectors once in
// Local — keeping the Absorb inner loops on flat k-wide rows the compiler
// can bounds-check-eliminate (the escgate budget pins them at zero).
type lanePrefixKernel[E any] struct {
	d         *topology.DualCube
	m         monoid.Monoid[E]
	mdim      int
	k         int
	inclusive bool
	lanes     *machine.Lanes[E]
	in        [][]E // k input vectors, element order
	out       [][]E // k result vectors, element order
	s         []E   // node-major k-wide: the running prefix variable s
	t         []E   // node-major k-wide: block total, then received totals t'
	s2        []E   // node-major k-wide: diminished prefix of received totals s'
}

// NewLaneKernel builds the batched prefix kernel: lane l computes the
// inclusive (or diminished) prefix of in[l] into out[l], each of which must
// hold one element per node of d. lanes must be at least len(in) wide.
func NewLaneKernel[E any](d *topology.DualCube, m monoid.Monoid[E], inclusive bool, lanes *machine.Lanes[E], in, out [][]E) machine.DirectKernel[[]E] {
	n := d.Nodes()
	k := len(in)
	state := make([]E, 3*n*k)
	return &lanePrefixKernel[E]{
		d: d, m: m, mdim: d.ClusterDim(), k: k, inclusive: inclusive,
		lanes: lanes, in: in, out: out,
		s:  state[: n*k : n*k],
		t:  state[n*k : 2*n*k : 2*n*k],
		s2: state[2*n*k:],
	}
}

func (pk *lanePrefixKernel[E]) Produce(dc *machine.DirectCtx, step, u int) (machine.DirectRole, []E) {
	k := pk.k
	idx := pk.d.DataIndex(u)
	t := pk.t[u*k:][:k]
	if step == 0 {
		s := pk.s[u*k:][:k]
		for l := 0; l < k; l++ {
			v := pk.in[l][idx]
			t[l] = v
			if pk.inclusive {
				s[l] = v
			} else {
				s[l] = pk.m.Identity()
			}
		}
	}
	row := pk.lanes.Row(step, u)[:k]
	if step == 2*pk.mdim+1 { // step 4: exchange the prefixed totals s'
		copy(row, pk.s2[u*k:(u+1)*k])
	} else { // ascend rounds and the step-2 cross hop exchange the totals
		copy(row, t)
	}
	return machine.DirectExchange, row
}

func (pk *lanePrefixKernel[E]) Absorb(dc *machine.DirectCtx, step, u int, v []E) {
	m := pk.m
	k := pk.k
	local := pk.d.LocalID(u)
	t := pk.t[u*k:][:k]
	v = v[:k]
	switch {
	case step < pk.mdim:
		// Step 1 ascend: fold the received half into t and, in the upper
		// half, into s — strictly lower-half-first for non-commutativity.
		if local&(1<<step) != 0 {
			s := pk.s[u*k:][:k]
			for l := 0; l < k; l++ {
				s[l] = m.Combine(v[l], s[l])
				t[l] = m.Combine(v[l], t[l])
			}
		} else {
			for l := 0; l < k; l++ {
				t[l] = m.Combine(t[l], v[l])
			}
		}
		dc.Ops(1)
	case step == pk.mdim:
		// Step 2: the received block total becomes t', s' starts empty.
		s2 := pk.s2[u*k:][:k]
		for l := 0; l < k; l++ {
			t[l] = v[l]
			s2[l] = m.Identity()
		}
	case step <= 2*pk.mdim:
		// Step 3 ascend of the received totals, diminished.
		if i := step - pk.mdim - 1; local&(1<<i) != 0 {
			s2 := pk.s2[u*k:][:k]
			for l := 0; l < k; l++ {
				s2[l] = m.Combine(v[l], s2[l])
				t[l] = m.Combine(v[l], t[l])
			}
		} else {
			for l := 0; l < k; l++ {
				t[l] = m.Combine(t[l], v[l])
			}
		}
		dc.Ops(1)
	default:
		// Step 4: fold the partner's s' into the prefix.
		s := pk.s[u*k:][:k]
		for l := 0; l < k; l++ {
			s[l] = m.Combine(v[l], s[l])
		}
		dc.Ops(1)
	}
}

func (pk *lanePrefixKernel[E]) Local(dc *machine.DirectCtx, step, u int) {
	k := pk.k
	idx := pk.d.DataIndex(u)
	s := pk.s[u*k:][:k]
	if pk.d.Class(u) == 1 {
		// Step 5: class-1 blocks come after all class-0 blocks, so prepend
		// the class-0 grand total (this node's t').
		t := pk.t[u*k:][:k]
		for l := 0; l < k; l++ {
			s[l] = pk.m.Combine(t[l], s[l])
		}
		dc.Ops(1)
	}
	// Scatter the finished prefixes to the per-lane result vectors — the
	// lane widening of the single-lane kernel's out-resident prefix.
	for l := 0; l < k; l++ {
		pk.out[l][idx] = s[l]
	}
}
