package monoid

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

// checkMonoidLaws verifies identity and associativity on a sample of
// triples.
func checkMonoidLaws[T comparable](t *testing.T, m Monoid[T], samples []T) {
	t.Helper()
	id := m.Identity()
	for _, x := range samples {
		if m.Combine(id, x) != x {
			t.Errorf("%s: e⊕x != x for x=%v", m.Name, x)
		}
		if m.Combine(x, id) != x {
			t.Errorf("%s: x⊕e != x for x=%v", m.Name, x)
		}
	}
	for _, a := range samples {
		for _, b := range samples {
			for _, c := range samples {
				l := m.Combine(m.Combine(a, b), c)
				r := m.Combine(a, m.Combine(b, c))
				if l != r {
					t.Errorf("%s: associativity fails on (%v,%v,%v)", m.Name, a, b, c)
				}
			}
		}
	}
}

func TestSumLaws(t *testing.T) {
	checkMonoidLaws(t, Sum[int](), []int{-3, 0, 1, 7, 1000})
	checkMonoidLaws(t, Sum[float64](), []float64{-1.5, 0, 2, 8})
}

func TestProdLaws(t *testing.T) {
	checkMonoidLaws(t, Prod[int](), []int{-2, 0, 1, 3})
}

func TestMaxMinLaws(t *testing.T) {
	checkMonoidLaws(t, MaxInt(), []int{-50, 0, 50, 1 << 40})
	checkMonoidLaws(t, MinInt(), []int{-50, 0, 50, 1 << 40})
	if MaxInt().Combine(MaxInt().Identity(), 5) != 5 {
		t.Error("max identity broken")
	}
	if MinInt().Combine(7, MinInt().Identity()) != 7 {
		t.Error("min identity broken")
	}
}

func TestXorLaws(t *testing.T) {
	checkMonoidLaws(t, Xor(), []uint64{0, 1, 0xdeadbeef, 1 << 63})
}

func TestConcatLaws(t *testing.T) {
	checkMonoidLaws(t, Concat(), []string{"", "a", "bc", "xyz"})
	// Non-commutativity sanity: the tests rely on it.
	c := Concat()
	if c.Combine("a", "b") == c.Combine("b", "a") {
		t.Error("concat should be non-commutative on distinct operands")
	}
}

func TestBoolOrLaws(t *testing.T) {
	checkMonoidLaws(t, BoolOr(), []bool{false, true})
}

func TestMat2Laws(t *testing.T) {
	samples := []Mat2{
		Mat2Identity(),
		{1, 1, 0, 1},
		{2, 0, 0, 3},
		{0, 1, 1, 0},
		{1, 2, 3, 4},
	}
	checkMonoidLaws(t, Mat2Mul(), samples)
	m := Mat2Mul()
	a, b := Mat2{1, 1, 0, 1}, Mat2{1, 0, 1, 1}
	if m.Combine(a, b) == m.Combine(b, a) {
		t.Error("mat2 should be non-commutative on these operands")
	}
}

func TestMat2MulQuick(t *testing.T) {
	// (a*b)*c == a*(b*c) over random small matrices.
	f := func(a, b, c [4]int8) bool {
		ma := Mat2{int64(a[0]), int64(a[1]), int64(a[2]), int64(a[3])}
		mb := Mat2{int64(b[0]), int64(b[1]), int64(b[2]), int64(b[3])}
		mc := Mat2{int64(c[0]), int64(c[1]), int64(c[2]), int64(c[3])}
		return ma.Mul(mb).Mul(mc) == ma.Mul(mb.Mul(mc))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountedCombine(t *testing.T) {
	var n atomic.Int64
	m := CountedCombine(Sum[int](), &n)
	if got := m.Combine(2, m.Combine(3, 4)); got != 9 {
		t.Errorf("counted combine changed semantics: %d", got)
	}
	if n.Load() != 2 {
		t.Errorf("counter = %d, want 2", n.Load())
	}
	if m.Name != "sum+counted" {
		t.Errorf("name = %q", m.Name)
	}
}
