// Package monoid defines the associative-operator abstraction that the
// paper's parallel prefix computation is generic over, together with the
// standard instances used by the examples, tests and benchmarks.
//
// The paper only requires an associative binary operation ⊕; the prefix
// algorithms additionally need an identity element to represent empty
// (diminished) prefixes, hence a monoid. Commutativity is NOT assumed:
// every implementation in this repository combines operands strictly in
// element order, and the test suite checks this with string concatenation
// and 2x2 matrix multiplication.
package monoid

import "sync/atomic"

// Monoid is an associative binary operation with identity. Combine must be
// associative; Identity must return a fresh two-sided identity element.
// Combine must not mutate its operands.
type Monoid[T any] struct {
	// Name identifies the operator in reports and benchmarks.
	Name string
	// Identity returns the identity element e with e⊕x = x⊕e = x.
	Identity func() T
	// Combine returns a⊕b.
	Combine func(a, b T) T
}

// Number is the constraint for the arithmetic monoids below.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Sum returns the addition monoid.
func Sum[T Number]() Monoid[T] {
	return Monoid[T]{
		Name:     "sum",
		Identity: func() T { var z T; return z },
		Combine:  func(a, b T) T { return a + b },
	}
}

// Prod returns the multiplication monoid.
func Prod[T Number]() Monoid[T] {
	return Monoid[T]{
		Name:     "prod",
		Identity: func() T { return 1 },
		Combine:  func(a, b T) T { return a * b },
	}
}

// MaxInt returns the maximum monoid over int with identity math.MinInt
// (safe because Combine never overflows).
func MaxInt() Monoid[int] {
	const minInt = -1 << 63
	return Monoid[int]{
		Name:     "max",
		Identity: func() int { return minInt },
		Combine: func(a, b int) int {
			if a >= b {
				return a
			}
			return b
		},
	}
}

// MinInt returns the minimum monoid over int.
func MinInt() Monoid[int] {
	const maxInt = 1<<63 - 1
	return Monoid[int]{
		Name:     "min",
		Identity: func() int { return maxInt },
		Combine: func(a, b int) int {
			if a <= b {
				return a
			}
			return b
		},
	}
}

// Xor returns the bitwise exclusive-or monoid (its own inverse: handy for
// fault-injection tests).
func Xor() Monoid[uint64] {
	return Monoid[uint64]{
		Name:     "xor",
		Identity: func() uint64 { return 0 },
		Combine:  func(a, b uint64) uint64 { return a ^ b },
	}
}

// Concat returns string concatenation: the canonical non-commutative
// monoid. Prefix results reveal any combine-order mistake immediately.
func Concat() Monoid[string] {
	return Monoid[string]{
		Name:     "concat",
		Identity: func() string { return "" },
		Combine:  func(a, b string) string { return a + b },
	}
}

// Mat2 is a 2x2 integer matrix in row-major order.
type Mat2 [4]int64

// Mat2Identity is the 2x2 identity matrix.
func Mat2Identity() Mat2 { return Mat2{1, 0, 0, 1} }

// Mul returns the matrix product a*b.
func (a Mat2) Mul(b Mat2) Mat2 {
	return Mat2{
		a[0]*b[0] + a[1]*b[2], a[0]*b[1] + a[1]*b[3],
		a[2]*b[0] + a[3]*b[2], a[2]*b[1] + a[3]*b[3],
	}
}

// Mat2Mul returns 2x2 matrix multiplication: associative, non-commutative.
// (Prefix products of [[1,1],[0,1]]-style matrices compute linear
// recurrences, a classic parallel-prefix application.)
func Mat2Mul() Monoid[Mat2] {
	return Monoid[Mat2]{
		Name:     "mat2",
		Identity: Mat2Identity,
		Combine:  func(a, b Mat2) Mat2 { return a.Mul(b) },
	}
}

// BoolOr returns logical disjunction.
func BoolOr() Monoid[bool] {
	return Monoid[bool]{
		Name:     "or",
		Identity: func() bool { return false },
		Combine:  func(a, b bool) bool { return a || b },
	}
}

// CountedCombine wraps m so every Combine application atomically increments
// counter (Combine may run concurrently on many simulated nodes). Tests use
// it to validate the paper's computation-step accounting against raw
// operator applications.
func CountedCombine[T any](m Monoid[T], counter *atomic.Int64) Monoid[T] {
	inner := m.Combine
	m.Combine = func(a, b T) T {
		counter.Add(1)
		return inner(a, b)
	}
	m.Name = m.Name + "+counted"
	return m
}
