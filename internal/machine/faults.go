package machine

import (
	"fmt"
	"sync/atomic"
)

// FaultSpec is the engine-facing description of the failures injected into a
// run, in topology-neutral terms: the engine compiles it into its internal
// per-directed-link mask when a run starts with the spec armed (via
// Config.Faults or SetDefaultFaults). User-level fault plans live in
// internal/fault, which produces FaultSpec values; the machine package
// deliberately knows nothing about seeds or probabilities — only about which
// links are dead and which messages the wire loses or holds back.
//
// A FaultSpec must not be mutated after it has been armed. Specs are compared
// by pointer identity when the engine decides whether its compiled mask is
// still valid, so reuse the same *FaultSpec across runs to amortize the
// compile.
type FaultSpec struct {
	// Links lists permanently failed undirected links {U, V}: both directed
	// channels are down for the whole run.
	Links [][2]int
	// Nodes lists permanently failed nodes (fail-stop from the network's
	// point of view): every link incident to a listed node is down in both
	// directions. The node's program still executes — it is partitioned, not
	// halted — so SPMD lockstep is preserved.
	Nodes []int
	// Drop, when non-nil, reports whether the message sent from src to dst
	// during clock cycle c is lost in flight (a transient fault). The sender
	// spends its port and the message counts as sent, but it is never
	// delivered. Must be a pure function of its arguments so runs are
	// reproducible under any scheduler.
	Drop func(src, dst, cycle int) bool
	// Delay, when non-nil, returns the extra cycles of latency the message
	// sent from src to dst during cycle c suffers (0 = on time). Links stay
	// FIFO: a delayed message also holds back the messages queued behind it.
	// Must be pure, like Drop.
	Delay func(src, dst, cycle int) int
}

// FaultStats is the per-run fault breakdown reported in Stats.Faults. All
// counts are exactly reproducible: for a fixed program, topology and armed
// FaultSpec they do not depend on the scheduler or worker count.
type FaultStats struct {
	// DownLinks is the number of directed links masked out by the armed
	// spec (an undirected failure contributes 2).
	DownLinks int
	// DownNodes is the number of failed nodes of the armed spec.
	DownNodes int
	// RefusedSends counts send attempts on permanently failed links: the
	// failures TrySend reported (or that aborted the run, for non-Try sends).
	RefusedSends int64
	// DroppedMessages counts transient in-flight losses (FaultSpec.Drop).
	DroppedMessages int64
	// DelayedMessages counts messages that FaultSpec.Delay held back by at
	// least one cycle.
	DelayedMessages int64
}

// add accumulates b into a for Stats.Add: event counts sum across phases;
// the static plan figures (DownLinks, DownNodes) carry through unchanged,
// preferring a's non-zero values — composite algorithms run their phases on
// the same machine under the same armed plan.
func (a FaultStats) add(b FaultStats) FaultStats {
	out := FaultStats{
		DownLinks:       a.DownLinks,
		DownNodes:       a.DownNodes,
		RefusedSends:    a.RefusedSends + b.RefusedSends,
		DroppedMessages: a.DroppedMessages + b.DroppedMessages,
		DelayedMessages: a.DelayedMessages + b.DelayedMessages,
	}
	if out.DownLinks == 0 {
		out.DownLinks = b.DownLinks
	}
	if out.DownNodes == 0 {
		out.DownNodes = b.DownNodes
	}
	return out
}

// defaultFaults is the package-level armed spec used by engines whose Config
// leaves Faults nil; see SetDefaultFaults.
var defaultFaults atomic.Pointer[FaultSpec]

// SetDefaultFaults arms spec for every subsequent run whose Config.Faults is
// nil, across all engines (the public dualcube facade exposes this as
// SetSimFaultPlan). nil disarms. Config.Faults always wins over this default.
func SetDefaultFaults(spec *FaultSpec) { defaultFaults.Store(spec) }

// armedFaults is a FaultSpec compiled against one engine's CSR link table:
// the per-directed-edge-slot down mask the send path consults, plus the
// lazily allocated per-buffer-slot visibility stamps used only when the spec
// can delay messages. It is rebuilt only when the armed *FaultSpec changes
// (pointer identity), so repeated runs under one plan pay the compile once.
type armedFaults struct {
	spec      *FaultSpec
	down      []bool   // per directed edge slot: permanently failed
	stamps    []uint32 // per ring buffer slot: cycle after which the message is visible; nil when spec.Delay == nil
	downLinks int
	downNodes int
}

// armFaults resolves and, if needed, compiles the fault spec for the coming
// run. With no spec armed it clears s.fx, keeping the hot path fault-free.
func (s *engineState[T]) armFaults() error {
	spec := s.cfg.Faults
	if spec == nil {
		spec = defaultFaults.Load()
	}
	if spec == nil {
		s.fx = nil
		return nil
	}
	if s.fx != nil && s.fx.spec == spec {
		return nil
	}
	fx := &armedFaults{spec: spec, down: make([]bool, len(s.nbrs))}
	markDown := func(u, v int) error {
		i := s.idxOf(u, v)
		if i < 0 {
			return fmt.Errorf("machine: fault plan fails link %d-%d, which is not a link", u, v)
		}
		sl := int(s.offs[u]) + i
		if !fx.down[sl] {
			fx.down[sl] = true
			fx.downLinks++
		}
		return nil
	}
	for _, l := range spec.Links {
		if err := markDown(l[0], l[1]); err != nil {
			return err
		}
		if err := markDown(l[1], l[0]); err != nil {
			return err
		}
	}
	for _, u := range spec.Nodes {
		if u < 0 || u >= s.n {
			return fmt.Errorf("machine: fault plan fails node %d, outside 0..%d", u, s.n-1)
		}
		fx.downNodes++
		for sl := s.offs[u]; sl < s.offs[u+1]; sl++ {
			v := int(s.nbrs[sl])
			if !fx.down[sl] {
				fx.down[sl] = true
				fx.downLinks++
			}
			if err := markDown(v, u); err != nil {
				return err
			}
		}
	}
	if spec.Delay != nil {
		fx.stamps = make([]uint32, len(s.buf))
	}
	s.fx = fx
	return nil
}
