package machine

import (
	"dualcube/internal/topology"
)

// This file is the compiled-schedule IR of the cluster technique and its
// interpreter. The paper's Section 3 skeleton — work inside clusters (n-1
// steps), hop the cross-edges (1 step), work inside the opposite-class
// clusters (n-1 steps), hop back (1 step) — recurs near-verbatim in prefix
// computation and in every collective. Instead of each algorithm re-deriving
// partners and fault detours inline, the skeleton is compiled once per
// (order, operation) into a Schedule: a flat list of steps, each naming an
// exchange pattern (a cluster dimension or the cross-edge matching) plus
// optional fault annotations. Node programs walk the schedule through an
// Exec cursor, which resolves partners, executes the communication cycle,
// and runs the detour repairs of a fault-rewritten schedule — one
// interpreter for the fault-free and the degraded case alike.

// StepKind classifies one step of a compiled schedule.
type StepKind uint8

const (
	// StepClusterDim is a perfect-matching exchange along one cluster
	// dimension: every node pairs with ClusterNeighbor(u, Dim). One cycle,
	// plus repair relays when the step carries fault annotations.
	StepClusterDim StepKind = iota
	// StepCrossHop is the cross-edge matching: every node pairs with
	// CrossNeighbor(u). One cycle, plus repairs.
	StepCrossHop
	// StepRecDim is a recursive-dimension matching (D_sort, Algorithm 3):
	// every node pairs with the node whose recursive ID differs in bit Dim,
	// for Dim >= 1 (recursive dimension 0 is the cross matching and compiles
	// to StepCrossHop). Half the pairs are physically adjacent and the other
	// half relay through two cross-edges, so the parallel exchange takes
	// three cycles and 2N messages — Section 6's three-time-unit
	// compare-and-exchange. Fault annotations are not supported: the relay
	// choreography already uses every cross-edge, so there is no alive
	// matching left to detour over, and dcomm.RewriteFT rejects schedules
	// containing this kind.
	StepRecDim
	// StepBitDim is a hypercube dimension matching: every node pairs with
	// u^(1<<Dim) — the compare-exchange round of the bitonic baseline on
	// Q_q. One cycle; fault annotations are not supported.
	StepBitDim
	// StepLocalCombine is a computation-only round: no clock cycle, only
	// Ops accounting (the amount is program-dependent — e.g. the class-1
	// fold of D_prefix's step 5 is one round on half the nodes).
	StepLocalCombine
)

// String returns a short step-kind label for diagnostics.
func (k StepKind) String() string {
	switch k {
	case StepClusterDim:
		return "clusterDim"
	case StepCrossHop:
		return "crossHop"
	case StepRecDim:
		return "recDim"
	case StepBitDim:
		return "bitDim"
	default:
		return "localCombine"
	}
}

// Detour is one broken pair's repair relay: the alive path joining the two
// endpoints, forward and (precomputed, so node programs stay alloc-free)
// backward. The machine is deliberately ignorant of how the path was chosen;
// the fault view lives a layer above (internal/dcomm rewrites schedules from
// internal/fault views), keeping the interpreter free of the fault package.
type Detour struct {
	Path []int // Path[0] and Path[len-1] are the severed pair's endpoints
	Back []int // Path reversed
}

// Step is one step of a compiled schedule. Fault-free schedules leave
// Broken and Detours nil; a fault rewrite fills them in for the exchange
// patterns severed by the fault view, and steps sharing a pattern share the
// annotation slices.
type Step struct {
	Kind StepKind
	// Dim is the cluster dimension of a StepClusterDim (0 <= Dim < n-1).
	Dim int
	// Pattern identifies the exchange pattern: Dim for a cluster step,
	// ClusterDim(n) for the cross matching. Steps with equal Pattern use the
	// same matching and therefore the same fault annotations; consumers that
	// report per-pattern data (detour counts, repair paths) deduplicate on it.
	Pattern int
	// Broken marks, per node, a pair severed by the armed fault view: both
	// endpoints idle through the matched cycle and are served by a Detours
	// relay afterwards. nil means the step is fault-free.
	Broken []bool
	// Detours are the repair relays appended after the matched cycle, in
	// canonical (normalized endpoint pair) order so every node runs the
	// identical serial repair schedule.
	Detours []Detour

	// partners[u] is u's partner in this step's matching and links[u] that
	// partner's position in u's ascending neighbor row — precomputed by
	// Schedule.Finalize and shared across steps with equal Pattern, so the
	// interpreter resolves both by table lookup instead of per-cycle
	// arithmetic and binary search. nil on a schedule that was never
	// finalized; Exec falls back to computing partners per step.
	partners []int32
	links    []int32
}

// Partners exposes the finalized partner table (partners[u] = u's partner in
// this step's matching), or nil if the schedule was not finalized. The slice
// is the step's own table, not a copy — callers such as the static schedule
// verifier must treat it as read-only.
func (s *Step) Partners() []int32 { return s.partners }

// LinkIndexes exposes the finalized link table (links[u] = the partner's
// position in u's ascending neighbor row), or nil if the schedule was not
// finalized. Read-only, like Partners.
func (s *Step) LinkIndexes() []int32 { return s.links }

// Schedule is the compiled communication skeleton of one operation, built
// once and cached per (order, operation) by internal/dcomm. A Schedule is
// immutable after construction and shared by every run.
type Schedule struct {
	Name string
	// D is the communication topology the schedule is compiled for — any
	// Comm family (dual-cube, odd-dimensional hypercube, Z-cube). Cluster,
	// cross and recursive-dimension steps require it; nil for schedules
	// bound to a plain network through Topo (the bitonic baseline, which
	// needs only bit-dimension matchings).
	D topology.Comm
	// Topo binds a schedule compiled for a non-Comm network. nil for
	// Comm-derived schedules, which set D.
	Topo  topology.Topology
	Steps []Step
	// RepairCycles is the extra clock cycles the fault annotations append
	// over the fault-free schedule: the sum over steps of 2·(path length − 1)
	// per detour. Zero for a fault-free schedule.
	RepairCycles int
}

// Topology returns the network the schedule is compiled for: Topo when set,
// otherwise the communication topology D.
func (s *Schedule) Topology() topology.Topology {
	if s.Topo != nil {
		return s.Topo
	}
	return s.D
}

// Finalize precomputes every exchange step's partner and link-index tables,
// shared across steps with equal Pattern. The cost is paid once per cached
// schedule; it requires the topology's neighbor rows to be ascending (the
// Topology contract, and the order the engine's CSR rows use), and leaves
// the tables nil — interpreting stays correct, just unaccelerated — if a row
// is not.
func (s *Schedule) Finalize() {
	type tables struct{ partners, links []int32 }
	byPattern := make(map[int]tables)
	topo := s.Topology()
	n := topo.Nodes()
	for i := range s.Steps {
		st := &s.Steps[i]
		if st.Kind == StepLocalCombine || st.partners != nil {
			continue
		}
		if t, ok := byPattern[st.Pattern]; ok {
			st.partners, st.links = t.partners, t.links
			continue
		}
		partners := make([]int32, n)
		if st.Kind == StepRecDim {
			// Half of a recursive-dimension matching's pairs are not
			// physically adjacent (they relay through two cross-edges), so
			// only the partner table exists; links stay nil and the
			// executors run the 3-cycle choreography instead of a link write.
			d, ok := s.D.(topology.Recursive)
			if !ok {
				return // no recursive presentation: leave unaccelerated
			}
			for u := 0; u < n; u++ {
				partners[u] = int32(d.FromRecursive(d.ToRecursive(u) ^ 1<<st.Dim))
			}
			byPattern[st.Pattern] = tables{partners, nil}
			st.partners = partners
			continue
		}
		links := make([]int32, n)
		for u := 0; u < n; u++ {
			var p int
			switch st.Kind {
			case StepClusterDim:
				p = s.D.ClusterNeighbor(u, st.Dim)
			case StepCrossHop:
				p = s.D.CrossNeighbor(u)
			default: // StepBitDim
				p = u ^ 1<<st.Dim
			}
			partners[u] = int32(p)
			idx := -1
			prev := -1
			for j, w := range topo.Neighbors(u) {
				if w <= prev {
					return // row not ascending: leave this schedule unaccelerated
				}
				prev = w
				if w == p {
					idx = j
				}
			}
			if idx < 0 {
				return // partner not adjacent: let the interpreter's checks report it
			}
			links[u] = int32(idx)
		}
		byPattern[st.Pattern] = tables{partners, links}
		st.partners, st.links = partners, links
	}
}

// CommSteps returns the number of communication steps (non-local steps) of
// the fault-free schedule.
func (s *Schedule) CommSteps() int {
	k := 0
	for i := range s.Steps {
		if s.Steps[i].Kind != StepLocalCombine {
			k++
		}
	}
	return k
}

// CommCycles returns the clock cycles the fault-free schedule's
// communication steps take: one per matched exchange, three per
// recursive-dimension step (Section 6's routed compare-and-exchange). The
// repair cycles of a fault rewrite come on top (RepairCycles).
func (s *Schedule) CommCycles() int {
	k := 0
	for i := range s.Steps {
		switch s.Steps[i].Kind {
		case StepLocalCombine:
		case StepRecDim:
			k += 3
		default:
			k++
		}
	}
	return k
}

// Exec is a node program's cursor over a compiled schedule: it tracks the
// current step and executes each one on this node. It is a small value —
// keep it on the program's stack (Interpret returns a value, not a pointer)
// so interpreting a schedule allocates nothing per node.
type Exec[T any] struct {
	c   *Ctx[T]
	sch *Schedule
	pos int
}

// Interpret starts executing sch on this node. The program must consume
// every step in order (Exchange/Send/Recv/SendRecv/Idle for communication
// steps, LocalOps for local-combine steps) — the SPMD discipline extended to
// the schedule: all nodes walk the same steps together.
func Interpret[T any](c *Ctx[T], sch *Schedule) Exec[T] {
	return Exec[T]{c: c, sch: sch}
}

// Pos returns the index of the current (next unconsumed) step.
func (x *Exec[T]) Pos() int { return x.pos }

// Ctx returns the node context the cursor executes on, so programs can
// interleave computation accounting (Ops) with schedule steps.
func (x *Exec[T]) Ctx() *Ctx[T] { return x.c }

// Done reports whether every step has been consumed.
func (x *Exec[T]) Done() bool { return x.pos >= len(x.sch.Steps) }

// Kind returns the current step's kind.
func (x *Exec[T]) Kind() StepKind { return x.step().Kind }

// Dim returns the current step's cluster dimension.
func (x *Exec[T]) Dim() int { return x.step().Dim }

func (x *Exec[T]) step() *Step {
	if x.pos >= len(x.sch.Steps) {
		x.c.failf("schedule %s over-run at step %d", x.sch.Name, x.pos)
	}
	return &x.sch.Steps[x.pos]
}

// partner resolves this node's partner in the current step's matching.
func (x *Exec[T]) partner(s *Step) int {
	if s.partners != nil {
		return int(s.partners[x.c.id])
	}
	switch s.Kind {
	case StepClusterDim:
		return x.sch.D.ClusterNeighbor(x.c.ID(), s.Dim)
	case StepCrossHop:
		return x.sch.D.CrossNeighbor(x.c.ID())
	case StepRecDim:
		d := x.sch.D.(topology.Recursive)
		return d.FromRecursive(d.ToRecursive(x.c.ID()) ^ 1<<s.Dim)
	case StepBitDim:
		return x.c.ID() ^ 1<<s.Dim
	default:
		x.c.failf("schedule %s step %d (%s) has no partner", x.sch.Name, x.pos, s.Kind)
		return -1 // unreachable: failf aborts the run
	}
}

// Partner returns this node's partner in the current step without advancing.
func (x *Exec[T]) Partner() int { return x.partner(x.step()) }

// Exchange executes the current step as a full matched exchange: send v to
// the step's partner and receive the partner's value, honoring the step's
// fault annotations — a severed pair idles through the matched cycle and is
// served by the serial detour repairs instead. This is the only step form
// that supports fault annotations.
func (x *Exec[T]) Exchange(v T) T {
	s := x.step()
	if s.Kind == StepRecDim {
		// The routed compare-exchange has its own 3-cycle choreography;
		// fault annotations never reach this kind (RewriteFT rejects them).
		r := RecDimExchange(x.c, x.sch.D.(topology.Recursive), s.Dim, v)
		x.pos++
		return r
	}
	var r T
	if s.Broken != nil && s.Broken[x.c.ID()] {
		x.c.Idle()
	} else if s.links != nil {
		u := x.c.id
		r = x.c.exchangeAt(int(s.links[u]), int(s.partners[u]), v)
	} else {
		r = x.c.Exchange(x.partner(s), v)
	}
	if s.Detours != nil {
		if got, ok := RunDetours(x.c, s.Detours, v); ok {
			r = got
		}
	}
	x.pos++
	return r
}

// Send executes the current step as a one-way send to the step's partner
// (role-based collectives: the holder side of a flood or split round).
// Fault-annotated steps must use Exchange.
func (x *Exec[T]) Send(v T) {
	s := x.step()
	if s.links != nil {
		u := x.c.id
		x.c.sendAt(int(s.links[u]), int(s.partners[u]), v, false)
		x.c.boundary()
	} else {
		x.c.Send(x.partner(s), v)
	}
	x.pos++
}

// Recv executes the current step as a one-way receive from the step's
// partner (the receiving side of a flood or split round).
func (x *Exec[T]) Recv() T {
	s := x.step()
	var r T
	if s.links != nil {
		u := x.c.id
		x.c.boundary()
		r, _ = x.c.recvAt(int(s.links[u]), int(s.partners[u]), false)
	} else {
		r = x.c.Recv(x.partner(s))
	}
	x.pos++
	return r
}

// SendRecv executes the current step as a simultaneous send-to and
// receive-from the step's partner (a node that is both holder and receiver,
// e.g. a gather collector whose cross neighbor is also a collector).
func (x *Exec[T]) SendRecv(v T) T {
	s := x.step()
	var r T
	if s.links != nil {
		u := x.c.id
		r = x.c.exchangeAt(int(s.links[u]), int(s.partners[u]), v)
	} else {
		p := x.partner(s)
		r = x.c.SendRecv(p, v, p)
	}
	x.pos++
	return r
}

// Idle spends the current communication step without communicating (a node
// outside the step's active role set).
func (x *Exec[T]) Idle() {
	x.step()
	x.c.Idle()
	x.pos++
}

// LocalOps consumes the current StepLocalCombine, recording k computation
// rounds on this node (k may be zero for nodes the combine does not touch).
func (x *Exec[T]) LocalOps(k int) {
	s := x.step()
	if s.Kind != StepLocalCombine {
		x.c.failf("schedule %s step %d is %s, not localCombine", x.sch.Name, x.pos, s.Kind)
	}
	if k > 0 {
		x.c.Ops(k)
	}
	x.pos++
}

// RunDetours walks a step's repair schedule: for each severed pair, relay
// the first endpoint's value to the second and then the second's value back,
// along the alive path, one hop per cycle. Every node executes the same
// cycle count; ok reports whether this node is an endpoint of some pair (at
// most one — matchings are disjoint) and received its partner's value.
func RunDetours[T any](c *Ctx[T], detours []Detour, v T) (T, bool) {
	var out T
	var have bool
	for i := range detours {
		dt := &detours[i]
		if got, ok := RelayOneWay(c, dt.Path, v); ok {
			out, have = got, true
		}
		if got, ok := RelayOneWay(c, dt.Back, v); ok {
			out, have = got, true
		}
	}
	return out, have
}

// RelayOneWay moves the source's value along path, one hop per cycle
// (len(path)-1 cycles). Nodes off the path idle every cycle; relay nodes
// receive on one cycle and forward on the next; ok reports whether this node
// is the destination.
func RelayOneWay[T any](c *Ctx[T], path []int, v T) (T, bool) {
	u := c.ID()
	pos := -1
	for i, x := range path {
		if x == u {
			pos = i
			break
		}
	}
	last := len(path) - 1
	cur := v // the source's payload; relays overwrite it on receive
	for hop := 0; hop < last; hop++ {
		switch pos {
		case hop:
			c.Send(path[hop+1], cur)
		case hop + 1:
			cur = c.Recv(path[hop])
		default:
			c.Idle()
		}
	}
	return cur, pos == last
}

// RecDimExchange performs the parallel recursive-dimension-j exchange of the
// dual-cube's recursive presentation: every node sends v to its dimension-j
// partner (in recursive-ID space) and receives the partner's value. All
// nodes of the machine must call it with the same j in the same cycle.
//
// For j = 0 every pair is a direct cross-edge and the exchange is a single
// cycle. For j > 0 half the pairs are direct links while the other half must
// route through two cross-edges, making the parallel exchange three cycles
// (Section 6's "three time-units"). Let w be a node whose class parity
// matches j (so {w, w_j} is a direct link) and v = w's cross neighbor:
//
//	cycle 1: w sends its own value on the j-link and receives both its
//	         partner's value (j-link) and v's foreign value (cross-edge);
//	         v sends its value over the cross-edge.
//	cycle 2: w relays the foreign value on the j-link and receives the
//	         foreign value relayed by its partner; v is idle.
//	cycle 3: w returns the relayed value over the cross-edge; v receives
//	         its partner's value.
//
// Every directed link carries at most one message per cycle and every node
// sends at most once per cycle; relay nodes receive on two links in cycle 1
// (the bidirectional-channel allowance). This is the choreography behind
// StepRecDim: Exec.Exchange runs it on the engines, and RunDirect reproduces
// its accounting (3 cycles, 2N messages) without executing the relays.
func RecDimExchange[T any](c *Ctx[T], d topology.Recursive, j int, v T) T {
	u := c.ID()
	cross := d.CrossNeighbor(u)
	if j == 0 {
		return c.Exchange(cross, v)
	}
	r := d.ToRecursive(u)
	if d.RecDirect(r, j) {
		jp := d.FromRecursive(r ^ 1<<j)
		own, foreign := c.SendRecv2(jp, v, jp, cross) // cycle 1
		relayed := c.SendRecv(jp, foreign, jp)        // cycle 2
		c.Send(cross, relayed)                        // cycle 3
		return own
	}
	c.Send(cross, v) // cycle 1
	c.Idle()         // cycle 2
	return c.Recv(cross)
}
