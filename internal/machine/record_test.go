package machine

import (
	"strings"
	"testing"

	"dualcube/internal/topology"
)

func TestRunRecordedEvents(t *testing.T) {
	d := topology.MustDualCube(2)
	e := MustNew[int](d, Config{})
	st, rec, err := e.RunRecorded(func(c *Ctx[int]) {
		c.Exchange(d.CrossNeighbor(c.ID()), 1)      // cycle 0: 8 messages on cross-edges
		c.Idle()                                    // cycle 1: nothing
		c.Exchange(d.ClusterNeighbor(c.ID(), 0), 2) // cycle 2: 8 messages on cluster edges
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 3 || rec.Cycles != 3 {
		t.Fatalf("cycles = %d/%d", st.Cycles, rec.Cycles)
	}
	if len(rec.Events) != 16 {
		t.Fatalf("events = %d, want 16", len(rec.Events))
	}
	for _, ev := range rec.Events {
		if ev.Cycle == 1 {
			t.Fatalf("event in idle cycle: %+v", ev)
		}
		if ev.Cycle == 0 && ev.Dst != d.CrossNeighbor(ev.Src) {
			t.Fatalf("cycle-0 event not on a cross-edge: %+v", ev)
		}
		if ev.Cycle == 2 && ev.Dst != d.ClusterNeighbor(ev.Src, 0) {
			t.Fatalf("cycle-2 event not on a cluster edge: %+v", ev)
		}
	}
	// Events sorted by (cycle, src).
	for i := 1; i < len(rec.Events); i++ {
		a, b := rec.Events[i-1], rec.Events[i]
		if a.Cycle > b.Cycle || (a.Cycle == b.Cycle && a.Src >= b.Src) {
			t.Fatalf("events unsorted at %d: %+v %+v", i, a, b)
		}
	}
}

func TestRecordingLinkLoads(t *testing.T) {
	d := topology.MustDualCube(2)
	e := MustNew[int](d, Config{})
	_, rec, err := e.RunRecorded(func(c *Ctx[int]) {
		for k := 0; k < 3; k++ {
			c.Exchange(d.CrossNeighbor(c.ID()), k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	load, link := rec.MaxLinkLoad()
	if load != 3 {
		t.Errorf("max link load = %d (%v), want 3", load, link)
	}
	split := rec.SplitLoads(func(src, dst int) string {
		if dst == d.CrossNeighbor(src) {
			return "cross"
		}
		return "cluster"
	})
	if split["cross"] != 24 || split["cluster"] != 0 {
		t.Errorf("split = %v", split)
	}
}

func TestRenderSpaceTime(t *testing.T) {
	h := topology.MustHypercube(1)
	e := MustNew[int](h, Config{})
	_, rec, err := e.RunRecorded(func(c *Ctx[int]) {
		if c.ID() == 0 {
			c.Send(1, 7)
			c.Idle()
		} else {
			c.Idle()
			c.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rec.RenderSpaceTime(&sb, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cycle 0: node 0 sends, node 1 is the receiving endpoint of the link.
	if !strings.Contains(out, "0  S  R") {
		t.Errorf("space-time diagram:\n%s", out)
	}
	if !strings.Contains(out, "1  .  .") {
		t.Errorf("idle cycle not shown:\n%s", out)
	}
	if err := rec.RenderSpaceTime(&sb, 100); err == nil {
		t.Error("oversized rendering should fail")
	}
}

func TestCtxCycleCounter(t *testing.T) {
	h := topology.MustHypercube(1)
	e := MustNew[int](h, Config{})
	var last int
	_, err := e.Run(func(c *Ctx[int]) {
		if c.Cycle() != 0 {
			t.Error("cycle should start at 0")
		}
		c.Idle()
		c.Exchange(1-c.ID(), 0)
		if c.ID() == 0 {
			last = c.Cycle()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 2 {
		t.Errorf("cycle counter = %d, want 2", last)
	}
}

func TestRecordingExchangeBothMarked(t *testing.T) {
	h := topology.MustHypercube(1)
	e := MustNew[int](h, Config{})
	_, rec, err := e.RunRecorded(func(c *Ctx[int]) {
		c.Exchange(1-c.ID(), c.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rec.RenderSpaceTime(&sb, 2); err != nil {
		t.Fatal(err)
	}
	// Both nodes send and receive: both cells must be B.
	if !strings.Contains(sb.String(), "B  B") {
		t.Errorf("exchange not marked B:\n%s", sb.String())
	}
}
