package machine

import (
	"errors"
	"sync"
)

// ErrAborted is returned by Barrier.Wait (and propagated out of Engine.Run)
// when the barrier has been aborted because some node failed. It unblocks
// every waiter so a single node's error cannot deadlock the machine.
var ErrAborted = errors.New("machine: run aborted")

// Barrier is a reusable N-party synchronization barrier with an optional
// leader action: the last participant to arrive runs the action before
// releasing the others. This is how the engine performs its per-cycle
// accounting (contention checks, counter resets) exactly once per cycle
// while every node is quiescent.
type Barrier struct {
	mu      sync.Mutex
	n       int
	count   int
	release chan struct{}
	abort   chan struct{}
	action  func()
}

// NewBarrier creates a barrier for n participants. action may be nil; when
// non-nil it runs once per completed round, executed by the last arriver
// while all other participants are still blocked.
func NewBarrier(n int, action func()) *Barrier {
	return &Barrier{
		n:       n,
		release: make(chan struct{}),
		abort:   make(chan struct{}),
		action:  action,
	}
}

// Wait blocks until all n participants have called Wait for the current
// round, then releases them all. It returns ErrAborted if Abort was called
// (possibly while waiting).
func (b *Barrier) Wait() error {
	b.mu.Lock()
	select {
	case <-b.abort:
		b.mu.Unlock()
		return ErrAborted
	default:
	}
	gen := b.release
	b.count++
	if b.count == b.n {
		b.count = 0
		b.release = make(chan struct{})
		if b.action != nil {
			b.action()
		}
		close(gen)
		b.mu.Unlock()
		return nil
	}
	b.mu.Unlock()
	select {
	case <-gen:
		return nil
	case <-b.abort:
		return ErrAborted
	}
}

// Abort permanently unblocks all current and future waiters with
// ErrAborted. Safe to call multiple times and from any goroutine.
func (b *Barrier) Abort() {
	b.mu.Lock()
	select {
	case <-b.abort:
	default:
		close(b.abort)
	}
	b.mu.Unlock()
}

// Aborted reports whether the barrier has been aborted.
func (b *Barrier) Aborted() bool {
	select {
	case <-b.abort:
		return true
	default:
		return false
	}
}
