package machine

import (
	"fmt"
	"runtime"
	"sync"

	"dualcube/internal/topology"
)

// This file is the direct kernel executor: the third way to run a compiled
// Schedule. The simulator engines execute a schedule as N communicating
// node programs — coroutines or goroutines meeting at a clock barrier every
// cycle — which is the faithful machine model but pure overhead once the
// communication pattern is static. A finalized Schedule IS static: every
// step's matching is a precomputed partner table. The direct executor
// therefore runs the schedule as a sequence of array kernels over one flat
// []T of per-node payloads: per communication step, one sharded loop over
// the partner table performs every node's matched exchange + combine in
// place (one sync.WaitGroup join per step, zero coroutines, zero barriers),
// and a StepLocalCombine is a fused local loop.
//
// The executor is NOT a second semantics. The algorithm is supplied as a
// DirectKernel — produce a payload + role per step, absorb the partner's
// payload, run the local combine — and the same kernel value runs unchanged
// on the simulator engines through the KernelProgram adapter. Stats are
// reproduced exactly: cycles = communication steps (+ detour relay cycles),
// CommCycles counts steps that carried at least one message, Messages sums
// the per-step sender counts, MaxOps/TotalOps aggregate the per-node
// DirectCtx.Ops accounts, and Stats.Faults reports the armed plan's
// DownLinks/DownNodes by the engine's counting rules. TestIRGoldenStats and
// the differential suite hold the executor to byte-identical Stats and
// outputs against the schedule interpreter.
//
// Fault-rewritten schedules run too: a step's Broken mask suppresses the
// severed pairs' matched sends (they idle, exactly like Exec.Exchange), the
// partner's payload is delivered anyway — that is precisely what the detour
// relays compute — and the Detours are replayed as a serial accounting +
// validation epilogue per step: 2·(len(Path)−1) cycles each, one message per
// relay hop, every hop checked against the armed fault plan's down set.
// Transient Drop/Delay hooks have no static equivalent, so specs carrying
// them are rejected; DirectEligible steers those runs to an engine.

// DirectRole is the communication role a kernel assigns to one node for one
// schedule step: the direct-executor analogue of choosing between
// Exec.Exchange, Send, Recv and Idle. SendRecv needs no role of its own — on
// a finalized schedule both sides of a matched pair use the same link, so a
// node that both sends and receives is simply DirectExchange.
type DirectRole uint8

const (
	// DirectIdle spends the step without communicating.
	DirectIdle DirectRole = iota
	// DirectExchange sends the produced payload to the step's partner and
	// absorbs the partner's payload.
	DirectExchange
	// DirectSend sends the produced payload; nothing is absorbed.
	DirectSend
	// DirectRecv absorbs the partner's payload; nothing is sent.
	DirectRecv
)

// opsSink abstracts Ctx.Ops so DirectCtx can forward computation accounting
// to a node context when a kernel runs on a simulator engine.
type opsSink interface{ Ops(k int) }

// DirectCtx is a kernel's accounting handle: the direct-executor stand-in
// for the parts of Ctx a kernel may touch. Kernels record computation
// rounds through Ops exactly as node programs do; under the KernelProgram
// adapter the calls forward to the node's Ctx, so both execution paths
// account identically.
type DirectCtx struct {
	u    int
	ops  []int64 // per-node computation rounds (direct executor)
	sink opsSink // forwarding target (engine adapter); nil on the direct path
}

// Ops adds k computation rounds to the current node's account.
func (dc *DirectCtx) Ops(k int) {
	if dc.sink != nil {
		dc.sink.Ops(k)
		return
	}
	dc.ops[dc.u] += int64(k)
}

// DirectKernel is one schedule-driven operation expressed as array kernels.
// The executor drives it per (step, node); the contract is that each call
// touches only node u's state (its own slots of the kernel's per-node
// arrays), because the adapter interleaves nodes arbitrarily and the direct
// executor shards them across workers.
//
// For a communication step k, Produce(dc, k, u) returns node u's role and
// outgoing payload (ignored unless the role sends); if the role receives,
// Absorb(dc, k, u, v) is later called with the partner's produced payload.
// Within one node, Absorb for step k-1 always precedes Produce for step k.
// For a StepLocalCombine, Local(dc, k, u) runs instead. Matched pairs must
// agree within a step — a receiver whose partner does not send (or a sender
// whose partner does not receive) is a protocol error, as on the engines.
type DirectKernel[T any] interface {
	Produce(dc *DirectCtx, k, u int) (DirectRole, T)
	Absorb(dc *DirectCtx, k, u int, v T)
	Local(dc *DirectCtx, k, u int)
}

// KernelProgram adapts a direct kernel to a simulator node program walking
// the same schedule through the interpreter — the reference semantics. The
// differential and golden tests run each kernel through both paths and
// require identical outputs and Stats.
func KernelProgram[T any](sch *Schedule, kern DirectKernel[T]) func(c *Ctx[T]) {
	return func(c *Ctx[T]) {
		u := c.ID()
		c.dctx = DirectCtx{u: u, sink: c}
		dc := &c.dctx
		x := Interpret(c, sch)
		for k := range sch.Steps {
			if sch.Steps[k].Kind == StepLocalCombine {
				kern.Local(dc, k, u)
				x.LocalOps(0) // rounds were recorded through dc; advance only
				continue
			}
			role, v := kern.Produce(dc, k, u)
			switch role {
			case DirectExchange:
				kern.Absorb(dc, k, u, x.Exchange(v))
			case DirectSend:
				x.Send(v)
			case DirectRecv:
				kern.Absorb(dc, k, u, x.Recv())
			default:
				x.Idle()
			}
		}
	}
}

// DirectEligible reports whether a schedule-driven operation under cfg runs
// on the direct executor. The resolution mirrors Config.withDefaults —
// Config.Sched wins, then the SetDefaultSched package default — except that
// an unset scheduler resolves to SchedDirect: compiled schedules run direct
// by default, and either switch opts back into an engine. A fault spec with
// transient Drop/Delay hooks disqualifies the run (the static executor has
// no per-message wire to perturb); permanent link/node faults are fine.
func DirectEligible(cfg Config) bool {
	s := cfg.Sched
	if s == SchedDefault {
		s = Sched(defaultSched.Load())
		if s == SchedDefault {
			s = SchedDirect
		}
	}
	if s != SchedDirect {
		return false
	}
	spec := cfg.Faults
	if spec == nil {
		spec = defaultFaults.Load()
	}
	return spec == nil || (spec.Drop == nil && spec.Delay == nil)
}

// directParallelMin is the node count from which RunDirect shards its passes
// across workers. Below it a whole pass is a few microseconds of straight-
// line code and the per-pass spawn + join would dominate, so small machines
// run single-threaded. Variable so tests can force the parallel path.
var directParallelMin = 4096

// RunDirect executes a finalized schedule as array kernels and returns the
// run's cost statistics, identical to what a simulator engine reports for
// KernelProgram(sch, kern). cfg contributes Workers (sharding) and Faults
// (validated against the schedule's annotations exactly like the engine's
// armed spec); LinkCapacity and Timeout have no meaning here — there are no
// buffers to overflow and no coroutines to wedge.
func RunDirect[T any](sch *Schedule, cfg Config, kern DirectKernel[T]) (Stats, error) {
	topo := sch.Topology()
	n := topo.Nodes()
	st := Stats{Nodes: n}
	steps := sch.Steps
	for i := range steps {
		if steps[i].Kind != StepLocalCombine && steps[i].partners == nil {
			return st, fmt.Errorf("machine: direct executor requires a finalized schedule (%s step %d has no partner table)", sch.Name, i)
		}
	}

	spec := cfg.Faults
	if spec == nil {
		spec = defaultFaults.Load()
	}
	var down map[int]bool
	if spec != nil {
		if spec.Drop != nil || spec.Delay != nil {
			return st, fmt.Errorf("machine: direct executor cannot apply transient drop/delay fault hooks; run on an engine scheduler")
		}
		var err error
		down, st.Faults.DownLinks, st.Faults.DownNodes, err = directDownSet(topo, spec, n)
		if err != nil {
			return st, err
		}
	}

	// One backing array per kind halves the allocation count; the halves
	// double-buffer by pointer swap below.
	payload := make([]T, 2*n)
	roles := make([]DirectRole, 2*n)
	r := &directRun[T]{
		steps:     steps,
		kern:      kern,
		n:         n,
		cur:       payload[:n:n],
		prev:      payload[n:],
		rolesCur:  roles[:n:n],
		rolesPrev: roles[n:],
		down:      down,
	}
	r.hostDC.ops = make([]int64, n)
	ops := r.hostDC.ops

	W := cfg.Workers
	if W <= 0 {
		W = int(defaultWorkers.Load())
		if W <= 0 {
			W = runtime.GOMAXPROCS(0)
		}
	}
	if W > n {
		W = n
	}
	if W < 1 || n < directParallelMin {
		W = 1
	}
	if W > 1 {
		r.dcs = make([]DirectCtx, W)
		for i := range r.dcs {
			r.dcs[i].ops = ops
		}
		r.results = make([]passResult, W)
	}

	// Pass p absorbs step p-1 and produces step p, so pass len(steps) only
	// drains the final exchange. Payload and role arrays double-buffer
	// between passes: producers write cur, absorbers read prev — node u's
	// absorb may read any partner's slot, which pass p-1's join has already
	// made visible, so a pass has no intra-pass ordering at all and shards
	// over contiguous node ranges with a single join. The parallel variant
	// lives in its own method so the serial loop here stays allocation-free
	// (a goroutine closure in this loop would heap-box p every pass).
	for p := 0; p <= len(steps); p++ {
		var res passResult
		if W == 1 {
			res = r.pass(p, 0, n, &r.hostDC)
		} else {
			res = r.passParallel(p, W)
		}
		if res.err != nil {
			return st, res.err
		}
		if p < len(steps) {
			if s := &steps[p]; s.Kind == StepRecDim {
				// A recursive-dimension exchange is the 3-cycle cross-routed
				// choreography of RecDimExchange: half the pairs are direct
				// j-links, the other half route through two cross-edges, so
				// the parallel step is 3 cycles and 2N messages (N/2 direct
				// nodes send 3 each, N/2 routed nodes send 1). Every cross
				// edge and every dimension-j direct link carries traffic in
				// both directions, so an armed fault on any of them fails the
				// step exactly as the engine choreography would.
				if down != nil {
					if err := checkRecDimLinks(sch.D.(topology.Recursive), s.Dim, down, n); err != nil {
						return st, err
					}
				}
				st.Cycles += 3
				if res.sends > 0 {
					st.CommCycles += 3
					st.Messages += int64(2 * res.sends)
				}
			} else if s.Kind != StepLocalCombine {
				st.Cycles++
				if res.sends > 0 {
					st.CommCycles++
					st.Messages += int64(res.sends)
				}
				// Detour epilogue: each severed pair's repair relays run
				// serially after the matched cycle — len(Path)-1 hops out,
				// the same back, one message per hop-cycle. The values were
				// already delivered by the absorb pass (a relay carries
				// exactly the payload the endpoint produced), so the epilogue
				// is pure accounting plus fault-plan validation of the path.
				for di := range s.Detours {
					dt := &s.Detours[di]
					h := len(dt.Path) - 1
					st.Cycles += 2 * h
					st.CommCycles += 2 * h
					st.Messages += int64(2 * h)
					if down != nil {
						for i := 0; i < h; i++ {
							if down[dt.Path[i]*n+dt.Path[i+1]] {
								return st, fmt.Errorf("machine: node %d: send to %d on a failed link", dt.Path[i], dt.Path[i+1])
							}
							if down[dt.Path[i+1]*n+dt.Path[i]] {
								return st, fmt.Errorf("machine: node %d: send to %d on a failed link", dt.Path[i+1], dt.Path[i])
							}
						}
					}
				}
			}
		}
		r.prev, r.cur = r.cur, r.prev
		r.rolesPrev, r.rolesCur = r.rolesCur, r.rolesPrev
	}

	for u := 0; u < n; u++ {
		o := ops[u]
		if int(o) > st.MaxOps {
			st.MaxOps = int(o)
		}
		st.TotalOps += o
	}
	return st, nil
}

// directRun is the per-run state of the direct executor shared by its
// workers: the double-buffered payload and role arrays plus the compiled
// down set of the armed fault plan.
type directRun[T any] struct {
	steps     []Step
	kern      DirectKernel[T]
	n         int
	cur, prev []T
	rolesCur  []DirectRole
	rolesPrev []DirectRole
	down      map[int]bool // directed down links, keyed u*n+v; nil = fault-free
	hostDC    DirectCtx    // the host worker's context (serial runs use only this)
	dcs       []DirectCtx  // extra workers' contexts; nil on serial runs
	results   []passResult // per-worker pass outcomes; nil on serial runs
}

// passParallel shards one pass over W workers on contiguous node ranges and
// merges their outcomes: sends add up, and the protocol error of the lowest
// node wins so reporting is deterministic under any worker count.
func (r *directRun[T]) passParallel(p, W int) passResult {
	n := r.n
	var wg sync.WaitGroup
	wg.Add(W - 1)
	for i := 1; i < W; i++ {
		go func(i int) {
			defer wg.Done()
			r.results[i] = r.pass(p, i*n/W, (i+1)*n/W, &r.dcs[i])
		}(i)
	}
	r.results[0] = r.pass(p, 0, n/W, &r.dcs[0])
	wg.Wait()
	res := r.results[0]
	for i := 1; i < W; i++ {
		res.sends += r.results[i].sends
		if r.results[i].err != nil && (res.err == nil || r.results[i].failNode < res.failNode) {
			res.err, res.failNode = r.results[i].err, r.results[i].failNode
		}
	}
	return res
}

// passResult is one worker's outcome of one pass: its shard's sender count
// and the lowest-node protocol error, merged by the host after the join so
// error reporting stays deterministic under any worker count.
type passResult struct {
	sends    int
	failNode int
	err      error
}

// pass runs nodes [lo, hi) through pass p: absorb step p-1, then produce
// step p (or run its local combine). Protocol checks fold into the same
// loops — a receiver whose partner did not send, a sender whose partner does
// not receive, and a sender whose link the armed fault plan severed (outside
// the schedule's Broken mask) are the engine's empty-link, unconsumed-message
// and failed-link errors.
func (r *directRun[T]) pass(p, lo, hi int, dc *DirectCtx) passResult {
	res := passResult{failNode: -1}
	if p > 0 {
		if s := &r.steps[p-1]; s.Kind != StepLocalCombine {
			partners := s.partners
			prev, roles := r.prev, r.rolesPrev
			for u := lo; u < hi; u++ {
				role := roles[u]
				w := int(partners[u])
				if role == DirectExchange || role == DirectRecv {
					if wr := roles[w]; wr != DirectExchange && wr != DirectSend {
						if res.err == nil {
							res.failNode = u
							res.err = fmt.Errorf("machine: node %d: receive from %d on an empty link", u, w)
						}
						continue
					}
					dc.u = u
					r.kern.Absorb(dc, p-1, u, prev[w])
				} else if wr := roles[w]; wr == DirectExchange || wr == DirectSend {
					if res.err == nil {
						res.failNode = u
						res.err = fmt.Errorf("machine: 1 unconsumed message(s) on link %d->%d", w, u)
					}
				}
			}
		}
	}
	if p < len(r.steps) {
		s := &r.steps[p]
		if s.Kind == StepLocalCombine {
			for u := lo; u < hi; u++ {
				dc.u = u
				r.kern.Local(dc, p, u)
			}
			return res
		}
		partners, broken := s.partners, s.Broken
		recDim := s.Kind == StepRecDim
		for u := lo; u < hi; u++ {
			dc.u = u
			role, v := r.kern.Produce(dc, p, u)
			r.rolesCur[u] = role
			r.cur[u] = v
			if recDim && role != DirectExchange {
				// The 3-cycle choreography has no one-sided variant: a node
				// that sends without receiving (or vice versa) would wedge the
				// engine's relay cycles, so the direct path rejects it too.
				if res.err == nil {
					res.failNode = u
					res.err = fmt.Errorf("machine: node %d: recursive-dimension step %d requires a matched exchange, got role %d", u, p, role)
				}
				continue
			}
			if role != DirectExchange && role != DirectSend {
				continue
			}
			if broken != nil && broken[u] {
				continue // severed pair: idles the matched cycle, served by the detour epilogue
			}
			if r.down != nil && !recDim {
				// RecDim partners may be non-adjacent (the routed half); the
				// step's fault validation runs link-exactly in RunDirect via
				// checkRecDimLinks instead.
				if w := int(partners[u]); r.down[u*r.n+w] {
					if res.err == nil {
						res.failNode = u
						res.err = fmt.Errorf("machine: node %d: send to %d on a failed link", u, w)
					}
					continue
				}
			}
			res.sends++
		}
	}
	return res
}

// directDownSet compiles a fault spec into the directed down-link set and
// the DownLinks/DownNodes figures, with the same counting rules (and the
// same validation errors) as the engine's armFaults: an undirected link
// failure masks both directions, a node failure masks every incident link in
// both directions, and overlapping failures are deduplicated per directed
// link.
func directDownSet(t topology.Topology, spec *FaultSpec, n int) (map[int]bool, int, int, error) {
	down := make(map[int]bool)
	links := 0
	mark := func(u, v int) error {
		if u < 0 || u >= n || !adjacentIn(t, u, v) {
			return fmt.Errorf("machine: fault plan fails link %d-%d, which is not a link", u, v)
		}
		if !down[u*n+v] {
			down[u*n+v] = true
			links++
		}
		return nil
	}
	for _, l := range spec.Links {
		if err := mark(l[0], l[1]); err != nil {
			return nil, 0, 0, err
		}
		if err := mark(l[1], l[0]); err != nil {
			return nil, 0, 0, err
		}
	}
	nodes := 0
	for _, u := range spec.Nodes {
		if u < 0 || u >= n {
			return nil, 0, 0, fmt.Errorf("machine: fault plan fails node %d, outside 0..%d", u, n-1)
		}
		nodes++
		for _, v := range t.Neighbors(u) {
			if err := mark(u, v); err != nil {
				return nil, 0, 0, err
			}
			if err := mark(v, u); err != nil {
				return nil, 0, 0, err
			}
		}
	}
	return down, links, nodes, nil
}

// checkRecDimLinks validates one recursive-dimension exchange against the
// armed fault plan's down set. The choreography uses, in both directions,
// every cross edge (the routed half's delivery plus the direct half's relay
// traffic) and every dimension-j direct link, so any down link among them
// fails the step; the reported (sender, receiver) pair is the first send of
// the choreography that would traverse it.
func checkRecDimLinks(d topology.Recursive, j int, down map[int]bool, n int) error {
	for u := 0; u < n; u++ {
		cross := d.CrossNeighbor(u)
		r := d.ToRecursive(u)
		if d.RecDirect(r, j) {
			if w := d.FromRecursive(r ^ 1<<j); down[u*n+w] {
				return fmt.Errorf("machine: node %d: send to %d on a failed link", u, w)
			}
		}
		if down[u*n+cross] {
			return fmt.Errorf("machine: node %d: send to %d on a failed link", u, cross)
		}
	}
	return nil
}

// adjacentIn reports whether v is a neighbor of u. The caller has validated
// u's range.
func adjacentIn(t topology.Topology, u, v int) bool {
	for _, w := range t.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}
