package machine

import (
	"strings"
	"testing"

	"dualcube/internal/topology"
)

// faultSchedulers runs the test body under both execution engines.
func faultSchedulers(t *testing.T, body func(t *testing.T, sched Sched)) {
	t.Helper()
	for _, s := range []Sched{SchedWorkerPool, SchedGoroutinePerNode} {
		t.Run(s.String(), func(t *testing.T) { body(t, s) })
	}
}

// TestFaultDownLinkTrySend checks the fault-tolerant send contract on a
// permanently failed link: TrySend reports false, nothing is delivered, the
// partner's TryExchange sees no message, and Stats.Faults accounts for every
// refused attempt — identically under both schedulers.
func TestFaultDownLinkTrySend(t *testing.T) {
	d := topology.MustDualCube(2)
	dead := [2]int{0, d.CrossNeighbor(0)}
	spec := &FaultSpec{Links: [][2]int{dead}}
	faultSchedulers(t, func(t *testing.T, sched Sched) {
		eng := MustNew[int](d, Config{Sched: sched, Faults: spec})
		defer eng.Release()
		okSend := make([]bool, d.Nodes())
		okRecv := make([]bool, d.Nodes())
		st, err := eng.Run(func(c *Ctx[int]) {
			u := c.ID()
			cross := d.CrossNeighbor(u)
			okSend[u] = c.TrySend(cross, u)
			c.TryRecv(cross) // consume the partner's TrySend
			got, ok := c.TryExchange(cross, u)
			okRecv[u] = ok
			if ok && got != cross {
				c.failf("node %d: got %d from cross exchange", u, got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < d.Nodes(); u++ {
			onDead := u == dead[0] || u == dead[1]
			if okSend[u] == onDead {
				t.Errorf("node %d: TrySend ok = %v, want %v", u, okSend[u], !onDead)
			}
			if okRecv[u] == onDead {
				t.Errorf("node %d: TryExchange ok = %v, want %v", u, okRecv[u], !onDead)
			}
		}
		want := FaultStats{DownLinks: 2, RefusedSends: 4} // 2 nodes x (TrySend + TryExchange)
		if st.Faults != want {
			t.Errorf("Stats.Faults = %+v, want %+v", st.Faults, want)
		}
		// Refused sends are not sends: every node attempted 2, the two
		// dead-end nodes got both refused.
		if st.Messages != int64(2*d.Nodes()-4) {
			t.Errorf("Messages = %d, want %d", st.Messages, 2*d.Nodes()-4)
		}
	})
}

// TestFaultDownLinkPlainSendFails checks fail-fast: a non-Try send on a
// failed link aborts the run with a protocol error instead of wedging or
// silently dropping.
func TestFaultDownLinkPlainSendFails(t *testing.T) {
	d := topology.MustDualCube(2)
	spec := &FaultSpec{Links: [][2]int{{0, d.CrossNeighbor(0)}}}
	faultSchedulers(t, func(t *testing.T, sched Sched) {
		eng := MustNew[int](d, Config{Sched: sched, Faults: spec})
		defer eng.Release()
		_, err := eng.Run(func(c *Ctx[int]) {
			c.Exchange(d.CrossNeighbor(c.ID()), c.ID())
		})
		if err == nil || !strings.Contains(err.Error(), "failed link") {
			t.Fatalf("err = %v, want failed-link protocol error", err)
		}
	})
}

// TestFaultDownNode checks that a failed node is cut off in both directions:
// every incident directed link is masked.
func TestFaultDownNode(t *testing.T) {
	d := topology.MustDualCube(2)
	const deadNode = 3
	spec := &FaultSpec{Nodes: []int{deadNode}}
	eng := MustNew[int](d, Config{Faults: spec})
	defer eng.Release()
	okOut := make([]bool, d.Nodes())
	okIn := make([]bool, d.Nodes())
	st, err := eng.Run(func(c *Ctx[int]) {
		u := c.ID()
		cross := d.CrossNeighbor(u)
		okOut[u] = c.TrySend(cross, u)
		c.TryRecv(cross) // consume the partner's TrySend
		_, okIn[u] = c.TryExchange(cross, u)
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.Nodes(); u++ {
		touches := u == deadNode || d.CrossNeighbor(u) == deadNode
		if okOut[u] == touches || okIn[u] == touches {
			t.Errorf("node %d: ok out/in = %v/%v, want %v", u, okOut[u], okIn[u], !touches)
		}
	}
	if st.Faults.DownNodes != 1 || st.Faults.DownLinks != 2*d.Order() {
		t.Errorf("Faults = %+v, want 1 down node, %d directed links", st.Faults, 2*d.Order())
	}
}

// TestFaultTransientDrop checks deterministic in-flight loss: the sender
// believes the send succeeded, the receiver sees nothing, and the drop is
// accounted once.
func TestFaultTransientDrop(t *testing.T) {
	d := topology.MustDualCube(2)
	spec := &FaultSpec{
		// Lose exactly the cycle-0 message 0 -> cross(0).
		Drop: func(src, dst, cycle int) bool { return src == 0 && cycle == 0 },
	}
	faultSchedulers(t, func(t *testing.T, sched Sched) {
		eng := MustNew[int](d, Config{Sched: sched, Faults: spec})
		defer eng.Release()
		got := make([]bool, d.Nodes())
		st, err := eng.Run(func(c *Ctx[int]) {
			u := c.ID()
			if !c.TrySend(d.CrossNeighbor(u), u) {
				c.failf("node %d: unexpected refusal", u)
			}
			_, got[u] = c.TryRecv(d.CrossNeighbor(u))
		})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < d.Nodes(); u++ {
			want := u != d.CrossNeighbor(0)
			if got[u] != want {
				t.Errorf("node %d: received = %v, want %v", u, got[u], want)
			}
		}
		if st.Faults.DroppedMessages != 1 || st.Faults.RefusedSends != 0 {
			t.Errorf("Faults = %+v, want exactly 1 dropped", st.Faults)
		}
		if st.Messages != int64(d.Nodes()) {
			t.Errorf("Messages = %d, want %d (drops still count as sends)", st.Messages, d.Nodes())
		}
	})
}

// TestFaultDelay checks injected latency: a message delayed by k cycles is
// invisible to TryRecv for exactly k extra cycles, FIFO order is preserved,
// and the delay is accounted.
func TestFaultDelay(t *testing.T) {
	d := topology.MustDualCube(2)
	const lag = 2
	spec := &FaultSpec{
		Delay: func(src, dst, cycle int) int {
			if src == 0 && cycle == 0 {
				return lag
			}
			return 0
		},
	}
	faultSchedulers(t, func(t *testing.T, sched Sched) {
		eng := MustNew[int](d, Config{Sched: sched, Faults: spec})
		defer eng.Release()
		arrival := make([]int, d.Nodes())
		st, err := eng.Run(func(c *Ctx[int]) {
			u := c.ID()
			c.Send(d.CrossNeighbor(u), u)
			arrival[u] = -1
			for i := 0; i < lag+1; i++ {
				if _, ok := c.TryRecv(d.CrossNeighbor(u)); ok && arrival[u] < 0 {
					arrival[u] = c.Cycle()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < d.Nodes(); u++ {
			// Everyone sends during cycle 0 and first polls during cycle 2;
			// an undelayed message is long since visible, one delayed by lag
			// becomes visible during cycle lag+1.
			want := 2
			if u == d.CrossNeighbor(0) {
				want = lag + 1
			}
			if arrival[u] != want {
				t.Errorf("node %d: arrival cycle %d, want %d", u, arrival[u], want)
			}
		}
		if st.Faults.DelayedMessages != 1 {
			t.Errorf("Faults = %+v, want exactly 1 delayed", st.Faults)
		}
	})
}

// TestFaultStatsReproducible runs the same faulted program twice per
// scheduler and across schedulers and requires identical Stats, including
// the fault breakdown — the determinism contract of the subsystem.
func TestFaultStatsReproducible(t *testing.T) {
	d := topology.MustDualCube(3)
	spec := &FaultSpec{
		Links: [][2]int{{0, d.ClusterNeighbor(0, 0)}, {5, d.CrossNeighbor(5)}},
		Drop:  func(src, dst, cycle int) bool { return (src+dst+cycle)%7 == 3 },
		Delay: func(src, dst, cycle int) int { return (src ^ cycle) & 1 },
	}
	program := func(c *Ctx[int]) {
		u := c.ID()
		for i := 0; i < d.ClusterDim(); i++ {
			c.TryExchange(d.ClusterNeighbor(u, i), u*10+i)
		}
		c.TryExchange(d.CrossNeighbor(u), u)
		// Drain any late (delayed) arrivals so link hygiene holds.
		for i := 0; i < 2; i++ {
			for j := 0; j < d.ClusterDim(); j++ {
				c.TryRecv(d.ClusterNeighbor(u, j))
			}
			c.TryRecv(d.CrossNeighbor(u))
		}
	}
	var ref *Stats
	faultSchedulers(t, func(t *testing.T, sched Sched) {
		for run := 0; run < 2; run++ {
			eng := MustNew[int](d, Config{Sched: sched, Faults: spec})
			st, err := eng.Run(program)
			eng.Release()
			if err != nil {
				t.Fatal(err)
			}
			if st.Faults.DroppedMessages == 0 || st.Faults.DelayedMessages == 0 || st.Faults.RefusedSends == 0 {
				t.Fatalf("test not exercising all fault kinds: %+v", st.Faults)
			}
			if ref == nil {
				ref = &st
			} else if st != *ref {
				t.Errorf("stats diverge:\n  first: %+v\n  now:   %+v", *ref, st)
			}
		}
	})
}

// TestFaultSpecInvalid checks that arming a spec naming a non-link or an
// out-of-range node fails the run up front with a descriptive error.
func TestFaultSpecInvalid(t *testing.T) {
	d := topology.MustDualCube(2)
	for _, spec := range []*FaultSpec{
		{Links: [][2]int{{0, 3}}}, // not an edge of D_2
		{Nodes: []int{99}},
	} {
		eng := MustNew[int](d, Config{Faults: spec})
		_, err := eng.Run(func(c *Ctx[int]) { c.Idle() })
		eng.Release()
		if err == nil || !strings.Contains(err.Error(), "fault plan") {
			t.Errorf("spec %+v: err = %v, want fault-plan error", spec, err)
		}
	}
}

// TestStatsAddFaults checks the composite-phase accounting of the fault
// breakdown: event counts accumulate, the static plan figures carry through.
func TestStatsAddFaults(t *testing.T) {
	a := Stats{Nodes: 8, Faults: FaultStats{DownLinks: 2, DownNodes: 1, RefusedSends: 3, DroppedMessages: 1}}
	b := Stats{Nodes: 8, Faults: FaultStats{DownLinks: 2, DownNodes: 1, RefusedSends: 2, DelayedMessages: 4}}
	got := a.Add(b).Faults
	want := FaultStats{DownLinks: 2, DownNodes: 1, RefusedSends: 5, DroppedMessages: 1, DelayedMessages: 4}
	if got != want {
		t.Errorf("Add faults = %+v, want %+v", got, want)
	}
}
