package machine

import "testing"

func TestExtentMerge(t *testing.T) {
	cases := []struct {
		a, b Extent
		want Extent
		ok   bool
	}{
		{Extent{}, Extent{Off: 4, Len: 2}, Extent{Off: 4, Len: 2}, true},                // empty ∪ b
		{Extent{Off: 4, Len: 2}, Extent{}, Extent{Off: 4, Len: 2}, true},                // a ∪ empty
		{Extent{Off: 0, Len: 4}, Extent{Off: 4, Len: 4}, Extent{Off: 0, Len: 8}, true},  // a then b
		{Extent{Off: 4, Len: 4}, Extent{Off: 0, Len: 4}, Extent{Off: 0, Len: 8}, true},  // b then a
		{Extent{Off: 0, Len: 2}, Extent{Off: 4, Len: 2}, Extent{Off: 0, Len: 2}, false}, // gap
		{Extent{Off: 0, Len: 4}, Extent{Off: 2, Len: 4}, Extent{Off: 0, Len: 4}, false}, // overlap
	}
	for i, c := range cases {
		got, ok := c.a.Merge(c.b)
		if got != c.want || ok != c.ok {
			t.Errorf("case %d: %v.Merge(%v) = %v,%v want %v,%v", i, c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestExtentHalves(t *testing.T) {
	lo, hi := (Extent{Off: 8, Len: 4}).Halves()
	if lo != (Extent{Off: 8, Len: 2}) || hi != (Extent{Off: 10, Len: 2}) {
		t.Errorf("halves = %v %v", lo, hi)
	}
	// Halving then merging round-trips.
	if m, ok := lo.Merge(hi); !ok || m != (Extent{Off: 8, Len: 4}) {
		t.Errorf("halves do not merge back: %v %v", m, ok)
	}
}

func TestExtentPlaneReset(t *testing.T) {
	p := NewExtentPlane[int](8)
	if p.Nodes() != 8 || len(p.Off) != 8 || len(p.Bad) != 8 {
		t.Fatalf("plane geometry wrong: %d nodes", p.Nodes())
	}
	p.Off[3], p.Len[3], p.Off2[5], p.Len2[5], p.Bad[7] = 1, 2, 3, 4, 5
	p.Reset()
	for u := 0; u < 8; u++ {
		if p.Off[u]|p.Len[u]|p.Off2[u]|p.Len2[u]|p.Bad[u] != 0 {
			t.Fatalf("Reset left node %d dirty", u)
		}
	}
	if u, m := p.FirstBad(); u != -1 || m != 0 {
		t.Errorf("FirstBad on clean plane = %d,%d", u, m)
	}
	p.Bad[2] = 9
	if u, m := p.FirstBad(); u != 2 || m != 9 {
		t.Errorf("FirstBad = %d,%d want 2,9", u, m)
	}
}

func TestRoutePlaneGrow(t *testing.T) {
	p := NewRoutePlane[string](4)
	if p.Stride != 4 || len(p.IDs) != 16 || len(p.Send[0]) != 16 || len(p.Send[1]) != 16 {
		t.Fatalf("route plane geometry wrong")
	}
	v1 := p.GrowVals(10)
	if len(v1) != 10 {
		t.Fatalf("GrowVals(10) len %d", len(v1))
	}
	v1[9] = "x"
	// Shrinking reuses the backing; growing within capacity reuses it too.
	v2 := p.GrowVals(3)
	if len(v2) != 3 || &v2[0] != &v1[0] {
		t.Errorf("GrowVals(3) did not reuse the backing")
	}
	o1 := p.GrowVOff(5)
	o2 := p.GrowVOff(4)
	if len(o2) != 4 || &o1[0] != &o2[0] {
		t.Errorf("GrowVOff did not reuse the backing")
	}
	p.Cnt[1], p.Bad[2] = 7, -1
	p.Reset()
	if p.Cnt[1] != 0 || p.Bad[2] != 0 {
		t.Errorf("Reset left counters dirty")
	}
}
