package machine

import (
	"strings"
	"testing"

	"dualcube/internal/topology"
)

// fnKernel adapts function fields to the DirectKernel interface so each test
// can state its per-step behavior inline.
type fnKernel struct {
	produce func(dc *DirectCtx, k, u int) (DirectRole, int)
	absorb  func(dc *DirectCtx, k, u, v int)
	local   func(dc *DirectCtx, k, u int)
}

func (f fnKernel) Produce(dc *DirectCtx, k, u int) (DirectRole, int) { return f.produce(dc, k, u) }
func (f fnKernel) Absorb(dc *DirectCtx, k, u, v int) {
	if f.absorb != nil {
		f.absorb(dc, k, u, v)
	}
}
func (f fnKernel) Local(dc *DirectCtx, k, u int) {
	if f.local != nil {
		f.local(dc, k, u)
	}
}

// directTestSchedule hand-builds and finalizes a minimal cluster-technique
// schedule on D_n: one cluster sweep, the cross hop, and a local combine.
func directTestSchedule(t *testing.T, n int) *Schedule {
	t.Helper()
	d := topology.MustDualCube(n)
	m := d.ClusterDim()
	var steps []Step
	for i := 0; i < m; i++ {
		steps = append(steps, Step{Kind: StepClusterDim, Dim: i, Pattern: i})
	}
	steps = append(steps, Step{Kind: StepCrossHop, Dim: -1, Pattern: m})
	steps = append(steps, Step{Kind: StepLocalCombine, Dim: -1, Pattern: -1})
	sch := &Schedule{Name: "direct-test", D: d, Steps: steps}
	sch.Finalize()
	return sch
}

// sumKernel builds an all-exchange folding kernel over vals plus the state
// arrays backing it, fresh per run so the two backends cannot share state.
func sumKernel(n int) (fnKernel, []int) {
	vals := make([]int, n)
	return fnKernel{
		produce: func(dc *DirectCtx, k, u int) (DirectRole, int) {
			if k == 0 {
				vals[u] = u + 1
			}
			return DirectExchange, vals[u]
		},
		absorb: func(dc *DirectCtx, k, u, v int) {
			vals[u] += v
			dc.Ops(1)
		},
		local: func(dc *DirectCtx, k, u int) {
			vals[u] *= 3
			dc.Ops(1)
		},
	}, vals
}

// TestRunDirectMatchesEngine drives the same kernel through RunDirect and
// through a simulator engine via the KernelProgram adapter and requires
// identical outputs and identical Stats.
func TestRunDirectMatchesEngine(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		sch := directTestSchedule(t, n)
		N := sch.D.Nodes()

		kd, directVals := sumKernel(N)
		directStats, err := RunDirect(sch, Config{}, DirectKernel[int](kd))
		if err != nil {
			t.Fatalf("D_%d direct: %v", n, err)
		}

		ke, engineVals := sumKernel(N)
		eng := MustNew[int](sch.D, Config{})
		engineStats, err := eng.Run(KernelProgram(sch, DirectKernel[int](ke)))
		eng.Release()
		if err != nil {
			t.Fatalf("D_%d engine: %v", n, err)
		}

		if directStats != engineStats {
			t.Errorf("D_%d stats diverge:\n  direct: %+v\n  engine: %+v", n, directStats, engineStats)
		}
		for u := range directVals {
			if directVals[u] != engineVals[u] {
				t.Fatalf("D_%d node %d: direct %d, engine %d", n, u, directVals[u], engineVals[u])
			}
		}
		if comm := sch.CommSteps(); directStats.Cycles != comm {
			t.Errorf("D_%d: %d cycles, want %d", n, directStats.Cycles, comm)
		}
	}
}

// TestRunDirectParallelMatchesSerial forces the sharded pass path (the node
// count is pushed over directParallelMin) and requires the same outputs and
// Stats as the serial pass under several worker counts.
func TestRunDirectParallelMatchesSerial(t *testing.T) {
	defer func(min int) { directParallelMin = min }(directParallelMin)

	const n = 4
	sch := directTestSchedule(t, n)
	N := sch.D.Nodes()

	directParallelMin = 1 << 30 // force serial
	ks, serialVals := sumKernel(N)
	serialStats, err := RunDirect(sch, Config{}, DirectKernel[int](ks))
	if err != nil {
		t.Fatal(err)
	}

	directParallelMin = 1 // force the sharded path
	for _, w := range []int{1, 2, 3, 7, 64} {
		kp, parallelVals := sumKernel(N)
		parallelStats, err := RunDirect(sch, Config{Workers: w}, DirectKernel[int](kp))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if parallelStats != serialStats {
			t.Errorf("workers=%d: stats diverge: %+v vs %+v", w, parallelStats, serialStats)
		}
		for u := range serialVals {
			if parallelVals[u] != serialVals[u] {
				t.Fatalf("workers=%d node %d: parallel %d, serial %d", w, u, parallelVals[u], serialVals[u])
			}
		}
	}
}

// TestRunDirectRequiresFinalizedSchedule: a schedule without partner tables
// cannot run on the direct executor.
func TestRunDirectRequiresFinalizedSchedule(t *testing.T) {
	d := topology.MustDualCube(2)
	sch := &Schedule{Name: "unfinalized", D: d, Steps: []Step{{Kind: StepCrossHop, Dim: -1, Pattern: 1}}}
	k, _ := sumKernel(d.Nodes())
	_, err := RunDirect(sch, Config{}, DirectKernel[int](k))
	if err == nil || !strings.Contains(err.Error(), "finalized schedule") {
		t.Fatalf("err = %v, want finalized-schedule rejection", err)
	}
}

// TestRunDirectRejectsTransientFaultHooks: Drop/Delay have no static
// equivalent, so RunDirect must refuse them (DirectEligible steers such runs
// to an engine before this point; the guard is defense in depth).
func TestRunDirectRejectsTransientFaultHooks(t *testing.T) {
	sch := directTestSchedule(t, 2)
	k, _ := sumKernel(sch.D.Nodes())
	spec := &FaultSpec{Drop: func(src, dst, cycle int) bool { return false }}
	_, err := RunDirect(sch, Config{Faults: spec}, DirectKernel[int](k))
	if err == nil || !strings.Contains(err.Error(), "drop/delay") {
		t.Fatalf("err = %v, want drop/delay rejection", err)
	}
}

// TestRunDirectFaultPlanValidation: invalid fault plans fail with the
// engine's exact error texts.
func TestRunDirectFaultPlanValidation(t *testing.T) {
	sch := directTestSchedule(t, 2)
	k, _ := sumKernel(sch.D.Nodes())

	_, err := RunDirect(sch, Config{Faults: &FaultSpec{Links: [][2]int{{0, 5}}}}, DirectKernel[int](k))
	if err == nil || !strings.Contains(err.Error(), "which is not a link") {
		t.Fatalf("bad link: err = %v", err)
	}

	_, err = RunDirect(sch, Config{Faults: &FaultSpec{Nodes: []int{99}}}, DirectKernel[int](k))
	if err == nil || !strings.Contains(err.Error(), "outside 0..7") {
		t.Fatalf("bad node: err = %v", err)
	}
}

// TestRunDirectSendOnFailedLink: a sender whose link the armed plan severed
// (with no fault rewrite masking the pair) fails like the engine does.
func TestRunDirectSendOnFailedLink(t *testing.T) {
	sch := directTestSchedule(t, 2)
	k, _ := sumKernel(sch.D.Nodes())
	cross := sch.D.CrossNeighbor(0)
	spec := &FaultSpec{Links: [][2]int{{0, cross}}}
	_, err := RunDirect(sch, Config{Faults: spec}, DirectKernel[int](k))
	if err == nil || !strings.Contains(err.Error(), "on a failed link") {
		t.Fatalf("err = %v, want failed-link rejection", err)
	}
}

// TestRunDirectProtocolErrors: mismatched roles within a matched pair are
// the engine's empty-link and unconsumed-message protocol errors.
func TestRunDirectProtocolErrors(t *testing.T) {
	sch := directTestSchedule(t, 2)

	// Node 0 receives but its partner idles: empty link.
	recvOnly := fnKernel{
		produce: func(dc *DirectCtx, k, u int) (DirectRole, int) {
			if u == 0 {
				return DirectRecv, 0
			}
			return DirectIdle, 0
		},
	}
	_, err := RunDirect(sch, Config{}, DirectKernel[int](recvOnly))
	if err == nil || !strings.Contains(err.Error(), "on an empty link") {
		t.Fatalf("recv-only: err = %v, want empty-link error", err)
	}

	// Node 1 sends but its partner never receives: unconsumed message.
	sendOnly := fnKernel{
		produce: func(dc *DirectCtx, k, u int) (DirectRole, int) {
			if u == 1 {
				return DirectSend, u
			}
			return DirectIdle, 0
		},
	}
	_, err = RunDirect(sch, Config{}, DirectKernel[int](sendOnly))
	if err == nil || !strings.Contains(err.Error(), "unconsumed message") {
		t.Fatalf("send-only: err = %v, want unconsumed-message error", err)
	}
}
