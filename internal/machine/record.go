package machine

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Event is one message observed by the recorder: sent from Src to Dst
// during clock cycle Cycle (0-based).
type Event struct {
	Cycle int
	Src   int
	Dst   int
}

// Recording is the full message log of one run plus per-link totals. It is
// produced by Engine.RunRecorded and consumed by the space-time renderer
// and the link-load experiment (E14).
type Recording struct {
	Events    []Event // all messages, ordered by (cycle, src)
	Cycles    int
	LinkLoads map[[2]int]int // directed link -> total messages
}

// MaxLinkLoad returns the largest number of messages carried by any single
// directed link over the whole run, and one such link.
func (r *Recording) MaxLinkLoad() (load int, link [2]int) {
	for l, c := range r.LinkLoads {
		if c > load || (c == load && (l[0] < link[0] || (l[0] == link[0] && l[1] < link[1]))) {
			load, link = c, l
		}
	}
	return load, link
}

// SplitLoads aggregates total messages by a link classifier (for example
// cross-edge vs intra-cluster). The map key is the classifier's label.
func (r *Recording) SplitLoads(classify func(src, dst int) string) map[string]int {
	out := map[string]int{}
	for l, c := range r.LinkLoads {
		out[classify(l[0], l[1])] += c
	}
	return out
}

// RenderSpaceTime writes an ASCII space-time diagram: one row per cycle,
// one column per node, with S marking a send, R a receive-only endpoint,
// and B both. Intended for small machines (the Figure-scale examples).
func (r *Recording) RenderSpaceTime(w io.Writer, nodes int) error {
	if nodes > 64 {
		return fmt.Errorf("machine: space-time rendering capped at 64 nodes, got %d", nodes)
	}
	byCycle := make([][]Event, r.Cycles)
	for _, ev := range r.Events {
		byCycle[ev.Cycle] = append(byCycle[ev.Cycle], ev)
	}
	fmt.Fprint(w, "cycle ")
	for u := 0; u < nodes; u++ {
		fmt.Fprintf(w, "%2d ", u)
	}
	fmt.Fprintln(w)
	for cyc, evs := range byCycle {
		row := make([]byte, nodes)
		for i := range row {
			row[i] = '.'
		}
		for _, ev := range evs {
			mark := func(u int, c byte) {
				switch {
				case row[u] == '.':
					row[u] = c
				case row[u] != c:
					row[u] = 'B'
				}
			}
			mark(ev.Src, 'S')
			mark(ev.Dst, 'R')
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "%5d ", cyc)
		for _, c := range row {
			fmt.Fprintf(&sb, " %c ", c)
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// RunRecorded is Engine.Run with message recording enabled: every send is
// logged as an Event. Recording costs one slice append per message on the
// sending node; the log is assembled deterministically after the run.
func (e *Engine[T]) RunRecorded(program func(c *Ctx[T])) (Stats, *Recording, error) {
	perNode := make([][]Event, e.n)
	st, err := e.run(program, func(ctx *Ctx[T], dst int) {
		perNode[ctx.id] = append(perNode[ctx.id], Event{Cycle: ctx.cycle, Src: ctx.id, Dst: dst})
	})
	if err != nil {
		return st, nil, err
	}
	rec := &Recording{Cycles: st.Cycles, LinkLoads: map[[2]int]int{}}
	for _, evs := range perNode {
		rec.Events = append(rec.Events, evs...)
	}
	sort.Slice(rec.Events, func(i, j int) bool {
		if rec.Events[i].Cycle != rec.Events[j].Cycle {
			return rec.Events[i].Cycle < rec.Events[j].Cycle
		}
		return rec.Events[i].Src < rec.Events[j].Src
	})
	for _, ev := range rec.Events {
		rec.LinkLoads[[2]int{ev.Src, ev.Dst}]++
	}
	return st, rec, nil
}
