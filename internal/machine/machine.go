// Package machine implements the synchronous message-passing multicomputer
// that the paper's cost model assumes: one process per node of an
// interconnection network, links as bidirectional channels, and a global
// clock. Every node runs the same SPMD program as its own goroutine; each
// Go channel carries one direction of one link; a reusable barrier advances
// the global clock.
//
// # Communication model
//
// Per clock cycle a node may send at most one message (on one of its links)
// and receive the messages pending on at most two of its links — the
// "bidirectional-channel, 1-port" model of the paper's theorems. The second
// receive exists because the paper's three-time-unit compare-and-exchange
// step (Section 6) has the relay node accept its partner's value on a
// cluster link and a foreign value on its cross-edge in the same cycle;
// with full-duplex links both arrive simultaneously. Algorithms that stick
// to one receive per cycle (everything in Section 3) simply never use it.
//
// Messages become visible to receivers in the same cycle they are sent
// (sends happen before the barrier, receives after) and are buffered in
// FIFO order per directed link, so a value sent in cycle t may be consumed
// in any cycle >= t. A receive on an empty link, a send to a non-neighbor,
// or a link buffer overflow aborts the whole run with a descriptive error —
// the machine is also a protocol checker for the algorithms above it.
//
// # Accounting
//
// The engine counts clock cycles (communication time), cycles in which at
// least one message was sent, total messages (= hops, since every send
// traverses one link), and per-node computation rounds reported by the
// programs through Ctx.Ops. The maximum per-node operation count is the
// parallel computation time the paper's theorems bound.
package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dualcube/internal/topology"
)

// NoNode marks an absent peer in the low-level step call.
const NoNode = -1

// Config tunes an Engine.
type Config struct {
	// LinkCapacity is the per-directed-link buffer depth. The paper's
	// algorithms need at most 2 in-flight messages per link; the default of
	// 4 leaves headroom while still catching runaway protocols.
	LinkCapacity int
	// Timeout aborts a run that stops making progress (for example because
	// a buggy program desynchronized the lockstep). Default 60s.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.LinkCapacity <= 0 {
		c.LinkCapacity = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// Stats reports the cost of one run in the paper's measures.
type Stats struct {
	Nodes      int   // number of nodes that ran
	Cycles     int   // total clock cycles (communication time incl. idle cycles)
	CommCycles int   // cycles in which at least one message was sent
	Messages   int64 // total messages = total hops
	MaxOps     int   // max per-node computation rounds = parallel computation time
	TotalOps   int64 // sum of computation rounds over all nodes
}

// Engine is a synchronous multicomputer over a fixed topology. An Engine is
// reusable (Run may be called repeatedly) but not concurrently.
type Engine[T any] struct {
	topo topology.Topology
	cfg  Config
	n    int
	nbrs [][]int    // nbrs[u]: sorted neighbor list of u
	out  [][]chan T // out[u][i]: channel for the directed link u -> nbrs[u][i]
	in   [][]chan T // in[u][i]: channel for the directed link nbrs[u][i] -> u

	bar      *Barrier
	cycles   atomic.Int64
	commCyc  atomic.Int64
	messages atomic.Int64
	anySent  atomic.Bool
	onSend   func(c *Ctx[T], dst int) // optional per-run send hook (recording)

	failMu   sync.Mutex
	firstErr error
}

// New builds an engine over t. Channel wiring is O(N * degree).
func New[T any](t topology.Topology, cfg Config) *Engine[T] {
	cfg = cfg.withDefaults()
	n := t.Nodes()
	e := &Engine[T]{topo: t, cfg: cfg, n: n}
	e.nbrs = make([][]int, n)
	e.out = make([][]chan T, n)
	e.in = make([][]chan T, n)
	for u := 0; u < n; u++ {
		e.nbrs[u] = t.Neighbors(u)
		e.out[u] = make([]chan T, len(e.nbrs[u]))
		e.in[u] = make([]chan T, len(e.nbrs[u]))
		for i := range e.nbrs[u] {
			e.out[u][i] = make(chan T, cfg.LinkCapacity)
		}
	}
	// Wire in[u][i] to the out channel of the reverse direction.
	for u := 0; u < n; u++ {
		for i, v := range e.nbrs[u] {
			j := indexOf(e.nbrs[v], u)
			if j < 0 {
				panic(fmt.Sprintf("machine: topology %s is asymmetric at edge (%d,%d)", t.Name(), u, v))
			}
			e.in[u][i] = e.out[v][j]
		}
	}
	return e
}

// Topology returns the network the engine runs on.
func (e *Engine[T]) Topology() topology.Topology { return e.topo }

// Nodes returns the number of nodes.
func (e *Engine[T]) Nodes() int { return e.n }

// abortPanic unwinds a node program after the run has been failed.
type abortPanic struct{ err error }

// Run executes program on every node in lockstep and returns the cost
// statistics. The program must perform the same number of clock cycles on
// every node (the usual SPMD discipline); the engine's watchdog converts a
// desynchronized or deadlocked run into an error.
func (e *Engine[T]) Run(program func(c *Ctx[T])) (Stats, error) {
	return e.run(program, nil)
}

// run is the engine core shared by Run and RunRecorded.
func (e *Engine[T]) run(program func(c *Ctx[T]), onSend func(c *Ctx[T], dst int)) (Stats, error) {
	e.onSend = onSend
	e.cycles.Store(0)
	e.commCyc.Store(0)
	e.messages.Store(0)
	e.anySent.Store(false)
	e.firstErr = nil
	e.bar = NewBarrier(e.n, e.leaderAction)

	watchdog := time.AfterFunc(e.cfg.Timeout, func() {
		e.fail(fmt.Errorf("machine: run exceeded %v (desynchronized program?)", e.cfg.Timeout))
	})
	defer watchdog.Stop()

	ops := make([]int, e.n)
	var wg sync.WaitGroup
	wg.Add(e.n)
	for u := 0; u < e.n; u++ {
		go func(u int) {
			defer wg.Done()
			ctx := &Ctx[T]{engine: e, id: u}
			defer func() {
				ops[u] = ctx.ops
				if r := recover(); r != nil {
					if ap, ok := r.(abortPanic); ok {
						e.fail(ap.err)
						return
					}
					e.fail(fmt.Errorf("machine: node %d panicked: %v", u, r))
				}
			}()
			program(ctx)
		}(u)
	}
	wg.Wait()
	watchdog.Stop()

	e.failMu.Lock()
	err := e.firstErr
	e.failMu.Unlock()
	if err == nil {
		// Protocol hygiene: every sent message must have been consumed.
	hygiene:
		for u := 0; u < e.n; u++ {
			for i, ch := range e.out[u] {
				if len(ch) != 0 {
					err = fmt.Errorf("machine: %d unconsumed message(s) on link %d->%d", len(ch), u, e.nbrs[u][i])
					break hygiene
				}
			}
		}
	}

	st := Stats{
		Nodes:      e.n,
		Cycles:     int(e.cycles.Load()),
		CommCycles: int(e.commCyc.Load()),
		Messages:   e.messages.Load(),
	}
	for _, k := range ops {
		if k > st.MaxOps {
			st.MaxOps = k
		}
		st.TotalOps += int64(k)
	}
	if err != nil {
		// Drain any residue so the engine can be reused after a failure.
		for u := range e.out {
			for _, ch := range e.out[u] {
				for len(ch) > 0 {
					<-ch
				}
			}
		}
	}
	return st, err
}

// leaderAction runs once per completed barrier round, i.e. once per clock
// cycle, while all nodes are blocked.
func (e *Engine[T]) leaderAction() {
	e.cycles.Add(1)
	if e.anySent.Load() {
		e.commCyc.Add(1)
		e.anySent.Store(false)
	}
}

// fail records the first error and aborts the barrier so all nodes unwind.
func (e *Engine[T]) fail(err error) {
	e.failMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.failMu.Unlock()
	if e.bar != nil {
		e.bar.Abort()
	}
}

func indexOf(a []int, x int) int {
	for i, v := range a {
		if v == x {
			return i
		}
	}
	return -1
}
