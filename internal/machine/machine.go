// Package machine implements the synchronous message-passing multicomputer
// that the paper's cost model assumes: one process per node of an
// interconnection network, links as bidirectional FIFO channels, and a
// global clock. Every node runs the same SPMD program; a barrier advances
// the global clock.
//
// # Communication model
//
// Per clock cycle a node may send at most one message (on one of its links)
// and receive the messages pending on at most two of its links — the
// "bidirectional-channel, 1-port" model of the paper's theorems. The second
// receive exists because the paper's three-time-unit compare-and-exchange
// step (Section 6) has the relay node accept its partner's value on a
// cluster link and a foreign value on its cross-edge in the same cycle;
// with full-duplex links both arrive simultaneously. Algorithms that stick
// to one receive per cycle (everything in Section 3) simply never use it.
//
// Messages become visible to receivers in the same cycle they are sent
// (sends happen before the barrier, receives after) and are buffered in
// FIFO order per directed link, so a value sent in cycle t may be consumed
// in any cycle >= t. A receive on an empty link, a send to a non-neighbor,
// or a link buffer overflow aborts the whole run with a descriptive error —
// the machine is also a protocol checker for the algorithms above it.
//
// # Execution engines
//
// Two schedulers implement the model; both observe identical semantics
// (same outputs, same Stats, same protocol errors) for well-formed SPMD
// programs, which the differential tests assert.
//
// SchedWorkerPool (the default) is a stepped worker-pool scheduler:
// W ≈ GOMAXPROCS workers each own a contiguous shard of nodes and advance
// them cycle-by-cycle for the whole run. Each node program runs as a
// coroutine (iter.Pull) that parks at every clock boundary, so resuming a
// node is a direct stack switch with no Go-scheduler involvement, no
// per-node goroutine wakeup, and no N-party lock contention. Node
// coroutines are created once and persist across runs of the same engine
// (parking between runs), so repeated runs pay no per-node setup. Workers
// synchronize once per cycle through a sense-reversing barrier over W
// parties (not N), whose leader performs the per-cycle accounting and
// detects desynchronized programs deterministically. Message and operation
// counters are kept per-node/per-worker and merged once at run end — there
// are no shared atomics on the hot path, and with a single worker the whole
// simulation is lock-free straight-line code.
//
// SchedGoroutinePerNode is the original engine — one goroutine per node,
// all N parties meeting in one barrier per cycle. It is kept for
// differential testing and for the rare program that performs its own
// blocking synchronization between node programs outside the machine's
// primitives (worker-pool shards serialize node segments within a cycle, so
// such out-of-model blocking would deadlock a shard; none of the paper's
// algorithms do this — node programs must communicate only through links).
//
// Schedule-driven operations have a third path that is not a simulator at
// all: the direct kernel executor (direct.go, SchedDirect) runs a finalized
// Schedule as array kernels over flat per-node state — no coroutines, no
// per-cycle barrier, one worker join per schedule step — and reproduces the
// engines' Stats exactly. Operations expressed as a DirectKernel use it by
// default (see DirectEligible); the engines remain the reference semantics
// via the KernelProgram adapter.
//
// # Cost-model invariants
//
// The engine counts clock cycles (communication time), cycles in which at
// least one message was sent, total messages (= hops, since every send
// traverses one link), and per-node computation rounds reported by the
// programs through Ctx.Ops. The maximum per-node operation count is the
// parallel computation time the paper's theorems bound. Both schedulers
// preserve these measures exactly: Cycles is the number of barrier rounds,
// CommCycles counts rounds whose preceding send phase carried at least one
// message, Messages is the sum of per-node send counts, and MaxOps/TotalOps
// aggregate the per-node operation accounts. Scheduling order inside a
// cycle is deterministic in the worker pool (shard order), so repeated runs
// produce identical results bit-for-bit.
//
// # Link representation
//
// Links are single-producer single-consumer ring buffers in one flat
// allocation, indexed by a precomputed CSR adjacency table: for every
// directed edge the engine stores the reverse-edge slot (inSlot), so sends
// and receives resolve a neighbor to its link in O(log degree) via binary
// search over the sorted neighbor row instead of the linear indexOf scan of
// the original engine, and never search the peer's adjacency list.
package machine

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dualcube/internal/topology"
)

// NoNode marks an absent peer in the low-level step call.
const NoNode = -1

// Sched selects the execution engine of a run. See the package comment for
// the two schedulers' trade-offs.
type Sched uint8

const (
	// SchedDefault resolves to the package default (SchedWorkerPool for
	// engine runs, SchedDirect for schedule-driven operations, unless
	// overridden with SetDefaultSched).
	SchedDefault Sched = iota
	// SchedWorkerPool is the stepped worker-pool scheduler.
	SchedWorkerPool
	// SchedGoroutinePerNode is the original goroutine-per-node engine.
	SchedGoroutinePerNode
	// SchedDirect is the direct kernel executor (direct.go): finalized
	// schedules run as array kernels with one worker join per step instead
	// of per-cycle barriers. Only schedule-driven operations can use it
	// (DirectEligible); an engine asked for SchedDirect falls back to the
	// worker pool, so free-form node programs keep running.
	SchedDirect
)

func (s Sched) String() string {
	switch s {
	case SchedWorkerPool:
		return "worker-pool"
	case SchedGoroutinePerNode:
		return "goroutine-per-node"
	case SchedDirect:
		return "direct"
	default:
		return "default"
	}
}

// Package-level defaults, overridable by embedding applications (the public
// dualcube facade exposes them). Config fields always win over these.
var (
	defaultTimeout atomic.Int64 // nanoseconds; 0 = scale with node count
	defaultSched   atomic.Int32 // Sched; SchedDefault = worker pool
	defaultWorkers atomic.Int32 // 0 = GOMAXPROCS
)

// SetDefaultTimeout overrides the watchdog timeout used by engines whose
// Config leaves Timeout zero. d <= 0 restores the built-in scaling default
// (60s plus 30ms per node, so large machines are not aborted spuriously).
func SetDefaultTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	defaultTimeout.Store(int64(d))
}

// SetDefaultSched overrides the scheduler used by engines whose Config
// leaves Sched as SchedDefault.
func SetDefaultSched(s Sched) { defaultSched.Store(int32(s)) }

// SetDefaultWorkers overrides the worker count used by worker-pool engines
// whose Config leaves Workers zero. k <= 0 restores GOMAXPROCS.
func SetDefaultWorkers(k int) {
	if k < 0 {
		k = 0
	}
	defaultWorkers.Store(int32(k))
}

// scaledTimeout is the built-in watchdog default: a base of one minute plus
// 30ms per node, so the ceiling grows with the machine instead of starving
// large-n runs (the original fixed 60s default could be exceeded spuriously
// by big bitonic sorts under instrumentation).
func scaledTimeout(n int) time.Duration {
	return 60*time.Second + time.Duration(n)*30*time.Millisecond
}

// Config tunes an Engine.
type Config struct {
	// LinkCapacity is the per-directed-link buffer depth. The paper's
	// algorithms need at most 2 in-flight messages per link; the default of
	// 4 leaves headroom while still catching runaway protocols.
	LinkCapacity int
	// Timeout aborts a run that stops making progress (for example because
	// a buggy program blocked outside the machine's primitives). Zero means
	// the package default: SetDefaultTimeout's value if set, otherwise 60s
	// plus 30ms per node.
	Timeout time.Duration
	// Sched selects the execution engine. SchedDefault resolves to the
	// package default (worker pool unless overridden with SetDefaultSched).
	Sched Sched
	// Workers is the worker-pool size W. Zero means the package default
	// (SetDefaultWorkers's value if set, otherwise GOMAXPROCS); the engine
	// clamps W to the node count.
	Workers int
	// Faults arms a fault specification for every run of the engine: the
	// listed links and nodes are permanently down and the Drop/Delay hooks
	// perturb messages in flight (see FaultSpec). nil falls back to the
	// package default armed with SetDefaultFaults (usually nothing). The
	// spec is compared by pointer when engines are recycled, so reuse one
	// *FaultSpec value per plan.
	Faults *FaultSpec
}

// withDefaults resolves zero Config fields against the package defaults for
// a machine of n nodes.
func (c Config) withDefaults(n int) Config {
	if c.LinkCapacity <= 0 {
		c.LinkCapacity = 4
	}
	if c.Timeout <= 0 {
		if d := time.Duration(defaultTimeout.Load()); d > 0 {
			c.Timeout = d
		} else {
			c.Timeout = scaledTimeout(n)
		}
	}
	if c.Sched == SchedDefault {
		c.Sched = Sched(defaultSched.Load())
		if c.Sched == SchedDefault {
			c.Sched = SchedWorkerPool
		}
	}
	if c.Sched == SchedDirect {
		// The direct executor is not an engine; an engine run under a direct
		// preference (a non-schedule-driven algorithm, or an ineligible
		// fault spec) executes on the worker pool. Normalizing here also
		// keeps the engine pool keyed on real engine schedulers only.
		c.Sched = SchedWorkerPool
	}
	if c.Workers <= 0 {
		c.Workers = int(defaultWorkers.Load())
		if c.Workers <= 0 {
			c.Workers = runtime.GOMAXPROCS(0)
		}
	}
	if c.Workers > n {
		c.Workers = n
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// Stats reports the cost of one run in the paper's measures.
type Stats struct {
	Nodes      int        // number of nodes that ran
	Cycles     int        // total clock cycles (communication time incl. idle cycles)
	CommCycles int        // cycles in which at least one message was sent
	Messages   int64      // total messages = total hops
	MaxOps     int        // max per-node computation rounds = parallel computation time
	TotalOps   int64      // sum of computation rounds over all nodes
	Faults     FaultStats // fault-injection breakdown; zero when no plan is armed
}

// Add returns the combined cost of two phases of a composite algorithm that
// ran on the same machine: cycles, messages and operation rounds accumulate,
// while the node count carries through unchanged. A zero Stats value is the
// identity. Add panics if the phases report different non-zero node counts —
// two machine sizes cannot be meaningfully combined (and bitwise tricks on
// the counts, as an earlier samplesort revision attempted, silently corrupt
// the statistics).
func (a Stats) Add(b Stats) Stats {
	nodes := a.Nodes
	if nodes == 0 {
		nodes = b.Nodes
	} else if b.Nodes != 0 && b.Nodes != nodes {
		//dcvet:allow abortpanic -- combining mismatched machines is a caller bug; Add is a value method with no error channel
		panic(fmt.Sprintf("machine: Stats.Add combining phases of different machines (%d vs %d nodes)", a.Nodes, b.Nodes))
	}
	return Stats{
		Nodes:      nodes,
		Cycles:     a.Cycles + b.Cycles,
		CommCycles: a.CommCycles + b.CommCycles,
		Messages:   a.Messages + b.Messages,
		MaxOps:     a.MaxOps + b.MaxOps,
		TotalOps:   a.TotalOps + b.TotalOps,
		Faults:     a.Faults.add(b.Faults),
	}
}

// roundState is the worker-barrier leader's verdict for one clock cycle.
type roundState uint8

const (
	roundRun   roundState = iota // all nodes still stepping: keep going
	roundDone                    // every node finished: stop cleanly
	roundAbort                   // failure recorded or desync detected: drain
)

// engineState is the part of an engine that node programs (through their
// Ctx) and pool workers touch. It is deliberately separate from the
// user-facing Engine handle: persistent node coroutines keep engineState
// reachable from their parked stacks, and keeping the handle out of that
// reference chain lets the runtime collect a dropped handle and run its
// teardown (which unwinds those coroutines). Nothing in engineState may
// ever point back at the Engine.
type engineState[T any] struct {
	cfg Config
	n   int

	// Precomputed CSR adjacency and per-edge index tables. Directed edge
	// slot s = offs[u]+i carries messages u -> nbrs[s]; inSlot[s] is the
	// slot of the reverse edge nbrs[s] -> u, so receives resolve their link
	// without touching the peer's adjacency row.
	offs   []int32
	nbrs   []int32
	inSlot []int32

	// SPSC ring buffers, one per directed edge slot, in a single flat
	// allocation. Cursors grow monotonically (uint32 wraparound is fine);
	// slot s occupies buf[s*ringSize : (s+1)*ringSize].
	ringCap  uint32 // logical capacity (cfg.LinkCapacity)
	ringSize uint32 // physical size: LinkCapacity rounded up to a power of 2
	ringMask uint32
	buf      []T
	heads    []uint32 // consumer cursors, written by the receiving node only
	tails    []uint32 // producer cursors, written by the sending node only

	// atomicLinks selects atomic ring-cursor access. Required whenever link
	// endpoints can run on different OS threads (goroutine-per-node, or a
	// worker pool with W > 1); a single-worker pool runs the whole machine
	// on one goroutine and uses plain loads/stores.
	atomicLinks bool

	nodes []Ctx[T] // per-node contexts, reused across runs

	// fx is the compiled form of the armed fault spec, nil when the run is
	// fault-free — the send and receive paths check only this one pointer.
	fx *armedFaults

	cycles     int                      // barrier rounds completed (leader-written)
	commCycles int                      // rounds whose send phase carried traffic
	onSend     func(c *Ctx[T], dst int) // optional per-run send hook (recording)
	prog       func(c *Ctx[T])          // current run's program; nil between runs

	// Worker-pool scheduler state.
	workers []poolWorker
	wbar    *senseBarrier
	state   roundState

	// Goroutine-per-node scheduler state.
	bar     *Barrier
	anySent atomic.Bool

	failMu   sync.Mutex
	failed   atomic.Bool
	firstErr error
}

// engineKey identifies a reusable engine in the free list: element type,
// topology identity (name, node and edge counts — the repo's topologies are
// canonical by name), and the fully resolved configuration.
type engineKey struct {
	typ   reflect.Type
	name  string
	nodes int
	edges int
	cfg   Config
}

// freeEngines holds released engines for reuse by New, keyed by engineKey.
// Values are *engineStack. Constructing an engine costs O(N · degree)
// allocation (adjacency tables, link rings, node contexts, and on the pool
// scheduler one coroutine per node) — significant relative to a short run,
// so the algorithm layers return their engines here instead of discarding
// them.
var freeEngines sync.Map

type engineStack struct {
	mu sync.Mutex
	s  []any
}

// maxFreeEngines bounds each free-list stack so pathological churn over
// many distinct machines cannot pin unbounded memory.
const maxFreeEngines = 4

// Engine is a synchronous multicomputer over a fixed topology. An Engine is
// reusable (Run may be called repeatedly) but not concurrently.
type Engine[T any] struct {
	*engineState[T]

	topo     topology.Topology
	key      engineKey
	released bool

	// runners holds the persistent per-node coroutines of the worker-pool
	// scheduler, created lazily on the first run and parked between runs.
	// The holder never references the Engine, so the teardown finalizer
	// (which stops any parked coroutines of a dropped engine) does not keep
	// the handle alive.
	runners *runnerSet
}

// runnerSet is the indirection the teardown finalizer captures.
type runnerSet struct {
	rs []nodeRunner
}

// New builds an engine over t, or reports an error if t is not a symmetric
// simple graph (every directed edge must have a reverse edge so links can be
// full-duplex). Table construction is O(N · degree · log degree).
//
// If a previously Released engine matches (same element type, topology
// identity and configuration), it is recycled instead of rebuilt.
func New[T any](t topology.Topology, cfg Config) (*Engine[T], error) {
	n := t.Nodes()
	cfg = cfg.withDefaults(n)

	edges := 0
	for u := 0; u < n; u++ {
		edges += t.Degree(u)
	}
	key := engineKey{typ: reflect.TypeFor[T](), name: t.Name(), nodes: n, edges: edges, cfg: cfg}
	if v, ok := freeEngines.Load(key); ok {
		st := v.(*engineStack)
		st.mu.Lock()
		var recycled *Engine[T]
		if k := len(st.s); k > 0 {
			recycled = st.s[k-1].(*Engine[T])
			st.s = st.s[:k-1]
		}
		st.mu.Unlock()
		if recycled != nil {
			recycled.topo = t
			recycled.released = false
			return recycled, nil
		}
	}

	s := &engineState[T]{cfg: cfg, n: n}
	s.offs = make([]int32, n+1)
	for u := 0; u < n; u++ {
		s.offs[u+1] = s.offs[u] + int32(t.Degree(u))
	}
	s.nbrs = make([]int32, edges)
	for u := 0; u < n; u++ {
		row := s.nbrs[s.offs[u]:s.offs[u+1]]
		for i, v := range t.Neighbors(u) {
			row[i] = int32(v)
		}
		// The Topology contract promises ascending neighbor lists, but the
		// index tables depend on it, so enforce rather than trust.
		if !sort.SliceIsSorted(row, func(a, b int) bool { return row[a] < row[b] }) {
			sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		}
	}
	s.inSlot = make([]int32, edges)
	for u := 0; u < n; u++ {
		for sl := s.offs[u]; sl < s.offs[u+1]; sl++ {
			v := int(s.nbrs[sl])
			j := s.idxOf(v, u)
			if j < 0 {
				return nil, fmt.Errorf("machine: topology %s is asymmetric at edge (%d,%d)", t.Name(), u, v)
			}
			s.inSlot[sl] = s.offs[v] + int32(j)
		}
	}

	s.ringCap = uint32(cfg.LinkCapacity)
	s.ringSize = 1
	for s.ringSize < s.ringCap {
		s.ringSize <<= 1
	}
	s.ringMask = s.ringSize - 1
	s.buf = make([]T, edges*int(s.ringSize))
	s.heads = make([]uint32, edges)
	s.tails = make([]uint32, edges)

	s.nodes = make([]Ctx[T], n)
	for u := range s.nodes {
		s.nodes[u].engine = s
		s.nodes[u].id = u
	}

	e := &Engine[T]{engineState: s, topo: t, key: key, runners: &runnerSet{}}
	return e, nil
}

// MustNew is New, panicking on error. Intended for tests, benchmarks and
// examples running on topologies that are symmetric by construction.
func MustNew[T any](t topology.Topology, cfg Config) *Engine[T] {
	e, err := New[T](t, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Release returns the engine to the package free list for reuse by a later
// New call with the same element type, topology identity and configuration.
// The caller must not use the engine afterwards. Releasing is optional —
// an engine that is simply dropped is collected as usual (a finalizer
// unwinds its parked node coroutines), it just cannot be recycled.
func (e *Engine[T]) Release() {
	if e.released {
		//dcvet:allow abortpanic -- double-Release is a caller bug with no error path by design
		panic("machine: Engine.Release called twice")
	}
	// Never recycle an engine whose links may hold residue: a failed run
	// already drained them, but an engine that never ran an errored program
	// since is indistinguishable here, so drain again — it is O(edges) on
	// empty rings.
	e.drainLinks()
	e.released = true
	e.onSend = nil
	v, _ := freeEngines.LoadOrStore(e.key, &engineStack{})
	st := v.(*engineStack)
	st.mu.Lock()
	if len(st.s) < maxFreeEngines {
		st.s = append(st.s, e)
		e = nil
	}
	st.mu.Unlock()
	if e != nil {
		// Free list full: tear the engine down now instead of waiting for
		// the finalizer, unwinding its parked coroutines deterministically.
		teardownRunners(e.runners)
	}
}

// pooled is the non-generic view of a free-listed engine, so the pool can
// tear down recycled engines without knowing their element type.
type pooled interface{ teardown() }

func (e *Engine[T]) teardown() { teardownRunners(e.runners) }

// ResetEnginePool discards every recycled engine, unwinding their parked
// node coroutines. Steady-state callers never need this — the pool is the
// point — but cold-start measurements (the E20 warm-versus-cold sweep and
// the cold benchmark variants) call it to force full engine construction on
// the next New. Engines currently checked out are unaffected: the pool only
// ever holds released, idle engines.
func ResetEnginePool() {
	freeEngines.Range(func(k, v any) bool {
		st := v.(*engineStack)
		st.mu.Lock()
		engines := st.s
		st.s = nil
		st.mu.Unlock()
		for _, e := range engines {
			e.(pooled).teardown()
		}
		freeEngines.Delete(k)
		return true
	})
}

// teardownRunners unwinds every parked node coroutine. Runs either
// explicitly (free-list eviction) or as the finalizer of a dropped Engine;
// iter.Pull's stop is idempotent, so the two cannot conflict.
func teardownRunners(h *runnerSet) {
	for i := range h.rs {
		if h.rs[i].stop != nil {
			h.rs[i].stop()
		}
	}
	h.rs = nil
}

// Topology returns the network the engine runs on.
func (e *Engine[T]) Topology() topology.Topology { return e.topo }

// Nodes returns the number of nodes.
func (e *Engine[T]) Nodes() int { return e.n }

// Sched returns the scheduler this engine resolved to.
func (e *Engine[T]) Sched() Sched { return e.cfg.Sched }

// idxOf returns the position of v in u's sorted neighbor row, or -1. Binary
// search over the CSR row: O(log degree), no allocation.
func (s *engineState[T]) idxOf(u, v int) int {
	row := s.nbrs[s.offs[u]:s.offs[u+1]]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(row[mid]) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && int(row[lo]) == v {
		return lo
	}
	return -1
}

// abortPanic unwinds a node program after the run has been failed.
type abortPanic struct{ err error }

// Run executes program on every node in lockstep and returns the cost
// statistics. The program must perform the same number of clock cycles on
// every node (the usual SPMD discipline); a desynchronized program is
// reported as an error — deterministically by the worker-pool scheduler's
// barrier leader, via the watchdog by the goroutine-per-node engine.
func (e *Engine[T]) Run(program func(c *Ctx[T])) (Stats, error) {
	return e.run(program, nil)
}

// run is the engine core shared by Run and RunRecorded.
func (e *Engine[T]) run(program func(c *Ctx[T]), onSend func(c *Ctx[T], dst int)) (Stats, error) {
	if e.released {
		//dcvet:allow abortpanic -- use-after-Release is a caller bug with no error path by design
		panic("machine: Engine used after Release")
	}
	// The body below only touches the inner engineState, so without this
	// pin the Engine handle can become unreachable mid-run and its
	// finalizer (sched_pool.go) would unwind coroutines that are still
	// stepping.
	defer runtime.KeepAlive(e)
	s := e.engineState
	s.onSend = onSend
	s.cycles = 0
	s.commCycles = 0
	s.anySent.Store(false)
	s.failed.Store(false)
	s.failMu.Lock()
	s.firstErr = nil
	s.failMu.Unlock()
	if err := s.armFaults(); err != nil {
		return Stats{Nodes: s.n}, err
	}
	for u := range s.nodes {
		c := &s.nodes[u]
		c.ops, c.cycle, c.msgs = 0, 0, 0
		c.refused, c.dropped, c.delayed = 0, 0, 0
		c.worker = nil
	}

	watchdog := time.AfterFunc(s.cfg.Timeout, func() {
		s.fail(fmt.Errorf("machine: run exceeded %v (desynchronized program?)", s.cfg.Timeout))
	})
	defer watchdog.Stop()

	switch s.cfg.Sched {
	case SchedGoroutinePerNode:
		s.atomicLinks = true
		s.runGoroutines(program)
	default:
		s.atomicLinks = s.cfg.Workers > 1
		e.runWorkers(program)
	}
	watchdog.Stop()

	s.failMu.Lock()
	err := s.firstErr
	s.failMu.Unlock()
	if err == nil {
		// Protocol hygiene: every sent message must have been consumed.
	hygiene:
		for u := 0; u < s.n; u++ {
			for sl := s.offs[u]; sl < s.offs[u+1]; sl++ {
				if d := s.tails[sl] - s.heads[sl]; d != 0 {
					err = fmt.Errorf("machine: %d unconsumed message(s) on link %d->%d", d, u, s.nbrs[sl])
					break hygiene
				}
			}
		}
	}

	st := Stats{
		Nodes:      s.n,
		Cycles:     s.cycles,
		CommCycles: s.commCycles,
	}
	if s.fx != nil {
		st.Faults.DownLinks = s.fx.downLinks
		st.Faults.DownNodes = s.fx.downNodes
	}
	for u := range s.nodes {
		c := &s.nodes[u]
		st.Messages += c.msgs
		if c.ops > st.MaxOps {
			st.MaxOps = c.ops
		}
		st.TotalOps += int64(c.ops)
		st.Faults.RefusedSends += c.refused
		st.Faults.DroppedMessages += c.dropped
		st.Faults.DelayedMessages += c.delayed
	}
	if err != nil {
		s.drainLinks()
	}
	return st, err
}

// drainLinks discards any in-flight residue so the engine can be reused
// after a failure, releasing references held by buffered elements.
func (s *engineState[T]) drainLinks() {
	var zero T
	for sl := range s.tails {
		for h := s.heads[sl]; h != s.tails[sl]; h++ {
			s.buf[uint32(sl)*s.ringSize+h&s.ringMask] = zero
		}
		s.heads[sl] = s.tails[sl]
	}
}

// fail records the first error, marks the run failed, and (in the
// goroutine-per-node engine) aborts the barrier so all nodes unwind. The
// worker pool needs no abort broadcast: its barrier always completes a
// round, and the leader routes every worker into the drain path on the next
// cycle once the failure flag is up.
func (s *engineState[T]) fail(err error) {
	s.failMu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	bar := s.bar
	s.failMu.Unlock()
	s.failed.Store(true)
	if bar != nil {
		bar.Abort()
	}
}
