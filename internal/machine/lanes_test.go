package machine

import "testing"

// TestLanesRows pins the plane geometry: full-width rows, per-node
// disjointness within a parity, arena alternation across parities, and a
// capped capacity so an append can never bleed into the neighbor row.
func TestLanesRows(t *testing.T) {
	const n, k = 8, 4
	ln := NewLanes[int](n, k)
	if ln.Width() != k {
		t.Fatalf("Width() = %d, want %d", ln.Width(), k)
	}
	for u := 0; u < n; u++ {
		even, odd := ln.Row(0, u), ln.Row(1, u)
		if len(even) != k || cap(even) != k || len(odd) != k || cap(odd) != k {
			t.Fatalf("node %d: rows %d/%d cap %d/%d, want %d", u, len(even), len(odd), cap(even), cap(odd), k)
		}
		for l := 0; l < k; l++ {
			even[l] = 100*u + l
			odd[l] = -(100*u + l) - 1
		}
	}
	// Same parity at a later step aliases the same arena; the opposite
	// parity must be untouched.
	for u := 0; u < n; u++ {
		for l := 0; l < k; l++ {
			if got := ln.Row(2, u)[l]; got != 100*u+l {
				t.Fatalf("even arena node %d lane %d: %d", u, l, got)
			}
			if got := ln.Row(3, u)[l]; got != -(100*u+l)-1 {
				t.Fatalf("odd arena node %d lane %d: %d", u, l, got)
			}
		}
	}
}
