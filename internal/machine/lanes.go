package machine

// Lanes is the k-wide payload plane of a batched kernel: one contiguous row
// of k lane elements per node, double-buffered by schedule-step parity. It
// is the layout change that turns k compatible requests into one kernel
// pass — a lane kernel's payload type is []E (a row), its per-node state
// arrays are k-wide, and its Produce fills and returns the node's row for
// the step instead of a single element.
//
// The two arenas mirror RunDirect's own payload double-buffering, and the
// parity discipline is what makes returning interior slices safe: the rows
// produced for step s are read by the absorbers of step s during pass s+1,
// while pass s+1's producers (step s+1) write the opposite arena — so a row
// stays immutable from its Produce until every partner has absorbed it. A
// kernel that produced rows out of its live state arrays instead would race
// with its own next step. The same discipline holds on the simulator
// engines: the lockstep clock barrier guarantees step s's absorbs complete
// before any node produces step s+2, the first reuse of the arena.
type Lanes[E any] struct {
	k   int
	buf [2][]E
}

// NewLanes allocates the payload plane for n nodes at lane width k.
func NewLanes[E any](n, k int) *Lanes[E] {
	b := make([]E, 2*n*k)
	return &Lanes[E]{k: k, buf: [2][]E{b[: n*k : n*k], b[n*k:]}}
}

// Width returns the lane width k the plane was allocated for.
func (ln *Lanes[E]) Width() int { return ln.k }

// Row returns node u's outgoing payload row for schedule step `step`, full
// width; a kernel batching fewer than k lanes re-slices it. The row is
// stable for the two passes the parity discipline above requires.
func (ln *Lanes[E]) Row(step, u int) []E {
	return ln.buf[step&1][u*ln.k : (u+1)*ln.k : (u+1)*ln.k]
}
