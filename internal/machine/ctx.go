package machine

import (
	"fmt"
	"sync/atomic"
)

// Ctx is a node's handle onto the machine: its identity, its links and the
// global clock. Every public method that communicates advances the clock by
// exactly one cycle on this node; the SPMD discipline is that all nodes
// advance together, so a node with nothing to do in a cycle calls Idle.
type Ctx[T any] struct {
	engine *engineState[T]
	id     int
	ops    int
	cycle  int   // this node's local clock (== global clock under lockstep)
	msgs   int64 // messages sent by this node, merged into Stats at run end

	// Fault accounting (only written while a fault spec is armed), merged
	// into Stats.Faults at run end like msgs.
	refused int64 // send attempts on permanently failed links
	dropped int64 // transient in-flight losses
	delayed int64 // messages held back by at least one cycle

	// Exactly one of the following is set per run, selecting the clock
	// boundary mechanism: yield parks this node's persistent coroutine until
	// its worker reaches the next cycle (worker pool; the false payload
	// distinguishes a clock boundary from the coroutine's between-runs
	// park); a nil yield routes through the engine's N-party Barrier
	// (goroutine-per-node).
	yield  func(bool) bool
	worker *poolWorker

	// dctx is the node's DirectCtx under the KernelProgram adapter. Keeping
	// it inside the (pooled) node context lets the adapter hand kernels a
	// *DirectCtx without a per-node heap allocation per run.
	dctx DirectCtx
}

// ID returns this node's ID.
func (c *Ctx[T]) ID() int { return c.id }

// Nodes returns the machine size.
func (c *Ctx[T]) Nodes() int { return c.engine.n }

// Ops adds k computation rounds to this node's account. The paper counts
// one computation step per parallel round of ⊕ / comparison work; programs
// call Ops(1) once per such round.
func (c *Ctx[T]) Ops(k int) { c.ops += k }

// OpCount returns the computation rounds recorded so far on this node.
func (c *Ctx[T]) OpCount() int { return c.ops }

// Cycle returns this node's local clock: the number of completed cycles,
// which equals the global clock under the SPMD lockstep discipline.
func (c *Ctx[T]) Cycle() int { return c.cycle }

// Idle spends one clock cycle without communicating.
func (c *Ctx[T]) Idle() {
	var zero T
	c.step(NoNode, zero, NoNode, NoNode)
}

// Exchange sends v to partner and receives partner's message of the same
// cycle — the paper's elementary bidirectional-link exchange. partner must
// be a neighbor that performs the mirror Exchange.
func (c *Ctx[T]) Exchange(partner int, v T) T {
	r, _ := c.step(partner, v, partner, NoNode)
	return r
}

// Send transmits v to neighbor `to` and spends the cycle (no receive).
func (c *Ctx[T]) Send(to int, v T) {
	c.step(to, v, NoNode, NoNode)
}

// Recv spends one cycle receiving the pending message from neighbor `from`.
// The message may have been sent this cycle or buffered from an earlier one.
func (c *Ctx[T]) Recv(from int) T {
	r, _ := c.step(NoNode, *new(T), from, NoNode)
	return r
}

// SendRecv sends v to neighbor `to` and receives from neighbor `from` in
// the same cycle (the two may be different links, or the same link — in
// which case it degenerates to Exchange).
func (c *Ctx[T]) SendRecv(to int, v T, from int) T {
	r, _ := c.step(to, v, from, NoNode)
	return r
}

// SendRecv2 sends v to neighbor `to` and receives from the two distinct
// links `from1` and `from2` in the same cycle. This is the full-duplex
// bidirectional-channel allowance the three-time-unit compare-and-exchange
// step of Section 6 relies on.
func (c *Ctx[T]) SendRecv2(to int, v T, from1, from2 int) (T, T) {
	return c.step(to, v, from1, from2)
}

// Recv2 receives from two distinct links in one cycle without sending.
func (c *Ctx[T]) Recv2(from1, from2 int) (T, T) {
	return c.step(NoNode, *new(T), from1, from2)
}

// TrySend transmits v to neighbor `to` and spends the cycle (no receive) —
// the fault-tolerant form of Send. It reports delivery refusal instead of
// aborting the run: false means the link is permanently down under the armed
// fault plan (the port is still spent, so the SPMD clock stays in lockstep).
// A transient in-flight drop is indistinguishable from a successful send —
// the wire loses the message after the sender let it go — and shows up only
// in Stats.Faults.
func (c *Ctx[T]) TrySend(to int, v T) bool {
	ok := c.send(to, v, true)
	c.boundary()
	return ok
}

// TryRecv spends one cycle attempting to receive the pending message from
// neighbor `from` — the fault-tolerant form of Recv. ok reports whether a
// message was pending and visible (a delayed message stays invisible until
// its extra latency has elapsed). Unlike Recv, an empty link is not a
// protocol error, so protocols that must survive lost messages poll with
// TryRecv instead of wedging the barrier.
func (c *Ctx[T]) TryRecv(from int) (T, bool) {
	c.boundary()
	return c.recvFrom(from, true)
}

// TryExchange sends v to neighbor partner and attempts to receive partner's
// message of the same cycle — the fault-tolerant form of Exchange, one clock
// cycle. ok is false when the link is permanently down (nothing was sent or
// received) or when the partner's message was dropped or delayed in flight.
func (c *Ctx[T]) TryExchange(partner int, v T) (T, bool) {
	c.send(partner, v, true)
	c.boundary()
	return c.recvFrom(partner, true)
}

// step is the single clock-cycle primitive: at most one send, at most two
// receives, one clock boundary. All other methods delegate here. The
// Exchange shape (send and first receive on the same link) resolves the
// neighbor's CSR index once and reuses it on both sides of the boundary.
func (c *Ctx[T]) step(sendTo int, v T, recv1, recv2 int) (T, T) {
	ex := -1
	if sendTo != NoNode {
		if sendTo == recv1 {
			ex = c.linkIdx(sendTo)
			c.sendAt(ex, sendTo, v, false)
		} else {
			c.send(sendTo, v, false)
		}
	}
	if recv1 != NoNode && recv1 == recv2 {
		c.failf("node %d: duplicate receive from %d in one cycle", c.id, recv1)
	}
	c.boundary()
	var r1, r2 T
	if recv1 != NoNode {
		if ex >= 0 {
			r1, _ = c.recvAt(ex, recv1, false)
		} else {
			r1 = c.recvNow(recv1)
		}
	}
	if recv2 != NoNode {
		r2 = c.recvNow(recv2)
	}
	return r1, r2
}

// exchangeAt is Exchange with the partner's CSR index already resolved (the
// schedule interpreter's table-accelerated path): same send, boundary and
// receive as step, with no neighbor search. With no fault spec armed, plain
// (non-atomic) links and no send hook, the whole matched exchange is fused
// into one body so the per-side fault and atomics branches of sendAt/recvAt
// are checked once instead of eight times; counters, clock and failure
// messages are identical to the general path.
func (c *Ctx[T]) exchangeAt(i, partner int, v T) T {
	e := c.engine
	if e.fx == nil && !e.atomicLinks && e.onSend == nil {
		s := int(e.offs[c.id]) + i
		tail, head := e.tails[s], e.heads[s]
		if tail-head >= e.ringCap {
			c.failf("node %d: link %d->%d buffer overflow (capacity %d)", c.id, c.id, partner, e.cfg.LinkCapacity)
		}
		e.buf[uint32(s)*e.ringSize+tail&e.ringMask] = v
		e.tails[s] = tail + 1
		c.msgs++
		if c.worker != nil {
			c.worker.sent = true
		} else {
			e.anySent.Store(true)
		}
		c.boundary()
		rs := int(e.inSlot[s])
		rhead, rtail := e.heads[rs], e.tails[rs]
		if rtail == rhead {
			c.failf("node %d: receive from %d on an empty link", c.id, partner)
		}
		idx := uint32(rs)*e.ringSize + rhead&e.ringMask
		r := e.buf[idx]
		var zero T
		e.buf[idx] = zero
		e.heads[rs] = rhead + 1
		return r
	}
	c.sendAt(i, partner, v, false)
	c.boundary()
	r, _ := c.recvAt(i, partner, false)
	return r
}

// linkIdx resolves neighbor peer to its position in this node's CSR row,
// aborting the run if peer is not adjacent.
func (c *Ctx[T]) linkIdx(peer int) int {
	i := c.engine.idxOf(c.id, peer)
	if i < 0 {
		c.failf("node %d: send to %d, which is not a neighbor", c.id, peer)
	}
	return i
}

// send posts v on the directed link to neighbor `to`. try selects the
// fault-tolerant contract: a send on a permanently failed link reports false
// instead of aborting the run. With no fault spec armed the fault block is a
// single nil check.
func (c *Ctx[T]) send(to int, v T, try bool) bool {
	return c.sendAt(c.linkIdx(to), to, v, try)
}

// sendAt is send with the neighbor's CSR index already resolved.
func (c *Ctx[T]) sendAt(i, to int, v T, try bool) bool {
	e := c.engine
	s := int(e.offs[c.id]) + i
	delay := 0
	if fx := e.fx; fx != nil {
		if fx.down[s] {
			c.refused++
			if !try {
				c.failf("node %d: send to %d on a failed link", c.id, to)
			}
			return false
		}
		if fx.spec.Drop != nil && fx.spec.Drop(c.id, to, c.cycle) {
			// The message entered the wire and was lost: the port and the
			// hop are spent, but nothing reaches the receiver's buffer.
			c.dropped++
			c.msgs++
			if c.worker != nil {
				c.worker.sent = true
			} else {
				e.anySent.Store(true)
			}
			return true
		}
		if fx.spec.Delay != nil {
			if delay = fx.spec.Delay(c.id, to, c.cycle); delay < 0 {
				delay = 0
			}
			if delay > 0 {
				c.delayed++
			}
		}
	}
	tail := e.tails[s] // producer-owned cursor: plain read is always safe
	var head uint32
	if e.atomicLinks {
		head = atomic.LoadUint32(&e.heads[s])
	} else {
		head = e.heads[s]
	}
	if tail-head >= e.ringCap {
		c.failf("node %d: link %d->%d buffer overflow (capacity %d)", c.id, c.id, to, e.cfg.LinkCapacity)
	}
	idx := uint32(s)*e.ringSize + tail&e.ringMask
	e.buf[idx] = v
	if fx := e.fx; fx != nil && fx.stamps != nil {
		// Written before the tail store, read by the consumer only after it
		// observes the new tail — the same release/acquire protocol as buf.
		fx.stamps[idx] = uint32(c.cycle + delay)
	}
	if e.atomicLinks {
		atomic.StoreUint32(&e.tails[s], tail+1)
	} else {
		e.tails[s] = tail + 1
	}
	c.msgs++
	if c.worker != nil {
		c.worker.sent = true
	} else {
		e.anySent.Store(true)
	}
	if e.onSend != nil {
		e.onSend(c, to)
	}
	return true
}

// boundary is the clock edge: park until every node has finished the cycle.
func (c *Ctx[T]) boundary() {
	e := c.engine
	if c.yield != nil {
		if !c.yield(false) || e.state == roundAbort {
			// A false return means the engine is being torn down with this
			// program still live; roundAbort is the barrier leader routing
			// every worker into the drain pass after a recorded failure.
			panic(abortPanic{ErrAborted})
		}
	} else if err := e.bar.Wait(); err != nil {
		panic(abortPanic{err})
	}
	c.cycle++
}

// recvNow pops the oldest pending message on the link from -> id. It never
// blocks: by the time the clock boundary has released us, every message of
// the current cycle has been posted, so an empty link is a protocol error.
func (c *Ctx[T]) recvNow(from int) T {
	v, _ := c.recvFrom(from, false)
	return v
}

// recvFrom pops the oldest visible message on the link from -> id. try
// selects the fault-tolerant contract: an empty link — or one whose head
// message is still delayed in flight — reports ok = false instead of
// aborting the run. The incoming slot is read from the precomputed inSlot
// table; no adjacency scan happens here.
func (c *Ctx[T]) recvFrom(from int, try bool) (T, bool) {
	e := c.engine
	i := e.idxOf(c.id, from)
	if i < 0 {
		c.failf("node %d: receive from %d, which is not a neighbor", c.id, from)
	}
	return c.recvAt(i, from, try)
}

// recvAt is recvFrom with the neighbor's CSR index already resolved.
func (c *Ctx[T]) recvAt(i, from int, try bool) (T, bool) {
	e := c.engine
	s := int(e.inSlot[int(e.offs[c.id])+i])
	head := e.heads[s] // consumer-owned cursor: plain read is always safe
	var tail uint32
	if e.atomicLinks {
		tail = atomic.LoadUint32(&e.tails[s])
	} else {
		tail = e.tails[s]
	}
	idx := uint32(s)*e.ringSize + head&e.ringMask
	if tail == head || !c.visible(idx) {
		if try {
			var zero T
			return zero, false
		}
		c.failf("node %d: receive from %d on an empty link", c.id, from)
	}
	v := e.buf[idx]
	var zero T
	e.buf[idx] = zero // release references held by the buffered element
	if e.atomicLinks {
		atomic.StoreUint32(&e.heads[s], head+1)
	} else {
		e.heads[s] = head + 1
	}
	return v, true
}

// visible reports whether the buffered message at idx has cleared its
// injected latency: messages are stamped with send cycle + delay and become
// receivable strictly after that cycle, which for an undelayed message is
// the same cycle it was sent in (the receiver's clock has already advanced
// past the boundary).
func (c *Ctx[T]) visible(idx uint32) bool {
	fx := c.engine.fx
	return fx == nil || fx.stamps == nil || fx.stamps[idx] < uint32(c.cycle)
}

// failf aborts the whole run with a formatted protocol error and unwinds
// this node's program.
func (c *Ctx[T]) failf(format string, args ...any) {
	err := fmt.Errorf("machine: "+format, args...)
	c.engine.fail(err)
	panic(abortPanic{err})
}
