package machine

import (
	"fmt"
	"sync/atomic"
)

// Ctx is a node's handle onto the machine: its identity, its links and the
// global clock. Every public method that communicates advances the clock by
// exactly one cycle on this node; the SPMD discipline is that all nodes
// advance together, so a node with nothing to do in a cycle calls Idle.
type Ctx[T any] struct {
	engine *engineState[T]
	id     int
	ops    int
	cycle  int   // this node's local clock (== global clock under lockstep)
	msgs   int64 // messages sent by this node, merged into Stats at run end

	// Exactly one of the following is set per run, selecting the clock
	// boundary mechanism: yield parks this node's persistent coroutine until
	// its worker reaches the next cycle (worker pool; the false payload
	// distinguishes a clock boundary from the coroutine's between-runs
	// park); a nil yield routes through the engine's N-party Barrier
	// (goroutine-per-node).
	yield  func(bool) bool
	worker *poolWorker
}

// ID returns this node's ID.
func (c *Ctx[T]) ID() int { return c.id }

// Nodes returns the machine size.
func (c *Ctx[T]) Nodes() int { return c.engine.n }

// Ops adds k computation rounds to this node's account. The paper counts
// one computation step per parallel round of ⊕ / comparison work; programs
// call Ops(1) once per such round.
func (c *Ctx[T]) Ops(k int) { c.ops += k }

// OpCount returns the computation rounds recorded so far on this node.
func (c *Ctx[T]) OpCount() int { return c.ops }

// Cycle returns this node's local clock: the number of completed cycles,
// which equals the global clock under the SPMD lockstep discipline.
func (c *Ctx[T]) Cycle() int { return c.cycle }

// Idle spends one clock cycle without communicating.
func (c *Ctx[T]) Idle() {
	var zero T
	c.step(NoNode, zero, NoNode, NoNode)
}

// Exchange sends v to partner and receives partner's message of the same
// cycle — the paper's elementary bidirectional-link exchange. partner must
// be a neighbor that performs the mirror Exchange.
func (c *Ctx[T]) Exchange(partner int, v T) T {
	r, _ := c.step(partner, v, partner, NoNode)
	return r
}

// Send transmits v to neighbor `to` and spends the cycle (no receive).
func (c *Ctx[T]) Send(to int, v T) {
	c.step(to, v, NoNode, NoNode)
}

// Recv spends one cycle receiving the pending message from neighbor `from`.
// The message may have been sent this cycle or buffered from an earlier one.
func (c *Ctx[T]) Recv(from int) T {
	r, _ := c.step(NoNode, *new(T), from, NoNode)
	return r
}

// SendRecv sends v to neighbor `to` and receives from neighbor `from` in
// the same cycle (the two may be different links, or the same link — in
// which case it degenerates to Exchange).
func (c *Ctx[T]) SendRecv(to int, v T, from int) T {
	r, _ := c.step(to, v, from, NoNode)
	return r
}

// SendRecv2 sends v to neighbor `to` and receives from the two distinct
// links `from1` and `from2` in the same cycle. This is the full-duplex
// bidirectional-channel allowance the three-time-unit compare-and-exchange
// step of Section 6 relies on.
func (c *Ctx[T]) SendRecv2(to int, v T, from1, from2 int) (T, T) {
	return c.step(to, v, from1, from2)
}

// Recv2 receives from two distinct links in one cycle without sending.
func (c *Ctx[T]) Recv2(from1, from2 int) (T, T) {
	return c.step(NoNode, *new(T), from1, from2)
}

// step is the single clock-cycle primitive: at most one send, at most two
// receives, one clock boundary. All other methods delegate here.
func (c *Ctx[T]) step(sendTo int, v T, recv1, recv2 int) (T, T) {
	e := c.engine
	if sendTo != NoNode {
		i := e.idxOf(c.id, sendTo)
		if i < 0 {
			c.failf("node %d: send to %d, which is not a neighbor", c.id, sendTo)
		}
		s := int(e.offs[c.id]) + i
		tail := e.tails[s] // producer-owned cursor: plain read is always safe
		var head uint32
		if e.atomicLinks {
			head = atomic.LoadUint32(&e.heads[s])
		} else {
			head = e.heads[s]
		}
		if tail-head >= e.ringCap {
			c.failf("node %d: link %d->%d buffer overflow (capacity %d)", c.id, c.id, sendTo, e.cfg.LinkCapacity)
		}
		e.buf[uint32(s)*e.ringSize+tail&e.ringMask] = v
		if e.atomicLinks {
			atomic.StoreUint32(&e.tails[s], tail+1)
		} else {
			e.tails[s] = tail + 1
		}
		c.msgs++
		if c.worker != nil {
			c.worker.sent = true
		} else {
			e.anySent.Store(true)
		}
		if e.onSend != nil {
			e.onSend(c, sendTo)
		}
	}
	if recv1 != NoNode && recv1 == recv2 {
		c.failf("node %d: duplicate receive from %d in one cycle", c.id, recv1)
	}
	if c.yield != nil {
		if !c.yield(false) || e.state == roundAbort {
			// A false return means the engine is being torn down with this
			// program still live; roundAbort is the barrier leader routing
			// every worker into the drain pass after a recorded failure.
			panic(abortPanic{ErrAborted})
		}
	} else if err := e.bar.Wait(); err != nil {
		panic(abortPanic{err})
	}
	c.cycle++
	var r1, r2 T
	if recv1 != NoNode {
		r1 = c.recvNow(recv1)
	}
	if recv2 != NoNode {
		r2 = c.recvNow(recv2)
	}
	return r1, r2
}

// recvNow pops the oldest pending message on the link from -> id. It never
// blocks: by the time the clock boundary has released us, every message of
// the current cycle has been posted, so an empty link is a protocol error.
// The incoming slot is read from the precomputed inSlot table; no adjacency
// scan happens here.
func (c *Ctx[T]) recvNow(from int) T {
	e := c.engine
	i := e.idxOf(c.id, from)
	if i < 0 {
		c.failf("node %d: receive from %d, which is not a neighbor", c.id, from)
	}
	s := int(e.inSlot[int(e.offs[c.id])+i])
	head := e.heads[s] // consumer-owned cursor: plain read is always safe
	var tail uint32
	if e.atomicLinks {
		tail = atomic.LoadUint32(&e.tails[s])
	} else {
		tail = e.tails[s]
	}
	if tail == head {
		c.failf("node %d: receive from %d on an empty link", c.id, from)
	}
	idx := uint32(s)*e.ringSize + head&e.ringMask
	v := e.buf[idx]
	var zero T
	e.buf[idx] = zero // release references held by the buffered element
	if e.atomicLinks {
		atomic.StoreUint32(&e.heads[s], head+1)
	} else {
		e.heads[s] = head + 1
	}
	return v
}

// failf aborts the whole run with a formatted protocol error and unwinds
// this node's program.
func (c *Ctx[T]) failf(format string, args ...any) {
	err := fmt.Errorf("machine: "+format, args...)
	c.engine.fail(err)
	panic(abortPanic{err})
}
