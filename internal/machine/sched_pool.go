package machine

import (
	"fmt"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"
)

// unit is the sense barrier's channel element; release is signaled by close,
// the value itself carries nothing.
type unit = struct{}

// poolWorker is one party of the stepped scheduler. A worker owns the
// contiguous node shard [lo, hi) and advances every live node in it by one
// clock cycle per barrier round. Its fields are written only by the owning
// worker goroutine during a pass and read (and sent reset) only by the
// barrier leader while all workers are parked, so none of them need
// atomics.
type poolWorker struct {
	lo, hi int
	parity uint32 // local barrier sense, flipped every round
	active int    // live (not yet finished) nodes after the latest pass
	sent   bool   // did any node of this shard send since the last round?
}

// nodeRunner drives one node's persistent coroutine: next resumes it to its
// next yield — the yielded value is false at a clock boundary, true when the
// current run's program has returned and the coroutine parked between runs.
// stop unwinds a parked coroutine for good (engine teardown).
type nodeRunner struct {
	next func() (bool, bool)
	stop func()
}

// runWorkers executes program under the worker-pool stepped scheduler.
func (e *Engine[T]) runWorkers(program func(c *Ctx[T])) {
	s := e.engineState
	w := s.cfg.Workers
	s.state = roundRun
	s.prog = program
	if cap(s.workers) >= w {
		s.workers = s.workers[:w]
	} else {
		s.workers = make([]poolWorker, w)
	}
	per, rem := s.n/w, s.n%w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + per
		if i < rem {
			hi++
		}
		s.workers[i] = poolWorker{lo: lo, hi: hi}
		lo = hi
	}
	s.wbar = newSenseBarrier(w, s.poolLeader)

	if e.runners.rs == nil {
		e.runners.rs = make([]nodeRunner, s.n)
		// The coroutines created below park between runs holding references
		// to the engineState only, never to the Engine handle — so if the
		// handle is dropped without Release, it becomes unreachable and this
		// finalizer unwinds the parked coroutines instead of leaking them.
		runtime.SetFinalizer(e, func(e *Engine[T]) { teardownRunners(e.runners) })
	}
	rs := e.runners.rs

	var wg sync.WaitGroup
	for i := 1; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.workerMain(i, rs)
		}()
	}
	s.workerMain(0, rs) // the caller is worker 0
	wg.Wait()
	s.prog = nil // release the program closure's captures between runs
}

// workerMain is one worker's life for one run: materialize any missing
// coroutines of the shard (first run only — they persist across runs,
// parked at their between-runs yield), then alternate full passes over the
// live ones with barrier rounds until the leader declares the run over.
// Finished runners are compacted out of the pass list so completed nodes
// cost nothing in later cycles. After an abnormal end (failure or desync)
// one extra drain pass resumes each still-live program, whose next clock
// boundary observes roundAbort and unwinds with ErrAborted — the same
// unwinding the goroutine-per-node engine performs through Barrier.Abort —
// leaving every coroutine parked between runs again.
func (s *engineState[T]) workerMain(wi int, rs []nodeRunner) {
	w := &s.workers[wi]
	for u := w.lo; u < w.hi; u++ {
		s.nodes[u].worker = w
		if rs[u].next == nil {
			next, stop := iter.Pull(s.nodeLoop(&s.nodes[u]))
			rs[u] = nodeRunner{next: next, stop: stop}
		}
	}
	live := make([]func() (bool, bool), 0, w.hi-w.lo)
	for u := w.lo; u < w.hi; u++ {
		live = append(live, rs[u].next)
	}
	for {
		// Compaction of finished runners starts lazily: under the SPMD
		// discipline every node of the shard finishes in the same pass, so
		// the common pass moves nothing and the loop body is one resume per
		// live node.
		k := -1
		for i := range live {
			if done, _ := live[i](); done {
				if k < 0 {
					k = i
				}
			} else if k >= 0 {
				live[k] = live[i]
				k++
			}
		}
		if k >= 0 {
			live = live[:k]
		}
		w.active = len(live)
		s.wbar.wait(&w.parity)
		if s.state != roundRun {
			break
		}
	}
	if s.state == roundAbort {
		for i := range live {
			live[i]() // resume into the abort check; parks as done
		}
	}
}

// nodeLoop is the body of one node's persistent coroutine: an endless
// alternation of "run the engine's current program" and a between-runs park
// (yield true). The yield function doubles as the node's clock boundary
// while a program is running (yield false). Protocol failures and user
// panics are recovered per run in runNode and recorded as the run's error,
// exactly as the goroutine-per-node engine does at the top of each node
// goroutine; the coroutine itself survives to serve the next run. It only
// returns when a teardown stop makes the between-runs yield report false.
func (s *engineState[T]) nodeLoop(c *Ctx[T]) iter.Seq[bool] {
	return func(yield func(bool) bool) {
		for {
			c.yield = yield
			s.runNode(c)
			c.yield = nil
			if !yield(true) {
				return
			}
		}
	}
}

// runNode executes the current program on one node, converting panics into
// the run's recorded failure.
func (s *engineState[T]) runNode(c *Ctx[T]) {
	defer func() {
		if r := recover(); r != nil {
			if ap, ok := r.(abortPanic); ok {
				s.fail(ap.err)
			} else {
				s.fail(fmt.Errorf("machine: node %d panicked: %v", c.id, r))
			}
		}
	}()
	s.prog(c)
}

// poolLeader is the per-cycle accounting, run exactly once per barrier
// round by the last worker to arrive while all others are parked. It is
// the scheduler's authority on global progress:
//
//   - every node stepped: one clock cycle elapsed (a comm cycle if any
//     shard sent);
//   - every node finished: the run completed — the final pass ran program
//     epilogues only, so no cycle is counted, matching the N-party barrier
//     which never completes a round after nodes stop arriving;
//   - a strict subset finished: the SPMD lockstep is broken. The old engine
//     could only catch this via the watchdog timeout; the barrier leader
//     sees it immediately and deterministically.
func (s *engineState[T]) poolLeader() {
	total, any := 0, false
	for i := range s.workers {
		w := &s.workers[i]
		total += w.active
		any = any || w.sent
		w.sent = false
	}
	switch {
	case s.failed.Load():
		s.state = roundAbort
	case total == 0:
		s.state = roundDone
	case total < s.n:
		s.fail(fmt.Errorf("machine: desynchronized program: %d of %d nodes finished after cycle %d while the rest kept stepping", s.n-total, s.n, s.cycles))
		s.state = roundAbort
	default:
		s.cycles++
		if any {
			s.commCycles++
		}
	}
}

// senseBarrier is a sense-reversing barrier over the W pool workers. Each
// worker keeps a local parity (its sense); arrival is one atomic add, and
// the release channel for each parity is double-buffered so rounds cannot
// interfere: the leader re-arms the opposite parity's channel before
// releasing the current round, and a worker can only reach the next round's
// wait after being released from this one. The leader runs the round action
// while every other worker is parked. With a single worker the barrier
// degenerates to an inline action call — no atomics, no channels.
type senseBarrier struct {
	parties int32
	count   atomic.Int32
	release [2]chan unit
	action  func()
}

func newSenseBarrier(parties int, action func()) *senseBarrier {
	b := &senseBarrier{parties: int32(parties), action: action}
	b.release[0] = make(chan unit)
	b.release[1] = make(chan unit)
	return b
}

// wait blocks until all parties have arrived for the caller's current
// round. sense points at the caller's local round counter, advanced on
// every call; its low bit selects the release channel.
func (b *senseBarrier) wait(sense *uint32) {
	p := *sense & 1
	*sense++
	if b.parties == 1 {
		b.action()
		return
	}
	if b.count.Add(1) == b.parties {
		b.count.Store(0)
		b.release[1-p] = make(chan unit)
		b.action()
		close(b.release[p])
		return
	}
	<-b.release[p]
}
