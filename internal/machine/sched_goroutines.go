package machine

import (
	"fmt"
	"sync"
)

// runGoroutines executes program under the original engine: one goroutine
// per node, all N meeting in a single mutex-based barrier every cycle. Kept
// behind Config.Sched for differential testing against the worker pool and
// for programs that block on their own synchronization between nodes (which
// the stepped scheduler's in-shard serialization would deadlock).
func (e *engineState[T]) runGoroutines(program func(c *Ctx[T])) {
	bar := NewBarrier(e.n, func() {
		e.cycles++
		if e.anySent.Load() {
			e.commCycles++
			e.anySent.Store(false)
		}
	})
	e.failMu.Lock()
	e.bar = bar
	e.failMu.Unlock()

	var wg sync.WaitGroup
	wg.Add(e.n)
	for u := 0; u < e.n; u++ {
		c := &e.nodes[u]
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if ap, ok := r.(abortPanic); ok {
						e.fail(ap.err)
					} else {
						e.fail(fmt.Errorf("machine: node %d panicked: %v", c.id, r))
					}
				}
			}()
			program(c)
		}()
	}
	wg.Wait()

	e.failMu.Lock()
	e.bar = nil
	e.failMu.Unlock()
}
