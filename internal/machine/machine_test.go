package machine

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dualcube/internal/topology"
)

// schedConfigs enumerates the engine configurations every semantic test
// runs under: the worker pool in its single-worker fast path, the pool with
// forced multi-worker sharding (exercising the atomic link cursors and the
// sense barrier even on one CPU), and the legacy goroutine-per-node engine.
var schedConfigs = []struct {
	name string
	cfg  Config
}{
	{"pool", Config{Sched: SchedWorkerPool, Workers: 1}},
	{"pool-w4", Config{Sched: SchedWorkerPool, Workers: 4}},
	{"goroutines", Config{Sched: SchedGoroutinePerNode}},
}

func forEachSched(t *testing.T, base Config, f func(t *testing.T, cfg Config)) {
	t.Helper()
	for _, sc := range schedConfigs {
		cfg := sc.cfg
		cfg.LinkCapacity = base.LinkCapacity
		cfg.Timeout = base.Timeout
		t.Run(sc.name, func(t *testing.T) { f(t, cfg) })
	}
}

func TestExchangeOnK2(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		d := topology.MustDualCube(1) // K_2
		e := MustNew[int](d, cfg)
		got := make([]int, 2)
		st, err := e.Run(func(c *Ctx[int]) {
			got[c.ID()] = c.Exchange(1-c.ID(), c.ID()*10)
		})
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 10 || got[1] != 0 {
			t.Errorf("exchange results = %v", got)
		}
		if st.Cycles != 1 || st.CommCycles != 1 || st.Messages != 2 {
			t.Errorf("stats = %+v", st)
		}
	})
}

func TestHypercubeAllDimExchange(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		// Every node XORs together the IDs it sees along all dimensions; the
		// result is deterministic and checkable.
		q := 4
		h := topology.MustHypercube(q)
		e := MustNew[int](h, cfg)
		acc := make([]int, h.Nodes())
		st, err := e.Run(func(c *Ctx[int]) {
			sum := 0
			for i := 0; i < q; i++ {
				p := c.ID() ^ 1<<i
				sum += c.Exchange(p, c.ID())
				c.Ops(1)
			}
			acc[c.ID()] = sum
		})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < h.Nodes(); u++ {
			want := 0
			for i := 0; i < q; i++ {
				want += u ^ 1<<i
			}
			if acc[u] != want {
				t.Errorf("node %d: got %d want %d", u, acc[u], want)
			}
		}
		if st.Cycles != q || st.CommCycles != q {
			t.Errorf("cycles = %d/%d, want %d", st.Cycles, st.CommCycles, q)
		}
		if st.MaxOps != q || st.TotalOps != int64(q*h.Nodes()) {
			t.Errorf("ops = %d/%d", st.MaxOps, st.TotalOps)
		}
		if st.Messages != int64(q*h.Nodes()) {
			t.Errorf("messages = %d", st.Messages)
		}
	})
}

func TestSendRecvHalfDuplex(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		h := topology.MustHypercube(1)
		e := MustNew[string](h, cfg)
		var got string
		_, err := e.Run(func(c *Ctx[string]) {
			if c.ID() == 0 {
				c.Send(1, "ping")
			} else {
				got = c.Recv(0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != "ping" {
			t.Errorf("got %q", got)
		}
	})
}

func TestDeferredReceiveFIFO(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		// A message sent in cycle 1 may be received in cycle 3; messages on one
		// link arrive in order.
		h := topology.MustHypercube(1)
		e := MustNew[int](h, cfg)
		var first, second int
		_, err := e.Run(func(c *Ctx[int]) {
			if c.ID() == 0 {
				c.Send(1, 11)
				c.Send(1, 22)
				c.Idle()
			} else {
				c.Idle()
				first = c.Recv(0)
				second = c.Recv(0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if first != 11 || second != 22 {
			t.Errorf("FIFO violated: got %d then %d", first, second)
		}
	})
}

func TestSendRecv2(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		// On D_2, node 0 has neighbors 1 (cluster) and 4 (cross). It receives
		// from both in one cycle while sending to one of them.
		d := topology.MustDualCube(2)
		e := MustNew[int](d, cfg)
		var a, b int
		_, err := e.Run(func(c *Ctx[int]) {
			switch c.ID() {
			case 0:
				a, b = c.SendRecv2(1, 100, 1, 4)
			case 1:
				c.Exchange(0, 111)
			case 4:
				c.Send(0, 444)
			default:
				c.Idle()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if a != 111 || b != 444 {
			t.Errorf("SendRecv2 = %d,%d", a, b)
		}
	})
}

func TestIdleCyclesNotCommCycles(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		h := topology.MustHypercube(2)
		e := MustNew[int](h, cfg)
		st, err := e.Run(func(c *Ctx[int]) {
			c.Idle()
			c.Exchange(c.ID()^1, 0)
			c.Idle()
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Cycles != 3 || st.CommCycles != 1 {
			t.Errorf("cycles=%d comm=%d, want 3/1", st.Cycles, st.CommCycles)
		}
	})
}

func TestSendToNonNeighborFails(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		h := topology.MustHypercube(3)
		e := MustNew[int](h, cfg)
		_, err := e.Run(func(c *Ctx[int]) {
			if c.ID() == 0 {
				c.Send(7, 1) // 0 and 7 differ in 3 bits: not a link
			} else {
				c.Idle()
			}
		})
		if err == nil || !strings.Contains(err.Error(), "not a neighbor") {
			t.Errorf("want non-neighbor error, got %v", err)
		}
	})
}

func TestRecvEmptyLinkFails(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		h := topology.MustHypercube(1)
		e := MustNew[int](h, cfg)
		_, err := e.Run(func(c *Ctx[int]) {
			if c.ID() == 0 {
				c.Recv(1) // nothing was sent
			} else {
				c.Idle()
			}
		})
		if err == nil || !strings.Contains(err.Error(), "empty link") {
			t.Errorf("want empty-link error, got %v", err)
		}
	})
}

func TestDuplicateRecvFails(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		h := topology.MustHypercube(1)
		e := MustNew[int](h, cfg)
		_, err := e.Run(func(c *Ctx[int]) {
			if c.ID() == 0 {
				c.Recv2(1, 1)
			} else {
				c.Send(0, 1)
			}
		})
		if err == nil || !strings.Contains(err.Error(), "duplicate receive") {
			t.Errorf("want duplicate-receive error, got %v", err)
		}
	})
}

func TestUnconsumedMessageDetected(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		h := topology.MustHypercube(1)
		e := MustNew[int](h, cfg)
		_, err := e.Run(func(c *Ctx[int]) {
			if c.ID() == 0 {
				c.Send(1, 9)
			} else {
				c.Idle()
			}
		})
		if err == nil || !strings.Contains(err.Error(), "unconsumed") {
			t.Errorf("want unconsumed-message error, got %v", err)
		}
	})
}

func TestLinkOverflowDetected(t *testing.T) {
	forEachSched(t, Config{LinkCapacity: 2}, func(t *testing.T, cfg Config) {
		h := topology.MustHypercube(1)
		e := MustNew[int](h, cfg)
		_, err := e.Run(func(c *Ctx[int]) {
			for i := 0; i < 3; i++ {
				if c.ID() == 0 {
					c.Send(1, i)
				} else {
					c.Idle()
				}
			}
		})
		if err == nil || !strings.Contains(err.Error(), "overflow") {
			t.Errorf("want overflow error, got %v", err)
		}
	})
}

func TestNodePanicPropagates(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		h := topology.MustHypercube(2)
		e := MustNew[int](h, cfg)
		_, err := e.Run(func(c *Ctx[int]) {
			if c.ID() == 2 {
				panic("boom")
			}
			c.Exchange(c.ID()^1, 0)
		})
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Errorf("want node panic error, got %v", err)
		}
	})
}

// desyncProgram has node 0 step one cycle more than everyone else.
func desyncProgram(c *Ctx[int]) {
	if c.ID() == 0 {
		c.Idle()
		c.Idle() // the other nodes never join this cycle
	} else {
		c.Idle()
	}
}

// TestWatchdogCatchesDesync pins the legacy engine's behavior: a
// desynchronized program can only be caught by the watchdog timeout there.
func TestWatchdogCatchesDesync(t *testing.T) {
	h := topology.MustHypercube(1)
	e := MustNew[int](h, Config{Sched: SchedGoroutinePerNode, Timeout: 50 * time.Millisecond})
	_, err := e.Run(desyncProgram)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("want watchdog error, got %v", err)
	}
}

// TestPoolDetectsDesyncDeterministically asserts the worker pool improves
// on the watchdog: its barrier leader sees the broken lockstep immediately,
// with no timeout involved, for both single- and multi-worker pools.
func TestPoolDetectsDesyncDeterministically(t *testing.T) {
	for _, workers := range []int{1, 2} {
		h := topology.MustHypercube(1)
		e := MustNew[int](h, Config{Sched: SchedWorkerPool, Workers: workers, Timeout: time.Hour})
		start := time.Now()
		_, err := e.Run(desyncProgram)
		if err == nil || !strings.Contains(err.Error(), "desynchronized") {
			t.Errorf("W=%d: want desync error, got %v", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("W=%d: desync detection took %v, should not involve a timeout", workers, elapsed)
		}
	}
}

func TestEngineReusableAfterFailure(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		h := topology.MustHypercube(1)
		e := MustNew[int](h, cfg)
		_, err := e.Run(func(c *Ctx[int]) {
			if c.ID() == 0 {
				c.Send(1, 9) // left unconsumed -> failure
			} else {
				c.Idle()
			}
		})
		if err == nil {
			t.Fatal("expected failure on first run")
		}
		var got int
		_, err = e.Run(func(c *Ctx[int]) {
			if c.ID() == 0 {
				c.Send(1, 42)
			} else {
				got = c.Recv(0)
			}
		})
		if err != nil {
			t.Fatalf("engine not reusable: %v", err)
		}
		if got != 42 {
			t.Errorf("stale message leaked across runs: got %d", got)
		}
	})
}

// TestEngineReusableAfterProtocolAbort exercises reuse after a mid-run
// protocol failure that unwinds every node (not just an end-of-run hygiene
// error): links must be drained and the next run must start from a clean
// clock and fresh barrier state.
func TestEngineReusableAfterProtocolAbort(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		h := topology.MustHypercube(2)
		e := MustNew[int](h, cfg)
		_, err := e.Run(func(c *Ctx[int]) {
			c.Exchange(c.ID()^1, c.ID())
			if c.ID() == 3 {
				c.Recv(0) // non-neighbor: aborts the run in cycle 2
			} else {
				c.Idle()
			}
		})
		if err == nil || !strings.Contains(err.Error(), "not a neighbor") {
			t.Fatalf("want non-neighbor error, got %v", err)
		}
		out := make([]int, h.Nodes())
		st, err := e.Run(func(c *Ctx[int]) {
			out[c.ID()] = c.Exchange(c.ID()^1, c.ID())
		})
		if err != nil {
			t.Fatalf("engine not reusable after abort: %v", err)
		}
		if st.Cycles != 1 || st.Messages != int64(h.Nodes()) {
			t.Errorf("stats not reset after abort: %+v", st)
		}
		for u := range out {
			if out[u] != u^1 {
				t.Errorf("node %d: got %d want %d", u, out[u], u^1)
			}
		}
	})
}

func TestEngineReusableStatsReset(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		h := topology.MustHypercube(2)
		e := MustNew[int](h, cfg)
		prog := func(c *Ctx[int]) {
			c.Exchange(c.ID()^1, c.ID())
			c.Ops(1)
		}
		st1, err := e.Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		st2, err := e.Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		if st1 != st2 {
			t.Errorf("stats not reset across runs: %+v vs %+v", st1, st2)
		}
	})
}

func TestDeterminism(t *testing.T) {
	forEachSched(t, Config{}, func(t *testing.T, cfg Config) {
		// Two identical runs over D_3 must produce identical values and stats.
		d := topology.MustDualCube(3)
		e := MustNew[int](d, cfg)
		run := func() ([]int, Stats) {
			out := make([]int, d.Nodes())
			st, err := e.Run(func(c *Ctx[int]) {
				v := c.ID()
				for i := 0; i < d.ClusterDim(); i++ {
					v += c.Exchange(d.ClusterNeighbor(c.ID(), i), v)
					c.Ops(1)
				}
				v += c.Exchange(d.CrossNeighbor(c.ID()), v)
				c.Ops(1)
				out[c.ID()] = v
			})
			if err != nil {
				t.Fatal(err)
			}
			return out, st
		}
		out1, st1 := run()
		out2, st2 := run()
		if st1 != st2 {
			t.Errorf("stats differ: %+v vs %+v", st1, st2)
		}
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Fatalf("values differ at node %d", i)
			}
		}
	})
}

// asymTopology is deliberately broken: edge 0->1 has no reverse edge.
type asymTopology struct{}

func (asymTopology) Name() string { return "broken" }
func (asymTopology) Nodes() int   { return 3 }
func (asymTopology) Degree(u int) int {
	if u == 0 {
		return 1
	}
	return 0
}
func (asymTopology) Neighbors(u int) []int {
	if u == 0 {
		return []int{1}
	}
	return nil
}
func (asymTopology) HasEdge(u, v int) bool { return u == 0 && v == 1 }

// TestNewRejectsAsymmetricTopology is the regression test for the old
// behavior of panicking inside New: an asymmetric adjacency must surface as
// an error to the caller.
func TestNewRejectsAsymmetricTopology(t *testing.T) {
	e, err := New[int](asymTopology{}, Config{})
	if err == nil || !strings.Contains(err.Error(), "asymmetric") {
		t.Fatalf("want asymmetric-topology error, got engine=%v err=%v", e, err)
	}
	if e != nil {
		t.Error("New returned a non-nil engine alongside an error")
	}
}

func TestMustNewPanicsOnAsymmetry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on an asymmetric topology")
		}
	}()
	MustNew[int](asymTopology{}, Config{})
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Nodes: 8, Cycles: 4, CommCycles: 3, Messages: 10, MaxOps: 2, TotalOps: 9}
	b := Stats{Nodes: 8, Cycles: 6, CommCycles: 5, Messages: 21, MaxOps: 4, TotalOps: 30}
	got := a.Add(b)
	want := Stats{Nodes: 8, Cycles: 10, CommCycles: 8, Messages: 31, MaxOps: 6, TotalOps: 39}
	if got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
	// Identity on either side.
	if a.Add(Stats{}) != a || (Stats{}).Add(a) != a {
		t.Error("zero Stats is not the identity for Add")
	}
}

// TestStatsAddRejectsMixedMachines is the regression test for the old
// samplesort addStats, which bitwise-ORed the two node counts: combining
// phases from different machine sizes must fail loudly, not corrupt Nodes.
func TestStatsAddRejectsMixedMachines(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add of 8-node and 32-node stats did not panic")
		}
	}()
	// With the old a.Nodes|b.Nodes these would silently combine to 40.
	_ = Stats{Nodes: 8}.Add(Stats{Nodes: 32})
}

func TestBarrierAbortUnblocksWaiters(t *testing.T) {
	b := NewBarrier(2, nil)
	done := make(chan error, 1)
	go func() { done <- b.Wait() }()
	time.Sleep(10 * time.Millisecond)
	b.Abort()
	select {
	case err := <-done:
		if err != ErrAborted {
			t.Errorf("got %v, want ErrAborted", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not unblocked")
	}
	if !b.Aborted() {
		t.Error("Aborted() = false after Abort")
	}
	// Further waits return immediately.
	if err := b.Wait(); err != ErrAborted {
		t.Errorf("post-abort Wait = %v", err)
	}
}

// TestBarrierWaitAbortRace hammers concurrent Wait and Abort under the race
// detector: waiters must either complete a round or observe ErrAborted, and
// nothing may deadlock regardless of how Abort interleaves with arrivals.
func TestBarrierWaitAbortRace(t *testing.T) {
	for iter := 0; iter < 100; iter++ {
		const parties = 4
		b := NewBarrier(parties, nil)
		var wg sync.WaitGroup
		for p := 0; p < parties; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if err := b.Wait(); err != nil {
						if err != ErrAborted {
							t.Errorf("Wait = %v, want ErrAborted", err)
						}
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Abort()
		}()
		wg.Wait()
		if !b.Aborted() {
			t.Fatal("barrier not aborted after Abort returned")
		}
	}
}

func TestBarrierRounds(t *testing.T) {
	const parties, rounds = 8, 50
	count := 0
	b := NewBarrier(parties, func() { count++ })
	done := make(chan struct{})
	for p := 0; p < parties; p++ {
		go func() {
			for r := 0; r < rounds; r++ {
				if err := b.Wait(); err != nil {
					t.Error(err)
					break
				}
			}
			done <- struct{}{}
		}()
	}
	for p := 0; p < parties; p++ {
		<-done
	}
	if count != rounds {
		t.Errorf("leader action ran %d times, want %d", count, rounds)
	}
}

// TestSenseBarrierRounds drives the worker pool's W-party barrier directly
// through many rounds and checks the leader action runs exactly once per
// round.
func TestSenseBarrierRounds(t *testing.T) {
	const parties, rounds = 5, 200
	count := 0
	b := newSenseBarrier(parties, func() { count++ })
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sense uint32
			for r := 0; r < rounds; r++ {
				b.wait(&sense)
			}
		}()
	}
	wg.Wait()
	if count != rounds {
		t.Errorf("leader action ran %d times, want %d", count, rounds)
	}
}

func TestLargeMachineSmoke(t *testing.T) {
	// 2048-node dual-cube: a full cross-edge exchange round.
	d := topology.MustDualCube(6)
	e := MustNew[int](d, Config{})
	st, err := e.Run(func(c *Ctx[int]) {
		c.Exchange(d.CrossNeighbor(c.ID()), c.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 1 || st.Messages != int64(d.Nodes()) {
		t.Errorf("stats = %+v", st)
	}
}

// TestTimeoutScalesWithNodes checks the watchdog default grows with the
// machine instead of staying pinned at the old fixed 60 seconds.
func TestTimeoutScalesWithNodes(t *testing.T) {
	small := Config{}.withDefaults(2)
	big := Config{}.withDefaults(1 << 13)
	if small.Timeout < 60*time.Second {
		t.Errorf("small-machine timeout %v below the 60s base", small.Timeout)
	}
	if big.Timeout <= small.Timeout {
		t.Errorf("timeout does not scale: %v for 2 nodes vs %v for 8192", small.Timeout, big.Timeout)
	}
	explicit := Config{Timeout: 5 * time.Second}.withDefaults(1 << 13)
	if explicit.Timeout != 5*time.Second {
		t.Errorf("explicit timeout overridden: %v", explicit.Timeout)
	}
}
