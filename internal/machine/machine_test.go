package machine

import (
	"strings"
	"testing"
	"time"

	"dualcube/internal/topology"
)

func TestExchangeOnK2(t *testing.T) {
	d := topology.MustDualCube(1) // K_2
	e := New[int](d, Config{})
	got := make([]int, 2)
	st, err := e.Run(func(c *Ctx[int]) {
		got[c.ID()] = c.Exchange(1-c.ID(), c.ID()*10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 || got[1] != 0 {
		t.Errorf("exchange results = %v", got)
	}
	if st.Cycles != 1 || st.CommCycles != 1 || st.Messages != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHypercubeAllDimExchange(t *testing.T) {
	// Every node XORs together the IDs it sees along all dimensions; the
	// result is deterministic and checkable.
	q := 4
	h := topology.MustHypercube(q)
	e := New[int](h, Config{})
	acc := make([]int, h.Nodes())
	st, err := e.Run(func(c *Ctx[int]) {
		sum := 0
		for i := 0; i < q; i++ {
			p := c.ID() ^ 1<<i
			sum += c.Exchange(p, c.ID())
			c.Ops(1)
		}
		acc[c.ID()] = sum
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < h.Nodes(); u++ {
		want := 0
		for i := 0; i < q; i++ {
			want += u ^ 1<<i
		}
		if acc[u] != want {
			t.Errorf("node %d: got %d want %d", u, acc[u], want)
		}
	}
	if st.Cycles != q || st.CommCycles != q {
		t.Errorf("cycles = %d/%d, want %d", st.Cycles, st.CommCycles, q)
	}
	if st.MaxOps != q || st.TotalOps != int64(q*h.Nodes()) {
		t.Errorf("ops = %d/%d", st.MaxOps, st.TotalOps)
	}
	if st.Messages != int64(q*h.Nodes()) {
		t.Errorf("messages = %d", st.Messages)
	}
}

func TestSendRecvHalfDuplex(t *testing.T) {
	h := topology.MustHypercube(1)
	e := New[string](h, Config{})
	var got string
	_, err := e.Run(func(c *Ctx[string]) {
		if c.ID() == 0 {
			c.Send(1, "ping")
		} else {
			got = c.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "ping" {
		t.Errorf("got %q", got)
	}
}

func TestDeferredReceiveFIFO(t *testing.T) {
	// A message sent in cycle 1 may be received in cycle 3; messages on one
	// link arrive in order.
	h := topology.MustHypercube(1)
	e := New[int](h, Config{})
	var first, second int
	_, err := e.Run(func(c *Ctx[int]) {
		if c.ID() == 0 {
			c.Send(1, 11)
			c.Send(1, 22)
			c.Idle()
		} else {
			c.Idle()
			first = c.Recv(0)
			second = c.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 11 || second != 22 {
		t.Errorf("FIFO violated: got %d then %d", first, second)
	}
}

func TestSendRecv2(t *testing.T) {
	// On D_2, node 0 has neighbors 1 (cluster) and 4 (cross). It receives
	// from both in one cycle while sending to one of them.
	d := topology.MustDualCube(2)
	e := New[int](d, Config{})
	var a, b int
	_, err := e.Run(func(c *Ctx[int]) {
		switch c.ID() {
		case 0:
			a, b = c.SendRecv2(1, 100, 1, 4)
		case 1:
			c.Exchange(0, 111)
		case 4:
			c.Send(0, 444)
		default:
			c.Idle()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if a != 111 || b != 444 {
		t.Errorf("SendRecv2 = %d,%d", a, b)
	}
}

func TestIdleCyclesNotCommCycles(t *testing.T) {
	h := topology.MustHypercube(2)
	e := New[int](h, Config{})
	st, err := e.Run(func(c *Ctx[int]) {
		c.Idle()
		c.Exchange(c.ID()^1, 0)
		c.Idle()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 3 || st.CommCycles != 1 {
		t.Errorf("cycles=%d comm=%d, want 3/1", st.Cycles, st.CommCycles)
	}
}

func TestSendToNonNeighborFails(t *testing.T) {
	h := topology.MustHypercube(3)
	e := New[int](h, Config{})
	_, err := e.Run(func(c *Ctx[int]) {
		if c.ID() == 0 {
			c.Send(7, 1) // 0 and 7 differ in 3 bits: not a link
		} else {
			c.Idle()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "not a neighbor") {
		t.Errorf("want non-neighbor error, got %v", err)
	}
}

func TestRecvEmptyLinkFails(t *testing.T) {
	h := topology.MustHypercube(1)
	e := New[int](h, Config{})
	_, err := e.Run(func(c *Ctx[int]) {
		if c.ID() == 0 {
			c.Recv(1) // nothing was sent
		} else {
			c.Idle()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "empty link") {
		t.Errorf("want empty-link error, got %v", err)
	}
}

func TestDuplicateRecvFails(t *testing.T) {
	h := topology.MustHypercube(1)
	e := New[int](h, Config{})
	_, err := e.Run(func(c *Ctx[int]) {
		if c.ID() == 0 {
			c.Recv2(1, 1)
		} else {
			c.Send(0, 1)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate receive") {
		t.Errorf("want duplicate-receive error, got %v", err)
	}
}

func TestUnconsumedMessageDetected(t *testing.T) {
	h := topology.MustHypercube(1)
	e := New[int](h, Config{})
	_, err := e.Run(func(c *Ctx[int]) {
		if c.ID() == 0 {
			c.Send(1, 9)
		} else {
			c.Idle()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "unconsumed") {
		t.Errorf("want unconsumed-message error, got %v", err)
	}
}

func TestLinkOverflowDetected(t *testing.T) {
	h := topology.MustHypercube(1)
	e := New[int](h, Config{LinkCapacity: 2})
	_, err := e.Run(func(c *Ctx[int]) {
		for i := 0; i < 3; i++ {
			if c.ID() == 0 {
				c.Send(1, i)
			} else {
				c.Idle()
			}
		}
	})
	if err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("want overflow error, got %v", err)
	}
}

func TestNodePanicPropagates(t *testing.T) {
	h := topology.MustHypercube(2)
	e := New[int](h, Config{})
	_, err := e.Run(func(c *Ctx[int]) {
		if c.ID() == 2 {
			panic("boom")
		}
		c.Exchange(c.ID()^1, 0)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("want node panic error, got %v", err)
	}
}

func TestWatchdogCatchesDesync(t *testing.T) {
	h := topology.MustHypercube(1)
	e := New[int](h, Config{Timeout: 50 * time.Millisecond})
	_, err := e.Run(func(c *Ctx[int]) {
		if c.ID() == 0 {
			c.Idle()
			c.Idle() // node 1 never joins this cycle
		} else {
			c.Idle()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("want watchdog error, got %v", err)
	}
}

func TestEngineReusableAfterFailure(t *testing.T) {
	h := topology.MustHypercube(1)
	e := New[int](h, Config{})
	_, err := e.Run(func(c *Ctx[int]) {
		if c.ID() == 0 {
			c.Send(1, 9) // left unconsumed -> failure
		} else {
			c.Idle()
		}
	})
	if err == nil {
		t.Fatal("expected failure on first run")
	}
	var got int
	_, err = e.Run(func(c *Ctx[int]) {
		if c.ID() == 0 {
			c.Send(1, 42)
		} else {
			got = c.Recv(0)
		}
	})
	if err != nil {
		t.Fatalf("engine not reusable: %v", err)
	}
	if got != 42 {
		t.Errorf("stale message leaked across runs: got %d", got)
	}
}

func TestEngineReusableStatsReset(t *testing.T) {
	h := topology.MustHypercube(2)
	e := New[int](h, Config{})
	prog := func(c *Ctx[int]) {
		c.Exchange(c.ID()^1, c.ID())
		c.Ops(1)
	}
	st1, err := e.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := e.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Errorf("stats not reset across runs: %+v vs %+v", st1, st2)
	}
}

func TestDeterminism(t *testing.T) {
	// Two identical runs over D_3 must produce identical values and stats.
	d := topology.MustDualCube(3)
	e := New[int](d, Config{})
	run := func() ([]int, Stats) {
		out := make([]int, d.Nodes())
		st, err := e.Run(func(c *Ctx[int]) {
			v := c.ID()
			for i := 0; i < d.ClusterDim(); i++ {
				v += c.Exchange(d.ClusterNeighbor(c.ID(), i), v)
				c.Ops(1)
			}
			v += c.Exchange(d.CrossNeighbor(c.ID()), v)
			c.Ops(1)
			out[c.ID()] = v
		})
		if err != nil {
			t.Fatal(err)
		}
		return out, st
	}
	out1, st1 := run()
	out2, st2 := run()
	if st1 != st2 {
		t.Errorf("stats differ: %+v vs %+v", st1, st2)
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("values differ at node %d", i)
		}
	}
}

func TestBarrierAbortUnblocksWaiters(t *testing.T) {
	b := NewBarrier(2, nil)
	done := make(chan error, 1)
	go func() { done <- b.Wait() }()
	time.Sleep(10 * time.Millisecond)
	b.Abort()
	select {
	case err := <-done:
		if err != ErrAborted {
			t.Errorf("got %v, want ErrAborted", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not unblocked")
	}
	if !b.Aborted() {
		t.Error("Aborted() = false after Abort")
	}
	// Further waits return immediately.
	if err := b.Wait(); err != ErrAborted {
		t.Errorf("post-abort Wait = %v", err)
	}
}

func TestBarrierRounds(t *testing.T) {
	const parties, rounds = 8, 50
	count := 0
	b := NewBarrier(parties, func() { count++ })
	done := make(chan struct{})
	for p := 0; p < parties; p++ {
		go func() {
			for r := 0; r < rounds; r++ {
				if err := b.Wait(); err != nil {
					t.Error(err)
					break
				}
			}
			done <- struct{}{}
		}()
	}
	for p := 0; p < parties; p++ {
		<-done
	}
	if count != rounds {
		t.Errorf("leader action ran %d times, want %d", count, rounds)
	}
}

func TestLargeMachineSmoke(t *testing.T) {
	// 2048-node dual-cube: a full cross-edge exchange round.
	d := topology.MustDualCube(6)
	e := New[int](d, Config{})
	st, err := e.Run(func(c *Ctx[int]) {
		c.Exchange(d.CrossNeighbor(c.ID()), c.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 1 || st.Messages != int64(d.Nodes()) {
		t.Errorf("stats = %+v", st)
	}
}
