package machine

// This file is the zero-alloc payload plane of the v-collectives: the
// variable-payload analogue of Lanes. The old representation shipped
// per-node []item bundles that grew by append on every hop; the plane
// representation keeps every value in ONE flat arena, filled by the host
// before the run, and lets the kernels move only (offset, length)
// descriptors. A collective whose routing is a split/merge of contiguous
// runs (gather, scatter, allgather under the right arena order) moves ZERO
// values during the communication steps; the total-exchange router moves
// int32 element ids through fixed per-node regions by copy. Either way the
// communication payload type is the POD Extent below, so a warm run
// allocates nothing per node or per step.
//
// Parity discipline. Extents ride RunDirect's own double-buffered payload
// arrays, so they need no plane of their own. The route kernels do write
// shared memory a partner reads — the id runs backing a step's sends — and
// those live in two send planes indexed by step parity (step&1), exactly
// like Lanes: the ids produced for step s are read by step s's absorbers
// during pass s+1, while pass s+1's producers (step s+1) write the opposite
// plane, and no node produces step s+2 (the first reuse) before every
// backend's per-cycle barrier has retired step s's absorbs.

// Extent is a contiguous run [Off, Off+Len) of a payload arena — the
// communication payload of the extent-plane collectives. A zero Len is the
// empty bundle.
type Extent struct {
	Off, Len int32
}

// Merge returns the union of two adjacent extents (either order); ok is
// false when the runs are neither empty nor adjacent, in which case a is
// returned unchanged. The binomial collectives only ever union adjacent
// runs — that is the arena-order theorem their layouts encode — so a false
// here is a protocol error the kernel records for the host.
func (a Extent) Merge(b Extent) (Extent, bool) {
	switch {
	case a.Len == 0:
		return b, true
	case b.Len == 0:
		return a, true
	case b.Off == a.Off+a.Len:
		return Extent{Off: a.Off, Len: a.Len + b.Len}, true
	case a.Off == b.Off+b.Len:
		return Extent{Off: b.Off, Len: a.Len + b.Len}, true
	}
	return a, false
}

// Halves splits an extent at its midpoint. The scatter-family splits are
// always midpoint splits: the arena orders destinations so that the key bit
// a step partitions by is the top varying position of the run.
func (a Extent) Halves() (lo, hi Extent) {
	h := a.Len / 2
	return Extent{Off: a.Off, Len: h}, Extent{Off: a.Off + h, Len: a.Len - h}
}

// ExtentPlane is the payload plane of the split/merge collectives (gather,
// scatter, allgather): one value arena of exactly n elements plus per-node
// extent tables. Vals is written by the host before the run and read by the
// host after it; the kernels touch only the int32 tables, each node its own
// slot, so the plane adds no synchronization to the executor's.
type ExtentPlane[T any] struct {
	Vals []T     // the value arena, one slot per node/element (host-filled)
	Off  []int32 // per-node bundle start
	Len  []int32 // per-node bundle length; 0 = empty (the old nil bundle)
	Off2 []int32 // second per-node bundle (allgather's opposite-class plane)
	Len2 []int32
	Bad  []int32 // per-node protocol-failure marker, op-specific encoding; 0 = ok
	tab  []int32 // one backing array for the five tables, cleared by Reset
}

// NewExtentPlane allocates the plane for n nodes: two allocations total.
func NewExtentPlane[T any](n int) *ExtentPlane[T] {
	tab := make([]int32, 5*n)
	return &ExtentPlane[T]{
		Vals: make([]T, n),
		Off:  tab[0*n : 1*n : 1*n],
		Len:  tab[1*n : 2*n : 2*n],
		Off2: tab[2*n : 3*n : 3*n],
		Len2: tab[3*n : 4*n : 4*n],
		Bad:  tab[4*n : 5*n : 5*n],
		tab:  tab,
	}
}

// Nodes returns the node count the plane was allocated for.
func (p *ExtentPlane[T]) Nodes() int { return len(p.Vals) }

// Reset clears the extent tables (one memclr) for reuse. Vals needs no
// clearing — every run overwrites the arena before executing.
func (p *ExtentPlane[T]) Reset() { clear(p.tab) }

// FirstBad returns the lowest node with a recorded protocol failure and its
// marker, or (-1, 0). Kernels record markers into their own node's slot and
// keep walking the schedule; the host formats the error deterministically
// after the run, regardless of worker interleaving.
func (p *ExtentPlane[T]) FirstBad() (node int, marker int32) {
	for u, b := range p.Bad {
		if b != 0 {
			return u, b
		}
	}
	return -1, 0
}

// RoutePlane is the payload plane of the total-exchange router (alltoall,
// alltoallv): element ids — id = srcElem<<logN | dstElem — move through the
// plane while the values stay put in the flat Vals arena the host fills.
// IDs holds each node's kept buffer in a fixed stride-N region; Send is the
// pair of parity planes a step's outgoing runs are copied into (see the
// parity discipline above); VOff is the CSR offset table of alltoallv's
// variable-size bundles, indexed by id (nil for fixed-size alltoall).
type RoutePlane[T any] struct {
	Stride int        // per-node region capacity = N
	IDs    []int32    // kept ids: node u's buffer is IDs[u*Stride : u*Stride+Cnt[u]]
	Send   [2][]int32 // step&1 parity planes for outgoing runs, same geometry
	Cnt    []int32    // per-node kept count
	Bad    []int32    // per-node failure marker: id+1 = stranded id, -1 = overflow
	Vals   []T        // flat value arena, host-filled, never moved by the kernel
	VOff   []int32    // CSR value offsets per id (alltoallv); nil = one value per id
	tab    []int32    // Cnt+Bad backing, cleared by Reset
}

// NewRoutePlane allocates the id planes for n nodes (stride n). The value
// arena starts empty; hosts size it per run with GrowVals/GrowVOff, which
// allocate only when the retained capacity is too small.
func NewRoutePlane[T any](n int) *RoutePlane[T] {
	ids := make([]int32, 3*n*n)
	tab := make([]int32, 2*n)
	return &RoutePlane[T]{
		Stride: n,
		IDs:    ids[0 : n*n : n*n],
		Send:   [2][]int32{ids[n*n : 2*n*n : 2*n*n], ids[2*n*n:]},
		Cnt:    tab[0:n:n],
		Bad:    tab[n:],
		tab:    tab,
	}
}

// Nodes returns the node count the plane was allocated for.
func (p *RoutePlane[T]) Nodes() int { return p.Stride }

// Reset clears the per-node counters and markers for reuse. The id regions
// need no clearing — a run writes before it reads.
func (p *RoutePlane[T]) Reset() { clear(p.tab) }

// GrowVals sizes the value arena to exactly need elements, reusing the
// retained backing when it is large enough (the warm path) and clearing
// nothing — callers overwrite every slot they declared.
func (p *RoutePlane[T]) GrowVals(need int) []T {
	if cap(p.Vals) < need {
		p.Vals = make([]T, need)
	}
	p.Vals = p.Vals[:need]
	return p.Vals
}

// GrowVOff sizes the CSR offset table to exactly need entries, reusing the
// retained backing when possible.
func (p *RoutePlane[T]) GrowVOff(need int) []int32 {
	if cap(p.VOff) < need {
		p.VOff = make([]int32, need)
	}
	p.VOff = p.VOff[:need]
	return p.VOff
}

// FirstBad returns the lowest node with a recorded routing failure and its
// marker, or (-1, 0).
func (p *RoutePlane[T]) FirstBad() (node int, marker int32) {
	for u, b := range p.Bad {
		if b != 0 {
			return u, b
		}
	}
	return -1, 0
}
