// Package seq provides the sequential golden models the parallel
// implementations are verified against: scans (prefix computations),
// sortedness and bitonicity predicates, and multiset comparison. Everything
// here is deliberately simple and obviously correct.
package seq

import (
	"sort"

	"dualcube/internal/monoid"
)

// ScanInclusive returns the inclusive prefix combination of in:
// out[i] = in[0] ⊕ in[1] ⊕ ... ⊕ in[i], combined strictly left to right.
func ScanInclusive[T any](in []T, m monoid.Monoid[T]) []T {
	out := make([]T, len(in))
	acc := m.Identity()
	for i, v := range in {
		acc = m.Combine(acc, v)
		out[i] = acc
	}
	return out
}

// ScanExclusive returns the diminished (exclusive) prefix combination:
// out[i] = in[0] ⊕ ... ⊕ in[i-1], with out[0] the identity.
func ScanExclusive[T any](in []T, m monoid.Monoid[T]) []T {
	out := make([]T, len(in))
	acc := m.Identity()
	for i, v := range in {
		out[i] = acc
		acc = m.Combine(acc, v)
	}
	return out
}

// SegmentedScanInclusive returns the inclusive segmented prefix of values:
// heads[i] = true starts a new segment at position i (position 0 always
// starts one); out[i] combines the values from its segment's start
// through i, strictly left to right.
func SegmentedScanInclusive[T any](values []T, heads []bool, m monoid.Monoid[T]) []T {
	out := make([]T, len(values))
	acc := m.Identity()
	for i, v := range values {
		if i == 0 || heads[i] {
			acc = v
		} else {
			acc = m.Combine(acc, v)
		}
		out[i] = acc
	}
	return out
}

// Reduce returns in[0] ⊕ ... ⊕ in[len-1] (identity for empty input).
func Reduce[T any](in []T, m monoid.Monoid[T]) T {
	acc := m.Identity()
	for _, v := range in {
		acc = m.Combine(acc, v)
	}
	return acc
}

// IsSorted reports whether a is nondecreasing under less.
func IsSorted[T any](a []T, less func(x, y T) bool) bool {
	for i := 1; i < len(a); i++ {
		if less(a[i], a[i-1]) {
			return false
		}
	}
	return true
}

// IsSortedDesc reports whether a is nonincreasing under less.
func IsSortedDesc[T any](a []T, less func(x, y T) bool) bool {
	for i := 1; i < len(a); i++ {
		if less(a[i-1], a[i]) {
			return false
		}
	}
	return true
}

// IsBitonic reports whether a is a bitonic sequence in the paper's sense:
// it rises then falls, falls then rises, or is a cyclic rotation of such a
// sequence. Equivalently, some rotation of a is nondecreasing then
// nonincreasing.
func IsBitonic[T any](a []T, less func(x, y T) bool) bool {
	n := len(a)
	if n <= 2 {
		return true
	}
	// Count the direction changes around the cycle, ignoring plateaus. A
	// sequence is bitonic iff there are at most two strict direction
	// changes cyclically.
	changes := 0
	prevDir := 0 // +1 rising, -1 falling
	for i := 0; i < n; i++ {
		x, y := a[i], a[(i+1)%n]
		var dir int
		switch {
		case less(x, y):
			dir = 1
		case less(y, x):
			dir = -1
		default:
			continue
		}
		if prevDir != 0 && dir != prevDir {
			changes++
		}
		prevDir = dir
	}
	// Close the cycle: compare last direction with the first one again is
	// already handled by the modular scan above; a monotone-with-plateaus
	// cycle of distinct values has 2 changes, constant has 0.
	return changes <= 2
}

// SameMultiset reports whether a and b contain the same elements with the
// same multiplicities, using less as a strict weak order.
func SameMultiset[T any](a, b []T, less func(x, y T) bool) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]T(nil), a...)
	bs := append([]T(nil), b...)
	sort.SliceStable(as, func(i, j int) bool { return less(as[i], as[j]) })
	sort.SliceStable(bs, func(i, j int) bool { return less(bs[i], bs[j]) })
	for i := range as {
		if less(as[i], bs[i]) || less(bs[i], as[i]) {
			return false
		}
	}
	return true
}

// Sorted returns a sorted copy of a under less (the reference answer for
// the sorting experiments).
func Sorted[T any](a []T, less func(x, y T) bool) []T {
	out := append([]T(nil), a...)
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// Reversed returns a reversed copy of a.
func Reversed[T any](a []T) []T {
	out := make([]T, len(a))
	for i, v := range a {
		out[len(a)-1-i] = v
	}
	return out
}
