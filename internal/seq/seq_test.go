package seq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dualcube/internal/monoid"
)

func intLess(a, b int) bool { return a < b }

func TestScanInclusive(t *testing.T) {
	got := ScanInclusive([]int{1, 2, 3, 4}, monoid.Sum[int]())
	want := []int{1, 3, 6, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanInclusive = %v", got)
		}
	}
	if len(ScanInclusive(nil, monoid.Sum[int]())) != 0 {
		t.Error("empty scan should be empty")
	}
}

func TestScanExclusive(t *testing.T) {
	got := ScanExclusive([]int{1, 2, 3, 4}, monoid.Sum[int]())
	want := []int{0, 1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanExclusive = %v", got)
		}
	}
}

func TestScanConcatOrder(t *testing.T) {
	got := ScanInclusive([]string{"a", "b", "c"}, monoid.Concat())
	if got[2] != "abc" {
		t.Errorf("concat scan order broken: %v", got)
	}
	ex := ScanExclusive([]string{"a", "b", "c"}, monoid.Concat())
	if ex[0] != "" || ex[2] != "ab" {
		t.Errorf("exclusive concat scan: %v", ex)
	}
}

func TestReduce(t *testing.T) {
	if Reduce([]int{5, 7, 9}, monoid.Sum[int]()) != 21 {
		t.Error("reduce sum")
	}
	if Reduce(nil, monoid.Sum[int]()) != 0 {
		t.Error("reduce empty should be identity")
	}
	if Reduce([]string{"x", "y"}, monoid.Concat()) != "xy" {
		t.Error("reduce concat")
	}
}

func TestScanExclusiveShiftProperty(t *testing.T) {
	// Exclusive scan is the inclusive scan shifted right by one.
	f := func(in []int16) bool {
		xs := make([]int, len(in))
		for i, v := range in {
			xs[i] = int(v)
		}
		m := monoid.Sum[int]()
		inc := ScanInclusive(xs, m)
		exc := ScanExclusive(xs, m)
		for i := range xs {
			want := 0
			if i > 0 {
				want = inc[i-1]
			}
			if exc[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int{1, 1, 2, 3}, intLess) {
		t.Error("sorted slice reported unsorted")
	}
	if IsSorted([]int{2, 1}, intLess) {
		t.Error("unsorted slice reported sorted")
	}
	if !IsSortedDesc([]int{3, 2, 2, 1}, intLess) {
		t.Error("descending slice reported unsorted")
	}
	if IsSortedDesc([]int{1, 2}, intLess) {
		t.Error("ascending slice reported descending")
	}
	if !IsSorted([]int{}, intLess) || !IsSortedDesc([]int{7}, intLess) {
		t.Error("trivial slices should be sorted both ways")
	}
}

func TestIsBitonic(t *testing.T) {
	cases := []struct {
		in   []int
		want bool
	}{
		{[]int{}, true},
		{[]int{1}, true},
		{[]int{1, 2}, true},
		{[]int{1, 3, 2}, true},           // rise then fall
		{[]int{3, 1, 2}, true},           // fall then rise
		{[]int{2, 3, 1}, true},           // rotation of rise-fall
		{[]int{1, 2, 3, 4}, true},        // monotone
		{[]int{4, 3, 2, 1}, true},        // monotone desc
		{[]int{5, 5, 5}, true},           // constant
		{[]int{1, 3, 2, 4}, false},       // two peaks
		{[]int{1, 5, 2, 6, 3}, false},    // zigzag
		{[]int{0, 4, 1, 1, 4, 0}, false}, /* valley then peak then valley cyclically? 0,4,1,1,4,0 -> up,down,flat,up,down: cyclic changes: u,d,u,d = 3+ */
	}
	for _, c := range cases {
		if got := IsBitonic(c.in, intLess); got != c.want {
			t.Errorf("IsBitonic(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsBitonicRotationClosure(t *testing.T) {
	// Property: bitonicity is invariant under rotation.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		a := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(6)
		}
		base := IsBitonic(a, intLess)
		for rot := 1; rot < n; rot++ {
			b := append(append([]int{}, a[rot:]...), a[:rot]...)
			if IsBitonic(b, intLess) != base {
				t.Fatalf("rotation changed bitonicity: %v vs %v", a, b)
			}
		}
	}
}

func TestIsBitonicSortedConcatenation(t *testing.T) {
	// An ascending run followed by a descending run is always bitonic —
	// the invariant D_sort's first merge phase relies on.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		a := make([]int, 1+rng.Intn(10))
		b := make([]int, 1+rng.Intn(10))
		for i := range a {
			a[i] = rng.Intn(100)
		}
		for i := range b {
			b[i] = rng.Intn(100)
		}
		s := append(Sorted(a, intLess), Reversed(Sorted(b, intLess))...)
		if !IsBitonic(s, intLess) {
			t.Fatalf("asc++desc not bitonic: %v", s)
		}
	}
}

func TestSameMultiset(t *testing.T) {
	if !SameMultiset([]int{3, 1, 2, 1}, []int{1, 1, 2, 3}, intLess) {
		t.Error("permutations should match")
	}
	if SameMultiset([]int{1, 2}, []int{1, 1}, intLess) {
		t.Error("different multisets should not match")
	}
	if SameMultiset([]int{1}, []int{1, 1}, intLess) {
		t.Error("different lengths should not match")
	}
	if !SameMultiset([]int{}, []int{}, intLess) {
		t.Error("empty multisets should match")
	}
}

func TestSortedAndReversed(t *testing.T) {
	in := []int{3, 1, 2}
	s := Sorted(in, intLess)
	if !IsSorted(s, intLess) || !SameMultiset(in, s, intLess) {
		t.Errorf("Sorted(%v) = %v", in, s)
	}
	if in[0] != 3 {
		t.Error("Sorted must not mutate its input")
	}
	r := Reversed(s)
	if !IsSortedDesc(r, intLess) {
		t.Errorf("Reversed(%v) = %v", s, r)
	}
}

func TestSegmentedScanInclusive(t *testing.T) {
	values := []int{1, 2, 3, 4, 5}
	heads := []bool{false, false, true, false, true}
	got := SegmentedScanInclusive(values, heads, monoid.Sum[int]())
	want := []int{1, 3, 3, 7, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segmented scan = %v, want %v", got, want)
		}
	}
	if len(SegmentedScanInclusive(nil, nil, monoid.Sum[int]())) != 0 {
		t.Error("empty segmented scan should be empty")
	}
	// head at position 0 behaves the same as no head there.
	h2 := []bool{true, false, true, false, true}
	got2 := SegmentedScanInclusive(values, h2, monoid.Sum[int]())
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("head-at-0 segmented scan = %v", got2)
		}
	}
}
