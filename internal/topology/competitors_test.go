package topology

import "testing"

func TestCCCBasics(t *testing.T) {
	for k := 3; k <= 6; k++ {
		c := MustCCC(k)
		if c.Nodes() != k<<k {
			t.Fatalf("CCC_%d nodes = %d", k, c.Nodes())
		}
		if deg, ok := IsRegular(c); !ok || deg != 3 {
			t.Fatalf("CCC_%d degree=%d regular=%v", k, deg, ok)
		}
		if err := CheckSymmetric(c); err != nil {
			t.Fatal(err)
		}
		if !IsConnected(c) {
			t.Fatalf("CCC_%d disconnected", k)
		}
	}
	if _, err := NewCCC(2); err == nil {
		t.Error("NewCCC(2) should fail")
	}
	if _, err := NewCCC(25); err == nil {
		t.Error("NewCCC(25) should fail")
	}
}

func TestCCCStructure(t *testing.T) {
	c := MustCCC(3)
	// Node (p=0, v=0) = 0: cycle neighbors (1,0)=1, (2,0)=2; cube neighbor (0,1)=3.
	ns := c.Neighbors(0)
	want := []int{1, 2, 3}
	if len(ns) != 3 || ns[0] != want[0] || ns[1] != want[1] || ns[2] != want[2] {
		t.Fatalf("CCC_3 neighbors(0) = %v, want %v", ns, want)
	}
	if !c.HasEdge(0, 3) || c.HasEdge(0, 4) {
		t.Error("CCC_3 cube-edge structure wrong")
	}
}

func TestDeBruijnBasics(t *testing.T) {
	for q := 2; q <= 8; q++ {
		d := MustDeBruijn(q)
		if d.Nodes() != 1<<q {
			t.Fatalf("DB_%d nodes", q)
		}
		if err := CheckSymmetric(d); err != nil {
			t.Fatal(err)
		}
		if !IsConnected(d) {
			t.Fatalf("DB_%d disconnected", q)
		}
		for u := 0; u < d.Nodes(); u++ {
			if d.Degree(u) > 4 {
				t.Fatalf("DB_%d degree(%d)=%d > 4", q, u, d.Degree(u))
			}
		}
		// Diameter of the undirected binary de Bruijn graph is at most q.
		if diam := DiameterBFS(d); diam > q {
			t.Fatalf("DB_%d diameter %d > %d", q, diam, q)
		}
	}
	if _, err := NewDeBruijn(0); err == nil {
		t.Error("NewDeBruijn(0) should fail")
	}
}

func TestShuffleExchangeBasics(t *testing.T) {
	for q := 2; q <= 8; q++ {
		s := MustShuffleExchange(q)
		if s.Nodes() != 1<<q {
			t.Fatalf("SE_%d nodes", q)
		}
		if err := CheckSymmetric(s); err != nil {
			t.Fatal(err)
		}
		if !IsConnected(s) {
			t.Fatalf("SE_%d disconnected", q)
		}
		for u := 0; u < s.Nodes(); u++ {
			if s.Degree(u) > 3 {
				t.Fatalf("SE_%d degree(%d)=%d > 3", q, u, s.Degree(u))
			}
		}
	}
	if _, err := NewShuffleExchange(0); err == nil {
		t.Error("NewShuffleExchange(0) should fail")
	}
}

func TestCompetitorMustConstructorsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"CCC":             func() { MustCCC(1) },
		"DeBruijn":        func() { MustDeBruijn(0) },
		"ShuffleExchange": func() { MustShuffleExchange(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s Must constructor should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAnalyze(t *testing.T) {
	st := Analyze(MustDualCube(2))
	if st.Name != "D_2" || st.Nodes != 8 || st.Edges != 8 || st.Degree != 2 || !st.Regular || st.Diameter != 4 {
		t.Errorf("Analyze(D_2) = %+v", st)
	}
	if st.AvgDist <= 0 {
		t.Errorf("Analyze(D_2) avg distance = %v", st.AvgDist)
	}
	// Non-regular example: de Bruijn.
	db := Analyze(MustDeBruijn(3))
	if db.Regular {
		t.Error("DB_3 should not be regular (self-loop nodes have lower degree)")
	}
}

func TestGraphErrorMessage(t *testing.T) {
	e := &GraphError{Op: "Check", U: 3, V: -1, Msg: "bad"}
	if e.Error() != "Check: bad (u=3, v=-1)" {
		t.Errorf("GraphError format: %q", e.Error())
	}
	if itoa(0) != "0" || itoa(-12) != "-12" || itoa(907) != "907" {
		t.Error("itoa broken")
	}
}

func TestButterflyBasics(t *testing.T) {
	for k := 3; k <= 6; k++ {
		b := MustButterfly(k)
		if b.Nodes() != k<<k {
			t.Fatalf("WBF_%d nodes = %d", k, b.Nodes())
		}
		if deg, ok := IsRegular(b); !ok || deg != 4 {
			t.Fatalf("WBF_%d degree=%d regular=%v", k, deg, ok)
		}
		if err := CheckSymmetric(b); err != nil {
			t.Fatal(err)
		}
		if !IsConnected(b) {
			t.Fatalf("WBF_%d disconnected", k)
		}
		// Diameter of the wrapped butterfly is known to be floor(3k/2).
		if diam := DiameterBFS(b); diam != 3*k/2 {
			t.Errorf("WBF_%d diameter = %d, want %d", k, diam, 3*k/2)
		}
	}
	if _, err := NewButterfly(2); err == nil {
		t.Error("NewButterfly(2) should fail")
	}
	if _, err := NewButterfly(99); err == nil {
		t.Error("NewButterfly(99) should fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustButterfly(1) should panic")
			}
		}()
		MustButterfly(1)
	}()
}

func TestButterflyStructure(t *testing.T) {
	b := MustButterfly(3)
	// Node (level 0, row 0) = 0: straight to (1,0)=1, cross to (1,1)=3+?,
	// id(1, row 1) = 1*? -> row*k+level = 1*3+1 = 4; prev level (2,0)=2 and
	// (2, 0^4)=4*3+2=14.
	ns := b.Neighbors(0)
	want := []int{1, 2, 4, 14}
	if len(ns) != 4 {
		t.Fatalf("neighbors(0) = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("WBF_3 neighbors(0) = %v, want %v", ns, want)
		}
	}
}
