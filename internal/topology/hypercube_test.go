package topology

import (
	"testing"
	"testing/quick"
)

func TestHypercubeBasics(t *testing.T) {
	for q := 0; q <= 8; q++ {
		h := MustHypercube(q)
		if h.Nodes() != 1<<q {
			t.Fatalf("Q_%d nodes = %d", q, h.Nodes())
		}
		if deg, ok := IsRegular(h); !ok || deg != q {
			t.Fatalf("Q_%d degree = %d regular=%v", q, deg, ok)
		}
		if got, want := EdgeCount(h), q*(1<<q)/2; got != want {
			t.Fatalf("Q_%d edges = %d, want %d", q, got, want)
		}
		if err := CheckSymmetric(h); err != nil {
			t.Fatal(err)
		}
		if !IsConnected(h) {
			t.Fatalf("Q_%d disconnected", q)
		}
	}
	if _, err := NewHypercube(-1); err == nil {
		t.Error("NewHypercube(-1) should fail")
	}
	if _, err := NewHypercube(MaxHypercubeDim + 1); err == nil {
		t.Error("oversized hypercube should fail")
	}
}

func TestHypercubeDistanceDiameter(t *testing.T) {
	for q := 0; q <= 6; q++ {
		h := MustHypercube(q)
		if got := DiameterBFS(h); got != q {
			t.Fatalf("Q_%d diameter = %d", q, got)
		}
		for u := 0; u < h.Nodes(); u++ {
			dist := BFSDistances(h, u)
			for v := 0; v < h.Nodes(); v++ {
				if h.Distance(u, v) != dist[v] {
					t.Fatalf("Q_%d: Distance(%d,%d)", q, u, v)
				}
			}
		}
	}
}

func TestHypercubeRoute(t *testing.T) {
	h := MustHypercube(5)
	for u := 0; u < h.Nodes(); u++ {
		for v := 0; v < h.Nodes(); v++ {
			path := h.Route(u, v)
			if path[0] != u || path[len(path)-1] != v || len(path)-1 != h.Distance(u, v) {
				t.Fatalf("Route(%d,%d) = %v", u, v, path)
			}
			for i := 1; i < len(path); i++ {
				if !h.HasEdge(path[i-1], path[i]) {
					t.Fatalf("Route(%d,%d) non-edge hop", u, v)
				}
			}
		}
	}
}

func TestMustHypercubePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustHypercube(-1) should panic")
		}
	}()
	MustHypercube(-1)
}

func TestHypercubeQuick(t *testing.T) {
	f := func(qSeed uint8, a, b uint16) bool {
		q := int(qSeed)%9 + 1
		h := MustHypercube(q)
		u := int(a) % h.Nodes()
		v := int(b) % h.Nodes()
		// Distance is a metric consistent with adjacency.
		if h.Distance(u, v) != h.Distance(v, u) {
			return false
		}
		if (h.Distance(u, v) == 1) != h.HasEdge(u, v) {
			return false
		}
		return h.Distance(u, v) <= q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
