// Package topology defines the interconnection networks used throughout the
// reproduction of "Prefix Computation and Sorting in Dual-Cube" (Li, Peng,
// Chu; ICPP 2008): the dual-cube itself, the hypercube it is derived from,
// and the bounded-degree competitor networks the paper's introduction
// compares against (cube-connected cycles, de Bruijn, shuffle-exchange).
//
// All networks are undirected, connected, and presented as static graphs on
// the node set {0, ..., Nodes()-1}. The package also provides the graph
// analysis used by the experiment harness (BFS distances, diameter, average
// distance, regularity and symmetry checks) and the dual-cube-specific
// machinery the paper's algorithms rely on: class/cluster addressing, the
// point-to-point distance formula and routing, and the recursive (bit
// interleaved) presentation of Section 4.
package topology

// NodeID identifies a node of a network. Node IDs are dense: a network with
// N nodes uses exactly the IDs 0..N-1.
type NodeID = int

// Topology is the minimal interface every interconnection network
// implements. Implementations must describe a simple undirected graph:
// Neighbors never reports self-loops or duplicates, and u ∈ Neighbors(v)
// if and only if v ∈ Neighbors(u).
type Topology interface {
	// Name returns a short human-readable identifier such as "D_3" or "Q_5".
	Name() string
	// Nodes returns the number of nodes N. Valid node IDs are 0..N-1.
	Nodes() int
	// Degree returns the number of neighbors of u.
	Degree(u NodeID) int
	// Neighbors returns the neighbors of u in ascending order. The returned
	// slice is freshly allocated and may be retained by the caller.
	Neighbors(u NodeID) []NodeID
	// HasEdge reports whether {u, v} is an edge.
	HasEdge(u, v NodeID) bool
}

// EdgeCount returns the number of undirected edges of t.
func EdgeCount(t Topology) int {
	total := 0
	for u := 0; u < t.Nodes(); u++ {
		total += t.Degree(u)
	}
	return total / 2
}

// IsRegular reports whether every node of t has the same degree, and if so,
// that degree.
func IsRegular(t Topology) (degree int, ok bool) {
	n := t.Nodes()
	if n == 0 {
		return 0, true
	}
	degree = t.Degree(0)
	for u := 1; u < n; u++ {
		if t.Degree(u) != degree {
			return degree, false
		}
	}
	return degree, true
}

// CheckSymmetric verifies that the adjacency relation of t is symmetric and
// irreflexive (no self-loops) and that Neighbors is duplicate-free. It
// returns a non-nil error describing the first violation found.
func CheckSymmetric(t Topology) error {
	n := t.Nodes()
	for u := 0; u < n; u++ {
		seen := make(map[NodeID]bool, t.Degree(u))
		for _, v := range t.Neighbors(u) {
			if v == u {
				return &GraphError{Op: "CheckSymmetric", U: u, V: v, Msg: "self-loop"}
			}
			if v < 0 || v >= n {
				return &GraphError{Op: "CheckSymmetric", U: u, V: v, Msg: "neighbor out of range"}
			}
			if seen[v] {
				return &GraphError{Op: "CheckSymmetric", U: u, V: v, Msg: "duplicate neighbor"}
			}
			seen[v] = true
			if !t.HasEdge(v, u) {
				return &GraphError{Op: "CheckSymmetric", U: u, V: v, Msg: "asymmetric edge"}
			}
		}
	}
	return nil
}

// GraphError describes a structural violation found by a topology check.
type GraphError struct {
	Op  string // the check that failed
	U   NodeID // first node involved
	V   NodeID // second node involved (or -1)
	Msg string // description of the violation
}

func (e *GraphError) Error() string {
	return e.Op + ": " + e.Msg + " (u=" + itoa(e.U) + ", v=" + itoa(e.V) + ")"
}

// itoa is a minimal integer formatter so the error path has no fmt
// dependency (this package sits under everything else).
func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	neg := x < 0
	if neg {
		x = -x
	}
	var buf [20]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// popcount returns the number of set bits of x. Node addresses are small
// (< 2^31) so a simple loop suffices; math/bits is avoided only to keep the
// arithmetic transparent next to the paper's Hamming-distance definitions.
func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// Popcount is the exported Hamming-weight helper used by tests and tools.
func Popcount(x int) int { return popcount(x) }
