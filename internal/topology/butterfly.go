package topology

import "fmt"

// Butterfly is the k-dimensional wrapped butterfly network WBF_k: k levels
// of 2^k rows; node (level, row) connects to (level+1 mod k, row) by a
// straight edge and to (level+1 mod k, row ^ 2^level) by a cross edge.
// 4-regular for k >= 3 (k = 1, 2 degenerate into multigraphs and are
// rejected). Together with CCC, de Bruijn and shuffle-exchange it completes
// the bounded-degree comparison set of the paper's introduction.
type Butterfly struct {
	k int
}

// NewButterfly returns WBF_k for k in [3, 24].
func NewButterfly(k int) (*Butterfly, error) {
	if k < 3 || k > 24 {
		return nil, fmt.Errorf("topology: butterfly order %d out of range [3,24]", k)
	}
	return &Butterfly{k: k}, nil
}

// MustButterfly is NewButterfly but panics on an invalid order.
func MustButterfly(k int) *Butterfly {
	b, err := NewButterfly(k)
	if err != nil {
		panic(err)
	}
	return b
}

// Dim returns k.
func (b *Butterfly) Dim() int { return b.k }

// Name implements Topology.
func (b *Butterfly) Name() string { return "WBF_" + itoa(b.k) }

// Nodes implements Topology: k * 2^k.
func (b *Butterfly) Nodes() int { return b.k << b.k }

// id packs (level, row) as row*k + level.
func (b *Butterfly) id(level, row int) NodeID { return row*b.k + level }

// unpack splits an ID into level and row.
func (b *Butterfly) unpack(u NodeID) (level, row int) { return u % b.k, u / b.k }

// Degree implements Topology: WBF_k is 4-regular for k >= 3.
func (b *Butterfly) Degree(u NodeID) int { return 4 }

// Neighbors implements Topology: the straight and cross edges to the next
// and previous levels.
func (b *Butterfly) Neighbors(u NodeID) []NodeID {
	level, row := b.unpack(u)
	next := (level + 1) % b.k
	prev := (level + b.k - 1) % b.k
	ns := []NodeID{
		b.id(next, row),
		b.id(next, row^1<<level),
		b.id(prev, row),
		b.id(prev, row^1<<prev),
	}
	sortIDs(ns)
	return ns
}

// HasEdge implements Topology.
func (b *Butterfly) HasEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || u >= b.Nodes() || v >= b.Nodes() || u == v {
		return false
	}
	for _, w := range b.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}
