package topology

// Recursive presentation of the dual-cube (Section 4 of the paper).
//
// D_n can be relabelled so that it decomposes into four copies of D_{n-1}
// distinguished by the leftmost two bits of the new ID. Writing a node's
// original address as (c, A, B) — class bit c, part II A, part I B — the
// recursive ID interleaves the two fields around the class bit:
//
//	rec = c  |  A_0·2^1 | B_0·2^2  |  A_1·2^3 | B_1·2^4  |  ...
//
// i.e. bit 0 of rec is the class, bit 2k+1 is A_k, bit 2k+2 is B_k. Under
// this relabelling the link structure becomes dimension-oriented:
//
//   - flipping rec bit 0 is always the cross-edge;
//   - flipping rec bit 2k+2 (an even dimension) is a direct link iff the
//     class bit is 0 (these are the class-0 intra-cluster links);
//   - flipping rec bit 2k+1 (an odd dimension) is a direct link iff the
//     class bit is 1.
//
// This matches the paper's Section 6 observation: for a pair of class-0
// nodes differing only at bit i > 0 "there is a link between u and v if and
// only if i is an even number". A pair with the wrong parity is connected
// by the canonical three-hop path u → ū_0 → (ū_0)_i → ū_i that uses the
// cross-edges twice.
//
// Fixing the two leftmost rec bits (positions 2n-2 and 2n-3) leaves exactly
// the interleaved ID of a D_{n-1}, giving the four sub-dual-cubes of the
// recursive construction (Figure 4).

// ToRecursive converts an original node address to its recursive
// (interleaved) ID.
func (d *DualCube) ToRecursive(u NodeID) NodeID {
	c := d.Class(u)
	a := d.field1(u)
	b := d.field0(u)
	r := c
	for k := 0; k < d.m; k++ {
		r |= (a >> k & 1) << (2*k + 1)
		r |= (b >> k & 1) << (2*k + 2)
	}
	return r
}

// FromRecursive converts a recursive (interleaved) ID back to the original
// node address. It is the inverse of ToRecursive.
func (d *DualCube) FromRecursive(r NodeID) NodeID {
	c := r & 1
	a, b := 0, 0
	for k := 0; k < d.m; k++ {
		a |= (r >> (2*k + 1) & 1) << k
		b |= (r >> (2*k + 2) & 1) << k
	}
	return c<<d.classBit() | a<<d.m | b
}

// RecDims returns the number of recursive dimensions, 2n-1 (dimensions
// 0..2n-2; dimension j flips rec bit j).
func (d *DualCube) RecDims() int { return 2*d.n - 1 }

// RecDirect reports whether the pair {r, r^2^j} of recursive IDs is joined
// by a direct link of D_n: always for j = 0 (the cross-edge), and for j > 0
// exactly when the parity of j matches the class bit r&1 (even dimensions
// are direct in class 0, odd dimensions in class 1).
func (d *DualCube) RecDirect(r NodeID, j int) bool {
	if j == 0 {
		return true
	}
	if r&1 == 0 {
		return j%2 == 0
	}
	return j%2 == 1
}

// RecRoute returns the path (in recursive IDs, inclusive of endpoints) used
// for a dimension-j transfer from r to r^2^j: the direct edge when
// RecDirect, otherwise the three-hop detour through the cross neighbors,
// r → r^1 → r^1^2^j → r^2^j.
func (d *DualCube) RecRoute(r NodeID, j int) []NodeID {
	if d.RecDirect(r, j) {
		return []NodeID{r, r ^ 1<<j}
	}
	return []NodeID{r, r ^ 1, r ^ 1 ^ 1<<j, r ^ 1<<j}
}

// RecSubCube returns which of the four D_{n-1} sub-dual-cubes (0..3, the
// two leftmost recursive bits) the recursive ID r belongs to. Only defined
// for n >= 2.
func (d *DualCube) RecSubCube(r NodeID) int {
	return r >> (2*d.n - 3) & 3
}
