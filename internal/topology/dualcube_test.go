package topology

import (
	"math/rand"
	"testing"
)

func TestNewDualCubeBounds(t *testing.T) {
	if _, err := NewDualCube(0); err == nil {
		t.Error("NewDualCube(0) should fail")
	}
	if _, err := NewDualCube(-3); err == nil {
		t.Error("NewDualCube(-3) should fail")
	}
	if _, err := NewDualCube(MaxDualCubeOrder + 1); err == nil {
		t.Error("NewDualCube(MaxDualCubeOrder+1) should fail")
	}
	for n := 1; n <= 6; n++ {
		d, err := NewDualCube(n)
		if err != nil {
			t.Fatalf("NewDualCube(%d): %v", n, err)
		}
		if got, want := d.Nodes(), 1<<(2*n-1); got != want {
			t.Errorf("D_%d Nodes = %d, want %d", n, got, want)
		}
	}
}

func TestMustDualCubePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDualCube(0) should panic")
		}
	}()
	MustDualCube(0)
}

func TestDualCubeBasicCounts(t *testing.T) {
	for n := 1; n <= 6; n++ {
		d := MustDualCube(n)
		if deg, ok := IsRegular(d); !ok || deg != n {
			t.Errorf("D_%d: regular=%v degree=%d, want regular degree %d", n, ok, deg, n)
		}
		// Every node has n links, so |E| = N*n/2.
		if got, want := EdgeCount(d), d.Nodes()*n/2; got != want {
			t.Errorf("D_%d: edges=%d, want %d", n, got, want)
		}
		if err := CheckSymmetric(d); err != nil {
			t.Errorf("D_%d: %v", n, err)
		}
		if !IsConnected(d) {
			t.Errorf("D_%d: not connected", n)
		}
	}
}

func TestDualCubeAddressing(t *testing.T) {
	for n := 1; n <= 6; n++ {
		d := MustDualCube(n)
		for u := 0; u < d.Nodes(); u++ {
			c, cl, lo := d.Class(u), d.ClusterID(u), d.LocalID(u)
			if c != 0 && c != 1 {
				t.Fatalf("D_%d node %d: class=%d", n, u, c)
			}
			if back := d.NodeAt(c, cl, lo); back != u {
				t.Fatalf("D_%d: NodeAt(Class,Cluster,Local) of %d = %d", n, u, back)
			}
		}
	}
}

func TestDualCubeClusterStructure(t *testing.T) {
	// Each cluster must induce an (n-1)-cube: 2^(n-1) nodes, each pair
	// adjacent iff local IDs differ in one bit; and no edges between
	// clusters of the same class.
	for n := 2; n <= 5; n++ {
		d := MustDualCube(n)
		for class := 0; class <= 1; class++ {
			for cl := 0; cl < d.ClustersPerClass(); cl++ {
				members := d.ClusterMembers(class, cl)
				if len(members) != d.ClusterSize() {
					t.Fatalf("D_%d cluster (%d,%d): %d members", n, class, cl, len(members))
				}
				for i, u := range members {
					if d.Class(u) != class || d.ClusterID(u) != cl || d.LocalID(u) != i {
						t.Fatalf("D_%d: member %d of cluster (%d,%d) misaddressed", n, u, class, cl)
					}
					for j, v := range members {
						want := Popcount(i^j) == 1
						if got := d.HasEdge(u, v); got != want {
							t.Fatalf("D_%d: intra-cluster edge (%d,%d) = %v, want %v", n, u, v, got, want)
						}
					}
				}
			}
		}
		// No edge between distinct clusters of the same class.
		for u := 0; u < d.Nodes(); u++ {
			for _, v := range d.Neighbors(u) {
				if d.Class(u) == d.Class(v) && d.ClusterID(u) != d.ClusterID(v) {
					t.Fatalf("D_%d: same-class inter-cluster edge (%d,%d)", n, u, v)
				}
			}
		}
	}
}

func TestDualCubeCrossEdges(t *testing.T) {
	for n := 1; n <= 5; n++ {
		d := MustDualCube(n)
		for u := 0; u < d.Nodes(); u++ {
			v := d.CrossNeighbor(u)
			if d.CrossNeighbor(v) != u {
				t.Fatalf("D_%d: cross-edge not an involution at %d", n, u)
			}
			if d.Class(v) == d.Class(u) {
				t.Fatalf("D_%d: cross neighbor of %d has same class", n, u)
			}
			if u^v != 1<<(2*n-2) {
				t.Fatalf("D_%d: cross pair (%d,%d) differ in more than the class bit", n, u, v)
			}
			if !d.HasEdge(u, v) {
				t.Fatalf("D_%d: missing cross-edge (%d,%d)", n, u, v)
			}
			// Exactly one cross neighbor: count neighbors of the other class.
			crosses := 0
			for _, w := range d.Neighbors(u) {
				if d.Class(w) != d.Class(u) {
					crosses++
				}
			}
			if crosses != 1 {
				t.Fatalf("D_%d: node %d has %d cross edges", n, u, crosses)
			}
		}
	}
}

func TestDualCubeDistanceAgainstBFS(t *testing.T) {
	for n := 1; n <= 4; n++ {
		d := MustDualCube(n)
		for u := 0; u < d.Nodes(); u++ {
			dist := BFSDistances(d, u)
			for v := 0; v < d.Nodes(); v++ {
				if got, want := d.Distance(u, v), dist[v]; got != want {
					t.Fatalf("D_%d: Distance(%d,%d)=%d, BFS=%d", n, u, v, got, want)
				}
			}
		}
	}
}

func TestDualCubeDistanceSampledD5(t *testing.T) {
	d := MustDualCube(5)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		u := rng.Intn(d.Nodes())
		dist := BFSDistances(d, u)
		for v := 0; v < d.Nodes(); v++ {
			if got, want := d.Distance(u, v), dist[v]; got != want {
				t.Fatalf("D_5: Distance(%d,%d)=%d, BFS=%d", u, v, got, want)
			}
		}
	}
}

func TestDualCubeDiameter(t *testing.T) {
	// E2: diameter of D_n is 2n — hypercube of the same size plus one.
	for n := 1; n <= 4; n++ {
		d := MustDualCube(n)
		got := DiameterBFS(d)
		if got != d.Diameter() {
			t.Errorf("D_%d: BFS diameter %d != formula %d", n, got, d.Diameter())
		}
		if n >= 2 && got != 2*n {
			t.Errorf("D_%d: diameter %d, want %d", n, got, 2*n)
		}
		q := MustHypercube(2*n - 1)
		if n >= 2 && got != q.Diameter()+1 {
			t.Errorf("D_%d: diameter %d, want hypercube %s diameter+1 = %d", n, got, q.Name(), q.Diameter()+1)
		}
	}
}

func TestDualCubeRoute(t *testing.T) {
	for n := 1; n <= 4; n++ {
		d := MustDualCube(n)
		rng := rand.New(rand.NewSource(int64(n)))
		pairs := d.Nodes() * d.Nodes()
		check := func(u, v int) {
			path := d.Route(u, v)
			if path[0] != u || path[len(path)-1] != v {
				t.Fatalf("D_%d: Route(%d,%d) endpoints wrong: %v", n, u, v, path)
			}
			if len(path)-1 != d.Distance(u, v) {
				t.Fatalf("D_%d: Route(%d,%d) length %d != distance %d", n, u, v, len(path)-1, d.Distance(u, v))
			}
			for i := 1; i < len(path); i++ {
				if !d.HasEdge(path[i-1], path[i]) {
					t.Fatalf("D_%d: Route(%d,%d) uses non-edge (%d,%d)", n, u, v, path[i-1], path[i])
				}
			}
		}
		if pairs <= 1<<14 {
			for u := 0; u < d.Nodes(); u++ {
				for v := 0; v < d.Nodes(); v++ {
					check(u, v)
				}
			}
		} else {
			for trial := 0; trial < 5000; trial++ {
				check(rng.Intn(d.Nodes()), rng.Intn(d.Nodes()))
			}
		}
	}
}

func TestDualCubeDataIndex(t *testing.T) {
	for n := 1; n <= 6; n++ {
		d := MustDualCube(n)
		seen := make([]bool, d.Nodes())
		for u := 0; u < d.Nodes(); u++ {
			idx := d.DataIndex(u)
			if idx < 0 || idx >= d.Nodes() {
				t.Fatalf("D_%d: DataIndex(%d)=%d out of range", n, u, idx)
			}
			if seen[idx] {
				t.Fatalf("D_%d: DataIndex not a bijection at %d", n, idx)
			}
			seen[idx] = true
			if d.NodeAtDataIndex(idx) != u {
				t.Fatalf("D_%d: NodeAtDataIndex(DataIndex(%d)) != %d", n, u, u)
			}
			if d.DataIndex(idx) != u {
				t.Fatalf("D_%d: DataIndex not an involution at %d", n, u)
			}
		}
	}
}

func TestDualCubeBlockLayoutConsecutive(t *testing.T) {
	// The defining property of the layout (Section 3): the element indices
	// held inside any cluster form a consecutive block, ordered by local ID,
	// and blocks are ordered class-major then cluster.
	for n := 1; n <= 5; n++ {
		d := MustDualCube(n)
		for class := 0; class <= 1; class++ {
			for cl := 0; cl < d.ClustersPerClass(); cl++ {
				members := d.ClusterMembers(class, cl)
				block := d.BlockOf(members[0])
				if want := class<<(n-1) | cl; block != want {
					t.Fatalf("D_%d: BlockOf cluster (%d,%d) = %d, want %d", n, class, cl, block, want)
				}
				base := block * d.ClusterSize()
				for local, u := range members {
					if got := d.DataIndex(u); got != base+local {
						t.Fatalf("D_%d: DataIndex(%d)=%d, want %d", n, u, got, base+local)
					}
				}
			}
		}
	}
}

func TestHasEdgeRejectsInvalid(t *testing.T) {
	d := MustDualCube(3)
	if d.HasEdge(-1, 0) || d.HasEdge(0, d.Nodes()) || d.HasEdge(5, 5) {
		t.Error("HasEdge accepted invalid arguments")
	}
	h := MustHypercube(3)
	if h.HasEdge(-1, 0) || h.HasEdge(0, h.Nodes()) {
		t.Error("hypercube HasEdge accepted invalid arguments")
	}
}

func TestDualCubeD1IsK2(t *testing.T) {
	d := MustDualCube(1)
	if d.Nodes() != 2 {
		t.Fatalf("D_1 nodes = %d", d.Nodes())
	}
	if !d.HasEdge(0, 1) || !d.HasEdge(1, 0) {
		t.Error("D_1 should be K_2")
	}
	if d.Diameter() != 1 || DiameterBFS(d) != 1 {
		t.Error("D_1 diameter should be 1")
	}
	if d.ClusterSize() != 1 {
		t.Errorf("D_1 cluster size = %d", d.ClusterSize())
	}
}

// TestFigure1D2Structure pins down the structure of D_2 shown in the
// paper's Figure 1: 8 nodes, two classes of two 1-dimensional clusters
// (i.e. 2-node clusters), four cross-edges, diameter 4.
func TestFigure1D2Structure(t *testing.T) {
	d := MustDualCube(2)
	if d.Nodes() != 8 {
		t.Fatalf("D_2 nodes = %d, want 8", d.Nodes())
	}
	if d.ClustersPerClass() != 2 || d.ClusterSize() != 2 {
		t.Fatalf("D_2 clusters: %d per class of size %d", d.ClustersPerClass(), d.ClusterSize())
	}
	// Class 0 nodes are 0..3, class 1 nodes are 4..7.
	for u := 0; u < 4; u++ {
		if d.Class(u) != 0 || d.Class(u+4) != 1 {
			t.Fatalf("D_2 class split wrong at %d", u)
		}
	}
	wantEdges := [][2]int{
		{0, 1}, {2, 3}, // class-0 clusters {0,1} and {2,3}
		{4, 6}, {5, 7}, // class-1 clusters {4,6} and {5,7} (node ID is the middle bit)
		{0, 4}, {1, 5}, {2, 6}, {3, 7}, // cross-edges
	}
	count := 0
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			has := d.HasEdge(u, v)
			want := false
			for _, e := range wantEdges {
				if e[0] == u && e[1] == v {
					want = true
				}
			}
			if has != want {
				t.Errorf("D_2 edge (%d,%d) = %v, want %v", u, v, has, want)
			}
			if has {
				count++
			}
		}
	}
	if count != 8 {
		t.Errorf("D_2 has %d edges, want 8", count)
	}
	if DiameterBFS(d) != 4 {
		t.Errorf("D_2 diameter = %d, want 4", DiameterBFS(d))
	}
}

// TestFigure2D3Structure checks the headline facts of Figure 2: D_3 has 32
// nodes, 4 clusters per class, each cluster a 2-cube (4-cycle).
func TestFigure2D3Structure(t *testing.T) {
	d := MustDualCube(3)
	if d.Nodes() != 32 || d.ClustersPerClass() != 4 || d.ClusterSize() != 4 {
		t.Fatalf("D_3 shape wrong: N=%d clusters=%d size=%d", d.Nodes(), d.ClustersPerClass(), d.ClusterSize())
	}
	// Each cluster induces a 4-cycle (Q_2).
	for class := 0; class <= 1; class++ {
		for cl := 0; cl < 4; cl++ {
			members := d.ClusterMembers(class, cl)
			deg := 0
			for _, u := range members {
				for _, v := range members {
					if d.HasEdge(u, v) {
						deg++
					}
				}
			}
			if deg != 8 { // 4 undirected edges, counted twice
				t.Errorf("D_3 cluster (%d,%d): %d directed intra edges, want 8", class, cl, deg)
			}
		}
	}
	if DiameterBFS(d) != 6 {
		t.Errorf("D_3 diameter = %d, want 6", DiameterBFS(d))
	}
}

func TestDualCubeDistanceMetricProperties(t *testing.T) {
	// The closed-form distance is a metric: symmetry, identity, triangle
	// inequality, and bounded by the diameter.
	for _, n := range []int{2, 3, 4} {
		d := MustDualCube(n)
		rng := rand.New(rand.NewSource(int64(n * 31)))
		for trial := 0; trial < 4000; trial++ {
			u := rng.Intn(d.Nodes())
			v := rng.Intn(d.Nodes())
			w := rng.Intn(d.Nodes())
			duv, dvw, duw := d.Distance(u, v), d.Distance(v, w), d.Distance(u, w)
			if duv != d.Distance(v, u) {
				t.Fatalf("D_%d: asymmetric distance (%d,%d)", n, u, v)
			}
			if (duv == 0) != (u == v) {
				t.Fatalf("D_%d: identity broken (%d,%d)", n, u, v)
			}
			if duw > duv+dvw {
				t.Fatalf("D_%d: triangle inequality broken (%d,%d,%d): %d > %d+%d", n, u, v, w, duw, duv, dvw)
			}
			if duv > d.Diameter() {
				t.Fatalf("D_%d: distance %d exceeds diameter %d", n, duv, d.Diameter())
			}
		}
	}
}
