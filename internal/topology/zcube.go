package topology

import "fmt"

// ZCube is Z_n: the dual-cube D_n augmented with Möbius-twisted
// inter-cluster links, after the Z-cube idea of Zhang et al. (arXiv
// 1509.06884) — trade a slightly higher degree for a shorter diameter while
// keeping a hypercube-like recursive structure.
//
// Z_n keeps every link of D_n verbatim (D_n is a spanning subgraph) and adds
// m = n-1 "foreign" links per node, one per dimension of the cluster-ID
// field — the field the dual-cube can only change by crossing to the other
// class and back. Foreign dimension j (0 <= j < m) connects u to the node of
// the same class and local ID whose cluster ID F differs by a 0-Möbius-cube
// step:
//
//	bit F_{j+1} = 0 (or j = m-1): flip bit j of F            (hypercube step)
//	bit F_{j+1} = 1:              flip bits j..0 of F        (twisted step)
//
// The decision bit j+1 lies outside the flipped range, so the rule computes
// the same mask at both endpoints and each foreign link is a symmetric
// involution; the masks have distinct top bits across j, so the m links are
// distinct; and they flip only cluster-ID bits while every skeleton link
// flips a node-ID bit or the class bit, so foreign and skeleton links never
// coincide. Z_n is therefore a regular graph of degree n + m = 2n-1, and
// each class's clusters form a 0-Möbius cube MQ_m instead of being 2 hops
// apart through the other class — the source of the diameter savings (the
// structural tests pin small-order diameters by BFS).
//
// All Comm and Recursive structure — classes, clusters, the cross matching,
// the block data layout, the recursive presentation — is inherited from the
// skeleton unchanged, so every compiled schedule runs on Z_n over skeleton
// links with outputs and costs identical to D_n; the foreign links are
// spare capacity for routing and fault tolerance.
type ZCube struct {
	sk *DualCube
}

// NewZCube returns Z_n. The order must be in [1, MaxDualCubeOrder]; Z_1 has
// no foreign links and coincides with D_1 = K_2.
func NewZCube(n int) (*ZCube, error) {
	sk, err := NewDualCube(n)
	if err != nil {
		return nil, fmt.Errorf("topology: z-cube order %d out of range [1,%d]", n, MaxDualCubeOrder)
	}
	return &ZCube{sk: sk}, nil
}

// MustZCube is NewZCube but panics on an invalid order.
func MustZCube(n int) *ZCube {
	z, err := NewZCube(n)
	if err != nil {
		panic(err)
	}
	return z
}

// Skeleton returns the spanning dual-cube Z_n is built over.
func (z *ZCube) Skeleton() *DualCube { return z.sk }

// Name implements Topology.
func (z *ZCube) Name() string { return "Z_" + itoa(z.sk.n) }

// Family implements Comm.
func (z *ZCube) Family() string { return "zcube" }

// Nodes implements Topology: N = 2^(2n-1), as in D_n.
func (z *ZCube) Nodes() int { return z.sk.Nodes() }

// Degree implements Topology: n skeleton links plus n-1 foreign links.
func (z *ZCube) Degree(u NodeID) int { return 2*z.sk.n - 1 }

// foreignMask returns the cluster-ID-field XOR mask of foreign dimension j
// as seen from a node whose cluster ID is f: the 0-Möbius-cube step rule.
func (z *ZCube) foreignMask(f, j int) int {
	if j == z.sk.m-1 || (f>>(j+1))&1 == 0 {
		return 1 << j
	}
	return 1<<(j+1) - 1
}

// ForeignNeighbor returns u's partner along foreign dimension j
// (0 <= j < n-1): the node of the same class and local ID whose cluster ID
// differs by the Möbius step of dimension j.
func (z *ZCube) ForeignNeighbor(u NodeID, j int) NodeID {
	b := z.sk.NodeDimOffset(1 - z.sk.Class(u)) // offset of the cluster-ID field
	return u ^ z.foreignMask(z.sk.ClusterID(u), j)<<b
}

// Neighbors implements Topology: the n skeleton neighbors plus the n-1
// foreign neighbors, in ascending ID order.
func (z *ZCube) Neighbors(u NodeID) []NodeID {
	ns := make([]NodeID, 0, 2*z.sk.n-1)
	for i := 0; i < z.sk.m; i++ {
		ns = append(ns, z.sk.ClusterNeighbor(u, i))
	}
	ns = append(ns, z.sk.CrossNeighbor(u))
	for j := 0; j < z.sk.m; j++ {
		ns = append(ns, z.ForeignNeighbor(u, j))
	}
	sortIDs(ns)
	return ns
}

// HasEdge implements Topology: a skeleton edge of D_n, or a foreign edge —
// same class, same local ID, and a cluster-ID difference matching the
// Möbius step of the dimension given by its highest differing bit.
func (z *ZCube) HasEdge(u, v NodeID) bool {
	if z.sk.HasEdge(u, v) {
		return true
	}
	if !z.sk.Valid(u) || !z.sk.Valid(v) || u == v {
		return false
	}
	if z.sk.Class(u) != z.sk.Class(v) || z.sk.LocalID(u) != z.sk.LocalID(v) {
		return false
	}
	x := z.sk.ClusterID(u) ^ z.sk.ClusterID(v)
	if x == 0 {
		return false
	}
	return x == z.foreignMask(z.sk.ClusterID(u), log2ceilBit(x))
}

// log2ceilBit returns the position of the highest set bit of x (x > 0).
func log2ceilBit(x int) int {
	j := 0
	for x > 1 {
		x >>= 1
		j++
	}
	return j
}

// Connectivity implements Comm. The spanning D_n skeleton gives the
// conservative lower bounds κ, λ >= n (every D_n cut is a Z_n cut only if
// the foreign links do not bridge it, so Z_n tolerates at least the
// dual-cube's n-1 link faults); the degree 2n-1 is the trivial upper bound.
// The figures below state only what the skeleton proves.
func (z *ZCube) Connectivity() Connectivity {
	return Connectivity{
		Node: z.sk.n,
		Link: z.sk.n,
		Source: "κ=λ>=n, lower bound via the spanning D_n skeleton " +
			"(Li/Peng/Chu ICPP'08); degree 2n-1 is the trivial upper bound",
	}
}

// Comm and Recursive structure: inherited from the skeleton unchanged.

// Order returns the skeleton order n.
func (z *ZCube) Order() int { return z.sk.Order() }

// ClusterDim returns m = n-1.
func (z *ZCube) ClusterDim() int { return z.sk.ClusterDim() }

// ClusterSize returns 2^(n-1).
func (z *ZCube) ClusterSize() int { return z.sk.ClusterSize() }

// Class returns the class indicator of u.
func (z *ZCube) Class(u NodeID) int { return z.sk.Class(u) }

// ClusterID returns the cluster ID of u within its class.
func (z *ZCube) ClusterID(u NodeID) int { return z.sk.ClusterID(u) }

// LocalID returns the node ID of u within its cluster.
func (z *ZCube) LocalID(u NodeID) int { return z.sk.LocalID(u) }

// NodeAt assembles a node address from class, cluster and local ID.
func (z *ZCube) NodeAt(class, cluster, local int) NodeID {
	return z.sk.NodeAt(class, cluster, local)
}

// NodeDimOffset returns the node-ID field offset of the given class.
func (z *ZCube) NodeDimOffset(class int) int { return z.sk.NodeDimOffset(class) }

// ClusterNeighbor returns u's skeleton partner along cluster dimension i.
func (z *ZCube) ClusterNeighbor(u NodeID, i int) NodeID { return z.sk.ClusterNeighbor(u, i) }

// CrossNeighbor returns the endpoint of u's cross-edge.
func (z *ZCube) CrossNeighbor(u NodeID) NodeID { return z.sk.CrossNeighbor(u) }

// SameCluster reports whether u and v lie in the same cluster.
func (z *ZCube) SameCluster(u, v NodeID) bool { return z.sk.SameCluster(u, v) }

// DataIndex returns u's position in the block data layout.
func (z *ZCube) DataIndex(u NodeID) int { return z.sk.DataIndex(u) }

// NodeAtDataIndex returns the node holding element idx.
func (z *ZCube) NodeAtDataIndex(idx int) NodeID { return z.sk.NodeAtDataIndex(idx) }

// RecDims returns the number of recursive dimensions, 2n-1.
func (z *ZCube) RecDims() int { return z.sk.RecDims() }

// ToRecursive converts an original address to its interleaved ID.
func (z *ZCube) ToRecursive(u NodeID) NodeID { return z.sk.ToRecursive(u) }

// FromRecursive inverts ToRecursive.
func (z *ZCube) FromRecursive(r NodeID) NodeID { return z.sk.FromRecursive(r) }

// RecDirect reports whether {r, r^2^j} is joined by a direct skeleton link.
func (z *ZCube) RecDirect(r NodeID, j int) bool { return z.sk.RecDirect(r, j) }
