package topology

import "fmt"

// Hypercube is the binary q-cube Q_q: 2^q nodes, two nodes adjacent iff
// their addresses differ in exactly one bit. It is the reference network the
// dual-cube is derived from and the substrate of the paper's baseline
// algorithms (Sections 3 and 5).
type Hypercube struct {
	q int
}

// MaxHypercubeDim bounds the hypercube dimension so that node IDs and edge
// counts stay comfortably within int range on 32-bit platforms.
const MaxHypercubeDim = 28

// NewHypercube returns Q_q. The dimension must be in [0, MaxHypercubeDim];
// Q_0 is the single-node graph.
func NewHypercube(q int) (*Hypercube, error) {
	if q < 0 || q > MaxHypercubeDim {
		return nil, fmt.Errorf("topology: hypercube dimension %d out of range [0,%d]", q, MaxHypercubeDim)
	}
	return &Hypercube{q: q}, nil
}

// MustHypercube is NewHypercube but panics on an invalid dimension. Intended
// for tests and examples with constant dimensions.
func MustHypercube(q int) *Hypercube {
	h, err := NewHypercube(q)
	if err != nil {
		panic(err)
	}
	return h
}

// Dim returns the dimension q.
func (h *Hypercube) Dim() int { return h.q }

// Name implements Topology.
func (h *Hypercube) Name() string { return "Q_" + itoa(h.q) }

// Nodes implements Topology.
func (h *Hypercube) Nodes() int { return 1 << h.q }

// Degree implements Topology. Every node of Q_q has degree q.
func (h *Hypercube) Degree(u NodeID) int { return h.q }

// Neighbors implements Topology: the q nodes obtained by flipping each
// address bit, in ascending dimension order (which is also ascending ID
// order interleaved; the contract only requires a duplicate-free list, but
// we return them sorted for determinism).
func (h *Hypercube) Neighbors(u NodeID) []NodeID {
	ns := make([]NodeID, 0, h.q)
	for i := 0; i < h.q; i++ {
		ns = append(ns, u^(1<<i))
	}
	sortIDs(ns)
	return ns
}

// HasEdge implements Topology.
func (h *Hypercube) HasEdge(u, v NodeID) bool {
	if !h.valid(u) || !h.valid(v) {
		return false
	}
	return popcount(u^v) == 1
}

// Distance returns the length of a shortest path between u and v, which in
// a hypercube is the Hamming distance of the addresses.
func (h *Hypercube) Distance(u, v NodeID) int { return popcount(u ^ v) }

// Diameter returns the diameter q of Q_q.
func (h *Hypercube) Diameter() int { return h.q }

// Route returns a shortest path from u to v (inclusive of both endpoints),
// correcting differing bits in ascending dimension order.
func (h *Hypercube) Route(u, v NodeID) []NodeID {
	path := []NodeID{u}
	cur := u
	for i := 0; i < h.q; i++ {
		if (cur^v)&(1<<i) != 0 {
			cur ^= 1 << i
			path = append(path, cur)
		}
	}
	return path
}

func (h *Hypercube) valid(u NodeID) bool { return u >= 0 && u < h.Nodes() }

// sortIDs sorts a small slice of node IDs in place (insertion sort: the
// slices involved are neighbor lists, i.e. at most a few dozen entries).
func sortIDs(a []NodeID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
