package topology

import "fmt"

// Hypercube is the binary q-cube Q_q: 2^q nodes, two nodes adjacent iff
// their addresses differ in exactly one bit. It is the reference network the
// dual-cube is derived from and the substrate of the paper's baseline
// algorithms (Sections 3 and 5).
type Hypercube struct {
	q int
}

// MaxHypercubeDim bounds the hypercube dimension so that node IDs and edge
// counts stay comfortably within int range on 32-bit platforms.
const MaxHypercubeDim = 28

// NewHypercube returns Q_q. The dimension must be in [0, MaxHypercubeDim];
// Q_0 is the single-node graph.
func NewHypercube(q int) (*Hypercube, error) {
	if q < 0 || q > MaxHypercubeDim {
		return nil, fmt.Errorf("topology: hypercube dimension %d out of range [0,%d]", q, MaxHypercubeDim)
	}
	return &Hypercube{q: q}, nil
}

// MustHypercube is NewHypercube but panics on an invalid dimension. Intended
// for tests and examples with constant dimensions.
func MustHypercube(q int) *Hypercube {
	h, err := NewHypercube(q)
	if err != nil {
		panic(err)
	}
	return h
}

// Dim returns the dimension q.
func (h *Hypercube) Dim() int { return h.q }

// Name implements Topology.
func (h *Hypercube) Name() string { return "Q_" + itoa(h.q) }

// Nodes implements Topology.
func (h *Hypercube) Nodes() int { return 1 << h.q }

// Degree implements Topology. Every node of Q_q has degree q.
func (h *Hypercube) Degree(u NodeID) int { return h.q }

// Neighbors implements Topology: the q nodes obtained by flipping each
// address bit, in ascending dimension order (which is also ascending ID
// order interleaved; the contract only requires a duplicate-free list, but
// we return them sorted for determinism).
func (h *Hypercube) Neighbors(u NodeID) []NodeID {
	ns := make([]NodeID, 0, h.q)
	for i := 0; i < h.q; i++ {
		ns = append(ns, u^(1<<i))
	}
	sortIDs(ns)
	return ns
}

// HasEdge implements Topology.
func (h *Hypercube) HasEdge(u, v NodeID) bool {
	if !h.valid(u) || !h.valid(v) {
		return false
	}
	return popcount(u^v) == 1
}

// Distance returns the length of a shortest path between u and v, which in
// a hypercube is the Hamming distance of the addresses.
func (h *Hypercube) Distance(u, v NodeID) int { return popcount(u ^ v) }

// Diameter returns the diameter q of Q_q.
func (h *Hypercube) Diameter() int { return h.q }

// Route returns a shortest path from u to v (inclusive of both endpoints),
// correcting differing bits in ascending dimension order.
func (h *Hypercube) Route(u, v NodeID) []NodeID {
	path := []NodeID{u}
	cur := u
	for i := 0; i < h.q; i++ {
		if (cur^v)&(1<<i) != 0 {
			cur ^= 1 << i
			path = append(path, cur)
		}
	}
	return path
}

func (h *Hypercube) valid(u NodeID) bool { return u >= 0 && u < h.Nodes() }

// Communication view (Comm/Recursive): Q_{2n-1} contains D_n as a spanning
// subgraph under the identity addressing — every dual-cube link flips one
// address bit, so it is a hypercube link too. The dual-cube's class/cluster
// decomposition, cross matching, block data layout and recursive
// presentation are therefore valid communication structure for the
// odd-dimensional hypercube, and the schedule pipeline reuses them verbatim
// (the extra hypercube links are simply unused by cluster-technique
// schedules). Even-dimensional hypercubes have no such embedded dual-cube;
// their Comm methods panic, while the plain Topology methods above work for
// every q.

// dual returns the embedded spanning dual-cube D_{(q+1)/2}, panicking for
// even q.
func (h *Hypercube) dual() *DualCube {
	if h.q%2 == 0 {
		//dcvet:allow abortpanic -- Comm methods are interface methods with no error channel; calling them on an even-q hypercube is a caller bug (CommByID only hands out odd q)
		panic("topology: " + h.Name() + " has no dual-cube communication structure (dimension must be odd)")
	}
	return shared[(h.q+1)/2]
}

// Family implements Comm.
func (h *Hypercube) Family() string { return "hypercube" }

// Connectivity implements Comm: the classical hypercube figures κ=λ=q and
// the generalized 3-connectivity κ₃=λ₃=q-1 (Lin et al.).
func (h *Hypercube) Connectivity() Connectivity {
	c := Connectivity{
		Node:   h.q,
		Link:   h.q,
		Source: "κ=λ=q (classical)",
	}
	if h.q >= 2 {
		c.Tree3Node = h.q - 1
		c.Tree3Link = h.q - 1
		c.Source = "κ=λ=q (classical); κ₃=λ₃=q-1 (generalized connectivity of Q_q)"
	}
	return c
}

// Order returns the order n = (q+1)/2 of the embedded dual-cube (odd q).
func (h *Hypercube) Order() int { return h.dual().Order() }

// ClusterDim returns m = n-1 of the embedded dual-cube (odd q).
func (h *Hypercube) ClusterDim() int { return h.dual().ClusterDim() }

// ClusterSize returns 2^m of the embedded dual-cube (odd q).
func (h *Hypercube) ClusterSize() int { return h.dual().ClusterSize() }

// Class returns the class indicator of u under the embedded decomposition.
func (h *Hypercube) Class(u NodeID) int { return h.dual().Class(u) }

// ClusterID returns u's cluster ID under the embedded decomposition.
func (h *Hypercube) ClusterID(u NodeID) int { return h.dual().ClusterID(u) }

// LocalID returns u's within-cluster ID under the embedded decomposition.
func (h *Hypercube) LocalID(u NodeID) int { return h.dual().LocalID(u) }

// NodeAt assembles a node address from class, cluster and local ID.
func (h *Hypercube) NodeAt(class, cluster, local int) NodeID {
	return h.dual().NodeAt(class, cluster, local)
}

// NodeDimOffset returns the node-ID field offset of the given class.
func (h *Hypercube) NodeDimOffset(class int) int { return h.dual().NodeDimOffset(class) }

// ClusterNeighbor returns u's partner along cluster dimension i.
func (h *Hypercube) ClusterNeighbor(u NodeID, i int) NodeID {
	return h.dual().ClusterNeighbor(u, i)
}

// CrossNeighbor returns u's partner in the cross matching (the class bit).
func (h *Hypercube) CrossNeighbor(u NodeID) NodeID { return h.dual().CrossNeighbor(u) }

// SameCluster reports whether u and v share a cluster.
func (h *Hypercube) SameCluster(u, v NodeID) bool { return h.dual().SameCluster(u, v) }

// DataIndex returns u's position in the block data layout.
func (h *Hypercube) DataIndex(u NodeID) int { return h.dual().DataIndex(u) }

// NodeAtDataIndex returns the node holding element idx.
func (h *Hypercube) NodeAtDataIndex(idx int) NodeID { return h.dual().NodeAtDataIndex(idx) }

// RecDims returns the number of recursive dimensions, 2n-1 = q.
func (h *Hypercube) RecDims() int { return h.dual().RecDims() }

// ToRecursive converts an original address to its interleaved ID.
func (h *Hypercube) ToRecursive(u NodeID) NodeID { return h.dual().ToRecursive(u) }

// FromRecursive inverts ToRecursive.
func (h *Hypercube) FromRecursive(r NodeID) NodeID { return h.dual().FromRecursive(r) }

// RecDirect reports whether {r, r^2^j} is a direct link of the embedded
// dual-cube. (As hypercube links, all recursive dimensions are direct; the
// schedule pipeline routes by the embedded structure so the same schedules
// serve all Comm families.)
func (h *Hypercube) RecDirect(r NodeID, j int) bool { return h.dual().RecDirect(r, j) }

// sortIDs sorts a small slice of node IDs in place (insertion sort: the
// slices involved are neighbor lists, i.e. at most a few dozen entries).
func sortIDs(a []NodeID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
