package topology

import (
	"testing"
	"testing/quick"
)

func TestRecursiveBijection(t *testing.T) {
	for n := 1; n <= 6; n++ {
		d := MustDualCube(n)
		seen := make([]bool, d.Nodes())
		for u := 0; u < d.Nodes(); u++ {
			r := d.ToRecursive(u)
			if r < 0 || r >= d.Nodes() {
				t.Fatalf("D_%d: ToRecursive(%d)=%d out of range", n, u, r)
			}
			if seen[r] {
				t.Fatalf("D_%d: ToRecursive not injective at %d", n, r)
			}
			seen[r] = true
			if d.FromRecursive(r) != u {
				t.Fatalf("D_%d: FromRecursive(ToRecursive(%d)) = %d", n, u, d.FromRecursive(r))
			}
		}
	}
}

func TestRecursiveClassBit(t *testing.T) {
	// Bit 0 of the recursive ID is the class indicator.
	for n := 1; n <= 5; n++ {
		d := MustDualCube(n)
		for u := 0; u < d.Nodes(); u++ {
			if d.ToRecursive(u)&1 != d.Class(u) {
				t.Fatalf("D_%d: rec bit0 of %d != class", n, u)
			}
		}
	}
}

func TestRecursiveCrossEdgeIsDimZero(t *testing.T) {
	for n := 1; n <= 5; n++ {
		d := MustDualCube(n)
		for u := 0; u < d.Nodes(); u++ {
			r := d.ToRecursive(u)
			if d.FromRecursive(r^1) != d.CrossNeighbor(u) {
				t.Fatalf("D_%d: rec dim 0 of %d is not the cross-edge", n, u)
			}
		}
	}
}

// TestRecursiveDirectMatchesEdges verifies the paper's Section 6 parity
// rule: a recursive dimension-j pair is a direct edge of D_n exactly when
// RecDirect says so.
func TestRecursiveDirectMatchesEdges(t *testing.T) {
	for n := 1; n <= 5; n++ {
		d := MustDualCube(n)
		for r := 0; r < d.Nodes(); r++ {
			for j := 0; j < d.RecDims(); j++ {
				u := d.FromRecursive(r)
				v := d.FromRecursive(r ^ 1<<j)
				if got, want := d.RecDirect(r, j), d.HasEdge(u, v); got != want {
					t.Fatalf("D_%d: RecDirect(r=%d,j=%d)=%v but HasEdge=%v", n, r, j, got, want)
				}
			}
		}
	}
}

// TestRecursiveEdgeCover verifies the relabelling covers all edges: every
// edge of D_n is a dimension flip in recursive space.
func TestRecursiveEdgeCover(t *testing.T) {
	for n := 1; n <= 5; n++ {
		d := MustDualCube(n)
		for u := 0; u < d.Nodes(); u++ {
			ru := d.ToRecursive(u)
			for _, v := range d.Neighbors(u) {
				rv := d.ToRecursive(v)
				if Popcount(ru^rv) != 1 {
					t.Fatalf("D_%d: edge (%d,%d) is not a single rec-dimension flip (%d vs %d)", n, u, v, ru, rv)
				}
			}
		}
	}
}

func TestRecRoute(t *testing.T) {
	for n := 2; n <= 5; n++ {
		d := MustDualCube(n)
		for r := 0; r < d.Nodes(); r++ {
			for j := 0; j < d.RecDims(); j++ {
				path := d.RecRoute(r, j)
				if path[0] != r || path[len(path)-1] != r^1<<j {
					t.Fatalf("D_%d: RecRoute(%d,%d) endpoints wrong", n, r, j)
				}
				wantLen := 2
				if !d.RecDirect(r, j) {
					wantLen = 4
				}
				if len(path) != wantLen {
					t.Fatalf("D_%d: RecRoute(%d,%d) length %d, want %d", n, r, j, len(path), wantLen)
				}
				for i := 1; i < len(path); i++ {
					a, b := d.FromRecursive(path[i-1]), d.FromRecursive(path[i])
					if !d.HasEdge(a, b) {
						t.Fatalf("D_%d: RecRoute(%d,%d) hop %d is not an edge", n, r, j, i)
					}
				}
			}
		}
	}
}

// TestRecursiveSubCubesAreDualCubes verifies the recursive construction of
// Section 4 / Figure 4: fixing the top two recursive bits yields a subgraph
// isomorphic to D_{n-1} under the natural truncation of recursive IDs, with
// exactly the same direct-edge structure.
func TestRecursiveSubCubesAreDualCubes(t *testing.T) {
	for n := 2; n <= 5; n++ {
		d := MustDualCube(n)
		sub := MustDualCube(n - 1)
		subBits := 2*(n-1) - 1
		for quarter := 0; quarter < 4; quarter++ {
			hi := quarter << subBits
			for rs := 0; rs < sub.Nodes(); rs++ {
				u := d.FromRecursive(hi | rs)
				// Every sub-dual-cube edge must be an edge of D_n between the
				// correspondingly embedded nodes, and vice versa within the quarter.
				for j := 0; j < sub.RecDims(); j++ {
					v := d.FromRecursive(hi | rs ^ 1<<j)
					us := sub.FromRecursive(rs)
					vs := sub.FromRecursive(rs ^ 1<<j)
					if d.HasEdge(u, v) != sub.HasEdge(us, vs) {
						t.Fatalf("D_%d quarter %d: edge mismatch at rs=%d j=%d", n, quarter, rs, j)
					}
				}
				if got := d.RecSubCube(hi | rs); got != quarter {
					t.Fatalf("D_%d: RecSubCube(%d)=%d, want %d", n, hi|rs, got, quarter)
				}
			}
		}
	}
}

// TestRecursiveConstructionLinks verifies the links added by the recursive
// step: flipping the top recursive bit (dimension 2n-2, even) is direct
// exactly for class-0 nodes, and dimension 2n-3 (odd) for class-1 nodes —
// "create a link for each pair (xu0...) ..." in the paper's notation.
func TestRecursiveConstructionLinks(t *testing.T) {
	for n := 2; n <= 5; n++ {
		d := MustDualCube(n)
		top, second := 2*n-2, 2*n-3
		for r := 0; r < d.Nodes(); r++ {
			wantTop := r&1 == 0
			if second == 0 {
				// n = 2: dimension 0 is the cross-edge, always direct.
				if !d.RecDirect(r, second) {
					t.Fatalf("D_2: dim 0 must be direct")
				}
			} else if got := d.RecDirect(r, second); got != (r&1 == 1) {
				t.Fatalf("D_%d: RecDirect(r=%d, j=%d)=%v, want %v", n, r, second, got, r&1 == 1)
			}
			if got := d.RecDirect(r, top); got != wantTop {
				t.Fatalf("D_%d: RecDirect(r=%d, j=%d)=%v, want %v", n, r, top, got, wantTop)
			}
		}
	}
}

func TestRecursiveQuickProperty(t *testing.T) {
	// Property: for random (n, u), ToRecursive preserves the class bit and
	// round-trips; and parity rule holds for a random dimension.
	f := func(nSeed uint8, uSeed uint32, jSeed uint8) bool {
		n := int(nSeed)%6 + 1
		d := MustDualCube(n)
		u := int(uSeed) % d.Nodes()
		j := int(jSeed) % d.RecDims()
		r := d.ToRecursive(u)
		if d.FromRecursive(r) != u || r&1 != d.Class(u) {
			return false
		}
		v := d.FromRecursive(r ^ 1<<j)
		return d.RecDirect(r, j) == d.HasEdge(u, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
