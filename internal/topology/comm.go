package topology

import "fmt"

// Comm is the communication view of a cube-like network: everything the
// schedule pipeline (internal/dcomm) needs to derive a cluster-technique
// schedule, and everything the algorithm kernels need to address their data,
// expressed without reference to a concrete topology type. A Comm decomposes
// its nodes into two classes of 2^m-node clusters joined by a perfect
// cross-edge matching — the structure Algorithm 2 of the paper exploits —
// and exposes the block data layout (DataIndex) the prefix family relies on.
//
// Three families implement it: the dual-cube D_n itself, the odd-dimensional
// hypercube Q_{2n-1} (which contains D_n as a spanning subgraph under the
// identity addressing, so the dual-cube decomposition is a valid
// communication structure for it), and the Z-cube Z_n (a dual-cube
// augmented with Möbius-twisted inter-cluster links; see zcube.go). Because
// every schedule step uses only decomposition links — cluster dimensions and
// the cross matching — one compiled schedule shape serves all three, and the
// schedcheck proofs run generically over any Comm.
type Comm interface {
	Topology

	// Family identifies the topology family ("dualcube", "hypercube",
	// "zcube") — the stable cache and bench key, independent of order.
	Family() string
	// Order returns the dual-cube order n of the communication structure:
	// the network has 2^(2n-1) nodes split into clusters of dimension n-1.
	Order() int
	// ClusterDim returns m = n-1, the dimension of each cluster hypercube.
	ClusterDim() int
	// ClusterSize returns 2^m, the number of nodes per cluster.
	ClusterSize() int
	// Class returns the class indicator (0 or 1) of u.
	Class(u NodeID) int
	// ClusterID returns the cluster ID of u within its class.
	ClusterID(u NodeID) int
	// LocalID returns the node ID of u within its cluster (0..2^m-1).
	LocalID(u NodeID) int
	// NodeAt assembles a node address from class, cluster and local ID.
	NodeAt(class, cluster, local int) NodeID
	// NodeDimOffset returns the position of the least-significant node-ID
	// bit in a full address of the given class.
	NodeDimOffset(class int) int
	// ClusterNeighbor returns u's partner along cluster dimension i
	// (0 <= i < m): the same-cluster node whose local ID differs in bit i.
	ClusterNeighbor(u NodeID, i int) NodeID
	// CrossNeighbor returns the endpoint of u's cross-matching edge: the
	// node of the other class paired with u.
	CrossNeighbor(u NodeID) NodeID
	// SameCluster reports whether u and v lie in the same cluster.
	SameCluster(u, v NodeID) bool
	// DataIndex returns u's position in the block data layout (Section 3);
	// it is an involution, inverted by NodeAtDataIndex.
	DataIndex(u NodeID) int
	// NodeAtDataIndex returns the node holding element idx.
	NodeAtDataIndex(idx int) NodeID
	// Connectivity returns the family's known connectivity figures at this
	// order — the numbers behind the max-tolerable-fault claims.
	Connectivity() Connectivity
}

// Recursive is a Comm that additionally carries the recursive presentation
// of Section 4 — the dimension-oriented relabelling the sort family's
// routed exchanges (StepRecDim) are built on.
type Recursive interface {
	Comm
	// RecDims returns the number of recursive dimensions, 2n-1.
	RecDims() int
	// ToRecursive converts an original address to its interleaved ID.
	ToRecursive(u NodeID) NodeID
	// FromRecursive inverts ToRecursive.
	FromRecursive(r NodeID) NodeID
	// RecDirect reports whether the pair {r, r^2^j} is joined by a direct
	// link (as opposed to the three-hop cross-routed detour).
	RecDirect(r NodeID, j int) bool
}

// All three families carry the full recursive presentation.
var (
	_ Recursive = (*DualCube)(nil)
	_ Recursive = (*Hypercube)(nil)
	_ Recursive = (*ZCube)(nil)
)

// Connectivity holds the connectivity figures of one topology at one order.
// Node and Link are the classical connectivities κ and λ (so any
// min(κ,λ)-1 faults leave the network connected); Tree3Node and Tree3Link
// are the generalized 3-(edge-)connectivities κ₃ and λ₃ when known, 0
// otherwise. Source records where the figures come from, printed beside the
// numbers by dcinfo -faulttol so a claim is never separated from its
// justification.
type Connectivity struct {
	Node      int    // κ: node connectivity
	Link      int    // λ: link (edge) connectivity
	Tree3Node int    // κ₃: generalized 3-connectivity (0 = not established)
	Tree3Link int    // λ₃: generalized 3-edge-connectivity (0 = not established)
	Source    string // provenance of the figures
}

// MaxTolerableLinkFaults returns the largest f for which any f link faults
// provably leave the network connected: λ - 1.
func (c Connectivity) MaxTolerableLinkFaults() int { return c.Link - 1 }

// Families lists the topology families with communication support, in the
// order sweeps and tables enumerate them.
func Families() []string { return []string{"dualcube", "hypercube", "zcube"} }

// CommByID returns the process-wide cached communication topology of the
// given family at dual-cube order n: D_n, Q_{2n-1} or Z_n. Like Shared, the
// returned values are immutable and identical across calls, so the lookup is
// allocation-free and the result is usable as a cache key.
func CommByID(family string, n int) (Comm, error) {
	if n < 1 || n > MaxDualCubeOrder {
		return nil, fmt.Errorf("topology: dual-cube order %d out of range [1,%d]", n, MaxDualCubeOrder)
	}
	switch family {
	case "dualcube":
		return shared[n], nil
	case "hypercube":
		return sharedHyper[n], nil
	case "zcube":
		return sharedZ[n], nil
	}
	return nil, fmt.Errorf("topology: unknown topology family %q (want dualcube, hypercube or zcube)", family)
}

// ValidLen requires exactly one input element per node of t, with the same
// uniform error wording as Validated.
func ValidLen(t Topology, lenIn int) error {
	if lenIn != t.Nodes() {
		return fmt.Errorf("dualcube: input length %d != %d nodes of %s", lenIn, t.Nodes(), t.Name())
	}
	return nil
}
