package topology

import "testing"

// TestZCubeBasics pins the regular structure of Z_n: 2^(2n-1) nodes of
// degree 2n-1, a duplicate-free neighbor list, and a symmetric HasEdge that
// agrees with Neighbors in both directions.
func TestZCubeBasics(t *testing.T) {
	for n := 1; n <= 4; n++ {
		z := MustZCube(n)
		if got, want := z.Nodes(), 1<<(2*n-1); got != want {
			t.Fatalf("Z_%d: %d nodes, want %d", n, got, want)
		}
		for u := NodeID(0); int(u) < z.Nodes(); u++ {
			ns := z.Neighbors(u)
			if len(ns) != 2*n-1 || z.Degree(u) != 2*n-1 {
				t.Fatalf("Z_%d node %d: %d neighbors, degree %d, want %d", n, u, len(ns), z.Degree(u), 2*n-1)
			}
			seen := make(map[NodeID]bool, len(ns))
			for _, v := range ns {
				if v == u || seen[v] {
					t.Fatalf("Z_%d node %d: neighbor list %v has a self-loop or duplicate", n, u, ns)
				}
				seen[v] = true
				if !z.HasEdge(u, v) || !z.HasEdge(v, u) {
					t.Fatalf("Z_%d: HasEdge(%d,%d) disagrees with Neighbors", n, u, v)
				}
			}
		}
	}
}

// TestZCubeSpanningSkeleton checks D_n is a spanning subgraph of Z_n under
// the identity addressing — the property every compiled schedule, detour
// plan and fault budget relies on.
func TestZCubeSpanningSkeleton(t *testing.T) {
	for n := 1; n <= 4; n++ {
		z := MustZCube(n)
		d := z.Skeleton()
		for u := NodeID(0); int(u) < d.Nodes(); u++ {
			for _, v := range d.Neighbors(u) {
				if !z.HasEdge(u, v) {
					t.Fatalf("Z_%d: skeleton edge {%d,%d} of D_%d is missing", n, u, v, n)
				}
			}
		}
	}
}

// TestZCubeForeignLinks checks the Möbius foreign links: each is a symmetric
// involution joining two nodes of the same class and local ID, the n-1
// dimensions are pairwise distinct, and none coincides with a skeleton link.
func TestZCubeForeignLinks(t *testing.T) {
	for n := 2; n <= 4; n++ {
		z := MustZCube(n)
		for u := NodeID(0); int(u) < z.Nodes(); u++ {
			seen := make(map[NodeID]bool, n-1)
			for j := 0; j < n-1; j++ {
				v := z.ForeignNeighbor(u, j)
				if v == u || seen[v] {
					t.Fatalf("Z_%d node %d: foreign dim %d repeats partner %d", n, u, j, v)
				}
				seen[v] = true
				if z.Class(u) != z.Class(v) || z.LocalID(u) != z.LocalID(v) {
					t.Fatalf("Z_%d: foreign link {%d,%d} changes class or local ID", n, u, v)
				}
				if z.ForeignNeighbor(v, j) != u {
					t.Fatalf("Z_%d: foreign dim %d is not an involution at node %d", n, j, u)
				}
				if z.Skeleton().HasEdge(u, v) {
					t.Fatalf("Z_%d: foreign link {%d,%d} coincides with a skeleton link", n, u, v)
				}
			}
		}
	}
}

// TestZCubeDiameter pins the BFS diameter of small orders — 1, 3, 5, 5, 7
// for n = 1..5 — and checks the Möbius links beat the dual-cube's diameter
// 2n from n = 2 on: the structural payoff the Z-cube exists for.
func TestZCubeDiameter(t *testing.T) {
	want := map[int]int{1: 1, 2: 3, 3: 5, 4: 5, 5: 7}
	for n := 1; n <= 5; n++ {
		z := MustZCube(n)
		got := DiameterBFS(z)
		if got != want[n] {
			t.Errorf("Z_%d: diameter %d, want %d", n, got, want[n])
		}
		if n >= 2 && got >= 2*n {
			t.Errorf("Z_%d: diameter %d does not beat the dual-cube's 2n = %d", n, got, 2*n)
		}
	}
}

// TestZCubeCommDelegation checks the Comm and Recursive structure is the
// skeleton's verbatim, so every compiled schedule and data layout carries
// over unchanged.
func TestZCubeCommDelegation(t *testing.T) {
	z := MustZCube(3)
	d := z.Skeleton()
	if z.Family() != "zcube" || z.Order() != 3 || z.Name() != "Z_3" {
		t.Fatalf("Z_3 identity: family %q order %d name %q", z.Family(), z.Order(), z.Name())
	}
	for u := NodeID(0); int(u) < z.Nodes(); u++ {
		if z.Class(u) != d.Class(u) || z.ClusterID(u) != d.ClusterID(u) || z.LocalID(u) != d.LocalID(u) ||
			z.DataIndex(u) != d.DataIndex(u) || z.ToRecursive(u) != d.ToRecursive(u) ||
			z.CrossNeighbor(u) != d.CrossNeighbor(u) {
			t.Fatalf("Z_3 node %d: Comm structure diverges from the skeleton", u)
		}
	}
	conn := z.Connectivity()
	if conn.Link != 3 || conn.Node != 3 || conn.MaxTolerableLinkFaults() != 2 {
		t.Fatalf("Z_3 connectivity: %+v, want skeleton lower bound κ=λ=3", conn)
	}
}
