package topology

// Graph analysis used by the experiment harness: breadth-first distances,
// diameter, average distance and connectivity. These are the ground truth
// the dual-cube's closed-form Distance, Diameter and Route are verified
// against (experiment E2).

// BFSDistances returns the distance from src to every node of t, or -1 for
// unreachable nodes.
func BFSDistances(t Topology, src NodeID) []int {
	n := t.Nodes()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// IsConnected reports whether t is connected (every node reachable from 0).
func IsConnected(t Topology) bool {
	if t.Nodes() == 0 {
		return true
	}
	for _, d := range BFSDistances(t, 0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum BFS distance from src (or -1 if some
// node is unreachable).
func Eccentricity(t Topology, src NodeID) int {
	ecc := 0
	for _, d := range BFSDistances(t, src) {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// DiameterBFS computes the diameter of t exactly by running a BFS from
// every node. Intended for the moderate sizes used in tests and tables.
func DiameterBFS(t Topology) int {
	diam := 0
	for u := 0; u < t.Nodes(); u++ {
		if e := Eccentricity(t, u); e > diam {
			diam = e
		} else if e < 0 {
			return -1
		}
	}
	return diam
}

// AverageDistance returns the mean BFS distance over all ordered pairs of
// distinct nodes, or -1 if t is disconnected.
func AverageDistance(t Topology) float64 {
	n := t.Nodes()
	if n < 2 {
		return 0
	}
	total := 0
	for u := 0; u < n; u++ {
		for _, d := range BFSDistances(t, u) {
			if d < 0 {
				return -1
			}
			total += d
		}
	}
	return float64(total) / float64(n*(n-1))
}

// Stats bundles the structural figures reported in the comparison tables
// (experiments E2 and E11).
type Stats struct {
	Name     string
	Nodes    int
	Edges    int
	Degree   int  // common degree if regular, max degree otherwise
	Regular  bool // whether all nodes share the same degree
	Diameter int  // exact, by all-pairs BFS
	AvgDist  float64
}

// Analyze computes Stats for t by exhaustive BFS. Cost is O(N·E); keep N in
// the low tens of thousands.
func Analyze(t Topology) Stats {
	deg, reg := IsRegular(t)
	if !reg {
		for u := 0; u < t.Nodes(); u++ {
			if d := t.Degree(u); d > deg {
				deg = d
			}
		}
	}
	return Stats{
		Name:     t.Name(),
		Nodes:    t.Nodes(),
		Edges:    EdgeCount(t),
		Degree:   deg,
		Regular:  reg,
		Diameter: DiameterBFS(t),
		AvgDist:  AverageDistance(t),
	}
}
