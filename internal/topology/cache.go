package topology

import "fmt"

// shared holds the one immutable *DualCube value per order. A DualCube is a
// pair of ints with purely arithmetic methods, so a single value can be
// shared by every caller in the process for the lifetime of the program —
// there is nothing to evict and nothing to synchronize. The table is built
// eagerly at init (14 tiny allocations, once), which keeps Shared a plain
// array read on every call.
var shared [MaxDualCubeOrder + 1]*DualCube

// sharedZ and sharedHyper extend the same eager, allocation-free sharing to
// the other Comm families, indexed by dual-cube order n: Z_n and Q_{2n-1}.
var (
	sharedZ     [MaxDualCubeOrder + 1]*ZCube
	sharedHyper [MaxDualCubeOrder + 1]*Hypercube
)

func init() {
	for n := 1; n <= MaxDualCubeOrder; n++ {
		shared[n] = &DualCube{n: n, m: n - 1}
		sharedZ[n] = &ZCube{sk: shared[n]}
		sharedHyper[n] = &Hypercube{q: 2*n - 1}
	}
}

// Shared returns the process-wide cached D_n. It is the allocation-free
// equivalent of NewDualCube and the only constructor the algorithm layers
// should use: repeated calls return the identical pointer, so steady-state
// operation entry costs no topology construction at all.
func Shared(n int) (*DualCube, error) {
	if n < 1 || n > MaxDualCubeOrder {
		return nil, fmt.Errorf("topology: dual-cube order %d out of range [1,%d]", n, MaxDualCubeOrder)
	}
	return shared[n], nil
}

// Validated is the shared input check of every per-node operation on D_n: it
// resolves the cached topology and requires exactly one input element per
// node, with one uniform error wording across all algorithm packages.
func Validated(n, lenIn int) (*DualCube, error) {
	d, err := Shared(n)
	if err != nil {
		return nil, err
	}
	if lenIn != d.Nodes() {
		return nil, fmt.Errorf("dualcube: input length %d != %d nodes of %s", lenIn, d.Nodes(), d.Name())
	}
	return d, nil
}
