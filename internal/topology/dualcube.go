package topology

import "fmt"

// DualCube is the n-connected dual-cube D_n of Li, Peng and Chu.
//
// D_n has N = 2^(2n-1) nodes, each of degree n. A node address u has 2n-1
// bits, split into three parts exactly as in Section 2 of the paper:
//
//	bit 2n-2              : class indicator (part III)
//	bits n-1 .. 2n-3      : part II ("field1" below), n-1 bits
//	bits 0   .. n-2       : part I  ("field0" below), n-1 bits
//
// For a class-0 node, part I is the node ID within its cluster and part II
// is the cluster ID. For a class-1 node the roles are swapped: part II is
// the node ID and part I is the cluster ID. Every cluster is an
// (n-1)-dimensional hypercube formed by the node-ID bits; each node has one
// cross-edge to the node of the other class with the same 2n-2 low bits.
// There are 2^(n-1) clusters per class, 2^n clusters in total.
type DualCube struct {
	n int // links per node; the paper's n
	m int // cluster dimension, m = n-1
}

// MaxDualCubeOrder bounds n so addresses (2n-1 bits) fit easily in an int.
const MaxDualCubeOrder = 14

// NewDualCube returns D_n. The order must be in [1, MaxDualCubeOrder].
// D_1 is the single-edge graph K_2 (two one-node clusters joined by the
// cross-edge).
func NewDualCube(n int) (*DualCube, error) {
	if n < 1 || n > MaxDualCubeOrder {
		return nil, fmt.Errorf("topology: dual-cube order %d out of range [1,%d]", n, MaxDualCubeOrder)
	}
	return &DualCube{n: n, m: n - 1}, nil
}

// MustDualCube is NewDualCube but panics on an invalid order.
func MustDualCube(n int) *DualCube {
	d, err := NewDualCube(n)
	if err != nil {
		panic(err)
	}
	return d
}

// Order returns n, the number of links per node.
func (d *DualCube) Order() int { return d.n }

// ClusterDim returns m = n-1, the dimension of each cluster hypercube.
func (d *DualCube) ClusterDim() int { return d.m }

// ClusterSize returns 2^(n-1), the number of nodes per cluster.
func (d *DualCube) ClusterSize() int { return 1 << d.m }

// ClustersPerClass returns 2^(n-1).
func (d *DualCube) ClustersPerClass() int { return 1 << d.m }

// AddressBits returns 2n-1, the number of bits of a node address.
func (d *DualCube) AddressBits() int { return 2*d.n - 1 }

// Name implements Topology.
func (d *DualCube) Name() string { return "D_" + itoa(d.n) }

// Family implements Comm.
func (d *DualCube) Family() string { return "dualcube" }

// Connectivity implements Comm: D_n has node and link connectivity n
// (Li/Peng/Chu ICPP'08, tight — cutting all n links of one node
// disconnects it), and generalized 3-(edge-)connectivity n-1
// (Zhao/Hao/Cheng, arXiv 1803.10414), so any n-1 link faults leave the
// network connected and any three nodes admit n-1 internally disjoint
// Steiner trees.
func (d *DualCube) Connectivity() Connectivity {
	c := Connectivity{
		Node:   d.n,
		Link:   d.n,
		Source: "κ=λ=n (Li/Peng/Chu ICPP'08)",
	}
	if d.n >= 2 {
		c.Tree3Node = d.n - 1
		c.Tree3Link = d.n - 1
		c.Source = "κ=λ=n (Li/Peng/Chu ICPP'08); κ₃=λ₃=n-1 (Zhao/Hao/Cheng arXiv 1803.10414)"
	}
	return c
}

// Nodes implements Topology: N = 2^(2n-1).
func (d *DualCube) Nodes() int { return 1 << (2*d.n - 1) }

// Degree implements Topology: every node has n-1 intra-cluster links plus
// one cross-edge.
func (d *DualCube) Degree(u NodeID) int { return d.n }

// fieldMask is the (n-1)-bit mask for part I / part II.
func (d *DualCube) fieldMask() int { return (1 << d.m) - 1 }

// classBit is the bit position of the class indicator.
func (d *DualCube) classBit() int { return 2*d.n - 2 }

// Class returns the class indicator (0 or 1) of u.
func (d *DualCube) Class(u NodeID) int { return (u >> d.classBit()) & 1 }

// field0 returns part I (the rightmost n-1 bits).
func (d *DualCube) field0(u NodeID) int { return u & d.fieldMask() }

// field1 returns part II (the middle n-1 bits).
func (d *DualCube) field1(u NodeID) int { return (u >> d.m) & d.fieldMask() }

// LocalID returns the node ID of u within its cluster: part I for class 0,
// part II for class 1. Local IDs range over 0..2^(n-1)-1.
func (d *DualCube) LocalID(u NodeID) int {
	if d.Class(u) == 0 {
		return d.field0(u)
	}
	return d.field1(u)
}

// ClusterID returns the cluster ID of u within its class: part II for
// class 0, part I for class 1.
func (d *DualCube) ClusterID(u NodeID) int {
	if d.Class(u) == 0 {
		return d.field1(u)
	}
	return d.field0(u)
}

// NodeDimOffset returns the position of the least-significant node-ID bit
// in a full address of the given class: 0 for class 0 (part I) and n-1 for
// class 1 (part II). Flipping address bit NodeDimOffset(class)+i moves along
// cluster dimension i.
func (d *DualCube) NodeDimOffset(class int) int {
	if class == 0 {
		return 0
	}
	return d.m
}

// NodeAt assembles a node address from a class, cluster ID and local
// (within-cluster) node ID.
func (d *DualCube) NodeAt(class, cluster, local int) NodeID {
	if class == 0 {
		return cluster<<d.m | local
	}
	return 1<<d.classBit() | local<<d.m | cluster
}

// CrossNeighbor returns the endpoint of u's single cross-edge: the node of
// the other class whose address differs from u only in the class bit.
func (d *DualCube) CrossNeighbor(u NodeID) NodeID { return u ^ 1<<d.classBit() }

// ClusterNeighbor returns u's neighbor along cluster dimension i
// (0 <= i < n-1): the node of the same cluster whose local ID differs from
// u's in bit i.
func (d *DualCube) ClusterNeighbor(u NodeID, i int) NodeID {
	return u ^ 1<<(d.NodeDimOffset(d.Class(u))+i)
}

// Neighbors implements Topology: the n-1 intra-cluster neighbors plus the
// cross neighbor, in ascending ID order.
func (d *DualCube) Neighbors(u NodeID) []NodeID {
	ns := make([]NodeID, 0, d.n)
	for i := 0; i < d.m; i++ {
		ns = append(ns, d.ClusterNeighbor(u, i))
	}
	ns = append(ns, d.CrossNeighbor(u))
	sortIDs(ns)
	return ns
}

// HasEdge implements Topology. Two nodes are adjacent iff they differ in
// exactly one bit and that bit is either the class bit (cross-edge) or a
// node-ID bit of their common class (intra-cluster edge). This is the
// paper's Section 2 definition verbatim.
func (d *DualCube) HasEdge(u, v NodeID) bool {
	if !d.Valid(u) || !d.Valid(v) {
		return false
	}
	x := u ^ v
	if popcount(x) != 1 {
		return false
	}
	if x == 1<<d.classBit() {
		return true // cross-edge
	}
	// Same class; the differing bit must lie in the node-ID field.
	off := d.NodeDimOffset(d.Class(u))
	bit := log2(x)
	return bit >= off && bit < off+d.m
}

// Valid reports whether u is a node of D_n.
func (d *DualCube) Valid(u NodeID) bool { return u >= 0 && u < d.Nodes() }

// SameCluster reports whether u and v lie in the same cluster.
func (d *DualCube) SameCluster(u, v NodeID) bool {
	return d.Class(u) == d.Class(v) && d.ClusterID(u) == d.ClusterID(v)
}

// ClusterMembers returns the node addresses of a cluster in ascending local
// ID order.
func (d *DualCube) ClusterMembers(class, cluster int) []NodeID {
	out := make([]NodeID, d.ClusterSize())
	for local := range out {
		out[local] = d.NodeAt(class, cluster, local)
	}
	return out
}

// Distance returns the length of a shortest path between u and v using the
// paper's closed form: the Hamming distance when u and v share a cluster or
// belong to clusters of distinct classes, and the Hamming distance plus two
// otherwise (one hop to enter a cluster of the other class and one to
// leave it).
func (d *DualCube) Distance(u, v NodeID) int {
	if u == v {
		return 0
	}
	h := popcount(u ^ v)
	if d.Class(u) != d.Class(v) || d.SameCluster(u, v) {
		return h
	}
	return h + 2
}

// Diameter returns the diameter 2n of D_n: one more than the diameter of
// the hypercube with the same number of nodes (Q_{2n-1}).
func (d *DualCube) Diameter() int {
	if d.n == 1 {
		return 1 // K_2
	}
	return 2 * d.n
}

// Route returns a shortest path from u to v, inclusive of both endpoints.
// The path realizes the Distance formula:
//
//   - same cluster: correct node-ID bits in ascending order;
//   - distinct classes: correct u's node-ID field to match the
//     corresponding field of v, take the cross-edge, then correct the
//     remaining field inside v's cluster;
//   - same class, distinct clusters: as above but with a second cross-edge
//     to return to the original class (the "+2").
func (d *DualCube) Route(u, v NodeID) []NodeID {
	path := []NodeID{u}
	cur := u
	walkField := func(target NodeID) {
		// Correct the node-ID bits of cur's class toward target's
		// corresponding bits, ascending.
		off := d.NodeDimOffset(d.Class(cur))
		for i := 0; i < d.m; i++ {
			bit := 1 << (off + i)
			if (cur^target)&bit != 0 {
				cur ^= bit
				path = append(path, cur)
			}
		}
	}
	cross := func() {
		cur = d.CrossNeighbor(cur)
		path = append(path, cur)
	}
	switch {
	case u == v:
	case d.SameCluster(u, v):
		walkField(v)
	case d.Class(u) != d.Class(v):
		// Fix u's node-ID field (it becomes v's cluster-ID field after the
		// cross-edge), cross, then fix the other field inside v's cluster.
		walkField(v)
		cross()
		walkField(v)
	default:
		// Same class, different clusters: detour through the other class.
		walkField(v) // node-ID bits first (they are v's node-ID bits too)
		cross()
		walkField(v) // in the other class these are the old cluster bits
		cross()
	}
	return path
}

// log2 returns the position of the single set bit of x (x must be a power
// of two).
func log2(x int) int {
	i := 0
	for x > 1 {
		x >>= 1
		i++
	}
	return i
}

// DataIndex returns the position of node u in the paper's block data layout
// for parallel prefix (Section 3): element indices are assigned so that the
// indices held by each cluster are consecutive. Class-0 node addresses are
// already consecutive per cluster, so DataIndex(u) = u for class 0; for
// class 1 the two (n-1)-bit fields are swapped — exactly the paper's
// "swap[(u_{2n-2}...u_{n-1}), (u_{n-2}...u_0)]" — which makes cluster c of
// class 1 hold block 2^(n-1)+c. DataIndex is an involution.
func (d *DualCube) DataIndex(u NodeID) int {
	if d.Class(u) == 0 {
		return u
	}
	return 1<<d.classBit() | d.field0(u)<<d.m | d.field1(u)
}

// NodeAtDataIndex returns the node holding element idx under the block
// layout; it is the same field swap (DataIndex is self-inverse).
func (d *DualCube) NodeAtDataIndex(idx int) NodeID { return d.DataIndex(idx) }

// BlockOf returns the block number (0..2^n-1) of node u under the block
// layout: the cluster's position in the global element order.
func (d *DualCube) BlockOf(u NodeID) int {
	return d.Class(u)<<d.m | d.ClusterID(u)
}
