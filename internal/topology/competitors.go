package topology

import "fmt"

// The paper's introduction motivates the dual-cube against the classical
// bounded-degree hypercube derivatives: cube-connected cycles, the shuffle-
// exchange graph and the de Bruijn graph. These are implemented here so the
// comparison table of experiment E11 (degree / diameter / edge count at
// comparable sizes) is generated from real graphs rather than quoted.

// CCC is the cube-connected cycles network CCC_k: each node of a k-cube is
// replaced by a cycle of k nodes; node (p, v) (cycle position p, cube vertex
// v) is adjacent to its two cycle neighbors and, via the "cube" edge at its
// position, to (p, v ^ 2^p). Degree 3 for k >= 3.
type CCC struct {
	k int
}

// NewCCC returns CCC_k for k >= 3 (smaller k degenerates into multigraphs).
func NewCCC(k int) (*CCC, error) {
	if k < 3 || k > 24 {
		return nil, fmt.Errorf("topology: CCC order %d out of range [3,24]", k)
	}
	return &CCC{k: k}, nil
}

// MustCCC is NewCCC but panics on an invalid order.
func MustCCC(k int) *CCC {
	c, err := NewCCC(k)
	if err != nil {
		panic(err)
	}
	return c
}

// Dim returns k.
func (c *CCC) Dim() int { return c.k }

// Name implements Topology.
func (c *CCC) Name() string { return "CCC_" + itoa(c.k) }

// Nodes implements Topology: k * 2^k.
func (c *CCC) Nodes() int { return c.k << c.k }

// id packs (position, vertex) as vertex*k + position.
func (c *CCC) id(p, v int) NodeID { return v*c.k + p }

// unpack splits an ID into cycle position and cube vertex.
func (c *CCC) unpack(u NodeID) (p, v int) { return u % c.k, u / c.k }

// Degree implements Topology: CCC_k is 3-regular for k >= 3.
func (c *CCC) Degree(u NodeID) int { return 3 }

// Neighbors implements Topology.
func (c *CCC) Neighbors(u NodeID) []NodeID {
	p, v := c.unpack(u)
	ns := []NodeID{
		c.id((p+1)%c.k, v),
		c.id((p+c.k-1)%c.k, v),
		c.id(p, v^(1<<p)),
	}
	sortIDs(ns)
	return ns
}

// HasEdge implements Topology.
func (c *CCC) HasEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || u >= c.Nodes() || v >= c.Nodes() || u == v {
		return false
	}
	pu, vu := c.unpack(u)
	pv, vv := c.unpack(v)
	if vu == vv {
		d := pu - pv
		if d < 0 {
			d = -d
		}
		return d == 1 || d == c.k-1
	}
	return pu == pv && vu^vv == 1<<pu
}

// DeBruijn is the (undirected) binary de Bruijn graph DB_q on 2^q nodes:
// node u is adjacent to the nodes reachable by a left shift (2u mod N, +0/1)
// or a right shift (u >> 1, optionally with the high bit set). Self-loops at
// the all-zero and all-one nodes are dropped, so the graph is near-4-regular.
type DeBruijn struct {
	q int
}

// NewDeBruijn returns DB_q for q in [1, MaxHypercubeDim].
func NewDeBruijn(q int) (*DeBruijn, error) {
	if q < 1 || q > MaxHypercubeDim {
		return nil, fmt.Errorf("topology: de Bruijn order %d out of range [1,%d]", q, MaxHypercubeDim)
	}
	return &DeBruijn{q: q}, nil
}

// MustDeBruijn is NewDeBruijn but panics on an invalid order.
func MustDeBruijn(q int) *DeBruijn {
	d, err := NewDeBruijn(q)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Topology.
func (d *DeBruijn) Name() string { return "DB_" + itoa(d.q) }

// Nodes implements Topology.
func (d *DeBruijn) Nodes() int { return 1 << d.q }

// Neighbors implements Topology: shift neighbors with self-loops and
// duplicates removed.
func (d *DeBruijn) Neighbors(u NodeID) []NodeID {
	mask := d.Nodes() - 1
	cand := []NodeID{
		(u << 1) & mask,
		(u<<1)&mask | 1,
		u >> 1,
		u>>1 | 1<<(d.q-1),
	}
	return dedupNeighbors(u, cand)
}

// Degree implements Topology.
func (d *DeBruijn) Degree(u NodeID) int { return len(d.Neighbors(u)) }

// HasEdge implements Topology.
func (d *DeBruijn) HasEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || u >= d.Nodes() || v >= d.Nodes() || u == v {
		return false
	}
	for _, w := range d.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// ShuffleExchange is the shuffle-exchange graph SE_q on 2^q nodes: node u is
// adjacent to u^1 (exchange) and to the left and right rotations of its
// address (shuffle, unshuffle). Self-loops at the fixed points of rotation
// are dropped.
type ShuffleExchange struct {
	q int
}

// NewShuffleExchange returns SE_q for q in [1, MaxHypercubeDim].
func NewShuffleExchange(q int) (*ShuffleExchange, error) {
	if q < 1 || q > MaxHypercubeDim {
		return nil, fmt.Errorf("topology: shuffle-exchange order %d out of range [1,%d]", q, MaxHypercubeDim)
	}
	return &ShuffleExchange{q: q}, nil
}

// MustShuffleExchange is NewShuffleExchange but panics on an invalid order.
func MustShuffleExchange(q int) *ShuffleExchange {
	s, err := NewShuffleExchange(q)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements Topology.
func (s *ShuffleExchange) Name() string { return "SE_" + itoa(s.q) }

// Nodes implements Topology.
func (s *ShuffleExchange) Nodes() int { return 1 << s.q }

// rotl rotates the q-bit address left by one.
func (s *ShuffleExchange) rotl(u NodeID) NodeID {
	mask := s.Nodes() - 1
	return (u<<1)&mask | u>>(s.q-1)
}

// rotr rotates the q-bit address right by one.
func (s *ShuffleExchange) rotr(u NodeID) NodeID {
	return u>>1 | (u&1)<<(s.q-1)
}

// Neighbors implements Topology.
func (s *ShuffleExchange) Neighbors(u NodeID) []NodeID {
	cand := []NodeID{u ^ 1, s.rotl(u), s.rotr(u)}
	return dedupNeighbors(u, cand)
}

// Degree implements Topology.
func (s *ShuffleExchange) Degree(u NodeID) int { return len(s.Neighbors(u)) }

// HasEdge implements Topology.
func (s *ShuffleExchange) HasEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || u >= s.Nodes() || v >= s.Nodes() || u == v {
		return false
	}
	for _, w := range s.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// dedupNeighbors removes self-loops and duplicates from a small candidate
// list and returns it sorted.
func dedupNeighbors(u NodeID, cand []NodeID) []NodeID {
	sortIDs(cand)
	out := cand[:0]
	for i, v := range cand {
		if v == u || (i > 0 && v == cand[i-1]) {
			continue
		}
		out = append(out, v)
	}
	return out
}
