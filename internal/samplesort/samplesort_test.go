package samplesort

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dualcube/internal/seq"
	"dualcube/internal/sortnet"
)

func intLess(a, b int) bool { return a < b }

func TestSampleSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, k int }{{1, 4}, {2, 2}, {2, 16}, {3, 8}, {3, 64}, {4, 16}} {
		N := 1 << (2*tc.n - 1)
		in := make([]int, tc.k*N)
		for i := range in {
			in[i] = rng.Intn(10000) - 5000
		}
		got, st, err := Sort(tc.n, tc.k, in, intLess)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if !seq.IsSorted(got, intLess) {
			t.Fatalf("n=%d k=%d: not sorted", tc.n, tc.k)
		}
		if !seq.SameMultiset(in, got, intLess) {
			t.Fatalf("n=%d k=%d: multiset changed", tc.n, tc.k)
		}
		if st.Cycles != CommRounds(tc.n) {
			t.Errorf("n=%d k=%d: rounds %d, want %d", tc.n, tc.k, st.Cycles, CommRounds(tc.n))
		}
	}
}

func TestSampleSortAdversarial(t *testing.T) {
	n, k := 2, 8
	N := 1 << (2*n - 1)
	cases := map[string]func(i int) int{
		"all-equal":      func(i int) int { return 7 },
		"already-sorted": func(i int) int { return i },
		"reverse":        func(i int) int { return k*N - i },
		"two-values":     func(i int) int { return i % 2 },
		"one-outlier":    func(i int) int { return map[bool]int{true: 1 << 30, false: 5}[i == 17] },
	}
	for label, gen := range cases {
		in := make([]int, k*N)
		for i := range in {
			in[i] = gen(i)
		}
		got, _, err := Sort(n, k, in, intLess)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !seq.IsSorted(got, intLess) || !seq.SameMultiset(in, got, intLess) {
			t.Fatalf("%s: wrong output", label)
		}
	}
}

func TestSampleSortSmallK(t *testing.T) {
	// k < P-1 forces repeated samples; must still sort.
	n, k := 3, 2
	N := 1 << (2*n - 1)
	rng := rand.New(rand.NewSource(2))
	in := make([]int, k*N)
	for i := range in {
		in[i] = rng.Intn(100)
	}
	got, _, err := Sort(n, k, in, intLess)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.IsSorted(got, intLess) || !seq.SameMultiset(in, got, intLess) {
		t.Fatal("small-k sample sort failed")
	}
}

func TestSampleSortVsBitonicCost(t *testing.T) {
	// The headline trade: 4n collective rounds vs 6n²-7n+2 steps.
	for n := 2; n <= 6; n++ {
		if CommRounds(n) >= sortnet.DSortCommSteps(n) {
			t.Errorf("n=%d: sample sort rounds %d not below bitonic %d", n, CommRounds(n), sortnet.DSortCommSteps(n))
		}
	}
}

func TestSampleSortQuick(t *testing.T) {
	f := func(nSeed, kSeed uint8, seed int64) bool {
		n := int(nSeed)%3 + 1
		k := int(kSeed)%12 + 1
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(seed))
		in := make([]int, k*N)
		for i := range in {
			in[i] = rng.Intn(500)
		}
		got, _, err := Sort(n, k, in, intLess)
		if err != nil {
			return false
		}
		return seq.IsSorted(got, intLess) && seq.SameMultiset(in, got, intLess)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSampleSortBadInputs(t *testing.T) {
	if _, _, err := Sort(0, 1, nil, intLess); err == nil {
		t.Error("order 0 should fail")
	}
	if _, _, err := Sort(2, 0, nil, intLess); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := Sort(2, 2, make([]int, 5), intLess); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestSampleSortRecords(t *testing.T) {
	type rec struct {
		key  int
		name string
	}
	n, k := 2, 4
	N := 1 << (2*n - 1)
	rng := rand.New(rand.NewSource(3))
	in := make([]rec, k*N)
	for i := range in {
		in[i] = rec{key: rng.Intn(50), name: string(rune('a' + i%26))}
	}
	got, _, err := Sort(n, k, in, func(a, b rec) bool { return a.key < b.key })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].key < got[i-1].key {
			t.Fatal("records unsorted")
		}
	}
}
