// Package samplesort implements parallel sample sort on the dual-cube — a
// second sorting-algorithm family (future-work item 3 of the paper, "more
// application algorithms using the proposed techniques") built entirely
// from the cluster-technique collectives: regular sampling, an all-gather
// of the samples, local partitioning, and a variable-size total exchange.
//
// Where bitonic D_sort needs Θ(n²) communication steps regardless of load,
// sample sort finishes in 4n collective rounds (one all-gather plus one
// all-to-all-v, each 2n) — the classic latency trade: fewer, fatter
// messages. For k keys per node it is the practical choice; the harness
// compares both in experiment E17.
package samplesort

import (
	"fmt"
	"sort"

	"dualcube/internal/collective"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// Sort sorts k·2^(2n-1) keys (k per node in element order) on D_n by
// parallel sample sort:
//
//  1. every node sorts its chunk locally and draws P-1 regular samples
//     (P = 2^(2n-1) nodes);
//  2. one AllGather (2n rounds) gives every node the full sample multiset,
//     from which all nodes deterministically derive the same P-1 splitters;
//  3. every node partitions its chunk into P buckets by splitter;
//  4. one AllToAllV (2n rounds) delivers bucket j of every node to node j;
//  5. every node sorts its received bucket.
//
// The result is the fully sorted sequence (bucket sizes vary with the key
// distribution, so nodes end with unequal shares; the returned slice is
// their in-order concatenation). Communication: exactly 4n rounds.
func Sort[K any](n, k int, keys []K, less func(a, b K) bool) ([]K, machine.Stats, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if k < 1 {
		return nil, machine.Stats{}, fmt.Errorf("samplesort: chunk size %d < 1", k)
	}
	P := d.Nodes()
	if len(keys) != k*P {
		return nil, machine.Stats{}, fmt.Errorf("samplesort: %d keys != k*P = %d", len(keys), k*P)
	}

	// Phase 1: local sort + regular sampling (host-side per-node state,
	// indexed by element position like the machine programs read it).
	chunks := make([][]K, P)
	samples := make([][]K, P)
	for i := 0; i < P; i++ {
		chunk := append([]K(nil), keys[i*k:(i+1)*k]...)
		sort.SliceStable(chunk, func(a, b int) bool { return less(chunk[a], chunk[b]) })
		chunks[i] = chunk
		// P-1 regular samples per node (with repetition when k < P-1).
		s := make([]K, 0, P-1)
		for t := 1; t < P; t++ {
			s = append(s, chunk[t*k/P])
		}
		samples[i] = s
	}

	// Phase 2: all-gather the samples; every node derives the splitters.
	// The collective carries each node's sample slice as one element.
	gathered, stAG, err := collective.AllGather(n, samples)
	if err != nil {
		return nil, stAG, err
	}
	// All nodes hold identical sample sets; compute the splitters once
	// (they would compute byte-identical results in parallel).
	all := make([]K, 0, P*(P-1))
	for _, s := range gathered[0] {
		all = append(all, s...)
	}
	sort.SliceStable(all, func(a, b int) bool { return less(all[a], all[b]) })
	splitters := make([]K, 0, P-1)
	for t := 1; t < P; t++ {
		splitters = append(splitters, all[t*len(all)/P])
	}

	// Phase 3: partition each chunk by splitter (buckets stay sorted).
	buckets := make([][][]K, P)
	for i := 0; i < P; i++ {
		buckets[i] = make([][]K, P)
		chunk := chunks[i]
		lo := 0
		for b := 0; b < P; b++ {
			hi := len(chunk)
			if b < P-1 {
				sp := splitters[b]
				hi = lo + sort.Search(len(chunk)-lo, func(x int) bool { return less(sp, chunk[lo+x]) })
			}
			buckets[i][b] = chunk[lo:hi]
			lo = hi
		}
	}

	// Phase 4: the variable-size total exchange.
	recv, stA2A, err := collective.AllToAllV(n, buckets)
	if err != nil {
		return nil, stA2A, err
	}

	// Phase 5: each node merges its received (already sorted) runs; the
	// global result is their concatenation in node order.
	out := make([]K, 0, len(keys))
	for j := 0; j < P; j++ {
		var mine []K
		for i := 0; i < P; i++ {
			mine = append(mine, recv[j][i]...)
		}
		sort.SliceStable(mine, func(a, b int) bool { return less(mine[a], mine[b]) })
		out = append(out, mine...)
	}
	return out, stAG.Add(stA2A), nil
}

// CommRounds returns the communication rounds of sample sort on D_n: one
// all-gather plus one all-to-all-v, 2n each.
func CommRounds(n int) int { return 4 * n }
