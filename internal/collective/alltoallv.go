package collective

import (
	"fmt"

	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// AllToAllV is the variable-size total exchange: element i sends the slice
// in[i][j] (possibly empty) to element j, and out[j][i] = in[i][j]. The
// routing is identical to AllToAll — the same 2n dimension-ordered rounds
// of the cluster technique — only the payloads differ in size, so the
// communication ROUNDS stay 2n while per-round volumes follow the data.
// This is the exchange primitive bucket-based algorithms (sample sort,
// radix partitioning) need.
//
// On the route plane the variable sizes cost nothing extra in flight: the
// concatenated values sit still in the flat arena behind a CSR offset
// table indexed by id, and only the int32 ids route. The host carves each
// delivered bundle out of one result slab; empty bundles come back nil.
func AllToAllV[T any](n int, in [][][]T) ([][][]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	N := d.Nodes()
	for i, row := range in {
		if len(row) != N {
			return nil, machine.Stats{}, fmt.Errorf("collective: in[%d] has %d entries, want %d", i, len(row), N)
		}
	}
	rk, err := newRoute[T](d)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	pl := rk.pl
	defer putRoutePlane(N, pl)
	// CSR of the bundles in id order: bundle id (= i·N + j) occupies
	// Vals[VOff[id]:VOff[id+1]].
	voff := pl.GrowVOff(N*N + 1)
	total := 0
	for i, row := range in {
		for j, b := range row {
			voff[i*N+j] = int32(total)
			total += len(b)
		}
	}
	voff[N*N] = int32(total)
	vals := pl.GrowVals(total)
	for i, row := range in {
		for j, b := range row {
			copy(vals[voff[i*N+j]:], b)
		}
	}
	st, err := rk.execute()
	if err != nil {
		return nil, st, err
	}

	valBacking := make([]T, total)
	hdrs := make([][]T, N*N)
	out := make([][][]T, N)
	filled := 0
	var firstE error
	for u := 0; u < N; u++ {
		uerr := rk.nodeErr(u, "bundle")
		cnt := int(pl.Cnt[u])
		myIdx := d.DataIndex(u)
		row := hdrs[myIdx*N : (myIdx+1)*N : (myIdx+1)*N]
		out[myIdx] = row
		if uerr == nil {
			for _, id := range pl.IDs[u*pl.Stride : u*pl.Stride+cnt] {
				dst := int(id) & (N - 1)
				if dst != myIdx {
					if uerr == nil {
						uerr = fmt.Errorf("collective: node %d holds foreign bundle for %d", u, dst)
					}
					continue
				}
				if l := int(voff[id+1] - voff[id]); l > 0 {
					b := valBacking[filled : filled+l : filled+l]
					filled += l
					copy(b, pl.Vals[voff[id]:voff[id+1]])
					row[id>>rk.logN] = b
				}
			}
		}
		if uerr != nil && firstE == nil {
			firstE = uerr
		}
	}
	if firstE != nil {
		return nil, st, firstE
	}
	return out, st, nil
}
