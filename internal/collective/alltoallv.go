package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// vpkt is one variable-size personalized bundle in flight during AllToAllV.
type vpkt[T any] struct {
	src  int // source element index
	dst  int // destination element index
	vals []T
}

// AllToAllV is the variable-size total exchange: element i sends the slice
// in[i][j] (possibly empty) to element j, and out[j][i] = in[i][j]. The
// routing is identical to AllToAll — the same 2n dimension-ordered rounds
// of the cluster technique — only the payloads differ in size, so the
// communication ROUNDS stay 2n while per-round volumes follow the data.
// This is the exchange primitive bucket-based algorithms (sample sort,
// radix partitioning) need.
func AllToAllV[T any](n int, in [][][]T) ([][][]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	N := d.Nodes()
	for i, row := range in {
		if len(row) != N {
			return nil, machine.Stats{}, fmt.Errorf("collective: in[%d] has %d entries, want %d", i, len(row), N)
		}
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpAllToAll)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	fieldMask := d.ClusterSize() - 1
	key := func(class int, dstNode topology.NodeID) int {
		if class == 0 {
			return dstNode & fieldMask
		}
		return dstNode >> (n - 1) & fieldMask
	}

	out := make([][][]T, N)
	for j := range out {
		out[j] = make([][]T, N)
	}
	errs := make([]error, N)
	eng, err := machine.New[[]vpkt[T]](d, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[[]vpkt[T]]) {
		u := c.ID()
		class := d.Class(u)
		local := d.LocalID(u)
		myIdx := d.DataIndex(u)
		x := machine.Interpret(c, sch)

		buf := make([]vpkt[T], 0, N)
		for j := 0; j < N; j++ {
			buf = append(buf, vpkt[T]{src: myIdx, dst: j, vals: in[myIdx][j]})
		}
		dstNode := func(p vpkt[T]) topology.NodeID { return d.NodeAtDataIndex(p.dst) }

		clusterRoute := func() {
			for i := 0; i < m; i++ {
				keep := buf[:0]
				var send []vpkt[T]
				for _, p := range buf {
					if key(class, dstNode(p))&(1<<i) != local&(1<<i) {
						send = append(send, p)
					} else {
						keep = append(keep, p)
					}
				}
				got := x.Exchange(send)
				buf = append(keep, got...)
				c.Ops(1)
			}
		}

		clusterRoute()                       // phase 1
		buf = x.Exchange(buf)                // phase 2
		clusterRoute()                       // phase 3
		keep := make([]vpkt[T], 0, len(buf)) // phase 4
		var send []vpkt[T]
		for _, p := range buf {
			switch dstNode(p) {
			case u:
				keep = append(keep, p)
			case d.CrossNeighbor(u):
				send = append(send, p)
			default:
				if errs[u] == nil {
					errs[u] = fmt.Errorf("collective: all-to-all-v bundle (%d->%d) stranded at node %d", p.src, p.dst, u)
				}
			}
		}
		got := x.Exchange(send)
		buf = append(keep, got...)

		if len(buf) != N {
			if errs[u] == nil {
				errs[u] = fmt.Errorf("collective: node %d received %d of %d bundles", u, len(buf), N)
			}
			return
		}
		row := out[myIdx]
		for _, p := range buf {
			if p.dst != myIdx {
				if errs[u] == nil {
					errs[u] = fmt.Errorf("collective: node %d holds foreign bundle for %d", u, p.dst)
				}
				continue
			}
			row[p.src] = p.vals
		}
	})
	if err != nil {
		return nil, st, err
	}
	if err := firstErr(errs); err != nil {
		return nil, st, err
	}
	return out, st, nil
}
