package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// vpkt is one variable-size personalized bundle in flight during AllToAllV.
type vpkt[T any] struct {
	src  int // source element index
	dst  int // destination element index
	vals []T
}

// AllToAllV is the variable-size total exchange: element i sends the slice
// in[i][j] (possibly empty) to element j, and out[j][i] = in[i][j]. The
// routing is identical to AllToAll — the same 2n dimension-ordered rounds
// of the cluster technique — only the payloads differ in size, so the
// communication ROUNDS stay 2n while per-round volumes follow the data.
// This is the exchange primitive bucket-based algorithms (sample sort,
// radix partitioning) need.
func AllToAllV[T any](n int, in [][][]T) ([][][]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	N := d.Nodes()
	for i, row := range in {
		if len(row) != N {
			return nil, machine.Stats{}, fmt.Errorf("collective: in[%d] has %d entries, want %d", i, len(row), N)
		}
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpAllToAll)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	fieldMask := d.ClusterSize() - 1
	key := func(class int, dstNode topology.NodeID) int {
		if class == 0 {
			return dstNode & fieldMask
		}
		return dstNode >> (n - 1) & fieldMask
	}

	out := make([][][]T, N)
	for j := range out {
		out[j] = make([][]T, N)
	}
	rk := &routeKernel[vpkt[T]]{
		d: d, mdim: m, key: key,
		dst: func(p vpkt[T]) int { return p.dst },
		stranded: func(p vpkt[T], u int) string {
			return fmt.Sprintf("collective: all-to-all-v bundle (%d->%d) stranded at node %d", p.src, p.dst, u)
		},
		init: func(u, myIdx int) []vpkt[T] {
			buf := make([]vpkt[T], 0, N)
			for j := 0; j < N; j++ {
				buf = append(buf, vpkt[T]{src: myIdx, dst: j, vals: in[myIdx][j]})
			}
			return buf
		},
		bufs: make([][]vpkt[T], N),
		errs: make([]error, N),
	}
	st, err := dcomm.Execute(sch, machine.Config{}, rk)
	if err != nil {
		return nil, st, err
	}
	for u := 0; u < N; u++ {
		buf := rk.bufs[u]
		myIdx := d.DataIndex(u)
		if len(buf) != N {
			if rk.errs[u] == nil {
				rk.errs[u] = fmt.Errorf("collective: node %d received %d of %d bundles", u, len(buf), N)
			}
			continue
		}
		row := out[myIdx]
		for _, p := range buf {
			if p.dst != myIdx {
				if rk.errs[u] == nil {
					rk.errs[u] = fmt.Errorf("collective: node %d holds foreign bundle for %d", u, p.dst)
				}
				continue
			}
			row[p.src] = p.vals
		}
	}
	if err := firstErr(rk.errs); err != nil {
		return nil, st, err
	}
	return out, st, nil
}
