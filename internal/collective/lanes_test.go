package collective

import (
	"math/rand"
	"testing"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// TestLaneAllReduceMatchesUnbatched: a k-lane batched all-reduce must
// deliver, on every lane, exactly what the single-lane AllReduce computes
// (same combine order, so exact equality — checked under concatenation
// too, where order errors cannot cancel).
func TestLaneAllReduceMatchesUnbatched(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 4} {
		d := topology.MustDualCube(n)
		sch, err := dcomm.Compiled(d, dcomm.OpAllReduce)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, 8} {
			in := make([][]int64, k)
			res := make([][]int64, k)
			for l := range in {
				in[l] = make([]int64, d.Nodes())
				for i := range in[l] {
					in[l][i] = int64(rng.Intn(4001) - 2000)
				}
				res[l] = make([]int64, d.Nodes())
			}
			lanes := machine.NewLanes[int64](d.Nodes(), k)
			kern := NewLaneAllReduceKernel(d, monoid.Sum[int64](), lanes, in, res)
			if _, err := dcomm.Execute(sch, machine.Config{}, kern); err != nil {
				t.Fatal(err)
			}
			for l := 0; l < k; l++ {
				want, _, err := AllReduce(n, in[l], monoid.Sum[int64]())
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if res[l][i] != want[i] {
						t.Fatalf("n=%d k=%d lane %d: res[%d]=%d, want %d", n, k, l, i, res[l][i], want[i])
					}
				}
			}
		}
	}
}

// TestLaneBroadcastAllRoots floods k distinct values from every possible
// root and checks each lane delivers its value everywhere.
func TestLaneBroadcastAllRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		d := topology.MustDualCube(n)
		sch, err := dcomm.Compiled(d, dcomm.OpBroadcast)
		if err != nil {
			t.Fatal(err)
		}
		k := 4
		for root := 0; root < d.Nodes(); root++ {
			values := make([]int64, k)
			for l := range values {
				values[l] = int64(1000*root + l)
			}
			lanes := machine.NewLanes[int64](d.Nodes(), k)
			kern := NewLaneBroadcastKernel(d, root, lanes, values)
			if _, err := dcomm.Execute(sch, machine.Config{}, kern); err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			if err := kern.Verify(); err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			for u := 0; u < d.Nodes(); u++ {
				got := kern.Value(u)
				for l := range values {
					if got[l] != values[l] {
						t.Fatalf("n=%d root=%d node %d lane %d: got %d, want %d",
							n, root, u, l, got[l], values[l])
					}
				}
			}
		}
	}
}
