package collective

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dualcube/internal/monoid"
	"dualcube/internal/seq"
	"dualcube/internal/topology"
)

func TestBroadcastAllRoots(t *testing.T) {
	for n := 1; n <= 4; n++ {
		N := 1 << (2*n - 1)
		for root := 0; root < N; root++ {
			got, st, err := Broadcast(n, root, 1000+root)
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			for u, v := range got {
				if v != 1000+root {
					t.Fatalf("n=%d root=%d: node %d got %d", n, root, u, v)
				}
			}
			if st.Cycles != 2*n {
				t.Errorf("n=%d root=%d: comm %d, want %d (diameter)", n, root, st.Cycles, 2*n)
			}
		}
	}
}

func TestBroadcastLargerNetwork(t *testing.T) {
	n := 6
	N := 1 << (2*n - 1)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		root := rng.Intn(N)
		got, st, err := Broadcast(n, root, "payload")
		if err != nil {
			t.Fatal(err)
		}
		for u, v := range got {
			if v != "payload" {
				t.Fatalf("node %d missed broadcast", u)
			}
		}
		if st.Cycles != 2*n {
			t.Errorf("comm %d, want %d", st.Cycles, 2*n)
		}
	}
}

func TestBroadcastBadArgs(t *testing.T) {
	if _, _, err := Broadcast(0, 0, 1); err == nil {
		t.Error("order 0 should fail")
	}
	if _, _, err := Broadcast(2, -1, 1); err == nil {
		t.Error("negative root should fail")
	}
	if _, _, err := Broadcast(2, 8, 1); err == nil {
		t.Error("out-of-range root should fail")
	}
}

func TestAllReduceSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 5; n++ {
		N := 1 << (2*n - 1)
		in := make([]int, N)
		total := 0
		for i := range in {
			in[i] = rng.Intn(100) - 50
			total += in[i]
		}
		got, st, err := AllReduce(n, in, monoid.Sum[int]())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for u, v := range got {
			if v != total {
				t.Fatalf("n=%d: node %d has %d, want %d", n, u, v, total)
			}
		}
		if st.Cycles != 2*n {
			t.Errorf("n=%d: comm %d, want %d", n, st.Cycles, 2*n)
		}
	}
}

func TestAllReduceNonCommutativeOrder(t *testing.T) {
	// Concatenation all-reduce must produce the in-order concatenation of
	// the element sequence on every node.
	for n := 1; n <= 3; n++ {
		N := 1 << (2*n - 1)
		in := make([]string, N)
		for i := range in {
			in[i] = string(rune('a' + i%26))
		}
		want := seq.Reduce(in, monoid.Concat())
		got, _, err := AllReduce(n, in, monoid.Concat())
		if err != nil {
			t.Fatal(err)
		}
		for u, v := range got {
			if v != want {
				t.Fatalf("n=%d node %d: %q, want %q", n, u, v, want)
			}
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	n := 3
	N := 1 << (2*n - 1)
	in := make([]int, N)
	for i := range in {
		in[i] = (i * 7) % N
	}
	got, _, err := AllReduce(n, in, monoid.MaxInt())
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Reduce(in, monoid.MaxInt())
	for _, v := range got {
		if v != want {
			t.Fatalf("max allreduce: %d, want %d", v, want)
		}
	}
}

func TestAllReduceBadArgs(t *testing.T) {
	if _, _, err := AllReduce(2, make([]int, 3), monoid.Sum[int]()); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := AllReduce(0, nil, monoid.Sum[int]()); err == nil {
		t.Error("order 0 should fail")
	}
}

func TestReduce(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	in := make([]int, N)
	for i := range in {
		in[i] = i * i
	}
	want := seq.Reduce(in, monoid.Sum[int]())
	for root := 0; root < N; root++ {
		got, _, err := Reduce(n, root, in, monoid.Sum[int]())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("root %d: %d, want %d", root, got, want)
		}
	}
	if _, _, err := Reduce(2, 99, in, monoid.Sum[int]()); err == nil {
		t.Error("bad root should fail")
	}
	if _, _, err := Reduce(0, 0, nil, monoid.Sum[int]()); err == nil {
		t.Error("order 0 should fail")
	}
}

func TestBarrier(t *testing.T) {
	for n := 1; n <= 4; n++ {
		st, err := Barrier(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if st.Cycles != 2*n {
			t.Errorf("n=%d: barrier comm %d, want %d", n, st.Cycles, 2*n)
		}
	}
}

func TestGatherAllRoots(t *testing.T) {
	for n := 1; n <= 3; n++ {
		N := 1 << (2*n - 1)
		in := make([]int, N)
		for i := range in {
			in[i] = i*10 + 7
		}
		for root := 0; root < N; root++ {
			got, st, err := Gather(n, root, in)
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			for i := range in {
				if got[i] != in[i] {
					t.Fatalf("n=%d root=%d: element %d = %d, want %d", n, root, i, got[i], in[i])
				}
			}
			if st.Cycles != 2*n {
				t.Errorf("n=%d root=%d: comm %d, want %d", n, root, st.Cycles, 2*n)
			}
		}
	}
}

func TestGatherLarger(t *testing.T) {
	n := 5
	N := 1 << (2*n - 1)
	in := make([]int, N)
	rng := rand.New(rand.NewSource(3))
	for i := range in {
		in[i] = rng.Int()
	}
	got, st, err := Gather(n, 13, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("element %d mismatched", i)
		}
	}
	if st.Cycles != 2*n {
		t.Errorf("comm %d, want %d", st.Cycles, 2*n)
	}
}

func TestGatherBadArgs(t *testing.T) {
	if _, _, err := Gather(2, 0, make([]int, 3)); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := Gather(2, -2, make([]int, 8)); err == nil {
		t.Error("bad root should fail")
	}
	if _, _, err := Gather[int](0, 0, nil); err == nil {
		t.Error("order 0 should fail")
	}
}

func TestPlaneLayout(t *testing.T) {
	// The gather/scatter arena order must be a permutation of the slots with
	// the class halves contiguous: class-0 nodes fill [0, N/2), class-1
	// nodes [N/2, N) — phase 1 of scatter (and phase 4 of gather) splits
	// (merges) the arena exactly at that boundary.
	for n := 1; n <= 4; n++ {
		N := 1 << (2*n - 1)
		d, err := topology.Validated(n, N)
		if err != nil {
			t.Fatal(err)
		}
		pos := layoutFor(d).posOf
		seen := make([]bool, N)
		for u := 0; u < N; u++ {
			p := int(pos[u])
			if p < 0 || p >= N || seen[p] {
				t.Fatalf("n=%d: pos[%d]=%d is out of range or duplicated", n, u, p)
			}
			seen[p] = true
			if half := N / 2; (p >= half) != (d.Class(u) == 1) {
				t.Fatalf("n=%d: node %d (class %d) at slot %d crosses the class boundary", n, u, d.Class(u), p)
			}
		}
	}
}

func TestCollectiveQuick(t *testing.T) {
	f := func(nSeed, rootSeed uint8, seed int64) bool {
		n := int(nSeed)%3 + 1
		N := 1 << (2*n - 1)
		root := int(rootSeed) % N
		rng := rand.New(rand.NewSource(seed))
		in := make([]int, N)
		for i := range in {
			in[i] = rng.Intn(1000)
		}
		all, _, err := AllReduce(n, in, monoid.Sum[int]())
		if err != nil {
			return false
		}
		want := seq.Reduce(in, monoid.Sum[int]())
		if all[root] != want {
			return false
		}
		g, _, err := Gather(n, root, in)
		if err != nil {
			return false
		}
		for i := range in {
			if g[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
