package collective

import (
	"fmt"

	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// This file holds the batched (k-lane) counterparts of the all-reduce and
// broadcast kernels, the shapes the serving front-end coalesces compatible
// requests into. Each lane computes exactly what the single-lane kernel
// computes — the combine order per lane mirrors allReduceKernel and
// broadcastKernel statement for statement — while the schedule walk and the
// per-step role logic are paid once for all lanes. Broadcast lanes must
// share one root: the flood's send/receive roles depend on the root, and a
// batched step has a single role per node.

// laneAllReduceKernel is allReduceKernel over k-wide rows.
type laneAllReduceKernel[E any] struct {
	d     *topology.DualCube
	m     monoid.Monoid[E]
	mdim  int
	k     int
	lanes *machine.Lanes[E]
	in    [][]E // k input vectors, element order
	out   []E   // node-major k-wide: the own-class grand total parking slot
	t     []E   // node-major k-wide: running totals
	res   [][]E // k result vectors (per node, all equal), element order
}

// NewLaneAllReduceKernel builds the batched all-reduce kernel: lane l
// combines in[l] in element order and delivers the total to every slot of
// res[l]. lanes must be at least len(in) wide.
func NewLaneAllReduceKernel[E any](d *topology.DualCube, m monoid.Monoid[E], lanes *machine.Lanes[E], in, res [][]E) machine.DirectKernel[[]E] {
	n := d.Nodes()
	k := len(in)
	state := make([]E, 2*n*k)
	return &laneAllReduceKernel[E]{
		d: d, m: m, mdim: d.ClusterDim(), k: k,
		lanes: lanes, in: in, res: res,
		out: state[: n*k : n*k],
		t:   state[n*k:],
	}
}

func (ak *laneAllReduceKernel[E]) Produce(dc *machine.DirectCtx, step, u int) (machine.DirectRole, []E) {
	k := ak.k
	t := ak.t[u*k : (u+1)*k]
	if step == 0 {
		idx := ak.d.DataIndex(u)
		for l := 0; l < k; l++ {
			t[l] = ak.in[l][idx]
		}
	}
	row := ak.lanes.Row(step, u)[:k]
	copy(row, t)
	return machine.DirectExchange, row
}

func (ak *laneAllReduceKernel[E]) Absorb(dc *machine.DirectCtx, step, u int, v []E) {
	m := ak.m
	k := ak.k
	local := ak.d.LocalID(u)
	// Re-slice the rows to length k up front so every in-loop index is
	// bounds-check-free (the escgate budget pins this at zero).
	t := ak.t[u*k:][:k]
	v = v[:k]
	switch {
	case step < ak.mdim:
		if local&(1<<step) != 0 {
			for l := 0; l < k; l++ {
				t[l] = m.Combine(v[l], t[l])
			}
		} else {
			for l := 0; l < k; l++ {
				t[l] = m.Combine(t[l], v[l])
			}
		}
		dc.Ops(1)
	case step == ak.mdim:
		// Cross totals; all-reduce them in cluster-index order next.
		copy(t, v)
	case step <= 2*ak.mdim:
		if i := step - ak.mdim - 1; local&(1<<i) != 0 {
			for l := 0; l < k; l++ {
				t[l] = m.Combine(v[l], t[l])
			}
		} else {
			for l := 0; l < k; l++ {
				t[l] = m.Combine(t[l], v[l])
			}
		}
		dc.Ops(1)
	default:
		// t is now the grand total of the OTHER class; v is this node's own
		// class total, swapped back over the cross-edge.
		copy(ak.out[u*k:(u+1)*k], v)
	}
}

func (ak *laneAllReduceKernel[E]) Local(dc *machine.DirectCtx, step, u int) {
	k := ak.k
	idx := ak.d.DataIndex(u)
	t := ak.t[u*k : (u+1)*k]
	out := ak.out[u*k : (u+1)*k]
	if ak.d.Class(u) == 0 {
		for l := 0; l < k; l++ {
			ak.res[l][idx] = ak.m.Combine(out[l], t[l])
		}
	} else {
		for l := 0; l < k; l++ {
			ak.res[l][idx] = ak.m.Combine(t[l], out[l])
		}
	}
	dc.Ops(1)
}

// LaneBroadcastKernel is broadcastKernel over k-wide rows: k values flooded
// from one shared root. Verify must be called after the run.
type LaneBroadcastKernel[E any] struct {
	d           *topology.DualCube
	mdim        int
	k           int
	root        topology.NodeID
	rootClass   int
	rootCluster int
	rootLocal   int
	lanes       *machine.Lanes[E]
	val         []E // node-major k-wide: the lane values held by each node
	have        []bool
}

// NewLaneBroadcastKernel builds the batched broadcast kernel delivering
// values[l] from root to every node on lane l. The caller has validated
// root; lanes must be at least len(values) wide.
func NewLaneBroadcastKernel[E any](d *topology.DualCube, root topology.NodeID, lanes *machine.Lanes[E], values []E) *LaneBroadcastKernel[E] {
	n := d.Nodes()
	k := len(values)
	bk := &LaneBroadcastKernel[E]{
		d: d, mdim: d.ClusterDim(), k: k, root: root,
		rootClass: d.Class(root), rootCluster: d.ClusterID(root), rootLocal: d.LocalID(root),
		lanes: lanes,
		val:   make([]E, n*k),
		have:  make([]bool, n),
	}
	bk.have[root] = true
	copy(bk.val[root*k:(root+1)*k], values)
	return bk
}

func (bk *LaneBroadcastKernel[E]) role(step, u int) machine.DirectRole {
	d := bk.d
	class, local := d.Class(u), d.LocalID(u)
	have := bk.have[u]
	switch {
	case step < bk.mdim:
		// Phase 1: flood root's cluster (see broadcastKernel).
		if class == bk.rootClass && d.ClusterID(u) == bk.rootCluster {
			i := step
			mask := ^((1 << (i + 1)) - 1)
			if have && local&(1<<i) == bk.rootLocal&(1<<i) {
				return machine.DirectSend
			} else if !have && local&mask == bk.rootLocal&mask {
				return machine.DirectRecv
			}
		}
	case step == bk.mdim:
		// Phase 2: root's cluster crosses over.
		if class == bk.rootClass && d.ClusterID(u) == bk.rootCluster {
			return machine.DirectSend
		} else if class != bk.rootClass && local == bk.rootCluster {
			return machine.DirectRecv
		}
	case step <= 2*bk.mdim:
		// Phase 3: flood every cluster of the other class from its seed.
		if class != bk.rootClass {
			i := step - bk.mdim - 1
			seedLocal := bk.rootCluster
			mask := ^((1 << (i + 1)) - 1)
			if have && local&(1<<i) == seedLocal&(1<<i) {
				return machine.DirectSend
			} else if !have && local&mask == seedLocal&mask {
				return machine.DirectRecv
			}
		}
	default:
		// Phase 4: the other class crosses back.
		if class != bk.rootClass {
			return machine.DirectSend
		}
		return machine.DirectRecv
	}
	return machine.DirectIdle
}

func (bk *LaneBroadcastKernel[E]) Produce(dc *machine.DirectCtx, step, u int) (machine.DirectRole, []E) {
	role := bk.role(step, u)
	row := bk.lanes.Row(step, u)[:bk.k]
	if role == machine.DirectSend || role == machine.DirectExchange {
		copy(row, bk.val[u*bk.k:(u+1)*bk.k])
	}
	return role, row
}

func (bk *LaneBroadcastKernel[E]) Absorb(dc *machine.DirectCtx, step, u int, v []E) {
	if !bk.have[u] {
		copy(bk.val[u*bk.k:(u+1)*bk.k], v)
		bk.have[u] = true
	}
}

func (bk *LaneBroadcastKernel[E]) Local(dc *machine.DirectCtx, step, u int) {}

// Verify reports an error if any node missed the flood — the same
// post-condition the single-lane Broadcast host checks.
func (bk *LaneBroadcastKernel[E]) Verify() error {
	for u, ok := range bk.have {
		if !ok {
			return fmt.Errorf("collective: node %d did not receive the broadcast", u)
		}
	}
	return nil
}

// Value returns the delivered lane values as seen by node u.
func (bk *LaneBroadcastKernel[E]) Value(u int) []E {
	return bk.val[u*bk.k : (u+1)*bk.k]
}
