package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// AllToAll performs the total (all-to-all personalized) exchange: element
// i sends the distinct value in[i][j] to element j, and out[j][i] = in[i][j]
// — a distributed matrix transpose. It runs in 2n communication rounds
// (each round one full-buffer exchange per node), using the same
// four-phase skeleton as the other cluster-technique collectives:
//
//  1. n-1 in-cluster rounds of dimension-ordered routing: every item moves
//     to the cluster member whose local index equals the destination's
//     "other field" — the coordinate that becomes the cluster ID after a
//     cross-edge hop;
//  2. one cross-edge round carrying every item (the cross-edge permutation
//     turns exit-locals into cluster IDs, landing each item in a cluster
//     adjacent to its goal);
//  3. n-1 more in-cluster rounds under the same key rule, which brings
//     every item either home or to its destination's cross neighbor;
//  4. one final cross-edge round delivering the remainder.
//
// Per-node buffers stay at N items throughout (the routing is perfectly
// balanced for the full personalized exchange). The items ride the route
// payload plane: the values sit still in one flat arena while int32 ids
// (src·N + dst) move by copy through fixed stride-N regions, double-
// buffered send planes carrying each round's outgoing run — so a warm call
// allocates only the result slab plus fixed run bookkeeping.
func AllToAll[T any](n int, in [][]T) ([][]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	N := d.Nodes()
	for i, row := range in {
		if len(row) != N {
			return nil, machine.Stats{}, fmt.Errorf("collective: in[%d] has %d entries, want %d", i, len(row), N)
		}
	}
	rk, err := newRoute[T](d)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	pl := rk.pl
	defer putRoutePlane(N, pl)
	vals := pl.GrowVals(N * N)
	for i, row := range in {
		copy(vals[i*N:(i+1)*N], row)
	}
	st, err := rk.execute()
	if err != nil {
		return nil, st, err
	}

	backing := make([]T, N*N)
	out := make([][]T, N)
	logN := rk.logN
	var firstE error
	for u := 0; u < N; u++ {
		uerr := rk.nodeErr(u, "item")
		cnt := int(pl.Cnt[u])
		myIdx := d.DataIndex(u)
		row := backing[myIdx*N : (myIdx+1)*N : (myIdx+1)*N]
		out[myIdx] = row
		if uerr == nil {
			for _, id := range pl.IDs[u*pl.Stride : u*pl.Stride+cnt] {
				dst := int(id) & (N - 1)
				if dst != myIdx {
					if uerr == nil {
						uerr = fmt.Errorf("collective: node %d holds foreign item for %d", u, dst)
					}
					continue
				}
				row[id>>logN] = pl.Vals[id]
			}
		}
		if uerr != nil && firstE == nil {
			firstE = uerr
		}
	}
	if firstE != nil {
		return nil, st, firstE
	}
	return out, st, nil
}

// newRoute builds the route kernel for one total exchange on d: it
// compiles the schedule, checks the id plane can address N² items, and
// checks a plane out of the stash. The caller fills the value arena (and
// the CSR table for the variable-size exchange), then calls execute.
func newRoute[T any](d *topology.DualCube) (*routeKernel[T], error) {
	sch, err := dcomm.Compiled(d, dcomm.OpAllToAll)
	if err != nil {
		return nil, err
	}
	n := d.Order()
	if 2*(2*n-1) > 31 {
		// id = src<<(2n-1) | dst must fit an int32; the excluded orders are
		// far beyond what an N² exchange could materialize anyway.
		return nil, fmt.Errorf("collective: all-to-all id plane overflows at order %d", n)
	}
	return &routeKernel[T]{
		d: d, sch: sch, mdim: d.ClusterDim(), nodes: d.Nodes(),
		logN: 2*n - 1, fieldMask: d.ClusterSize() - 1, clsShift: n - 1,
		pl: routePlane[T](d.Nodes()),
	}, nil
}

// routeKernel is the dimension-ordered total-exchange router shared by
// AllToAll and AllToAllV over the route plane: per in-cluster round a node
// compacts its kept ids in place and copies the moving run into its send
// region, the cross rounds carry the whole buffer or the cross-destined
// remainder. A misrouted id is recorded in the plane's Bad slot (the host
// also re-checks counts and ownership after the run).
type routeKernel[T any] struct {
	d         *topology.DualCube
	sch       *machine.Schedule
	mdim      int
	nodes     int
	logN      int // id = srcElem<<logN | dstElem
	fieldMask int
	clsShift  int
	pl        *machine.RoutePlane[T]
}

func (rk *routeKernel[T]) execute() (machine.Stats, error) {
	return dcomm.Execute(rk.sch, machine.Config{}, rk)
}

// nodeErr formats node u's post-run delivery error (or nil): the kernel's
// recorded marker first, then the count check. kind is the diagnostic noun
// ("item" for alltoall, "bundle" for alltoallv).
func (rk *routeKernel[T]) nodeErr(u int, kind string) error {
	N := rk.nodes
	if b := rk.pl.Bad[u]; b != 0 {
		if b < 0 {
			return fmt.Errorf("collective: node %d overflowed its route plane region", u)
		}
		id := int(b - 1)
		return fmt.Errorf("collective: all-to-all%s (%d->%d) stranded at node %d",
			strandedNoun(kind), id>>rk.logN, id&(N-1), u)
	}
	if cnt := int(rk.pl.Cnt[u]); cnt != N {
		return fmt.Errorf("collective: node %d received %d of %d %ss", u, cnt, N, kind)
	}
	return nil
}

// strandedNoun renders the stranded-diagnostic spelling: " item" for the
// fixed-size exchange, "-v bundle" for the variable one — preserving the
// exact pre-plane error strings.
func strandedNoun(kind string) string {
	if kind == "bundle" {
		return "-v bundle"
	}
	return " item"
}

// key is the within-cluster routing target of an item at a node of the
// given class: the destination coordinate occupying this class's local
// field (part I for class 0, part II for class 1).
func (rk *routeKernel[T]) key(class int, dstNode topology.NodeID) int {
	if class == 0 {
		return dstNode & rk.fieldMask
	}
	return dstNode >> rk.clsShift & rk.fieldMask
}

func (rk *routeKernel[T]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, machine.Extent) {
	d := rk.d
	p := rk.pl
	base := u * p.Stride
	if k == 0 {
		// Seed: node u's N outgoing items, ids myIdx·N + j in order.
		myIdx := d.DataIndex(u)
		ids := p.IDs[base : base+p.Stride]
		first := int32(myIdx << rk.logN)
		for j := range ids {
			ids[j] = first | int32(j)
		}
		p.Cnt[u] = int32(p.Stride)
	}
	cnt := int(p.Cnt[u])
	ids := p.IDs[base : base+cnt]
	send := p.Send[k&1][base : base+p.Stride]
	switch {
	case k == rk.mdim:
		// Phase 2: the cross-edge carries the whole buffer.
		copy(send, ids)
		return machine.DirectExchange, machine.Extent{Off: int32(base), Len: int32(cnt)}
	case k < rk.mdim, k <= 2*rk.mdim:
		// Phases 1 and 3: one dimension-ordered routing round; items whose
		// key differs at the step's bit move to the partner. Keeps compact
		// in place, the moving run copies into this step's send plane.
		i := k
		if i > rk.mdim {
			i = k - rk.mdim - 1
		}
		class, local := d.Class(u), d.LocalID(u)
		keep, sent := 0, 0
		for _, id := range ids {
			dstNode := d.NodeAtDataIndex(int(id) & (rk.nodes - 1))
			if rk.key(class, dstNode)&(1<<i) != local&(1<<i) {
				send[sent] = id
				sent++
			} else {
				ids[keep] = id
				keep++
			}
		}
		p.Cnt[u] = int32(keep)
		return machine.DirectExchange, machine.Extent{Off: int32(base), Len: int32(sent)}
	default:
		// Phase 4: deliver the cross-destined remainder; everything else
		// must already be home.
		cross := d.CrossNeighbor(u)
		keep, sent := 0, 0
		for _, id := range ids {
			switch int(d.NodeAtDataIndex(int(id) & (rk.nodes - 1))) {
			case u:
				ids[keep] = id
				keep++
			case cross:
				send[sent] = id
				sent++
			default:
				// A misrouted item means the routing keys disagree with the
				// topology; record it and drop the item — the host's count
				// check fails too, and the run reports the first error.
				if p.Bad[u] == 0 {
					p.Bad[u] = id + 1
				}
			}
		}
		p.Cnt[u] = int32(keep)
		return machine.DirectExchange, machine.Extent{Off: int32(base), Len: int32(sent)}
	}
}

func (rk *routeKernel[T]) Absorb(dc *machine.DirectCtx, k, u int, v machine.Extent) {
	p := rk.pl
	base := u * p.Stride
	src := p.Send[k&1][v.Off : v.Off+v.Len]
	if k == rk.mdim {
		copy(p.IDs[base:base+len(src)], src)
		p.Cnt[u] = v.Len
		return
	}
	cnt := int(p.Cnt[u])
	if cnt+len(src) > p.Stride {
		// Region overflow is a routing-protocol failure (the balanced
		// exchange never exceeds N per node); record and drop.
		if p.Bad[u] == 0 {
			p.Bad[u] = -1
		}
		return
	}
	copy(p.IDs[base+cnt:base+cnt+len(src)], src)
	p.Cnt[u] = int32(cnt + len(src))
	if k < 2*rk.mdim+1 {
		dc.Ops(1)
	}
}

func (rk *routeKernel[T]) Local(dc *machine.DirectCtx, k, u int) {}

// ReduceScatter combines the element-wise contributions of all nodes and
// leaves each node with its own combined element: out[j] = in[0][j] ⊕
// in[1][j] ⊕ ... ⊕ in[N-1][j], combined in source order. Implemented as a
// total exchange (2n rounds) followed by a local reduction round; on a
// machine with wormhole combining one could fold en route, but the round
// count — which is what the paper's model prices — is the same.
func ReduceScatter[T any](n int, in [][]T, m monoid.Monoid[T]) ([]T, machine.Stats, error) {
	trans, st, err := AllToAll(n, in)
	if err != nil {
		return nil, st, err
	}
	out := make([]T, len(trans))
	for j, row := range trans {
		acc := m.Identity()
		for _, v := range row {
			acc = m.Combine(acc, v)
		}
		out[j] = acc
	}
	st.MaxOps++
	st.TotalOps += int64(len(trans))
	return out, st, nil
}
