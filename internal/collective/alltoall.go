package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// pkt is one personalized message in flight during AllToAll.
type pkt[T any] struct {
	src int // source element index
	dst int // destination element index
	val T
}

// AllToAll performs the total (all-to-all personalized) exchange: element
// i sends the distinct value in[i][j] to element j, and out[j][i] = in[i][j]
// — a distributed matrix transpose. It runs in 2n communication rounds
// (each round one full-buffer exchange per node), using the same
// four-phase skeleton as the other cluster-technique collectives:
//
//  1. n-1 in-cluster rounds of dimension-ordered routing: every item moves
//     to the cluster member whose local index equals the destination's
//     "other field" — the coordinate that becomes the cluster ID after a
//     cross-edge hop;
//  2. one cross-edge round carrying every item (the cross-edge permutation
//     turns exit-locals into cluster IDs, landing each item in a cluster
//     adjacent to its goal);
//  3. n-1 more in-cluster rounds under the same key rule, which brings
//     every item either home or to its destination's cross neighbor;
//  4. one final cross-edge round delivering the remainder.
//
// Per-node buffers stay at N items throughout (the routing is perfectly
// balanced for the full personalized exchange).
func AllToAll[T any](n int, in [][]T) ([][]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	N := d.Nodes()
	for i, row := range in {
		if len(row) != N {
			return nil, machine.Stats{}, fmt.Errorf("collective: in[%d] has %d entries, want %d", i, len(row), N)
		}
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpAllToAll)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	fieldMask := d.ClusterSize() - 1

	// key is the within-cluster routing target of an item at a node of the
	// given class: the destination coordinate occupying this class's local
	// field (part I for class 0, part II for class 1).
	key := func(class int, dstNode topology.NodeID) int {
		if class == 0 {
			return dstNode & fieldMask
		}
		return dstNode >> (n - 1) & fieldMask
	}

	out := make([][]T, N)
	for j := range out {
		out[j] = make([]T, N)
	}
	rk := &routeKernel[pkt[T]]{
		d: d, mdim: m, key: key,
		dst: func(p pkt[T]) int { return p.dst },
		stranded: func(p pkt[T], u int) string {
			return fmt.Sprintf("collective: all-to-all item (%d->%d) stranded at node %d", p.src, p.dst, u)
		},
		init: func(u, myIdx int) []pkt[T] {
			buf := make([]pkt[T], N)
			for j := 0; j < N; j++ {
				buf[j] = pkt[T]{src: myIdx, dst: j, val: in[myIdx][j]}
			}
			return buf
		},
		bufs: make([][]pkt[T], N),
		errs: make([]error, N),
	}
	st, err := dcomm.Execute(sch, machine.Config{}, rk)
	if err != nil {
		return nil, st, err
	}
	for u := 0; u < N; u++ {
		buf := rk.bufs[u]
		myIdx := d.DataIndex(u)
		if len(buf) != N {
			if rk.errs[u] == nil {
				rk.errs[u] = fmt.Errorf("collective: node %d received %d of %d items", u, len(buf), N)
			}
			continue
		}
		row := out[myIdx]
		for _, p := range buf {
			if p.dst != myIdx {
				if rk.errs[u] == nil {
					rk.errs[u] = fmt.Errorf("collective: node %d holds foreign item for %d", u, p.dst)
				}
				continue
			}
			row[p.src] = p.val
		}
	}
	if err := firstErr(rk.errs); err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// routeKernel is the dimension-ordered total-exchange router shared by
// AllToAll (fixed-size pkt payloads) and AllToAllV (variable-size vpkt
// bundles): per in-cluster round a node splits its buffer by the routing key
// bit and exchanges the moving half, the cross rounds carry the whole
// buffer or the cross-destined remainder. A misrouted packet is recorded in
// errs (the host also re-checks counts and ownership after the run).
type routeKernel[P any] struct {
	d        *topology.DualCube
	mdim     int
	key      func(class int, dstNode topology.NodeID) int
	dst      func(P) int            // destination element index
	stranded func(P, int) string    // phase-4 misroute diagnostics
	init     func(u, myIdx int) []P // initial buffer of node u
	bufs     [][]P
	errs     []error
}

func (rk *routeKernel[P]) dstNode(p P) topology.NodeID {
	return rk.d.NodeAtDataIndex(rk.dst(p))
}

func (rk *routeKernel[P]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, []P) {
	d := rk.d
	if k == 0 {
		rk.bufs[u] = rk.init(u, d.DataIndex(u))
	}
	switch {
	case k == rk.mdim:
		// Phase 2: the cross-edge carries the whole buffer.
		return machine.DirectExchange, rk.bufs[u]
	case k < rk.mdim, k <= 2*rk.mdim:
		// Phases 1 and 3: one dimension-ordered routing round; items whose
		// key differs at the step's bit move to the partner.
		i := k
		if i > rk.mdim {
			i = k - rk.mdim - 1
		}
		class, local := d.Class(u), d.LocalID(u)
		keep := rk.bufs[u][:0]
		var send []P
		for _, p := range rk.bufs[u] {
			if rk.key(class, rk.dstNode(p))&(1<<i) != local&(1<<i) {
				send = append(send, p) //dcvet:allow kernelpure -- v-collective bundle growth pending the zero-alloc payload plane (ROADMAP); escgate budgets it
			} else {
				keep = append(keep, p) //dcvet:allow kernelpure -- v-collective bundle growth pending the zero-alloc payload plane (ROADMAP); escgate budgets it
			}
		}
		rk.bufs[u] = keep
		return machine.DirectExchange, send
	default:
		// Phase 4: deliver the cross-destined remainder; everything else
		// must already be home.
		keep := make([]P, 0, len(rk.bufs[u])) //dcvet:allow kernelpure -- v-collective bundle growth pending the zero-alloc payload plane (ROADMAP); escgate budgets it
		var send []P
		cross := d.CrossNeighbor(u)
		for _, p := range rk.bufs[u] {
			switch rk.dstNode(p) {
			case topology.NodeID(u):
				keep = append(keep, p) //dcvet:allow kernelpure -- v-collective bundle growth pending the zero-alloc payload plane (ROADMAP); escgate budgets it
			case cross:
				send = append(send, p) //dcvet:allow kernelpure -- v-collective bundle growth pending the zero-alloc payload plane (ROADMAP); escgate budgets it
			default:
				// A misrouted item means the routing keys disagree with the
				// topology; record it and drop the item — the host's count
				// check fails too, and the run reports the first error.
				if rk.errs[u] == nil {
					rk.errs[u] = fmt.Errorf("%s", rk.stranded(p, u)) //dcvet:allow kernelpure -- protocol-error path, fires at most once per run
				}
			}
		}
		rk.bufs[u] = keep
		return machine.DirectExchange, send
	}
}

func (rk *routeKernel[P]) Absorb(dc *machine.DirectCtx, k, u int, v []P) {
	if k == rk.mdim {
		rk.bufs[u] = v
		return
	}
	rk.bufs[u] = append(rk.bufs[u], v...) //dcvet:allow kernelpure -- v-collective bundle growth pending the zero-alloc payload plane (ROADMAP); escgate budgets it
	if k < 2*rk.mdim+1 {
		dc.Ops(1)
	}
}

func (rk *routeKernel[P]) Local(dc *machine.DirectCtx, k, u int) {}

// ReduceScatter combines the element-wise contributions of all nodes and
// leaves each node with its own combined element: out[j] = in[0][j] ⊕
// in[1][j] ⊕ ... ⊕ in[N-1][j], combined in source order. Implemented as a
// total exchange (2n rounds) followed by a local reduction round; on a
// machine with wormhole combining one could fold en route, but the round
// count — which is what the paper's model prices — is the same.
func ReduceScatter[T any](n int, in [][]T, m monoid.Monoid[T]) ([]T, machine.Stats, error) {
	trans, st, err := AllToAll(n, in)
	if err != nil {
		return nil, st, err
	}
	out := make([]T, len(trans))
	for j, row := range trans {
		acc := m.Identity()
		for _, v := range row {
			acc = m.Combine(acc, v)
		}
		out[j] = acc
	}
	st.MaxOps++
	st.TotalOps += int64(len(trans))
	return out, st, nil
}
