package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// pkt is one personalized message in flight during AllToAll.
type pkt[T any] struct {
	src int // source element index
	dst int // destination element index
	val T
}

// AllToAll performs the total (all-to-all personalized) exchange: element
// i sends the distinct value in[i][j] to element j, and out[j][i] = in[i][j]
// — a distributed matrix transpose. It runs in 2n communication rounds
// (each round one full-buffer exchange per node), using the same
// four-phase skeleton as the other cluster-technique collectives:
//
//  1. n-1 in-cluster rounds of dimension-ordered routing: every item moves
//     to the cluster member whose local index equals the destination's
//     "other field" — the coordinate that becomes the cluster ID after a
//     cross-edge hop;
//  2. one cross-edge round carrying every item (the cross-edge permutation
//     turns exit-locals into cluster IDs, landing each item in a cluster
//     adjacent to its goal);
//  3. n-1 more in-cluster rounds under the same key rule, which brings
//     every item either home or to its destination's cross neighbor;
//  4. one final cross-edge round delivering the remainder.
//
// Per-node buffers stay at N items throughout (the routing is perfectly
// balanced for the full personalized exchange).
func AllToAll[T any](n int, in [][]T) ([][]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	N := d.Nodes()
	for i, row := range in {
		if len(row) != N {
			return nil, machine.Stats{}, fmt.Errorf("collective: in[%d] has %d entries, want %d", i, len(row), N)
		}
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpAllToAll)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	fieldMask := d.ClusterSize() - 1

	// key is the within-cluster routing target of an item at a node of the
	// given class: the destination coordinate occupying this class's local
	// field (part I for class 0, part II for class 1).
	key := func(class int, dstNode topology.NodeID) int {
		if class == 0 {
			return dstNode & fieldMask
		}
		return dstNode >> (n - 1) & fieldMask
	}

	out := make([][]T, N)
	for j := range out {
		out[j] = make([]T, N)
	}
	errs := make([]error, N)
	eng, err := machine.New[[]pkt[T]](d, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[[]pkt[T]]) {
		u := c.ID()
		class := d.Class(u)
		local := d.LocalID(u)
		myIdx := d.DataIndex(u)
		x := machine.Interpret(c, sch)

		buf := make([]pkt[T], N)
		for j := 0; j < N; j++ {
			buf[j] = pkt[T]{src: myIdx, dst: j, val: in[myIdx][j]}
		}
		dstNode := func(p pkt[T]) topology.NodeID { return d.NodeAtDataIndex(p.dst) }

		// clusterRoute performs the m dimension-ordered routing rounds.
		clusterRoute := func() {
			for i := 0; i < m; i++ {
				keep := buf[:0]
				var send []pkt[T]
				for _, p := range buf {
					if key(class, dstNode(p))&(1<<i) != local&(1<<i) {
						send = append(send, p)
					} else {
						keep = append(keep, p)
					}
				}
				got := x.Exchange(send)
				buf = append(keep, got...)
				c.Ops(1)
			}
		}

		clusterRoute()                      // phase 1
		buf = x.Exchange(buf)               // phase 2
		clusterRoute()                      // phase 3
		keep := make([]pkt[T], 0, len(buf)) // phase 4
		var send []pkt[T]
		for _, p := range buf {
			switch dstNode(p) {
			case u:
				keep = append(keep, p)
			case d.CrossNeighbor(u):
				send = append(send, p)
			default:
				// A misrouted item means the routing keys disagree with the
				// topology; record it and drop the item — the count check
				// below fails too, and the run reports the first error.
				if errs[u] == nil {
					errs[u] = fmt.Errorf("collective: all-to-all item (%d->%d) stranded at node %d", p.src, p.dst, u)
				}
			}
		}
		got := x.Exchange(send)
		buf = append(keep, got...)

		if len(buf) != N {
			if errs[u] == nil {
				errs[u] = fmt.Errorf("collective: node %d received %d of %d items", u, len(buf), N)
			}
			return
		}
		row := out[myIdx]
		for _, p := range buf {
			if p.dst != myIdx {
				if errs[u] == nil {
					errs[u] = fmt.Errorf("collective: node %d holds foreign item for %d", u, p.dst)
				}
				continue
			}
			row[p.src] = p.val
		}
	})
	if err != nil {
		return nil, st, err
	}
	if err := firstErr(errs); err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// ReduceScatter combines the element-wise contributions of all nodes and
// leaves each node with its own combined element: out[j] = in[0][j] ⊕
// in[1][j] ⊕ ... ⊕ in[N-1][j], combined in source order. Implemented as a
// total exchange (2n rounds) followed by a local reduction round; on a
// machine with wormhole combining one could fold en route, but the round
// count — which is what the paper's model prices — is the same.
func ReduceScatter[T any](n int, in [][]T, m monoid.Monoid[T]) ([]T, machine.Stats, error) {
	trans, st, err := AllToAll(n, in)
	if err != nil {
		return nil, st, err
	}
	out := make([]T, len(trans))
	for j, row := range trans {
		acc := m.Identity()
		for _, v := range row {
			acc = m.Combine(acc, v)
		}
		out[j] = acc
	}
	st.MaxOps++
	st.TotalOps += int64(len(trans))
	return out, st, nil
}
