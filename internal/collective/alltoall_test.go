package collective

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dualcube/internal/monoid"
)

func TestAllToAllTranspose(t *testing.T) {
	for n := 1; n <= 4; n++ {
		N := 1 << (2*n - 1)
		in := make([][]int, N)
		for i := range in {
			in[i] = make([]int, N)
			for j := range in[i] {
				in[i][j] = i*N + j
			}
		}
		out, st, err := AllToAll(n, in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for j := 0; j < N; j++ {
			for i := 0; i < N; i++ {
				if out[j][i] != in[i][j] {
					t.Fatalf("n=%d: out[%d][%d] = %d, want %d", n, j, i, out[j][i], in[i][j])
				}
			}
		}
		if st.Cycles != 2*n {
			t.Errorf("n=%d: comm rounds %d, want %d", n, st.Cycles, 2*n)
		}
	}
}

func TestAllToAllStrings(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	in := make([][]string, N)
	for i := range in {
		in[i] = make([]string, N)
		for j := range in[i] {
			in[i][j] = fmt.Sprintf("%d->%d", i, j)
		}
	}
	out, _, err := AllToAll(n, in)
	if err != nil {
		t.Fatal(err)
	}
	if out[5][2] != "2->5" || out[0][7] != "7->0" {
		t.Errorf("alltoall strings: %q %q", out[5][2], out[0][7])
	}
}

func TestAllToAllInvolution(t *testing.T) {
	// Transposing twice restores the original matrix.
	n := 2
	N := 1 << (2*n - 1)
	rng := rand.New(rand.NewSource(4))
	in := make([][]int, N)
	for i := range in {
		in[i] = make([]int, N)
		for j := range in[i] {
			in[i][j] = rng.Int()
		}
	}
	once, _, err := AllToAll(n, in)
	if err != nil {
		t.Fatal(err)
	}
	twice, _, err := AllToAll(n, once)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		for j := range in[i] {
			if twice[i][j] != in[i][j] {
				t.Fatalf("double transpose broke [%d][%d]", i, j)
			}
		}
	}
}

func TestAllToAllBadArgs(t *testing.T) {
	if _, _, err := AllToAll(2, make([][]int, 3)); err == nil {
		t.Error("wrong row count should fail")
	}
	bad := make([][]int, 8)
	for i := range bad {
		bad[i] = make([]int, 8)
	}
	bad[3] = make([]int, 5)
	if _, _, err := AllToAll(2, bad); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, _, err := AllToAll[int](0, nil); err == nil {
		t.Error("order 0 should fail")
	}
}

func TestAllToAllQuick(t *testing.T) {
	f := func(nSeed uint8, seed int64) bool {
		n := int(nSeed)%3 + 1
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(seed))
		in := make([][]int, N)
		for i := range in {
			in[i] = make([]int, N)
			for j := range in[i] {
				in[i][j] = rng.Intn(1 << 20)
			}
		}
		out, _, err := AllToAll(n, in)
		if err != nil {
			return false
		}
		for i := 0; i < N; i++ {
			for j := 0; j < N; j++ {
				if out[j][i] != in[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReduceScatter(t *testing.T) {
	for n := 1; n <= 3; n++ {
		N := 1 << (2*n - 1)
		in := make([][]int, N)
		for i := range in {
			in[i] = make([]int, N)
			for j := range in[i] {
				in[i][j] = i + j*100
			}
		}
		out, st, err := ReduceScatter(n, in, monoid.Sum[int]())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for j := 0; j < N; j++ {
			want := N*(N-1)/2 + j*100*N
			if out[j] != want {
				t.Fatalf("n=%d: out[%d]=%d, want %d", n, j, out[j], want)
			}
		}
		if st.Cycles != 2*n {
			t.Errorf("n=%d: rounds %d", n, st.Cycles)
		}
	}
}

func TestReduceScatterNonCommutative(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	in := make([][]string, N)
	for i := range in {
		in[i] = make([]string, N)
		for j := range in[i] {
			in[i][j] = string(rune('a' + i)) // contribution tagged by source
		}
	}
	out, _, err := ReduceScatter(n, in, monoid.Concat())
	if err != nil {
		t.Fatal(err)
	}
	for j := range out {
		if out[j] != "abcdefgh" {
			t.Fatalf("out[%d] = %q (source order broken)", j, out[j])
		}
	}
}

func TestReduceScatterBadArgs(t *testing.T) {
	if _, _, err := ReduceScatter(0, nil, monoid.Sum[int]()); err == nil {
		t.Error("order 0 should fail")
	}
}
