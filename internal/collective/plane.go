package collective

import (
	"reflect"
	"sync"

	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// This file is the host side of the zero-alloc payload plane: the arena
// orders that make the binomial collectives' bundles contiguous, and the
// process-wide plane stash that makes warm calls allocation-free.
//
// Arena orders. Gather descends the cluster dimensions (fan-in from the
// high bit) and scatter ascends them (fan-out from the low bit), so their
// in-flight bundles are combs in natural element order — {w : w ≡ u on the
// processed low bits} — which become CONTIGUOUS runs when each address
// field is stored bit-reversed. The gather/scatter arena therefore places
// node u's slot at
//
//	pos(u) = class(u)<<(2m) | rev_m(cluster(u))<<m | rev_m(local(u))
//
// under which every phase-1/3 merge unions two adjacent runs, every
// phase-2/4 split is a midpoint halving, and the class halves of phases
// 1 and 4 are the two halves of the whole arena. AllGather's ascending
// doubling frees LOW local bits first, so its bundles are contiguous in
// the natural element order already and it uses DataIndex directly.

// planeLayout is the per-order arena order of the gather/scatter plane:
// posOf[u] is node u's arena slot. It is type-independent and cached
// forever beside the topology.
type planeLayout struct {
	posOf []int32
}

var (
	layoutMu sync.Mutex
	layouts  = map[int]*planeLayout{}
)

// layoutFor returns (building once per order) the bit-reversed arena order
// for d's gather/scatter plane.
func layoutFor(d *topology.DualCube) *planeLayout {
	layoutMu.Lock()
	defer layoutMu.Unlock()
	if lay, ok := layouts[d.Order()]; ok {
		return lay
	}
	m := d.ClusterDim()
	pos := make([]int32, d.Nodes())
	for u := range pos {
		pos[u] = int32(d.Class(u)<<(2*m) | revBits(d.ClusterID(u), m)<<m | revBits(d.LocalID(u), m))
	}
	lay := &planeLayout{posOf: pos}
	layouts[d.Order()] = lay
	return lay
}

// revBits reverses the low m bits of v.
func revBits(v, m int) int {
	r := 0
	for j := 0; j < m; j++ {
		r = r<<1 | (v>>j)&1
	}
	return r
}

// WarmLayout precomputes the arena order for d so a Runtime's Warm removes
// the one-time table build from the first gather/scatter call.
func WarmLayout(d *topology.DualCube) { layoutFor(d) }

// planeKey identifies one stashed plane: its kind, the node count it was
// sized for, and the element type it carries.
type planeKey struct {
	kind  uint8 // 0 = extent plane, 1 = route plane
	nodes int
	typ   reflect.Type
}

// stash is a single-slot plane cache per (kind, nodes, element type): a
// warm call checks its plane out (one mutex round, no allocation), a
// finishing call puts it back. Unlike sync.Pool nothing is dropped on GC,
// so the warm-path allocation count is deterministic — which the alloc
// guards pin. Concurrent calls of the same shape simply build a second
// plane and the later Put wins; correctness never depends on a hit.
var (
	stashMu sync.Mutex
	stash   = map[planeKey]any{}
)

func stashGet(k planeKey) any {
	stashMu.Lock()
	v, ok := stash[k]
	if ok {
		delete(stash, k)
	}
	stashMu.Unlock()
	return v
}

func stashPut(k planeKey, v any) {
	stashMu.Lock()
	stash[k] = v
	stashMu.Unlock()
}

// extentPlane checks an n-node extent plane for element type T out of the
// stash, or builds one.
func extentPlane[T any](n int) *machine.ExtentPlane[T] {
	k := planeKey{kind: 0, nodes: n, typ: reflect.TypeOf((*T)(nil))}
	if v := stashGet(k); v != nil {
		pl := v.(*machine.ExtentPlane[T])
		pl.Reset()
		return pl
	}
	return machine.NewExtentPlane[T](n)
}

// putExtentPlane returns a plane to the stash. The arena is cleared first
// so a stashed plane retains no caller values (T may hold pointers).
func putExtentPlane[T any](n int, pl *machine.ExtentPlane[T]) {
	clear(pl.Vals)
	stashPut(planeKey{kind: 0, nodes: n, typ: reflect.TypeOf((*T)(nil))}, pl)
}

// routePlane checks an n-node route plane for element type T out of the
// stash, or builds one.
func routePlane[T any](n int) *machine.RoutePlane[T] {
	k := planeKey{kind: 1, nodes: n, typ: reflect.TypeOf((*T)(nil))}
	if v := stashGet(k); v != nil {
		pl := v.(*machine.RoutePlane[T])
		pl.Reset()
		return pl
	}
	return machine.NewRoutePlane[T](n)
}

// putRoutePlane returns a route plane to the stash, dropping caller values
// from the arena first.
func putRoutePlane[T any](n int, pl *machine.RoutePlane[T]) {
	clear(pl.Vals)
	stashPut(planeKey{kind: 1, nodes: n, typ: reflect.TypeOf((*T)(nil))}, pl)
}
