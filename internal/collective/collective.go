// Package collective implements collective communication operations on the
// dual-cube using the paper's cluster technique (Section 3 and the authors'
// companion work on efficient collective communications in dual-cube, cited
// as reference [7]; developing such algorithms is future-work item 3).
//
// All operations follow the same four-phase skeleton that makes D_prefix
// optimal: work inside clusters (n-1 steps), hop the cross-edges (1 step),
// work inside the clusters of the other class (n-1 steps), hop back
// (1 step) — 2n communication steps in total, matching the diameter 2n of
// D_n, so each collective is asymptotically optimal.
//
// Each operation's skeleton is compiled once per order into a shared
// machine.Schedule (dcomm.Compiled) and the node programs walk it through an
// Exec cursor: the schedule supplies each step's partner, the program
// supplies the per-step role (send, receive, exchange, idle) and the payload
// logic.
package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// Broadcast distributes value from node root to every node of D_n in 2n
// communication steps:
//
//  1. binomial-tree flood inside root's cluster (n-1 steps);
//  2. the whole cluster hops its cross-edges — because the cross-edges of
//     one cluster land in 2^(n-1) distinct clusters of the other class,
//     every opposite-class cluster now holds the value at exactly one node
//     (local index = root's cluster-mate position);
//  3. flood inside every cluster of the other class (n-1 steps);
//  4. one more cross-edge hop — the cross neighbors of the other class
//     cover every node of root's class — delivering the value everywhere.
//
// The returned slice is indexed by node ID.
func Broadcast[T any](n int, root topology.NodeID, value T) ([]T, machine.Stats, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if root < 0 || root >= d.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("collective: root %d out of range", root)
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpBroadcast)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	rootClass := d.Class(root)
	rootCluster := d.ClusterID(root)
	rootLocal := d.LocalID(root)

	out := make([]T, d.Nodes())
	errs := make([]error, d.Nodes())
	eng, err := machine.New[T](d, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[T]) {
		u := c.ID()
		class, local := d.Class(u), d.LocalID(u)
		x := machine.Interpret(c, sch)
		var v T
		have := u == root
		if have {
			v = value
		}

		// Phase 1: flood root's cluster. At step i, holders are the nodes of
		// root's cluster whose local ID matches rootLocal on bits >= i; each
		// holder sends along dimension i to the node differing at bit i.
		inRootCluster := class == rootClass && d.ClusterID(u) == rootCluster
		for i := 0; i < m; i++ {
			if inRootCluster {
				mask := ^((1 << (i + 1)) - 1) // bits above i
				if have && local&(1<<i) == rootLocal&(1<<i) {
					x.Send(v)
				} else if !have && local&mask == rootLocal&mask {
					v = x.Recv()
					have = true
				} else {
					x.Idle()
				}
			} else {
				x.Idle()
			}
		}

		// Phase 2: root's cluster crosses over. The cross image of root's
		// cluster is one node in every opposite-class cluster, namely the
		// node whose local ID equals root's cluster ID (the cross-edge
		// swaps the roles of the two address fields).
		if inRootCluster {
			x.Send(v)
		} else if class != rootClass && local == rootCluster {
			v = x.Recv()
			have = true
		} else {
			x.Idle()
		}

		// Phase 3: flood every cluster of the other class from its seed,
		// which sits at local index rootCluster in each of them.
		if class != rootClass {
			seedLocal := rootCluster
			for i := 0; i < m; i++ {
				mask := ^((1 << (i + 1)) - 1)
				if have && local&(1<<i) == seedLocal&(1<<i) {
					x.Send(v)
				} else if !have && local&mask == seedLocal&mask {
					v = x.Recv()
					have = true
				} else {
					x.Idle()
				}
			}
		} else {
			for i := 0; i < m; i++ {
				x.Idle()
			}
		}

		// Phase 4: the other class crosses back, covering every node of
		// root's class (including root's own cluster, which already has the
		// value — those sends are received and discarded to keep the links
		// clean and the schedule uniform).
		if class != rootClass {
			x.Send(v)
		} else {
			w := x.Recv()
			if !have {
				v = w
				have = true
			}
		}

		if !have {
			errs[u] = fmt.Errorf("collective: node %d did not receive the broadcast", u)
			return
		}
		out[u] = v
	})
	if err != nil {
		return nil, st, err
	}
	if err := firstErr(errs); err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// AllReduce combines every node's value with ⊕ and delivers the total to
// all nodes in 2n communication steps: recursive-doubling all-reduce inside
// each cluster (n-1 steps), cross-edge exchange of the cluster totals
// (1 step), all-reduce of those totals inside the clusters of the other
// class — yielding the opposite class's grand total everywhere (n-1
// steps) — and a final cross-edge exchange so every node can combine both
// class totals (1 step).
//
// Values are combined in deterministic element order (class-0 elements
// before class-1, clusters in index order), so non-commutative monoids
// receive the in-order reduction of the block data layout.
func AllReduce[T any](n int, in []T, m monoid.Monoid[T]) ([]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	mdim := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpAllReduce)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	out := make([]T, d.Nodes())
	eng, err := machine.New[T](d, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[T]) {
		u := c.ID()
		local := d.LocalID(u)
		x := machine.Interpret(c, sch)
		// t: ordered all-reduce within the cluster (order = local index,
		// which is element order within the block).
		t := in[d.DataIndex(u)]
		for i := 0; i < mdim; i++ {
			temp := x.Exchange(t)
			if local&(1<<i) != 0 {
				t = m.Combine(temp, t)
			} else {
				t = m.Combine(t, temp)
			}
			c.Ops(1)
		}
		// Cross totals, then all-reduce them in cluster-index order.
		t2 := x.Exchange(t)
		for i := 0; i < mdim; i++ {
			temp := x.Exchange(t2)
			if local&(1<<i) != 0 {
				t2 = m.Combine(temp, t2)
			} else {
				t2 = m.Combine(t2, temp)
			}
			c.Ops(1)
		}
		// t2 is now the grand total of the OTHER class. Swap grand totals
		// across the cross-edge and combine in class order.
		other := x.Exchange(t2)
		// At a class-0 node: t2 = total(class 1), other = total(class 0).
		// At a class-1 node: t2 = total(class 0), other = total(class 1).
		if d.Class(u) == 0 {
			out[u] = m.Combine(other, t2)
		} else {
			out[u] = m.Combine(t2, other)
		}
		x.LocalOps(1)
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// Reduce combines every node's value in element order and returns the
// result as seen by root. It runs AllReduce and projects — the dual-cube
// communication cost is the same 2n steps either way, matching the
// network's diameter.
func Reduce[T any](n int, root topology.NodeID, in []T, m monoid.Monoid[T]) (T, machine.Stats, error) {
	var zero T
	d, err := topology.Shared(n)
	if err != nil {
		return zero, machine.Stats{}, err
	}
	if root < 0 || root >= d.Nodes() {
		return zero, machine.Stats{}, fmt.Errorf("collective: root %d out of range", root)
	}
	all, st, err := AllReduce(n, in, m)
	if err != nil {
		return zero, st, err
	}
	return all[root], st, nil
}

// Barrier synchronizes all nodes: it completes only after every node has
// entered it. Implemented as an all-reduce of units; returns the machine
// statistics (2n communication steps).
func Barrier(n int) (machine.Stats, error) {
	N := nodesOf(n)
	in := make([]struct{}, N)
	unit := monoid.Monoid[struct{}]{
		Name:     "unit",
		Identity: func() struct{} { return struct{}{} },
		Combine:  func(a, b struct{}) struct{} { return struct{}{} },
	}
	_, st, err := AllReduce(n, in, unit)
	return st, err
}

// nodesOf returns 2^(2n-1) without constructing the topology (callers
// validate n separately).
func nodesOf(n int) int {
	if n < 1 || n > topology.MaxDualCubeOrder {
		return -1
	}
	return 1 << (2*n - 1)
}

// firstErr returns the lowest-numbered node's recorded delivery-verification
// error, or nil. Node programs record failures into a per-node slot (their
// own index, so no synchronization is needed) and keep walking the schedule,
// preserving the SPMD lockstep; the host reports the failure deterministically
// after the run, regardless of worker interleaving.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
