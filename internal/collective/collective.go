// Package collective implements collective communication operations on the
// dual-cube using the paper's cluster technique (Section 3 and the authors'
// companion work on efficient collective communications in dual-cube, cited
// as reference [7]; developing such algorithms is future-work item 3).
//
// All operations follow the same four-phase skeleton that makes D_prefix
// optimal: work inside clusters (n-1 steps), hop the cross-edges (1 step),
// work inside the clusters of the other class (n-1 steps), hop back
// (1 step) — 2n communication steps in total, matching the diameter 2n of
// D_n, so each collective is asymptotically optimal.
//
// Each operation's skeleton is compiled once per order into a shared
// machine.Schedule (dcomm.Compiled) and the operation itself is a
// machine.DirectKernel: per step the kernel supplies each node's role (send,
// receive, exchange, idle) and payload, the schedule supplies the partner.
// dcomm.Execute routes every kernel — through the direct array executor by
// default, or through a simulator engine running the identical kernel when
// an engine scheduler is selected — so both execution paths are one
// algorithm per operation.
package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/topology"
)

// Broadcast distributes value from node root to every node of D_n in 2n
// communication steps:
//
//  1. binomial-tree flood inside root's cluster (n-1 steps);
//  2. the whole cluster hops its cross-edges — because the cross-edges of
//     one cluster land in 2^(n-1) distinct clusters of the other class,
//     every opposite-class cluster now holds the value at exactly one node
//     (local index = root's cluster-mate position);
//  3. flood inside every cluster of the other class (n-1 steps);
//  4. one more cross-edge hop — the cross neighbors of the other class
//     cover every node of root's class — delivering the value everywhere.
//
// The returned slice is indexed by node ID.
func Broadcast[T any](n int, root topology.NodeID, value T) ([]T, machine.Stats, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	return BroadcastOn(d, root, value)
}

// BroadcastOn is Broadcast over an explicit communication topology: the
// binomial flood uses only the cluster decomposition, so it runs unchanged
// on any Comm (dual-cube, odd hypercube, Z-cube).
func BroadcastOn[T any](d topology.Comm, root topology.NodeID, value T) ([]T, machine.Stats, error) {
	if root < 0 || root >= d.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("collective: root %d out of range", root)
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpBroadcast)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	rootClass := d.Class(root)
	rootCluster := d.ClusterID(root)
	rootLocal := d.LocalID(root)

	out := make([]T, d.Nodes())
	bk := &broadcastKernel[T]{
		d: d, mdim: m, root: root,
		rootClass: rootClass, rootCluster: rootCluster, rootLocal: rootLocal,
		out: out, have: make([]bool, d.Nodes()),
	}
	bk.have[root] = true
	out[root] = value
	st, err := dcomm.Execute(sch, machine.Config{}, bk)
	if err != nil {
		return nil, st, err
	}
	for u := range bk.have {
		if !bk.have[u] {
			return nil, st, fmt.Errorf("collective: node %d did not receive the broadcast", u)
		}
	}
	return out, st, nil
}

// broadcastKernel is the binomial flood as a kernel. The value lives
// directly in out; have marks delivery so late duplicate receives (phase 4
// covers root's own cluster again, keeping the schedule uniform) are
// discarded, and the host verifies every node was reached after the run.
type broadcastKernel[T any] struct {
	d           topology.Comm
	mdim        int
	root        topology.NodeID
	rootClass   int
	rootCluster int
	rootLocal   int
	out         []T
	have        []bool
}

func (bk *broadcastKernel[T]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, T) {
	d := bk.d
	class, local := d.Class(u), d.LocalID(u)
	have := bk.have[u]
	switch {
	case k < bk.mdim:
		// Phase 1: flood root's cluster. At step i, holders are the nodes of
		// root's cluster whose local ID matches rootLocal on bits >= i; each
		// holder sends along dimension i to the node differing at bit i.
		if class == bk.rootClass && d.ClusterID(u) == bk.rootCluster {
			i := k
			mask := ^((1 << (i + 1)) - 1) // bits above i
			if have && local&(1<<i) == bk.rootLocal&(1<<i) {
				return machine.DirectSend, bk.out[u]
			} else if !have && local&mask == bk.rootLocal&mask {
				return machine.DirectRecv, bk.out[u]
			}
		}
	case k == bk.mdim:
		// Phase 2: root's cluster crosses over. The cross image of root's
		// cluster is one node in every opposite-class cluster, namely the
		// node whose local ID equals root's cluster ID (the cross-edge
		// swaps the roles of the two address fields).
		if class == bk.rootClass && d.ClusterID(u) == bk.rootCluster {
			return machine.DirectSend, bk.out[u]
		} else if class != bk.rootClass && local == bk.rootCluster {
			return machine.DirectRecv, bk.out[u]
		}
	case k <= 2*bk.mdim:
		// Phase 3: flood every cluster of the other class from its seed,
		// which sits at local index rootCluster in each of them.
		if class != bk.rootClass {
			i := k - bk.mdim - 1
			seedLocal := bk.rootCluster
			mask := ^((1 << (i + 1)) - 1)
			if have && local&(1<<i) == seedLocal&(1<<i) {
				return machine.DirectSend, bk.out[u]
			} else if !have && local&mask == seedLocal&mask {
				return machine.DirectRecv, bk.out[u]
			}
		}
	default:
		// Phase 4: the other class crosses back, covering every node of
		// root's class (including root's own cluster, which already has the
		// value — those sends are received and discarded).
		if class != bk.rootClass {
			return machine.DirectSend, bk.out[u]
		}
		return machine.DirectRecv, bk.out[u]
	}
	return machine.DirectIdle, bk.out[u]
}

func (bk *broadcastKernel[T]) Absorb(dc *machine.DirectCtx, k, u int, v T) {
	if !bk.have[u] {
		bk.out[u] = v
		bk.have[u] = true
	}
}

func (bk *broadcastKernel[T]) Local(dc *machine.DirectCtx, k, u int) {}

// AllReduce combines every node's value with ⊕ and delivers the total to
// all nodes in 2n communication steps: recursive-doubling all-reduce inside
// each cluster (n-1 steps), cross-edge exchange of the cluster totals
// (1 step), all-reduce of those totals inside the clusters of the other
// class — yielding the opposite class's grand total everywhere (n-1
// steps) — and a final cross-edge exchange so every node can combine both
// class totals (1 step).
//
// Values are combined in deterministic element order (class-0 elements
// before class-1, clusters in index order), so non-commutative monoids
// receive the in-order reduction of the block data layout.
func AllReduce[T any](n int, in []T, m monoid.Monoid[T]) ([]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	return AllReduceOn(d, in, m)
}

// AllReduceOn is AllReduce over an explicit communication topology — the
// double recursive-doubling reduction runs unchanged on any Comm.
func AllReduceOn[T any](d topology.Comm, in []T, m monoid.Monoid[T]) ([]T, machine.Stats, error) {
	if err := topology.ValidLen(d, len(in)); err != nil {
		return nil, machine.Stats{}, err
	}
	mdim := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpAllReduce)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	out := make([]T, d.Nodes())
	ak := &allReduceKernel[T]{
		d: d, m: m, mdim: mdim,
		in: in, out: out, t: make([]T, d.Nodes()),
	}
	st, err := dcomm.Execute(sch, machine.Config{}, ak)
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// allReduceKernel is the double recursive-doubling all-reduce as a kernel.
// t carries the in-cluster running total, then (after the first cross hop)
// the other class's running total; the received grand total of this node's
// own class parks in out until the final class-order combine.
type allReduceKernel[T any] struct {
	d    topology.Comm
	m    monoid.Monoid[T]
	mdim int
	in   []T
	out  []T
	t    []T
}

func (ak *allReduceKernel[T]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, T) {
	if k == 0 {
		// Ordered all-reduce within the cluster (order = local index, which
		// is element order within the block).
		ak.t[u] = ak.in[ak.d.DataIndex(u)]
	}
	return machine.DirectExchange, ak.t[u]
}

func (ak *allReduceKernel[T]) Absorb(dc *machine.DirectCtx, k, u int, v T) {
	m := ak.m
	local := ak.d.LocalID(u)
	switch {
	case k < ak.mdim:
		if local&(1<<k) != 0 {
			ak.t[u] = m.Combine(v, ak.t[u])
		} else {
			ak.t[u] = m.Combine(ak.t[u], v)
		}
		dc.Ops(1)
	case k == ak.mdim:
		// Cross totals; all-reduce them in cluster-index order next.
		ak.t[u] = v
	case k <= 2*ak.mdim:
		if i := k - ak.mdim - 1; local&(1<<i) != 0 {
			ak.t[u] = m.Combine(v, ak.t[u])
		} else {
			ak.t[u] = m.Combine(ak.t[u], v)
		}
		dc.Ops(1)
	default:
		// t is now the grand total of the OTHER class; v is the grand total
		// of this node's own class, swapped back over the cross-edge.
		ak.out[u] = v
	}
}

func (ak *allReduceKernel[T]) Local(dc *machine.DirectCtx, k, u int) {
	// At a class-0 node: t = total(class 1), out = total(class 0) — and the
	// mirror at class 1 — so both classes combine in class order.
	if ak.d.Class(u) == 0 {
		ak.out[u] = ak.m.Combine(ak.out[u], ak.t[u])
	} else {
		ak.out[u] = ak.m.Combine(ak.t[u], ak.out[u])
	}
	dc.Ops(1)
}

// Reduce combines every node's value in element order and returns the
// result as seen by root. It runs AllReduce and projects — the dual-cube
// communication cost is the same 2n steps either way, matching the
// network's diameter.
func Reduce[T any](n int, root topology.NodeID, in []T, m monoid.Monoid[T]) (T, machine.Stats, error) {
	var zero T
	d, err := topology.Shared(n)
	if err != nil {
		return zero, machine.Stats{}, err
	}
	if root < 0 || root >= d.Nodes() {
		return zero, machine.Stats{}, fmt.Errorf("collective: root %d out of range", root)
	}
	all, st, err := AllReduce(n, in, m)
	if err != nil {
		return zero, st, err
	}
	return all[root], st, nil
}

// Barrier synchronizes all nodes: it completes only after every node has
// entered it. Implemented as an all-reduce of units; returns the machine
// statistics (2n communication steps).
func Barrier(n int) (machine.Stats, error) {
	N := nodesOf(n)
	in := make([]struct{}, N)
	_, st, err := AllReduce(n, in, unitMonoid())
	return st, err
}

// BarrierOn is Barrier over an explicit communication topology.
func BarrierOn(c topology.Comm) (machine.Stats, error) {
	in := make([]struct{}, c.Nodes())
	_, st, err := AllReduceOn(c, in, unitMonoid())
	return st, err
}

// unitMonoid is the trivial monoid Barrier reduces with.
func unitMonoid() monoid.Monoid[struct{}] {
	return monoid.Monoid[struct{}]{
		Name:     "unit",
		Identity: func() struct{} { return struct{}{} },
		Combine:  func(a, b struct{}) struct{} { return struct{}{} },
	}
}

// nodesOf returns 2^(2n-1) without constructing the topology (callers
// validate n separately).
func nodesOf(n int) int {
	if n < 1 || n > topology.MaxDualCubeOrder {
		return -1
	}
	return 1 << (2*n - 1)
}

// firstErr returns the lowest-numbered node's recorded delivery-verification
// error, or nil. Node programs record failures into a per-node slot (their
// own index, so no synchronization is needed) and keep walking the schedule,
// preserving the SPMD lockstep; the host reports the failure deterministically
// after the run, regardless of worker interleaving.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
