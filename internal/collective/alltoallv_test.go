package collective

import (
	"math/rand"
	"testing"
)

func TestAllToAllVTranspose(t *testing.T) {
	for n := 1; n <= 3; n++ {
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(int64(n)))
		in := make([][][]int, N)
		for i := range in {
			in[i] = make([][]int, N)
			for j := range in[i] {
				sz := rng.Intn(4) // empty slices included
				for s := 0; s < sz; s++ {
					in[i][j] = append(in[i][j], i*1000+j*10+s)
				}
			}
		}
		out, st, err := AllToAllV(n, in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for j := 0; j < N; j++ {
			for i := 0; i < N; i++ {
				if len(out[j][i]) != len(in[i][j]) {
					t.Fatalf("n=%d: bundle (%d->%d) size %d, want %d", n, i, j, len(out[j][i]), len(in[i][j]))
				}
				for s := range in[i][j] {
					if out[j][i][s] != in[i][j][s] {
						t.Fatalf("n=%d: bundle (%d->%d) corrupted", n, i, j)
					}
				}
			}
		}
		if st.Cycles != 2*n {
			t.Errorf("n=%d: rounds %d, want %d", n, st.Cycles, 2*n)
		}
	}
}

func TestAllToAllVHeavySkew(t *testing.T) {
	// One node sends everything; everyone else sends nothing.
	n := 2
	N := 1 << (2*n - 1)
	in := make([][][]int, N)
	for i := range in {
		in[i] = make([][]int, N)
	}
	for j := 0; j < N; j++ {
		in[3][j] = []int{j * 7, j*7 + 1}
	}
	out, _, err := AllToAllV(n, in)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < N; j++ {
		if len(out[j][3]) != 2 || out[j][3][0] != j*7 {
			t.Fatalf("skewed bundle to %d wrong: %v", j, out[j][3])
		}
		for i := 0; i < N; i++ {
			if i != 3 && len(out[j][i]) != 0 {
				t.Fatalf("unexpected bundle from %d", i)
			}
		}
	}
}

func TestAllToAllVBadArgs(t *testing.T) {
	if _, _, err := AllToAllV(2, make([][][]int, 3)); err == nil {
		t.Error("wrong row count should fail")
	}
	bad := make([][][]int, 8)
	for i := range bad {
		bad[i] = make([][]int, 8)
	}
	bad[2] = make([][]int, 4)
	if _, _, err := AllToAllV(2, bad); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, _, err := AllToAllV[int](0, nil); err == nil {
		t.Error("order 0 should fail")
	}
}
