package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// item is one element in flight during a gather: its global element index
// (block data layout) and its value.
type item[T any] struct {
	idx int
	val T
}

// mergeItems merges two index-sorted bundles into one.
func mergeItems[T any](a, b []item[T]) []item[T] {
	out := make([]item[T], 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].idx <= b[j].idx {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Gather collects every node's value to root, returned in element order
// (the block data layout: in[DataIndex(u)] is node u's value). Like the
// other collectives it uses the cluster technique and takes exactly 2n
// communication steps — the diameter of D_n:
//
//  1. every cluster binomial-gathers its block to a collector node
//     (clusters of root's class collect at local index = root's local
//     index; the other class at local index = root's cluster ID), n-1
//     steps;
//  2. all collectors hop their cross-edges, which lands every bundle of
//     root's class in one designated opposite-class cluster, and every
//     opposite-class bundle in root's own cluster, 1 step;
//  3. those two clusters binomial-gather the bundles (concurrently; they
//     are disjoint), n-1 steps: root now holds the whole opposite class,
//     and root's cross neighbor holds the whole of root's class;
//  4. root's cross neighbor hands its mega-bundle across, 1 step.
func Gather[T any](n int, root topology.NodeID, in []T) ([]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if root < 0 || root >= d.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("collective: root %d out of range", root)
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpGather)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	rootClass := d.Class(root)
	rootCluster := d.ClusterID(root)
	rootLocal := d.LocalID(root)

	out := make([]T, d.Nodes())
	gk := &gatherKernel[T]{
		d: d, sch: sch, mdim: m, root: root,
		rootClass: rootClass, rootCluster: rootCluster, rootLocal: rootLocal,
		in: in, bundles: make([][]item[T], d.Nodes()),
	}
	// LinkCapacity only matters on the engine fallback path, where the
	// bundle-bearing cross hops queue more than one message per link.
	st, err := dcomm.Execute(sch, machine.Config{LinkCapacity: 4}, gk)
	if err != nil {
		return nil, st, err
	}
	bundle := gk.bundles[root]
	if len(bundle) != d.Nodes() {
		return nil, st, fmt.Errorf("collective: gather delivered %d of %d items", len(bundle), d.Nodes())
	}
	for _, it := range bundle {
		out[it.idx] = it.val
	}
	return out, st, nil
}

// gatherKernel is the binomial fan-in as a kernel. A node's bundle is nil
// exactly when it has handed its items up the collection tree — which also
// disambiguates the phase-2 roles during Absorb: the bundle of a collector
// that exchanged with its cross collector is still non-nil, a bare
// receiver's is nil.
type gatherKernel[T any] struct {
	d           *topology.DualCube
	sch         *machine.Schedule
	mdim        int
	root        topology.NodeID
	rootClass   int
	rootCluster int
	rootLocal   int
	in          []T
	bundles     [][]item[T]
}

// gatherRole is one level of the collection tree at node u: the schedule
// supplies the descending dimension, target is the collector's local index.
func (gk *gatherKernel[T]) gatherRole(k, u, tgt int) machine.DirectRole {
	i := gk.sch.Steps[k].Dim
	local := gk.d.LocalID(u)
	maskAbove := ^((1 << (i + 1)) - 1)
	if local&maskAbove != tgt&maskAbove {
		return machine.DirectIdle // already out of the collection tree at this level
	}
	if local&(1<<i) != tgt&(1<<i) {
		return machine.DirectSend
	}
	return machine.DirectRecv
}

// target returns the collector position inside node u's cluster.
func (gk *gatherKernel[T]) target(u int) int {
	if gk.d.Class(u) != gk.rootClass {
		return gk.rootCluster
	}
	return gk.rootLocal
}

func (gk *gatherKernel[T]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, []item[T]) {
	d := gk.d
	if k == 0 {
		idx := d.DataIndex(u)
		gk.bundles[u] = []item[T]{{idx: idx, val: gk.in[idx]}} //dcvet:allow kernelpure -- v-collective bundle growth pending the zero-alloc payload plane (ROADMAP); escgate budgets it
	}
	switch {
	case k < gk.mdim:
		// Phase 1: binomial gather of the cluster block toward the target
		// (reverse flood: the schedule descends dimensions m-1 down to 0).
		role := gk.gatherRole(k, u, gk.target(u))
		b := gk.bundles[u]
		if role == machine.DirectSend {
			gk.bundles[u] = nil
		}
		return role, b
	case k == gk.mdim:
		// Phase 2: collectors hop their cross-edges; a node receives iff its
		// cross neighbor is a collector of its own cluster.
		cross := d.CrossNeighbor(u)
		isCollector := d.LocalID(u) == gk.target(u) && gk.bundles[u] != nil
		crossIsCollector := d.LocalID(cross) == gk.target(cross)
		b := gk.bundles[u]
		switch {
		case isCollector && crossIsCollector:
			return machine.DirectExchange, b
		case isCollector:
			gk.bundles[u] = nil
			return machine.DirectSend, b
		case crossIsCollector:
			return machine.DirectRecv, b
		}
		return machine.DirectIdle, b
	case k <= 2*gk.mdim:
		// Phase 3: two clusters gather the phase-2 bundles concurrently:
		// root's cluster (toward root) and the opposite-class mirror cluster
		// (toward root's cross neighbor).
		class, cluster := d.Class(u), d.ClusterID(u)
		inRootCluster := class == gk.rootClass && cluster == gk.rootCluster
		inMirrorCluster := class != gk.rootClass && cluster == gk.rootLocal
		if !inRootCluster && !inMirrorCluster {
			return machine.DirectIdle, nil
		}
		tgt := gk.rootLocal
		if inMirrorCluster {
			tgt = gk.rootCluster
		}
		role := gk.gatherRole(k, u, tgt)
		b := gk.bundles[u]
		if role == machine.DirectSend {
			gk.bundles[u] = nil
		}
		return role, b
	default:
		// Phase 4: root's cross neighbor delivers the mega-bundle.
		switch u {
		case d.CrossNeighbor(gk.root):
			b := gk.bundles[u]
			gk.bundles[u] = nil
			return machine.DirectSend, b
		case gk.root:
			return machine.DirectRecv, nil
		}
		return machine.DirectIdle, nil
	}
}

func (gk *gatherKernel[T]) Absorb(dc *machine.DirectCtx, k, u int, v []item[T]) {
	if k == gk.mdim {
		// Phase 2 cross hop: collectors exchanging with their cross
		// collector count the swap as a round of work; bare receivers (bundle
		// already nil) just adopt the incoming bundle.
		if gk.bundles[u] != nil {
			gk.bundles[u] = v
			dc.Ops(1)
		} else {
			gk.bundles[u] = v
		}
		return
	}
	gk.bundles[u] = mergeItems(gk.bundles[u], v)
	dc.Ops(1)
}

func (gk *gatherKernel[T]) Local(dc *machine.DirectCtx, k, u int) {}
