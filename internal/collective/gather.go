package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// Gather collects every node's value to root, returned in element order
// (the block data layout: in[DataIndex(u)] is node u's value). Like the
// other collectives it uses the cluster technique and takes exactly 2n
// communication steps — the diameter of D_n:
//
//  1. every cluster binomial-gathers its block to a collector node
//     (clusters of root's class collect at local index = root's local
//     index; the other class at local index = root's cluster ID), n-1
//     steps;
//  2. all collectors hop their cross-edges, which lands every bundle of
//     root's class in one designated opposite-class cluster, and every
//     opposite-class bundle in root's own cluster, 1 step;
//  3. those two clusters binomial-gather the bundles (concurrently; they
//     are disjoint), n-1 steps: root now holds the whole opposite class,
//     and root's cross neighbor holds the whole of root's class;
//  4. root's cross neighbor hands its mega-bundle across, 1 step.
//
// The values ride the arena payload plane: the host places each node's
// value at its bit-reversed arena slot, the kernel merges only (offset,
// length) extents — the fan-in above unions adjacent runs at every step
// under that order — and the host reads the single full-arena extent back
// out at root. A warm call reuses the stashed plane and allocates only the
// result slice plus fixed run bookkeeping.
func Gather[T any](n int, root topology.NodeID, in []T) ([]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if root < 0 || root >= d.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("collective: root %d out of range", root)
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpGather)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	N := d.Nodes()
	lay := layoutFor(d)
	pl := extentPlane[T](N)
	defer putExtentPlane(N, pl)
	// Element i belongs to node NodeAtDataIndex(i); place it at that node's
	// arena slot.
	for i, v := range in {
		pl.Vals[lay.posOf[d.NodeAtDataIndex(i)]] = v
	}

	gk := &gatherKernel[T]{
		d: d, sch: sch, mdim: m, root: root,
		rootClass: d.Class(root), rootCluster: d.ClusterID(root), rootLocal: d.LocalID(root),
		posOf: lay.posOf, pl: pl,
	}
	// LinkCapacity only matters on the engine fallback path, where the
	// bundle-bearing cross hops queue more than one message per link.
	st, err := dcomm.Execute(sch, machine.Config{LinkCapacity: 4}, gk)
	if err != nil {
		return nil, st, err
	}
	if u, marker := pl.FirstBad(); u >= 0 {
		return nil, st, fmt.Errorf("collective: gather merged non-adjacent extents at node %d (step %d)", u, marker-1)
	}
	if int(pl.Len[root]) != N {
		return nil, st, fmt.Errorf("collective: gather delivered %d of %d items", pl.Len[root], N)
	}
	out := make([]T, N)
	for i := range out {
		out[i] = pl.Vals[lay.posOf[d.NodeAtDataIndex(i)]]
	}
	return out, st, nil
}

// gatherKernel is the binomial fan-in as a kernel over the extent plane. A
// node's bundle is empty (Len 0) exactly when it has handed its items up
// the collection tree — which also disambiguates the phase-2 roles during
// Absorb: the bundle of a collector that exchanged with its cross collector
// is still non-empty, a bare receiver's is empty.
type gatherKernel[T any] struct {
	d           *topology.DualCube
	sch         *machine.Schedule
	mdim        int
	root        topology.NodeID
	rootClass   int
	rootCluster int
	rootLocal   int
	posOf       []int32
	pl          *machine.ExtentPlane[T]
}

// gatherRole is one level of the collection tree at node u: the schedule
// supplies the descending dimension, target is the collector's local index.
func (gk *gatherKernel[T]) gatherRole(k, u, tgt int) machine.DirectRole {
	i := gk.sch.Steps[k].Dim
	local := gk.d.LocalID(u)
	maskAbove := ^((1 << (i + 1)) - 1)
	if local&maskAbove != tgt&maskAbove {
		return machine.DirectIdle // already out of the collection tree at this level
	}
	if local&(1<<i) != tgt&(1<<i) {
		return machine.DirectSend
	}
	return machine.DirectRecv
}

// target returns the collector position inside node u's cluster.
func (gk *gatherKernel[T]) target(u int) int {
	if gk.d.Class(u) != gk.rootClass {
		return gk.rootCluster
	}
	return gk.rootLocal
}

// take returns node u's current extent and empties its slot — the bundle is
// leaving over the link.
func (gk *gatherKernel[T]) take(u int) machine.Extent {
	b := machine.Extent{Off: gk.pl.Off[u], Len: gk.pl.Len[u]}
	gk.pl.Len[u] = 0
	return b
}

func (gk *gatherKernel[T]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, machine.Extent) {
	d := gk.d
	pl := gk.pl
	if k == 0 {
		pl.Off[u] = gk.posOf[u]
		pl.Len[u] = 1
	}
	switch {
	case k < gk.mdim:
		// Phase 1: binomial gather of the cluster block toward the target
		// (reverse flood: the schedule descends dimensions m-1 down to 0).
		role := gk.gatherRole(k, u, gk.target(u))
		if role == machine.DirectSend {
			return role, gk.take(u)
		}
		return role, machine.Extent{Off: pl.Off[u], Len: pl.Len[u]}
	case k == gk.mdim:
		// Phase 2: collectors hop their cross-edges; a node receives iff its
		// cross neighbor is a collector of its own cluster.
		cross := d.CrossNeighbor(u)
		isCollector := d.LocalID(u) == gk.target(u) && pl.Len[u] != 0
		crossIsCollector := d.LocalID(cross) == gk.target(cross)
		b := machine.Extent{Off: pl.Off[u], Len: pl.Len[u]}
		switch {
		case isCollector && crossIsCollector:
			return machine.DirectExchange, b
		case isCollector:
			pl.Len[u] = 0
			return machine.DirectSend, b
		case crossIsCollector:
			return machine.DirectRecv, b
		}
		return machine.DirectIdle, b
	case k <= 2*gk.mdim:
		// Phase 3: two clusters gather the phase-2 bundles concurrently:
		// root's cluster (toward root) and the opposite-class mirror cluster
		// (toward root's cross neighbor).
		class, cluster := d.Class(u), d.ClusterID(u)
		inRootCluster := class == gk.rootClass && cluster == gk.rootCluster
		inMirrorCluster := class != gk.rootClass && cluster == gk.rootLocal
		if !inRootCluster && !inMirrorCluster {
			return machine.DirectIdle, machine.Extent{}
		}
		tgt := gk.rootLocal
		if inMirrorCluster {
			tgt = gk.rootCluster
		}
		role := gk.gatherRole(k, u, tgt)
		if role == machine.DirectSend {
			return role, gk.take(u)
		}
		return role, machine.Extent{Off: pl.Off[u], Len: pl.Len[u]}
	default:
		// Phase 4: root's cross neighbor delivers the mega-bundle.
		switch u {
		case d.CrossNeighbor(gk.root):
			return machine.DirectSend, gk.take(u)
		case gk.root:
			return machine.DirectRecv, machine.Extent{}
		}
		return machine.DirectIdle, machine.Extent{}
	}
}

func (gk *gatherKernel[T]) Absorb(dc *machine.DirectCtx, k, u int, v machine.Extent) {
	pl := gk.pl
	if k == gk.mdim {
		// Phase 2 cross hop: collectors exchanging with their cross
		// collector count the swap as a round of work; bare receivers
		// (bundle already empty) just adopt the incoming extent.
		if pl.Len[u] != 0 {
			pl.Off[u], pl.Len[u] = v.Off, v.Len
			dc.Ops(1)
		} else {
			pl.Off[u], pl.Len[u] = v.Off, v.Len
		}
		return
	}
	merged, ok := (machine.Extent{Off: pl.Off[u], Len: pl.Len[u]}).Merge(v)
	if !ok && pl.Bad[u] == 0 {
		pl.Bad[u] = int32(k) + 1
	}
	pl.Off[u], pl.Len[u] = merged.Off, merged.Len
	dc.Ops(1)
}

func (gk *gatherKernel[T]) Local(dc *machine.DirectCtx, k, u int) {}
