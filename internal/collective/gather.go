package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// item is one element in flight during a gather: its global element index
// (block data layout) and its value.
type item[T any] struct {
	idx int
	val T
}

// mergeItems merges two index-sorted bundles into one.
func mergeItems[T any](a, b []item[T]) []item[T] {
	out := make([]item[T], 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].idx <= b[j].idx {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Gather collects every node's value to root, returned in element order
// (the block data layout: in[DataIndex(u)] is node u's value). Like the
// other collectives it uses the cluster technique and takes exactly 2n
// communication steps — the diameter of D_n:
//
//  1. every cluster binomial-gathers its block to a collector node
//     (clusters of root's class collect at local index = root's local
//     index; the other class at local index = root's cluster ID), n-1
//     steps;
//  2. all collectors hop their cross-edges, which lands every bundle of
//     root's class in one designated opposite-class cluster, and every
//     opposite-class bundle in root's own cluster, 1 step;
//  3. those two clusters binomial-gather the bundles (concurrently; they
//     are disjoint), n-1 steps: root now holds the whole opposite class,
//     and root's cross neighbor holds the whole of root's class;
//  4. root's cross neighbor hands its mega-bundle across, 1 step.
func Gather[T any](n int, root topology.NodeID, in []T) ([]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if root < 0 || root >= d.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("collective: root %d out of range", root)
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpGather)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	rootClass := d.Class(root)
	rootCluster := d.ClusterID(root)
	rootLocal := d.LocalID(root)

	out := make([]T, d.Nodes())
	errs := make([]error, d.Nodes())
	eng, err := machine.New[[]item[T]](d, machine.Config{LinkCapacity: 4})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[[]item[T]]) {
		u := c.ID()
		class, cluster, local := d.Class(u), d.ClusterID(u), d.LocalID(u)
		x := machine.Interpret(c, sch)
		// The collector position inside this node's cluster.
		target := rootLocal
		if class != rootClass {
			target = rootCluster
		}
		bundle := []item[T]{{idx: d.DataIndex(u), val: in[d.DataIndex(u)]}}

		// Phase 1: binomial gather of the cluster block toward target
		// (reverse flood: the schedule descends dimensions m-1 down to 0).
		gatherRound := func(tgt int) {
			i := x.Dim()
			maskAbove := ^((1 << (i + 1)) - 1)
			if local&maskAbove != tgt&maskAbove {
				x.Idle() // already out of the collection tree at this level
				return
			}
			if local&(1<<i) != tgt&(1<<i) {
				x.Send(bundle)
				bundle = nil
			} else {
				recv := x.Recv()
				bundle = mergeItems(bundle, recv)
				c.Ops(1)
			}
		}
		for i := 0; i < m; i++ {
			gatherRound(target)
		}

		// Phase 2: collectors hop their cross-edges. Receivers are the
		// cross images: in the opposite class the nodes with local index
		// rootLocal inside... precisely, a node receives iff its cross
		// neighbor is a collector of its own cluster.
		cross := d.CrossNeighbor(u)
		isCollector := local == target && bundle != nil
		crossIsCollector := func() bool {
			cc, cl := d.Class(cross), d.LocalID(cross)
			t := rootLocal
			if cc != rootClass {
				t = rootCluster
			}
			return cl == t
		}()
		switch {
		case isCollector && crossIsCollector:
			recv := x.SendRecv(bundle)
			bundle = recv
			c.Ops(1)
		case isCollector:
			x.Send(bundle)
			bundle = nil
		case crossIsCollector:
			bundle = x.Recv()
		default:
			x.Idle()
		}

		// Phase 3: two clusters gather the phase-2 bundles concurrently:
		// root's cluster (toward root) and the opposite-class cluster with
		// ID rootLocal's counterpart (toward root's cross neighbor).
		inRootCluster := class == rootClass && cluster == rootCluster
		inMirrorCluster := class != rootClass && cluster == rootLocal
		if inRootCluster || inMirrorCluster {
			tgt := rootLocal
			if inMirrorCluster {
				tgt = rootCluster
			}
			for i := 0; i < m; i++ {
				gatherRound(tgt)
			}
		} else {
			for i := 0; i < m; i++ {
				x.Idle()
			}
		}

		// Phase 4: root's cross neighbor delivers the mega-bundle.
		switch u {
		case d.CrossNeighbor(root):
			x.Send(bundle)
			bundle = nil
		case root:
			recv := x.Recv()
			bundle = mergeItems(bundle, recv)
			c.Ops(1)
		default:
			x.Idle()
		}

		if u == root {
			if len(bundle) != d.Nodes() {
				errs[u] = fmt.Errorf("collective: gather delivered %d of %d items", len(bundle), d.Nodes())
				return
			}
			for _, it := range bundle {
				out[it.idx] = it.val
			}
		}
	})
	if err != nil {
		return nil, st, err
	}
	if err := firstErr(errs); err != nil {
		return nil, st, err
	}
	return out, st, nil
}
