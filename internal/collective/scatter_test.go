package collective

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dualcube/internal/topology"
)

func TestScatterAllRoots(t *testing.T) {
	for n := 1; n <= 3; n++ {
		N := 1 << (2*n - 1)
		d, _ := topology.Validated(n, N)
		in := make([]int, N)
		for i := range in {
			in[i] = i*100 + 1
		}
		for root := 0; root < N; root++ {
			got, st, err := Scatter(n, root, in)
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			for u := 0; u < N; u++ {
				if want := in[d.DataIndex(u)]; got[u] != want {
					t.Fatalf("n=%d root=%d: node %d got %d, want %d", n, root, u, got[u], want)
				}
			}
			if st.Cycles != 2*n {
				t.Errorf("n=%d root=%d: comm %d, want %d", n, root, st.Cycles, 2*n)
			}
		}
	}
}

func TestScatterLarger(t *testing.T) {
	n := 5
	N := 1 << (2*n - 1)
	d, _ := topology.Validated(n, N)
	rng := rand.New(rand.NewSource(1))
	in := make([]int, N)
	for i := range in {
		in[i] = rng.Int()
	}
	got, st, err := Scatter(n, 77, in)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < N; u++ {
		if got[u] != in[d.DataIndex(u)] {
			t.Fatalf("node %d wrong", u)
		}
	}
	if st.Cycles != 2*n {
		t.Errorf("comm %d, want %d", st.Cycles, 2*n)
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	// Gather(Scatter(x)) == x from any pair of roots.
	n := 2
	N := 1 << (2*n - 1)
	in := []int{10, 20, 30, 40, 50, 60, 70, 80}
	d, _ := topology.Validated(n, N)
	scattered, _, err := Scatter(n, 3, in)
	if err != nil {
		t.Fatal(err)
	}
	// Convert node-indexed values back to element order for Gather's input
	// convention (in[DataIndex(u)] is node u's value).
	elem := make([]int, N)
	for u := 0; u < N; u++ {
		elem[d.DataIndex(u)] = scattered[u]
	}
	back, _, err := Gather(n, 6, elem)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if back[i] != in[i] {
			t.Fatalf("round trip broke element %d", i)
		}
	}
}

func TestScatterBadArgs(t *testing.T) {
	if _, _, err := Scatter(2, 0, make([]int, 3)); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := Scatter(2, 64, make([]int, 8)); err == nil {
		t.Error("bad root should fail")
	}
	if _, _, err := Scatter[int](0, 0, nil); err == nil {
		t.Error("order 0 should fail")
	}
}

func TestAllGather(t *testing.T) {
	for n := 1; n <= 3; n++ {
		N := 1 << (2*n - 1)
		in := make([]int, N)
		for i := range in {
			in[i] = i + 1000
		}
		got, st, err := AllGather(n, in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for u := 0; u < N; u++ {
			if len(got[u]) != N {
				t.Fatalf("n=%d: node %d has %d elements", n, u, len(got[u]))
			}
			for i := range in {
				if got[u][i] != in[i] {
					t.Fatalf("n=%d: node %d element %d = %d", n, u, i, got[u][i])
				}
			}
		}
		if st.Cycles != 2*n {
			t.Errorf("n=%d: comm %d, want %d", n, st.Cycles, 2*n)
		}
	}
}

func TestAllGatherBadArgs(t *testing.T) {
	if _, _, err := AllGather(2, make([]int, 5)); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := AllGather[int](0, nil); err == nil {
		t.Error("order 0 should fail")
	}
}

func TestScatterSplitIsRevContiguous(t *testing.T) {
	// The scatter fan-out's correctness rests on the arena-order theorem:
	// under the bit-reversed layout, the set of destinations a holder keeps
	// at a phase-4 step — dest-local bit i equal to its own — is always one
	// contiguous half of its current run. Check the theorem directly: for
	// every cluster-row run and every bit, the kept slots form the first or
	// second half.
	for n := 2; n <= 3; n++ {
		N := 1 << (2*n - 1)
		d, _ := topology.Validated(n, N)
		m := d.ClusterDim()
		pos := layoutFor(d).posOf
		for u := 0; u < N; u++ {
			class, cluster, local := d.Class(u), d.ClusterID(u), d.LocalID(u)
			for i := 0; i < m; i++ {
				// The run at step i: cluster-mates matching u's local on bits
				// below i. It must be contiguous, and the sub-run matching at
				// bit i too must be the half selected by u's bit.
				runLo, runHi, keepLo, keepHi := N, -1, N, -1
				low := (1 << i) - 1
				for v := 0; v < N; v++ {
					if d.Class(v) != class || d.ClusterID(v) != cluster ||
						d.LocalID(v)&low != local&low {
						continue
					}
					p := int(pos[v])
					runLo, runHi = min(runLo, p), max(runHi, p)
					if d.LocalID(v)&(1<<i) == local&(1<<i) {
						keepLo, keepHi = min(keepLo, p), max(keepHi, p)
					}
				}
				runLen := 1 << (m - i)
				if runHi-runLo+1 != runLen || keepHi-keepLo+1 != runLen/2 {
					t.Fatalf("n=%d u=%d bit %d: run [%d,%d] keep [%d,%d] not a contiguous halving",
						n, u, i, runLo, runHi, keepLo, keepHi)
				}
				wantLo := runLo
				if local&(1<<i) != 0 {
					wantLo = runLo + runLen/2
				}
				if keepLo != wantLo {
					t.Fatalf("n=%d u=%d bit %d: kept half starts at %d, want %d (bit selects the half)",
						n, u, i, keepLo, wantLo)
				}
			}
		}
	}
}

func TestScatterQuick(t *testing.T) {
	f := func(nSeed, rootSeed uint8, seed int64) bool {
		n := int(nSeed)%3 + 1
		N := 1 << (2*n - 1)
		root := int(rootSeed) % N
		d, _ := topology.Validated(n, N)
		rng := rand.New(rand.NewSource(seed))
		in := make([]int, N)
		for i := range in {
			in[i] = rng.Intn(1 << 20)
		}
		got, _, err := Scatter(n, root, in)
		if err != nil {
			return false
		}
		for u := 0; u < N; u++ {
			if got[u] != in[d.DataIndex(u)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
