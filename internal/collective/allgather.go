package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// AllGather delivers every node's element to every node (in element
// order), in 2n communication steps: in-cluster all-gather (n-1 steps,
// bundles doubling), cross-edge block exchange (1), in-cluster all-gather
// of the received blocks — after which each node holds the entire opposite
// class (n-1 steps) — and a final cross-edge swap of the class halves (1).
//
// The values ride the arena payload plane in NATURAL element order: the
// ascending doubling frees low local bits first, so every bundle is a
// contiguous run of the element sequence and each merge unions two
// adjacent runs. The kernel moves only extents over one shared arena; the
// host verifies every node assembled the full run and materializes the
// per-node rows from one backing slab (two result allocations total).
func AllGather[T any](n int, in []T) ([][]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpAllGather)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	N := d.Nodes()
	pl := extentPlane[T](N)
	defer putExtentPlane(N, pl)
	copy(pl.Vals, in) // the arena IS the element sequence

	agk := &allGatherKernel[T]{d: d, mdim: m, pl: pl}
	st, err := dcomm.Execute(sch, machine.Config{}, agk)
	if err != nil {
		return nil, st, err
	}
	backing := make([]T, N*N)
	out := make([][]T, N)
	for u := 0; u < N; u++ {
		if pl.Off[u] != 0 || int(pl.Len[u]) != N {
			return nil, st, fmt.Errorf("collective: node %d assembled %d of %d items", u, pl.Len[u], N)
		}
		row := backing[u*N : (u+1)*N : (u+1)*N]
		copy(row, pl.Vals)
		out[u] = row
	}
	return out, st, nil
}

// allGatherKernel doubles extents along the cluster sweeps: the primary
// extent grows to the node's own class block, the secondary to the complete
// opposite class, and the final cross swap plus local merge assembles the
// whole sequence per node. Every union is of adjacent runs of the natural
// element order, so the two extent tables are the only in-flight state.
type allGatherKernel[T any] struct {
	d    *topology.DualCube
	mdim int
	pl   *machine.ExtentPlane[T]
}

func (agk *allGatherKernel[T]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, machine.Extent) {
	pl := agk.pl
	if k == 0 {
		pl.Off[u] = int32(agk.d.DataIndex(u))
		pl.Len[u] = 1
	}
	if k <= agk.mdim {
		// Phases 1-2: all-gather the block within the cluster, then swap
		// blocks over the cross-edge.
		return machine.DirectExchange, machine.Extent{Off: pl.Off[u], Len: pl.Len[u]}
	}
	// Phases 3-4: all-gather the received blocks, then swap class halves.
	return machine.DirectExchange, machine.Extent{Off: pl.Off2[u], Len: pl.Len2[u]}
}

func (agk *allGatherKernel[T]) Absorb(dc *machine.DirectCtx, k, u int, v machine.Extent) {
	pl := agk.pl
	switch {
	case k < agk.mdim:
		merged, ok := (machine.Extent{Off: pl.Off[u], Len: pl.Len[u]}).Merge(v)
		if !ok && pl.Bad[u] == 0 {
			pl.Bad[u] = int32(k) + 1
		}
		pl.Off[u], pl.Len[u] = merged.Off, merged.Len
		dc.Ops(1)
	case k == agk.mdim:
		pl.Off2[u], pl.Len2[u] = v.Off, v.Len
	case k <= 2*agk.mdim:
		merged, ok := (machine.Extent{Off: pl.Off2[u], Len: pl.Len2[u]}).Merge(v)
		if !ok && pl.Bad[u] == 0 {
			pl.Bad[u] = int32(k) + 1
		}
		pl.Off2[u], pl.Len2[u] = merged.Off, merged.Len
		dc.Ops(1)
	default:
		// v is this node's own class half, swapped back; the union is the
		// whole sequence.
		merged, ok := v.Merge(machine.Extent{Off: pl.Off2[u], Len: pl.Len2[u]})
		if !ok && pl.Bad[u] == 0 {
			pl.Bad[u] = int32(k) + 1
		}
		pl.Off[u], pl.Len[u] = merged.Off, merged.Len
	}
}

func (agk *allGatherKernel[T]) Local(dc *machine.DirectCtx, k, u int) {
	dc.Ops(1)
}
