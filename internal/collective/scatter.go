package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// Scatter is the exact mirror of Gather: root starts with all N elements
// in element order and every node ends with its own element (in[idx] lands
// on NodeAtDataIndex(idx)). 2n communication steps:
//
//  1. root keeps the opposite class's elements and hands its own class's
//     elements across the cross-edge (1 step);
//  2. root's cluster splits the opposite-class elements by destination
//     cluster while the mirror cluster splits root's class likewise
//     (binomial tree, n-1 steps);
//  3. both clusters push each destination cluster's block over the
//     cross-edges to that cluster's seed (1 step);
//  4. every cluster splits its block down to single elements (n-1 steps).
//
// The values ride the arena payload plane, ordered by DESTINATION slot
// under the bit-reversed arena order: phase 1 is the split of the arena
// into its class halves, and every later split is a midpoint halving of a
// contiguous run (the key bit a step partitions by is the run's top
// varying position), so the kernel only narrows extents and never moves a
// value. The returned slice is indexed by node ID with each node's own
// element.
func Scatter[T any](n int, root topology.NodeID, in []T) ([]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if root < 0 || root >= d.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("collective: root %d out of range", root)
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpScatter)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	N := d.Nodes()
	lay := layoutFor(d)
	pl := extentPlane[T](N)
	defer putExtentPlane(N, pl)
	// Element i is destined for node NodeAtDataIndex(i); place it at the
	// destination's arena slot.
	for i, v := range in {
		pl.Vals[lay.posOf[d.NodeAtDataIndex(i)]] = v
	}

	sk := &scatterKernel[T]{
		d: d, sch: sch, mdim: m, root: root,
		rootClass: d.Class(root), rootCluster: d.ClusterID(root), rootLocal: d.LocalID(root),
		pl: pl, half: int32(N / 2),
	}
	st, err := dcomm.Execute(sch, machine.Config{}, sk)
	if err != nil {
		return nil, st, err
	}
	out := make([]T, N)
	for u := 0; u < N; u++ {
		if pl.Len[u] != 1 || pl.Off[u] != lay.posOf[u] {
			return nil, st, fmt.Errorf("collective: scatter delivered %d item(s) to node %d", pl.Len[u], u)
		}
		out[u] = pl.Vals[pl.Off[u]]
	}
	return out, st, nil
}

// scatterKernel is the splitting fan-out as a kernel — the exact reverse of
// gatherKernel's fan-in, narrowing extents over the destination-ordered
// arena. Every receive simply adopts the incoming extent (the sender
// halved its run), so Absorb is a plain replacement and the host verifies
// each node ends with exactly its own slot.
type scatterKernel[T any] struct {
	d           *topology.DualCube
	sch         *machine.Schedule
	mdim        int
	root        topology.NodeID
	rootClass   int
	rootCluster int
	rootLocal   int
	pl          *machine.ExtentPlane[T]
	half        int32 // arena offset of the class-1 half
}

// splitRole is one level of the fan-out tree at node u: the schedule ascends
// the dimensions, and at level i the active subtree is the set of locals
// matching the seed on bits above i (the holders halve their bundles toward
// the bit-i partner). Under the bit-reversed arena order the first half of a
// holder's run carries key bit i == 0, so the holder keeps the half matching
// its own bit and sends the other — a midpoint split, no value moves.
func (sk *scatterKernel[T]) splitRole(k, u, seed int) (machine.DirectRole, machine.Extent) {
	i := sk.sch.Steps[k].Dim
	local := sk.d.LocalID(u)
	maskAbove := ^((1 << (i + 1)) - 1)
	if local&maskAbove != seed&maskAbove {
		return machine.DirectIdle, machine.Extent{} // this subtree receives its share in a later round
	}
	if local&(1<<i) == seed&(1<<i) {
		pl := sk.pl
		lo, hi := (machine.Extent{Off: pl.Off[u], Len: pl.Len[u]}).Halves()
		keep, send := lo, hi
		if local&(1<<i) != 0 {
			keep, send = hi, lo
		}
		pl.Off[u], pl.Len[u] = keep.Off, keep.Len
		return machine.DirectSend, send
	}
	return machine.DirectRecv, machine.Extent{}
}

func (sk *scatterKernel[T]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, machine.Extent) {
	d := sk.d
	pl := sk.pl
	class, cluster, local := d.Class(u), d.ClusterID(u), d.LocalID(u)
	inRootCluster := class == sk.rootClass && cluster == sk.rootCluster
	inMirrorCluster := class != sk.rootClass && cluster == sk.rootLocal
	switch {
	case k == 0:
		// Phase 1: root keeps the opposite class, exports its own class. The
		// arena's class halves are exactly those two sets.
		switch u {
		case sk.root:
			keep := machine.Extent{Off: 0, Len: sk.half}
			send := machine.Extent{Off: sk.half, Len: sk.half}
			if sk.rootClass == 0 {
				keep, send = send, keep
			}
			pl.Off[u], pl.Len[u] = keep.Off, keep.Len
			return machine.DirectSend, send
		case d.CrossNeighbor(sk.root):
			return machine.DirectRecv, machine.Extent{}
		}
		return machine.DirectIdle, machine.Extent{}
	case k <= sk.mdim:
		// Phase 2: split by destination cluster inside root's cluster and
		// the mirror cluster (seed locals rootLocal and rootCluster; the
		// responsible member for destination cluster x has local x).
		if inRootCluster {
			return sk.splitRole(k, u, sk.rootLocal)
		}
		if inMirrorCluster {
			return sk.splitRole(k, u, sk.rootCluster)
		}
		return machine.DirectIdle, machine.Extent{}
	case k == sk.mdim+1:
		// Phase 3: hand each destination cluster's block to its seed over
		// the cross-edges. Receivers are the seeds: local == rootCluster in
		// the class opposite root, local == rootLocal in root's class.
		isSeed := (class == sk.rootClass && local == sk.rootLocal) ||
			(class != sk.rootClass && local == sk.rootCluster)
		isSender := inRootCluster || inMirrorCluster
		b := machine.Extent{Off: pl.Off[u], Len: pl.Len[u]}
		switch {
		case isSender && isSeed:
			return machine.DirectExchange, b
		case isSender:
			pl.Len[u] = 0
			return machine.DirectSend, b
		case isSeed:
			return machine.DirectRecv, machine.Extent{}
		}
		return machine.DirectIdle, machine.Extent{}
	default:
		// Phase 4: every cluster splits its block from its seed down to
		// single elements.
		seed := sk.rootLocal
		if class != sk.rootClass {
			seed = sk.rootCluster
		}
		return sk.splitRole(k, u, seed)
	}
}

func (sk *scatterKernel[T]) Absorb(dc *machine.DirectCtx, k, u int, v machine.Extent) {
	sk.pl.Off[u], sk.pl.Len[u] = v.Off, v.Len
}

func (sk *scatterKernel[T]) Local(dc *machine.DirectCtx, k, u int) {}
