package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// partitionItems splits a bundle by a predicate, preserving order.
func partitionItems[T any](b []item[T], keep func(item[T]) bool) (kept, sent []item[T]) {
	for _, it := range b {
		if keep(it) {
			kept = append(kept, it)
		} else {
			sent = append(sent, it)
		}
	}
	return kept, sent
}

// Scatter is the exact mirror of Gather: root starts with all N elements
// in element order and every node ends with its own element (in[idx] lands
// on NodeAtDataIndex(idx)). 2n communication steps:
//
//  1. root keeps the opposite class's elements and hands its own class's
//     elements across the cross-edge (1 step);
//  2. root's cluster splits the opposite-class elements by destination
//     cluster while the mirror cluster splits root's class likewise
//     (binomial tree, n-1 steps);
//  3. both clusters push each destination cluster's block over the
//     cross-edges to that cluster's seed (1 step);
//  4. every cluster splits its block down to single elements (n-1 steps).
//
// The returned slice is indexed by node ID with each node's own element.
func Scatter[T any](n int, root topology.NodeID, in []T) ([]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if root < 0 || root >= d.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("collective: root %d out of range", root)
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpScatter)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	rootClass := d.Class(root)
	rootCluster := d.ClusterID(root)
	rootLocal := d.LocalID(root)

	out := make([]T, d.Nodes())
	sk := &scatterKernel[T]{
		d: d, sch: sch, mdim: m, root: root,
		rootClass: rootClass, rootCluster: rootCluster, rootLocal: rootLocal,
		in: in, bundles: make([][]item[T], d.Nodes()),
	}
	st, err := dcomm.Execute(sch, machine.Config{}, sk)
	if err != nil {
		return nil, st, err
	}
	for u := 0; u < d.Nodes(); u++ {
		b := sk.bundles[u]
		if len(b) != 1 || d.NodeAtDataIndex(b[0].idx) != u {
			return nil, st, fmt.Errorf("collective: scatter delivered %d item(s) to node %d", len(b), u)
		}
		out[u] = b[0].val
	}
	return out, st, nil
}

// scatterKernel is the splitting fan-out as a kernel — the exact reverse of
// gatherKernel's fan-in. Every receive simply adopts the incoming bundle
// (the sender partitioned it), so Absorb is a plain replacement and the
// host verifies each node ends with exactly its own element.
type scatterKernel[T any] struct {
	d           *topology.DualCube
	sch         *machine.Schedule
	mdim        int
	root        topology.NodeID
	rootClass   int
	rootCluster int
	rootLocal   int
	in          []T
	bundles     [][]item[T]
}

func (sk *scatterKernel[T]) destNode(it item[T]) topology.NodeID {
	return sk.d.NodeAtDataIndex(it.idx)
}

// splitRole is one level of the fan-out tree at node u: the schedule ascends
// the dimensions, and at level i the active subtree is the set of locals
// matching the seed on bits above i (the holders halve their bundles toward
// the bit-i partner). Holders partition their bundle by key and send the
// other half.
func (sk *scatterKernel[T]) splitRole(k, u, seed int, key func(item[T]) int) (machine.DirectRole, []item[T]) {
	i := sk.sch.Steps[k].Dim
	local := sk.d.LocalID(u)
	maskAbove := ^((1 << (i + 1)) - 1)
	if local&maskAbove != seed&maskAbove {
		return machine.DirectIdle, nil // this subtree receives its share in a later round
	}
	if local&(1<<i) == seed&(1<<i) {
		// Holder: keep items whose key matches this side of bit i.
		keep, send := partitionItems(sk.bundles[u], func(it item[T]) bool {
			return key(it)&(1<<i) == local&(1<<i)
		})
		sk.bundles[u] = keep
		return machine.DirectSend, send
	}
	return machine.DirectRecv, nil
}

func (sk *scatterKernel[T]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, []item[T]) {
	d := sk.d
	class, cluster, local := d.Class(u), d.ClusterID(u), d.LocalID(u)
	inRootCluster := class == sk.rootClass && cluster == sk.rootCluster
	inMirrorCluster := class != sk.rootClass && cluster == sk.rootLocal
	switch {
	case k == 0:
		// Phase 1: root keeps the opposite class, exports its own class.
		switch u {
		case sk.root:
			bundle := make([]item[T], len(sk.in)) //dcvet:allow kernelpure -- v-collective bundle growth pending the zero-alloc payload plane (ROADMAP); escgate budgets it
			for idx, v := range sk.in {
				bundle[idx] = item[T]{idx: idx, val: v}
			}
			keep, send := partitionItems(bundle, func(it item[T]) bool { //dcvet:allow kernelpure -- root-only split predicate, once per run
				return d.Class(sk.destNode(it)) != sk.rootClass
			})
			sk.bundles[u] = keep
			return machine.DirectSend, send
		case d.CrossNeighbor(sk.root):
			return machine.DirectRecv, nil
		}
		return machine.DirectIdle, nil
	case k <= sk.mdim:
		// Phase 2: split by destination cluster inside root's cluster and
		// the mirror cluster (seed locals rootLocal and rootCluster; the
		// responsible member for destination cluster x has local x).
		clusterKey := func(it item[T]) int { return d.ClusterID(sk.destNode(it)) } //dcvet:allow kernelpure -- split predicate pending the zero-alloc payload plane (ROADMAP); escgate budgets it
		if inRootCluster {
			return sk.splitRole(k, u, sk.rootLocal, clusterKey)
		}
		if inMirrorCluster {
			return sk.splitRole(k, u, sk.rootCluster, clusterKey)
		}
		return machine.DirectIdle, nil
	case k == sk.mdim+1:
		// Phase 3: hand each destination cluster's block to its seed over
		// the cross-edges. Receivers are the seeds: local == rootCluster in
		// the class opposite root, local == rootLocal in root's class.
		isSeed := (class == sk.rootClass && local == sk.rootLocal) ||
			(class != sk.rootClass && local == sk.rootCluster)
		isSender := inRootCluster || inMirrorCluster
		b := sk.bundles[u]
		switch {
		case isSender && isSeed:
			return machine.DirectExchange, b
		case isSender:
			sk.bundles[u] = nil
			return machine.DirectSend, b
		case isSeed:
			return machine.DirectRecv, nil
		}
		return machine.DirectIdle, nil
	default:
		// Phase 4: every cluster splits its block from its seed down to
		// single elements.
		seed := sk.rootLocal
		if class != sk.rootClass {
			seed = sk.rootCluster
		}
		return sk.splitRole(k, u, seed, func(it item[T]) int { return d.LocalID(sk.destNode(it)) }) //dcvet:allow kernelpure -- split predicate pending the zero-alloc payload plane (ROADMAP); escgate budgets it
	}
}

func (sk *scatterKernel[T]) Absorb(dc *machine.DirectCtx, k, u int, v []item[T]) {
	sk.bundles[u] = v
}

func (sk *scatterKernel[T]) Local(dc *machine.DirectCtx, k, u int) {}

// AllGather delivers every node's element to every node (in element
// order), in 2n communication steps: in-cluster all-gather (n-1 steps,
// bundles doubling), cross-edge block exchange (1), in-cluster all-gather
// of the received blocks — after which each node holds the entire opposite
// class (n-1 steps) — and a final cross-edge swap of the class halves (1).
func AllGather[T any](n int, in []T) ([][]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpAllGather)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	out := make([][]T, d.Nodes())
	agk := &allGatherKernel[T]{
		d: d, mdim: m, in: in, out: out,
		bundles: make([][]item[T], d.Nodes()),
		others:  make([][]item[T], d.Nodes()),
	}
	st, err := dcomm.Execute(sch, machine.Config{}, agk)
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// allGatherKernel doubles bundles along the cluster sweeps: bundle grows to
// the node's own class block, other to the complete opposite class, and the
// final cross swap plus local merge assembles the whole sequence per node.
type allGatherKernel[T any] struct {
	d       *topology.DualCube
	mdim    int
	in      []T
	out     [][]T
	bundles [][]item[T] // own-class growth, then the fully merged sequence
	others  [][]item[T] // opposite-class growth after the first cross swap
}

func (agk *allGatherKernel[T]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, []item[T]) {
	if k == 0 {
		idx := agk.d.DataIndex(u)
		agk.bundles[u] = []item[T]{{idx: idx, val: agk.in[idx]}} //dcvet:allow kernelpure -- v-collective bundle growth pending the zero-alloc payload plane (ROADMAP); escgate budgets it
	}
	if k <= agk.mdim {
		// Phases 1-2: all-gather the block within the cluster, then swap
		// blocks over the cross-edge.
		return machine.DirectExchange, agk.bundles[u]
	}
	// Phases 3-4: all-gather the received blocks, then swap class halves.
	return machine.DirectExchange, agk.others[u]
}

func (agk *allGatherKernel[T]) Absorb(dc *machine.DirectCtx, k, u int, v []item[T]) {
	switch {
	case k < agk.mdim:
		agk.bundles[u] = mergeItems(agk.bundles[u], v)
		dc.Ops(1)
	case k == agk.mdim:
		agk.others[u] = v
	case k <= 2*agk.mdim:
		agk.others[u] = mergeItems(agk.others[u], v)
		dc.Ops(1)
	default:
		// v is this node's own class half, swapped back; the union is the
		// whole sequence.
		agk.bundles[u] = mergeItems(v, agk.others[u])
	}
}

func (agk *allGatherKernel[T]) Local(dc *machine.DirectCtx, k, u int) {
	dc.Ops(1)
	res := make([]T, agk.d.Nodes()) //dcvet:allow kernelpure -- per-node result vector pending the zero-alloc payload plane (ROADMAP); escgate budgets it
	for _, it := range agk.bundles[u] {
		res[it.idx] = it.val
	}
	agk.out[u] = res
}
