package collective

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// partitionItems splits a bundle by a predicate, preserving order.
func partitionItems[T any](b []item[T], keep func(item[T]) bool) (kept, sent []item[T]) {
	for _, it := range b {
		if keep(it) {
			kept = append(kept, it)
		} else {
			sent = append(sent, it)
		}
	}
	return kept, sent
}

// Scatter is the exact mirror of Gather: root starts with all N elements
// in element order and every node ends with its own element (in[idx] lands
// on NodeAtDataIndex(idx)). 2n communication steps:
//
//  1. root keeps the opposite class's elements and hands its own class's
//     elements across the cross-edge (1 step);
//  2. root's cluster splits the opposite-class elements by destination
//     cluster while the mirror cluster splits root's class likewise
//     (binomial tree, n-1 steps);
//  3. both clusters push each destination cluster's block over the
//     cross-edges to that cluster's seed (1 step);
//  4. every cluster splits its block down to single elements (n-1 steps).
//
// The returned slice is indexed by node ID with each node's own element.
func Scatter[T any](n int, root topology.NodeID, in []T) ([]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if root < 0 || root >= d.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("collective: root %d out of range", root)
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpScatter)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	rootClass := d.Class(root)
	rootCluster := d.ClusterID(root)
	rootLocal := d.LocalID(root)

	out := make([]T, d.Nodes())
	errs := make([]error, d.Nodes())
	eng, err := machine.New[[]item[T]](d, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[[]item[T]]) {
		u := c.ID()
		class, cluster, local := d.Class(u), d.ClusterID(u), d.LocalID(u)
		x := machine.Interpret(c, sch)

		var bundle []item[T]
		if u == root {
			bundle = make([]item[T], len(in))
			for idx, v := range in {
				bundle[idx] = item[T]{idx: idx, val: v}
			}
		}
		destNode := func(it item[T]) topology.NodeID { return d.NodeAtDataIndex(it.idx) }

		// Phase 1: root keeps the opposite class, exports its own class.
		switch u {
		case root:
			keep, send := partitionItems(bundle, func(it item[T]) bool {
				return d.Class(destNode(it)) != rootClass
			})
			x.Send(send)
			bundle = keep
		case d.CrossNeighbor(root):
			bundle = x.Recv()
		default:
			x.Idle()
		}

		// Phase 2: split by destination cluster inside root's cluster and
		// the mirror cluster (flood with splitting: seed locals are
		// rootLocal and rootCluster respectively, and the responsible
		// member for a destination cluster x is the member with local x).
		inRootCluster := class == rootClass && cluster == rootCluster
		inMirrorCluster := class != rootClass && cluster == rootLocal
		// splitRound is one level of the fan-out tree: the schedule ascends
		// the dimensions, and at level i the active subtree is the set of
		// locals matching the seed on bits above i (the holders halve their
		// bundles toward the bit-i partner). This is the exact reverse of
		// Gather's fan-in.
		splitRound := func(seed int, key func(item[T]) int) {
			i := x.Dim()
			maskAbove := ^((1 << (i + 1)) - 1)
			if local&maskAbove != seed&maskAbove {
				x.Idle() // this subtree receives its share in a later round
				return
			}
			if local&(1<<i) == seed&(1<<i) {
				// Holder: keep items whose key matches this side of bit i.
				keep, send := partitionItems(bundle, func(it item[T]) bool {
					return key(it)&(1<<i) == local&(1<<i)
				})
				x.Send(send)
				bundle = keep
			} else {
				bundle = x.Recv()
			}
		}
		clusterKey := func(it item[T]) int { return d.ClusterID(destNode(it)) }
		if inRootCluster {
			for i := 0; i < m; i++ {
				splitRound(rootLocal, clusterKey)
			}
		} else if inMirrorCluster {
			for i := 0; i < m; i++ {
				splitRound(rootCluster, clusterKey)
			}
		} else {
			for i := 0; i < m; i++ {
				x.Idle()
			}
		}

		// Phase 3: hand each destination cluster's block to its seed over
		// the cross-edges. Receivers are the seeds: local == rootCluster in
		// the class opposite root, local == rootLocal in root's class.
		isSeed := (class == rootClass && local == rootLocal) ||
			(class != rootClass && local == rootCluster)
		isSender := inRootCluster || inMirrorCluster
		switch {
		case isSender && isSeed:
			bundle = x.SendRecv(bundle)
		case isSender:
			x.Send(bundle)
			bundle = nil
		case isSeed:
			bundle = x.Recv()
		default:
			x.Idle()
		}

		// Phase 4: every cluster splits its block from its seed down to
		// single elements.
		seed := rootLocal
		if class != rootClass {
			seed = rootCluster
		}
		localKey := func(it item[T]) int { return d.LocalID(destNode(it)) }
		for i := 0; i < m; i++ {
			splitRound(seed, localKey)
		}

		if len(bundle) != 1 || destNode(bundle[0]) != u {
			errs[u] = fmt.Errorf("collective: scatter delivered %d item(s) to node %d", len(bundle), u)
			return
		}
		out[u] = bundle[0].val
	})
	if err != nil {
		return nil, st, err
	}
	if err := firstErr(errs); err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// AllGather delivers every node's element to every node (in element
// order), in 2n communication steps: in-cluster all-gather (n-1 steps,
// bundles doubling), cross-edge block exchange (1), in-cluster all-gather
// of the received blocks — after which each node holds the entire opposite
// class (n-1 steps) — and a final cross-edge swap of the class halves (1).
func AllGather[T any](n int, in []T) ([][]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(in))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	m := d.ClusterDim()
	sch, err := dcomm.Compiled(d, dcomm.OpAllGather)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	out := make([][]T, d.Nodes())
	eng, err := machine.New[[]item[T]](d, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[[]item[T]]) {
		u := c.ID()
		idx := d.DataIndex(u)
		x := machine.Interpret(c, sch)
		bundle := []item[T]{{idx: idx, val: in[idx]}}

		// Phase 1: all-gather the block within the cluster.
		for i := 0; i < m; i++ {
			got := x.Exchange(bundle)
			bundle = mergeItems(bundle, got)
			c.Ops(1)
		}
		// Phase 2: swap blocks over the cross-edge.
		other := x.Exchange(bundle)
		// Phase 3: all-gather the received blocks — every node of the
		// cluster ends with the complete opposite class.
		for i := 0; i < m; i++ {
			got := x.Exchange(other)
			other = mergeItems(other, got)
			c.Ops(1)
		}
		// Phase 4: swap class halves; the union is the whole sequence.
		own := x.Exchange(other)
		all := mergeItems(own, other)
		x.LocalOps(1)

		res := make([]T, d.Nodes())
		for _, it := range all {
			res[it.idx] = it.val
		}
		out[u] = res
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}
