// Fixture for the faultpure analyzer: functions installed as FaultSpec
// Drop/Delay hooks must be pure functions of (src, dst, cycle).
package fixture

import (
	"math/rand"
	"time"

	"dualcube/internal/machine"
)

var flaky = map[int]bool{3: true}

var callCount int

func badSpec() *machine.FaultSpec {
	return &machine.FaultSpec{
		Drop: func(src, dst, cycle int) bool {
			return rand.Float64() < 0.5 // want `Drop hook calls rand.Float64`
		},
		Delay: func(src, dst, cycle int) int {
			if time.Now().UnixNano()%2 == 0 { // want `Delay hook calls time.Now`
				return 1
			}
			return 0
		},
	}
}

func badGlobalSpec() *machine.FaultSpec {
	s := &machine.FaultSpec{}
	s.Drop = func(src, dst, cycle int) bool {
		callCount++ // want `Drop hook accesses package-level variable callCount`
		return false
	}
	return s
}

func badMapSpec() *machine.FaultSpec {
	return &machine.FaultSpec{
		Drop: func(src, dst, cycle int) bool {
			for n := range flaky { // want `Drop hook accesses package-level variable flaky` "Drop hook ranges over a map"
				if n == src {
					return true
				}
			}
			return false
		},
	}
}

// Impurity hidden one call deep in a same-package helper is still found.
func rollDice(src, dst, cycle int) bool {
	return rand.Intn(2) == 0 // want `Drop hook calls rand.Intn`
}

func badIndirectSpec() *machine.FaultSpec {
	return &machine.FaultSpec{Drop: rollDice}
}
