package fixture

import (
	"math/rand"

	"dualcube/internal/machine"
)

const dropThreshold = 0.25

// splitmix is a pure hash: randomness derived from the arguments alone, the
// pattern internal/fault uses for reproducible transient faults.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func cleanSpec(seed uint64) *machine.FaultSpec {
	return &machine.FaultSpec{
		Drop: func(src, dst, cycle int) bool {
			h := splitmix(seed ^ uint64(src)<<40 ^ uint64(dst)<<20 ^ uint64(cycle))
			return float64(h%1000)/1000 < dropThreshold
		},
		Delay: func(src, dst, cycle int) int {
			return int(splitmix(seed^uint64(src*31+dst)) % 3)
		},
	}
}

// Using math/rand outside a hook — to pick the fault plan itself, say — is
// not the analyzer's business.
func cleanPlanPicker(n int) int {
	return rand.Intn(n)
}
