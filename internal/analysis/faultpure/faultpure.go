// Package faultpure checks the purity contract of fault-injection hooks.
// machine.FaultSpec documents that Drop and Delay must be pure functions of
// (src, dst, cycle): the engine evaluates them on the send path of whichever
// worker owns the node that cycle, so any hidden state — a shared PRNG, the
// wall clock, a mutable global, Go's randomized map iteration order — makes
// fault decisions depend on worker scheduling and destroys the bit-for-bit
// reproducibility the differential and golden tests rely on.
//
// The analyzer finds functions installed as Drop/Delay hooks (composite
// literal fields and assignments through a FaultSpec value) and walks their
// bodies, following calls to same-package functions, rejecting:
//
//   - calls into time, math/rand or math/rand/v2;
//   - reads or writes of package-level variables;
//   - range over a map (iteration order is deliberately randomized).
package faultpure

import (
	"go/ast"
	"go/types"
	"strings"

	"dualcube/internal/analysis/driver"
)

// Analyzer is the faultpure checker.
var Analyzer = &driver.Analyzer{
	Name: "faultpure",
	Doc: "report impurity (time/math-rand calls, package-level variable access, " +
		"map iteration) in functions installed as machine.FaultSpec Drop/Delay hooks",
	Run: run,
}

func run(pass *driver.Pass) (any, error) {
	c := &checker{pass: pass, seen: make(map[*ast.FuncDecl]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				if driver.IsNamed(pass.TypesInfo.TypeOf(x), "internal/machine", "FaultSpec") {
					for _, elt := range x.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok && isHookField(key.Name) {
							c.checkHook(kv.Value, key.Name)
						}
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) {
						break
					}
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || !isHookField(sel.Sel.Name) {
						continue
					}
					if driver.IsNamed(pass.TypesInfo.TypeOf(sel.X), "internal/machine", "FaultSpec") {
						c.checkHook(x.Rhs[i], sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func isHookField(name string) bool { return name == "Drop" || name == "Delay" }

// checker walks hook bodies, recursing into same-package callees once each.
type checker struct {
	pass *driver.Pass
	seen map[*ast.FuncDecl]bool
	hook string // name of the hook field being verified, for messages
}

// checkHook verifies the function installed as a hook. A nil hook (clearing
// the field) is trivially pure; a function value defined in another package
// cannot be inspected here and is skipped — its own package's run sees the
// registration site if one exists there.
func (c *checker) checkHook(fn ast.Expr, field string) {
	c.hook = field
	switch v := ast.Unparen(fn).(type) {
	case *ast.FuncLit:
		c.checkBody(v.Body)
	case *ast.Ident, *ast.SelectorExpr:
		if decl := c.declOf(v); decl != nil {
			c.checkDecl(decl)
		}
	}
}

// declOf resolves a function-valued expression to its FuncDecl in this
// package, or nil.
func (c *checker) declOf(e ast.Expr) *ast.FuncDecl {
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[x.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != c.pass.Pkg {
		return nil
	}
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Pos() == fn.Pos() {
				return fd
			}
		}
	}
	return nil
}

func (c *checker) checkDecl(fd *ast.FuncDecl) {
	if c.seen[fd] || fd.Body == nil {
		return
	}
	c.seen[fd] = true
	c.checkBody(fd.Body)
}

func (c *checker) checkBody(body *ast.BlockStmt) {
	pass := c.pass
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(), "%s hook ranges over a map; iteration order is randomized, so fault decisions would differ between runs", c.hook)
				}
			}
		case *ast.CallExpr:
			if path, name, ok := driver.PkgFuncCall(pass.TypesInfo, x); ok && impurePkg(path) {
				pass.Reportf(x.Pos(), "%s hook calls %s.%s; hooks must be pure functions of (src, dst, cycle) — derive randomness by hashing the arguments with the plan seed", c.hook, pkgBase(path), name)
			} else if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				// Methods of math/rand generators (r.Intn on a captured
				// *rand.Rand) are shared mutable state just like the package
				// functions; time.Time methods stay legal — the impure entry
				// point time.Now is already flagged above.
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
					(fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") {
					pass.Reportf(x.Pos(), "%s hook calls %s.%s; hooks must be pure functions of (src, dst, cycle) — derive randomness by hashing the arguments with the plan seed", c.hook, fn.Pkg().Name(), fn.Name())
				}
			}
			// Follow same-package callees so impurity hidden one call deep
			// (the typical "helper that rolls the dice" shape) is found.
			if decl := c.declOf(x.Fun); decl != nil {
				c.checkDecl(decl)
			}
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok && isPackageVar(v) {
				pass.Reportf(x.Pos(), "%s hook accesses package-level variable %s; hooks must be pure functions of (src, dst, cycle)", c.hook, v.Name())
			}
		}
		return true
	})
}

// impurePkg reports whether path is one of the packages whose entry points
// make a hook non-reproducible.
func impurePkg(path string) bool {
	switch path {
	case "time", "math/rand", "math/rand/v2":
		return true
	}
	return false
}

// pkgBase returns the package name element of an import path, for messages
// (math/rand/v2 reads "rand", matching how call sites qualify it).
func pkgBase(path string) string {
	path = strings.TrimSuffix(path, "/v2")
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isPackageVar reports whether v is a package-level variable (of any package:
// globals in the hook's own package are as stateful as foreign ones).
func isPackageVar(v *types.Var) bool {
	if v.IsField() || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}
