package faultpure_test

import (
	"path/filepath"
	"testing"

	"dualcube/internal/analysis/analysistest"
	"dualcube/internal/analysis/faultpure"
)

func TestFaultPure(t *testing.T) {
	analysistest.Run(t, faultpure.Analyzer, filepath.Join("testdata", "src", "faultpure"))
}
