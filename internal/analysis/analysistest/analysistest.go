// Package analysistest runs an analyzer over a fixture directory and checks
// its diagnostics against "// want" comments — the golden-file style of
// golang.org/x/tools/go/analysis/analysistest, reimplemented over the local
// driver so the repository stays dependency-free.
//
// A fixture is a directory of .go files (conventionally below testdata/src/,
// where the go tool does not look) forming one package. Each line that should
// trigger a diagnostic carries a trailing comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// Every listed pattern must match some diagnostic reported on that line, every
// diagnostic must be claimed by some pattern, and lines without a want comment
// must stay silent. Fixtures import the repository's real packages, so the
// analyzers are exercised against the same type information they see in CI.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dualcube/internal/analysis/driver"
)

// expectation is one want pattern at a file position.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the fixture directory dir (relative to the calling test's package
// directory), applies the analyzer, and reports any mismatch between the
// diagnostics and the fixture's want comments as test errors.
func Run(t *testing.T, a *driver.Analyzer, dir string) {
	t.Helper()
	root, err := driver.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := driver.LoadDir(root, dir, "dualcube.fixture/"+filepath.Base(dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parsePatterns(m[1])
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				if len(patterns) == 0 {
					t.Fatalf("%s: want comment lists no patterns", pos)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	diags, err := driver.RunPackage(pkg, []*driver.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !claim(wants, d.Position, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Position, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line whose
// pattern matches, reporting whether one was found.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// parsePatterns splits `"p1" "p2"` into its quoted segments. Patterns may be
// double-quoted (escapes interpreted) or backquoted (raw).
func parsePatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		if s[0] == '`' {
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated pattern in %q", s)
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
			continue
		}
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		p, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		s = s[end+1:]
	}
}
