// Package driver is a self-contained reimplementation of the
// golang.org/x/tools/go/analysis surface this repository's checkers need.
//
// The upstream framework is the obvious home for dcvet's analyzers, but this
// module is deliberately dependency-free (the simulator builds offline with
// nothing beyond the standard library), so the driver mirrors the upstream
// API shape — Analyzer, Pass, Diagnostic, Reportf — on top of go/ast,
// go/types and `go list -export`. Analyzers written against this package port
// to x/tools by changing one import; see DESIGN.md §5.9.
//
// Two deliberate simplifications versus the upstream driver:
//
//   - only non-test GoFiles are analyzed (go vet also walks test sources;
//     the invariants dcvet checks — node-body discipline, Stats merging,
//     fault-hook purity, the abort protocol — bind library code);
//   - no cross-package fact propagation: every analyzer here decides from a
//     single package's syntax and types.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The fields mirror
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//dcvet:allow <name>" suppression comments.
	Name string
	// Doc is the one-paragraph description printed by dcvet -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer run with a single package's syntax trees and
// type information, and collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: an analyzer name, a position and a message.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

// String formats the diagnostic the way go vet does, with the analyzer name
// appended for grep-ability and the exact suppression key spelled out — a
// finding should never send its reader hunting through docs for the
// directive syntax.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s] (suppress: %s %s -- <justification>)",
		d.Position, d.Message, d.Analyzer, AllowDirective, d.Analyzer)
}

// AllowDirective is the comment prefix that suppresses a diagnostic on its
// line (or the line directly below the comment): "//dcvet:allow <analyzer>".
// Suppressions are for invariants the checker cannot see — each use in this
// repository carries a justification after the analyzer name.
const AllowDirective = "//dcvet:allow"

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Diagnostics on lines carrying a matching
// AllowDirective comment are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Position, all[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// RunPackage applies the analyzers to one loaded package, honoring
// AllowDirective suppressions.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	return filterAllowed(pkg, diags), nil
}

// filterAllowed drops diagnostics whose line (or the line above, for a
// directive on a comment line of its own) carries "//dcvet:allow <name>".
func filterAllowed(pkg *Package, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// allowed[file][line] = set of analyzer names allowed on that line.
	allowed := make(map[string]map[int][]string)
	note := func(file string, line int, names []string) {
		if allowed[file] == nil {
			allowed[file] = make(map[int][]string)
		}
		allowed[file][line] = append(allowed[file][line], names...)
	}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowDirective)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				// Everything after "--" is justification, not analyzer names.
				names, _, _ := strings.Cut(rest, "--")
				pos := pkg.Fset.Position(c.Pos())
				// The directive covers its own line and the next one, so it
				// works both trailing a statement and on the line above it.
				note(pos.Filename, pos.Line, strings.Fields(names))
				note(pos.Filename, pos.Line+1, strings.Fields(names))
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		names := allowed[d.Position.Filename][d.Position.Line]
		ok := true
		for _, n := range names {
			if n == d.Analyzer {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, d)
		}
	}
	return kept
}
