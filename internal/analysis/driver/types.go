package driver

import (
	"go/ast"
	"go/types"
	"strings"
)

// Deref returns the pointee type of a pointer, or t itself.
func Deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// Named returns the defining object of a (possibly instantiated) named type,
// or nil. Aliases are resolved first.
func Named(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// IsNamed reports whether t (after dereferencing one pointer) is the named
// type `name` declared in a package whose import path ends in pathSuffix.
// Matching by suffix keeps the analyzers correct under module renames and in
// analysistest fixtures, which import the real packages.
func IsNamed(t types.Type, pathSuffix, name string) bool {
	obj := Named(Deref(t))
	return obj != nil && obj.Name() == name && FromPath(obj, pathSuffix)
}

// FromPath reports whether obj is declared in a package whose import path is
// pathSuffix or ends in "/"+pathSuffix.
func FromPath(obj types.Object, pathSuffix string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pathSuffix || strings.HasSuffix(path, "/"+pathSuffix)
}

// PkgFuncCall reports a call of the form pkg.F(...) where pkg is a package
// qualifier (not a value), returning the imported package path and function
// name. Method calls — even on types from the same package — do not match, so
// checks keyed on impure package entry points (time.Now, rand.Intn) stay
// silent on pure method values like time.Duration.Seconds.
func PkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, funcName string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	qual, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[qual].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
