package driver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked package — the analyzer-facing
// subset of go/packages.Package.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader resolves and type-checks packages of one module. Imports are
// satisfied from compiler export data located via `go list -export`, so a
// Loader needs the go tool on PATH but no third-party machinery; export data
// for dependencies comes out of the ordinary build cache.
type Loader struct {
	root string // module root (directory holding go.mod)
	fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader returns a Loader rooted at the module directory root.
func NewLoader(root string) *Loader {
	l := &Loader{root: root, fset: token.NewFileSet(), exports: make(map[string]string)}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l
}

// ModuleRoot walks up from dir to the nearest directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for p := abs; ; {
		if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
			return p, nil
		}
		parent := filepath.Dir(p)
		if parent == p {
			return "", fmt.Errorf("driver: no go.mod above %s", abs)
		}
		p = parent
	}
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// list runs `go list -deps -export -json` on patterns at the module root,
// registering every export file it reports, and returns the listed packages.
func (l *Loader) list(patterns ...string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("driver: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	l.mu.Lock()
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.mu.Unlock()
	return pkgs, nil
}

// lookup serves export data to the gc importer, listing a missed path on
// demand (fixture packages import standard-library packages that are not
// dependencies of the module proper).
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		if _, err := l.list(path); err != nil {
			return nil, err
		}
		l.mu.Lock()
		file, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
	}
	return os.Open(file)
}

// check parses and type-checks one package from explicit file paths.
func (l *Loader) check(pkgPath string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(pkgPath, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("driver: type-checking %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: l.fset, Syntax: syntax, Types: tpkg, TypesInfo: info}, nil
}

// Load resolves patterns (e.g. "./...") against the module rooted at root and
// returns the matched packages parsed and type-checked, dependencies excluded.
// Packages with no non-test Go files (e.g. testdata trees) are skipped.
func Load(root string, patterns ...string) ([]*Package, error) {
	l := NewLoader(root)
	listed, err := l.list(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, gf := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, gf)
		}
		pkg, err := l.check(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the single package made of every .go file
// directly under dir (an analysistest fixture directory, typically below
// testdata/ where the go tool does not look). Imports resolve against the
// module rooted at root, so fixtures may import this repository's packages.
func LoadDir(root, dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("driver: no .go files in %s", dir)
	}
	l := NewLoader(root)
	return l.check(pkgPath, files)
}
