// Package analysis registers the repository's custom static checkers — the
// dcvet analyzer suite. Each analyzer guards one invariant the compiler
// cannot see but the simulator's correctness depends on; see DESIGN.md §5.9
// for the catalogue and the bugs that motivated each.
package analysis

import (
	"dualcube/internal/analysis/abortpanic"
	"dualcube/internal/analysis/driver"
	"dualcube/internal/analysis/faultpure"
	"dualcube/internal/analysis/kernelpure"
	"dualcube/internal/analysis/laneparity"
	"dualcube/internal/analysis/nodebody"
	"dualcube/internal/analysis/schedtopo"
	"dualcube/internal/analysis/statsadd"
)

// All returns the full analyzer suite in stable order.
func All() []*driver.Analyzer {
	return []*driver.Analyzer{
		abortpanic.Analyzer,
		faultpure.Analyzer,
		kernelpure.Analyzer,
		laneparity.Analyzer,
		nodebody.Analyzer,
		schedtopo.Analyzer,
		statsadd.Analyzer,
	}
}

// ByName returns the subset of All whose names appear in names (nil names
// selects everything). Unknown names are ignored by the lookup and reported
// by the caller, which has the flag context.
func ByName(names []string) []*driver.Analyzer {
	if names == nil {
		return All()
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*driver.Analyzer
	for _, a := range All() {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
