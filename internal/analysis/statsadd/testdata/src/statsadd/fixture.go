// Fixture for the statsadd analyzer: merging two machine.Stats values
// field-by-field (the PR 1 samplesort bug was a bitwise OR per field) must go
// through Stats.Add.
package fixture

import "dualcube/internal/machine"

func badOrMerge(a, b machine.Stats) machine.Stats {
	return machine.Stats{
		Cycles:   a.Cycles | b.Cycles,     // want `field-wise \| of machine.Stats field Cycles`
		Messages: a.Messages | b.Messages, // want `field-wise \| of machine.Stats field Messages`
	}
}

func badAddMerge(a, b machine.Stats) machine.Stats {
	var out machine.Stats
	out.Cycles = a.Cycles + b.Cycles // want `field-wise \+ of machine.Stats field Cycles`
	out.MaxOps = a.MaxOps + b.MaxOps // want `field-wise \+ of machine.Stats field MaxOps`
	return out
}

func badAccumulate(total *machine.Stats, st machine.Stats) {
	total.Messages += st.Messages // want `field-wise \+= of machine.Stats field Messages`
	total.Cycles |= st.Cycles     // want `field-wise \|= of machine.Stats field Cycles`
}

func badFaultStats(a, b machine.Stats) int64 {
	return a.Faults.DroppedMessages + b.Faults.DroppedMessages // want `field-wise \+ of machine.Stats field DroppedMessages`
}
