package fixture

import "dualcube/internal/machine"

// The sanctioned merge.
func cleanAdd(a, b machine.Stats) machine.Stats {
	return a.Add(b)
}

// Scalar adjustments of a single Stats value are not merges: the right-hand
// side is not another phase's field.
func cleanScalar(st machine.Stats, rounds int) machine.Stats {
	st.MaxOps++
	st.MaxOps += rounds
	st.TotalOps += int64(rounds)
	return st
}

// Arithmetic between different fields (a derived metric, not a merge).
func cleanDerived(st machine.Stats) int {
	return st.Cycles + st.MaxOps
}

// Reading fields into plain variables and summing those is fine too — the
// analyzer targets the two-phase merge shape, not all Stats arithmetic.
func cleanProjection(sts []machine.Stats) int64 {
	var msgs int64
	for _, st := range sts {
		msgs += st.Messages
	}
	return msgs
}
