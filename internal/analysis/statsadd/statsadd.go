// Package statsadd forbids field-wise merging of machine.Stats (and its
// FaultStats sub-struct): combining two phases' statistics must go through
// Stats.Add. An earlier samplesort revision merged phases with a bitwise OR
// per field, which silently corrupts every count — exactly the bug class this
// analyzer pins down. Stats.Add also carries the node-count consistency check
// and the fault-breakdown carry-through rules that ad-hoc arithmetic skips.
package statsadd

import (
	"go/ast"
	"go/token"
	"go/types"

	"dualcube/internal/analysis/driver"
)

// Analyzer is the statsadd checker.
var Analyzer = &driver.Analyzer{
	Name: "statsadd",
	Doc: "report field-wise +/| merging of two machine.Stats values; phases " +
		"must be combined with Stats.Add",
	Run: run,
}

func run(pass *driver.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isAddImpl(pass, fd) {
				continue // the one blessed implementation site
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

// isAddImpl reports whether fd is machine's own Stats.Add or FaultStats.add —
// the methods that implement the merge and legitimately touch fields pairwise.
func isAddImpl(pass *driver.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	if fd.Name.Name != "Add" && fd.Name.Name != "add" {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	return driver.IsNamed(t, "internal/machine", "Stats") ||
		driver.IsNamed(t, "internal/machine", "FaultStats")
}

func checkFunc(pass *driver.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if x.Op != token.ADD && x.Op != token.OR {
				return true
			}
			if field, ok := mergesStatsFields(pass, x.X, x.Y); ok {
				pass.Reportf(x.Pos(), "field-wise %s of machine.Stats field %s merges two phases' statistics; use Stats.Add", x.Op, field)
			}
		case *ast.AssignStmt:
			if x.Tok != token.ADD_ASSIGN && x.Tok != token.OR_ASSIGN {
				return true
			}
			if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
				return true
			}
			if field, ok := mergesStatsFields(pass, x.Lhs[0], x.Rhs[0]); ok {
				op := "+="
				if x.Tok == token.OR_ASSIGN {
					op = "|="
				}
				pass.Reportf(x.Pos(), "field-wise %s of machine.Stats field %s merges two phases' statistics; use Stats.Add", op, field)
			}
		}
		return true
	})
}

// mergesStatsFields reports whether a and b are selections of the same field
// of two machine.Stats (or FaultStats) values — the signature of a hand-rolled
// merge. Scalar adjustments like st.MaxOps += k stay legal: only expressions
// whose BOTH sides read a Stats field of the same name are flagged.
func mergesStatsFields(pass *driver.Pass, a, b ast.Expr) (string, bool) {
	fa, ok := statsField(pass, a)
	if !ok {
		return "", false
	}
	fb, ok := statsField(pass, b)
	if !ok || fa != fb {
		return "", false
	}
	return fa, true
}

// statsField returns the field name if e selects a field of machine.Stats or
// machine.FaultStats (through any depth, so st.Faults.DroppedMessages counts).
func statsField(pass *driver.Pass, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	recv := selection.Recv()
	if driver.IsNamed(recv, "internal/machine", "Stats") ||
		driver.IsNamed(recv, "internal/machine", "FaultStats") {
		return sel.Sel.Name, true
	}
	return "", false
}
