package statsadd_test

import (
	"path/filepath"
	"testing"

	"dualcube/internal/analysis/analysistest"
	"dualcube/internal/analysis/statsadd"
)

func TestStatsAdd(t *testing.T) {
	analysistest.Run(t, statsadd.Analyzer, filepath.Join("testdata", "src", "statsadd"))
}
