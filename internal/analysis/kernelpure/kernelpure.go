// Package kernelpure checks the allocation and determinism discipline of
// direct-executor kernel bodies: any function taking a *machine.DirectCtx
// parameter (Produce, Absorb, Local and their helpers) runs inside
// RunDirect's per-step hot loop, once per node per step, across every shard
// worker at once. A single stray allocation there multiplies by nodes×steps
// and shows up directly in the alloc guards and the escgate budgets; a
// nondeterministic construct (map iteration, wall clock, rand) breaks the
// three-way backend equivalence the differential and fuzz tests pin.
//
// The checker therefore rejects, inside kernel bodies:
//
//   - allocation: append growth, make/new, slice or map composite literals,
//     closures (FuncLit), string concatenation, conversions that box a value
//     into an interface;
//   - nondeterminism and side channels: map reads/writes/iteration/delete,
//     calls into fmt, errors, time, math/rand, os and log, goroutine spawns,
//     channel operations;
//   - shared mutable state: assignments to package-level variables (kernels
//     run concurrently over node shards; only per-node kernel state is safe).
//
// internal/machine itself is exempt: the executor's protocol-error paths
// legitimately format errors (they fire at most once per run, not per step),
// and its real escape behavior is budgeted by escgate instead.
//
// Kernels that are deliberately not zero-alloc yet — the v-collectives build
// variable-size bundles as per-node slices pending the zero-alloc payload
// plane (ROADMAP) — carry "//dcvet:allow kernelpure -- <why>" suppressions,
// which double as the worklist for that migration.
package kernelpure

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dualcube/internal/analysis/driver"
)

// Analyzer is the kernelpure checker.
var Analyzer = &driver.Analyzer{
	Name: "kernelpure",
	Doc: "report allocating or nondeterministic constructs (append, make, composite " +
		"literals, closures, maps, string concat, fmt/time/rand calls, global writes) " +
		"inside functions taking a *machine.DirectCtx — the direct executor's per-step " +
		"hot path must be zero-alloc and deterministic",
	Run: run,
}

// impurePackages maps forbidden import paths to why a kernel body must not
// call into them.
var impurePackages = map[string]string{
	"fmt":          "formatting allocates; record an error index and format it after the run",
	"errors":       "error construction allocates; record an error index and format it after the run",
	"time":         "wall-clock reads are nondeterministic across backends and shard workers",
	"math/rand":    "unseeded randomness breaks the direct/engine differential equivalence",
	"math/rand/v2": "unseeded randomness breaks the direct/engine differential equivalence",
	"os":           "kernel bodies must not touch the process environment",
	"log":          "logging allocates and serializes the shard workers",
}

func run(pass *driver.Pass) (any, error) {
	// The executor package is exempt: its protocol-error paths format errors
	// (once per run, not per step) and escgate budgets its real escapes.
	if strings.HasSuffix(pass.Pkg.Path(), "internal/machine") {
		return nil, nil
	}
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body != nil && takesDirectCtx(pass, ft) {
				checkBody(pass, body, reported)
			}
			return true
		})
	}
	return nil, nil
}

// takesDirectCtx reports whether the function type has a *machine.DirectCtx
// param — the signature that marks a direct-executor kernel body or helper.
func takesDirectCtx(pass *driver.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr && driver.IsNamed(tv.Type, "internal/machine", "DirectCtx") {
			return true
		}
	}
	return false
}

// checkBody walks one kernel body. Nested closures are flagged at their
// definition (the closure itself is the allocation) and not descended into.
func checkBody(pass *driver.Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "kernel body defines a closure; closures allocate and capture loop variables — hoist the function into the kernel constructor")
			return false
		case *ast.GoStmt:
			report(x.Pos(), "kernel body spawns a goroutine; RunDirect owns the worker parallelism")
		case *ast.SelectStmt:
			report(x.Pos(), "kernel body uses select; kernels communicate only through Produce/Absorb payloads")
		case *ast.SendStmt:
			report(x.Pos(), "kernel body sends on a channel; kernels communicate only through Produce/Absorb payloads")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				report(x.Pos(), "kernel body receives from a channel; kernels communicate only through Produce/Absorb payloads")
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(x.Pos(), "kernel body allocates a slice literal; preallocate the buffer in the kernel constructor")
				case *types.Map:
					report(x.Pos(), "kernel body allocates a map literal; use dense arrays indexed by node")
				}
			}
		case *ast.IndexExpr:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(x.Pos(), "kernel body indexes a map; map access hashes and may allocate — use dense arrays indexed by node")
				}
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(x.Pos(), "kernel body ranges over a map; iteration order is nondeterministic and breaks backend equivalence")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(pass.TypesInfo.TypeOf(x)) {
				report(x.Pos(), "kernel body concatenates strings, which allocates; format text outside the hot path")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(pass.TypesInfo.TypeOf(x.Lhs[0])) {
				report(x.Pos(), "kernel body concatenates strings, which allocates; format text outside the hot path")
			}
			for _, lhs := range x.Lhs {
				checkGlobalWrite(pass, lhs, report)
			}
		case *ast.IncDecStmt:
			checkGlobalWrite(pass, x.X, report)
		case *ast.CallExpr:
			checkCall(pass, x, report)
		}
		return true
	})
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkGlobalWrite flags an assignment target that resolves to a
// package-level variable.
func checkGlobalWrite(pass *driver.Pass, lhs ast.Expr, report func(token.Pos, string, ...any)) {
	var id *ast.Ident
	switch x := lhs.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return
	}
	if v.Parent() == v.Pkg().Scope() {
		report(lhs.Pos(), "kernel body writes package-level variable %s; kernels run concurrently over node shards and must only mutate per-node kernel state", v.Name())
	}
}

// checkCall flags allocating builtins, calls into impure packages, and
// conversions that box a value into an interface.
func checkCall(pass *driver.Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				report(call.Pos(), "kernel body grows a slice with append; the hot path must write into state preallocated by the kernel constructor")
			case "make":
				report(call.Pos(), "kernel body allocates with make; preallocate the buffer in the kernel constructor")
			case "new":
				report(call.Pos(), "kernel body allocates with new; preallocate the value in the kernel constructor")
			case "delete":
				report(call.Pos(), "kernel body deletes from a map; use dense arrays indexed by node")
			}
			return
		}
	case *ast.SelectorExpr:
		if path, name, ok := driver.PkgFuncCall(pass.TypesInfo, call); ok {
			if why, bad := impurePackages[path]; bad {
				report(call.Pos(), "kernel body calls %s.%s; %s", path, name, why)
			}
			return
		}
		_ = fun
	}
	// A call expression whose Fun is a type is a conversion; converting a
	// concrete value to an interface type boxes it on the heap.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) {
			if at := pass.TypesInfo.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) {
				report(call.Pos(), "kernel body converts a value to an interface, which boxes it on the heap; keep kernel state concrete")
			}
		}
	}
}
