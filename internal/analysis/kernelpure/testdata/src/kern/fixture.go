// Fixture for the kernelpure analyzer: every allocating or nondeterministic
// construct inside a *machine.DirectCtx kernel body is flagged.
package fixture

import (
	"fmt"
	"time"

	"dualcube/internal/machine"
)

var runCounter int

type impureKernel struct {
	state []int
	seen  map[int]bool
	bufs  [][]int
	note  string
}

func (k *impureKernel) Produce(dc *machine.DirectCtx, step, u int) (machine.DirectRole, []int) {
	buf := make([]int, 4)         // want `kernel body allocates with make`
	buf = append(buf, k.state[u]) // want `kernel body grows a slice with append`
	extra := []int{u, step}       // want `kernel body allocates a slice literal`
	_ = extra
	p := new(int) // want `kernel body allocates with new`
	_ = p
	return machine.DirectExchange, buf
}

func (k *impureKernel) Absorb(dc *machine.DirectCtx, step, u int, v []int) {
	if k.seen[u] { // want `kernel body indexes a map`
		return
	}
	for key := range k.seen { // want `kernel body ranges over a map`
		_ = key
	}
	delete(k.seen, u)                           // want `kernel body deletes from a map`
	k.note = k.note + "step"                    // want `kernel body concatenates strings`
	k.note += "!"                               // want `kernel body concatenates strings`
	runCounter++                                // want `kernel body writes package-level variable runCounter`
	cmp := func(a, b int) bool { return a < b } // want `kernel body defines a closure`
	_ = cmp
	k.state[u] += v[0]
	dc.Ops(1)
}

func (k *impureKernel) Local(dc *machine.DirectCtx, step, u int) {
	err := fmt.Errorf("node %d odd state", u) // want `kernel body calls fmt\.Errorf`
	_ = err
	now := time.Now() // want `kernel body calls time\.Now`
	_ = now
	ifc := any(u) // want `kernel body converts a value to an interface`
	_ = ifc
	go func() { runCounter = 0 }() // want `kernel body spawns a goroutine` `kernel body defines a closure`
	ch := make(chan int, 1)        // want `kernel body allocates with make`
	ch <- u                        // want `kernel body sends on a channel`
	<-ch                           // want `kernel body receives from a channel`
}
