package fixture

import "dualcube/internal/machine"

// cleanKernel is the shape the checker wants: all state preallocated by the
// constructor, the body only indexing flat arrays and calling dc.Ops. None of
// this is reported.
type cleanKernel struct {
	less func(a, b int) bool // hoisted here, not defined in the body
	keys []int
	t    []int
	snap func(step int, keys []int)
}

func (ck *cleanKernel) Produce(dc *machine.DirectCtx, step, u int) (machine.DirectRole, int) {
	if step == 0 {
		ck.t[u] = ck.keys[u]
	}
	return machine.DirectExchange, ck.t[u]
}

func (ck *cleanKernel) Absorb(dc *machine.DirectCtx, step, u int, v int) {
	key := ck.t[u]
	if ck.less(v, key) {
		key = v
	}
	ck.t[u] = key
	dc.Ops(1)
	if ck.snap != nil {
		ck.snap(step, ck.keys)
	}
}

func (ck *cleanKernel) Local(dc *machine.DirectCtx, step, u int) {
	ck.keys[u] = ck.t[u]
}

// Implicit boxing — assigning a concrete value to an interface-typed
// variable without a conversion expression — is a known blind spot: only
// explicit conversions like any(x) are reported. escgate catches the escape.
func implicitBoxBlindSpot(dc *machine.DirectCtx, u int) {
	var sink any = u
	_ = sink
}
