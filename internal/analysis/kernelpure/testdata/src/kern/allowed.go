package fixture

import (
	"fmt"

	"dualcube/internal/machine"
)

// allowedKernel exercises the suppression surface on a second file of the
// same package (multi-file coverage): each violation below carries a
// "//dcvet:allow kernelpure -- <why>" directive, trailing the statement or on
// the line above it, and must NOT be reported. The final method mixes an
// allowed line with a live violation to prove suppression is line-scoped.
type allowedKernel struct {
	bufs [][]int
	errs []error
}

func (ak *allowedKernel) Produce(dc *machine.DirectCtx, step, u int) (machine.DirectRole, []int) {
	//dcvet:allow kernelpure -- variable-size bundle pending the zero-alloc payload plane
	buf := make([]int, 0, 8)
	buf = append(buf, u) //dcvet:allow kernelpure -- growth is bounded by the bundle size
	return machine.DirectSend, buf
}

func (ak *allowedKernel) Absorb(dc *machine.DirectCtx, step, u int, v []int) {
	ak.bufs[u] = append(ak.bufs[u], v...) //dcvet:allow kernelpure -- merge buffer, budgeted by escgate
}

func (ak *allowedKernel) Local(dc *machine.DirectCtx, step, u int) {
	if len(ak.bufs[u]) == 0 {
		//dcvet:allow kernelpure -- protocol error path, fires at most once per run
		ak.errs[u] = fmt.Errorf("node %d got no bundle", u)
	}
	other := fmt.Sprintf("node %d", u) // want `kernel body calls fmt\.Sprintf`
	_ = other
}
