package kernelpure_test

import (
	"testing"

	"dualcube/internal/analysis/analysistest"
	"dualcube/internal/analysis/kernelpure"
)

func TestKernelPure(t *testing.T) {
	analysistest.Run(t, kernelpure.Analyzer, "testdata/src/kern")
}
