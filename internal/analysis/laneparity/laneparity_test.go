package laneparity_test

import (
	"testing"

	"dualcube/internal/analysis/analysistest"
	"dualcube/internal/analysis/laneparity"
)

func TestLaneParityFixture(t *testing.T) {
	analysistest.Run(t, laneparity.Analyzer, "testdata/src/lanefix")
}
