// Package laneparity machine-checks the "statement-for-statement mirror"
// invariant between each batched lane kernel and its single-lane sibling.
// The serving front-end's correctness claim — a batched pass is
// byte-identical to k unbatched passes — rests on lane l of every lane
// kernel computing exactly what the single-lane kernel computes, in the same
// combine order. Until this analyzer, that invariant was comment-enforced
// ("mirrors ... statement for statement") and pinned only dynamically by the
// lane differential tests; a drift that happens to agree on the tested
// monoids (say, swapping Combine argument order, which commutative monoids
// hide) would survive. laneparity diffs the normalized ASTs instead, so the
// mirror holds for every monoid by construction.
//
// Normalization maps both kernels onto one canonical form:
//
//   - the receiver prints as R, params by position (step index STEP, node U,
//     payload V) — so prefixKernel's `k` and lanePrefixKernel's `step` agree;
//   - single-assignment locals are inlined (m := pk.m, t := pk.t[u*k:...]);
//   - index and slice expressions over kernel state erase to the bare field
//     (pk.t[u], t[l], pk.out[l][idx], pk.t[u*k:(u+1)*k] all print as R.t),
//     which is exactly the lane widening: element-major vs node-major
//     indexing is the intended difference, everything else must agree;
//   - lane loops (for l := 0; l < k; l++ and for l, kv := range row) are
//     stripped, their bodies kept;
//   - the machine.Lanes staging idiom (row := lanes.Row(step,u)[:k];
//     copy(row, X); return role, row) is folded into direct returns of X,
//     and copy(dst, src) over state rows becomes dst = src;
//   - guard-only early returns are inverted into enclosing guards, and
//     per-pair trace hooks (snap) plus self-assignments are dropped.
//
// Each registered pair lists its methods with a comparison mode:
//
//   - mirror: the guarded effect sequences must be identical, and the
//     guard→(role, payload) return maps must agree (arms whose payload equals
//     the default arm's may be merged, as lanePrefixKernel.Produce does);
//   - roles: the lane kernel factors the role ladder into its own method
//     (LaneBroadcastKernel.role) — compare it against the single-lane
//     Produce with payloads stripped, guard stacks compared exactly;
//   - orient: the sort pair resolves the compare direction differently by
//     design (exchKernel folds it into one dir variable, LaneSortKernel
//     branches per plan kind), so structural equality is wrong; instead
//     every keepMinAt-guarded compare must keep the minimum on the keep-min
//     branch (less(V, key)) and the maximum on the other (less(key, V)), on
//     both sides — the orientation a drift would silently corrupt.
//
// A genuine, justified divergence is suppressed with
// "//dcvet:allow laneparity -- <why>" on the reported line.
package laneparity

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"dualcube/internal/analysis/driver"
)

// Analyzer is the laneparity checker.
var Analyzer = &driver.Analyzer{
	Name: "laneparity",
	Doc: "diff each batched lane kernel against its single-lane sibling on " +
		"normalized ASTs (lane loops stripped, state indexing erased, payload " +
		"staging folded) and report any statement, guard, payload or " +
		"compare-orientation drift — the serving layer's batched == unbatched " +
		"guarantee is exactly this mirror",
	Run: run,
}

// mode selects how a method pair is compared.
type mode int

const (
	// modeMirror compares guarded effect sequences and merged return maps.
	modeMirror mode = iota
	// modeRoles compares returned roles under exact guard stacks, payloads
	// stripped (for role ladders factored into a lane-side method).
	modeRoles
	// modeOrient checks keep-min/keep-max compare orientation on both sides
	// instead of structural equality.
	modeOrient
)

// methodPair names one single-lane method and its lane counterpart.
type methodPair struct {
	single, lane string
	mode         mode
}

// pairSpec registers one kernel sibling pair within one package.
type pairSpec struct {
	// pkgSuffix gates the pair to packages whose import path ends with it.
	pkgSuffix string
	// single and lane are the two kernel type names.
	single, lane string
	// fieldMap renames lane-side receiver fields to their single-lane
	// equivalents before comparison (laneAllReduceKernel delivers into res
	// what allReduceKernel keeps in out).
	fieldMap map[string]string
	methods  []methodPair
}

// pairs is the registry. The lanefix entries bind the analyzer's own golden
// fixtures (testdata/src/lanefix); they match no real package.
var pairs = []pairSpec{
	{
		pkgSuffix: "internal/prefix",
		single:    "prefixKernel", lane: "lanePrefixKernel",
		// The lane kernel keeps the running prefix in the flat node-major s
		// (scattered to out in Local, where the self-assignment erases);
		// the single-lane kernel's prefix variable lives directly in out.
		fieldMap: map[string]string{"s": "out"},
		methods: []methodPair{
			{"Produce", "Produce", modeMirror},
			{"Absorb", "Absorb", modeMirror},
			{"Local", "Local", modeMirror},
		},
	},
	{
		pkgSuffix: "internal/collective",
		single:    "allReduceKernel", lane: "laneAllReduceKernel",
		fieldMap: map[string]string{"res": "out"},
		methods: []methodPair{
			{"Produce", "Produce", modeMirror},
			{"Absorb", "Absorb", modeMirror},
			{"Local", "Local", modeMirror},
		},
	},
	{
		pkgSuffix: "internal/collective",
		single:    "broadcastKernel", lane: "LaneBroadcastKernel",
		fieldMap: map[string]string{"val": "out"},
		methods: []methodPair{
			{"Produce", "role", modeRoles},
			{"Absorb", "Absorb", modeMirror},
		},
	},
	{
		pkgSuffix: "internal/sortnet",
		single:    "exchKernel", lane: "LaneSortKernel",
		methods: []methodPair{
			{"Produce", "Produce", modeMirror},
			{"Absorb", "Absorb", modeOrient},
		},
	},
	// Fixture pairs (testdata/src/lanefix): a clean mirror, a drifted lane
	// kernel the analyzer must flag, and a suppressed divergence.
	{
		pkgSuffix: "/lanefix",
		single:    "miniKernel", lane: "laneMiniKernel",
		fieldMap: map[string]string{"res": "out"},
		methods: []methodPair{
			{"Produce", "Produce", modeMirror},
			{"Absorb", "Absorb", modeMirror},
			{"Local", "Local", modeMirror},
		},
	},
	{
		pkgSuffix: "/lanefix",
		single:    "driftKernel", lane: "laneDriftKernel",
		fieldMap: map[string]string{"res": "out"},
		methods: []methodPair{
			{"Produce", "Produce", modeMirror},
			{"Absorb", "Absorb", modeMirror},
			{"Local", "Local", modeMirror},
		},
	},
	{
		pkgSuffix: "/lanefix",
		single:    "okKernel", lane: "laneOkKernel",
		fieldMap: map[string]string{"res": "out"},
		methods: []methodPair{
			{"Absorb", "Absorb", modeMirror},
		},
	},
	{
		pkgSuffix: "/lanefix",
		single:    "cmpKernel", lane: "laneCmpKernel",
		methods: []methodPair{
			{"Absorb", "Absorb", modeOrient},
		},
	},
}

func run(pass *driver.Pass) (any, error) {
	for _, spec := range pairs {
		if !strings.HasSuffix(pass.Pkg.Path(), spec.pkgSuffix) {
			continue
		}
		checkPair(pass, spec)
	}
	return nil, nil
}

// methodsOf collects the FuncDecls whose receiver base type is named typ.
func methodsOf(pass *driver.Pass, typ string) map[string]*ast.FuncDecl {
	out := make(map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if recvTypeName(fd.Recv.List[0].Type) == typ {
				out[fd.Name.Name] = fd
			}
		}
	}
	return out
}

// recvTypeName unwraps *T, T[E] and T[E1, E2] receiver types to T's name.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return ""
}

func checkPair(pass *driver.Pass, spec pairSpec) {
	singles := methodsOf(pass, spec.single)
	lanes := methodsOf(pass, spec.lane)
	if len(singles) == 0 || len(lanes) == 0 {
		// The registered pair has rotted away (renamed or deleted): say so
		// rather than silently ceasing to check the invariant.
		pass.Reportf(pass.Files[0].Pos(),
			"registered kernel pair %s/%s not found in %s; update the laneparity registry so the lane mirror stays machine-checked",
			spec.single, spec.lane, pass.Pkg.Path())
		return
	}
	for _, mp := range spec.methods {
		sm, lm := singles[mp.single], lanes[mp.lane]
		if sm == nil || lm == nil {
			pos := pass.Files[0].Pos()
			if lm != nil {
				pos = lm.Pos()
			} else if sm != nil {
				pos = sm.Pos()
			}
			pass.Reportf(pos, "kernel pair %s/%s: method %s/%s missing; update the laneparity registry",
				spec.single, spec.lane, mp.single, mp.lane)
			continue
		}
		sn := normalize(pass, sm, nil)
		ln := normalize(pass, lm, spec.fieldMap)
		label := fmt.Sprintf("lane kernel %s.%s drifts from %s.%s", spec.lane, mp.lane, spec.single, mp.single)
		switch mp.mode {
		case modeMirror:
			compareEffects(pass, label, lm.Pos(), sn, ln)
			compareReturns(pass, label, lm.Pos(), sn, ln, false)
		case modeRoles:
			compareEffects(pass, label, lm.Pos(), sn, ln)
			compareReturns(pass, label, lm.Pos(), sn, ln, true)
		case modeOrient:
			checkOrientation(pass, spec.single+"."+mp.single, sm.Pos(), sn)
			checkOrientation(pass, spec.lane+"."+mp.lane, lm.Pos(), ln)
		}
	}
}

// ---------------------------------------------------------------------------
// Comparison

// compareEffects diffs the guarded effect sequences.
func compareEffects(pass *driver.Pass, label string, lanePos token.Pos, sn, ln *normBody) {
	for i := 0; i < len(sn.effects) && i < len(ln.effects); i++ {
		se, le := sn.effects[i], ln.effects[i]
		if se.text != le.text {
			pass.Reportf(le.pos, "%s: lane mirrors %q where the single-lane kernel has %q", label, le.text, se.text)
			return
		}
		if guardKey(se.guards) != guardKey(le.guards) {
			pass.Reportf(le.pos, "%s: %q runs under guards [%s] in the lane kernel but [%s] in the single-lane kernel",
				label, le.text, guardKey(le.guards), guardKey(se.guards))
			return
		}
	}
	if len(sn.effects) != len(ln.effects) {
		pass.Reportf(lanePos, "%s: %d mirrored statements in the lane kernel, %d in the single-lane kernel",
			label, len(ln.effects), len(sn.effects))
	}
}

// compareReturns checks the guard → (role, payload) maps. Arms present on one
// side only must agree with the other side's default arm (the lane kernel may
// merge single-lane arms whose payloads coincide). With rolesOnly, payloads
// are ignored and guard stacks must match exactly, in sequence.
func compareReturns(pass *driver.Pass, label string, lanePos token.Pos, sn, ln *normBody, rolesOnly bool) {
	if rolesOnly {
		n := len(sn.rets)
		if len(ln.rets) < n {
			n = len(ln.rets)
		}
		for i := 0; i < n; i++ {
			sr, lr := sn.rets[i], ln.rets[i]
			if sr.role != lr.role || guardKey(sr.guards) != guardKey(lr.guards) {
				pass.Reportf(lr.pos, "%s: role %s under guards [%s] in the lane kernel, %s under [%s] in the single-lane kernel",
					label, lr.role, guardKey(lr.guards), sr.role, guardKey(sr.guards))
				return
			}
		}
		if len(sn.rets) != len(ln.rets) {
			pass.Reportf(lanePos, "%s: %d role returns in the lane kernel, %d in the single-lane kernel",
				label, len(ln.rets), len(sn.rets))
		}
		return
	}
	if len(sn.rets) == 0 && len(ln.rets) == 0 {
		return
	}
	sd, ld := defaultRet(sn.rets), defaultRet(ln.rets)
	if (sd == nil) != (ld == nil) {
		pass.Reportf(lanePos, "%s: one side has a default payload arm and the other does not", label)
		return
	}
	if sd != nil && ld != nil && (sd.role != ld.role || sd.val != ld.val) {
		pass.Reportf(ld.pos, "%s: default payload is (%s, %s) in the lane kernel, (%s, %s) in the single-lane kernel",
			label, ld.role, ld.val, sd.role, sd.val)
		return
	}
	check := func(a, b []retInfo, bDefault *retInfo, aSide string) bool {
		for i := range a {
			r := &a[i]
			if r.guard == "ELSE" {
				continue
			}
			if o := findRet(b, r.guard); o != nil {
				if o.role != r.role || o.val != r.val {
					pass.Reportf(r.pos, "%s: payload under %s is (%s, %s) in the %s kernel but (%s, %s) on the other side",
						label, r.guard, r.role, r.val, aSide, o.role, o.val)
					return false
				}
			} else if bDefault == nil || r.role != bDefault.role || r.val != bDefault.val {
				pass.Reportf(r.pos, "%s: payload arm %s -> (%s, %s) in the %s kernel has no counterpart and differs from the other side's default",
					label, r.guard, r.role, r.val, aSide)
				return false
			}
		}
		return true
	}
	if !check(ln.rets, sn.rets, sd, "lane") {
		return
	}
	check(sn.rets, ln.rets, ld, "single-lane")
}

func defaultRet(rets []retInfo) *retInfo {
	for i := range rets {
		if rets[i].guard == "ELSE" {
			return &rets[i]
		}
	}
	return nil
}

func findRet(rets []retInfo, guard string) *retInfo {
	for i := range rets {
		if rets[i].guard == guard {
			return &rets[i]
		}
	}
	return nil
}

// checkOrientation verifies every keepMinAt-guarded compare keeps the
// minimum on the keep-min branch and the maximum on the keep-max branch.
func checkOrientation(pass *driver.Pass, name string, pos token.Pos, nb *normBody) {
	sites := 0
	for _, e := range nb.effects {
		if e.text != "R.key = V" {
			continue
		}
		var km, cmp *guardInfo
		for i := range e.guards {
			g := &e.guards[i]
			if strings.Contains(g.text, "keepMinAt(") {
				km = g
			} else if strings.HasPrefix(g.text, "R.less(") {
				cmp = g
			}
		}
		if km == nil || cmp == nil || !cmp.positive {
			continue
		}
		sites++
		want := "R.less(V, R.key)" // keep-min branch: replace when the partner's key is smaller
		if !km.positive {
			want = "R.less(R.key, V)" // keep-max branch: replace when the local key is smaller
		}
		if cmp.text != want {
			branch := "keep-min"
			if !km.positive {
				branch = "keep-max"
			}
			pass.Reportf(e.pos, "%s: compare-exchange orientation drift: the %s branch replaces the key under %s, want %s",
				name, branch, cmp.text, want)
		}
	}
	if sites == 0 {
		pass.Reportf(pos, "%s: no keepMinAt-guarded compare-exchange found; the sort kernel shape changed — update the laneparity registry", name)
	}
}

// guardKey joins a guard stack into its comparison key. Negation is already
// folded into each guard's text by condGuards (flipped comparison operator,
// or a !(...) wrapper), so the texts alone identify the branch.
func guardKey(gs []guardInfo) string {
	parts := make([]string, len(gs))
	for i, g := range gs {
		parts[i] = g.text
	}
	return strings.Join(parts, " && ")
}
