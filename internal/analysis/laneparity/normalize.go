package laneparity

// This file is the normalization engine: it lowers a kernel method body into
// a canonical sequence of guarded effects and returns, erasing exactly the
// differences lane widening introduces (see the package comment). The
// printer is deliberately fully parenthesized so textual equality is
// structural equality.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dualcube/internal/analysis/driver"
)

// guardInfo is one condition on the path to an effect: its canonical text
// and whether the path takes its then (positive) or else branch.
type guardInfo struct {
	text     string
	positive bool
}

// effect is one canonical mutating statement (assignment, Ops call, other
// call) under its guard stack.
type effect struct {
	guards []guardInfo
	text   string
	pos    token.Pos
}

// retInfo is one (role, payload) return. guard is the innermost positive
// guard ("ELSE" when the path is all negations), used by the merged payload
// comparison; guards is the full stack, used by the roles comparison.
type retInfo struct {
	guard  string
	guards []guardInfo
	role   string
	val    string
	pos    token.Pos
}

// stagedCopy records copy(ROW, X): a payload staged for the following
// return of ROW.
type stagedCopy struct {
	guard  string
	guards []guardInfo
	val    string
	pos    token.Pos
}

type normBody struct {
	effects []effect
	rets    []retInfo
	staged  []stagedCopy
}

// normCtx carries one normalization run.
type normCtx struct {
	pass     *driver.Pass
	fieldMap map[string]string
	out      *normBody
}

// env maps local objects (receiver, params, := aliases) to canonical text.
type env map[types.Object]string

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// normalize lowers fd's body. fieldMap renames receiver fields (lane side).
func normalize(pass *driver.Pass, fd *ast.FuncDecl, fieldMap map[string]string) *normBody {
	nc := &normCtx{pass: pass, fieldMap: fieldMap, out: &normBody{}}
	ev := make(env)
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if obj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			ev[obj] = "R"
		}
	}
	// Positional param mapping: [dc,] step, u [, v]. The DirectCtx param is
	// recognized by type so role ladders without it (role(step, u)) line up.
	idx := 0
	names := []string{"STEP", "U", "V"}
	for _, field := range fd.Type.Params.List {
		isCtx := false
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok {
			if _, isPtr := tv.Type.(*types.Pointer); isPtr && driver.IsNamed(tv.Type, "internal/machine", "DirectCtx") {
				isCtx = true
			}
		}
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if isCtx {
				ev[obj] = "DC"
				continue
			}
			if idx < len(names) {
				ev[obj] = names[idx]
				idx++
			}
		}
	}
	if fd.Body != nil {
		nc.walkStmts(fd.Body.List, nil, ev)
	}
	return nc.out
}

// ---------------------------------------------------------------------------
// Statement walking

func (nc *normCtx) walkStmts(stmts []ast.Stmt, guards []guardInfo, ev env) {
	for i, s := range stmts {
		switch st := s.(type) {
		case *ast.ReturnStmt:
			if len(st.Results) == 0 {
				return // bare return: terminates this path
			}
			nc.recordReturn(st, guards, ev)
			return // anything after a return in this list is dead
		case *ast.IfStmt:
			// Guard-only early return: `if cond { [stmts;] return }` with no
			// else inverts into a guard over the remaining statements.
			if st.Else == nil && endsWithBareReturn(st.Body) {
				ev2 := ev.clone()
				pos, neg := nc.guardPair(st, ev2)
				body := st.Body.List[:len(st.Body.List)-1]
				nc.walkStmts(body, append(cloneGuards(guards), pos), ev2)
				nc.walkStmts(stmts[i+1:], append(cloneGuards(guards), neg), ev2.clone())
				return
			}
			nc.walkIf(st, guards, ev)
		case *ast.SwitchStmt:
			nc.walkSwitch(st, guards, ev)
		case *ast.AssignStmt:
			nc.walkAssign(st, guards, ev)
		case *ast.IncDecStmt:
			op := "+ 1"
			if st.Tok == token.DEC {
				op = "- 1"
			}
			t := nc.print(st.X, ev)
			nc.emit(guards, t+" = ("+t+" "+op+")", st.Pos())
		case *ast.ExprStmt:
			nc.walkCall(st.X, guards, ev)
		case *ast.ForStmt:
			if isLaneLoop(st) {
				ev2 := ev.clone()
				nc.walkStmts(st.Body.List, guards, ev2)
				break
			}
			// Non-lane loops are kept transparently: the body's effects must
			// still mirror (largeKernel-style chunk loops are not paired).
			ev2 := ev.clone()
			if st.Init != nil {
				if as, ok := st.Init.(*ast.AssignStmt); ok {
					nc.walkAssign(as, guards, ev2)
				}
			}
			nc.walkStmts(st.Body.List, guards, ev2)
		case *ast.RangeStmt:
			// Lane loop over a state row: `for l, kv := range row`. kv
			// aliases row[l], which erases to the row itself.
			ev2 := ev.clone()
			rowText := nc.print(st.X, ev2)
			if st.Value != nil {
				if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
					if obj := nc.pass.TypesInfo.Defs[id]; obj != nil {
						ev2[obj] = rowText
					}
				}
			}
			nc.walkStmts(st.Body.List, guards, ev2)
		case *ast.BlockStmt:
			nc.walkStmts(st.List, guards, ev.clone())
		case *ast.DeclStmt:
			// Local var decls without values introduce zero-value locals
			// (var send []P); print their uses by name.
		default:
			nc.emit(guards, "?unsupported-stmt", s.Pos())
		}
	}
}

func endsWithBareReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	r, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok && len(r.Results) == 0
}

// guardPair resolves an if statement's init (e.g. `if i := k - mdim - 1;`)
// into ev and returns the canonical guard for its then and else branches.
// Negation folds into the comparison operator where possible, so a lane
// kernel's inverted early return (`if class != 1 { return }`) and the
// single-lane positive guard (`if class == 1 { ... }`) print identically;
// the positive flag still records the branch polarity, which the payload
// merge (ELSE detection) and the orientation check depend on.
func (nc *normCtx) guardPair(st *ast.IfStmt, ev env) (pos, neg guardInfo) {
	if st.Init != nil {
		if as, ok := st.Init.(*ast.AssignStmt); ok {
			nc.bindAliases(as, ev)
		}
	}
	return nc.condGuards(st.Cond, ev)
}

// flipped maps each comparison operator to its negation.
var flipped = map[token.Token]string{
	token.EQL: "!=", token.NEQ: "==",
	token.LSS: ">=", token.GEQ: "<",
	token.GTR: "<=", token.LEQ: ">",
}

func (nc *normCtx) condGuards(cond ast.Expr, ev env) (pos, neg guardInfo) {
	text := nc.print(cond, ev)
	pos = guardInfo{text: text, positive: true}
	for {
		if p, ok := cond.(*ast.ParenExpr); ok {
			cond = p.X
			continue
		}
		break
	}
	switch x := cond.(type) {
	case *ast.BinaryExpr:
		if op, ok := flipped[x.Op]; ok {
			neg = guardInfo{text: "(" + nc.print(x.X, ev) + " " + op + " " + nc.print(x.Y, ev) + ")", positive: false}
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			neg = guardInfo{text: nc.print(x.X, ev), positive: false}
			return
		}
	}
	neg = guardInfo{text: "!(" + text + ")", positive: false}
	return
}

func (nc *normCtx) walkIf(st *ast.IfStmt, guards []guardInfo, ev env) {
	ev2 := ev.clone()
	pos, neg := nc.guardPair(st, ev2)
	nc.walkStmts(st.Body.List, append(cloneGuards(guards), pos), ev2.clone())
	if st.Else != nil {
		negs := append(cloneGuards(guards), neg)
		switch el := st.Else.(type) {
		case *ast.BlockStmt:
			nc.walkStmts(el.List, negs, ev2.clone())
		case *ast.IfStmt:
			nc.walkStmts([]ast.Stmt{el}, negs, ev2.clone())
		}
	}
}

func (nc *normCtx) walkSwitch(st *ast.SwitchStmt, guards []guardInfo, ev env) {
	if st.Tag != nil || st.Init != nil {
		nc.emit(guards, "?tagged-switch", st.Pos())
		return
	}
	negs := cloneGuards(guards)
	var defaultBody []ast.Stmt
	for _, cl := range st.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultBody = cc.Body
			continue
		}
		if len(cc.List) == 1 {
			// Canonicalize through condGuards so a switch arm and an if/else-if
			// chain produce identical guard stacks.
			pos, neg := nc.condGuards(cc.List[0], ev)
			nc.walkStmts(cc.Body, append(cloneGuards(negs), pos), ev.clone())
			negs = append(negs, neg)
			continue
		}
		// Multi-expression cases (case a, b:) become one OR guard.
		conds := make([]string, len(cc.List))
		for i, e := range cc.List {
			conds[i] = nc.print(e, ev)
		}
		cond := "(" + strings.Join(conds, " || ") + ")"
		nc.walkStmts(cc.Body, append(cloneGuards(negs), guardInfo{cond, true}), ev.clone())
		negs = append(negs, guardInfo{"!" + cond, false})
	}
	if defaultBody != nil {
		nc.walkStmts(defaultBody, negs, ev.clone())
	}
}

// bindAliases records `x := expr` (including tuple forms) as substitutions.
func (nc *normCtx) bindAliases(as *ast.AssignStmt, ev env) bool {
	if as.Tok != token.DEFINE {
		return false
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				return false
			}
			text := nc.print(as.Rhs[i], ev)
			if id.Name == "_" {
				continue
			}
			if obj := nc.pass.TypesInfo.Defs[id]; obj != nil {
				ev[obj] = text
			}
		}
		return true
	}
	return false
}

func (nc *normCtx) walkAssign(as *ast.AssignStmt, guards []guardInfo, ev env) {
	if as.Tok == token.DEFINE {
		if nc.bindAliases(as, ev) {
			return
		}
		nc.emit(guards, "?tuple-define", as.Pos())
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		nc.emit(guards, "?tuple-assign", as.Pos())
		return
	}
	for i := range as.Lhs {
		lhs := nc.print(as.Lhs[i], ev)
		rhs := nc.print(as.Rhs[i], ev)
		if as.Tok != token.ASSIGN {
			// Compound assignment: x op= y prints as x = (x op y).
			op := strings.TrimSuffix(as.Tok.String(), "=")
			rhs = "(" + lhs + " " + op + " " + rhs + ")"
		}
		if lhs == rhs {
			continue // self-assignment after erasure (ek.key[u] = key)
		}
		nc.emit(guards, lhs+" = "+rhs, as.Pos())
	}
}

// walkCall lowers an expression statement: Ops accounting, trace hooks,
// copy-as-assignment, payload staging.
func (nc *normCtx) walkCall(e ast.Expr, guards []guardInfo, ev env) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		nc.emit(guards, "?expr-stmt", e.Pos())
		return
	}
	fun := nc.print(call.Fun, ev)
	if fun == "R.snap" || fun == "R.snaps" {
		return // per-kernel trace hook, single-lane only by design
	}
	if fun == "copy" && len(call.Args) == 2 {
		dst := nc.print(call.Args[0], ev)
		src := nc.print(call.Args[1], ev)
		if dst == "ROW" {
			nc.out.staged = append(nc.out.staged, stagedCopy{
				guard: innermostPositive(guards), guards: cloneGuards(guards), val: src, pos: call.Pos(),
			})
			return
		}
		if dst == src {
			return
		}
		nc.emit(guards, dst+" = "+src, call.Pos())
		return
	}
	args := make([]string, len(call.Args))
	for i, a := range call.Args {
		args[i] = nc.print(a, ev)
	}
	nc.emit(guards, fun+"("+strings.Join(args, ", ")+")", call.Pos())
}

func (nc *normCtx) recordReturn(st *ast.ReturnStmt, guards []guardInfo, ev env) {
	if len(st.Results) == 1 {
		nc.out.rets = append(nc.out.rets, retInfo{
			guard: innermostPositive(guards), guards: cloneGuards(guards),
			role: nc.print(st.Results[0], ev), pos: st.Pos(),
		})
		return
	}
	if len(st.Results) != 2 {
		nc.emit(guards, "?return", st.Pos())
		return
	}
	role := nc.print(st.Results[0], ev)
	val := nc.print(st.Results[1], ev)
	if val == "ROW" {
		// The staged copies are the real payload arms.
		for _, sc := range nc.out.staged {
			nc.out.rets = append(nc.out.rets, retInfo{
				guard: sc.guard, guards: sc.guards, role: role, val: sc.val, pos: sc.pos,
			})
		}
		if len(nc.out.staged) == 0 {
			nc.out.rets = append(nc.out.rets, retInfo{
				guard: innermostPositive(guards), guards: cloneGuards(guards), role: role, val: "ROW", pos: st.Pos(),
			})
		}
		nc.out.staged = nil
		return
	}
	nc.out.rets = append(nc.out.rets, retInfo{
		guard: innermostPositive(guards), guards: cloneGuards(guards), role: role, val: val, pos: st.Pos(),
	})
}

func (nc *normCtx) emit(guards []guardInfo, text string, pos token.Pos) {
	nc.out.effects = append(nc.out.effects, effect{guards: cloneGuards(guards), text: text, pos: pos})
}

func cloneGuards(gs []guardInfo) []guardInfo {
	return append([]guardInfo(nil), gs...)
}

func innermostPositive(gs []guardInfo) string {
	for i := len(gs) - 1; i >= 0; i-- {
		if gs[i].positive {
			return gs[i].text
		}
	}
	return "ELSE"
}

// isLaneLoop matches `for l := 0; l < k; l++`.
func isLaneLoop(st *ast.ForStmt) bool {
	init, ok := st.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return false
	}
	if lit, ok := init.Rhs[0].(*ast.BasicLit); !ok || lit.Value != "0" {
		return false
	}
	cond, ok := st.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS {
		return false
	}
	post, ok := st.Post.(*ast.IncDecStmt)
	return ok && post.Tok == token.INC
}

// ---------------------------------------------------------------------------
// Expression printing

// print renders e in canonical form: receiver R, positional params, aliases
// inlined, state indexing erased, lanes.Row staging as ROW. The output is
// fully parenthesized so equal text means equal structure.
func (nc *normCtx) print(e ast.Expr, ev env) string {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := nc.pass.TypesInfo.ObjectOf(x); obj != nil {
			if t, ok := ev[obj]; ok {
				return t
			}
		}
		return x.Name
	case *ast.SelectorExpr:
		base := nc.print(x.X, ev)
		name := x.Sel.Name
		if base == "R" && nc.fieldMap != nil {
			if mapped, ok := nc.fieldMap[name]; ok {
				name = mapped
			}
		}
		return base + "." + name
	case *ast.IndexExpr:
		base := nc.print(x.X, ev)
		if erasable(base) {
			return base
		}
		return base + "[" + nc.print(x.Index, ev) + "]"
	case *ast.IndexListExpr:
		return nc.print(x.X, ev)
	case *ast.SliceExpr:
		base := nc.print(x.X, ev)
		if erasable(base) {
			return base
		}
		return base + "[...]"
	case *ast.CallExpr:
		fun := nc.print(x.Fun, ev)
		if fun == "R.lanes.Row" {
			return "ROW"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = nc.print(a, ev)
		}
		return fun + "(" + strings.Join(args, ", ") + ")"
	case *ast.BinaryExpr:
		return "(" + nc.print(x.X, ev) + " " + x.Op.String() + " " + nc.print(x.Y, ev) + ")"
	case *ast.UnaryExpr:
		return "(" + x.Op.String() + nc.print(x.X, ev) + ")"
	case *ast.ParenExpr:
		return nc.print(x.X, ev)
	case *ast.StarExpr:
		return "(*" + nc.print(x.X, ev) + ")"
	case *ast.BasicLit:
		return x.Value
	case *ast.CompositeLit:
		return "?composite"
	case *ast.FuncLit:
		return "?funclit"
	case *ast.TypeAssertExpr:
		return nc.print(x.X, ev) + ".(?)"
	}
	return "?expr"
}

// erasable reports whether indexing/slicing base should erase to base: all
// kernel state (receiver fields), the payload V and the staging ROW. A
// lane-widened row access (R.t[U*K:(U+1)*K][l]) and the single-lane element
// access (R.t[U]) both erase to R.t — the lane widening itself.
func erasable(base string) bool {
	return base == "V" || base == "ROW" || base == "R" || strings.HasPrefix(base, "R.")
}
