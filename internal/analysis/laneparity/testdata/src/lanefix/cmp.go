// The orientation pair: cmpKernel/laneCmpKernel exercise modeOrient. The
// single-lane side keeps the minimum on the keep-min branch and the maximum
// on the other — the lane side's keep-min branch is drifted to keep the
// maximum, which laneparity must flag as an orientation drift.
package lanefix

import "dualcube/internal/machine"

func keepMinAt(u int, ord bool) bool {
	return (u&1 == 0) == ord
}

type cmpKernel struct {
	less func(a, b int) bool
	key  []int
	ord  []bool
}

func (ck *cmpKernel) Absorb(dc *machine.DirectCtx, k, u, v int) {
	key := ck.key[u]
	if keepMinAt(u, ck.ord[u]) {
		if ck.less(v, key) {
			key = v
		}
	} else if ck.less(key, v) {
		key = v
	}
	ck.key[u] = key
}

type laneCmpKernel struct {
	less func(a, b int) bool
	k    int
	key  []int
	ord  []bool
}

func (lk *laneCmpKernel) Absorb(dc *machine.DirectCtx, step, u int, v []int) {
	for l := 0; l < lk.k; l++ {
		kv := lk.key[u*lk.k+l]
		if keepMinAt(u, lk.ord[l]) {
			if lk.less(kv, v[l]) {
				lk.key[u*lk.k+l] = v[l] // want "orientation drift"
			}
		} else if lk.less(kv, v[l]) {
			lk.key[u*lk.k+l] = v[l]
		}
	}
}
