// The drifted pair: laneDriftKernel diverges from driftKernel in three ways
// laneparity must flag — a swapped combine order in Absorb (a drift the lane
// differential tests cannot see on commutative monoids), a wrong staged
// payload in Produce, and a dropped Ops accounting call in Local.
package lanefix

import "dualcube/internal/machine"

type driftKernel struct {
	combine func(a, b int) int
	mdim    int
	in, out []int
	t, s2   []int
}

func (dk *driftKernel) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, int) {
	if k == 0 {
		dk.t[u] = dk.in[u]
	}
	if k == 2*dk.mdim+1 {
		return machine.DirectExchange, dk.s2[u]
	}
	return machine.DirectExchange, dk.t[u]
}

func (dk *driftKernel) Absorb(dc *machine.DirectCtx, k, u, v int) {
	if u&(1<<k) != 0 {
		dk.out[u] = dk.combine(v, dk.out[u])
	}
	dk.t[u] = dk.combine(dk.t[u], v)
}

func (dk *driftKernel) Local(dc *machine.DirectCtx, k, u int) {
	dk.out[u] = dk.combine(dk.t[u], dk.out[u])
	dc.Ops(1)
}

type laneDriftKernel struct {
	combine func(a, b int) int
	mdim, k int
	lanes   *machine.Lanes[int]
	in      []int
	res     [][]int
	t, s2   []int
}

func (lk *laneDriftKernel) Produce(dc *machine.DirectCtx, step, u int) (machine.DirectRole, []int) {
	if step == 0 {
		copy(lk.t[u*lk.k:(u+1)*lk.k], lk.in[u*lk.k:(u+1)*lk.k])
	}
	row := lk.lanes.Row(step, u)[:lk.k]
	if step == 2*lk.mdim+1 {
		copy(row, lk.t[u*lk.k:(u+1)*lk.k]) // want "payload under"
	} else {
		copy(row, lk.t[u*lk.k:(u+1)*lk.k])
	}
	return machine.DirectExchange, row
}

func (lk *laneDriftKernel) Absorb(dc *machine.DirectCtx, step, u int, v []int) {
	if u&(1<<step) != 0 {
		for l := 0; l < lk.k; l++ {
			lk.res[u][l] = lk.combine(lk.res[u][l], v[l]) // want "lane mirrors"
		}
	}
	t := lk.t[u*lk.k : (u+1)*lk.k]
	for l := 0; l < lk.k; l++ {
		t[l] = lk.combine(t[l], v[l])
	}
}

func (lk *laneDriftKernel) Local(dc *machine.DirectCtx, step, u int) { // want "mirrored statements"
	t := lk.t[u*lk.k : (u+1)*lk.k]
	for l := 0; l < lk.k; l++ {
		lk.res[u][l] = lk.combine(t[l], lk.res[u][l])
	}
}
