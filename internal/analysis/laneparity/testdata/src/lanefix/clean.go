// Package lanefix is the laneparity golden fixture: miniature kernel sibling
// pairs registered in the analyzer's pairs table under the "/lanefix" suffix.
// This file is the clean pair — a faithful lane mirror that must produce no
// diagnostics even though the two sides differ in exactly the ways
// normalization is meant to erase: parameter names, := aliases, node-major
// vs element-major indexing, lanes.Row payload staging, per-lane loops,
// copy-as-assignment, trace hooks, and an inverted early-return guard.
package lanefix

import "dualcube/internal/machine"

type miniKernel struct {
	combine func(a, b int) int
	mdim    int
	in, out []int
	t, s2   []int
}

func (mk *miniKernel) snap(step, u, v int) {}

func (mk *miniKernel) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, int) {
	if k == 0 {
		mk.t[u] = mk.in[u]
	}
	mk.snap(k, u, mk.t[u])
	if k == 2*mk.mdim+1 {
		return machine.DirectExchange, mk.s2[u]
	}
	return machine.DirectExchange, mk.t[u]
}

func (mk *miniKernel) Absorb(dc *machine.DirectCtx, k, u, v int) {
	switch {
	case k < mk.mdim:
		if u&(1<<k) != 0 {
			mk.out[u] = mk.combine(v, mk.out[u])
		}
		mk.t[u] = mk.combine(mk.t[u], v)
		dc.Ops(2)
	case k == mk.mdim:
		mk.t[u] = v
	default:
		mk.out[u] = mk.combine(v, mk.out[u])
		dc.Ops(1)
	}
}

func (mk *miniKernel) Local(dc *machine.DirectCtx, k, u int) {
	if u&1 == 1 {
		mk.out[u] = mk.combine(mk.t[u], mk.out[u])
		dc.Ops(1)
	}
}

// laneMiniKernel is the k-lane widening of miniKernel: node-major flat rows
// for t/s2/in, per-node result vectors in res (the registry's fieldMap binds
// res to the single-lane out), and payload staging through machine.Lanes.
type laneMiniKernel struct {
	combine func(a, b int) int
	mdim, k int
	lanes   *machine.Lanes[int]
	in      []int
	res     [][]int
	t, s2   []int
}

func (lk *laneMiniKernel) Produce(dc *machine.DirectCtx, step, u int) (machine.DirectRole, []int) {
	if step == 0 {
		copy(lk.t[u*lk.k:(u+1)*lk.k], lk.in[u*lk.k:(u+1)*lk.k])
	}
	row := lk.lanes.Row(step, u)[:lk.k]
	if step == 2*lk.mdim+1 {
		copy(row, lk.s2[u*lk.k:(u+1)*lk.k])
	} else {
		copy(row, lk.t[u*lk.k:(u+1)*lk.k])
	}
	return machine.DirectExchange, row
}

func (lk *laneMiniKernel) Absorb(dc *machine.DirectCtx, step, u int, v []int) {
	t := lk.t[u*lk.k : (u+1)*lk.k]
	switch {
	case step < lk.mdim:
		if u&(1<<step) != 0 {
			for l := 0; l < lk.k; l++ {
				lk.res[u][l] = lk.combine(v[l], lk.res[u][l])
			}
		}
		for l := 0; l < lk.k; l++ {
			t[l] = lk.combine(t[l], v[l])
		}
		dc.Ops(2)
	case step == lk.mdim:
		copy(t, v)
	default:
		for l := 0; l < lk.k; l++ {
			lk.res[u][l] = lk.combine(v[l], lk.res[u][l])
		}
		dc.Ops(1)
	}
}

func (lk *laneMiniKernel) Local(dc *machine.DirectCtx, step, u int) {
	if u&1 != 1 {
		return
	}
	t := lk.t[u*lk.k : (u+1)*lk.k]
	for l := 0; l < lk.k; l++ {
		lk.res[u][l] = lk.combine(t[l], lk.res[u][l])
	}
	dc.Ops(1)
}
