// The suppressed pair: laneOkKernel carries a justified divergence (swapped
// combine order) annotated with //dcvet:allow laneparity, so the analyzer
// must stay silent — no want comments in this file.
package lanefix

import "dualcube/internal/machine"

type okKernel struct {
	combine func(a, b int) int
	out     []int
}

func (ok *okKernel) Absorb(dc *machine.DirectCtx, k, u, v int) {
	ok.out[u] = ok.combine(v, ok.out[u])
	dc.Ops(1)
}

type laneOkKernel struct {
	combine func(a, b int) int
	k       int
	res     [][]int
}

func (lk *laneOkKernel) Absorb(dc *machine.DirectCtx, step, u int, v []int) {
	for l := 0; l < lk.k; l++ {
		lk.res[u][l] = lk.combine(lk.res[u][l], v[l]) //dcvet:allow laneparity -- fixture: combine is commutative here, the order swap is deliberate
	}
	dc.Ops(1)
}
