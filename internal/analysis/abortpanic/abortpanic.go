// Package abortpanic enforces the error discipline around panics. The
// simulator has exactly one sanctioned panic path: internal/machine's
// abortPanic protocol, where Ctx.failf records the failure on the engine and
// panics an abortPanic value that the scheduler recovers into Run's returned
// error. Any other panic in library code either crashes the process from a
// node coroutine (bypassing the engine's recovery and watchdog) or turns a
// validatable input problem into an unrecoverable crash for the caller —
// conditions that must instead surface as returned errors in the repository's
// unified validation wording.
//
// Two escapes remain legal without annotation:
//
//   - panics of the machine package's abortPanic type (the protocol itself);
//   - panics inside Must* functions, the documented panicking wrappers over
//     error-returning constructors.
//
// Anything else needs an explicit "//dcvet:allow abortpanic -- reason"
// directive; the repository reserves those for API-misuse guards (e.g.
// Engine.Release called twice) where no error channel exists by design.
package abortpanic

import (
	"go/ast"
	"go/types"
	"strings"

	"dualcube/internal/analysis/driver"
)

// Analyzer is the abortpanic checker.
var Analyzer = &driver.Analyzer{
	Name: "abortpanic",
	Doc: "report raw panics outside the machine abortPanic protocol and Must* " +
		"wrappers; library code must return errors",
	Run: run,
}

func run(pass *driver.Pass) (any, error) {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // tests may panic freely
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Must") {
				continue // documented panicking wrapper
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *driver.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "panic" {
			return true
		}
		if driver.IsNamed(pass.TypesInfo.TypeOf(call.Args[0]), "internal/machine", "abortPanic") {
			return true // the sanctioned protocol
		}
		pass.Reportf(call.Pos(), "raw panic outside the abortPanic protocol; return an error (or route through Ctx.failf inside node programs)")
		return true
	})
}
