package abortpanic_test

import (
	"path/filepath"
	"testing"

	"dualcube/internal/analysis/abortpanic"
	"dualcube/internal/analysis/analysistest"
)

func TestAbortPanic(t *testing.T) {
	analysistest.Run(t, abortpanic.Analyzer, filepath.Join("testdata", "src", "abortpanic"))
}
