// Fixture for the abortpanic analyzer: raw panics in library code are
// rejected; Must* wrappers and annotated API-misuse guards are the escapes.
// (The third escape — panicking a machine.abortPanic value — is unexported
// and therefore only exercisable inside internal/machine itself, where the
// repository-wide dcvet run covers it.)
package fixture

import "fmt"

func badValidate(n int) int {
	if n < 0 {
		panic("negative order") // want "raw panic outside the abortPanic protocol"
	}
	return n
}

func badWrapped(err error) {
	if err != nil {
		panic(fmt.Errorf("wrapped: %w", err)) // want "raw panic outside the abortPanic protocol"
	}
}

func goodValidate(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("fixture: order must be non-negative, got %d", n)
	}
	return n, nil
}

// MustValidate is a documented panicking wrapper: legal without annotation.
func MustValidate(n int) int {
	v, err := goodValidate(n)
	if err != nil {
		panic(err)
	}
	return v
}

type handle struct{ released bool }

// close is an API-misuse guard with no error channel by design; the
// annotation keeps it legal and records why.
func (h *handle) close() {
	if h.released {
		//dcvet:allow abortpanic -- double-Release is a caller bug with no error path
		panic("fixture: handle released twice")
	}
	h.released = true
}
