package nodebody_test

import (
	"path/filepath"
	"testing"

	"dualcube/internal/analysis/analysistest"
	"dualcube/internal/analysis/nodebody"
)

func TestNodeBody(t *testing.T) {
	analysistest.Run(t, nodebody.Analyzer, filepath.Join("testdata", "src", "nodebody"))
}
