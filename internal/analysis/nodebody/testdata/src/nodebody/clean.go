package fixture

import (
	"time"

	"dualcube/internal/machine"
)

// A proper node program: communicates through Ctx primitives only.
func cleanProgram(c *machine.Ctx[int]) {
	v := c.Exchange(c.ID()^1, c.ID())
	c.Ops(1)
	c.Send(c.ID()^1, v)
	c.Idle()
}

// Functions without a Ctx parameter are outside the discipline: the harness
// around the engine may use goroutines, channels and timers freely.
func cleanHarness(run func(c *machine.Ctx[int])) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(time.Millisecond)
	}()
	<-done
}

// Using the time package for types (not calls) in a node body is fine.
func cleanTypeUse(c *machine.Ctx[int], budget time.Duration) time.Duration {
	c.Idle()
	return budget
}
