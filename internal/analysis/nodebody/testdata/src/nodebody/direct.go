package fixture

import (
	"time"

	"dualcube/internal/machine"
)

// A direct-executor kernel body (takes *machine.DirectCtx) is not a node
// program: RunDirect drives it from host worker goroutines, so host-side
// concurrency and timing are legitimate there and must not be reported.
type directKernel struct {
	state []int
}

func (k *directKernel) Produce(dc *machine.DirectCtx, step, u int) (machine.DirectRole, int) {
	done := make(chan struct{})
	go func() {
		k.state[u]++
		close(done)
	}()
	<-done
	return machine.DirectExchange, k.state[u]
}

func (k *directKernel) Absorb(dc *machine.DirectCtx, step, u int, v int) {
	deadline := time.Now().Add(time.Millisecond)
	_ = deadline
	k.state[u] += v
	dc.Ops(1)
}

func (k *directKernel) Local(dc *machine.DirectCtx, step, u int) {
	select {
	default:
	}
}

// A compare-exchange kernel in the shape of the sort family: Absorb decides
// which key to keep from a per-step direction plan and records the round
// through the context. Branchy per-node state machines like this are the
// direct executor's idiom and must stay exempt.
type exchangeKernel struct {
	less  func(a, b int) bool
	keys  []int
	plan  []struct{ dim, dirBit int8 }
	snaps [][]int
}

func (ek *exchangeKernel) Produce(dc *machine.DirectCtx, step, u int) (machine.DirectRole, int) {
	return machine.DirectExchange, ek.keys[u]
}

func (ek *exchangeKernel) Absorb(dc *machine.DirectCtx, step, u int, v int) {
	meta := ek.plan[step]
	keepMin := u>>meta.dirBit&1 == 0
	dc.Ops(1)
	key := ek.keys[u]
	if keepMin {
		if ek.less(v, key) {
			key = v
		}
	} else if ek.less(key, v) {
		key = v
	}
	ek.keys[u] = key
	if ek.snaps != nil {
		ek.snaps[step][u] = key
	}
}

func (ek *exchangeKernel) Local(dc *machine.DirectCtx, step, u int) {}

// A free function with a DirectCtx param is a kernel helper, equally exempt.
func directHelper(dc *machine.DirectCtx, scratch chan int) {
	scratch <- 1
	<-scratch
}

// But a node-program closure NESTED inside a kernel body is still a node
// program: the adapter may hand it to an engine, where the discipline binds.
func directWithNestedProgram(dc *machine.DirectCtx) func(c *machine.Ctx[int]) {
	return func(c *machine.Ctx[int]) {
		go func() {}() // want "spawns a goroutine"
	}
}
