package fixture

import (
	"time"

	"dualcube/internal/machine"
)

// A direct-executor kernel body (takes *machine.DirectCtx) is not a node
// program: RunDirect drives it from host worker goroutines, so host-side
// concurrency and timing are legitimate there and must not be reported.
type directKernel struct {
	state []int
}

func (k *directKernel) Produce(dc *machine.DirectCtx, step, u int) (machine.DirectRole, int) {
	done := make(chan struct{})
	go func() {
		k.state[u]++
		close(done)
	}()
	<-done
	return machine.DirectExchange, k.state[u]
}

func (k *directKernel) Absorb(dc *machine.DirectCtx, step, u int, v int) {
	deadline := time.Now().Add(time.Millisecond)
	_ = deadline
	k.state[u] += v
	dc.Ops(1)
}

func (k *directKernel) Local(dc *machine.DirectCtx, step, u int) {
	select {
	default:
	}
}

// A free function with a DirectCtx param is a kernel helper, equally exempt.
func directHelper(dc *machine.DirectCtx, scratch chan int) {
	scratch <- 1
	<-scratch
}

// But a node-program closure NESTED inside a kernel body is still a node
// program: the adapter may hand it to an engine, where the discipline binds.
func directWithNestedProgram(dc *machine.DirectCtx) func(c *machine.Ctx[int]) {
	return func(c *machine.Ctx[int]) {
		go func() {}() // want "spawns a goroutine"
	}
}
