// Fixture for the nodebody analyzer: node programs (functions taking a
// *machine.Ctx) must not spawn goroutines, consult the wall clock, or touch
// raw channels.
package fixture

import (
	"time"

	"dualcube/internal/machine"
)

func badGoroutine(c *machine.Ctx[int]) {
	go func() { // want "spawns a goroutine"
		c.Idle()
	}()
}

func badTime(c *machine.Ctx[int]) {
	time.Sleep(time.Millisecond) // want "calls time.Sleep"
	_ = time.Now()               // want "calls time.Now"
	c.Idle()
}

func badChannels(c *machine.Ctx[int], ch chan int) {
	done := make(chan struct{}) // want "makes a raw channel"
	ch <- c.ID()                // want "sends on a raw channel"
	<-ch                        // want "receives from a raw channel"
	select {                    // want "uses select"
	default:
	}
	close(done) // want "closes a raw channel"
}

// Violations inside a closure defined in a node body are still violations:
// the closure runs on the node's coroutine.
func badNested(c *machine.Ctx[int]) {
	helper := func() {
		time.Sleep(time.Second) // want "calls time.Sleep"
	}
	helper()
}

// A generic node program is a node program.
func badGeneric[T any](c *machine.Ctx[T]) {
	go func() {}() // want "spawns a goroutine"
}
