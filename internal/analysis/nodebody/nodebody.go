// Package nodebody checks the SPMD discipline of node programs: any function
// taking a *machine.Ctx parameter runs on a simulated node under the stepped
// scheduler, where every node must advance the global clock in lockstep
// through Ctx primitives alone. Spawning a goroutine, sleeping or reading the
// wall clock, or touching raw channels from a node body either deadlocks the
// W-party sense barrier (a parked coroutine the barrier never hears from) or
// skews the cycle accounting the paper's cost model depends on.
//
// Direct-executor kernel bodies are NOT node programs: a function taking a
// *machine.DirectCtx is driven by RunDirect from host worker goroutines (or
// by the KernelProgram adapter, whose own closure is the node program), so
// the lockstep discipline does not apply to it and the checker stays silent.
package nodebody

import (
	"go/ast"
	"go/token"
	"go/types"

	"dualcube/internal/analysis/driver"
)

// Analyzer is the nodebody checker.
var Analyzer = &driver.Analyzer{
	Name: "nodebody",
	Doc: "report goroutine spawns, time package calls and raw channel operations " +
		"inside functions taking a *machine.Ctx (node programs must drive the " +
		"clock through Ctx primitives only)",
	Run: run,
}

func run(pass *driver.Pass) (any, error) {
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body != nil && takesCtx(pass, ft) && !takesDirectCtx(pass, ft) {
				checkBody(pass, body, reported)
			}
			return true
		})
	}
	return nil, nil
}

// takesCtx reports whether the function type has a *machine.Ctx[...] param.
func takesCtx(pass *driver.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr && driver.IsNamed(tv.Type, "internal/machine", "Ctx") {
			return true
		}
	}
	return false
}

// takesDirectCtx reports whether the function type has a *machine.DirectCtx
// param — the signature of a direct-executor kernel body (Produce, Absorb,
// Local), which runs on host goroutines, not on a scheduler-owned coroutine.
func takesDirectCtx(pass *driver.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr && driver.IsNamed(tv.Type, "internal/machine", "DirectCtx") {
			return true
		}
	}
	return false
}

// checkBody walks one node body, nested closures included — a closure defined
// inside a node program executes on the node's coroutine too.
func checkBody(pass *driver.Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			report(x.Pos(), "node body spawns a goroutine; node programs run on scheduler-owned coroutines and must not create concurrency")
		case *ast.SelectStmt:
			report(x.Pos(), "node body uses select; communicate through Ctx primitives, not raw channels")
		case *ast.SendStmt:
			report(x.Pos(), "node body sends on a raw channel; use Ctx.Send/Exchange so the cycle is accounted and the barrier stays in lockstep")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				report(x.Pos(), "node body receives from a raw channel; use Ctx.Recv/Exchange so the cycle is accounted and the barrier stays in lockstep")
			}
		case *ast.CallExpr:
			checkCall(pass, x, report)
		}
		return true
	})
}

// checkCall flags time package calls and channel builtins.
func checkCall(pass *driver.Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[fun]
		if b, ok := obj.(*types.Builtin); ok {
			switch b.Name() {
			case "close":
				if len(call.Args) == 1 {
					if t := pass.TypesInfo.TypeOf(call.Args[0]); t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							report(call.Pos(), "node body closes a raw channel; node programs must not manage channels")
						}
					}
				}
			case "make":
				if t := pass.TypesInfo.TypeOf(call); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						report(call.Pos(), "node body makes a raw channel; node programs must not manage channels")
					}
				}
			}
		}
	case *ast.SelectorExpr:
		if path, name, ok := driver.PkgFuncCall(pass.TypesInfo, call); ok && path == "time" {
			report(call.Pos(), "node body calls time.%s; simulated time is the engine's clock, and wall-clock calls desynchronize or stall the sense barrier", name)
		}
	}
}
