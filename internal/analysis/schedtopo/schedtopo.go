// Package schedtopo guards the topology-genericity of the schedule builder.
// Package dcomm compiles communication schedules for every Comm family —
// dual-cube, odd hypercube, Z-cube — so it must speak only the interfaces
// (topology.Topology, topology.Comm, topology.Recursive). A reference to the
// concrete *topology.DualCube inside the builder silently re-specializes the
// pipeline to one family: the code still compiles, every dual-cube test still
// passes, and the regression surfaces only when a Z-cube or hypercube
// schedule is requested.
//
// The analyzer inspects packages whose import path ends in "/dcomm" (the
// schedule builder, and the analysistest fixture standing in for it) and
// reports every use of an object from internal/topology that exposes the
// concrete DualCube type: the type name itself (declarations, assertions,
// conversions), functions whose signature mentions *DualCube (NewDualCube,
// MustDualCube, Shared, Validated, ZCube.Skeleton, ...), and variables or
// fields typed by it. Values obtained from such objects are transitively
// covered — a *DualCube-typed local can only be introduced through one of
// the flagged forms.
package schedtopo

import (
	"go/ast"
	"go/types"
	"strings"

	"dualcube/internal/analysis/driver"
)

// Analyzer is the schedtopo checker.
var Analyzer = &driver.Analyzer{
	Name: "schedtopo",
	Doc: "report concrete topology.DualCube use inside the schedule builder (dcomm), " +
		"which must stay generic over topology.Comm",
	Run: run,
}

// builderPkg reports whether path names the schedule-builder package: the
// repository's internal/dcomm, or a fixture directory presenting itself
// under the same terminal path element.
func builderPkg(path string) bool {
	return path == "dcomm" || strings.HasSuffix(path, "/dcomm")
}

func run(pass *driver.Pass) (any, error) {
	if !builderPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || !driver.FromPath(obj, "internal/topology") {
				return true
			}
			switch x := obj.(type) {
			case *types.TypeName:
				if x.Name() == "DualCube" {
					pass.Reportf(id.Pos(), "schedule builder references concrete type topology.DualCube; dcomm must stay generic over topology.Comm")
				}
			case *types.Func:
				if mentionsDualCube(x.Type(), nil) {
					pass.Reportf(id.Pos(), "schedule builder calls topology.%s, whose signature exposes the concrete *topology.DualCube; dcomm must stay generic over topology.Comm", x.Name())
				}
			case *types.Var:
				if mentionsDualCube(x.Type(), nil) {
					pass.Reportf(id.Pos(), "schedule builder uses topology.%s of concrete type %s; dcomm must stay generic over topology.Comm", x.Name(), x.Type())
				}
			}
			return true
		})
	}
	return nil, nil
}

// mentionsDualCube reports whether t's structure reaches the named type
// topology.DualCube without crossing another named type's definition: it
// unwraps pointers, containers, tuples and signatures, so a function whose
// parameter or result is *DualCube is caught, while one trafficking only in
// the Comm interfaces is not. seen breaks recursive types.
func mentionsDualCube(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch x := types.Unalias(t).(type) {
	case *types.Named:
		return driver.IsNamed(x, "internal/topology", "DualCube")
	case *types.Pointer:
		return mentionsDualCube(x.Elem(), seen)
	case *types.Slice:
		return mentionsDualCube(x.Elem(), seen)
	case *types.Array:
		return mentionsDualCube(x.Elem(), seen)
	case *types.Map:
		return mentionsDualCube(x.Key(), seen) || mentionsDualCube(x.Elem(), seen)
	case *types.Chan:
		return mentionsDualCube(x.Elem(), seen)
	case *types.Tuple:
		for i := 0; i < x.Len(); i++ {
			if mentionsDualCube(x.At(i).Type(), seen) {
				return true
			}
		}
	case *types.Signature:
		return mentionsDualCube(x.Params(), seen) || mentionsDualCube(x.Results(), seen) ||
			(x.Recv() != nil && mentionsDualCube(x.Recv().Type(), seen))
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if mentionsDualCube(x.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
