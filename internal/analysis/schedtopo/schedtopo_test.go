package schedtopo_test

import (
	"path/filepath"
	"testing"

	"dualcube/internal/analysis/analysistest"
	"dualcube/internal/analysis/schedtopo"
)

func TestSchedTopo(t *testing.T) {
	analysistest.Run(t, schedtopo.Analyzer, filepath.Join("testdata", "src", "dcomm"))
}
