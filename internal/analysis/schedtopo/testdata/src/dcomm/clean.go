package fixture

import (
	"dualcube/internal/topology"
)

// goodGeneric speaks only the Comm interface — the shape every schedule
// builder entry point must keep. Nothing here is flagged.
func goodGeneric(c topology.Comm) []topology.NodeID {
	out := make([]topology.NodeID, 0, c.Nodes())
	for u := topology.NodeID(0); int(u) < c.Nodes(); u++ {
		out = append(out, c.CrossNeighbor(u))
	}
	return out
}

// goodLookup resolves a topology by family name, never by concrete type.
func goodLookup() (topology.Comm, error) {
	for _, fam := range topology.Families() {
		if fam == "zcube" {
			return topology.CommByID(fam, 3)
		}
	}
	return topology.CommByID("dualcube", 3)
}

// goodRecursive uses the recursive presentation through its interface.
func goodRecursive(d topology.Recursive) bool {
	return d.RecDirect(0, d.RecDims()-1)
}
