// Fixture for the schedtopo analyzer: this package's import path ends in
// /dcomm, so it stands in for the schedule builder, which must stay generic
// over topology.Comm — every way of reaching the concrete DualCube type is
// flagged.
package fixture

import (
	"dualcube/internal/topology"
)

// badDecl names the concrete type in a declaration.
func badDecl() {
	var d *topology.DualCube // want `references concrete type topology\.DualCube`
	_ = d
}

// badConstructors obtain a concrete dual-cube from the topology package; the
// constructor reference is the flagged introduction site.
func badConstructors() {
	d, err := topology.NewDualCube(3) // want `calls topology\.NewDualCube, whose signature exposes the concrete \*topology\.DualCube`
	if err != nil {
		return
	}
	_ = d.Nodes()                 // want `calls topology\.Nodes, whose signature exposes the concrete \*topology\.DualCube`
	m := topology.MustDualCube(2) // want `calls topology\.MustDualCube, whose signature exposes the concrete \*topology\.DualCube`
	_ = m
	s, _ := topology.Shared(3) // want `calls topology\.Shared, whose signature exposes the concrete \*topology\.DualCube`
	_ = s
	v, _ := topology.Validated(3, 32) // want `calls topology\.Validated, whose signature exposes the concrete \*topology\.DualCube`
	_ = v
}

// badAssert re-specializes a generic Comm by asserting the concrete type.
func badAssert(c topology.Comm) int {
	if d, ok := c.(*topology.DualCube); ok { // want `references concrete type topology\.DualCube`
		return d.Order() // want `calls topology\.Order, whose signature exposes the concrete \*topology\.DualCube`
	}
	return 0
}

// badSkeleton tunnels to the concrete skeleton through the Z-cube.
func badSkeleton(z *topology.ZCube) {
	_ = z.Skeleton() // want `calls topology\.Skeleton, whose signature exposes the concrete \*topology\.DualCube`
}
