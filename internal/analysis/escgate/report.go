package escgate

import (
	"encoding/json"
	"io"
	"sort"
)

// Report is the machine-readable escape/BCE summary emitted by
// `dcvet -escgate -json`: module-wide totals, per-function counts for every
// budget-tracked function, the serving entry points (the API surface whose
// steady-state allocation behavior the alloc-guard tests watch), and the
// files with the most escape sites — the worklist for future tightening.
type Report struct {
	GoVersion string            `json:"goVersion"`
	Totals    Counts            `json:"totals"`
	Tracked   map[string]Counts `json:"tracked"`
	Serve     map[string]Counts `json:"serve"`
	TopFiles  []FileEscapes     `json:"topEscapeFiles"`
	Failures  []string          `json:"failures"`
	Notices   []string          `json:"notices"`
}

// serveEntryPoints is the root-package serving surface covered by the
// report regardless of budget membership.
var serveEntryPoints = []string{
	"dualcube.PrefixOn",
	"dualcube.BroadcastOn",
	"dualcube.AllReduceSumOn",
	"dualcube.GatherOn",
	"dualcube.ScatterOn",
	"dualcube.AllGatherOn",
	"dualcube.AllToAllOn",
	"dualcube.PermuteOn",
}

// BuildReport assembles the report from one Collect/Attribute run.
func BuildReport(goMinor string, diags []Diag, counts map[string]*Counts, b Budget, failures, notices []string) *Report {
	r := &Report{
		GoVersion: goMinor,
		Totals:    Totals(counts),
		Tracked:   make(map[string]Counts),
		Serve:     make(map[string]Counts),
		TopFiles:  TopEscapeFiles(diags, 15),
		Failures:  failures,
		Notices:   notices,
	}
	if vb, ok := b[goMinor]; ok {
		for _, fn := range vb.Zero {
			r.Tracked[fn] = deref(counts[fn])
		}
		for fn := range vb.Budgets {
			r.Tracked[fn] = deref(counts[fn])
		}
	}
	for _, fn := range serveEntryPoints {
		r.Serve[fn] = deref(counts[fn])
	}
	return r
}

func deref(c *Counts) Counts {
	if c == nil {
		return Counts{}
	}
	return *c
}

// Write emits the report as indented JSON with deterministic key order
// (encoding/json sorts map keys).
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// TrackedNames returns the tracked function names sorted, for text output.
func (r *Report) TrackedNames() []string {
	names := make([]string, 0, len(r.Tracked))
	for fn := range r.Tracked {
		names = append(names, fn)
	}
	sort.Strings(names)
	return names
}
