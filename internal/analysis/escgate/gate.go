package escgate

import "fmt"

// Options configures a gate run.
type Options struct {
	// Update rewrites the budgeted ceilings to the measured actuals before
	// checking (zero-list violations are still reported — they cannot be
	// blessed into the budget).
	Update bool
}

// Result is one full gate evaluation.
type Result struct {
	Report   *Report
	Failures []string
	Notices  []string
	Updated  bool // budget file rewritten by -update
}

// Run executes the whole gate against the module at root: rebuild with
// diagnostics, attribute, load the budget, optionally re-baseline, check.
func Run(root, modPath string, opts Options) (*Result, error) {
	diags, err := Collect(root, modPath)
	if err != nil {
		return nil, err
	}
	ix, err := BuildIndex(root, modPath)
	if err != nil {
		return nil, fmt.Errorf("escgate: indexing sources: %v", err)
	}
	counts := Attribute(diags, ix)
	b, err := LoadBudget(BudgetPath(root))
	if err != nil {
		return nil, fmt.Errorf("escgate: loading budget: %v", err)
	}
	res := &Result{}
	minor := GoMinor()
	if opts.Update {
		if b.Update(minor, counts) {
			if err := SaveBudget(BudgetPath(root), b); err != nil {
				return nil, fmt.Errorf("escgate: writing budget: %v", err)
			}
			res.Updated = true
		}
	}
	res.Failures, res.Notices = b.Check(minor, counts, ix.Known)
	res.Report = BuildReport(minor, diags, counts, b, res.Failures, res.Notices)
	return res, nil
}
