package escgate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// FuncBudget is the diagnostic ceiling for one budgeted function.
type FuncBudget struct {
	Escapes    int `json:"escapes"`
	Bounds     int `json:"bounds"`
	LoopBounds int `json:"loopBounds"`
}

// VersionBudget is the gate for one Go minor version.
type VersionBudget struct {
	// Zero lists kernel hot-path functions that must show no heap escapes
	// and no in-loop bounds checks at all.
	Zero []string `json:"zero"`
	// Budgets caps functions that legitimately allocate (bundle setup,
	// serving entry points) at their recorded counts.
	Budgets map[string]FuncBudget `json:"budgets"`
}

// Budget is the full checked-in budget file, keyed by Go minor ("1.24").
type Budget map[string]VersionBudget

// LoadBudget reads a budget file.
func LoadBudget(path string) (Budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("escgate: parsing %s: %v", path, err)
	}
	return b, nil
}

// SaveBudget writes a budget file with stable formatting.
func SaveBudget(path string, b Budget) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Check evaluates attributed counts against the budget for goMinor. known
// guards against silent passes after renames: a zero-listed or budgeted
// function that no longer exists is a failure, not a vacuous success.
// Failures fail the gate; notices are informational (version skips,
// improvements worth re-baselining).
func (b Budget) Check(goMinor string, counts map[string]*Counts, known func(string) bool) (failures, notices []string) {
	vb, ok := b[goMinor]
	if !ok {
		return nil, []string{fmt.Sprintf(
			"no escape budget recorded for go %s; skipping gate (inspect and run dcvet -escgate -update to baseline)", goMinor)}
	}
	for _, fn := range vb.Zero {
		if !known(fn) {
			failures = append(failures, fmt.Sprintf("zero-listed function %s not found in source (renamed? update %s)", fn, budgetName))
			continue
		}
		c := counts[fn]
		if c == nil {
			continue
		}
		if c.Escapes > 0 {
			failures = append(failures, fmt.Sprintf("%s: %d heap escape(s), zero-listed kernel hot path must not allocate", fn, c.Escapes))
		}
		if c.LoopBounds > 0 {
			failures = append(failures, fmt.Sprintf("%s: %d in-loop bounds check(s), zero-listed kernel hot path must be BCE-clean", fn, c.LoopBounds))
		}
	}
	names := make([]string, 0, len(vb.Budgets))
	for fn := range vb.Budgets {
		names = append(names, fn)
	}
	sort.Strings(names)
	for _, fn := range names {
		want := vb.Budgets[fn]
		if !known(fn) {
			failures = append(failures, fmt.Sprintf("budgeted function %s not found in source (renamed? update %s)", fn, budgetName))
			continue
		}
		got := counts[fn]
		if got == nil {
			got = &Counts{}
		}
		over := func(what string, g, w int) {
			if g > w {
				failures = append(failures, fmt.Sprintf("%s: %d %s, budget is %d — new compiler-visible cost on a tracked function", fn, g, what, w))
			} else if g < w {
				notices = append(notices, fmt.Sprintf("%s: %d %s, under budget %d (dcvet -escgate -update to tighten)", fn, g, what, w))
			}
		}
		over("heap escape(s)", got.Escapes, want.Escapes)
		over("bounds check(s)", got.Bounds, want.Bounds)
		over("in-loop bounds check(s)", got.LoopBounds, want.LoopBounds)
	}
	return failures, notices
}

// Update rewrites the budgeted ceilings for goMinor to the attributed
// actuals, creating the version entry (with an empty zero list) if absent.
// The zero list itself is never touched: a zero-list violation must be
// fixed in the kernel, not blessed into the budget. Reports whether
// anything changed.
func (b Budget) Update(goMinor string, counts map[string]*Counts) bool {
	vb, ok := b[goMinor]
	if !ok {
		// Seed a new version from the newest existing entry's tracked set so
		// a toolchain bump re-baselines the same functions.
		var src string
		for v := range b {
			if v > src {
				src = v
			}
		}
		vb = VersionBudget{Budgets: make(map[string]FuncBudget)}
		if src != "" {
			vb.Zero = append(vb.Zero, b[src].Zero...)
			for fn := range b[src].Budgets {
				vb.Budgets[fn] = FuncBudget{}
			}
		}
		b[goMinor] = vb
		ok = false
	}
	changed := !ok
	for fn, old := range vb.Budgets {
		got := counts[fn]
		if got == nil {
			got = &Counts{}
		}
		now := FuncBudget{Escapes: got.Escapes, Bounds: got.Bounds, LoopBounds: got.LoopBounds}
		if now != old {
			vb.Budgets[fn] = now
			changed = true
		}
	}
	return changed
}

// budgetName is the canonical budget file location, relative to the module
// root.
const budgetName = "internal/analysis/escgate/testdata/escbudget.json"

// BudgetPath returns the budget file path under the module root.
func BudgetPath(root string) string { return root + "/" + budgetName }
