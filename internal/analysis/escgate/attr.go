package escgate

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Attribution: compiler diagnostics arrive as file:line positions; the
// budget speaks in function names. The index below maps every line of every
// non-test source file to its enclosing top-level function (closures
// attribute to the declaration that contains them) and records the line
// spans of all for/range statements so a bounds check can be classified as
// in-loop — the distinction that lets an inlined dc.Ops(1) bookkeeping
// index outside the lane loop coexist with a zero in-loop budget.

// Span is an inclusive line range.
type Span struct {
	Start, End int
}

func (s Span) contains(line int) bool { return s.Start <= line && line <= s.End }

// FuncSpan is one top-level function with its loop line spans.
type FuncSpan struct {
	Name  string // qualified: "internal/prefix.(*lanePrefixKernel).Absorb"
	Span  Span
	Loops []Span
}

// Index maps module-relative file paths to their function spans.
type Index struct {
	files map[string][]FuncSpan
	names map[string]bool
}

// BuildIndex parses every non-test .go file under root (skipping testdata
// and hidden directories) and records function and loop spans. Functions in
// the module root package are qualified with modPath itself; everything
// else with its module-relative directory.
func BuildIndex(root, modPath string) (*Index, error) {
	ix := &Index{files: make(map[string][]FuncSpan), names: make(map[string]bool)}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		pkg := modPath
		if dir := filepath.ToSlash(filepath.Dir(rel)); dir != "." {
			pkg = dir
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fs := FuncSpan{
				Name: pkg + "." + funcName(fd),
				Span: Span{fset.Position(fd.Pos()).Line, fset.Position(fd.End()).Line},
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					fs.Loops = append(fs.Loops, Span{fset.Position(n.Pos()).Line, fset.Position(n.End()).Line})
				}
				return true
			})
			ix.files[rel] = append(ix.files[rel], fs)
			ix.names[fs.Name] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// funcName renders a declaration as "(*T).M", "(T).M" or "F", with type
// parameters stripped from generic receivers.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	ptr := false
	if st, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = st.X
	}
	base := "?"
	switch x := stripIndex(t).(type) {
	case *ast.Ident:
		base = x.Name
	}
	if ptr {
		return "(*" + base + ")." + fd.Name.Name
	}
	return "(" + base + ")." + fd.Name.Name
}

func stripIndex(t ast.Expr) ast.Expr {
	for {
		switch x := t.(type) {
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		default:
			return t
		}
	}
}

// Known reports whether a qualified function name exists in the source tree
// — the rename guard for zero-listed and budgeted functions.
func (ix *Index) Known(name string) bool { return ix.names[name] }

// Counts aggregates diagnostics attributed to one function.
type Counts struct {
	Escapes    int `json:"escapes"`
	Bounds     int `json:"bounds"`
	LoopBounds int `json:"loopBounds"`
}

// Attribute buckets diagnostics by enclosing function. Diagnostics in files
// or lines the index does not cover (generated code, test-only packages)
// land under the empty key "".
func Attribute(diags []Diag, ix *Index) map[string]*Counts {
	counts := make(map[string]*Counts)
	get := func(name string) *Counts {
		c := counts[name]
		if c == nil {
			c = &Counts{}
			counts[name] = c
		}
		return c
	}
	for _, d := range diags {
		name := ""
		var span *FuncSpan
		for i := range ix.files[d.File] {
			f := &ix.files[d.File][i]
			if f.Span.contains(d.Line) {
				name, span = f.Name, f
				break
			}
		}
		c := get(name)
		switch d.Kind {
		case KindEscape:
			c.Escapes++
		case KindBounds:
			c.Bounds++
			if span != nil {
				for _, l := range span.Loops {
					if l.contains(d.Line) {
						c.LoopBounds++
						break
					}
				}
			}
		}
	}
	return counts
}

// Totals sums a count map.
func Totals(counts map[string]*Counts) Counts {
	var t Counts
	for _, c := range counts {
		t.Escapes += c.Escapes
		t.Bounds += c.Bounds
		t.LoopBounds += c.LoopBounds
	}
	return t
}

// FileEscapes counts heap escapes per file, descending — the worklist view.
type FileEscapes struct {
	File    string `json:"file"`
	Escapes int    `json:"escapes"`
}

// TopEscapeFiles returns the n files with the most heap-escape sites.
func TopEscapeFiles(diags []Diag, n int) []FileEscapes {
	per := make(map[string]int)
	for _, d := range diags {
		if d.Kind == KindEscape {
			per[d.File]++
		}
	}
	out := make([]FileEscapes, 0, len(per))
	for f, c := range per {
		out = append(out, FileEscapes{File: f, Escapes: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Escapes != out[j].Escapes {
			return out[i].Escapes > out[j].Escapes
		}
		return out[i].File < out[j].File
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
