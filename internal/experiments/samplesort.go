package experiments

import (
	"fmt"

	"dualcube/internal/samplesort"
	"dualcube/internal/seq"
	"dualcube/internal/sortnet"
)

// E17SampleSort contrasts the two sorting families on large inputs
// (future-work items 1 and 3 combined): bitonic merge-split D_sort pays
// Θ(n²) fixed communication steps with perfectly balanced loads, while
// sample sort finishes in 4n collective rounds with data-dependent
// balance. Both must produce the identical sorted sequence.
func E17SampleSort(maxN, k int) (string, error) {
	t := newTable(fmt.Sprintf("E17 — sample sort vs bitonic sort (k = %d keys/node)", k),
		"n", "keys", "bitonic comm (6n²-7n+2)", "sample-sort rounds (4n)", "speedup", "outputs agree")
	intLess := func(a, b int) bool { return a < b }
	for n := 1; n <= maxN; n++ {
		N := 1 << (2*n - 1)
		in := randInts(int64(n+61), k*N, -1<<20, 1<<20)
		bit, stB, err := sortnet.DSortLarge(n, k, in, intLess, sortnet.Ascending)
		if err != nil {
			return "", fmt.Errorf("E17 bitonic n=%d: %w", n, err)
		}
		smp, stS, err := samplesort.Sort(n, k, in, intLess)
		if err != nil {
			return "", fmt.Errorf("E17 sample n=%d: %w", n, err)
		}
		agree := "yes"
		if !seq.IsSorted(smp, intLess) || len(bit) != len(smp) {
			agree = "NO"
		} else {
			for i := range bit {
				if bit[i] != smp[i] {
					agree = "NO"
					break
				}
			}
		}
		t.row(itoa(n), itoa(k*N), itoa(stB.Cycles), itoa(stS.Cycles),
			fmt.Sprintf("%.1fx", float64(stB.Cycles)/float64(stS.Cycles)), agree)
	}
	return t.String(), nil
}
