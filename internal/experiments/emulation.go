package experiments

import (
	"fmt"
	"math/rand"

	"dualcube/internal/emulate"
	"dualcube/internal/ntt"
)

// E16Emulation exercises the recursive technique as a general-purpose
// framework (Section 7: "the algorithms that emulate these hypercube
// algorithms can be developed using the second technique"): a full
// butterfly algorithm — the number-theoretic transform — runs unchanged on
// D_n, with the emulated-vs-native communication ratio approaching the 3x
// worst case.
func E16Emulation(maxN int) (string, error) {
	t := newTable("E16 — normal-algorithm emulation: distributed NTT",
		"n", "points", "D_n comm (6n-5)", "Q_{2n-1} comm", "ratio", "transform correct", "poly-mul correct")
	for n := 1; n <= maxN; n++ {
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(int64(n + 33)))
		in := make([]uint64, N)
		for i := range in {
			in[i] = rng.Uint64() % ntt.Mod
		}
		dual, stD, err := ntt.Transform(n, in, false)
		if err != nil {
			return "", fmt.Errorf("E16 n=%d: %w", n, err)
		}
		cube, stQ, err := ntt.CubeTransform(n, in, false)
		if err != nil {
			return "", fmt.Errorf("E16 cube n=%d: %w", n, err)
		}
		okT := "yes"
		want := ntt.Sequential(in, false)
		for i := range want {
			if dual[i] != want[i] || cube[i] != want[i] {
				okT = "NO"
				break
			}
		}
		okP := "yes"
		if N >= 4 {
			la := N/2 + 1
			lb := N - la
			a := in[:la]
			b := in[la : la+lb]
			prod, _, err := ntt.PolyMul(n, a, b)
			if err != nil {
				return "", fmt.Errorf("E16 polymul n=%d: %w", n, err)
			}
			naive := make([]uint64, la+lb-1)
			for i := range a {
				for j := range b {
					naive[i+j] = (naive[i+j] + a[i]%ntt.Mod*(b[j]%ntt.Mod)) % ntt.Mod
				}
			}
			for i := range naive {
				if prod[i] != naive[i] {
					okP = "NO"
					break
				}
			}
		} else {
			okP = "-"
		}
		if stD.Cycles != emulate.CommSteps(n) {
			return "", fmt.Errorf("E16 n=%d: comm %d != %d", n, stD.Cycles, emulate.CommSteps(n))
		}
		t.row(itoa(n), itoa(N), itoa(stD.Cycles), itoa(stQ.Cycles),
			fmt.Sprintf("%.2f", float64(stD.Cycles)/float64(stQ.Cycles)), okT, okP)
	}
	return t.String(), nil
}
