package experiments

import (
	"fmt"

	"dualcube/internal/monoid"
	"dualcube/internal/prefix"
	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
)

// E14LinkLoads analyzes where the traffic of the two paper algorithms
// actually flows: total messages on cross-edges versus intra-cluster
// edges, and the hottest single link. The dual-cube has only one
// cross-edge per node (that is where its degree saving comes from), so the
// recursive-technique algorithms concentrate load there — the structural
// price behind Theorem 2's 3x factor — while the cluster-technique prefix
// spreads its two cross-edge rounds evenly.
func E14LinkLoads(maxN int) (string, error) {
	t := newTable("E14 — traffic split across link types",
		"algorithm", "n", "messages", "on cross-edges", "on cluster edges",
		"cross share", "max msgs on one link")
	for n := 2; n <= maxN; n++ {
		d, err := topology.Shared(n)
		if err != nil {
			return "", fmt.Errorf("E14 n=%d: %w", n, err)
		}
		classify := func(src, dst int) string {
			if dst == d.CrossNeighbor(src) {
				return "cross"
			}
			return "cluster"
		}
		in := randInts(int64(n+50), d.Nodes(), 0, 1<<20)

		_, stP, recP, err := prefix.DPrefixRecorded(n, in, monoid.Sum[int](), true)
		if err != nil {
			return "", fmt.Errorf("E14 prefix n=%d: %w", n, err)
		}
		splitP := recP.SplitLoads(classify)
		maxP, _ := recP.MaxLinkLoad()
		t.row("D_prefix", itoa(n), i64toa(stP.Messages), itoa(splitP["cross"]), itoa(splitP["cluster"]),
			pct(splitP["cross"], int(stP.Messages)), itoa(maxP))

		_, stS, recS, err := sortnet.DSortRecorded(n, in, func(a, b int) bool { return a < b }, sortnet.Ascending)
		if err != nil {
			return "", fmt.Errorf("E14 sort n=%d: %w", n, err)
		}
		splitS := recS.SplitLoads(classify)
		maxS, _ := recS.MaxLinkLoad()
		t.row("D_sort", itoa(n), i64toa(stS.Messages), itoa(splitS["cross"]), itoa(splitS["cluster"]),
			pct(splitS["cross"], int(stS.Messages)), itoa(maxS))
	}
	return t.String(), nil
}

// pct formats a/b as a percentage.
func pct(a, b int) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(a)/float64(b))
}
