package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"dualcube/internal/dcomm"
	"dualcube/internal/fault"
	"dualcube/internal/monoid"
	"dualcube/internal/prefix"
	"dualcube/internal/topology"
)

// FaultSweepPoint is one measurement of the E18 fault sweep: degraded
// D_prefix on D_n under a seeded plan of f permanent link faults.
type FaultSweepPoint struct {
	N             int   `json:"n"`
	Nodes         int   `json:"nodes"`
	Faults        int   `json:"faults"`
	Seed          int64 `json:"seed"`
	CommMeasured  int   `json:"comm_measured"`
	CommFaultFree int   `json:"comm_fault_free"`
	CommBound     int   `json:"comm_bound"`
	Overhead      int   `json:"overhead_cycles"`
	Detours       int   `json:"detours"`
	LongestDetour int   `json:"longest_detour_hops"`
	Messages      int64 `json:"messages"`
	DownLinks     int   `json:"down_links_directed"`
	Correct       bool  `json:"correct"`
}

// FaultSweep measures degraded D_prefix for n in [minN, maxN] and every
// f = 0..n-1 link faults, one seeded random plan per point. Each point
// verifies the prefixes against the sequential scan.
func FaultSweep(minN, maxN int, seed int64) ([]FaultSweepPoint, error) {
	var points []FaultSweepPoint
	for n := minN; n <= maxN; n++ {
		d, err := topology.Shared(n)
		if err != nil {
			return nil, fmt.Errorf("E18 n=%d: %w", n, err)
		}
		in := randInts(int64(n+300), d.Nodes(), -1000, 1000)
		for f := 0; f < n; f++ {
			planSeed := seed + int64(1000*n+f)
			plan := fault.Random(d, f, planSeed)
			got, st, err := prefix.DPrefixDegraded(n, in, monoid.Sum[int](), true, plan)
			if err != nil {
				return nil, fmt.Errorf("E18 n=%d f=%d: %w", n, f, err)
			}
			correct := true
			acc := 0
			for i, v := range in {
				acc += v
				if got[i] != acc {
					correct = false
					break
				}
			}
			base, err := dcomm.Compiled(d, dcomm.OpPrefix)
			if err != nil {
				return nil, fmt.Errorf("E18 n=%d f=%d: %w", n, f, err)
			}
			sch, err := dcomm.RewriteFT(base, fault.NewView(d, plan))
			if err != nil {
				return nil, fmt.Errorf("E18 n=%d f=%d: %w", n, f, err)
			}
			detours, longest := 0, 0
			for _, dt := range dcomm.PatternDetours(sch) {
				detours++
				if hops := len(dt.Path) - 1; hops > longest {
					longest = hops
				}
			}
			points = append(points, FaultSweepPoint{
				N:             n,
				Nodes:         d.Nodes(),
				Faults:        f,
				Seed:          planSeed,
				CommMeasured:  st.Cycles,
				CommFaultFree: prefix.MeasuredCommSteps(n),
				CommBound:     prefix.PaperCommBound(n),
				Overhead:      prefix.DegradedCommOverhead(sch),
				Detours:       detours,
				LongestDetour: longest,
				Messages:      st.Messages,
				DownLinks:     st.Faults.DownLinks,
				Correct:       correct,
			})
		}
	}
	return points, nil
}

// E18FaultSweep renders the fault sweep as the markdown table recorded in
// EXPERIMENTS.md. The "comm bound 2n+1" column is Theorem 1's fault-free
// bound — the measured overhead beyond it is the price of the f detours.
func E18FaultSweep(minN, maxN int, seed int64) (string, error) {
	points, err := FaultSweep(minN, maxN, seed)
	if err != nil {
		return "", err
	}
	t := newTable("E18 — degraded D_prefix under f link faults (seeded plans)",
		"n", "nodes", "f", "comm measured", "fault-free 2n", "bound 2n+1",
		"overhead", "detours", "longest detour", "messages", "correct")
	for _, p := range points {
		ok := "yes"
		if !p.Correct {
			ok = "NO"
		}
		t.row(itoa(p.N), itoa(p.Nodes), itoa(p.Faults), itoa(p.CommMeasured),
			itoa(p.CommFaultFree), itoa(p.CommBound), itoa(p.Overhead),
			itoa(p.Detours), itoa(p.LongestDetour)+" hops", i64toa(p.Messages), ok)
	}
	return t.String(), nil
}

// E18FaultSweepJSON renders the fault sweep as JSON lines (one point per
// line), the machine-readable shape behind dcbench -faults -json.
func E18FaultSweepJSON(minN, maxN int, seed int64) (string, error) {
	points, err := FaultSweep(minN, maxN, seed)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	for _, p := range points {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("E18 json: %w", err)
		}
	}
	return sb.String(), nil
}

// E19FaultTolerance tabulates the connectivity figures of D_n — degree n,
// link connectivity n, so n-1 link faults are always survivable
// (Zhao/Hao/Cheng) — against empirical checks: random f = n-1 plans must
// leave the network connected every time, while the adversarial f = n cut
// (all links of one node) disconnects it, showing the bound is tight.
func E19FaultTolerance(maxN, trials int, seed int64) (string, error) {
	t := newTable("E19 — fault tolerance of D_n (connectivity bounds)",
		"n", "nodes", "degree", "link connectivity", "tolerates",
		fmt.Sprintf("random f=n-1 connected (%d trials)", trials), "f=n node cut disconnects")
	for n := 1; n <= maxN; n++ {
		d, err := topology.Shared(n)
		if err != nil {
			return "", fmt.Errorf("E19 n=%d: %w", n, err)
		}
		connected := 0
		for i := 0; i < trials; i++ {
			view := fault.NewView(d, fault.Random(d, n-1, seed+int64(100*n+i)))
			if aliveReach(d, view) == d.Nodes() {
				connected++
			}
		}
		var cut []fault.Link
		for _, w := range d.Neighbors(0) {
			cut = append(cut, fault.Link{U: 0, V: w})
		}
		cutView := fault.NewView(d, &fault.Plan{Links: cut})
		cutOK := "yes"
		if aliveReach(d, cutView) == d.Nodes() {
			cutOK = "NO"
		}
		t.row(itoa(n), itoa(d.Nodes()), itoa(d.Order()), itoa(d.Order()),
			fmt.Sprintf("%d link faults", d.Order()-1),
			fmt.Sprintf("%d/%d", connected, trials), cutOK)
	}
	return t.String(), nil
}

// E20TopologyFaultTolerance tabulates, for every communication family
// (dual-cube, hypercube Q_{2n-1}, Z-cube Z_n), the connectivity figures the
// topology layer publishes — node connectivity κ, link connectivity λ, and
// the generalized 3-(edge-)connectivities κ₃/λ₃ where established — and the
// maximum provably tolerable number of link faults, λ-1. Each bound is
// checked empirically: random plans of exactly λ-1 link faults must leave
// the network connected in every trial. The source of each family's figures
// is printed below the table so a bound is never separated from its
// justification.
func E20TopologyFaultTolerance(maxN, trials int, seed int64) (string, error) {
	t := newTable("E20 — max tolerable link faults per topology (generalized connectivity)",
		"family", "name", "nodes", "degree", "κ", "λ", "κ₃", "λ₃", "tolerates",
		fmt.Sprintf("random f=λ-1 connected (%d trials)", trials))
	var sources []string
	seen := make(map[string]bool)
	for _, family := range topology.Families() {
		for n := 1; n <= maxN; n++ {
			c, err := topology.CommByID(family, n)
			if err != nil {
				return "", fmt.Errorf("E20 %s n=%d: %w", family, n, err)
			}
			conn := c.Connectivity()
			f := conn.MaxTolerableLinkFaults()
			connected := 0
			for i := 0; i < trials; i++ {
				view := fault.NewView(c, fault.Random(c, f, seed+int64(100*n+i)))
				if aliveReach(c, view) == c.Nodes() {
					connected++
				}
			}
			opt := func(v int) string {
				if v == 0 {
					return "-"
				}
				return itoa(v)
			}
			t.row(family, c.Name(), itoa(c.Nodes()), itoa(c.Degree(0)),
				itoa(conn.Node), itoa(conn.Link), opt(conn.Tree3Node), opt(conn.Tree3Link),
				fmt.Sprintf("%d link faults", f),
				fmt.Sprintf("%d/%d", connected, trials))
			if conn.Source != "" && !seen[conn.Source] {
				seen[conn.Source] = true
				sources = append(sources, fmt.Sprintf("  %s: %s", family, conn.Source))
			}
		}
	}
	s := t.String() + "sources of the connectivity figures:\n"
	for _, src := range sources {
		s += src + "\n"
	}
	return s, nil
}

// aliveReach counts the nodes reachable from node 0 over links the view
// considers alive.
func aliveReach(d topology.Topology, view *fault.View) int {
	seen := make([]bool, d.Nodes())
	seen[0] = true
	frontier := []int{0}
	count := 1
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for _, w := range d.Neighbors(u) {
				if seen[w] || view.LinkDown(u, w) {
					continue
				}
				seen[w] = true
				count++
				next = append(next, w)
			}
		}
		frontier = next
	}
	return count
}
