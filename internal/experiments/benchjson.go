package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"dualcube/internal/collective"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/prefix"
	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
)

// BenchPoint is one measured experiment configuration of the JSON bench
// mode (dcbench -json): the machine-readable counterpart of the markdown
// tables, one line per point, suitable for dashboards and CI artifacts.
type BenchPoint struct {
	Name        string `json:"name"`          // operation measured
	Topo        string `json:"topo"`          // topology family the point ran on
	N           int    `json:"n"`             // dual-cube order
	Nodes       int    `json:"nodes"`         // 2^(2n-1)
	Sched       string `json:"sched"`         // backend the point ran on
	NsPerOp     int64  `json:"ns_per_op"`     // median wall time per run
	AllocsPerOp uint64 `json:"allocs_per_op"` // steady-state heap allocations per run
	BytesPerOp  uint64 `json:"bytes_per_op"`  // steady-state heap bytes allocated per run
	Cycles      int    `json:"cycles"`        // simulated communication cycles
	Runs        int    `json:"runs"`          // timing samples behind the median
	// Skip, when set, records why this grid cell was not measured (e.g. a
	// prohibitive memory footprint); the other measures are zero. Emitting
	// the skipped cell keeps the grid's shape auditable instead of the
	// cell silently vanishing.
	Skip string `json:"skip,omitempty"`
}

// benchWorkloads is the fixed experiment grid of the JSON mode: the
// schedule-driven operations at the orders the bench-smoke CI job can
// afford, each returning its run Stats.
var benchWorkloads = []struct {
	name string
	// topos lists the topology families the workload sweeps; nil means the
	// operation runs on the dual-cube only.
	topos []string
	ns    []int
	// skip, when non-nil, returns a non-empty reason for cells the sweep
	// must not run; the sweep emits the cell with Skip set instead.
	skip func(n int) string
	run  func(topo string, n int) (machine.Stats, error)
}{
	{"prefix", topology.Families(), []int{4, 5, 6}, nil, func(topo string, n int) (machine.Stats, error) {
		c, err := topology.CommByID(topo, n)
		if err != nil {
			return machine.Stats{}, err
		}
		in := randInts(int64(n), 1<<(2*n-1), -1000, 1000)
		_, st, err := prefix.DPrefixOn(c, in, monoid.Sum[int](), true, nil)
		return st, err
	}},
	{"sort", nil, []int{3, 4, 5, 6}, nil, func(topo string, n int) (machine.Stats, error) {
		in := randInts(int64(n)+7, 1<<(2*n-1), -1000, 1000)
		_, st, err := sortnet.DSort(n, in, func(a, b int) bool { return a < b }, sortnet.Ascending, nil)
		return st, err
	}},
	{"broadcast", nil, []int{4, 6}, nil, func(topo string, n int) (machine.Stats, error) {
		_, st, err := collective.Broadcast(n, 3, 42)
		return st, err
	}},
	{"allreduce", topology.Families(), []int{4, 5, 6}, nil, func(topo string, n int) (machine.Stats, error) {
		c, err := topology.CommByID(topo, n)
		if err != nil {
			return machine.Stats{}, err
		}
		in := randInts(int64(n)+13, 1<<(2*n-1), -1000, 1000)
		_, st, err := collective.AllReduceOn(c, in, monoid.Sum[int]())
		return st, err
	}},
	{"gather", nil, []int{3, 4, 5, 6}, nil, func(topo string, n int) (machine.Stats, error) {
		in := randInts(int64(n)+21, 1<<(2*n-1), -1000, 1000)
		_, st, err := collective.Gather(n, 1, in)
		return st, err
	}},
	{"scatter", nil, []int{3, 4, 5, 6}, nil, func(topo string, n int) (machine.Stats, error) {
		in := randInts(int64(n)+34, 1<<(2*n-1), -1000, 1000)
		_, st, err := collective.Scatter(n, 1, in)
		return st, err
	}},
	// The D_6 cell used to be skipped — the slice-of-bundles exchange ran
	// ~1.3s/op and would have dominated the sweep. On the route payload
	// plane the 2048^2-id exchange fits the grid's budget, so the full
	// column is measured.
	{"alltoall", nil, []int{3, 4, 5, 6}, nil, func(topo string, n int) (machine.Stats, error) {
		N := 1 << (2*n - 1)
		in := make([][]int, N)
		for i := range in {
			in[i] = make([]int, N)
			for j := range in[i] {
				in[i][j] = i*N + j
			}
		}
		_, st, err := collective.AllToAll(n, in)
		return st, err
	}},
}

// bytesPerRun measures the heap bytes one warm run allocates: the delta of
// the runtime's cumulative TotalAlloc counter around the run, which GC
// activity cannot deflate (unlike HeapAlloc). One sample suffices for the
// grid's purposes — warm runs are allocation-deterministic up to pool and
// map-growth noise, the same tolerance AllocsPerRun accepts.
func bytesPerRun(run func() error) (uint64, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	before := ms.TotalAlloc
	if err := run(); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc - before, nil
}

// SetBenchSched selects the backend for a JSON bench run by name. The empty
// string (or "default") keeps the package defaults: direct kernel execution
// for schedule-driven operations, the worker-pool engine otherwise.
func SetBenchSched(name string) error {
	switch name {
	case "", "default":
		machine.SetDefaultSched(machine.SchedDefault)
	case "direct":
		machine.SetDefaultSched(machine.SchedDirect)
	case "worker-pool":
		machine.SetDefaultSched(machine.SchedWorkerPool)
	case "goroutine-per-node":
		machine.SetDefaultSched(machine.SchedGoroutinePerNode)
	default:
		return fmt.Errorf("experiments: unknown scheduler %q (want direct, worker-pool, goroutine-per-node or default)", name)
	}
	return nil
}

// BenchSweep measures every point of the fixed grid on the backend
// previously selected with SetBenchSched: per point one warm-up run, an
// allocation count, runs timing samples, and the Stats of the final run.
func BenchSweep(sched string, runs int) ([]BenchPoint, error) {
	if runs < 1 {
		runs = 1
	}
	var points []BenchPoint
	for _, w := range benchWorkloads {
		topos := w.topos
		if topos == nil {
			topos = []string{"dualcube"}
		}
		for _, topo := range topos {
			for _, n := range w.ns {
				if w.skip != nil {
					if reason := w.skip(n); reason != "" {
						points = append(points, BenchPoint{
							Name: w.name, Topo: topo, N: n, Nodes: 1 << (2*n - 1), Sched: sched, Skip: reason,
						})
						continue
					}
				}
				st, err := w.run(topo, n) // warm-up: pools the engine, compiles the schedule
				if err != nil {
					return nil, fmt.Errorf("bench %s/%s/D_%d: %w", w.name, topo, n, err)
				}
				var allocErr error
				allocs := testing.AllocsPerRun(1, func() {
					if _, err := w.run(topo, n); err != nil {
						allocErr = err
					}
				})
				if allocErr != nil {
					return nil, fmt.Errorf("bench %s/%s/D_%d: %w", w.name, topo, n, allocErr)
				}
				bytes, err := bytesPerRun(func() error {
					_, err := w.run(topo, n)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("bench %s/%s/D_%d: %w", w.name, topo, n, err)
				}
				samples := make([]time.Duration, runs)
				for i := range samples {
					start := time.Now()
					if st, err = w.run(topo, n); err != nil {
						return nil, fmt.Errorf("bench %s/%s/D_%d: %w", w.name, topo, n, err)
					}
					samples[i] = time.Since(start)
				}
				points = append(points, BenchPoint{
					Name:        w.name,
					Topo:        topo,
					N:           n,
					Nodes:       st.Nodes,
					Sched:       sched,
					NsPerOp:     median(samples).Nanoseconds(),
					AllocsPerOp: uint64(allocs),
					BytesPerOp:  bytes,
					Cycles:      st.Cycles,
					Runs:        runs,
				})
			}
		}
	}
	return points, nil
}

// BenchJSON renders the sweep as JSON lines, one point per line — the
// output of dcbench -json and the content of make bench-json's BENCH file.
func BenchJSON(sched string, runs int) (string, error) {
	if err := SetBenchSched(sched); err != nil {
		return "", err
	}
	if sched == "" {
		sched = "default"
	}
	points, err := BenchSweep(sched, runs)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	for _, p := range points {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("bench json: %w", err)
		}
	}
	return sb.String(), nil
}
