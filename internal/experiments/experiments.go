// Package experiments regenerates every evaluation artifact of the paper
// as a markdown table: the structural claims of Section 2 (E1/E2/E11), the
// theorem step counts (E4, E8), the hypercube baselines (E5, E9), the
// emulation-overhead claim (E10), the large-input generalization (E12) and
// the cluster-technique collectives (E13). cmd/dcbench prints these tables;
// EXPERIMENTS.md records one run of them next to the paper's claims.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"dualcube/internal/collective"
	"dualcube/internal/monoid"
	"dualcube/internal/prefix"
	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
)

// table accumulates a markdown table.
type table struct {
	sb strings.Builder
}

func newTable(title string, cols ...string) *table {
	t := &table{}
	fmt.Fprintf(&t.sb, "### %s\n\n", title)
	t.sb.WriteString("| " + strings.Join(cols, " | ") + " |\n")
	seps := make([]string, len(cols))
	for i := range seps {
		seps[i] = "---"
	}
	t.sb.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	return t
}

func (t *table) row(cells ...string) {
	t.sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
}

func (t *table) String() string { return t.sb.String() }

func itoa(x int) string     { return fmt.Sprintf("%d", x) }
func i64toa(x int64) string { return fmt.Sprintf("%d", x) }

func randInts(seed int64, n, lo, hi int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = lo + rng.Intn(hi-lo+1)
	}
	return out
}

// E2Topology verifies the Section 2 structural claims of D_n for n in
// [1, maxN]: node count, degree, edge count, diameter 2n (BFS-checked up to
// bfsMax), and the closed-form distance formula (spot-checked by BFS).
func E2Topology(maxN, bfsMax int) (string, error) {
	t := newTable("E2 — dual-cube structural claims (Section 2)",
		"n", "nodes 2^(2n-1)", "degree", "edges", "diameter formula", "diameter BFS", "formula = BFS")
	for n := 1; n <= maxN; n++ {
		d, err := topology.Shared(n)
		if err != nil {
			return "", fmt.Errorf("E2 n=%d: %w", n, err)
		}
		bfs := "-"
		match := "(not run)"
		if n <= bfsMax {
			got := topology.DiameterBFS(d)
			bfs = itoa(got)
			if got == d.Diameter() {
				match = "yes"
			} else {
				match = "NO"
			}
		}
		t.row(itoa(n), itoa(d.Nodes()), itoa(d.Order()), itoa(topology.EdgeCount(d)),
			itoa(d.Diameter()), bfs, match)
	}
	return t.String(), nil
}

// E4Prefix measures D_prefix against Theorem 1 for n in [1, maxN], with
// the hypercube-emulation ablation in the last column.
func E4Prefix(maxN int) (string, error) {
	t := newTable("E4 — parallel prefix on D_n (Theorem 1)",
		"n", "nodes", "comm measured", "comm bound 2n+1", "comp measured", "comp bound 2n",
		"messages", "emulated comm (ablation)")
	for n := 1; n <= maxN; n++ {
		N := 1 << (2*n - 1)
		in := randInts(int64(n), N, -1000, 1000)
		_, st, err := prefix.DPrefix(n, in, monoid.Sum[int](), true, nil)
		if err != nil {
			return "", fmt.Errorf("E4 n=%d: %w", n, err)
		}
		_, ste, err := prefix.EmulatedCubePrefix(n, in, monoid.Sum[int](), true)
		if err != nil {
			return "", fmt.Errorf("E4 emulation n=%d: %w", n, err)
		}
		t.row(itoa(n), itoa(N), itoa(st.Cycles), itoa(prefix.PaperCommBound(n)),
			itoa(st.MaxOps), itoa(prefix.PaperCompBound(n)), i64toa(st.Messages), itoa(ste.Cycles))
	}
	return t.String(), nil
}

// E5CubePrefix measures Algorithm 1 on hypercubes Q_q for q in [0, maxQ]:
// the paper's "optimal in hypercube" baseline (q steps).
func E5CubePrefix(maxQ int) (string, error) {
	t := newTable("E5 — parallel prefix on Q_q (Algorithm 1 baseline)",
		"q", "nodes", "comm measured", "comm expected q", "comp measured")
	for q := 0; q <= maxQ; q++ {
		in := randInts(int64(q+100), 1<<q, -1000, 1000)
		_, st, err := prefix.CubePrefix(q, in, monoid.Sum[int](), true)
		if err != nil {
			return "", fmt.Errorf("E5 q=%d: %w", q, err)
		}
		t.row(itoa(q), itoa(1<<q), itoa(st.Cycles), itoa(q), itoa(st.MaxOps))
	}
	return t.String(), nil
}

// E8Sort measures D_sort against Theorem 2 for n in [1, maxN].
func E8Sort(maxN int) (string, error) {
	t := newTable("E8 — bitonic sort on D_n (Theorem 2)",
		"n", "nodes", "comm measured", "comm formula 6n²-7n+2", "comm bound 6n²",
		"comparisons", "comp formula 2n²-n", "comp bound 2n²")
	for n := 1; n <= maxN; n++ {
		N := 1 << (2*n - 1)
		in := randInts(int64(n+7), N, 0, 1<<20)
		_, st, err := sortnet.DSort(n, in, func(a, b int) bool { return a < b }, sortnet.Ascending, nil)
		if err != nil {
			return "", fmt.Errorf("E8 n=%d: %w", n, err)
		}
		t.row(itoa(n), itoa(N), itoa(st.Cycles), itoa(sortnet.DSortCommSteps(n)),
			itoa(sortnet.PaperSortCommBound(n)), itoa(st.MaxOps),
			itoa(sortnet.DSortCompSteps(n)), itoa(sortnet.PaperSortCompBound(n)))
	}
	return t.String(), nil
}

// E9E10CubeSortAndOverhead measures bitonic sort on the equal-sized
// hypercube Q_{2n-1} (E9) and the dual-cube emulation overhead ratio (E10,
// the paper's Section 7 "3 times ... in the worst-case" remark).
func E9E10CubeSortAndOverhead(maxN int) (string, error) {
	t := newTable("E9/E10 — hypercube bitonic baseline and emulation overhead",
		"n", "q=2n-1", "Q_q comm (=q(q+1)/2)", "D_n comm", "overhead ratio", "comparisons equal")
	for n := 1; n <= maxN; n++ {
		q := 2*n - 1
		in := randInts(int64(n+21), 1<<q, 0, 1<<20)
		_, stQ, err := sortnet.CubeSort(q, in, func(a, b int) bool { return a < b }, sortnet.Ascending)
		if err != nil {
			return "", fmt.Errorf("E9 n=%d: %w", n, err)
		}
		_, stD, err := sortnet.DSort(n, in, func(a, b int) bool { return a < b }, sortnet.Ascending, nil)
		if err != nil {
			return "", fmt.Errorf("E9 D n=%d: %w", n, err)
		}
		ratio := float64(stD.Cycles) / float64(stQ.Cycles)
		eq := "yes"
		if stQ.MaxOps != stD.MaxOps {
			eq = "NO"
		}
		t.row(itoa(n), itoa(q), itoa(stQ.Cycles), itoa(stD.Cycles),
			fmt.Sprintf("%.2f", ratio), eq)
	}
	return t.String(), nil
}

// E11Compare contrasts the dual-cube with the equal-sized hypercube and
// the bounded-degree competitors from the paper's introduction at
// comparable node counts.
func E11Compare() (string, error) {
	t := newTable("E11 — network comparison (introduction)",
		"network", "nodes", "degree", "edges", "diameter", "avg distance")
	makers := []func() (topology.Topology, error){
		func() (topology.Topology, error) { return topology.NewDualCube(3) },
		func() (topology.Topology, error) { return topology.NewHypercube(5) },
		func() (topology.Topology, error) { return topology.NewCCC(3) },
		func() (topology.Topology, error) { return topology.NewButterfly(3) },
		func() (topology.Topology, error) { return topology.NewDeBruijn(5) },
		func() (topology.Topology, error) { return topology.NewShuffleExchange(5) },
		func() (topology.Topology, error) { return topology.NewDualCube(4) },
		func() (topology.Topology, error) { return topology.NewHypercube(7) },
		func() (topology.Topology, error) { return topology.NewCCC(5) },
		func() (topology.Topology, error) { return topology.NewButterfly(5) },
		func() (topology.Topology, error) { return topology.NewDeBruijn(7) },
		func() (topology.Topology, error) { return topology.NewShuffleExchange(7) },
	}
	for _, mk := range makers {
		net, err := mk()
		if err != nil {
			return "", fmt.Errorf("E11: %w", err)
		}
		st := topology.Analyze(net)
		deg := itoa(st.Degree)
		if !st.Regular {
			deg = "≤" + deg
		}
		t.row(st.Name, itoa(st.Nodes), deg, itoa(st.Edges), itoa(st.Diameter),
			fmt.Sprintf("%.3f", st.AvgDist))
	}
	return t.String(), nil
}

// E12Large measures the large-input generalization (future-work item 1):
// prefix and sort with k elements per node — communication steps must not
// depend on k.
func E12Large(n int, ks []int) (string, error) {
	t := newTable(fmt.Sprintf("E12 — inputs larger than the network (D_%d)", n),
		"k (elems/node)", "total elems", "prefix comm", "prefix ok", "sort comm", "sort ok")
	N := 1 << (2*n - 1)
	for _, k := range ks {
		in := randInts(int64(k), k*N, -1000, 1000)
		pre, stP, err := prefix.DPrefixLarge(n, k, in, monoid.Sum[int](), true)
		if err != nil {
			return "", fmt.Errorf("E12 prefix k=%d: %w", k, err)
		}
		okP := "yes"
		acc := 0
		for i, v := range in {
			acc += v
			if pre[i] != acc {
				okP = "NO"
				break
			}
		}
		sorted, stS, err := sortnet.DSortLarge(n, k, in, func(a, b int) bool { return a < b }, sortnet.Ascending)
		if err != nil {
			return "", fmt.Errorf("E12 sort k=%d: %w", k, err)
		}
		okS := "yes"
		for i := 1; i < len(sorted); i++ {
			if sorted[i] < sorted[i-1] {
				okS = "NO"
				break
			}
		}
		t.row(itoa(k), itoa(k*N), itoa(stP.Cycles), okP, itoa(stS.Cycles), okS)
	}
	return t.String(), nil
}

// E13Collectives measures the cluster-technique collectives: every one of
// them must take exactly 2n communication rounds, the diameter of D_n (the
// all-to-all's 2n rounds carry full buffers — latency-optimal; its total
// volume is bandwidth-bound).
func E13Collectives(maxN int) (string, error) {
	t := newTable("E13 — collective communications (future-work item 3)",
		"n", "diameter 2n", "broadcast", "allreduce", "gather", "scatter", "allgather", "alltoall")
	for n := 1; n <= maxN; n++ {
		N := 1 << (2*n - 1)
		_, stB, err := collective.Broadcast(n, N/3, 1)
		if err != nil {
			return "", fmt.Errorf("E13 broadcast n=%d: %w", n, err)
		}
		in := randInts(int64(n+5), N, -100, 100)
		_, stA, err := collective.AllReduce(n, in, monoid.Sum[int]())
		if err != nil {
			return "", fmt.Errorf("E13 allreduce n=%d: %w", n, err)
		}
		_, stG, err := collective.Gather(n, N/2, in)
		if err != nil {
			return "", fmt.Errorf("E13 gather n=%d: %w", n, err)
		}
		_, stS, err := collective.Scatter(n, N/2, in)
		if err != nil {
			return "", fmt.Errorf("E13 scatter n=%d: %w", n, err)
		}
		_, stAG, err := collective.AllGather(n, in)
		if err != nil {
			return "", fmt.Errorf("E13 allgather n=%d: %w", n, err)
		}
		atoa := "-"
		if n <= 5 { // the N x N payload matrix gets large beyond this
			mat := make([][]int, N)
			for i := range mat {
				mat[i] = make([]int, N)
				for j := range mat[i] {
					mat[i][j] = i ^ j
				}
			}
			_, st, err := collective.AllToAll(n, mat)
			if err != nil {
				return "", fmt.Errorf("E13 alltoall n=%d: %w", n, err)
			}
			atoa = itoa(st.Cycles)
		}
		t.row(itoa(n), itoa(2*n), itoa(stB.Cycles), itoa(stA.Cycles), itoa(stG.Cycles),
			itoa(stS.Cycles), itoa(stAG.Cycles), atoa)
	}
	return t.String(), nil
}

// All (the `dcbench` no-flag run) lives in registry.go beside the
// experiment registry it walks.
