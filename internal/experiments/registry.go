package experiments

import (
	"fmt"
	"strings"
)

// The experiment registry is the single source of truth for what
// experiments exist and how to run them. cmd/dcbench derives its -exp
// dispatch AND its help string from here, so the flag text can never rot
// out of sync with the experiment set again (it once listed only up to E20
// while E21/E22 already existed); All() walks the same registry.

// Options carries the tunables an experiment's Run may consume; dcbench
// fills it from flags. Cold/Warm are the fresh-subprocess probes E20 needs
// (only a main package can re-exec its own binary, so dcbench provides
// them).
type Options struct {
	Seed int64
	MaxN int
	Runs int
	Cold ColdProbe
	Warm WarmProbe
}

// DefaultOptions are the values All() and plain `dcbench -exp En` use.
func DefaultOptions() Options {
	return Options{Seed: 2008, MaxN: 6, Runs: 20}
}

// Experiment is one registry entry. Run is nil for experiments that live
// outside dcbench (Go benchmarks, the serving load generator); HowTo then
// says how to reproduce them.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (string, error)
	HowTo string
	// InAll marks the experiments `dcbench` with no flags concatenates.
	InAll bool
}

// registry lists every experiment in EXPERIMENTS.md order. E9 and E10
// share one table (comm steps and overhead come from the same sweep), so
// both IDs appear and only E9 is InAll.
var registry = []Experiment{
	{ID: "E2", Title: "topology structure checks", InAll: true,
		Run: func(Options) (string, error) { return E2Topology(8, 4) }},
	{ID: "E4", Title: "D_prefix comm/comp steps (Theorem 1)", InAll: true,
		Run: func(Options) (string, error) { return E4Prefix(7) }},
	{ID: "E5", Title: "hypercube prefix baseline", InAll: true,
		Run: func(Options) (string, error) { return E5CubePrefix(13) }},
	{ID: "E8", Title: "D_sort comm steps (Theorem 2)", InAll: true,
		Run: func(Options) (string, error) { return E8Sort(6) }},
	{ID: "E9", Title: "hypercube sort baseline and overhead", InAll: true,
		Run: func(Options) (string, error) { return E9E10CubeSortAndOverhead(6) }},
	{ID: "E10", Title: "sort overhead vs hypercube (same table as E9)",
		Run: func(Options) (string, error) { return E9E10CubeSortAndOverhead(6) }},
	{ID: "E11", Title: "dual-cube vs hypercube at equal node count", InAll: true,
		Run: func(Options) (string, error) { return E11Compare() }},
	{ID: "E12", Title: "large-vector prefix (k elements per node)", InAll: true,
		Run: func(Options) (string, error) { return E12Large(3, []int{1, 4, 16, 64}) }},
	{ID: "E13", Title: "collective operations sweep", InAll: true,
		Run: func(Options) (string, error) { return E13Collectives(7) }},
	{ID: "E14", Title: "per-link load balance", InAll: true,
		Run: func(Options) (string, error) { return E14LinkLoads(5) }},
	{ID: "E16", Title: "hypercube algorithm emulation", InAll: true,
		Run: func(Options) (string, error) { return E16Emulation(5) }},
	{ID: "E17", Title: "sample sort over D_sort", InAll: true,
		Run: func(Options) (string, error) { return E17SampleSort(5, 16) }},
	{ID: "E18", Title: "seeded fault sweep (degraded D_prefix)", InAll: true,
		Run: func(o Options) (string, error) { return E18FaultSweep(4, 6, o.Seed) }},
	{ID: "E19", Title: "fault-tolerance success-rate trials", InAll: true,
		Run: func(o Options) (string, error) { return E19FaultTolerance(6, 20, o.Seed) }},
	{ID: "E20", Title: "cold-vs-warm per-call wall time",
		Run: func(o Options) (string, error) {
			if o.Cold == nil || o.Warm == nil {
				return "", fmt.Errorf("experiments: E20 needs fresh-subprocess probes; run it through cmd/dcbench (-exp E20 or -warm)")
			}
			return E20ColdVsWarm(4, o.MaxN, o.Runs, o.Cold, o.Warm)
		}},
	{ID: "E21", Title: "direct kernel executor vs simulator engines",
		HowTo: "go test -bench BenchmarkSchedulers -benchmem ."},
	{ID: "E22", Title: "sort family on the direct executor",
		HowTo: "go test -bench BenchmarkE22SortSchedulers -benchtime 20x ."},
	{ID: "E23", Title: "batched serving throughput (request coalescing)",
		HowTo: "go run ./cmd/dcserve -load -op prefix -n 5 -clients 64 -dur 2s -sweep 1,8,32"},
	{ID: "E24", Title: "arena payload plane for the v-collectives (before/after)",
		HowTo: "make bench-json (compare BENCH_8.json to BENCH_7.json); go test -run TestWarmRuntimeAllocGuard -v ."},
}

// Registry returns the experiment list in EXPERIMENTS.md order.
func Registry() []Experiment { return registry }

// Find resolves an experiment by ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDList renders every registered ID comma-separated — the -exp help
// string's experiment list, derived so it cannot rot.
func IDList() string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return strings.Join(ids, ", ")
}

// All runs every InAll experiment at its default scale and concatenates
// the tables. This is what cmd/dcbench prints and what EXPERIMENTS.md
// records.
func All() (string, error) {
	var sb strings.Builder
	opts := DefaultOptions()
	for _, e := range registry {
		if !e.InAll {
			continue
		}
		s, err := e.Run(opts)
		if err != nil {
			return sb.String(), err
		}
		sb.WriteString(s)
		sb.WriteString("\n")
	}
	return sb.String(), nil
}
