package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestE2Topology(t *testing.T) {
	s, err := E2Topology(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "E2") || !strings.Contains(s, "| 4 | 128 | 4 |") {
		t.Errorf("E2 table malformed:\n%s", s)
	}
	if strings.Contains(s, "| NO |") {
		t.Errorf("E2 table reports a diameter mismatch:\n%s", s)
	}
	// BFS column populated for n <= 3, dash for n = 4.
	if !strings.Contains(s, "| - |") {
		t.Errorf("E2 should skip BFS beyond bfsMax:\n%s", s)
	}
}

func TestE4Prefix(t *testing.T) {
	s, err := E4Prefix(4)
	if err != nil {
		t.Fatal(err)
	}
	// n=3 row: comm 6, bound 7, comp 6, bound 6.
	if !strings.Contains(s, "| 3 | 32 | 6 | 7 | 6 | 6 |") {
		t.Errorf("E4 table:\n%s", s)
	}
	// Emulation ablation for n=3: 6*3-5 = 13.
	if !strings.Contains(s, "| 13 |") {
		t.Errorf("E4 ablation column missing:\n%s", s)
	}
}

func TestE5CubePrefix(t *testing.T) {
	s, err := E5CubePrefix(6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "| 6 | 64 | 6 | 6 | 6 |") {
		t.Errorf("E5 table:\n%s", s)
	}
}

func TestE8Sort(t *testing.T) {
	s, err := E8Sort(4)
	if err != nil {
		t.Fatal(err)
	}
	// n=4: comm 6*16-28+2 = 70, comparisons 2*16-4 = 28.
	if !strings.Contains(s, "| 4 | 128 | 70 | 70 | 96 | 28 | 28 | 32 |") {
		t.Errorf("E8 table:\n%s", s)
	}
}

func TestE9E10(t *testing.T) {
	s, err := E9E10CubeSortAndOverhead(4)
	if err != nil {
		t.Fatal(err)
	}
	// n=4, q=7: cube 28 steps, dual 70 steps, ratio 2.50.
	if !strings.Contains(s, "| 4 | 7 | 28 | 70 | 2.50 | yes |") {
		t.Errorf("E9/E10 table:\n%s", s)
	}
	if strings.Contains(s, "| NO |") {
		t.Errorf("comparison counts should match:\n%s", s)
	}
}

func TestE11Compare(t *testing.T) {
	s, err := E11Compare()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"D_3", "Q_5", "CCC_3", "WBF_3", "DB_5", "SE_5"} {
		if !strings.Contains(s, want) {
			t.Errorf("E11 missing %s:\n%s", want, s)
		}
	}
}

func TestE12Large(t *testing.T) {
	s, err := E12Large(2, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s, "NO") {
		t.Errorf("E12 reports a failure:\n%s", s)
	}
	// Communication independent of k: comm column is 4 for both rows (n=2).
	if strings.Count(s, "| 4 | yes |") != 2 {
		t.Errorf("E12 comm not constant:\n%s", s)
	}
}

func TestE13Collectives(t *testing.T) {
	s, err := E13Collectives(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "| 3 | 6 | 6 | 6 | 6 | 6 | 6 | 6 |") {
		t.Errorf("E13 table:\n%s", s)
	}
}

func TestAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	s, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E2", "E4", "E5", "E8", "E9/E10", "E11", "E12", "E13", "E14", "E16", "E17"} {
		if !strings.Contains(s, want) {
			t.Errorf("All() missing section %s", want)
		}
	}
	if strings.Contains(s, "| NO |") {
		t.Error("All() reports a mismatch")
	}
}

func TestE14LinkLoads(t *testing.T) {
	s, err := E14LinkLoads(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "D_prefix") || !strings.Contains(s, "D_sort") {
		t.Errorf("E14 table:\n%s", s)
	}
	// D_prefix on D_n sends exactly 2 cross messages and 2(n-1) cluster
	// messages per node; for n=3: 32 nodes -> 64 cross, 128 cluster.
	if !strings.Contains(s, "| D_prefix | 3 | 192 | 64 | 128 |") {
		t.Errorf("E14 prefix row:\n%s", s)
	}
}

func TestE16Emulation(t *testing.T) {
	s, err := E16Emulation(3)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s, "NO") {
		t.Errorf("E16 reports a failure:\n%s", s)
	}
	// n=3: D_3 comm 13, Q_5 comm 5, ratio 2.60.
	if !strings.Contains(s, "| 3 | 32 | 13 | 5 | 2.60 | yes | yes |") {
		t.Errorf("E16 table:\n%s", s)
	}
}

func TestE18FaultSweep(t *testing.T) {
	s, err := E18FaultSweep(4, 4, 2008)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "E18") {
		t.Errorf("E18 header missing:\n%s", s)
	}
	if strings.Contains(s, "| NO |") {
		t.Errorf("E18 reports an incorrect prefix:\n%s", s)
	}
	// f = 0 row: no detours, measured comm equals the fault-free 2n = 8.
	if !strings.Contains(s, "| 4 | 128 | 0 | 8 | 8 | 9 | 0 | 0 | 0 hops |") {
		t.Errorf("E18 fault-free row:\n%s", s)
	}
	if strings.Count(s, "| yes |") != 4 { // f = 0..3
		t.Errorf("E18 should have 4 correct rows:\n%s", s)
	}
}

func TestE18FaultSweepJSON(t *testing.T) {
	s, err := E18FaultSweepJSON(4, 4, 2008)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 JSON lines, got %d:\n%s", len(lines), s)
	}
	for i, line := range lines {
		var p FaultSweepPoint
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if p.N != 4 || p.Faults != i || !p.Correct {
			t.Errorf("line %d: n=%d f=%d correct=%v", i, p.N, p.Faults, p.Correct)
		}
		if p.CommMeasured != p.CommFaultFree+p.Overhead {
			t.Errorf("line %d: measured %d != fault-free %d + overhead %d",
				i, p.CommMeasured, p.CommFaultFree, p.Overhead)
		}
		if p.DownLinks != 2*p.Faults {
			t.Errorf("line %d: down links %d, want %d", i, p.DownLinks, 2*p.Faults)
		}
	}
}

func TestE19FaultTolerance(t *testing.T) {
	s, err := E19FaultTolerance(4, 5, 2008)
	if err != nil {
		t.Fatal(err)
	}
	// Every random f = n-1 plan leaves the network connected...
	if !strings.Contains(s, "5/5") || strings.Contains(s, "0/5") {
		t.Errorf("E19 connectivity trials:\n%s", s)
	}
	// ...and the adversarial node cut always disconnects it.
	if strings.Contains(s, "| NO |") {
		t.Errorf("E19 node cut failed to disconnect:\n%s", s)
	}
	if !strings.Contains(s, "| 3 link faults |") {
		t.Errorf("E19 tolerance column for n=4:\n%s", s)
	}
}

func TestE17SampleSort(t *testing.T) {
	s, err := E17SampleSort(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s, "NO") {
		t.Errorf("E17 reports disagreement:\n%s", s)
	}
	// n=3: bitonic 35 steps, sample sort 12 rounds.
	if !strings.Contains(s, "| 3 | 256 | 35 | 12 |") {
		t.Errorf("E17 table:\n%s", s)
	}
}
