package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/monoid"
	"dualcube/internal/prefix"
	"dualcube/internal/topology"
)

// ColdProbe measures one genuinely cold D_prefix call on D_n. The honest
// cold measurement needs a fresh process: within a process the Go runtime
// recycles coroutine stacks and heap spans, so even after dropping every
// pooled engine a "cold" call is substantially cheaper than a first call.
// cmd/dcbench provides a probe that re-executes itself; tests that cannot
// spawn processes pass nil and get the in-process approximation.
type ColdProbe func(n int) (time.Duration, error)

// ColdCallOnce runs the single timed cold call a ColdProbe subprocess
// performs: the first D_prefix on D_n of this process, engine construction
// and schedule compilation included.
func ColdCallOnce(n int) (time.Duration, error) {
	N := 1 << (2*n - 1)
	in := randInts(int64(n), N, -1000, 1000)
	start := time.Now()
	_, _, err := prefix.DPrefix(n, in, monoid.Sum[int](), true, nil)
	return time.Since(start), err
}

// WarmProbe measures the steady-state per-call time of D_prefix on D_n over
// runs calls. Like ColdProbe it exists so the sweep can delegate the
// measurement to a fresh subprocess: a process that has already swept smaller
// orders carries their heap spans and subprocess bookkeeping into the
// collector's pacing, which inflates the warm samples by several percent.
// With both probes subprocess-backed, cold and warm run in identical pristine
// processes and differ only in what the Runtime caches.
type WarmProbe func(n, runs int) (time.Duration, error)

// WarmSteadyState runs the measurement a WarmProbe subprocess performs: one
// priming D_prefix call on D_n (constructs the engine, compiles the
// schedule), a garbage collection to settle, then the median of runs timed
// calls on the warm pool.
func WarmSteadyState(n, runs int) (time.Duration, error) {
	N := 1 << (2*n - 1)
	in := randInts(int64(n), N, -1000, 1000)
	m := monoid.Sum[int]()
	if _, _, err := prefix.DPrefix(n, in, m, true, nil); err != nil {
		return 0, err
	}
	runtime.GC()
	warms := make([]time.Duration, 0, runs)
	for r := 0; r < runs; r++ {
		start := time.Now()
		if _, _, err := prefix.DPrefix(n, in, m, true, nil); err != nil {
			return 0, err
		}
		warms = append(warms, time.Since(start))
	}
	return median(warms), nil
}

// ColdWarmPoint is one row of the E20 sweep: median per-call wall time of
// D_prefix on D_n cold (first call of a fresh process, or the in-process
// pool-reset approximation when no probe is available) versus warm (pooled
// engine, compiled schedule — the steady state of a long-lived Runtime).
type ColdWarmPoint struct {
	N       int     `json:"n"`
	Nodes   int     `json:"nodes"`
	Runs    int     `json:"runs"`
	ColdNs  int64   `json:"cold_ns_per_call"`
	WarmNs  int64   `json:"warm_ns_per_call"`
	Speedup float64 `json:"speedup"`
	Exact   bool    `json:"fresh_process_cold"`
}

// ColdWarmSweep measures the cold-vs-warm per-call wall time of D_prefix for
// n in [minN, maxN], runs samples per configuration, reporting medians
// (robust against GC pauses and scheduling noise on a shared host). When the
// probes are non-nil each configuration is measured in fresh subprocesses;
// with nil probes the sweep falls back to the in-process approximation
// (pool reset for cold, in-process steady state for warm).
func ColdWarmSweep(minN, maxN, runs int, cold ColdProbe, warm WarmProbe) ([]ColdWarmPoint, error) {
	if runs < 1 {
		return nil, fmt.Errorf("experiments: E20 needs at least 1 run, got %d", runs)
	}
	m := monoid.Sum[int]()
	var pts []ColdWarmPoint
	for n := minN; n <= maxN; n++ {
		N := 1 << (2*n - 1)
		in := randInts(int64(n), N, -1000, 1000)
		call := func() error {
			_, _, err := prefix.DPrefix(n, in, m, true, nil)
			return err
		}

		var warmNs int64
		if warm != nil {
			d, err := warm(n, runs)
			if err != nil {
				return nil, fmt.Errorf("E20 warm n=%d: %w", n, err)
			}
			warmNs = d.Nanoseconds()
		} else {
			machine.ResetEnginePool()
			if err := call(); err != nil {
				return nil, fmt.Errorf("E20 warm-up n=%d: %w", n, err)
			}
			runtime.GC()
			warms := make([]time.Duration, 0, runs)
			for r := 0; r < runs; r++ {
				start := time.Now()
				if err := call(); err != nil {
					return nil, fmt.Errorf("E20 warm n=%d: %w", n, err)
				}
				warms = append(warms, time.Since(start))
			}
			warmNs = median(warms).Nanoseconds()
		}

		colds := make([]time.Duration, 0, runs)
		for r := 0; r < runs; r++ {
			if cold != nil {
				d, err := cold(n)
				if err != nil {
					return nil, fmt.Errorf("E20 cold n=%d: %w", n, err)
				}
				colds = append(colds, d)
				continue
			}
			machine.ResetEnginePool()
			start := time.Now()
			if err := call(); err != nil {
				return nil, fmt.Errorf("E20 cold n=%d: %w", n, err)
			}
			colds = append(colds, time.Since(start))
		}

		coldNs := median(colds).Nanoseconds()
		sp := 0.0
		if warmNs > 0 {
			sp = float64(coldNs) / float64(warmNs)
		}
		pts = append(pts, ColdWarmPoint{
			N: n, Nodes: N, Runs: runs,
			ColdNs: coldNs, WarmNs: warmNs, Speedup: sp, Exact: cold != nil,
		})
	}
	return pts, nil
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// E20ColdVsWarm renders the cold-vs-warm sweep as the markdown table
// recorded in EXPERIMENTS.md. The last column verifies the Runtime-layer
// claim that a warm call pays no topology, engine, or schedule construction;
// on D_6 the warm path is expected to be at least 2x faster per call.
func E20ColdVsWarm(minN, maxN, runs int, cold ColdProbe, warm WarmProbe) (string, error) {
	t := newTable("E20 — Runtime warm-up: cold vs warm per-call wall time (D_prefix, medians)",
		"n", "nodes", "runs", "cold ns/call", "warm ns/call", "speedup", "cold source", "schedule")
	pts, err := ColdWarmSweep(minN, maxN, runs, cold, warm)
	if err != nil {
		return "", err
	}
	for _, p := range pts {
		d, err := topology.Shared(p.N)
		if err != nil {
			return "", err
		}
		src := "pool reset (in-process)"
		if p.Exact {
			src = "fresh process"
		}
		sch, err := dcomm.Compiled(d, dcomm.OpPrefix)
		if err != nil {
			return "", err
		}
		t.row(itoa(p.N), itoa(p.Nodes), itoa(p.Runs), i64toa(p.ColdNs), i64toa(p.WarmNs),
			fmt.Sprintf("%.1fx", p.Speedup), src, fmt.Sprintf("%s (%d steps)", sch.Name, len(sch.Steps)))
	}
	return t.String(), nil
}
