package emulate

import (
	"math/rand"
	"testing"

	"dualcube/internal/monoid"
	"dualcube/internal/seq"
)

// sumStep is the simplest normal algorithm: all-reduce by recursive
// doubling (every node ends with the total).
func sumStep(dim, id int, mine, theirs int) int { return mine + theirs }

func TestAscendAllReduce(t *testing.T) {
	for n := 1; n <= 4; n++ {
		N := 1 << (2*n - 1)
		in := make([]int, N)
		total := 0
		for i := range in {
			in[i] = i*3 + 1
			total += in[i]
		}
		out, st, err := Ascend(n, in, sumStep)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for r, v := range out {
			if v != total {
				t.Fatalf("n=%d: node %d got %d, want %d", n, r, v, total)
			}
		}
		if st.Cycles != CommSteps(n) {
			t.Errorf("n=%d: comm %d, want %d", n, st.Cycles, CommSteps(n))
		}
		if st.MaxOps != 2*n-1 {
			t.Errorf("n=%d: ops %d, want %d", n, st.MaxOps, 2*n-1)
		}
	}
}

func TestDescendAllReduce(t *testing.T) {
	n := 3
	N := 1 << (2*n - 1)
	in := make([]int, N)
	total := 0
	for i := range in {
		in[i] = i
		total += i
	}
	out, st, err := Descend(n, in, sumStep)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != total {
			t.Fatalf("descend allreduce wrong: %d != %d", v, total)
		}
	}
	if st.Cycles != CommSteps(n) {
		t.Errorf("comm %d", st.Cycles)
	}
}

// prefixStep implements Algorithm 1's ascend prefix via the framework,
// carrying (total, prefix) pairs.
type ts struct{ t, s int }

func prefixStep(dim, id int, mine, theirs ts) ts {
	if id>>dim&1 == 1 {
		return ts{t: theirs.t + mine.t, s: theirs.t + mine.s}
	}
	return ts{t: mine.t + theirs.t, s: mine.s}
}

func TestAscendPrefix(t *testing.T) {
	// The hypercube prefix as a normal algorithm on both networks.
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 4; n++ {
		N := 1 << (2*n - 1)
		in := make([]int, N)
		for i := range in {
			in[i] = rng.Intn(100)
		}
		init := make([]ts, N)
		for i, v := range in {
			init[i] = ts{t: v, s: v}
		}
		out, _, err := Ascend(n, init, prefixStep)
		if err != nil {
			t.Fatal(err)
		}
		want := seq.ScanInclusive(in, monoid.Sum[int]())
		for i := range want {
			if out[i].s != want[i] {
				t.Fatalf("n=%d: prefix wrong at %d", n, i)
			}
		}
		q := 2*n - 1
		cube, stQ, err := CubeAscend(q, init, prefixStep)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if cube[i].s != want[i] {
				t.Fatalf("cube prefix wrong at %d", i)
			}
		}
		if stQ.Cycles != q {
			t.Errorf("cube comm %d, want %d", stQ.Cycles, q)
		}
	}
}

func TestEmulationOverheadRatio(t *testing.T) {
	// The Section 7 claim: emulated comm / hypercube comm -> 3.
	for n := 2; n <= 8; n++ {
		q := 2*n - 1
		ratio := float64(CommSteps(n)) / float64(q)
		if ratio >= 3 {
			t.Errorf("n=%d: ratio %.2f should stay below 3", n, ratio)
		}
		if n >= 6 && ratio < 2.5 {
			t.Errorf("n=%d: ratio %.2f should approach 3", n, ratio)
		}
	}
}

func TestBadInputs(t *testing.T) {
	if _, _, err := Ascend(0, nil, sumStep); err == nil {
		t.Error("order 0 should fail")
	}
	if _, _, err := Ascend(2, make([]int, 3), sumStep); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := CubeAscend(-1, nil, sumStep); err == nil {
		t.Error("negative q should fail")
	}
	if _, _, err := CubeDescend(2, make([]int, 3), sumStep); err == nil {
		t.Error("cube length mismatch should fail")
	}
}
