// Package emulate is the paper's recursive technique as a reusable
// framework: it runs arbitrary "normal" hypercube algorithms — ascend
// (dimensions low to high) and descend (high to low) algorithms in
// Leighton's sense — on the dual-cube through the recursive presentation of
// Section 4. Every dimension step is a full pairwise exchange, direct for
// matching-parity nodes and routed in 3 cycles otherwise, so any normal
// algorithm for Q_{2n-1} runs on D_n with worst-case communication overhead
// 3 (Section 7's concluding remark).
//
// The paper's own D_sort is one instance of this pattern; the package also
// powers the hypercube-prefix ablation and the distributed NTT in
// internal/ntt.
package emulate

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// StepFunc computes a node's new value after the dimension-dim exchange:
// id is the node's (recursive, for dual-cube) address, mine its current
// value and theirs the partner's. It must be a pure function — it runs
// once per node per dimension, concurrently across nodes.
type StepFunc[T any] func(dim, id int, mine, theirs T) T

// dims enumerates q dimensions in ascend or descend order.
func dims(q int, descend bool) []int {
	out := make([]int, q)
	for i := range out {
		if descend {
			out[i] = q - 1 - i
		} else {
			out[i] = i
		}
	}
	return out
}

// run executes a normal algorithm on D_n. init and the result are indexed
// by recursive ID.
func run[T any](n int, init []T, step StepFunc[T], descend bool) ([]T, machine.Stats, error) {
	d, err := topology.Validated(n, len(init))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	order := dims(d.RecDims(), descend)
	out := make([]T, len(init))
	eng, err := machine.New[T](d, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[T]) {
		r := d.ToRecursive(c.ID())
		v := init[r]
		for _, j := range order {
			theirs := dcomm.DimExchange(c, d, j, v)
			v = step(j, r, v, theirs)
			c.Ops(1)
		}
		out[r] = v
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// Ascend runs a normal ascend algorithm (dimensions 0 .. 2n-2) on D_n.
func Ascend[T any](n int, init []T, step StepFunc[T]) ([]T, machine.Stats, error) {
	return run(n, init, step, false)
}

// Descend runs a normal descend algorithm (dimensions 2n-2 .. 0) on D_n.
func Descend[T any](n int, init []T, step StepFunc[T]) ([]T, machine.Stats, error) {
	return run(n, init, step, true)
}

// CommSteps returns the communication cycles of one full normal sweep on
// D_n: 1 cycle for dimension 0 plus 3 for each of the other 2n-2
// dimensions, i.e. 6n-5.
func CommSteps(n int) int { return 6*n - 5 }

// cubeRun executes a normal algorithm on the hypercube Q_q (the baseline:
// one cycle per dimension).
func cubeRun[T any](q int, init []T, step StepFunc[T], descend bool) ([]T, machine.Stats, error) {
	h, err := topology.NewHypercube(q)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if len(init) != h.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("emulate: %d values for %d nodes of %s", len(init), h.Nodes(), h.Name())
	}
	order := dims(q, descend)
	out := make([]T, len(init))
	eng, err := machine.New[T](h, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[T]) {
		u := c.ID()
		v := init[u]
		for _, j := range order {
			theirs := c.Exchange(u^1<<j, v)
			v = step(j, u, v, theirs)
			c.Ops(1)
		}
		out[u] = v
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// CubeAscend runs a normal ascend algorithm on Q_q.
func CubeAscend[T any](q int, init []T, step StepFunc[T]) ([]T, machine.Stats, error) {
	return cubeRun(q, init, step, false)
}

// CubeDescend runs a normal descend algorithm on Q_q.
func CubeDescend[T any](q int, init []T, step StepFunc[T]) ([]T, machine.Stats, error) {
	return cubeRun(q, init, step, true)
}
