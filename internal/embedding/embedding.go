// Package embedding constructs the linear-structure embeddings that back
// the paper's claim that the dual-cube "keeps most of the interesting
// properties of the hypercube": reflected Gray codes, Hamiltonian paths in
// hypercubes between any two opposite-parity nodes (Havel's theorem,
// constructively), and a Hamiltonian cycle of the dual-cube built with the
// cluster technique — a ring of 2^(2n-1) processors embedded with dilation
// 1, which is what makes linear-array algorithms portable to D_n.
package embedding

import (
	"fmt"

	"dualcube/internal/topology"
)

// GrayCode returns the m-bit reflected Gray code: a cyclic sequence of all
// 2^m values in which consecutive entries (including last-to-first) differ
// in exactly one bit. GrayCode(0) = [0].
func GrayCode(m int) []int {
	out := make([]int, 1<<m)
	for i := range out {
		out[i] = i ^ i>>1
	}
	return out
}

// parity returns the Hamming weight of x modulo 2.
func parity(x int) int { return topology.Popcount(x) & 1 }

// HypercubePath returns a Hamiltonian path of Q_m from a to b. Such a path
// exists if and only if a != b and parity(a) != parity(b) (the hypercube is
// bipartite with equal sides, and a Hamiltonian path has an odd number of
// edges); the construction is the standard recursion on a dimension where
// the endpoints differ.
func HypercubePath(m int, a, b topology.NodeID) ([]topology.NodeID, error) {
	N := 1 << m
	if m < 1 || m > topology.MaxHypercubeDim {
		return nil, fmt.Errorf("embedding: hypercube dimension %d out of range", m)
	}
	if a < 0 || a >= N || b < 0 || b >= N {
		return nil, fmt.Errorf("embedding: endpoints (%d, %d) out of range for Q_%d", a, b, m)
	}
	if parity(a) == parity(b) {
		return nil, fmt.Errorf("embedding: no Hamiltonian path of Q_%d between same-parity nodes %d and %d", m, a, b)
	}
	return hamPath(m, a, b), nil
}

// hamPath implements the recursion; preconditions (validated by the
// caller) are 1 <= m, 0 <= a,b < 2^m, parity(a) != parity(b).
func hamPath(m int, a, b int) []int {
	if m == 1 {
		return []int{a, b}
	}
	diff := a ^ b
	d := lowestBit(diff)
	if m == 2 {
		// parity differs in Q_2 => Hamming distance 1; walk the 4-cycle the
		// long way around.
		e := 0
		if d == 0 {
			e = 1
		}
		return []int{a, a ^ 1<<e, a ^ 1<<e ^ 1<<d, b}
	}
	// Split along dimension d: a and b lie in different halves. Choose the
	// crossing point x in a's half: parity(x) != parity(a) and x^2^d != b.
	// There are 2^(m-2) >= 2 candidates, so a valid one always exists; take
	// the smallest for determinism.
	x := -1
	for cand := 0; cand < 1<<m; cand++ {
		if cand>>d&1 != a>>d&1 {
			continue // wrong half
		}
		if parity(cand) == parity(a) {
			continue
		}
		if cand^1<<d == b {
			continue
		}
		x = cand
		break
	}
	// Recurse within the two (m-1)-subcubes, dropping bit d.
	p1 := expand(hamPath(m-1, compress(a, d), compress(x, d)), d, a>>d&1)
	p2 := expand(hamPath(m-1, compress(x^1<<d, d), compress(b, d)), d, b>>d&1)
	return append(p1, p2...)
}

// compress removes bit d from v (shifting higher bits down).
func compress(v, d int) int {
	low := v & (1<<d - 1)
	high := v >> (d + 1)
	return high<<d | low
}

// expand reinserts bit d with the given value into every node of path.
func expand(path []int, d, bit int) []int {
	out := make([]int, len(path))
	for i, v := range path {
		low := v & (1<<d - 1)
		high := v >> d
		out[i] = high<<(d+1) | bit<<d | low
	}
	return out
}

// lowestBit returns the position of the least significant set bit of x.
func lowestBit(x int) int {
	i := 0
	for x&1 == 0 {
		x >>= 1
		i++
	}
	return i
}

// DualCubeHamiltonianCycle returns a Hamiltonian cycle of D_n for n >= 2
// as the sequence of its 2^(2n-1) node addresses; consecutive nodes (and
// the last-to-first pair) are joined by links. D_1 is K_2, which has no
// cycle — use the two-node path directly.
//
// Construction (cluster technique + Gray codes): let g be the cyclic
// (n-1)-bit Gray code. The cycle alternates between the two classes,
//
//	... -> C0_{g_i} -> C1_{g_i} -> C0_{g_{i+1}} -> ...
//
// traversing class-0 cluster g_i by a Hamiltonian path from local g_{i-1}
// to local g_i, crossing to class-1 cluster g_i (entry local g_i),
// traversing it to local g_{i+1}, and crossing back. Gray adjacency makes
// every within-cluster endpoint pair differ in exactly one bit — odd
// parity difference — so the required hypercube Hamiltonian paths exist.
func DualCubeHamiltonianCycle(n int) ([]topology.NodeID, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("embedding: D_1 is K_2 and has no Hamiltonian cycle")
	}
	m := d.ClusterDim()
	g := GrayCode(m)
	M := len(g)
	cycle := make([]topology.NodeID, 0, d.Nodes())
	for i := 0; i < M; i++ {
		prev := g[(i+M-1)%M]
		next := g[(i+1)%M]
		// Class-0 cluster g[i]: local prev -> local g[i].
		p0, err := HypercubePath(m, prev, g[i])
		if err != nil {
			return nil, err
		}
		for _, local := range p0 {
			cycle = append(cycle, d.NodeAt(0, g[i], local))
		}
		// Cross to class-1 cluster g[i] (entry local g[i]), traverse to
		// local next, cross back.
		p1, err := HypercubePath(m, g[i], next)
		if err != nil {
			return nil, err
		}
		for _, local := range p1 {
			cycle = append(cycle, d.NodeAt(1, g[i], local))
		}
	}
	return cycle, nil
}

// VerifyCycle checks that path is a Hamiltonian cycle of t: it visits
// every node exactly once and every consecutive pair (cyclically) is an
// edge. It returns nil if so.
func VerifyCycle(t topology.Topology, path []topology.NodeID) error {
	if len(path) != t.Nodes() {
		return fmt.Errorf("embedding: cycle length %d != %d nodes", len(path), t.Nodes())
	}
	seen := make([]bool, t.Nodes())
	for _, u := range path {
		if u < 0 || u >= t.Nodes() || seen[u] {
			return fmt.Errorf("embedding: node %d repeated or out of range", u)
		}
		seen[u] = true
	}
	for i := range path {
		u, v := path[i], path[(i+1)%len(path)]
		if !t.HasEdge(u, v) {
			return fmt.Errorf("embedding: consecutive pair (%d, %d) is not an edge", u, v)
		}
	}
	return nil
}

// VerifyPath checks that path is a Hamiltonian path of t (every node once,
// consecutive pairs adjacent, ends not required to close).
func VerifyPath(t topology.Topology, path []topology.NodeID) error {
	if len(path) != t.Nodes() {
		return fmt.Errorf("embedding: path length %d != %d nodes", len(path), t.Nodes())
	}
	seen := make([]bool, t.Nodes())
	for _, u := range path {
		if u < 0 || u >= t.Nodes() || seen[u] {
			return fmt.Errorf("embedding: node %d repeated or out of range", u)
		}
		seen[u] = true
	}
	for i := 1; i < len(path); i++ {
		if !t.HasEdge(path[i-1], path[i]) {
			return fmt.Errorf("embedding: consecutive pair (%d, %d) is not an edge", path[i-1], path[i])
		}
	}
	return nil
}
