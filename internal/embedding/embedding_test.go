package embedding

import (
	"testing"
	"testing/quick"

	"dualcube/internal/topology"
)

func TestGrayCode(t *testing.T) {
	for m := 0; m <= 10; m++ {
		g := GrayCode(m)
		if len(g) != 1<<m {
			t.Fatalf("GrayCode(%d) length %d", m, len(g))
		}
		seen := make([]bool, len(g))
		for i, v := range g {
			if v < 0 || v >= len(g) || seen[v] {
				t.Fatalf("GrayCode(%d): value %d repeated/out of range", m, v)
			}
			seen[v] = true
			if m >= 1 {
				next := g[(i+1)%len(g)]
				if topology.Popcount(v^next) != 1 {
					t.Fatalf("GrayCode(%d): %d -> %d not a single-bit step", m, v, next)
				}
			}
		}
	}
}

func TestHypercubePathExhaustive(t *testing.T) {
	// Every valid endpoint pair in Q_1..Q_5 gets a verified Hamiltonian path.
	for m := 1; m <= 5; m++ {
		h := topology.MustHypercube(m)
		for a := 0; a < h.Nodes(); a++ {
			for b := 0; b < h.Nodes(); b++ {
				pathValid := parity(a) != parity(b)
				path, err := HypercubePath(m, a, b)
				if !pathValid {
					if err == nil {
						t.Fatalf("Q_%d: same-parity pair (%d,%d) should fail", m, a, b)
					}
					continue
				}
				if err != nil {
					t.Fatalf("Q_%d (%d,%d): %v", m, a, b, err)
				}
				if path[0] != a || path[len(path)-1] != b {
					t.Fatalf("Q_%d (%d,%d): endpoints wrong", m, a, b)
				}
				if err := VerifyPath(h, path); err != nil {
					t.Fatalf("Q_%d (%d,%d): %v", m, a, b, err)
				}
			}
		}
	}
}

func TestHypercubePathLargerQuick(t *testing.T) {
	f := func(mSeed uint8, aSeed, bSeed uint16) bool {
		m := int(mSeed)%6 + 3 // 3..8
		N := 1 << m
		a := int(aSeed) % N
		b := int(bSeed) % N
		if parity(a) == parity(b) {
			b ^= 1
		}
		if a == b {
			return true
		}
		path, err := HypercubePath(m, a, b)
		if err != nil {
			return false
		}
		return VerifyPath(topology.MustHypercube(m), path) == nil &&
			path[0] == a && path[len(path)-1] == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHypercubePathBadArgs(t *testing.T) {
	if _, err := HypercubePath(0, 0, 0); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := HypercubePath(3, -1, 2); err == nil {
		t.Error("negative endpoint should fail")
	}
	if _, err := HypercubePath(3, 0, 8); err == nil {
		t.Error("out-of-range endpoint should fail")
	}
	if _, err := HypercubePath(3, 0, 3); err == nil {
		t.Error("same-parity endpoints should fail")
	}
}

func TestDualCubeHamiltonianCycle(t *testing.T) {
	for n := 2; n <= 6; n++ {
		d := topology.MustDualCube(n)
		cycle, err := DualCubeHamiltonianCycle(n)
		if err != nil {
			t.Fatalf("D_%d: %v", n, err)
		}
		if err := VerifyCycle(d, cycle); err != nil {
			t.Fatalf("D_%d: %v", n, err)
		}
	}
}

func TestDualCubeHamiltonianCycleD1Fails(t *testing.T) {
	if _, err := DualCubeHamiltonianCycle(1); err == nil {
		t.Error("D_1 has no Hamiltonian cycle")
	}
	if _, err := DualCubeHamiltonianCycle(0); err == nil {
		t.Error("order 0 should fail")
	}
}

func TestVerifyHelpers(t *testing.T) {
	h := topology.MustHypercube(2)
	if err := VerifyCycle(h, []int{0, 1, 3, 2}); err != nil {
		t.Errorf("valid 4-cycle rejected: %v", err)
	}
	if err := VerifyCycle(h, []int{0, 1, 2, 3}); err == nil {
		t.Error("non-cycle accepted (1-2 is not an edge)")
	}
	if err := VerifyCycle(h, []int{0, 1, 3}); err == nil {
		t.Error("short cycle accepted")
	}
	if err := VerifyCycle(h, []int{0, 1, 3, 3}); err == nil {
		t.Error("repeated node accepted")
	}
	if err := VerifyPath(h, []int{0, 1, 3, 2}); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := VerifyPath(h, []int{2, 0, 1, 3}); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := VerifyPath(h, []int{0, 3, 1, 2}); err == nil {
		t.Error("non-path accepted")
	}
}

func TestCompressExpandRoundTrip(t *testing.T) {
	f := func(v uint16, dSeed uint8) bool {
		d := int(dSeed) % 12
		x := int(v) & (1<<13 - 1)
		bit := x >> d & 1
		c := compress(x, d)
		back := expand([]int{c}, d, bit)[0]
		return back == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
