package dcomm

import (
	"dualcube/internal/machine"
)

// Execute runs one schedule-driven operation, dispatching between the two
// execution paths of a compiled schedule: the direct kernel executor when
// the resolved scheduler allows it (the default — compiled schedules are
// static, so they run as array kernels with no simulation overhead), or a
// simulator engine driving the same kernel through the KernelProgram
// adapter (an explicit engine scheduler, or a fault spec with transient
// drop/delay hooks, which only a per-message wire can apply). Both paths
// produce byte-identical outputs and Stats; the golden and differential
// suites enforce it.
//
// This is the front every algorithm layer calls: prefix, the collectives
// and the sort family build their kernel, then Execute routes it. Engines
// are pooled exactly as before — the fallback path checks one out for the
// schedule's topology and releases it after the run.
func Execute[T any](sch *machine.Schedule, cfg machine.Config, kern machine.DirectKernel[T]) (machine.Stats, error) {
	if machine.DirectEligible(cfg) {
		return machine.RunDirect(sch, cfg, kern)
	}
	eng, err := machine.New[T](sch.Topology(), cfg)
	if err != nil {
		return machine.Stats{}, err
	}
	defer eng.Release()
	return eng.Run(machine.KernelProgram(sch, kern))
}
