package dcomm

import (
	"fmt"
	"sort"

	"dualcube/internal/fault"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// Fault tolerance for the recursive technique. The fault model is the
// post-diagnosis one of the connectivity literature (Zhao/Hao/Cheng,
// PAPERS.md): every node knows the full set of permanent faults, so all nodes
// derive the identical detour schedule offline and no runtime agreement is
// needed. Because the link connectivity of D_n is n, any f <= n-1 link faults
// leave the network connected and every broken pair has an alive repair path.
//
// The cluster technique's fault tolerance no longer lives here: it is an IR
// rewrite (RewriteFT in sched.go) annotating the compiled schedules that the
// machine interpreter executes. What remains is the recursive-dimension
// exchange with its 3-cycle relay pattern — a primitive the schedule IR does
// not model — planned by PlanDimExchangeFT and executed by DimExchangeFT.
// The relay mechanics themselves (serial per-pair repairs along alive paths)
// are machine.RunDetours/RelayOneWay, shared with the schedule interpreter.

// Detour is one broken pair's repair assignment: the pair and the alive relay
// path joining its endpoints (Path[0] = Pair.U, Path[len-1] = Pair.V).
type Detour struct {
	Pair fault.Link
	Path []int
	back []int // Path reversed, precomputed so node programs stay alloc-free
}

// FTPlan is the global detour schedule for one recursive-dimension exchange
// pattern under one fault view. It is computed once by PlanDimExchangeFT and
// shared read-only by every node program, so the per-cycle work inside the
// machine stays O(1) per node.
type FTPlan struct {
	broken   []bool // per node: this node's pair is broken and repaired later
	relayOff []bool // per node (dim exchange, j > 0): direct pair alive but its
	// mismatched cross pair is broken, so skip relay duty
	detours      []Detour
	repairCycles int
}

// Detours returns the repair assignments in schedule order.
func (p *FTPlan) Detours() []Detour {
	if p == nil {
		return nil
	}
	return p.detours
}

// RepairCycles returns the extra clock cycles the repairs append to the plain
// schedule: sum over detours of 2·(path length − 1). Zero for a nil plan.
func (p *FTPlan) RepairCycles() int {
	if p == nil {
		return 0
	}
	return p.repairCycles
}

func newFTPlan(n int) *FTPlan {
	return &FTPlan{broken: make([]bool, n), relayOff: make([]bool, n)}
}

// addPair marks {u, w} broken and assigns its repair path.
func (p *FTPlan) addPair(view *fault.View, u, w int) error {
	pair := fault.Link{U: u, V: w}.Normalize()
	path := view.Path(pair.U, pair.V)
	if path == nil {
		return fmt.Errorf("dcomm: faults disconnect %d and %d, no repair path exists", pair.U, pair.V)
	}
	p.broken[u], p.broken[w] = true, true
	back := make([]int, len(path))
	for i, x := range path {
		back[len(path)-1-i] = x
	}
	p.detours = append(p.detours, Detour{Pair: pair, Path: path, back: back})
	return nil
}

// finish fixes the canonical repair order and the cycle count.
func (p *FTPlan) finish() {
	sort.Slice(p.detours, func(i, j int) bool {
		a, b := p.detours[i].Pair, p.detours[j].Pair
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	for _, dt := range p.detours {
		p.repairCycles += 2 * (len(dt.Path) - 1)
	}
}

// PlanDimExchangeFT computes the detour schedule for the parallel
// recursive-dimension-j exchange under view. For j > 0 the plain 3-cycle
// schedule (see DimExchange) makes a mismatched pair {v, v_j} depend on three
// links — its two cross-edges and its relay pair's j-link — so:
//
//   - a down j-link {w, w_j} breaks both the direct pair {w, w_j} and the
//     mismatched pair {cross(w), cross(w_j)} it relays for;
//   - a down cross-edge breaks only the mismatched pair of its endpoints;
//   - a direct pair that survives but whose mismatched pair is broken
//     exchanges normally and skips relay duty (the mismatched nodes are
//     idling, so no foreign value arrives on the cross-edge).
func PlanDimExchangeFT(d topology.Recursive, view *fault.View, j int) (*FTPlan, error) {
	if view.Clean() {
		return nil, nil
	}
	if j == 0 {
		// Dimension 0 is the cross matching: plan it like a schedule step.
		broken, dets, err := planMatching(d, view, d.CrossNeighbor)
		if err != nil {
			return nil, err
		}
		p := &FTPlan{broken: broken, relayOff: make([]bool, d.Nodes()), detours: dets}
		for _, dt := range dets {
			p.repairCycles += 2 * (len(dt.Path) - 1)
		}
		return p, nil
	}
	p := newFTPlan(d.Nodes())
	for u := 0; u < d.Nodes(); u++ {
		r := d.ToRecursive(u)
		if !d.RecDirect(r, j) {
			continue
		}
		w := d.FromRecursive(r ^ 1<<j)
		if u > w {
			continue // both ends of a direct pair are direct; visit once
		}
		cu, cw := d.CrossNeighbor(u), d.CrossNeighbor(w)
		directDown := view.LinkDown(u, w)
		if directDown {
			if err := p.addPair(view, u, w); err != nil {
				return nil, err
			}
		}
		if directDown || view.LinkDown(cu, u) || view.LinkDown(cw, w) {
			if err := p.addPair(view, cu, cw); err != nil {
				return nil, err
			}
			if !directDown {
				p.relayOff[u], p.relayOff[w] = true, true
			}
		}
	}
	p.finish()
	return p, nil
}

// DimExchangeFT is DimExchange surviving the faults planned in p (from
// PlanDimExchangeFT with the same d and j).
func DimExchangeFT[T any](c *machine.Ctx[T], d topology.Recursive, j int, v T, p *FTPlan) T {
	if p == nil {
		return DimExchange(c, d, j, v)
	}
	u := c.ID()
	cross := d.CrossNeighbor(u)
	if j == 0 {
		var r T
		if p.broken[u] {
			c.Idle()
		} else {
			r = c.Exchange(cross, v)
		}
		if got, ok := runRepairs(c, p, v); ok {
			r = got
		}
		return r
	}
	var own T
	r := d.ToRecursive(u)
	switch {
	case p.broken[u]:
		c.Idle() // cycles 1-3: this pair is repaired after the main schedule
		c.Idle()
		c.Idle()
	case d.RecDirect(r, j):
		jp := d.FromRecursive(r ^ 1<<j)
		if p.relayOff[u] {
			own = c.Exchange(jp, v) // cycle 1; no foreign value is coming
			c.Idle()                // cycle 2
			c.Idle()                // cycle 3
		} else {
			var foreign T
			own, foreign = c.SendRecv2(jp, v, jp, cross) // cycle 1
			relayed := c.SendRecv(jp, foreign, jp)       // cycle 2
			c.Send(cross, relayed)                       // cycle 3
		}
	default:
		c.Send(cross, v) // cycle 1
		c.Idle()         // cycle 2
		own = c.Recv(cross)
	}
	if got, ok := runRepairs(c, p, v); ok {
		own = got
	}
	return own
}

// runRepairs walks the plan's detour schedule through the machine's relay
// interpreter: for each broken pair, the U endpoint's value travels to V and
// then V's to U along the alive path. Every node executes the same cycle
// count; ok reports whether this node is an endpoint of some pair (at most
// one — matchings are disjoint) and received its partner's value.
func runRepairs[T any](c *machine.Ctx[T], p *FTPlan, v T) (T, bool) {
	var out T
	var have bool
	for i := range p.detours {
		dt := &p.detours[i]
		if got, ok := machine.RelayOneWay(c, dt.Path, v); ok {
			out, have = got, true
		}
		if got, ok := machine.RelayOneWay(c, dt.back, v); ok {
			out, have = got, true
		}
	}
	return out, have
}
