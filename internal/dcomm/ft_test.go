package dcomm

import (
	"testing"

	"dualcube/internal/fault"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// runFT executes program on d with plan's faults armed in the engine, so any
// send the FT routing attempts on a down link aborts the run — passing these
// tests proves the detours genuinely avoid the failed hardware.
func runFT[T any](t *testing.T, d *topology.DualCube, plan *fault.Plan, sched machine.Sched, program func(*machine.Ctx[T])) machine.Stats {
	t.Helper()
	eng := machine.MustNew[T](d, machine.Config{Sched: sched, Faults: plan.Spec()})
	defer eng.Release()
	st, err := eng.Run(program)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDimExchangeFTSingleCrossFault is the single-failed-cross-edge coverage
// for the 3-cycle relay schedule: for every relay dimension, every node must
// still receive its dimension partner's value, under both schedulers, with
// bit-identical results and Stats across them (differential).
func TestDimExchangeFTSingleCrossFault(t *testing.T) {
	d := topology.MustDualCube(3)
	plan := &fault.Plan{Links: []fault.Link{{U: 0, V: d.CrossNeighbor(0)}}}
	view := fault.NewView(d, plan)
	for j := 1; j < d.RecDims(); j++ {
		p, err := PlanDimExchangeFT(d, view, j)
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		if len(p.Detours()) != 1 {
			t.Fatalf("j=%d: %d detours for one cross fault, want 1 (the mismatched pair)", j, len(p.Detours()))
		}
		var ref []int
		var refStats machine.Stats
		for _, sched := range []machine.Sched{machine.SchedWorkerPool, machine.SchedGoroutinePerNode} {
			got := make([]int, d.Nodes())
			st := runFT[int](t, d, plan, sched, func(c *machine.Ctx[int]) {
				r := d.ToRecursive(c.ID())
				got[r] = DimExchangeFT(c, d, j, r*10+1, p)
			})
			for r := 0; r < d.Nodes(); r++ {
				if want := (r^1<<j)*10 + 1; got[r] != want {
					t.Fatalf("j=%d sched=%v: rec node %d got %d, want %d", j, sched, r, got[r], want)
				}
			}
			if want := CyclesForDim(j) + p.RepairCycles(); st.Cycles != want {
				t.Errorf("j=%d sched=%v: cycles %d, want %d", j, sched, st.Cycles, want)
			}
			if ref == nil {
				ref, refStats = got, st
			} else {
				for r := range got {
					if got[r] != ref[r] {
						t.Fatalf("j=%d: schedulers disagree at rec node %d: %d vs %d", j, r, got[r], ref[r])
					}
				}
				if st != refStats {
					t.Errorf("j=%d: scheduler Stats diverge:\n  %+v\n  %+v", j, refStats, st)
				}
			}
		}
	}
}

// TestDimExchangeFTSingleDimLinkFault fails one j-link, which breaks both the
// direct pair and the mismatched pair relaying through it — two detours.
func TestDimExchangeFTSingleDimLinkFault(t *testing.T) {
	d := topology.MustDualCube(3)
	const j = 2 // even: class-0 nodes are direct
	w := 0
	wj := d.FromRecursive(d.ToRecursive(w) ^ 1<<j)
	plan := &fault.Plan{Links: []fault.Link{{U: w, V: wj}}}
	view := fault.NewView(d, plan)
	p, err := PlanDimExchangeFT(d, view, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Detours()) != 2 {
		t.Fatalf("%d detours for a failed j-link, want 2 (direct + mismatched pair)", len(p.Detours()))
	}
	got := make([]int, d.Nodes())
	runFT[int](t, d, plan, machine.SchedWorkerPool, func(c *machine.Ctx[int]) {
		r := d.ToRecursive(c.ID())
		got[r] = DimExchangeFT(c, d, j, r*10+1, p)
	})
	for r := 0; r < d.Nodes(); r++ {
		if want := (r^1<<j)*10 + 1; got[r] != want {
			t.Fatalf("rec node %d got %d, want %d", r, got[r], want)
		}
	}
}

// TestRewriteFTAnnotations fails one cluster link and one cross link and
// checks the fault rewrite annotates exactly the severed exchange patterns,
// that the interpreted schedule delivers every partner value, and that the
// repair cost is visible in the cycle count.
func TestRewriteFTAnnotations(t *testing.T) {
	d := topology.MustDualCube(3)
	m := d.ClusterDim()
	plan := &fault.Plan{Links: []fault.Link{
		{U: 0, V: d.ClusterNeighbor(0, 1)},
		{U: 5, V: d.CrossNeighbor(5)},
	}}
	sch, err := RewriteFT(MustCompiled(d, OpPrefix), fault.NewView(d, plan))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sch.Steps {
		s := &sch.Steps[i]
		if s.Kind == machine.StepLocalCombine {
			continue
		}
		want := 0
		if s.Pattern == 1 || s.Pattern == m {
			want = 1
		}
		if len(s.Detours) != want {
			t.Errorf("step %d (pattern %d): %d detours, want %d", i, s.Pattern, len(s.Detours), want)
		}
	}
	if dets := PatternDetours(sch); len(dets) != 2 {
		t.Fatalf("PatternDetours: %d unique detours, want 2", len(dets))
	}
	got := make([][]int, d.Nodes())
	st := runFT[int](t, d, plan, machine.SchedWorkerPool, func(c *machine.Ctx[int]) {
		u := c.ID()
		x := machine.Interpret(c, sch)
		var res []int
		for !x.Done() {
			if x.Kind() == machine.StepLocalCombine {
				x.LocalOps(0)
				continue
			}
			want := x.Partner()
			if r := x.Exchange(u); r != want {
				res = append(res, -1)
			} else {
				res = append(res, r)
			}
		}
		got[u] = res
	})
	for u := 0; u < d.Nodes(); u++ {
		for i, r := range got[u] {
			if r == -1 {
				t.Fatalf("node %d comm step %d: wrong partner value", u, i)
			}
		}
	}
	if want := MustCompiled(d, OpPrefix).CommSteps() + sch.RepairCycles; st.Cycles != want {
		t.Errorf("cycles = %d, want %d", st.Cycles, want)
	}
}

// TestRewriteFTClean checks the clean-view fast path returns the compiled
// schedule itself, unannotated and uncopied.
func TestRewriteFTClean(t *testing.T) {
	d := topology.MustDualCube(3)
	base := MustCompiled(d, OpPrefix)
	sch, err := RewriteFT(base, fault.NewView(d, nil))
	if err != nil {
		t.Fatal(err)
	}
	if sch != base {
		t.Fatal("clean view did not return the compiled schedule itself")
	}
	if sch.RepairCycles != 0 {
		t.Fatalf("fault-free schedule has RepairCycles = %d", sch.RepairCycles)
	}
}

// TestExchangeFTRandomFaults sweeps seeded random plans up to the f = n-1
// connectivity bound and checks every FT exchange pattern stays correct with
// the faults armed in the engine.
func TestExchangeFTRandomFaults(t *testing.T) {
	for n := 2; n <= 4; n++ {
		d := topology.MustDualCube(n)
		for f := 1; f < d.Order(); f++ {
			plan := fault.Random(d, f, int64(100*n+f))
			view := fault.NewView(d, plan)
			dims := make([]*FTPlan, d.RecDims())
			var err error
			for j := range dims {
				if dims[j], err = PlanDimExchangeFT(d, view, j); err != nil {
					t.Fatalf("n=%d f=%d j=%d: %v", n, f, j, err)
				}
			}
			got := make([][]int, d.Nodes())
			runFT[int](t, d, plan, machine.SchedWorkerPool, func(c *machine.Ctx[int]) {
				r := d.ToRecursive(c.ID())
				res := make([]int, d.RecDims())
				for j := 0; j < d.RecDims(); j++ {
					res[j] = DimExchangeFT(c, d, j, r*100+j, dims[j])
				}
				got[r] = res
			})
			for r := 0; r < d.Nodes(); r++ {
				for j := 0; j < d.RecDims(); j++ {
					if want := (r^1<<j)*100 + j; got[r][j] != want {
						t.Fatalf("n=%d f=%d: rec node %d dim %d got %d, want %d", n, f, r, j, got[r][j], want)
					}
				}
			}
		}
	}
}

// TestFTCleanViewIsPlain checks the fast path: a clean view plans to nil and
// the FT wrappers then produce the exact schedule of the plain exchanges —
// identical results and identical Stats.
func TestFTCleanViewIsPlain(t *testing.T) {
	d := topology.MustDualCube(3)
	view := fault.NewView(d, nil)
	for j := 0; j < d.RecDims(); j++ {
		p, err := PlanDimExchangeFT(d, view, j)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			t.Fatalf("j=%d: clean view produced a non-nil plan", j)
		}
	}
	program := func(ft bool) (stats machine.Stats, out []int) {
		eng := machine.MustNew[int](d, machine.Config{})
		defer eng.Release()
		out = make([]int, d.Nodes())
		stats, err := eng.Run(func(c *machine.Ctx[int]) {
			r := d.ToRecursive(c.ID())
			acc := 0
			for j := 0; j < d.RecDims(); j++ {
				if ft {
					acc += DimExchangeFT(c, d, j, r, nil)
				} else {
					acc += DimExchange(c, d, j, r)
				}
			}
			out[r] = acc
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats, out
	}
	plainStats, plain := program(false)
	ftStats, ftOut := program(true)
	if plainStats != ftStats {
		t.Errorf("fault-free FT stats diverge from plain:\n  plain: %+v\n  ft:    %+v", plainStats, ftStats)
	}
	for r := range plain {
		if plain[r] != ftOut[r] {
			t.Fatalf("rec node %d: plain %d, ft %d", r, plain[r], ftOut[r])
		}
	}
}
