package dcomm

import (
	"testing"

	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

func TestCyclesForDim(t *testing.T) {
	if CyclesForDim(0) != 1 {
		t.Error("dim 0 should cost 1 cycle")
	}
	for j := 1; j < 9; j++ {
		if CyclesForDim(j) != 3 {
			t.Errorf("dim %d should cost 3 cycles", j)
		}
	}
}

func TestClusterAndCrossExchange(t *testing.T) {
	d := topology.MustDualCube(3)
	eng := machine.MustNew[int](d, machine.Config{})
	got := make([][]int, d.Nodes())
	st, err := eng.Run(func(c *machine.Ctx[int]) {
		u := c.ID()
		var res []int
		for i := 0; i < d.ClusterDim(); i++ {
			res = append(res, ClusterExchange(c, d, i, u))
		}
		res = append(res, CrossExchange(c, d, u))
		got[u] = res
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != d.ClusterDim()+1 {
		t.Errorf("cycles = %d", st.Cycles)
	}
	for u := 0; u < d.Nodes(); u++ {
		for i := 0; i < d.ClusterDim(); i++ {
			if got[u][i] != d.ClusterNeighbor(u, i) {
				t.Fatalf("node %d dim %d: got %d", u, i, got[u][i])
			}
		}
		if got[u][d.ClusterDim()] != d.CrossNeighbor(u) {
			t.Fatalf("node %d cross: got %d", u, got[u][d.ClusterDim()])
		}
	}
}

// TestDimExchangeAllDims checks that the parallel dimension-j exchange
// delivers exactly the dimension-j partner's value to every node, for
// every recursive dimension, and that the cycle counts match CyclesForDim.
func TestDimExchangeAllDims(t *testing.T) {
	for n := 1; n <= 4; n++ {
		d := topology.MustDualCube(n)
		for j := 0; j < d.RecDims(); j++ {
			eng := machine.MustNew[int](d, machine.Config{})
			got := make([]int, d.Nodes())
			st, err := eng.Run(func(c *machine.Ctx[int]) {
				r := d.ToRecursive(c.ID())
				got[r] = DimExchange(c, d, j, r*10+1)
			})
			if err != nil {
				t.Fatalf("n=%d j=%d: %v", n, j, err)
			}
			for r := 0; r < d.Nodes(); r++ {
				want := (r^1<<j)*10 + 1
				if got[r] != want {
					t.Fatalf("n=%d j=%d: rec node %d got %d, want %d", n, j, r, got[r], want)
				}
			}
			if st.Cycles != CyclesForDim(j) {
				t.Errorf("n=%d j=%d: cycles %d, want %d", n, j, st.Cycles, CyclesForDim(j))
			}
		}
	}
}

// TestDimExchangeSequence runs all dimensions back to back in one program
// (the way the sort uses it) to confirm the protocol leaves links clean
// between steps.
func TestDimExchangeSequence(t *testing.T) {
	d := topology.MustDualCube(3)
	eng := machine.MustNew[int](d, machine.Config{})
	sum := make([]int, d.Nodes())
	_, err := eng.Run(func(c *machine.Ctx[int]) {
		r := d.ToRecursive(c.ID())
		acc := 0
		for j := 0; j < d.RecDims(); j++ {
			acc += DimExchange(c, d, j, r)
		}
		sum[r] = acc
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < d.Nodes(); r++ {
		want := 0
		for j := 0; j < d.RecDims(); j++ {
			want += r ^ 1<<j
		}
		if sum[r] != want {
			t.Fatalf("rec node %d: %d, want %d", r, sum[r], want)
		}
	}
}
