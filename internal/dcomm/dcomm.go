// Package dcomm provides the elementary dual-cube communication steps that
// the paper's algorithms are built from, expressed against the machine
// engine: intra-cluster and cross-edge exchanges (the cluster technique of
// Section 3) and the recursive-dimension pairwise exchange with its
// three-cycle relay schedule (the recursive technique of Sections 4 and 6).
package dcomm

import (
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// ClusterExchange performs the bidirectional exchange with this node's
// neighbor along cluster dimension i (0 <= i < n-1). One clock cycle.
func ClusterExchange[T any](c *machine.Ctx[T], d *topology.DualCube, i int, v T) T {
	return c.Exchange(d.ClusterNeighbor(c.ID(), i), v)
}

// CrossExchange performs the bidirectional exchange over this node's
// cross-edge. One clock cycle.
func CrossExchange[T any](c *machine.Ctx[T], d *topology.DualCube, v T) T {
	return c.Exchange(d.CrossNeighbor(c.ID()), v)
}

// CyclesForDim returns the clock cycles a parallel dimension-j exchange
// takes on D_n: 1 for the cross-edge dimension (j = 0, all pairs direct),
// 3 otherwise (Section 6: "a parallel compare-and-exchange operation for
// all pairs of nodes at the ith dimension takes three time-units", because
// half the pairs must route through two cross-edges).
func CyclesForDim(j int) int {
	if j == 0 {
		return 1
	}
	return 3
}

// DimExchange performs the parallel recursive-dimension-j exchange: every
// node sends its value to its dimension-j partner (in recursive ID space)
// and receives the partner's value. All nodes of the machine must call it
// with the same j in the same cycle.
//
// Schedule (j > 0). Let w be a node whose class parity matches j (so
// {w, w_j} is a direct link) and v = w's cross neighbor (whose pair needs
// the 3-hop route v → w → w_j → v_j):
//
//	cycle 1: w sends its own value on the j-link and receives both its
//	         partner's value (j-link) and v's foreign value (cross-edge);
//	         v sends its value over the cross-edge.
//	cycle 2: w relays the foreign value on the j-link and receives the
//	         foreign value relayed by its partner; v is idle.
//	cycle 3: w returns the relayed value over the cross-edge; v receives
//	         its partner's value.
//
// Every directed link carries at most one message per cycle and every node
// sends at most once per cycle; relay nodes receive on two links in cycle 1
// (the bidirectional-channel allowance). For j = 0 all pairs are direct
// cross-edges and the exchange is a single cycle.
func DimExchange[T any](c *machine.Ctx[T], d *topology.DualCube, j int, v T) T {
	u := c.ID()
	cross := d.CrossNeighbor(u)
	if j == 0 {
		return c.Exchange(cross, v)
	}
	r := d.ToRecursive(u)
	if d.RecDirect(r, j) {
		jp := d.FromRecursive(r ^ 1<<j)
		own, foreign := c.SendRecv2(jp, v, jp, cross) // cycle 1
		relayed := c.SendRecv(jp, foreign, jp)        // cycle 2
		c.Send(cross, relayed)                        // cycle 3
		return own
	}
	c.Send(cross, v) // cycle 1
	c.Idle()         // cycle 2
	return c.Recv(cross)
}
