// Package dcomm provides the elementary dual-cube communication steps that
// the paper's algorithms are built from, expressed against the machine
// engine: intra-cluster and cross-edge exchanges (the cluster technique of
// Section 3) and the recursive-dimension pairwise exchange with its
// three-cycle relay schedule (the recursive technique of Sections 4 and 6).
package dcomm

import (
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// ClusterExchange performs the bidirectional exchange with this node's
// neighbor along cluster dimension i (0 <= i < n-1). One clock cycle.
func ClusterExchange[T any](c *machine.Ctx[T], d topology.Comm, i int, v T) T {
	return c.Exchange(d.ClusterNeighbor(c.ID(), i), v)
}

// CrossExchange performs the bidirectional exchange over this node's
// cross-edge. One clock cycle.
func CrossExchange[T any](c *machine.Ctx[T], d topology.Comm, v T) T {
	return c.Exchange(d.CrossNeighbor(c.ID()), v)
}

// CyclesForDim returns the clock cycles a parallel dimension-j exchange
// takes on D_n: 1 for the cross-edge dimension (j = 0, all pairs direct),
// 3 otherwise (Section 6: "a parallel compare-and-exchange operation for
// all pairs of nodes at the ith dimension takes three time-units", because
// half the pairs must route through two cross-edges).
func CyclesForDim(j int) int {
	if j == 0 {
		return 1
	}
	return 3
}

// DimExchange performs the parallel recursive-dimension-j exchange: every
// node sends its value to its dimension-j partner (in recursive ID space)
// and receives the partner's value. It is machine.RecDimExchange — the
// choreography moved into the machine package when the sort schedules were
// compiled to StepRecDim steps, and this alias remains for the algorithms
// that still drive engines directly (DSortLarge's merge-split rounds and
// the fault-tolerant DimExchangeFT fallback path).
func DimExchange[T any](c *machine.Ctx[T], d topology.Recursive, j int, v T) T {
	return machine.RecDimExchange(c, d, j, v)
}
