package dcomm

import (
	"strings"
	"testing"

	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// TestCompiledUnknownOp checks that an out-of-enum operation surfaces as a
// returned error — not a panic, and not a cache slot index crash.
func TestCompiledUnknownOp(t *testing.T) {
	d := topology.MustDualCube(3)
	for _, op := range []Op{OpEnd, Op(200)} {
		sch, err := Compiled(d, op)
		if err == nil {
			t.Fatalf("Compiled(d, %d) = %v, want error", uint8(op), sch)
		}
		if !strings.Contains(err.Error(), "no schedule builder") {
			t.Errorf("Compiled(d, %d) error = %q, want mention of missing builder", uint8(op), err)
		}
	}
}

// TestCompiledAllOps checks every enum operation compiles, is cached (the
// second call returns the identical pointer) and is finalized.
func TestCompiledAllOps(t *testing.T) {
	d := topology.MustDualCube(3)
	for op := OpPrefix; op < OpEnd; op++ {
		sch, err := Compiled(d, op)
		if err != nil {
			t.Fatalf("Compiled(d, %s): %v", op, err)
		}
		again, err := Compiled(d, op)
		if err != nil || again != sch {
			t.Errorf("Compiled(d, %s) second call = (%p, %v), want cached %p", op, again, err, sch)
		}
		for i := range sch.Steps {
			if st := &sch.Steps[i]; st.Kind != machine.StepLocalCombine && st.Partners() == nil {
				t.Errorf("%s step %d not finalized", sch.Name, i)
			}
		}
	}
}
