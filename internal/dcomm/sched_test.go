package dcomm

import (
	"strings"
	"sync"
	"testing"

	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// TestCompiledUnknownOp checks that an out-of-enum operation surfaces as a
// returned error — not a panic, and not a cache slot index crash.
func TestCompiledUnknownOp(t *testing.T) {
	d := topology.MustDualCube(3)
	for _, op := range []Op{OpEnd, Op(200)} {
		sch, err := Compiled(d, op)
		if err == nil {
			t.Fatalf("Compiled(d, %d) = %v, want error", uint8(op), sch)
		}
		if !strings.Contains(err.Error(), "no schedule builder") {
			t.Errorf("Compiled(d, %d) error = %q, want mention of missing builder", uint8(op), err)
		}
	}
}

// TestCompiledAllOps checks every enum operation compiles, is cached (the
// second call returns the identical pointer) and is finalized.
func TestCompiledAllOps(t *testing.T) {
	d := topology.MustDualCube(3)
	for op := OpPrefix; op < OpEnd; op++ {
		sch, err := Compiled(d, op)
		if err != nil {
			t.Fatalf("Compiled(d, %s): %v", op, err)
		}
		again, err := Compiled(d, op)
		if err != nil || again != sch {
			t.Errorf("Compiled(d, %s) second call = (%p, %v), want cached %p", op, again, err, sch)
		}
		for i := range sch.Steps {
			if st := &sch.Steps[i]; st.Kind != machine.StepLocalCombine && st.Partners() == nil {
				t.Errorf("%s step %d not finalized", sch.Name, i)
			}
		}
	}
}

// TestCompiledTopologyKeyedCache checks the schedule cache is keyed by
// (family, order, op): every family gets its own entry, and two distinct
// Comm values of the same family and order share one compiled schedule —
// the key is structural, not the instance pointer.
func TestCompiledTopologyKeyedCache(t *testing.T) {
	byFamily := make(map[string]*machine.Schedule)
	for _, fam := range topology.Families() {
		c, err := topology.CommByID(fam, 3)
		if err != nil {
			t.Fatal(err)
		}
		sch, err := Compiled(c, OpPrefix)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		for prev, other := range byFamily {
			if other == sch {
				t.Errorf("families %s and %s share a cache entry", prev, fam)
			}
		}
		byFamily[fam] = sch
	}
	fresh, err := Compiled(topology.MustZCube(3), OpPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != byFamily["zcube"] {
		t.Error("a fresh Z_3 instance missed the (zcube, 3, prefix) cache entry")
	}
}

// TestCompiledConcurrentWarm hammers the topology-keyed schedule cache from
// concurrent goroutines warming every (family, order, op) cell; run under
// -race this proves the cache's lock discipline, and every call for one cell
// must observe the same compiled schedule pointer.
func TestCompiledConcurrentWarm(t *testing.T) {
	type cell struct {
		fam string
		n   int
		op  Op
	}
	var cells []cell
	for _, fam := range topology.Families() {
		for n := 2; n <= 4; n++ {
			for op := OpPrefix; op < OpEnd; op++ {
				cells = append(cells, cell{fam, n, op})
			}
		}
	}
	const workers = 8
	got := make([][]*machine.Schedule, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]*machine.Schedule, len(cells))
			for i, cl := range cells {
				c, err := topology.CommByID(cl.fam, cl.n)
				if err != nil {
					t.Errorf("%s D_%d: %v", cl.fam, cl.n, err)
					return
				}
				sch, err := Compiled(c, cl.op)
				if err != nil {
					t.Errorf("%s D_%d %s: %v", cl.fam, cl.n, cl.op, err)
					return
				}
				out[i] = sch
			}
			got[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if got[w] == nil || got[0] == nil {
			continue // a goroutine already reported its failure
		}
		for i, cl := range cells {
			if got[w][i] != got[0][i] {
				t.Fatalf("%s D_%d %s: goroutines observed distinct schedules %p and %p",
					cl.fam, cl.n, cl.op, got[0][i], got[w][i])
			}
		}
	}
}
