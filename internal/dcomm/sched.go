package dcomm

import (
	"fmt"
	"sort"
	"sync"

	"dualcube/internal/fault"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// Op names one operation whose communication skeleton is compiled to a
// machine.Schedule. The cluster-technique collectives compile to
// StepClusterDim/StepCrossHop sequences; the recursive-technique D_sort
// compiles its 3-cycle DimExchange rounds to StepRecDim steps (OpDSort).
// Only the transient fault machinery (DimExchangeFT) remains outside the IR.
type Op uint8

const (
	// OpPrefix is Algorithm 2: ascending cluster sweep, cross hop, ascending
	// sweep of the received totals, cross hop, class-1 local fold.
	OpPrefix Op = iota
	// OpAllReduce is the all-reduce: two ascending sweeps bracketed by cross
	// hops, plus the final local class-total combine.
	OpAllReduce
	// OpBroadcast is the binomial flood: ascending sweeps and cross hops,
	// no local round.
	OpBroadcast
	// OpGather collects toward a root: descending (fan-in) sweeps and cross
	// hops.
	OpGather
	// OpScatter is Gather's mirror: cross hop first, then ascending
	// (fan-out) sweeps.
	OpScatter
	// OpAllGather doubles bundles along ascending sweeps and cross hops,
	// plus a final local merge round.
	OpAllGather
	// OpAllToAll is the dimension-ordered personalized exchange: ascending
	// routing sweeps and cross hops.
	OpAllToAll
	// OpDSort is Algorithm 3 (D_sort): the flattened bitonic-merge ladder of
	// recursive-dimension compare-exchanges — one cross step for dimension 0
	// and a 3-cycle StepRecDim per higher dimension — 2n²-n compare-exchange
	// steps, 6n²-7n+2 communication cycles (Theorem 2).
	OpDSort
	opCount
	// OpEnd is one past the last operation, for iterating all schedules
	// (for op := OpPrefix; op < OpEnd; op++).
	OpEnd = opCount
)

// String returns the operation name used in schedule labels.
func (op Op) String() string {
	switch op {
	case OpPrefix:
		return "prefix"
	case OpAllReduce:
		return "allreduce"
	case OpBroadcast:
		return "broadcast"
	case OpGather:
		return "gather"
	case OpScatter:
		return "scatter"
	case OpAllGather:
		return "allgather"
	case OpAllToAll:
		return "alltoall"
	case OpDSort:
		return "dsort"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// schedKey identifies one compiled schedule: a topology family at a
// dual-cube order, and an operation. Keying by (family, order) instead of a
// concrete topology pointer lets every Comm implementation share the cache
// machinery, and the small struct key makes the lookup allocation-free.
type schedKey struct {
	family string
	order  int
	op     Op
}

// schedCache holds the compiled fault-free schedule per (topology, op).
// Schedules are immutable and tiny (one Step per communication round), so
// they are built at most once per process and shared by every run. A plain
// map behind an RWMutex (rather than sync.Map) keeps the hot-path read
// allocation-free: sync.Map would box the struct key on every Load, which
// the ≤16 allocs/op direct-executor guards cannot afford.
var (
	schedMu    sync.RWMutex
	schedCache = make(map[schedKey]*machine.Schedule)
)

// Compiled returns the cached fault-free schedule of op on c, building it on
// first use. Any Comm family works — dual-cube, odd-dimensional hypercube,
// Z-cube — and each (family, order, op) cell is compiled at most once, with
// first-store-wins keeping the published pointer stable under concurrent
// warm-up. The returned Schedule is shared and must not be mutated; use
// RewriteFT to derive a fault-annotated variant. An error means op names no
// schedule-compiled operation (a value outside the Op enum) or the topology
// lacks the structure op needs; nothing is cached in that case.
func Compiled(c topology.Comm, op Op) (*machine.Schedule, error) {
	if op >= opCount {
		return nil, fmt.Errorf("dcomm: no schedule builder for %s", op)
	}
	key := schedKey{family: c.Family(), order: c.Order(), op: op}
	schedMu.RLock()
	sch := schedCache[key]
	schedMu.RUnlock()
	if sch != nil {
		return sch, nil
	}
	sch, err := buildSchedule(c, op)
	if err != nil {
		return nil, err
	}
	schedMu.Lock()
	if prior, ok := schedCache[key]; ok {
		sch = prior // a concurrent build won the race: keep its pointer
	} else {
		schedCache[key] = sch
	}
	schedMu.Unlock()
	return sch, nil
}

// MustCompiled is Compiled, panicking on error. Intended for tests and
// examples where op is a literal enum value.
func MustCompiled(c topology.Comm, op Op) *machine.Schedule {
	sch, err := Compiled(c, op)
	if err != nil {
		panic(err)
	}
	return sch
}

// buildSchedule lays out the cluster-technique skeleton of op on c. The
// pattern id of a step is its cluster dimension, or ClusterDim(c) for the
// cross matching — steps with equal pattern use the identical matching.
// Nothing here is dual-cube-specific: the steps are expressed entirely in
// the Comm decomposition (cluster dimensions, the cross matching, recursive
// dimensions), so one builder serves every family.
func buildSchedule(c topology.Comm, op Op) (*machine.Schedule, error) {
	m := c.ClusterDim()
	sch := &machine.Schedule{Name: fmt.Sprintf("%s/%s", op, c.Name()), D: c}
	cluster := func(dim int) {
		sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepClusterDim, Dim: dim, Pattern: dim})
	}
	ascend := func() {
		for i := 0; i < m; i++ {
			cluster(i)
		}
	}
	descend := func() {
		for i := m - 1; i >= 0; i-- {
			cluster(i)
		}
	}
	cross := func() {
		sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepCrossHop, Dim: -1, Pattern: m})
	}
	local := func() {
		sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepLocalCombine, Dim: -1, Pattern: -1})
	}

	switch op {
	case OpPrefix, OpAllReduce, OpAllGather:
		ascend()
		cross()
		ascend()
		cross()
		local()
	case OpBroadcast, OpAllToAll:
		ascend()
		cross()
		ascend()
		cross()
	case OpGather:
		descend()
		cross()
		descend()
		cross()
	case OpScatter:
		cross()
		ascend()
		cross()
		ascend()
	case OpDSort:
		// Algorithm 3 flattened: the dimension-0 merge, then per level
		// l = 2..n a half-merge over dims 2l-3..0 and a final merge over
		// dims 2l-2..0. Dimension 0 is a plain cross hop; every higher
		// dimension is a 3-cycle recursive-dimension exchange. Patterns
		// offset by m so RecDim matchings never collide with the cross hop.
		if _, ok := c.(topology.Recursive); !ok {
			return nil, fmt.Errorf("dcomm: %s has no recursive presentation; dsort needs a topology.Recursive", c.Name())
		}
		recDim := func(j int) {
			if j == 0 {
				cross()
				return
			}
			sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepRecDim, Dim: j, Pattern: m + j})
		}
		n := c.Order()
		recDim(0)
		for l := 2; l <= n; l++ {
			for j := 2*l - 3; j >= 0; j-- {
				recDim(j)
			}
			for j := 2*l - 2; j >= 0; j-- {
				recDim(j)
			}
		}
	default:
		return nil, fmt.Errorf("dcomm: no schedule builder for %s", op)
	}
	sch.Finalize()
	return sch, nil
}

// cubeSortCache holds the compiled bitonic-sort schedule per topology,
// keyed by the topology name (unique per family and size), mirroring
// schedCache's locking and first-store-wins discipline.
var (
	cubeSortMu    sync.RWMutex
	cubeSortCache = make(map[string]*machine.Schedule)
)

// CompiledCubeSort returns the cached bitonic-sort schedule on t: stages
// k = 1..q, each a descending sweep of StepBitDim exchanges over dimensions
// k-1..0 — q(q+1)/2 compare-exchange steps, q = log2(t.Nodes()). The
// direction bits live in the sort kernel, not the schedule, so one schedule
// serves both orders. A single-node network compiles to the empty schedule.
//
// Any topology whose bit-dimension matchings are all edges works (the
// hypercube, of any dimension — even ones included, unlike the Comm
// surface); the builder verifies every u—u^2^j pair before caching and
// returns an error for networks such as the dual-cube or Z-cube whose edge
// set does not contain all bit flips.
func CompiledCubeSort(t topology.Topology) (*machine.Schedule, error) {
	name := t.Name()
	cubeSortMu.RLock()
	sch := cubeSortCache[name]
	cubeSortMu.RUnlock()
	if sch != nil {
		return sch, nil
	}
	N := t.Nodes()
	q := 0
	for 1<<q < N {
		q++
	}
	if 1<<q != N {
		return nil, fmt.Errorf("dcomm: cubesort needs a power-of-two node count, %s has %d", name, N)
	}
	for j := 0; j < q; j++ {
		for u := 0; u < N; u++ {
			if w := u ^ 1<<j; u < w && !t.HasEdge(u, w) {
				return nil, fmt.Errorf("dcomm: cubesort needs every bit-dimension matching to be links, but %d-%d (dimension %d) is not a link of %s", u, w, j, name)
			}
		}
	}
	sch = &machine.Schedule{Name: fmt.Sprintf("cubesort/%s", name), Topo: t}
	for k := 1; k <= q; k++ {
		for j := k - 1; j >= 0; j-- {
			sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepBitDim, Dim: j, Pattern: j})
		}
	}
	sch.Finalize()
	cubeSortMu.Lock()
	if prior, ok := cubeSortCache[name]; ok {
		sch = prior
	} else {
		cubeSortCache[name] = sch
	}
	cubeSortMu.Unlock()
	return sch, nil
}

// RewriteFT derives the degraded-mode variant of a compiled schedule under a
// fault view: every exchange step whose matching is severed by the view is
// annotated with the broken-pair mask and the canonical detour relays, which
// the machine interpreter appends after the matched cycle. Steps sharing an
// exchange pattern share the annotation slices, so the repair schedule of a
// pattern is planned exactly once. A clean view returns sch itself.
//
// An error means the faults disconnect a severed pair entirely — impossible
// for f <= n-1 link faults (the link connectivity of D_n is n).
func RewriteFT(sch *machine.Schedule, view *fault.View) (*machine.Schedule, error) {
	if view.Clean() {
		return sch, nil
	}
	for i := range sch.Steps {
		switch sch.Steps[i].Kind {
		case machine.StepRecDim, machine.StepBitDim:
			return nil, fmt.Errorf("dcomm: %s: fault rewrite supports only cluster-technique schedules (step %d is %s)", sch.Name, i, sch.Steps[i].Kind)
		}
	}
	d := sch.D
	m := d.ClusterDim()

	// One annotation per exchange pattern, planned lazily.
	type annotation struct {
		broken  []bool
		detours []machine.Detour
		cycles  int
	}
	plans := make(map[int]*annotation, m+1)
	planFor := func(pattern int) (*annotation, error) {
		if a, ok := plans[pattern]; ok {
			return a, nil
		}
		partner := func(u int) int { return d.CrossNeighbor(u) }
		if pattern < m {
			partner = func(u int) int { return d.ClusterNeighbor(u, pattern) }
		}
		broken, dets, err := planMatching(d, view, partner)
		if err != nil {
			return nil, err
		}
		a := &annotation{broken: broken}
		for _, dt := range dets {
			a.detours = append(a.detours, machine.Detour{Path: dt.Path, Back: dt.back})
			a.cycles += 2 * (len(dt.Path) - 1)
		}
		plans[pattern] = a
		return a, nil
	}

	out := &machine.Schedule{Name: sch.Name + "+ft", D: d}
	out.Steps = append([]machine.Step(nil), sch.Steps...)
	for i := range out.Steps {
		s := &out.Steps[i]
		if s.Kind == machine.StepLocalCombine {
			continue
		}
		a, err := planFor(s.Pattern)
		if err != nil {
			return nil, err
		}
		if len(a.detours) > 0 || anyBroken(a.broken) {
			s.Broken = a.broken
			s.Detours = a.detours
			out.RepairCycles += a.cycles
		}
	}
	return out, nil
}

func anyBroken(broken []bool) bool {
	for _, b := range broken {
		if b {
			return true
		}
	}
	return false
}

// planMatching computes the broken-pair mask and the canonical detour list
// of one perfect matching under view: pairs are visited in ascending lower
// endpoint order and repaired over the deterministic shortest alive path all
// nodes agree on, sorted by normalized endpoints — the serial repair order
// every node executes identically. The repair paths come from the view's
// BFS over the full topology, so families with extra links beyond the
// decomposition (the hypercube's unused dimensions, the Z-cube's foreign
// links) get correspondingly shorter detours.
func planMatching(t topology.Topology, view *fault.View, partner func(u int) int) ([]bool, []Detour, error) {
	broken := make([]bool, t.Nodes())
	var dets []Detour
	for u := 0; u < t.Nodes(); u++ {
		w := partner(u)
		if u < w && view.LinkDown(u, w) {
			pair := fault.Link{U: u, V: w}.Normalize()
			path := view.Path(pair.U, pair.V)
			if path == nil {
				return nil, nil, fmt.Errorf("dcomm: faults disconnect %d and %d, no repair path exists", pair.U, pair.V)
			}
			broken[u], broken[w] = true, true
			back := make([]int, len(path))
			for i, x := range path {
				back[len(path)-1-i] = x
			}
			dets = append(dets, Detour{Pair: pair, Path: path, back: back})
		}
	}
	sort.Slice(dets, func(i, j int) bool {
		a, b := dets[i].Pair, dets[j].Pair
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	return broken, dets, nil
}

// PatternDetours enumerates a fault-rewritten schedule's repair relays once
// per exchange pattern (steps reusing a pattern share detours, so iterating
// steps directly would double-count). The fault-free schedule yields none.
func PatternDetours(sch *machine.Schedule) []machine.Detour {
	seen := make(map[int]bool)
	var out []machine.Detour
	for i := range sch.Steps {
		s := &sch.Steps[i]
		if s.Kind == machine.StepLocalCombine || seen[s.Pattern] {
			continue
		}
		seen[s.Pattern] = true
		out = append(out, s.Detours...)
	}
	return out
}
