package sortnet

import (
	"fmt"

	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// This file is the batched counterpart of kernel.go: Algorithm 3's
// compare-exchange ladder widened to k independent lanes per node. Every
// lane sorts its own key vector over the one compiled OpDSort schedule, and
// because the direction plan resolves per lane — the dirByOrder steps of
// the outermost merge read the lane's requested Order — ascending and
// descending requests coalesce into the same pass. Lane l's compares are
// identical statement for statement with exchKernel's, so the batched sort
// is byte-identical to k unbatched DSort calls (the lanes differential
// tests enforce it).

// LaneSortKernel is exchKernel over k-wide rows on the dual-cube.
type LaneSortKernel[K any] struct {
	less  func(a, b K) bool
	ords  []Order // per-lane direction for the dirByOrder steps
	id    []int32
	k     int
	key   []K // node-major k-wide current keys
	metas []exchMeta
	lanes *machine.Lanes[K]
}

// NewLaneSortKernel builds the batched D_sort kernel: lane l sorts keys[l]
// (given in recursive-ID order) in direction ords[l]. Every key vector must
// hold one key per node of d; lanes must be at least len(keys) wide.
func NewLaneSortKernel[K any](d *topology.DualCube, lanes *machine.Lanes[K], keys [][]K, less func(a, b K) bool, ords []Order) (*LaneSortKernel[K], error) {
	if len(keys) != len(ords) {
		return nil, fmt.Errorf("sortnet: %d key lanes with %d directions", len(keys), len(ords))
	}
	for _, ord := range ords {
		if err := validOrder(ord); err != nil {
			return nil, err
		}
	}
	plan := dsortPlanFor(d)
	k := len(keys)
	key := make([]K, d.Nodes()*k)
	for u := 0; u < d.Nodes(); u++ {
		r := plan.rec[u]
		for l := 0; l < k; l++ {
			key[u*k+l] = keys[l][r]
		}
	}
	return &LaneSortKernel[K]{
		less: less, ords: append([]Order(nil), ords...), id: plan.rec,
		k: k, key: key, metas: plan.metas, lanes: lanes,
	}, nil
}

func (lk *LaneSortKernel[K]) Produce(dc *machine.DirectCtx, step, u int) (machine.DirectRole, []K) {
	row := lk.lanes.Row(step, u)[:lk.k]
	copy(row, lk.key[u*lk.k:(u+1)*lk.k])
	return machine.DirectExchange, row
}

func (lk *LaneSortKernel[K]) Absorb(dc *machine.DirectCtx, step, u int, v []K) {
	meta := lk.metas[step]
	id := int(lk.id[u])
	dc.Ops(1)
	// Re-slice the key row and payload to the lane width up front so the
	// per-lane compare loops carry no bounds checks (escgate pins this).
	key := lk.key[u*lk.k:][:lk.k]
	v = v[:lk.k]
	if meta.dirBit >= 0 {
		// Direction by sort-ID bit: one keep-min decision covers every lane.
		if keepMinAt(id, int(meta.dim), Order(id>>meta.dirBit&1)) {
			for l, kv := range key {
				if lk.less(v[l], kv) {
					key[l] = v[l]
				}
			}
		} else {
			for l, kv := range key {
				if lk.less(kv, v[l]) {
					key[l] = v[l]
				}
			}
		}
		return
	}
	// Outermost merge: direction is the lane's requested Order.
	ords := lk.ords[:lk.k]
	for l, kv := range key {
		if keepMinAt(id, int(meta.dim), ords[l]) {
			if lk.less(v[l], kv) {
				key[l] = v[l]
			}
		} else if lk.less(kv, v[l]) {
			key[l] = v[l]
		}
	}
}

func (lk *LaneSortKernel[K]) Local(dc *machine.DirectCtx, step, u int) {}

// Unload reads lane l's sorted keys back into out in sort-ID order.
func (lk *LaneSortKernel[K]) Unload(l int, out []K) []K {
	for u := 0; u < len(lk.key)/lk.k; u++ {
		out[lk.id[u]] = lk.key[u*lk.k+l]
	}
	return out
}
