package sortnet

import (
	"sync/atomic"

	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// This file is the compare-exchange kernel: the sort family expressed as a
// machine.DirectKernel over a compiled schedule. A sort schedule (dcomm's
// OpDSort on the dual-cube, CompiledCubeSort on the hypercube) fixes the
// communication pattern — which dimension each step exchanges — while the
// kernel supplies the data motion: every node produces its current key,
// absorbs the partner's, and keeps the min or the max as decided by
// keepMinAt over its sort ID and the step's direction bit. The direction
// plan (which recursive-ID bit orients each step, or the caller's Order for
// the final merge) depends only on the machine order, so it is computed
// once per order and cached beside the compiled schedule.

// exchMeta is the per-step half of the direction plan: the dimension the
// step compares on and the sort-ID bit that orients the merge. dirBit is
// dirByOrder for the steps of the outermost merge, where the caller's
// requested Order applies instead of an ID bit.
type exchMeta struct {
	dim    int8
	dirBit int8
}

// dirByOrder marks a step oriented by the requested Order (the paper's tag)
// rather than by a sort-ID bit.
const dirByOrder = -1

// dsortPlan is the cached direction plan of D_sort on one order: the step
// metas of Algorithm 3's flattened ladder plus the node-ID → recursive-ID
// table (the sort ID space of the dual-cube).
type dsortPlan struct {
	metas []exchMeta
	rec   []int32
}

var dsortPlans [topology.MaxDualCubeOrder + 1]atomic.Pointer[dsortPlan]

// dsortPlanFor returns the cached direction plan of D_sort on d, building
// it on first use. The plan depends only on the order: every Comm family
// shares the dual-cube recursive presentation (the hypercube and Z-cube
// delegate to their spanning skeleton), so one cache slot per order serves
// all of them. The meta sequence mirrors dcomm's OpDSort schedule step
// for step: the level-1 base sort, then per level l a half-merge oriented by
// recursive bit 2l-2 and a final merge oriented by bit 2l-1 (the enclosing
// quarter's alternation) — or by the requested Order at the top level.
func dsortPlanFor(d topology.Recursive) *dsortPlan {
	slot := &dsortPlans[d.Order()]
	if p := slot.Load(); p != nil {
		return p
	}
	n := d.Order()
	p := &dsortPlan{rec: make([]int32, d.Nodes())}
	for u := range p.rec {
		p.rec[u] = int32(d.ToRecursive(u))
	}
	add := func(dim, dirBit int) {
		p.metas = append(p.metas, exchMeta{dim: int8(dim), dirBit: int8(dirBit)})
	}
	if n == 1 {
		add(0, dirByOrder)
	} else {
		add(0, 1)
	}
	for l := 2; l <= n; l++ {
		for j := 2*l - 3; j >= 0; j-- {
			add(j, 2*l-2)
		}
		dir := dirByOrder
		if l < n {
			dir = 2*l - 1
		}
		for j := 2*l - 2; j >= 0; j-- {
			add(j, dir)
		}
	}
	if slot.CompareAndSwap(nil, p) {
		return p
	}
	return slot.Load()
}

var cubeSortMetas [topology.MaxHypercubeDim + 1]atomic.Pointer[[]exchMeta]

// cubeSortMetasFor returns the cached direction plan of Batcher's bitonic
// sort on Q_q: stage k compares dimensions k-1..0 oriented by node bit k
// (the 2^k-block alternation), with the final stage oriented by the
// requested Order. The hypercube's sort IDs are the node IDs themselves.
func cubeSortMetasFor(q int) []exchMeta {
	slot := &cubeSortMetas[q]
	if m := slot.Load(); m != nil {
		return *m
	}
	metas := make([]exchMeta, 0, q*(q+1)/2)
	for k := 1; k <= q; k++ {
		dir := dirByOrder
		if k < q {
			dir = k
		}
		for j := k - 1; j >= 0; j-- {
			metas = append(metas, exchMeta{dim: int8(j), dirBit: int8(dir)})
		}
	}
	if slot.CompareAndSwap(nil, &metas) {
		return metas
	}
	return *slot.Load()
}

// exchKernel runs a direction plan as a DirectKernel: one compare-exchange
// per schedule step. key holds each node's current key indexed by node ID;
// id maps node IDs to sort IDs (nil for the hypercube, whose node IDs are
// the sort IDs). snaps, when non-nil, receives the Figure 5/6 trace: one
// key snapshot per step, indexed by sort ID.
type exchKernel[K any] struct {
	less  func(a, b K) bool
	ord   Order
	id    []int32
	key   []K
	metas []exchMeta
	snaps []*Step[K]
}

func (ek *exchKernel[K]) sortID(u int) int {
	if ek.id == nil {
		return u
	}
	return int(ek.id[u])
}

func (ek *exchKernel[K]) Produce(dc *machine.DirectCtx, k, u int) (machine.DirectRole, K) {
	return machine.DirectExchange, ek.key[u]
}

func (ek *exchKernel[K]) Absorb(dc *machine.DirectCtx, k, u int, v K) {
	meta := ek.metas[k]
	id := ek.sortID(u)
	dir := ek.ord
	if meta.dirBit >= 0 {
		dir = Order(id >> meta.dirBit & 1)
	}
	dc.Ops(1)
	// The compare half of the exchange; ties keep the local key, which makes
	// the step deterministic for equal keys.
	key := ek.key[u]
	if keepMinAt(id, int(meta.dim), dir) {
		if ek.less(v, key) {
			key = v
		}
	} else if ek.less(key, v) {
		key = v
	}
	ek.key[u] = key
	if ek.snaps != nil {
		ek.snaps[k].Keys[id] = key
	}
}

func (ek *exchKernel[K]) Local(dc *machine.DirectCtx, k, u int) {}

// newDSortKernel loads keys (given in recursive-ID order) onto the nodes of
// d and pairs them with the order's direction plan.
func newDSortKernel[K any](d topology.Recursive, keys []K, less func(a, b K) bool, ord Order, snaps []*Step[K]) *exchKernel[K] {
	plan := dsortPlanFor(d)
	key := make([]K, len(keys))
	for u := range key {
		key[u] = keys[plan.rec[u]]
	}
	return &exchKernel[K]{less: less, ord: ord, id: plan.rec, key: key, metas: plan.metas, snaps: snaps}
}

// unload reads the sorted keys back in sort-ID order.
func (ek *exchKernel[K]) unload(out []K) []K {
	for u := range ek.key {
		out[ek.sortID(u)] = ek.key[u]
	}
	return out
}
