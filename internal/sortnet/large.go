package sortnet

import (
	"fmt"
	"sort"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// mergeSplit merges two ascending runs of equal length k and returns the k
// smallest (low) or k largest (high) elements, themselves ascending. This
// is the block generalization of compare-and-exchange: substituting it for
// the scalar comparator in any sorting network sorts k·N keys, provided
// every block is pre-sorted.
func mergeSplit[K any](a, b []K, less func(x, y K) bool, low bool) []K {
	k := len(a)
	out := make([]K, k)
	if low {
		i, j := 0, 0
		for t := 0; t < k; t++ {
			if j >= len(b) || (i < len(a) && !less(b[j], a[i])) {
				out[t] = a[i]
				i++
			} else {
				out[t] = b[j]
				j++
			}
		}
		return out
	}
	i, j := len(a)-1, len(b)-1
	for t := k - 1; t >= 0; t-- {
		if j < 0 || (i >= 0 && !less(a[i], b[j])) {
			out[t] = a[i]
			i--
		} else {
			out[t] = b[j]
			j--
		}
	}
	return out
}

// DSortLarge generalizes D_sort to k keys per node (future-work item 1 of
// the paper): keys has length k·2^(2n-1); chunk r (in recursive-ID order)
// is placed on the node with recursive ID r. Each node sorts its chunk
// locally, then the D_sort network runs with merge-split in place of
// compare-and-exchange. The result is fully sorted in (recursive ID, chunk
// offset) order, ascending or descending per ord.
//
// Communication steps are identical to DSort (messages carry k keys);
// computation grows by the local sort and the k-element merges.
func DSortLarge[K any](n, k int, keys []K, less func(a, b K) bool, ord Order) ([]K, machine.Stats, error) {
	d, err := topology.Shared(n)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if k < 1 {
		return nil, machine.Stats{}, fmt.Errorf("sortnet: chunk size %d < 1", k)
	}
	if len(keys) != k*d.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("sortnet: %d keys != k*N = %d", len(keys), k*d.Nodes())
	}
	if err := validOrder(ord); err != nil {
		return nil, machine.Stats{}, err
	}
	out := make([]K, len(keys))
	eng, err := machine.New[[]K](d, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[[]K]) {
		r := d.ToRecursive(c.ID())
		chunk := append([]K(nil), keys[r*k:(r+1)*k]...)
		// Local pre-sort, always ascending; directions are handled by which
		// half each merge-split keeps.
		sort.SliceStable(chunk, func(i, j int) bool { return less(chunk[i], chunk[j]) })
		c.Ops(1)
		exch := func(j int, dir Order) {
			other := dcomm.DimExchange(c, d, j, chunk)
			chunk = mergeSplit(chunk, other, less, keepMinAt(r, j, dir))
			c.Ops(1)
		}
		for l := 1; l <= n; l++ {
			dir := ord
			if l < n {
				dir = Order(r >> (2*l - 1) & 1)
			}
			if l > 1 {
				for j := 2*l - 3; j >= 0; j-- {
					exch(j, Order(r>>(2*l-2)&1))
				}
			}
			for j := 2*l - 2; j >= 0; j-- {
				exch(j, dir)
			}
		}
		res := out[r*k : (r+1)*k]
		if ord == Descending {
			// Chunks are internally ascending; reverse each so the flat
			// output is globally descending.
			for i := range chunk {
				res[i] = chunk[k-1-i]
			}
		} else {
			copy(res, chunk)
		}
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// CubeSortLarge is the same generalization for the hypercube baseline:
// k keys per node of Q_q, bitonic sort with merge-split.
func CubeSortLarge[K any](q, k int, keys []K, less func(a, b K) bool, ord Order) ([]K, machine.Stats, error) {
	h, err := topology.NewHypercube(q)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if k < 1 {
		return nil, machine.Stats{}, fmt.Errorf("sortnet: chunk size %d < 1", k)
	}
	if len(keys) != k*h.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("sortnet: %d keys != k*N = %d", len(keys), k*h.Nodes())
	}
	if err := validOrder(ord); err != nil {
		return nil, machine.Stats{}, err
	}
	out := make([]K, len(keys))
	eng, err := machine.New[[]K](h, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, err
	}
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[[]K]) {
		u := c.ID()
		chunk := append([]K(nil), keys[u*k:(u+1)*k]...)
		sort.SliceStable(chunk, func(i, j int) bool { return less(chunk[i], chunk[j]) })
		c.Ops(1)
		for s := 1; s <= q; s++ {
			dir := ord
			if s < q {
				dir = Order(u >> s & 1)
			}
			for j := s - 1; j >= 0; j-- {
				other := c.Exchange(u^1<<j, chunk)
				chunk = mergeSplit(chunk, other, less, keepMinAt(u, j, dir))
				c.Ops(1)
			}
		}
		res := out[u*k : (u+1)*k]
		if ord == Descending {
			for i := range chunk {
				res[i] = chunk[k-1-i]
			}
		} else {
			copy(res, chunk)
		}
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}
