package sortnet

import (
	"math/rand"
	"testing"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// TestLaneSortMatchesUnbatched: a batched pass with mixed ascending and
// descending lanes must reproduce, per lane, exactly what DSort returns for
// that lane's keys and direction.
func TestLaneSortMatchesUnbatched(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	less := func(a, b int64) bool { return a < b }
	for _, n := range []int{2, 3, 4} {
		d := topology.MustDualCube(n)
		sch, err := dcomm.Compiled(d, dcomm.OpDSort)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 6, 8} {
			keys := make([][]int64, k)
			ords := make([]Order, k)
			for l := range keys {
				keys[l] = make([]int64, d.Nodes())
				for i := range keys[l] {
					keys[l][i] = int64(rng.Intn(1 << 12))
				}
				if l%2 == 1 {
					ords[l] = Descending
				}
			}
			lanes := machine.NewLanes[int64](d.Nodes(), k)
			kern, err := NewLaneSortKernel(d, lanes, keys, less, ords)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := dcomm.Execute(sch, machine.Config{}, kern); err != nil {
				t.Fatal(err)
			}
			for l := 0; l < k; l++ {
				want, _, err := DSort(n, keys[l], less, ords[l], nil)
				if err != nil {
					t.Fatal(err)
				}
				got := kern.Unload(l, make([]int64, d.Nodes()))
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d k=%d lane %d (%v): out[%d]=%d, want %d",
							n, k, l, ords[l], i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestLaneSortRejects pins the constructor's validation.
func TestLaneSortRejects(t *testing.T) {
	d := topology.MustDualCube(2)
	lanes := machine.NewLanes[int64](d.Nodes(), 2)
	less := func(a, b int64) bool { return a < b }
	keys := [][]int64{make([]int64, d.Nodes())}
	if _, err := NewLaneSortKernel(d, lanes, keys, less, []Order{Ascending, Descending}); err == nil {
		t.Fatal("mismatched lane count accepted")
	}
	if _, err := NewLaneSortKernel(d, lanes, keys, less, []Order{Order(7)}); err == nil {
		t.Fatal("invalid order accepted")
	}
}
