package sortnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dualcube/internal/machine"
	"dualcube/internal/seq"
)

func intLess(a, b int) bool { return a < b }

func checkSorted(t *testing.T, label string, in, got []int, ord Order) {
	t.Helper()
	if !seq.SameMultiset(in, got, intLess) {
		t.Fatalf("%s: output is not a permutation of the input\nin:  %v\nout: %v", label, in, got)
	}
	ok := seq.IsSorted(got, intLess)
	if ord == Descending {
		ok = seq.IsSortedDesc(got, intLess)
	}
	if !ok {
		t.Fatalf("%s: output not sorted %s: %v", label, ord, got)
	}
}

func TestCubeSortAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for q := 0; q <= 8; q++ {
		for _, ord := range []Order{Ascending, Descending} {
			in := make([]int, 1<<q)
			for i := range in {
				in[i] = rng.Intn(100)
			}
			got, st, err := CubeSort(q, in, intLess, ord)
			if err != nil {
				t.Fatalf("q=%d: %v", q, err)
			}
			checkSorted(t, "CubeSort", in, got, ord)
			if st.Cycles != CubeSortSteps(q) {
				t.Errorf("q=%d: comm %d, want %d", q, st.Cycles, CubeSortSteps(q))
			}
			if st.MaxOps != CubeSortSteps(q) {
				t.Errorf("q=%d: comparisons %d, want %d", q, st.MaxOps, CubeSortSteps(q))
			}
		}
	}
}

func TestCubeSortZeroOnePrinciple(t *testing.T) {
	// Exhaustive 0/1 inputs on Q_4: by the 0/1 principle this proves the
	// comparator network sorts arbitrary keys.
	q := 4
	N := 1 << q
	for mask := 0; mask < 1<<N; mask++ {
		in := make([]int, N)
		ones := 0
		for i := range in {
			in[i] = mask >> i & 1
			ones += in[i]
		}
		got, _, err := CubeSort(q, in, intLess, Ascending)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			want := 0
			if i >= N-ones {
				want = 1
			}
			if got[i] != want {
				t.Fatalf("mask %b: output %v", mask, got)
			}
		}
	}
}

func TestDSortD1(t *testing.T) {
	for _, tc := range []struct {
		in   []int
		ord  Order
		want []int
	}{
		{[]int{2, 1}, Ascending, []int{1, 2}},
		{[]int{1, 2}, Ascending, []int{1, 2}},
		{[]int{1, 2}, Descending, []int{2, 1}},
		{[]int{5, 5}, Ascending, []int{5, 5}},
	} {
		got, st, err := DSort(1, tc.in, intLess, tc.ord, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("DSort(D_1, %v, %v) = %v", tc.in, tc.ord, got)
			}
		}
		if st.Cycles != 1 || st.MaxOps != 1 {
			t.Errorf("D_1 stats: %+v", st)
		}
	}
}

func TestDSortD2Exhaustive(t *testing.T) {
	// All 8! permutations of 0..7 on D_2, both directions. Stronger than
	// the 0/1 principle and still fast.
	if testing.Short() {
		t.Skip("exhaustive permutation test skipped in -short mode")
	}
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	var rec func(k int)
	count := 0
	rec = func(k int) {
		if k == len(perm) {
			count++
			in := append([]int(nil), perm...)
			got, _, err := DSort(2, in, intLess, Ascending, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != i {
					t.Fatalf("perm %v -> %v", in, got)
				}
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if count != 40320 {
		t.Fatalf("tested %d permutations", count)
	}
}

func TestDSortD2ExhaustiveDescending(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive permutation test skipped in -short mode")
	}
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			in := append([]int(nil), perm...)
			got, _, err := DSort(2, in, intLess, Descending, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != 7-i {
					t.Fatalf("perm %v -> %v", in, got)
				}
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
}

func TestDSortD3ZeroOnePrinciple(t *testing.T) {
	// Exhaustive 0/1 inputs on D_3 (2^32 is too many; use all masks over a
	// reduced template instead: every 0/1 vector is determined by its
	// number of ones ONLY after sorting, but the network must handle every
	// arrangement — so we exhaust arrangements in two halves).
	// Full 2^32 is infeasible; instead exhaust all 0/1 vectors with
	// support confined to each aligned 16-node window, plus random masks.
	if testing.Short() {
		t.Skip("large 0/1 sweep skipped in -short mode")
	}
	N := 32
	run := func(in []int) {
		ones := 0
		for _, v := range in {
			ones += v
		}
		got, _, err := DSort(3, in, intLess, Ascending, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			want := 0
			if i >= N-ones {
				want = 1
			}
			if got[i] != want {
				t.Fatalf("0/1 input %v -> %v", in, got)
			}
		}
	}
	for lo := 0; lo < N; lo += 16 {
		for mask := 0; mask < 1<<16; mask += 7 { // stride keeps runtime sane
			in := make([]int, N)
			for i := 0; i < 16; i++ {
				in[lo+i] = mask >> i & 1
			}
			run(in)
		}
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		in := make([]int, N)
		for i := range in {
			in[i] = rng.Intn(2)
		}
		run(in)
	}
}

func TestDSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 5; n++ {
		N := 1 << (2*n - 1)
		for _, ord := range []Order{Ascending, Descending} {
			trials := 20
			if n >= 5 {
				trials = 3
			}
			for trial := 0; trial < trials; trial++ {
				in := make([]int, N)
				for i := range in {
					in[i] = rng.Intn(50) - 25
				}
				got, st, err := DSort(n, in, intLess, ord, nil)
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				checkSorted(t, "DSort", in, got, ord)
				if st.Cycles != DSortCommSteps(n) {
					t.Errorf("n=%d: comm %d, want %d", n, st.Cycles, DSortCommSteps(n))
				}
				if st.MaxOps != DSortCompSteps(n) {
					t.Errorf("n=%d: comparisons %d, want %d", n, st.MaxOps, DSortCompSteps(n))
				}
				if st.Cycles > PaperSortCommBound(n) {
					t.Errorf("n=%d: comm %d exceeds Theorem 2 bound %d", n, st.Cycles, PaperSortCommBound(n))
				}
				if st.MaxOps > PaperSortCompBound(n) {
					t.Errorf("n=%d: comp %d exceeds Theorem 2 bound %d", n, st.MaxOps, PaperSortCompBound(n))
				}
			}
		}
	}
}

func TestDSortAdversarialInputs(t *testing.T) {
	for n := 1; n <= 4; n++ {
		N := 1 << (2*n - 1)
		cases := map[string][]int{}
		asc := make([]int, N)
		desc := make([]int, N)
		equal := make([]int, N)
		organ := make([]int, N)
		dup := make([]int, N)
		for i := 0; i < N; i++ {
			asc[i] = i
			desc[i] = N - i
			equal[i] = 42
			if i < N/2 {
				organ[i] = i
			} else {
				organ[i] = N - i
			}
			dup[i] = i % 3
		}
		cases["already-sorted"] = asc
		cases["reverse-sorted"] = desc
		cases["all-equal"] = equal
		cases["organ-pipe"] = organ
		cases["heavy-duplicates"] = dup
		for label, in := range cases {
			got, _, err := DSort(n, in, intLess, Ascending, nil)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, label, err)
			}
			checkSorted(t, label, in, got, Ascending)
		}
	}
}

func TestDSortQuick(t *testing.T) {
	f := func(nSeed uint8, seed int64, descending bool) bool {
		n := int(nSeed)%3 + 1
		ord := Ascending
		if descending {
			ord = Descending
		}
		rng := rand.New(rand.NewSource(seed))
		in := make([]int, 1<<(2*n-1))
		for i := range in {
			in[i] = rng.Intn(1000)
		}
		got, _, err := DSort(n, in, intLess, ord, nil)
		if err != nil {
			return false
		}
		if !seq.SameMultiset(in, got, intLess) {
			return false
		}
		if ord == Descending {
			return seq.IsSortedDesc(got, intLess)
		}
		return seq.IsSorted(got, intLess)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDSortStructKeys(t *testing.T) {
	// Sorting records by a field, not just ints.
	type job struct {
		prio int
		name string
	}
	n := 2
	N := 1 << (2*n - 1)
	in := make([]job, N)
	for i := range in {
		in[i] = job{prio: (i*5 + 3) % N, name: string(rune('a' + i))}
	}
	got, _, err := DSort(n, in, func(a, b job) bool { return a.prio < b.prio }, Ascending, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < N; i++ {
		if got[i].prio < got[i-1].prio {
			t.Fatalf("records not sorted: %+v", got)
		}
	}
}

func TestDSortBadInput(t *testing.T) {
	if _, _, err := DSort(2, make([]int, 3), intLess, Ascending, nil); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := DSort(0, nil, intLess, Ascending, nil); err == nil {
		t.Error("order 0 should fail")
	}
}

func TestSortInvalidOrder(t *testing.T) {
	// Order(2) used to sort descending while labelling itself "asc"; every
	// entry point now rejects it with the uniform validation wording.
	const want = "sortnet: invalid Order(2): want Ascending or Descending"
	bad := Order(2)
	if _, _, err := DSort(2, make([]int, 8), intLess, bad, nil); err == nil || err.Error() != want {
		t.Errorf("DSort: err = %v, want %q", err, want)
	}
	if _, _, err := CubeSort(3, make([]int, 8), intLess, bad); err == nil || err.Error() != want {
		t.Errorf("CubeSort: err = %v, want %q", err, want)
	}
	if _, _, _, err := DSortRecorded(2, make([]int, 8), intLess, bad); err == nil || err.Error() != want {
		t.Errorf("DSortRecorded: err = %v, want %q", err, want)
	}
	if _, _, err := DSortLarge(2, 2, make([]int, 16), intLess, bad); err == nil || err.Error() != want {
		t.Errorf("DSortLarge: err = %v, want %q", err, want)
	}
	if _, _, err := CubeSortLarge(3, 2, make([]int, 16), intLess, bad); err == nil || err.Error() != want {
		t.Errorf("CubeSortLarge: err = %v, want %q", err, want)
	}
	// The trace must stay untouched when validation rejects the call.
	var tr Trace[int]
	if _, _, err := DSort(2, make([]int, 8), intLess, bad, &tr); err == nil {
		t.Error("traced DSort with invalid Order should fail")
	}
	if len(tr.Steps) != 0 {
		t.Errorf("trace has %d steps after rejected call", len(tr.Steps))
	}
}

func TestDSortTraceResetOnError(t *testing.T) {
	// A run that fails mid-program must not leave the trace populated with
	// preallocated zero-value snapshots (stale Figure 5/6 data).
	defer machine.SetDefaultFaults(nil)
	machine.SetDefaultFaults(&machine.FaultSpec{Links: [][2]int{{0, 1}}})
	in := []int{5, 3, 7, 1, 6, 0, 4, 2}
	var tr Trace[int]
	if _, _, err := DSort(2, in, intLess, Ascending, &tr); err == nil {
		t.Fatal("DSort under a permanent link fault should fail")
	}
	if len(tr.Steps) != 0 {
		t.Fatalf("trace has %d steps after failed run", len(tr.Steps))
	}
	// A pre-populated trace keeps its earlier entries and only drops the
	// failed run's snapshots.
	tr.Steps = append(tr.Steps, Step[int]{Label: "earlier"})
	if _, _, err := DSort(2, in, intLess, Ascending, &tr); err == nil {
		t.Fatal("DSort under a permanent link fault should fail")
	}
	if len(tr.Steps) != 1 || tr.Steps[0].Label != "earlier" {
		t.Fatalf("pre-existing trace entries clobbered: %+v", tr.Steps)
	}
	// And the same input succeeds with an intact trace once faults clear.
	machine.SetDefaultFaults(nil)
	tr = Trace[int]{}
	if _, _, err := DSort(2, in, intLess, Ascending, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != 1+DSortCompSteps(2) {
		t.Fatalf("trace has %d steps after clean run", len(tr.Steps))
	}
}

func TestDSortStepFormulas(t *testing.T) {
	// Closed forms vs the recurrences in the proof of Theorem 2.
	commRec, compRec := 1, 1
	for n := 2; n <= 10; n++ {
		commRec += 3*(2*n-3) + 1 + 3*(2*n-2) + 1
		compRec += (2*n - 2) + (2*n - 1)
		if commRec != DSortCommSteps(n) {
			t.Errorf("n=%d: comm closed form %d != recurrence %d", n, DSortCommSteps(n), commRec)
		}
		if compRec != DSortCompSteps(n) {
			t.Errorf("n=%d: comp closed form %d != recurrence %d", n, DSortCompSteps(n), compRec)
		}
		if DSortCommSteps(n) > PaperSortCommBound(n) {
			t.Errorf("n=%d: closed form exceeds paper bound", n)
		}
		if DSortCompSteps(n) > PaperSortCompBound(n) {
			t.Errorf("n=%d: comp closed form exceeds paper bound", n)
		}
	}
}

func TestDSortTraceFigures56(t *testing.T) {
	// Figures 5 and 6: D_sort(D_2, ascending) on 8 keys. The trace must
	// show (1) the four sorted D_1 blocks alternating asc/desc after the
	// base sort, (2) an ascending half and a descending half — a bitonic
	// sequence — after the half-merge (end of Figure 5), and (3) the sorted
	// sequence after the final merge (Figure 6).
	in := []int{5, 3, 7, 1, 6, 0, 4, 2}
	var tr Trace[int]
	got, _, err := DSort(2, in, intLess, Ascending, &tr)
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := 1 + DSortCompSteps(2) // input + one snapshot per step
	if len(tr.Steps) != wantSteps {
		t.Fatalf("trace has %d steps, want %d", len(tr.Steps), wantSteps)
	}
	if tr.Steps[0].Label != "input" {
		t.Errorf("first step label %q", tr.Steps[0].Label)
	}
	// After the base sort (level 1): blocks {0,1} asc, {2,3} desc, {4,5} asc, {6,7} desc.
	base := tr.Steps[1].Keys
	for b := 0; b < 4; b++ {
		lo, hi := base[2*b], base[2*b+1]
		if b%2 == 0 && lo > hi {
			t.Errorf("block %d not ascending after base sort: %v", b, base)
		}
		if b%2 == 1 && lo < hi {
			t.Errorf("block %d not descending after base sort: %v", b, base)
		}
	}
	// After the half-merge (steps at level 2, dims 1..0): halves sorted
	// asc / desc, so the whole is bitonic.
	half := tr.Steps[3].Keys
	if !seq.IsSorted(half[:4], intLess) || !seq.IsSortedDesc(half[4:], intLess) {
		t.Errorf("after half-merge: %v (want asc half, desc half)", half)
	}
	if !seq.IsBitonic(half, intLess) {
		t.Errorf("after half-merge not bitonic: %v", half)
	}
	// Final snapshot equals the output, sorted.
	last := tr.Steps[len(tr.Steps)-1].Keys
	for i := range got {
		if last[i] != got[i] || got[i] != i {
			t.Fatalf("final trace/output wrong: trace %v out %v", last, got)
		}
	}
}

func TestDSortTraceLabels(t *testing.T) {
	sched := dsortSchedule(3)
	if len(sched) != DSortCompSteps(3) {
		t.Fatalf("schedule has %d steps, want %d", len(sched), DSortCompSteps(3))
	}
	if sched[0].Label != "level 1 base-sort dim 0" {
		t.Errorf("first label %q", sched[0].Label)
	}
	// Per level l >= 2: dims 2l-3..0 half-merge then 2l-2..0 final-merge.
	i := 1
	for l := 2; l <= 3; l++ {
		for j := 2*l - 3; j >= 0; j-- {
			if sched[i].Level != l || sched[i].Dim != j {
				t.Fatalf("step %d = %+v, want level %d dim %d", i, sched[i], l, j)
			}
			i++
		}
		for j := 2*l - 2; j >= 0; j-- {
			if sched[i].Level != l || sched[i].Dim != j {
				t.Fatalf("step %d = %+v, want level %d dim %d", i, sched[i], l, j)
			}
			i++
		}
	}
}

func TestOrderString(t *testing.T) {
	if Ascending.String() != "asc" || Descending.String() != "desc" {
		t.Error("Order.String broken")
	}
	// Invalid values must not claim either direction.
	if got := Order(2).String(); got != "Order(2)" {
		t.Errorf("Order(2).String() = %q", got)
	}
	if got := Order(-1).String(); got != "Order(-1)" {
		t.Errorf("Order(-1).String() = %q", got)
	}
}

func TestDSortRecordedMatchesDSort(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 1; n <= 4; n++ {
		N := 1 << (2*n - 1)
		in := make([]int, N)
		for i := range in {
			in[i] = rng.Intn(1000)
		}
		plain, stP, err := DSort(n, in, intLess, Ascending, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec, stR, recording, err := DSortRecorded(n, in, intLess, Ascending)
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if plain[i] != rec[i] {
				t.Fatalf("n=%d: recorded output differs at %d", n, i)
			}
		}
		if stP != stR {
			t.Errorf("n=%d: stats differ", n)
		}
		if int64(len(recording.Events)) != stR.Messages {
			t.Errorf("n=%d: event/message mismatch", n)
		}
	}
	if _, _, _, err := DSortRecorded(0, nil, intLess, Ascending); err == nil {
		t.Error("order 0 should fail")
	}
	if _, _, _, err := DSortRecorded(2, make([]int, 3), intLess, Ascending); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestDSortScheduleLinkInvariants(t *testing.T) {
	// The 3-cycle schedule's contention-freedom, verified from the message
	// log: no directed link ever carries two messages in one cycle, and no
	// node ever sends twice in one cycle.
	rng := rand.New(rand.NewSource(21))
	for n := 2; n <= 4; n++ {
		N := 1 << (2*n - 1)
		in := make([]int, N)
		for i := range in {
			in[i] = rng.Intn(1000)
		}
		_, _, rec, err := DSortRecorded(n, in, intLess, Ascending)
		if err != nil {
			t.Fatal(err)
		}
		type slot struct{ cycle, src, dst int }
		linkUse := map[slot]int{}
		sendUse := map[[2]int]int{}
		recvUse := map[[2]int]int{}
		for _, ev := range rec.Events {
			linkUse[slot{ev.Cycle, ev.Src, ev.Dst}]++
			sendUse[[2]int{ev.Cycle, ev.Src}]++
			recvUse[[2]int{ev.Cycle, ev.Dst}]++
		}
		for k, c := range linkUse {
			if c > 1 {
				t.Fatalf("n=%d: link (%d->%d) carried %d messages in cycle %d", n, k.src, k.dst, c, k.cycle)
			}
		}
		for k, c := range sendUse {
			if c > 1 {
				t.Fatalf("n=%d: node %d sent %d messages in cycle %d", n, k[1], c, k[0])
			}
		}
		// Arrivals per node per cycle stay within the two-link
		// bidirectional-channel allowance.
		for k, c := range recvUse {
			if c > 2 {
				t.Fatalf("n=%d: node %d received %d messages in cycle %d", n, k[1], c, k[0])
			}
		}
	}
}
