// Package sortnet implements the paper's sorting algorithms: Batcher's
// bitonic sort on the hypercube (Section 5, the baseline) and D_sort
// (Algorithm 3), the bitonic sort on the dual-cube built on the recursive
// presentation of Section 4, plus the large-input merge-split
// generalization from the paper's future-work list.
//
// Keys are placed one per node in recursive-ID order for D_sort (node-ID
// order for the hypercube); the sorted sequence is read back in the same
// order. Both algorithms report machine statistics so the harness can check
// Theorem 2: D_sort takes exactly 6n²-7n+2 communication steps (paper
// bound: at most 6n²) and 2n²-n comparison rounds (bound 2n²) on D_n.
package sortnet

import (
	"fmt"

	"dualcube/internal/dcomm"
	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// Order selects the direction of the final sorted sequence — the paper's
// boolean tag (0 ascending, 1 descending).
type Order int

const (
	// Ascending sorts smallest first (tag = 0).
	Ascending Order = iota
	// Descending sorts largest first (tag = 1).
	Descending
)

// String returns "asc" or "desc" for the two valid directions, and the
// Go-syntax form for anything else — an invalid Order must not label itself
// as either direction (the sort entry points reject it up front).
func (o Order) String() string {
	switch o {
	case Ascending:
		return "asc"
	case Descending:
		return "desc"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// validOrder rejects Order values outside the two-member enum with the
// uniform validation-error wording shared by every sort entry point.
func validOrder(ord Order) error {
	if ord != Ascending && ord != Descending {
		return fmt.Errorf("sortnet: invalid Order(%d): want Ascending or Descending", int(ord))
	}
	return nil
}

// keepMinAt decides which endpoint of a dimension-j pair keeps the smaller
// key: for an ascending subsequence the node whose bit j is 0, for a
// descending one the node whose bit j is 1.
func keepMinAt(id, j int, dir Order) bool {
	bit := id>>j&1 == 1
	if dir == Ascending {
		return !bit
	}
	return bit
}

// CubeSort runs Batcher's bitonic sort on the hypercube Q_q: keys[u] is
// placed on node u, and the result is the sorted permutation in node-ID
// order. It performs q(q+1)/2 compare-exchange steps, each a single
// communication cycle, over the compiled schedule — the direct kernel
// executor by default, or a simulator engine under an engine scheduler.
func CubeSort[K any](q int, keys []K, less func(a, b K) bool, ord Order) ([]K, machine.Stats, error) {
	h, err := topology.NewHypercube(q)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	if len(keys) != h.Nodes() {
		return nil, machine.Stats{}, fmt.Errorf("sortnet: %d keys for %d nodes of %s", len(keys), h.Nodes(), h.Name())
	}
	if err := validOrder(ord); err != nil {
		return nil, machine.Stats{}, err
	}
	sch, err := dcomm.CompiledCubeSort(h)
	if err != nil {
		return nil, machine.Stats{}, err
	}
	key := make([]K, len(keys))
	copy(key, keys)
	kern := &exchKernel[K]{less: less, ord: ord, key: key, metas: cubeSortMetasFor(q)}
	st, err := dcomm.Execute(sch, machine.Config{}, kern)
	if err != nil {
		return nil, st, err
	}
	return key, st, nil
}

// Trace records the evolution of the key vector during a D_sort run: the
// input followed by one snapshot per compare-exchange step, in recursive-ID
// order. It reproduces the paper's Figures 5 and 6.
type Trace[K any] struct {
	Steps []Step[K]
}

// Step is one snapshot of the keys after a parallel compare-exchange.
type Step[K any] struct {
	Label string // e.g. "level 2 half-merge dim 1"
	Level int    // sub-dual-cube order being merged (0 for the input row)
	Dim   int    // recursive dimension of the step (-1 for the input row)
	Keys  []K    // keys by recursive ID after the step
}

// dsortSchedule returns the step labels of DSort on D_n in execution
// order, excluding the input row. Every node executes exactly this
// schedule, which is what lets the tracer preallocate snapshots.
func dsortSchedule(n int) []Step[struct{}] {
	var steps []Step[struct{}]
	add := func(level, dim int, phase string) {
		steps = append(steps, Step[struct{}]{
			Label: fmt.Sprintf("level %d %s dim %d", level, phase, dim),
			Level: level,
			Dim:   dim,
		})
	}
	add(1, 0, "base-sort")
	for l := 2; l <= n; l++ {
		for j := 2*l - 3; j >= 0; j-- {
			add(l, j, "half-merge")
		}
		for j := 2*l - 2; j >= 0; j-- {
			add(l, j, "final-merge")
		}
	}
	return steps
}

// DSort runs Algorithm 3 on the dual-cube D_n: keys[r] is placed on the
// node with recursive ID r and the result is the sorted permutation in
// recursive-ID order (ascending or descending per ord, the paper's tag).
//
// The recursion of Algorithm 3 is executed iteratively, level by level.
// At level l every disjoint sub-dual-cube of order l (fixed recursive bits
// above 2l-2) runs its merge phases simultaneously:
//
//   - levels below n sort each quarter alternately ascending/descending
//     (quarter index even/odd — bit 2l-1 of the recursive ID);
//   - the half-merge phase (dims 2l-3 .. 0, direction by bit 2l-2) turns
//     the four sorted quarters into an ascending half and a descending
//     half, i.e. a bitonic sequence over the sub-dual-cube;
//   - the final-merge phase (dims 2l-2 .. 0) sorts it in the level's
//     direction.
//
// Every dimension-j step is one compiled schedule step — a cross hop for
// j = 0, a 3-cycle StepRecDim exchange otherwise (half the pairs route
// through two cross-edges) — run on the direct kernel executor by default,
// or interpreted on a simulator engine under an engine scheduler.
// tr may be nil; when non-nil it receives the Figure 5/6 snapshots.
func DSort[K any](n int, keys []K, less func(a, b K) bool, ord Order, tr *Trace[K]) ([]K, machine.Stats, error) {
	d, err := topology.Validated(n, len(keys))
	if err != nil {
		return nil, machine.Stats{}, err
	}
	return DSortOn(d, keys, less, ord, tr)
}

// DSortOn is DSort over an explicit communication topology carrying the
// recursive presentation: the same merge ladder runs on the dual-cube, the
// odd hypercube and the Z-cube, whose recursive IDs all coincide with the
// embedded D_n's.
func DSortOn[K any](d topology.Recursive, keys []K, less func(a, b K) bool, ord Order, tr *Trace[K]) ([]K, machine.Stats, error) {
	n := d.Order()
	if err := topology.ValidLen(d, len(keys)); err != nil {
		return nil, machine.Stats{}, err
	}
	if err := validOrder(ord); err != nil {
		return nil, machine.Stats{}, err
	}
	sch, err := dcomm.Compiled(d, dcomm.OpDSort)
	if err != nil {
		return nil, machine.Stats{}, err
	}

	// Optional tracing: preallocate one snapshot per scheduled step.
	var snaps []*Step[K]
	tr0 := 0
	if tr != nil {
		tr0 = len(tr.Steps)
		tr.Steps = append(tr.Steps, Step[K]{Label: "input", Level: 0, Dim: -1, Keys: append([]K(nil), keys...)})
		for _, s := range dsortSchedule(n) {
			tr.Steps = append(tr.Steps, Step[K]{Label: s.Label, Level: s.Level, Dim: s.Dim, Keys: make([]K, d.Nodes())})
		}
		for i := tr0 + 1; i < len(tr.Steps); i++ {
			snaps = append(snaps, &tr.Steps[i])
		}
	}

	kern := newDSortKernel(d, keys, less, ord, snaps)
	st, err := dcomm.Execute(sch, machine.Config{}, kern)
	if err != nil {
		if tr != nil {
			// Discard the preallocated snapshots: a failed run leaves them as
			// zero-value garbage, not Figure 5/6 data.
			tr.Steps = tr.Steps[:tr0]
		}
		return nil, st, err
	}
	return kern.unload(make([]K, len(keys))), st, nil
}

// DSortRecorded is DSort with full message recording (per-link loads and
// the space-time event log) for the traffic analysis of experiment E14.
// Recording is an engine facility, so this always runs the kernel through
// the schedule interpreter regardless of the configured scheduler.
func DSortRecorded[K any](n int, keys []K, less func(a, b K) bool, ord Order) ([]K, machine.Stats, *machine.Recording, error) {
	d, err := topology.Validated(n, len(keys))
	if err != nil {
		return nil, machine.Stats{}, nil, err
	}
	if err := validOrder(ord); err != nil {
		return nil, machine.Stats{}, nil, err
	}
	sch, err := dcomm.Compiled(d, dcomm.OpDSort)
	if err != nil {
		return nil, machine.Stats{}, nil, err
	}
	kern := newDSortKernel(d, keys, less, ord, nil)
	eng, err := machine.New[K](d, machine.Config{})
	if err != nil {
		return nil, machine.Stats{}, nil, err
	}
	defer eng.Release()
	st, rec, err := eng.RunRecorded(machine.KernelProgram(sch, kern))
	if err != nil {
		return nil, st, nil, err
	}
	return kern.unload(make([]K, len(keys))), st, rec, nil
}

// DSortCommSteps returns the exact communication time of our D_sort
// schedule on D_n: T(1) = 1, T(n) = T(n-1) + 3(2n-3)+1 + 3(2n-2)+1,
// which solves to 6n²-7n+2.
func DSortCommSteps(n int) int { return 6*n*n - 7*n + 2 }

// DSortCompSteps returns the comparison rounds of D_sort on D_n:
// T(1) = 1, T(n) = T(n-1) + (2n-2) + (2n-1) = 2n²-n.
func DSortCompSteps(n int) int { return 2*n*n - n }

// PaperSortCommBound returns Theorem 2's communication bound, 6n².
func PaperSortCommBound(n int) int { return 6 * n * n }

// PaperSortCompBound returns Theorem 2's computation bound, 2n².
func PaperSortCompBound(n int) int { return 2 * n * n }

// CubeSortSteps returns the compare-exchange steps (= communication steps)
// of bitonic sort on Q_q: q(q+1)/2.
func CubeSortSteps(q int) int { return q * (q + 1) / 2 }
