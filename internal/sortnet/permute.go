package sortnet

import (
	"fmt"

	"dualcube/internal/machine"
)

// routed pairs a payload with its destination slot during permutation
// routing.
type routed[T any] struct {
	dest int
	val  T
}

// Permute performs one-to-one routing on D_n by sorting — the classic
// "routing by sorting" reduction: element i (carrying values[i]) is
// delivered to slot dests[i], where dests is a permutation of 0..N-1.
// Internally the (dest, value) pairs run through D_sort keyed by dest, so
// after sorting the pair destined for slot j sits exactly at position j.
// The cost is that of one D_sort: 6n²-7n+2 communication steps — an
// oblivious, contention-free routing schedule for any permutation.
func Permute[T any](n int, dests []int, values []T) ([]T, machine.Stats, error) {
	if len(dests) != len(values) {
		return nil, machine.Stats{}, fmt.Errorf("sortnet: %d destinations for %d values", len(dests), len(values))
	}
	seen := make([]bool, len(dests))
	for i, d := range dests {
		if d < 0 || d >= len(dests) || seen[d] {
			return nil, machine.Stats{}, fmt.Errorf("sortnet: dests is not a permutation (entry %d = %d)", i, d)
		}
		seen[d] = true
	}
	pairs := make([]routed[T], len(values))
	for i := range values {
		pairs[i] = routed[T]{dest: dests[i], val: values[i]}
	}
	sorted, st, err := DSort(n, pairs, func(a, b routed[T]) bool { return a.dest < b.dest }, Ascending, nil)
	if err != nil {
		return nil, st, err
	}
	out := make([]T, len(values))
	for j, p := range sorted {
		out[j] = p.val
	}
	return out, st, nil
}
