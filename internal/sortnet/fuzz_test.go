package sortnet

import (
	"testing"

	"dualcube/internal/seq"
)

// FuzzDSortD3 fuzzes D_sort on D_3 with arbitrary byte-derived keys,
// checking the two sorting invariants: output sorted and multiset
// preserved. Runs its seed corpus under plain `go test`; use
// `go test -fuzz=FuzzDSortD3 ./internal/sortnet` to explore further.
func FuzzDSortD3(f *testing.F) {
	f.Add([]byte("seed-corpus-entry-0123456789abcdef0123456789abcd"))
	f.Add(make([]byte, 32))
	f.Add([]byte{255, 0, 255, 0, 1, 2, 3, 4, 250, 249, 248, 200, 100, 50, 25, 12,
		6, 3, 1, 0, 9, 9, 9, 9, 7, 7, 7, 7, 128, 128, 64, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 3
		N := 1 << (2*n - 1)
		in := make([]int, N)
		for i := range in {
			if i < len(data) {
				in[i] = int(data[i])
			}
		}
		got, st, err := DSort(n, in, intLess, Ascending, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.IsSorted(got, intLess) {
			t.Fatalf("not sorted: %v", got)
		}
		if !seq.SameMultiset(in, got, intLess) {
			t.Fatalf("multiset changed: %v -> %v", in, got)
		}
		if st.Cycles != DSortCommSteps(n) {
			t.Fatalf("comm steps %d", st.Cycles)
		}
	})
}

// FuzzMergeSplit fuzzes the merge-split block comparator underlying the
// large-input sort.
func FuzzMergeSplit(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{2, 3, 4, 5})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{9}, []byte{1})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		if len(ab) != len(bb) || len(ab) == 0 || len(ab) > 64 {
			t.Skip()
		}
		a := make([]int, len(ab))
		b := make([]int, len(bb))
		for i := range ab {
			a[i] = int(ab[i])
			b[i] = int(bb[i])
		}
		a = seq.Sorted(a, intLess)
		b = seq.Sorted(b, intLess)
		low := mergeSplit(a, b, intLess, true)
		high := mergeSplit(a, b, intLess, false)
		if !seq.IsSorted(low, intLess) || !seq.IsSorted(high, intLess) {
			t.Fatal("halves unsorted")
		}
		if len(low) > 0 && len(high) > 0 && intLess(high[0], low[len(low)-1]) {
			t.Fatal("split point wrong")
		}
		union := append(append([]int{}, a...), b...)
		merged := append(append([]int{}, low...), high...)
		if !seq.SameMultiset(union, merged, intLess) {
			t.Fatal("elements lost")
		}
	})
}
