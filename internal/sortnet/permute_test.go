package sortnet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPermuteIdentity(t *testing.T) {
	n := 2
	N := 1 << (2*n - 1)
	dests := make([]int, N)
	values := make([]string, N)
	for i := range dests {
		dests[i] = i
		values[i] = string(rune('a' + i))
	}
	got, st, err := Permute(n, dests, values)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if got[i] != values[i] {
			t.Fatalf("identity permute moved element %d", i)
		}
	}
	if st.Cycles != DSortCommSteps(n) {
		t.Errorf("permute comm = %d, want %d", st.Cycles, DSortCommSteps(n))
	}
}

func TestPermuteReversal(t *testing.T) {
	n := 3
	N := 1 << (2*n - 1)
	dests := make([]int, N)
	values := make([]int, N)
	for i := range dests {
		dests[i] = N - 1 - i
		values[i] = i * 7
	}
	got, _, err := Permute(n, dests, values)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if got[N-1-i] != values[i] {
			t.Fatalf("reversal wrong at %d", i)
		}
	}
}

func TestPermuteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for n := 1; n <= 4; n++ {
		N := 1 << (2*n - 1)
		for trial := 0; trial < 10; trial++ {
			dests := rng.Perm(N)
			values := make([]int, N)
			for i := range values {
				values[i] = rng.Int()
			}
			got, _, err := Permute(n, dests, values)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			for i := range values {
				if got[dests[i]] != values[i] {
					t.Fatalf("n=%d: element %d not delivered to %d", n, i, dests[i])
				}
			}
		}
	}
}

func TestPermuteQuick(t *testing.T) {
	f := func(nSeed uint8, seed int64) bool {
		n := int(nSeed)%3 + 1
		N := 1 << (2*n - 1)
		rng := rand.New(rand.NewSource(seed))
		dests := rng.Perm(N)
		values := make([]int, N)
		for i := range values {
			values[i] = rng.Int()
		}
		got, _, err := Permute(n, dests, values)
		if err != nil {
			return false
		}
		for i := range values {
			if got[dests[i]] != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPermuteRejectsNonPermutation(t *testing.T) {
	if _, _, err := Permute(2, []int{0, 1, 2, 3, 4, 5, 6, 6}, make([]int, 8)); err == nil {
		t.Error("duplicate destination should fail")
	}
	if _, _, err := Permute(2, []int{0, 1, 2, 3, 4, 5, 6, 8}, make([]int, 8)); err == nil {
		t.Error("out-of-range destination should fail")
	}
	if _, _, err := Permute(2, []int{0, 1}, make([]int, 8)); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := Permute(0, nil, []int{}); err == nil {
		t.Error("order 0 should fail")
	}
}
