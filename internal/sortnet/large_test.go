package sortnet

import (
	"math/rand"
	"testing"

	"dualcube/internal/seq"
)

func TestMergeSplit(t *testing.T) {
	a := []int{1, 4, 6, 9}
	b := []int{2, 3, 7, 8}
	low := mergeSplit(a, b, intLess, true)
	high := mergeSplit(a, b, intLess, false)
	wantLow := []int{1, 2, 3, 4}
	wantHigh := []int{6, 7, 8, 9}
	for i := range wantLow {
		if low[i] != wantLow[i] || high[i] != wantHigh[i] {
			t.Fatalf("mergeSplit: low=%v high=%v", low, high)
		}
	}
	// Together they must partition the union.
	if !seq.SameMultiset(append(append([]int{}, a...), b...), append(append([]int{}, low...), high...), intLess) {
		t.Error("mergeSplit lost elements")
	}
}

func TestMergeSplitDuplicates(t *testing.T) {
	a := []int{2, 2, 2}
	b := []int{2, 2, 2}
	low := mergeSplit(a, b, intLess, true)
	high := mergeSplit(a, b, intLess, false)
	for i := 0; i < 3; i++ {
		if low[i] != 2 || high[i] != 2 {
			t.Fatal("duplicates broken")
		}
	}
}

func TestMergeSplitRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(8)
		a := make([]int, k)
		b := make([]int, k)
		for i := 0; i < k; i++ {
			a[i] = rng.Intn(20)
			b[i] = rng.Intn(20)
		}
		a = seq.Sorted(a, intLess)
		b = seq.Sorted(b, intLess)
		low := mergeSplit(a, b, intLess, true)
		high := mergeSplit(a, b, intLess, false)
		if !seq.IsSorted(low, intLess) || !seq.IsSorted(high, intLess) {
			t.Fatalf("halves not sorted: %v %v", low, high)
		}
		// max(low) <= min(high)
		if len(low) > 0 && len(high) > 0 && intLess(high[0], low[len(low)-1]) {
			t.Fatalf("split point wrong: %v | %v", low, high)
		}
		all := append(append([]int{}, a...), b...)
		merged := append(append([]int{}, low...), high...)
		if !seq.SameMultiset(all, merged, intLess) {
			t.Fatalf("elements lost: %v %v -> %v %v", a, b, low, high)
		}
	}
}

func TestDSortLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct{ n, k int }{{1, 2}, {2, 1}, {2, 4}, {3, 3}, {3, 8}, {4, 4}} {
		N := 1 << (2*tc.n - 1)
		for _, ord := range []Order{Ascending, Descending} {
			in := make([]int, tc.k*N)
			for i := range in {
				in[i] = rng.Intn(200) - 100
			}
			got, st, err := DSortLarge(tc.n, tc.k, in, intLess, ord)
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
			}
			checkSorted(t, "DSortLarge", in, got, ord)
			// Communication independent of k.
			if st.Cycles != DSortCommSteps(tc.n) {
				t.Errorf("n=%d k=%d: comm %d, want %d", tc.n, tc.k, st.Cycles, DSortCommSteps(tc.n))
			}
		}
	}
}

func TestDSortLargeK1MatchesDSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 3
	N := 1 << (2*n - 1)
	in := make([]int, N)
	for i := range in {
		in[i] = rng.Intn(1000)
	}
	a, _, err := DSort(n, in, intLess, Ascending, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := DSortLarge(n, 1, in, intLess, Ascending)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("k=1 large sort differs at %d", i)
		}
	}
}

func TestCubeSortLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, tc := range []struct{ q, k int }{{0, 3}, {1, 2}, {3, 4}, {5, 3}} {
		N := 1 << tc.q
		for _, ord := range []Order{Ascending, Descending} {
			in := make([]int, tc.k*N)
			for i := range in {
				in[i] = rng.Intn(100)
			}
			got, st, err := CubeSortLarge(tc.q, tc.k, in, intLess, ord)
			if err != nil {
				t.Fatalf("q=%d k=%d: %v", tc.q, tc.k, err)
			}
			checkSorted(t, "CubeSortLarge", in, got, ord)
			if st.Cycles != CubeSortSteps(tc.q) {
				t.Errorf("q=%d k=%d: comm %d, want %d", tc.q, tc.k, st.Cycles, CubeSortSteps(tc.q))
			}
		}
	}
}

func TestLargeBadInput(t *testing.T) {
	if _, _, err := DSortLarge(2, 0, nil, intLess, Ascending); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := DSortLarge(2, 2, make([]int, 3), intLess, Ascending); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := DSortLarge(0, 1, nil, intLess, Ascending); err == nil {
		t.Error("order 0 should fail")
	}
	if _, _, err := CubeSortLarge(2, 0, nil, intLess, Ascending); err == nil {
		t.Error("cube k=0 should fail")
	}
	if _, _, err := CubeSortLarge(2, 2, make([]int, 3), intLess, Ascending); err == nil {
		t.Error("cube length mismatch should fail")
	}
	if _, _, err := CubeSortLarge(-1, 1, nil, intLess, Ascending); err == nil {
		t.Error("cube negative dim should fail")
	}
}
