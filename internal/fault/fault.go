// Package fault provides seeded, reproducible fault plans for the dual-cube
// machine: which links and nodes are permanently down for a run and which
// messages the wire transiently loses or holds back. A Plan is the user-level
// description (seeds and probabilities); Spec compiles it into the
// topology-neutral machine.FaultSpec the engine arms, and View is the global
// post-diagnosis picture of the permanent faults that fault-tolerant routing
// (internal/dcomm) and the degraded algorithms (internal/prefix) consult.
//
// Everything here is deterministic: the same Plan produces the same faults,
// the same per-cycle drop/delay decisions, and therefore the same Stats.Faults
// under either scheduler and any worker count. Transient decisions are pure
// functions of (seed, src, dst, cycle) via a splitmix64-style hash — no shared
// RNG state exists to race on.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// Link is an undirected dual-cube link named by its endpoints. The zero Link
// is not meaningful; use Normalize to compare links regardless of endpoint
// order.
type Link struct {
	U, V int
}

// Normalize returns the link with its endpoints in ascending order.
func (l Link) Normalize() Link {
	if l.U > l.V {
		return Link{l.V, l.U}
	}
	return l
}

func (l Link) String() string { return fmt.Sprintf("%d-%d", l.U, l.V) }

// Plan is a reproducible fault scenario. The permanent part (Links, Nodes) is
// explicit; the transient part is probabilistic but seeded, so every run of
// the same plan sees the same drops and delays. A Plan must not be mutated
// after its Spec has been taken; share one *Plan across runs to reuse the
// engine's compiled fault mask.
type Plan struct {
	// Seed drives every transient decision. Plans with equal Seed and equal
	// probabilities make identical per-message choices.
	Seed int64
	// Links are permanently failed undirected links.
	Links []Link
	// Nodes are permanently failed (fail-stop) nodes: all incident links die.
	Nodes []int
	// DropProb is the probability that any given message is lost in flight.
	DropProb float64
	// DelayProb is the probability that any given message is held back; a
	// delayed message suffers 1..MaxDelay extra cycles (MaxDelay 0 means 1).
	DelayProb float64
	MaxDelay  int

	once sync.Once
	spec *machine.FaultSpec
}

// Spec compiles the plan into the engine-facing fault spec, caching the
// result so repeated runs arm the identical pointer (which lets the engine
// reuse its compiled per-link mask). A nil plan yields a nil spec — fault-free.
func (p *Plan) Spec() *machine.FaultSpec {
	if p == nil {
		return nil
	}
	p.once.Do(func() {
		s := &machine.FaultSpec{
			Links: make([][2]int, len(p.Links)),
			Nodes: append([]int(nil), p.Nodes...),
		}
		for i, l := range p.Links {
			s.Links[i] = [2]int{l.U, l.V}
		}
		if p.DropProb > 0 {
			seed, prob := p.Seed, p.DropProb
			s.Drop = func(src, dst, cycle int) bool {
				return roll(seed, rollDrop, src, dst, cycle) < prob
			}
		}
		if p.DelayProb > 0 {
			seed, prob := p.Seed, p.DelayProb
			maxDelay := p.MaxDelay
			if maxDelay < 1 {
				maxDelay = 1
			}
			s.Delay = func(src, dst, cycle int) int {
				if roll(seed, rollDelay, src, dst, cycle) >= prob {
					return 0
				}
				return 1 + int(hash(seed, rollDelaySpan, src, dst, cycle)%uint64(maxDelay))
			}
		}
		p.spec = s
	})
	return p.spec
}

// Validate checks the plan against a topology: every failed link must be an
// edge of t, every failed node an address, and the probabilities sensible.
// The engine re-checks links when arming; Validate exists so commands can
// reject bad plans before spending a run.
func (p *Plan) Validate(t topology.Topology) error {
	if p == nil {
		return nil
	}
	n := t.Nodes()
	for _, l := range p.Links {
		if l.U < 0 || l.U >= n || l.V < 0 || l.V >= n || !t.HasEdge(l.U, l.V) {
			return fmt.Errorf("fault: plan fails link %v, which is not a link of %s", l, t.Name())
		}
	}
	for _, u := range p.Nodes {
		if u < 0 || u >= n {
			return fmt.Errorf("fault: plan fails node %d, outside %s", u, t.Name())
		}
	}
	if p.DropProb < 0 || p.DropProb > 1 || p.DelayProb < 0 || p.DelayProb > 1 {
		return fmt.Errorf("fault: probabilities must lie in [0, 1]")
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("fault: MaxDelay must be non-negative")
	}
	return nil
}

// RandomLinks picks f distinct links of t uniformly at random, deterministic
// in seed: the canonical edge list is partially Fisher-Yates shuffled by a
// seeded PRNG. Callers wanting the paper-grade guarantee keep f below the
// topology's link connectivity, but any f up to the edge count is accepted.
func RandomLinks(t topology.Topology, f int, seed int64) []Link {
	edges := allLinks(t)
	if f < 0 {
		f = 0
	}
	if f > len(edges) {
		f = len(edges)
	}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < f; i++ {
		j := i + r.Intn(len(edges)-i)
		edges[i], edges[j] = edges[j], edges[i]
	}
	out := edges[:f:f]
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Random builds a plan of f random permanent link faults — the standard
// scenario of the fault-sweep experiments.
func Random(t topology.Topology, f int, seed int64) *Plan {
	return &Plan{Seed: seed, Links: RandomLinks(t, f, seed)}
}

// allLinks enumerates every undirected link of t in canonical (U < V) order.
func allLinks(t topology.Topology) []Link {
	n := t.Nodes()
	hint := 0
	if n > 0 {
		hint = n * t.Degree(0) / 2
	}
	edges := make([]Link, 0, hint)
	for u := 0; u < n; u++ {
		for _, v := range t.Neighbors(u) {
			if u < v {
				edges = append(edges, Link{u, v})
			}
		}
	}
	return edges
}

// rollX tag the independent hash streams carved out of one seed.
const (
	rollDrop = iota
	rollDelay
	rollDelaySpan
)

// hash is a splitmix64-style avalanche over (seed, kind, src, dst, cycle) —
// stateless, so drop/delay decisions are reproducible under any scheduler.
func hash(seed int64, kind, src, dst, cycle int) uint64 {
	x := uint64(seed)
	for _, v := range [4]uint64{uint64(kind), uint64(src), uint64(dst), uint64(cycle)} {
		x = mix(x ^ v)
	}
	return x
}

// mix is the splitmix64 finalizer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll maps a hash to a uniform float64 in [0, 1).
func roll(seed int64, kind, src, dst, cycle int) float64 {
	return float64(hash(seed, kind, src, dst, cycle)>>11) / (1 << 53)
}
