package fault

import (
	"testing"

	"dualcube/internal/machine"
	"dualcube/internal/topology"
)

// TestRandomLinksDeterministic checks the seed contract: same seed, same
// links; different seeds, (almost surely) different links; all results are
// distinct real edges.
func TestRandomLinksDeterministic(t *testing.T) {
	d := topology.MustDualCube(4)
	f := d.Order() - 1
	a := RandomLinks(d, f, 42)
	b := RandomLinks(d, f, 42)
	if len(a) != f {
		t.Fatalf("got %d links, want %d", len(a), f)
	}
	seen := make(map[Link]bool)
	for i, l := range a {
		if l != b[i] {
			t.Errorf("seed 42 not reproducible: %v vs %v", a, b)
		}
		if !d.HasEdge(l.U, l.V) {
			t.Errorf("%v is not an edge of %s", l, d.Name())
		}
		if seen[l.Normalize()] {
			t.Errorf("duplicate link %v", l)
		}
		seen[l.Normalize()] = true
	}
	c := RandomLinks(d, f, 43)
	same := len(c) == len(a)
	for i := range c {
		same = same && c[i] == a[i]
	}
	if same {
		t.Errorf("seeds 42 and 43 chose identical links %v", a)
	}
}

// TestRandomLinksBounds checks clamping of degenerate f.
func TestRandomLinksBounds(t *testing.T) {
	d := topology.MustDualCube(2)
	if got := RandomLinks(d, -3, 1); len(got) != 0 {
		t.Errorf("f=-3: got %v, want empty", got)
	}
	edges := d.Nodes() * d.Order() / 2
	if got := RandomLinks(d, edges+10, 1); len(got) != edges {
		t.Errorf("f>edges: got %d links, want all %d", len(got), edges)
	}
}

// TestSpecCachedAndDeterministic checks that Spec returns the identical
// pointer every call (the engine's compile-once contract) and that its
// transient predicates are pure functions of their arguments.
func TestSpecCachedAndDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, DropProb: 0.3, DelayProb: 0.3, MaxDelay: 3}
	s := p.Spec()
	if s != p.Spec() {
		t.Fatal("Spec not cached: distinct pointers across calls")
	}
	twin := &Plan{Seed: 7, DropProb: 0.3, DelayProb: 0.3, MaxDelay: 3}
	s2 := twin.Spec()
	drops, delays := 0, 0
	for src := 0; src < 8; src++ {
		for cycle := 0; cycle < 50; cycle++ {
			dst := src ^ 1
			if s.Drop(src, dst, cycle) != s2.Drop(src, dst, cycle) {
				t.Fatalf("Drop(%d,%d,%d) differs between equal plans", src, dst, cycle)
			}
			if s.Delay(src, dst, cycle) != s2.Delay(src, dst, cycle) {
				t.Fatalf("Delay(%d,%d,%d) differs between equal plans", src, dst, cycle)
			}
			if s.Drop(src, dst, cycle) {
				drops++
			}
			if dl := s.Delay(src, dst, cycle); dl > 0 {
				delays++
				if dl > 3 {
					t.Fatalf("Delay(%d,%d,%d) = %d exceeds MaxDelay", src, dst, cycle, dl)
				}
			}
		}
	}
	// 400 samples at p=0.3: both event kinds must actually fire.
	if drops == 0 || delays == 0 {
		t.Errorf("predicates never fired: %d drops, %d delays", drops, delays)
	}
	if (&Plan{}).Spec().Drop != nil {
		t.Error("zero-probability plan grew a Drop predicate")
	}
	var nilPlan *Plan
	if nilPlan.Spec() != nil {
		t.Error("nil plan must compile to nil spec")
	}
}

// TestValidate checks plan screening against a topology.
func TestValidate(t *testing.T) {
	d := topology.MustDualCube(2)
	good := &Plan{Links: []Link{{0, d.CrossNeighbor(0)}}, Nodes: []int{1}}
	if err := good.Validate(d); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	for _, bad := range []*Plan{
		{Links: []Link{{0, 3}}},
		{Nodes: []int{-1}},
		{DropProb: 1.5},
		{MaxDelay: -1},
	} {
		if bad.Validate(d) == nil {
			t.Errorf("plan %+v passed validation", bad)
		}
	}
}

// TestViewBasics checks the fault predicates and the canonical down-link
// enumeration, including links killed transitively by node failures.
func TestViewBasics(t *testing.T) {
	d := topology.MustDualCube(2)
	dead := Link{d.CrossNeighbor(0), 0} // deliberately unnormalized
	v := NewView(d, &Plan{Links: []Link{dead}, Nodes: []int{3}})
	if v.Clean() {
		t.Fatal("view with faults reports clean")
	}
	if !v.LinkDown(0, d.CrossNeighbor(0)) || !v.LinkDown(d.CrossNeighbor(0), 0) {
		t.Error("failed link not down in both orientations")
	}
	if !v.NodeDown(3) || v.NodeDown(0) {
		t.Error("node fault misreported")
	}
	for _, w := range d.Neighbors(3) {
		if !v.LinkDown(3, w) {
			t.Errorf("link 3-%d incident to dead node not down", w)
		}
	}
	want := 1 + d.Order() // explicit link + node 3's incident links (disjoint here)
	if got := v.DownLinks(); len(got) != want {
		t.Errorf("DownLinks = %v, want %d links", got, want)
	}
	var nilView *View
	if !nilView.Clean() || nilView.LinkDown(0, 1) || nilView.NodeDown(0) || nilView.DownLinks() != nil {
		t.Error("nil view must be clean")
	}
	if NewView(d, &Plan{Seed: 1, DropProb: 0.5}) != nil {
		t.Error("transient-only plan must yield a nil (clean) view")
	}
}

// TestViewPath checks detour computation: alive, shortest-alive, and
// deterministic across repeated calls, for every surviving pair under a
// random f = n-1 plan.
func TestViewPath(t *testing.T) {
	d := topology.MustDualCube(3)
	plan := Random(d, d.Order()-1, 99)
	v := NewView(d, plan)
	for u := 0; u < d.Nodes(); u++ {
		for _, w := range d.Neighbors(u) {
			p := v.Path(u, w)
			if p == nil {
				t.Fatalf("no alive path %d..%d under %d link faults (connectivity violated?)", u, w, len(plan.Links))
			}
			if p[0] != u || p[len(p)-1] != w {
				t.Fatalf("path %v does not join %d..%d", p, u, w)
			}
			for i := 0; i+1 < len(p); i++ {
				if !d.HasEdge(p[i], p[i+1]) {
					t.Fatalf("path %v uses non-edge %d-%d", p, p[i], p[i+1])
				}
				if v.LinkDown(p[i], p[i+1]) {
					t.Fatalf("path %v uses down link %d-%d", p, p[i], p[i+1])
				}
			}
			if !v.LinkDown(u, w) && len(p) != 2 {
				t.Fatalf("alive direct link %d-%d got detour %v", u, w, p)
			}
			again := v.Path(u, w)
			for i := range p {
				if p[i] != again[i] {
					t.Fatalf("Path(%d,%d) not deterministic: %v vs %v", u, w, p, again)
				}
			}
		}
	}
	if v.Path(0, 0) == nil || len(v.Path(0, 0)) != 1 {
		t.Error("self path must be the singleton")
	}
}

// TestPlanEngineRoundTrip runs a plan through a real engine and checks the
// static fault figures surface in Stats exactly as the plan describes.
func TestPlanEngineRoundTrip(t *testing.T) {
	d := topology.MustDualCube(3)
	plan := Random(d, 2, 5)
	eng := machine.MustNew[int](d, machine.Config{Faults: plan.Spec()})
	defer eng.Release()
	st, err := eng.Run(func(c *machine.Ctx[int]) { c.Idle() })
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults.DownLinks != 2*len(plan.Links) || st.Faults.DownNodes != 0 {
		t.Errorf("Stats.Faults = %+v, want %d directed down links", st.Faults, 2*len(plan.Links))
	}
}
