package fault

import (
	"sort"

	"dualcube/internal/topology"
)

// View is the global picture of a plan's permanent faults over one topology —
// the post-diagnosis knowledge the paper's fault model grants every node.
// Fault-tolerant routing (internal/dcomm) consults it to decide which
// exchanges need a detour and which alive path to relay over; because every
// node derives the same View from the same plan, the detour schedules agree
// without any runtime agreement protocol.
//
// A nil *View means fault-free: all methods are safe on nil and report a
// clean network, so callers thread a single pointer through and pay nothing
// when no plan is armed.
type View struct {
	t        topology.Topology
	downLink map[Link]struct{}
	downNode map[int]struct{}
}

// NewView indexes plan's permanent faults against t. Transient probabilities
// are deliberately excluded: drops and delays are not diagnosable in advance,
// so routing treats them as live-link noise. A nil plan (or one with no
// permanent faults) yields a nil View.
func NewView(t topology.Topology, plan *Plan) *View {
	if plan == nil || (len(plan.Links) == 0 && len(plan.Nodes) == 0) {
		return nil
	}
	v := &View{
		t:        t,
		downLink: make(map[Link]struct{}, len(plan.Links)),
		downNode: make(map[int]struct{}, len(plan.Nodes)),
	}
	for _, l := range plan.Links {
		v.downLink[l.Normalize()] = struct{}{}
	}
	for _, u := range plan.Nodes {
		v.downNode[u] = struct{}{}
	}
	return v
}

// Clean reports whether the view carries no permanent faults.
func (v *View) Clean() bool {
	return v == nil || (len(v.downLink) == 0 && len(v.downNode) == 0)
}

// NodeDown reports whether node u is failed.
func (v *View) NodeDown(u int) bool {
	if v == nil {
		return false
	}
	_, down := v.downNode[u]
	return down
}

// LinkDown reports whether the link {u, w} is unusable: failed itself, or
// incident to a failed node.
func (v *View) LinkDown(u, w int) bool {
	if v == nil {
		return false
	}
	if _, down := v.downLink[Link{u, w}.Normalize()]; down {
		return true
	}
	return v.NodeDown(u) || v.NodeDown(w)
}

// DownLinks returns every unusable link (explicit failures plus links killed
// by node failures), normalized and sorted — a canonical enumeration all
// nodes agree on.
func (v *View) DownLinks() []Link {
	if v == nil {
		return nil
	}
	set := make(map[Link]struct{}, len(v.downLink))
	for l := range v.downLink {
		set[l] = struct{}{}
	}
	for u := range v.downNode {
		for _, w := range v.t.Neighbors(u) {
			set[Link{u, w}.Normalize()] = struct{}{}
		}
	}
	out := make([]Link, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Path returns a shortest alive path from u to w (inclusive of both), or nil
// when the faults disconnect them. Deterministic: BFS in node-ID order, so
// every node computes the identical path for the same pair — the property the
// relay schedules in dcomm rely on. With f <= n-1 link faults a path always
// exists (the link connectivity of D_n is n, per Zhao/Hao/Cheng).
func (v *View) Path(u, w int) []int {
	if v == nil {
		return nil // a nil view has no topology to search; callers take the fast path instead
	}
	if u == w {
		return []int{u}
	}
	if v.NodeDown(u) || v.NodeDown(w) {
		return nil
	}
	prev := make(map[int]int, 64)
	prev[u] = u
	frontier := []int{u}
	for len(frontier) > 0 {
		var next []int
		for _, x := range frontier {
			for _, y := range v.t.Neighbors(x) {
				if v.LinkDown(x, y) {
					continue
				}
				if _, seen := prev[y]; seen {
					continue
				}
				prev[y] = x
				if y == w {
					var path []int
					for at := w; at != u; at = prev[at] {
						path = append(path, at)
					}
					path = append(path, u)
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path
				}
				next = append(next, y)
			}
		}
		frontier = next
	}
	return nil
}
