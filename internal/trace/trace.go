// Package trace renders the worked examples of the paper as text: the
// six-panel prefix-sum trace of Figure 3, the D_sort traces of Figures 5
// and 6, and the cluster-structured topology listings of Figures 1 and 2.
package trace

import (
	"fmt"
	"io"
	"strings"

	"dualcube/internal/prefix"
	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
)

// RenderTopology writes a Figure 1/2-style structural listing of D_n: each
// cluster with its members (address, local ID) and each node's cross
// neighbor.
func RenderTopology(w io.Writer, d *topology.DualCube) error {
	if _, err := fmt.Fprintf(w, "%s: %d nodes, degree %d, %d clusters per class (each a Q_%d), diameter %d\n",
		d.Name(), d.Nodes(), d.Order(), d.ClustersPerClass(), d.ClusterDim(), d.Diameter()); err != nil {
		return err
	}
	bits := d.AddressBits()
	for class := 0; class <= 1; class++ {
		fmt.Fprintf(w, "class %d:\n", class)
		for cl := 0; cl < d.ClustersPerClass(); cl++ {
			var sb strings.Builder
			fmt.Fprintf(&sb, "  cluster %d:", cl)
			for _, u := range d.ClusterMembers(class, cl) {
				fmt.Fprintf(&sb, "  %0*b(x%d)", bits, u, d.CrossNeighbor(u))
			}
			if _, err := fmt.Fprintln(w, sb.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderPrefixTrace writes the six panels of Figure 3 for a D_prefix run
// on D_n: each panel shows the s values (and, where it aids reading, the
// t values) grouped by block, i.e. by cluster in element order.
func RenderPrefixTrace(w io.Writer, d *topology.DualCube, tr *prefix.Trace[int]) error {
	blk := d.ClusterSize()
	for pi, ph := range tr.Phases {
		if _, err := fmt.Fprintf(w, "%s\n", ph.Label); err != nil {
			return err
		}
		writeRow := func(name string, vals []int) {
			var sb strings.Builder
			fmt.Fprintf(&sb, "  %s:", name)
			for i, v := range vals {
				if i%blk == 0 {
					sb.WriteString(" |")
				}
				fmt.Fprintf(&sb, " %3d", v)
			}
			sb.WriteString(" |")
			fmt.Fprintln(w, sb.String())
		}
		writeRow("s", ph.S)
		// The t row is informative for the intermediate phases only.
		if pi >= 1 && pi <= 3 {
			writeRow("t", ph.T)
		}
	}
	return nil
}

// RenderSortTrace writes a Figure 5/6-style listing of a D_sort run: one
// row of keys (recursive-ID order) per compare-exchange step. Steps up to
// the last half-merge correspond to Figure 5 (generating the bitonic
// sequence); the final merge corresponds to Figure 6.
func RenderSortTrace(w io.Writer, n int, tr *sortnet.Trace[int]) error {
	finalMergeStart := -1
	for i, st := range tr.Steps {
		if st.Level == n && strings.Contains(st.Label, "final-merge") {
			finalMergeStart = i
			break
		}
	}
	for i, st := range tr.Steps {
		if i == 1 && len(tr.Steps) > 1 {
			fmt.Fprintf(w, "-- generate bitonic sequence (Figure 5) --\n")
		}
		if i == finalMergeStart {
			fmt.Fprintf(w, "-- sort bitonic sequence (Figure 6) --\n")
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-28s", st.Label)
		for _, k := range st.Keys {
			fmt.Fprintf(&sb, " %3d", k)
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// RenderStatsRow formats one experiment-table row: measured communication
// and computation steps next to the paper's bound.
func RenderStatsRow(name string, n, comm, comp, commBound, compBound int) string {
	return fmt.Sprintf("%-24s n=%d  comm=%4d (bound %4d)  comp=%4d (bound %4d)",
		name, n, comm, commBound, comp, compBound)
}

// RenderRecursive writes the original-to-recursive ID mapping of D_n with
// the dimension-parity rule summary (experiment E6).
func RenderRecursive(w io.Writer, d *topology.DualCube) error {
	bits := d.AddressBits()
	if _, err := fmt.Fprintf(w, "%s recursive presentation: %d dimensions; dim 0 = cross-edge;\n", d.Name(), d.RecDims()); err != nil {
		return err
	}
	fmt.Fprintf(w, "dim j>0 is a direct link in class j%%2 (even dims in class 0, odd dims in class 1)\n\n")
	fmt.Fprintf(w, "%-*s  %-*s  class  sub-dual-cube\n", bits+8, "original", bits+10, "recursive")
	for u := 0; u < d.Nodes(); u++ {
		r := d.ToRecursive(u)
		sub := "-"
		if d.Order() >= 2 {
			sub = fmt.Sprintf("%d", d.RecSubCube(r))
		}
		if _, err := fmt.Fprintf(w, "%0*b (%2d)  %0*b (%2d)    %d      %s\n", bits, u, u, bits, r, r, d.Class(u), sub); err != nil {
			return err
		}
	}
	return nil
}

// RenderHamiltonian writes a Hamiltonian cycle of D_n, 16 nodes per line
// (experiment E15).
func RenderHamiltonian(w io.Writer, d *topology.DualCube, cycle []topology.NodeID) error {
	if _, err := fmt.Fprintf(w, "Hamiltonian cycle of %s (%d nodes, dilation 1):\n", d.Name(), len(cycle)); err != nil {
		return err
	}
	for i, u := range cycle {
		if i > 0 && i%16 == 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%4d", u)
	}
	_, err := fmt.Fprintln(w)
	return err
}
