package trace

import (
	"strings"
	"testing"

	"dualcube/internal/embedding"
	"dualcube/internal/monoid"
	"dualcube/internal/prefix"
	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
)

func TestRenderTopology(t *testing.T) {
	var sb strings.Builder
	d := topology.MustDualCube(2)
	if err := RenderTopology(&sb, d); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"D_2: 8 nodes, degree 2, 2 clusters per class (each a Q_1), diameter 4",
		"class 0:",
		"class 1:",
		"cluster 0:",
		"000(x4)", // node 0, cross neighbor 4
		"111(x3)", // node 7, cross neighbor 3
	} {
		if !strings.Contains(out, want) {
			t.Errorf("topology rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRenderPrefixTraceFigure3(t *testing.T) {
	// Figure 3's workload: prefix sums over 32 elements on D_3.
	d := topology.MustDualCube(3)
	in := make([]int, d.Nodes())
	for i := range in {
		in[i] = 1
	}
	var tr prefix.Trace[int]
	if _, _, err := prefix.DPrefix(3, in, monoid.Sum[int](), true, &tr); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderPrefixTrace(&sb, d, &tr); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"(a) original data distribution",
		"(b) prefix inside cluster",
		"(c) exchange t via cross-edge",
		"(d) prefix of totals inside cluster",
		"(e) get s' and prefix one more time",
		"(f) final result",
		"  32 |", // the last prefix value
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prefix trace missing %q:\n%s", want, out)
		}
	}
	// Six panels; s-row per panel plus t-rows for panels b-d.
	if got := strings.Count(out, "  s:"); got != 6 {
		t.Errorf("expected 6 s-rows, got %d", got)
	}
	if got := strings.Count(out, "  t:"); got != 3 {
		t.Errorf("expected 3 t-rows, got %d", got)
	}
}

func TestRenderSortTraceFigures56(t *testing.T) {
	in := []int{5, 3, 7, 1, 6, 0, 4, 2}
	var tr sortnet.Trace[int]
	if _, _, err := sortnet.DSort(2, in, func(a, b int) bool { return a < b }, sortnet.Ascending, &tr); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderSortTrace(&sb, 2, &tr); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"input",
		"-- generate bitonic sequence (Figure 5) --",
		"-- sort bitonic sequence (Figure 6) --",
		"level 1 base-sort dim 0",
		"level 2 half-merge dim 1",
		"level 2 final-merge dim 2",
		"   0   1   2   3   4   5   6   7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sort trace missing %q:\n%s", want, out)
		}
	}
}

func TestRenderStatsRow(t *testing.T) {
	row := RenderStatsRow("D_prefix", 3, 6, 6, 7, 6)
	for _, want := range []string{"D_prefix", "n=3", "comm=   6", "bound    7"} {
		if !strings.Contains(row, want) {
			t.Errorf("stats row missing %q: %s", want, row)
		}
	}
}

func TestRenderRecursive(t *testing.T) {
	var sb strings.Builder
	d := topology.MustDualCube(2)
	if err := RenderRecursive(&sb, d); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"D_2 recursive presentation: 3 dimensions",
		"original",
		"recursive",
		"000 ( 0)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("recursive rendering missing %q:\n%s", want, out)
		}
	}
	// Every node listed once.
	if got := strings.Count(out, "\n"); got < d.Nodes() {
		t.Errorf("expected at least %d lines, got %d", d.Nodes(), got)
	}
}

func TestRenderHamiltonian(t *testing.T) {
	var sb strings.Builder
	d := topology.MustDualCube(3)
	cycle, err := embedding.DualCubeHamiltonianCycle(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderHamiltonian(&sb, d, cycle); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Hamiltonian cycle of D_3 (32 nodes, dilation 1):") {
		t.Errorf("hamiltonian rendering header missing:\n%s", out)
	}
	// Two 16-node rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, " ") && len(strings.Fields(line)) == 16 {
			rows++
		}
	}
	if rows != 2 {
		t.Errorf("expected 2 rows of 16 nodes, got %d:\n%s", rows, out)
	}
}
