package trace

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dualcube/internal/monoid"
	"dualcube/internal/prefix"
	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
)

// The golden files pin down the exact text of the reproduced paper figures
// (the same content the cmd/ tools print). Regenerate with:
//
//	go test ./internal/trace -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden figure files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from the golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenFigure1Topology(t *testing.T) {
	var sb strings.Builder
	if err := RenderTopology(&sb, topology.MustDualCube(2)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig1_d2.txt", sb.String())
}

func TestGoldenFigure2Topology(t *testing.T) {
	var sb strings.Builder
	if err := RenderTopology(&sb, topology.MustDualCube(3)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig2_d3.txt", sb.String())
}

func TestGoldenFigure3PrefixTrace(t *testing.T) {
	d := topology.MustDualCube(3)
	in := make([]int, d.Nodes())
	for i := range in {
		in[i] = 1
	}
	var tr prefix.Trace[int]
	if _, _, err := prefix.DPrefix(3, in, monoid.Sum[int](), true, &tr); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderPrefixTrace(&sb, d, &tr); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig3_d3_prefix.txt", sb.String())
}

func TestGoldenFigures56SortTrace(t *testing.T) {
	// The same workload cmd/dsort uses by default: seed-42 permutation of D_2.
	in := rand.New(rand.NewSource(42)).Perm(8)
	var tr sortnet.Trace[int]
	if _, _, err := sortnet.DSort(2, in, func(a, b int) bool { return a < b }, sortnet.Ascending, &tr); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderSortTrace(&sb, 2, &tr); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig56_d2_sort.txt", sb.String())
}

func TestGoldenRecursiveMapping(t *testing.T) {
	var sb strings.Builder
	if err := RenderRecursive(&sb, topology.MustDualCube(2)); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "recursive_d2.txt", sb.String())
}
