package schedcheck

import (
	"strings"
	"testing"

	"dualcube/internal/dcomm"
	"dualcube/internal/fault"
	"dualcube/internal/machine"
	"dualcube/internal/sortnet"
	"dualcube/internal/topology"
)

// TestVerifyOrders runs the full static battery the dcvet driver runs: every
// operation's schedule on D_2..D_7, fault-free and under the standard fault
// plans.
func TestVerifyOrders(t *testing.T) {
	if err := Verify(2, 7); err != nil {
		t.Fatal(err)
	}
}

// TestCommStepCounts pins the exact communication-step counts of Theorem 1
// and its collective corollaries: every operation takes exactly 2n
// communication steps, and the three combining operations carry exactly one
// trailing local round (total 2n+1).
func TestCommStepCounts(t *testing.T) {
	withLocal := map[dcomm.Op]bool{
		dcomm.OpPrefix:    true,
		dcomm.OpAllReduce: true,
		dcomm.OpAllGather: true,
	}
	for n := 2; n <= 7; n++ {
		d := topology.MustDualCube(n)
		for op := dcomm.OpPrefix; op < dcomm.OpEnd; op++ {
			if op == dcomm.OpDSort {
				continue // Theorem 2 counts; pinned by TestSortScheduleCounts
			}
			sch, err := dcomm.Compiled(d, op)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, op, err)
			}
			if got := sch.CommSteps(); got != 2*n {
				t.Errorf("n=%d %s: %d comm steps, want %d", n, op, got, 2*n)
			}
			wantTotal := 2 * n
			if withLocal[op] {
				wantTotal++
			}
			if got := len(sch.Steps); got != wantTotal {
				t.Errorf("n=%d %s: %d total steps, want %d", n, op, got, wantTotal)
			}
			if withLocal[op] && sch.Steps[len(sch.Steps)-1].Kind != machine.StepLocalCombine {
				t.Errorf("n=%d %s: last step is not the local combine", n, op)
			}
		}
	}
}

// TestSortScheduleCounts pins Theorem 2 statically for D_2..D_6: the
// compiled sort schedule has exactly 2n²-n compare-exchange steps costing
// exactly 6n²-7n+2 communication cycles, proven from the step tables alone
// (CheckSortSchedule verifies every matching), without running the machine.
func TestSortScheduleCounts(t *testing.T) {
	for n := 2; n <= 6; n++ {
		d, err := topology.Shared(n)
		if err != nil {
			t.Fatal(err)
		}
		sch, err := dcomm.Compiled(d, dcomm.OpDSort)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := CheckSortSchedule(sch, d); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got, want := len(sch.Steps), sortnet.DSortCompSteps(n); got != want {
			t.Errorf("n=%d: %d steps, want 2n²-n = %d", n, got, want)
		}
		if got, want := sch.CommCycles(), sortnet.DSortCommSteps(n); got != want {
			t.Errorf("n=%d: %d comm cycles, want 6n²-7n+2 = %d", n, got, want)
		}
		if got, bound := sch.CommCycles(), sortnet.PaperSortCommBound(n); got > bound {
			t.Errorf("n=%d: %d comm cycles exceed Theorem 2's 6n² = %d", n, got, bound)
		}
	}
}

// TestCheckSortScheduleCatchesTampering corrupts the compiled sort schedule
// and expects the checker to reject each corruption.
func TestCheckSortScheduleCatchesTampering(t *testing.T) {
	d := topology.MustDualCube(3)
	// Build privately (mirroring dcomm's OpDSort layout) so the shared cache
	// is never poisoned.
	m := d.ClusterDim()
	sch := &machine.Schedule{Name: "dsort/" + d.Name(), D: d}
	add := func(j int) {
		if j == 0 {
			sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepCrossHop, Dim: -1, Pattern: m})
			return
		}
		sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepRecDim, Dim: j, Pattern: m + j})
	}
	add(0)
	for l := 2; l <= 3; l++ {
		for j := 2*l - 3; j >= 0; j-- {
			add(j)
		}
		for j := 2*l - 2; j >= 0; j-- {
			add(j)
		}
	}
	sch.Finalize()
	if err := CheckSortSchedule(sch, d); err != nil {
		t.Fatalf("pristine schedule rejected: %v", err)
	}

	var rec *machine.Step
	for i := range sch.Steps {
		if sch.Steps[i].Kind == machine.StepRecDim {
			rec = &sch.Steps[i]
			break
		}
	}
	partners := rec.Partners()
	orig := partners[0]
	partners[0] = partners[2]
	if CheckSortSchedule(sch, d) == nil {
		t.Error("tampered partner table passed verification")
	}
	partners[0] = orig

	rec.Dim++
	if CheckSortSchedule(sch, d) == nil {
		t.Error("tampered dimension passed verification")
	}
	rec.Dim--

	sch.Steps = sch.Steps[:len(sch.Steps)-1]
	if CheckSortSchedule(sch, d) == nil {
		t.Error("truncated ladder passed verification")
	}
}

// buildPrefixSchedule hand-builds the prefix skeleton on d — any Comm
// family, since the cluster technique runs over the embedded D_n skeleton —
// finalized: a private schedule the negative tests may corrupt without
// poisoning the shared dcomm cache.
func buildPrefixSchedule(d topology.Comm) *machine.Schedule {
	m := d.ClusterDim()
	sch := &machine.Schedule{Name: "prefix/" + d.Name(), D: d}
	for half := 0; half < 2; half++ {
		for i := 0; i < m; i++ {
			sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepClusterDim, Dim: i, Pattern: i})
		}
		sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepCrossHop, Dim: -1, Pattern: m})
	}
	sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepLocalCombine, Dim: -1, Pattern: -1})
	sch.Finalize()
	return sch
}

// TestCheckScheduleCatchesTamperedPartner corrupts one entry of a finalized
// partner table and expects the involution/matching checks to reject it.
func TestCheckScheduleCatchesTamperedPartner(t *testing.T) {
	d := topology.MustDualCube(3)
	sch := buildPrefixSchedule(d)
	if err := CheckSchedule(sch, d, dcomm.OpPrefix); err != nil {
		t.Fatalf("pristine schedule rejected: %v", err)
	}

	partners := sch.Steps[0].Partners()
	orig := partners[0]
	partners[0] = partners[2] // node 0 now claims node 2's partner
	err := CheckSchedule(sch, d, dcomm.OpPrefix)
	if err == nil {
		t.Fatal("tampered partner table passed verification")
	}
	if !strings.Contains(err.Error(), "involution") && !strings.Contains(err.Error(), "partner") {
		t.Errorf("tampered-table error %q does not name the matching violation", err)
	}
	partners[0] = orig
	if err := CheckSchedule(sch, d, dcomm.OpPrefix); err != nil {
		t.Fatalf("restored schedule rejected: %v", err)
	}

	// A self-pair and a tampered link index must be caught too.
	partners[0] = 0
	if CheckSchedule(sch, d, dcomm.OpPrefix) == nil {
		t.Error("self-paired node passed verification")
	}
	partners[0] = orig
	links := sch.Steps[0].LinkIndexes()
	links[0]++
	if CheckSchedule(sch, d, dcomm.OpPrefix) == nil {
		t.Error("tampered link index passed verification")
	}
	links[0]--
}

// TestCheckScheduleTamperingAllFamilies repeats the tampered-partner probe
// on every topology family: the generalized checker must verify and reject
// hypercube and Z-cube schedules exactly as it does dual-cube ones.
func TestCheckScheduleTamperingAllFamilies(t *testing.T) {
	for _, fam := range topology.Families() {
		t.Run(fam, func(t *testing.T) {
			c, err := topology.CommByID(fam, 3)
			if err != nil {
				t.Fatal(err)
			}
			sch := buildPrefixSchedule(c)
			if err := CheckSchedule(sch, c, dcomm.OpPrefix); err != nil {
				t.Fatalf("pristine schedule rejected: %v", err)
			}
			partners := sch.Steps[0].Partners()
			orig := partners[0]
			partners[0] = partners[2]
			if CheckSchedule(sch, c, dcomm.OpPrefix) == nil {
				t.Error("tampered partner table passed verification")
			}
			partners[0] = orig
			sch.Steps[1].Dim++
			if CheckSchedule(sch, c, dcomm.OpPrefix) == nil {
				t.Error("tampered step dimension passed verification")
			}
			sch.Steps[1].Dim--
			if err := CheckSchedule(sch, c, dcomm.OpPrefix); err != nil {
				t.Fatalf("restored schedule rejected: %v", err)
			}
		})
	}
}

// TestCheckScheduleRejectsUnfinalized checks that a schedule whose tables
// were never built is reported, not silently accepted.
func TestCheckScheduleRejectsUnfinalized(t *testing.T) {
	d := topology.MustDualCube(3)
	m := d.ClusterDim()
	sch := &machine.Schedule{Name: "prefix/" + d.Name(), D: d}
	for half := 0; half < 2; half++ {
		for i := 0; i < m; i++ {
			sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepClusterDim, Dim: i, Pattern: i})
		}
		sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepCrossHop, Dim: -1, Pattern: m})
	}
	sch.Steps = append(sch.Steps, machine.Step{Kind: machine.StepLocalCombine, Dim: -1, Pattern: -1})
	err := CheckSchedule(sch, d, dcomm.OpPrefix)
	if err == nil || !strings.Contains(err.Error(), "not finalized") {
		t.Fatalf("unfinalized schedule: err = %v, want finalization complaint", err)
	}
}

// TestCheckFTCatchesTamperedRewrite corrupts pieces of a genuine RewriteFT
// output and checks each corruption is caught.
func TestCheckFTCatchesTamperedRewrite(t *testing.T) {
	d := topology.MustDualCube(3)
	base := buildPrefixSchedule(d)
	view := fault.NewView(d, fault.Random(d, 2, 2008))
	ft, err := dcomm.RewriteFT(base, view)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFT(ft, base, view, 2); err != nil {
		t.Fatalf("pristine rewrite rejected: %v", err)
	}

	ft.RepairCycles++
	if CheckFT(ft, base, view, 2) == nil {
		t.Error("inflated RepairCycles passed verification")
	}
	ft.RepairCycles--

	var annotated *machine.Step
	for i := range ft.Steps {
		if s := &ft.Steps[i]; s.Broken != nil {
			annotated = s
			break
		}
	}
	if annotated == nil {
		t.Fatal("fault plan severed no exchange pattern; pick a different seed")
	}
	dt := &annotated.Detours[0]
	dt.Path[0], dt.Path[len(dt.Path)-1] = dt.Path[len(dt.Path)-1], dt.Path[0]
	if CheckFT(ft, base, view, 2) == nil {
		t.Error("reversed detour endpoints passed verification")
	}
	dt.Path[0], dt.Path[len(dt.Path)-1] = dt.Path[len(dt.Path)-1], dt.Path[0]

	u := dt.Path[0]
	flip := annotated.Broken[u]
	annotated.Broken[u] = !flip
	if CheckFT(ft, base, view, 2) == nil {
		t.Error("inconsistent Broken mask passed verification")
	}
	annotated.Broken[u] = flip

	if err := CheckFT(ft, base, view, 2); err != nil {
		t.Fatalf("restored rewrite rejected: %v", err)
	}
}

// TestCheckFTCleanView pins the clean-view contract: RewriteFT must hand back
// the base schedule itself, and CheckFT must insist on that.
func TestCheckFTCleanView(t *testing.T) {
	d := topology.MustDualCube(3)
	base := buildPrefixSchedule(d)
	clean := fault.NewView(d, nil)
	ft, err := dcomm.RewriteFT(base, clean)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFT(ft, base, clean, 0); err != nil {
		t.Fatal(err)
	}
	if CheckFT(base, buildPrefixSchedule(d), clean, 0) == nil {
		t.Error("clean view with a copied schedule passed; must be the identical pointer")
	}
}
